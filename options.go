package bufsim

import (
	"fmt"
	"sync"

	"bufsim/internal/audit"
	"bufsim/internal/metrics"
	"bufsim/internal/runcache"
)

// Registry collects simulator telemetry: counters, gauges and histograms
// published by the scheduler, the bottleneck queue and the TCP senders.
// Attach one to a run with WithMetrics, then Snapshot or WriteJSON it.
// Telemetry only observes — a run produces bit-identical packets whether
// or not a Registry is attached.
type Registry = metrics.Registry

// NewRegistry returns an empty telemetry registry for WithMetrics.
func NewRegistry() *Registry { return metrics.New() }

// Auditor collects conservation-law violations: every queue, link, TCP
// endpoint and the event clock cross-check their own accounting against
// independent shadow counters while the simulation runs. Attach one to a
// run with WithAudit, then inspect Count, Violations or Err. Auditing
// only observes — a run produces bit-identical results whether or not an
// Auditor is attached.
type Auditor = audit.Auditor

// Violation is one invariant failure recorded by an Auditor, stamped
// with the simulated time at which it was detected.
type Violation = audit.Violation

// NewAuditor returns an empty auditor for WithAudit. OnViolation (see
// audit.OnViolation) may be passed to observe failures as they happen;
// by default they accumulate for inspection after the run.
func NewAuditor(opts ...audit.Option) *Auditor { return audit.New(opts...) }

// Cache is a content-addressed store of simulation results, keyed by a
// canonical digest of the run's full configuration. Attach one with
// WithCache or WithCacheStore: a run whose exact configuration has been
// simulated before returns the stored result instead of simulating
// again; a cold run simulates and stores. The cache only observes —
// cached and fresh results are bit-identical — and entries never expire:
// they are invalidated wholesale when the simulator's digest salt
// changes (see internal/runcache).
type Cache = runcache.Store

// OpenCache opens (creating if needed) a result cache rooted at dir.
func OpenCache(dir string) (*Cache, error) { return runcache.Open(dir) }

// openedCaches dedupes WithCache stores per directory so repeated calls
// share hit/miss statistics and a single failure mode.
var openedCaches sync.Map // dir -> *Cache

// Option adjusts a Simulate* run beyond what its configuration struct
// carries. Options always win over the corresponding config field, so
// callers can hold one base config and vary a switch per run:
//
//	bufsim.Simulate(cfg, bufsim.WithVariant(bufsim.Sack), bufsim.WithPacing(true))
//
// The zero set of options leaves the config untouched; existing callers
// that pass only a config struct are unaffected.
type Option func(*options)

type options struct {
	variant     *Variant
	paced       *bool
	delayedAck  *bool
	red         *bool
	metrics     *Registry
	parallelism *int
	shards      *int
	audit       *Auditor
	cache       *Cache
	workload    Workload
}

// shardCount resolves WithShards: zero when unset (sequential kernel).
func (o options) shardCount() int {
	if o.shards == nil {
		return 0
	}
	return *o.shards
}

func applyOptions(opts []Option) options {
	var o options
	for _, fn := range opts {
		if fn != nil {
			fn(&o)
		}
	}
	return o
}

// WithCongestionControl selects the congestion-control family the
// scenario's senders run: the classic window-based variants (Reno,
// Tahoe, NewReno, Sack) or the modern families (Cubic, BBR). Note the
// zero Variant is Reno, so an unset config field and an explicit
// WithCongestionControl(Reno) mean the same thing — configs round-trip
// through JSON without a "was it set" sentinel.
func WithCongestionControl(v Variant) Option {
	return func(o *options) { o.variant = &v }
}

// WithVariant is an alias for WithCongestionControl, kept for callers
// that predate the pluggable congestion-control interface.
func WithVariant(v Variant) Option { return WithCongestionControl(v) }

// WithPacing spreads each sender's transmissions across the RTT instead
// of ACK-clocked back-to-back bursts.
func WithPacing(on bool) Option {
	return func(o *options) { o.paced = &on }
}

// WithDelayedACK acknowledges every second segment, as modern receivers
// do, instead of every segment.
func WithDelayedACK(on bool) Option {
	return func(o *options) { o.delayedAck = &on }
}

// WithRED switches the bottleneck from drop-tail to Random Early
// Detection. Only Simulate honours it; the short-flow, mix and trace
// scenarios study drop-tail buffers.
func WithRED(on bool) Option {
	return func(o *options) { o.red = &on }
}

// WithParallelism bounds how many independent simulations run at once in
// the entry points that fan out over multiple runs (SimulateReplicated).
// Zero or negative means the machine's parallelism. Every simulation owns
// its scheduler and RNG streams, so results are bit-identical at any
// setting; only wall-clock time changes. Single-run entry points ignore
// it — one simulation is always one goroutine.
func WithParallelism(n int) Option {
	return func(o *options) { o.parallelism = &n }
}

// WithShards runs the simulation's event kernel on n parallel shards:
// the topology is cut at its link boundaries (the bottleneck router on
// one shard, the stations spread over the rest) and the kernel executes
// conservative parallel windows bounded by the smallest cross-shard
// propagation delay. Sharding is pure execution policy — results are
// bit-identical to the sequential kernel at every shard count (the
// equivalence is pinned by the sharded digest harness), so like
// WithParallelism it does not participate in the cache key. Zero or one
// means the sequential kernel; counts are capped at the topology's
// station count + 1 and the kernel's shard limit. Scenarios driven by a
// dynamic flow generator (short flows, mixes, traces, profiles) cap the
// effective count at two — the generator's bookkeeping serializes the
// stations onto one shard.
func WithShards(n int) Option {
	return func(o *options) { o.shards = &n }
}

// WithWorkload overrides the traffic driving a SimulateProfile run with
// any Workload — a time-varying ProfileWorkload, a TraceWorkload, a
// SessionWorkload or the stationary PoissonWorkload — so one base
// scenario can grid over traffic models the way WithVariant grids over
// congestion control. Workloads are pure data: with WithCache set, the
// workload participates in the cache key like any other config field.
// Only SimulateProfile honours it; the legacy entry points' traffic is
// part of their scenario shape.
func WithWorkload(w Workload) Option {
	return func(o *options) { o.workload = w }
}

// WithMetrics attaches a telemetry registry to the run. After the run
// returns, reg holds the scheduler, queue and TCP instruments
// (reg.WriteJSON dumps them). Telemetry never perturbs the simulation:
// the same seed yields identical packets with or without it.
func WithMetrics(reg *Registry) Option {
	return func(o *options) { o.metrics = reg }
}

// WithAudit runs the simulation under the conservation-law checker: every
// queue, link, TCP endpoint and the event clock verify their accounting
// invariants as events execute, recording violations into aud. A clean
// run leaves aud.Count() at zero. Auditing never perturbs the
// simulation: the same seed yields identical results with or without it.
// The same Auditor may be shared by concurrent runs (SimulateReplicated);
// it is concurrency-safe.
func WithAudit(aud *Auditor) Option {
	return func(o *options) { o.audit = aud }
}

// WithCache memoizes the run in a content-addressed result cache rooted
// at dir (created if needed): if this exact configuration — every field,
// seed and option included — has been simulated into dir before, the
// stored result is returned without simulating. Stores are shared per
// directory across calls. WithCache panics if dir cannot be created;
// use OpenCache plus WithCacheStore to handle the error instead.
//
// Combining WithCache with WithMetrics or WithAudit always simulates
// (telemetry and audit observe the simulation itself), but still stores
// the result for later cache hits.
func WithCache(dir string) Option {
	return func(o *options) {
		if c, ok := openedCaches.Load(dir); ok {
			o.cache = c.(*Cache)
			return
		}
		c, err := runcache.Open(dir)
		if err != nil {
			panic(fmt.Sprintf("bufsim: WithCache(%q): %v", dir, err))
		}
		actual, _ := openedCaches.LoadOrStore(dir, c)
		o.cache = actual.(*Cache)
	}
}

// WithCacheStore is WithCache for a store the caller opened (or
// configured — e.g. verification sampling via SetVerifySample) itself.
func WithCacheStore(c *Cache) Option {
	return func(o *options) { o.cache = c }
}
