package bufsim

import (
	"fmt"
	"io"

	"bufsim/internal/experiment"
	"bufsim/internal/tcp"
	"bufsim/internal/workload"
	"bufsim/internal/workload/profile"
)

// Workload is a declarative traffic description — pure data that the
// simulator binds onto its topology deterministically, so the same seed
// always produces the same flow schedule. The constructors below build
// the four families: PoissonWorkload (stationary short flows),
// SessionWorkload (closed-loop sessions), TraceWorkload (replay a
// recorded trace) and ProfileWorkload (time-varying traffic from a
// Profile). Pass one in ProfileSimulation.Workload or override any
// entry's config with WithWorkload.
type Workload = workload.Source

// SizeDist is a flow-length distribution in segments; see Pareto,
// FixedSize and GeometricSize.
type SizeDist = workload.SizeDist

// FixedSize is the degenerate distribution: every flow is exactly N
// segments.
type FixedSize = workload.FixedSize

// GeometricSize draws geometrically distributed flow lengths with the
// given mean.
type GeometricSize = workload.GeometricSize

// Profile describes time-varying traffic: piecewise-linear control
// points for the short-flow arrival rate (flows/sec) and the long-lived
// flow count, interpolated between points and clamped outside them.
// Profiles compose — ScaleArrival, ScalePopulation, ScaleTo, Compress
// and profile.Sum — and validate with clear errors (negative rates,
// out-of-order control points, zero-duration segments).
type Profile = profile.Profile

// ProfilePoint is one control point of a profile curve: value V holds
// at offset T from the profile's start.
type ProfilePoint = profile.Point

// ProfileCurve is a piecewise-linear function of time.
type ProfileCurve = profile.Curve

// ProfilePreset names a built-in profile shape; see ProfileNames. Preset
// curves are normalized to peak 1.0 on both axes — scale them with
// Profile.ScaleTo.
type ProfilePreset = profile.Preset

// Built-in profile shapes.
const (
	// ConstantProfile is the stationary baseline.
	ConstantProfile = profile.Constant
	// DiurnalProfile is a 24-hour swing (compress it to simulate faster).
	DiurnalProfile = profile.Diurnal
	// FlashCrowdProfile spikes 10x in seconds and decays.
	FlashCrowdProfile = profile.FlashCrowd
	// SteppedRampProfile climbs four load plateaus.
	SteppedRampProfile = profile.SteppedRamp
	// DrainProfile dips to 5% mid-run and recovers.
	DrainProfile = profile.Drain
)

// ParseProfile parses a preset name — "constant", "diurnal",
// "flashcrowd", "step" or "drain", case-insensitive, with aliases like
// "flash-crowd" and "maintenance". The empty string parses as
// ConstantProfile, the zero value. ProfilePreset also implements
// encoding.TextMarshaler/TextUnmarshaler, so JSON configs carry names.
func ParseProfile(s string) (ProfilePreset, error) { return profile.ParseProfile(s) }

// ProfileNames lists the canonical names of every built-in profile
// shape, in declaration order.
func ProfileNames() []string { return profile.ProfileNames() }

// LoadProfile reads a JSON profile description:
//
//	{
//	  "name": "launch-day",
//	  "arrival":    [{"t": "0s", "v": 10}, {"t": "30s", "v": 100}],
//	  "population": [{"t": "0s", "v": 20}],
//	  "compress": 2.0
//	}
//
// where "t" is a duration string ("30s", "1500ms") or a number of
// seconds. The loaded profile is validated.
func LoadProfile(r io.Reader) (Profile, error) { return profile.Load(r) }

// ReadFlows reads a recorded flow trace for TraceWorkload/SimulateTrace,
// sniffing the format: JSON ([{"start": "1.5s", "size": 30}, ...]) or
// the legacy start_seconds,size_segments CSV. Records must be ordered
// by start time; out-of-order rows are an error.
func ReadFlows(r io.Reader) ([]TraceFlow, error) { return workload.ReadFlows(r) }

// ArrivalRate converts an offered load (fraction of the link, in (0,1))
// into the short-flow arrival rate in flows/sec that offers it, given
// the link and a flow-size distribution — the bridge from "85% load"
// scenario language to a Profile's absolute arrival curve.
func ArrivalRate(load float64, link Link, sizes SizeDist) float64 {
	return workload.ArrivalRateForLoad(load, link.Rate, link.segment(), sizes)
}

// PoissonWorkload is the stationary workload: Poisson arrivals of
// finite flows at offered load (fraction of the bottleneck, in (0,1)),
// sizes drawn from the given distribution, senders capped at maxWindow
// segments (0 means the TCP default). Behind ProfileSimulation it
// reproduces SimulateShortFlows exactly.
func PoissonWorkload(load float64, sizes SizeDist, maxWindow int) Workload {
	return workload.PoissonSource{
		Load:  load,
		Sizes: sizes,
		TCP:   tcp.Config{MaxWindow: maxWindow},
	}
}

// SessionWorkload is the closed-loop Harpoon-style workload: a fixed
// population of sessions looping "transfer a file, think, repeat", with
// file sizes from the distribution and exponential thinks of the given
// mean.
func SessionWorkload(sessions int, sizes SizeDist, meanThink Duration, maxWindow int) Workload {
	return workload.SessionSource{
		Sessions:  sessions,
		Sizes:     sizes,
		MeanThink: meanThink,
		TCP:       tcp.Config{MaxWindow: maxWindow},
	}
}

// TraceWorkload replays recorded flows (see ReadFlows) at their
// recorded start offsets, anchored to the simulation start.
func TraceWorkload(flows []TraceFlow, maxWindow int) Workload {
	return workload.TraceSource{
		Flows: flows,
		TCP:   tcp.Config{MaxWindow: maxWindow},
	}
}

// ProfileWorkload compiles a time-varying profile into a workload:
// short flows arrive as a non-homogeneous Poisson process following the
// arrival curve (sizes from the distribution), and long-lived flows
// start and stop so the live count tracks the population curve. The
// schedule is deterministic per seed. The profile must be in absolute
// units (flows/sec and flow counts) — scale presets with ScaleTo first.
func ProfileWorkload(p Profile, sizes SizeDist, maxWindow int) (Workload, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Arrival.Max() > 0 && sizes == nil {
		return nil, fmt.Errorf("bufsim: ProfileWorkload with an arrival curve requires a size distribution")
	}
	return profile.Source{
		Profile: p,
		Sizes:   sizes,
		TCP:     tcp.Config{MaxWindow: maxWindow},
		LongTCP: tcp.Config{},
	}, nil
}

// ProfileSimulation configures SimulateProfile: any Workload — a
// time-varying profile, a trace, sessions, or the stationary Poisson
// source — over a single bottleneck with a given buffer. Station RTTs
// spread ±40% around Link.RTT, as in SimulateShortFlows.
type ProfileSimulation struct {
	Seed int64

	Link          Link
	BufferPackets int // 0 = unlimited
	Stations      int // access links sharing the bottleneck (default 50)

	// Workload drives the traffic; WithWorkload overrides it.
	Workload Workload

	// RED switches the bottleneck to Random Early Detection sized to
	// BufferPackets (which must then be positive).
	RED bool

	Warmup, Measure Duration
	// Drain is how long after the measurement window flows may finish
	// before being counted censored (default 30s).
	Drain Duration
}

// ProfileResult summarizes SimulateProfile: the bottleneck's view of
// the traffic (utilization, loss, queue occupancy) and the workload's
// (active-flow trajectory n(t), flow completion times).
type ProfileResult struct {
	Utilization float64
	LossRate    float64
	MeanQueue   float64
	PeakQueue   int
	MeanActive  float64
	PeakActive  float64
	Generated   int64
	AFCT        Duration
	Completed   int
	Censored    int
}

// SimulateProfile runs a workload scenario — the unified entry point
// behind which the stationary, session, trace and profile traffic
// models all sit. A PoissonWorkload here reproduces SimulateShortFlows'
// AFCT exactly; a ProfileWorkload opens the time-varying axis (flash
// crowds, diurnal swings) the fixed-n entry points cannot express.
func SimulateProfile(cfg ProfileSimulation, opts ...Option) ProfileResult {
	o := applyOptions(opts)
	w := cfg.Workload
	if o.workload != nil {
		w = o.workload
	}
	if w == nil {
		panic("bufsim: ProfileSimulation requires a Workload (config field or WithWorkload)")
	}
	run := experiment.ProfileRunConfig{
		Seed:          cfg.Seed,
		Rate:          cfg.Link.Rate,
		MeanRTT:       cfg.Link.RTT,
		SegmentSize:   cfg.Link.segment(),
		BufferPackets: cfg.BufferPackets,
		Source:        overrideWorkloadTCP(w, o),
		Stations:      cfg.Stations,
		UseRED:        cfg.RED,
		Warmup:        cfg.Warmup,
		Measure:       cfg.Measure,
		Drain:         cfg.Drain,
		Metrics:       o.metrics,
		Audit:         o.audit,
		Cache:         o.cache,
		Shards:        o.shardCount(),
	}
	if o.red != nil {
		run.UseRED = *o.red
	}
	res := experiment.RunProfile(run)
	return ProfileResult{
		Utilization: res.Utilization,
		LossRate:    res.LossRate,
		MeanQueue:   res.MeanQueue,
		PeakQueue:   res.PeakQueue,
		MeanActive:  res.MeanActive,
		PeakActive:  res.PeakActive,
		Generated:   res.Generated,
		AFCT:        res.AFCT,
		Completed:   res.Completed,
		Censored:    res.Censored,
	}
}

// overrideWorkloadTCP rewrites a known workload's TCP templates from
// the congestion-control options, so WithCongestionControl, WithPacing
// and WithDelayedACK compose with SimulateProfile the way they do with
// every other entry point. Unknown Source implementations pass through
// untouched.
func overrideWorkloadTCP(w Workload, o options) Workload {
	if o.variant == nil && o.paced == nil && o.delayedAck == nil {
		return w
	}
	apply := func(c tcp.Config) tcp.Config {
		if o.variant != nil {
			c.Variant = *o.variant
		}
		if o.paced != nil {
			c.Paced = *o.paced
		}
		if o.delayedAck != nil {
			c.DelayedAck = *o.delayedAck
		}
		return c
	}
	switch s := w.(type) {
	case workload.PoissonSource:
		s.TCP = apply(s.TCP)
		return s
	case workload.SessionSource:
		s.TCP = apply(s.TCP)
		return s
	case workload.TraceSource:
		s.TCP = apply(s.TCP)
		return s
	case profile.Source:
		s.TCP = apply(s.TCP)
		s.LongTCP = apply(s.LongTCP)
		return s
	default:
		return w
	}
}
