module bufsim

go 1.22
