package main

import (
	"bufsim/internal/sim"
	"bufsim/internal/units"
)

// kernelDescription names the kernel generation being measured; it is
// recorded in BENCH_kernel.json so before/after blocks are labelled.
const kernelDescription = "inlined 4-ary min-heap over pooled event slots, typed actor dispatch on hot paths, pluggable congestion-control policy behind a per-flow interface"

// kernelChurn drives the scheduler through n events with a rolling window
// of 100 pending timers — the steady-state load a packet simulation
// produces (every in-flight packet holds a pending transmit/propagate
// event, every sender an RTO).
func kernelChurn(n int) {
	s := sim.NewScheduler()
	fired := 0
	var tick func()
	tick = func() {
		fired++
		if fired < n {
			//lint:ignore eventcapture this benchmark measures the closure-posting path on purpose
			s.After(10*units.Nanosecond, tick)
		}
	}
	for j := 0; j < 100 && j < n; j++ {
		//lint:ignore eventcapture this benchmark measures the closure-posting path on purpose
		s.After(units.Duration(j), tick)
	}
	s.Run(units.Never.Add(-units.Nanosecond))
}
