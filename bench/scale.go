package main

import (
	"fmt"
	"testing"

	"bufsim/internal/experiment"
	"bufsim/internal/metrics"
	"bufsim/internal/packet"
	"bufsim/internal/queue"
	"bufsim/internal/sim"
	"bufsim/internal/tcp"
	"bufsim/internal/topology"
	"bufsim/internal/units"
)

// Scale mode (-scale) measures how the kernel carries growing flow
// populations and how the sharded execution engine prices in:
//
//   - scale_long_lived/flows=F/shards=S: one long-lived experiment with
//     F flows on S event shards. The bottleneck rate grows with F so the
//     per-flow fair share stays constant — F is the only thing changing.
//     Sharded and unsharded cells compute bit-identical results (the
//     equivalence harness pins that), so the cells differ purely in
//     execution cost.
//   - scale_fabric/planes=P: P disjoint dumbbell planes on P shards
//     sharing one scheduler — the embarrassingly-parallel end of the
//     sharding spectrum.
//   - slab_senders_1m: constructs 2^20 TCP senders into one
//     struct-of-arrays slab; bytes/op / 2^20 is the per-flow memory
//     footprint of the sender path.
//
// The shard curve is honest about the machine it ran on: the recorded
// GOMAXPROCS is the "cores" axis, and on a single-core runner shards>1
// measures pure engine overhead (windows, barriers, frontier merges),
// not speedup. That is exactly the number the gate must bound: sharding
// may not tax the sequential kernel's users.

// scaleFlows x scaleShards is the measured grid. Shard counts above
// flows+1 are capped by the topology, so small-F/large-S cells collapse
// into their capped neighbours; they stay in the grid to price the cap
// path too.
var (
	scaleFlows  = []int{30, 100, 300, 1000}
	scaleShards = []int{1, 2, 4, 8}
)

func scaleConfig(flows, shards int) experiment.LongLivedConfig {
	return experiment.LongLivedConfig{
		Seed:           1,
		N:              flows,
		BottleneckRate: units.BitRate(flows) * 2 * units.Mbps,
		BufferPackets:  25 + flows,
		Warmup:         units.Second,
		Measure:        2 * units.Second,
		Shards:         shards,
	}
}

// nullHandler swallows packets; the slab construction benchmark never
// runs the simulation, it only builds senders.
type nullHandler struct{}

func (nullHandler) Handle(*packet.Packet) {}

const slabRows = 1 << 20

// buildSlabSenders allocates one slab and rows senders into it,
// returning the slab so the allocation cannot be optimized away.
func buildSlabSenders(rows int) *tcp.Slab {
	sched := sim.NewScheduler()
	sl := tcp.NewSlab(rows)
	var out nullHandler
	for i := 0; i < rows; i++ {
		tcp.NewSenderSlab(sl, tcp.Config{Flow: packet.FlowID(i + 1)}, sched, out)
	}
	return sl
}

// fabricRun builds planes disjoint dumbbell planes on one scheduler
// (one shard each), one long-lived flow per station, and runs them.
func fabricRun(planes, stationsPerPlane int, reg *metrics.Registry) {
	sched := sim.NewScheduler()
	if reg != nil {
		sched.Instrument(reg)
	}
	f := topology.NewFabric(topology.FabricConfig{
		Sched:  sched,
		RNG:    sim.NewRNG(1),
		Planes: planes,
		Plane: topology.Config{
			BottleneckRate:  20 * units.Mbps,
			BottleneckDelay: 10 * units.Millisecond,
			Buffer:          queue.PacketLimit(60),
			Stations:        stationsPerPlane,
			RTTMin:          80 * units.Millisecond,
			RTTMax:          160 * units.Millisecond,
		},
	})
	for k := 0; k < f.Planes(); k++ {
		d := f.Plane(k)
		for i := 0; i < d.NumStations(); i++ {
			d.AddFlow(d.Station(i), tcp.Config{SegmentSize: 1000 * units.Byte}).Sender.Start()
		}
	}
	sched.Run(units.Epoch.Add(3 * units.Second))
}

func runScale(f *File) {
	for _, flows := range scaleFlows {
		for _, shards := range scaleShards {
			name := fmt.Sprintf("scale_long_lived/flows=%d/shards=%d", flows, shards)
			fmt.Println(name + "...")
			events := eventsProcessed(func(reg *metrics.Registry) {
				cfg := scaleConfig(flows, shards)
				cfg.Metrics = reg
				experiment.RunLongLived(cfg)
			})
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					experiment.RunLongLived(scaleConfig(flows, shards))
				}
			})
			f.Current.Benchmarks[name] = metric(r, events)
		}
	}

	const planes, perPlane = 4, 64
	name := fmt.Sprintf("scale_fabric/planes=%d", planes)
	fmt.Println(name + "...")
	fabricEvents := eventsProcessed(func(reg *metrics.Registry) {
		fabricRun(planes, perPlane, reg)
	})
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fabricRun(planes, perPlane, nil)
		}
	})
	f.Current.Benchmarks[name] = metric(r, fabricEvents)

	fmt.Println("slab_senders_1m...")
	var keep *tcp.Slab
	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			keep = buildSlabSenders(slabRows)
		}
	})
	_ = keep
	f.Current.Benchmarks["slab_senders_1m"] = metric(r, 0)
}
