package adversary

import (
	"fmt"

	"bufsim/internal/packet"
	"bufsim/internal/sim"
	"bufsim/internal/stats"
	"bufsim/internal/topology"
	"bufsim/internal/units"
	"bufsim/internal/workload"
)

// Pulse is the burst-synchronized CBR pattern as a workload.Source:
// Senders constant-bit-rate trains that switch on and off together, all
// anchored to the same phase. During each on-window the aggregate
// arrives at PeakRate; between windows the link drains. Unlike
// workload.CBR — which offers per-sender jitter precisely to avoid
// phase locking — Pulse has no jitter by construction: the
// synchronization is the attack. The bound RNG is never consulted.
type Pulse struct {
	// Senders is the number of synchronized trains (one per station,
	// wrapping if there are fewer stations).
	Senders int
	// PeakRate is the aggregate arrival rate while the pulse is on;
	// each sender emits PeakRate/Senders.
	PeakRate units.BitRate
	// Period is the pulse repetition interval; Duty in (0,1] is the
	// fraction of each period the trains are on.
	Period units.Duration
	Duty   float64
	// PacketSize is the wire size of each packet (default
	// units.DefaultSegment).
	PacketSize units.ByteSize
}

func (p Pulse) String() string {
	return fmt.Sprintf("pulse(%d senders, peak %v, period %v, duty %.2f)",
		p.Senders, p.PeakRate, p.Period, p.Duty)
}

// Bind implements workload.Source. Binding validates the pattern and
// wires one raw flow per sender; traffic begins at Start.
func (p Pulse) Bind(d *topology.Dumbbell, _ *sim.RNG) workload.Driver {
	if p.Senders <= 0 {
		panic(fmt.Sprintf("adversary: Pulse.Senders = %d", p.Senders))
	}
	if p.PeakRate <= 0 {
		panic(fmt.Sprintf("adversary: Pulse.PeakRate = %v", p.PeakRate))
	}
	if p.Period <= 0 {
		panic(fmt.Sprintf("adversary: Pulse.Period = %v", p.Period))
	}
	if p.Duty <= 0 || p.Duty > 1 {
		panic(fmt.Sprintf("adversary: Pulse.Duty = %v out of (0,1]", p.Duty))
	}
	if p.PacketSize == 0 {
		p.PacketSize = units.DefaultSegment
	}
	drv := &PulseDriver{src: p, sched: d.Config().Sched}
	perSender := p.PeakRate / units.BitRate(p.Senders)
	gap := units.Duration(int64(p.PacketSize.Bits()) * int64(units.Second) / int64(perSender))
	onTime := units.Duration(float64(p.Period) * p.Duty)
	if onTime < gap {
		onTime = gap // at least one packet per pulse
	}
	for i := 0; i < p.Senders; i++ {
		s := &pulseSender{
			sched:  drv.sched,
			size:   p.PacketSize,
			gap:    gap,
			period: p.Period,
			onTime: onTime,
		}
		s.flow = d.NewRawFlow(d.Station(i % d.NumStations()))
		d.BindRawFlow(s.flow, nil, packet.HandlerFunc(s.receive))
		drv.senders = append(drv.senders, s)
	}
	return drv
}

// PulseDriver is the bound pulse pattern; experiments type-assert it out
// of workload.Driver for the loss and delay counters.
type PulseDriver struct {
	src     Pulse
	sched   *sim.Scheduler
	senders []*pulseSender
	running bool
}

// Start implements workload.Driver: every train anchors its phase at
// the current instant, so all pulses are aligned from the first burst.
func (d *PulseDriver) Start() {
	if d.running {
		panic("adversary: pulse driver started twice")
	}
	d.running = true
	epoch := d.sched.Now()
	for _, s := range d.senders {
		s.epoch = epoch
		s.running = true
		s.sendNext()
	}
}

// Stop implements workload.Driver.
func (d *PulseDriver) Stop() {
	d.running = false
	for _, s := range d.senders {
		s.running = false
	}
}

// Active implements workload.Driver.
func (d *PulseDriver) Active() int {
	if !d.running {
		return 0
	}
	return len(d.senders)
}

// Generated implements workload.Driver.
func (d *PulseDriver) Generated() int64 { return int64(len(d.senders)) }

// Records implements workload.Driver: pulse trains are not finite flows.
func (d *PulseDriver) Records() []*workload.FlowRecord { return nil }

// Sent and Received count packets end to end across all trains; the
// difference after a drain period is the burst loss.
func (d *PulseDriver) Sent() int64 {
	var n int64
	for _, s := range d.senders {
		n += s.sent
	}
	return n
}

// Received returns the packets delivered across all trains.
func (d *PulseDriver) Received() int64 {
	var n int64
	for _, s := range d.senders {
		n += s.received
	}
	return n
}

// LossRate returns the end-to-end loss fraction so far; packets in
// flight count as lost, so read it after the trains have drained.
func (d *PulseDriver) LossRate() float64 {
	sent := d.Sent()
	if sent == 0 {
		return 0
	}
	return float64(sent-d.Received()) / float64(sent)
}

// MeanDelay returns the mean one-way packet latency in seconds across
// all trains (0 before any delivery), queueing included — the cost the
// bursts impose on their own traffic.
func (d *PulseDriver) MeanDelay() float64 {
	var sum float64
	var n int64
	for _, s := range d.senders {
		sum += s.delay.Mean() * float64(s.delay.N())
		n += s.delay.N()
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// pulseSender is one train: an actor that emits back-to-back-at-rate
// packets while inside the on-window and sleeps to the next period
// boundary otherwise.
type pulseSender struct {
	sched  *sim.Scheduler
	flow   *topology.RawFlow
	size   units.ByteSize
	gap    units.Duration // inter-packet gap at the per-sender peak rate
	period units.Duration
	onTime units.Duration
	epoch  units.Time // phase anchor shared by the whole pattern

	running  bool
	seq      int64
	sent     int64
	received int64
	delay    stats.Welford
}

func (s *pulseSender) sendNext() {
	if !s.running {
		return
	}
	now := s.sched.Now()
	off := now.Sub(s.epoch) % s.period
	if off >= s.onTime {
		// Between pulses: wake at the next period boundary.
		s.sched.PostAfter(s.period-off, s, 0, nil)
		return
	}
	s.flow.Forward.Handle(&packet.Packet{
		Flow: s.flow.ID,
		Src:  s.flow.Src,
		Dst:  s.flow.Dst,
		Seq:  s.seq,
		Size: s.size,
		Sent: now,
	})
	s.seq++
	s.sent++
	next := s.gap
	if off+s.gap >= s.onTime {
		next = s.period - off // pulse over: sleep to the next one
	}
	s.sched.PostAfter(next, s, 0, nil)
}

// OnEvent implements sim.Actor: the inter-packet timer is a typed
// kernel event.
func (s *pulseSender) OnEvent(int32, any) { s.sendNext() }

func (s *pulseSender) receive(p *packet.Packet) {
	s.received++
	s.delay.Add(s.sched.Now().Sub(p.Sent).Seconds())
}
