package adversary

import (
	"fmt"

	"bufsim/internal/sim"
	"bufsim/internal/tcp"
	"bufsim/internal/topology"
	"bufsim/internal/units"
)

// ParkingLotLoad is the multi-bottleneck pattern: Through TCP flows
// crossing every hop of a parking-lot chain, plus PerHop cross flows
// entering and leaving at each hop, all started at the same instant.
// The load is balanced by construction — every core link carries
// exactly Through+PerHop flows — so no single link is "the" bottleneck:
// each through flow sees every hop congested at once, the case the
// paper's single-congestion-point assumption (§5.1) declares rare. A
// buffer sized by sqrt of the per-link flow count is then tested
// against flows whose loss events compound across hops.
//
// Unlike Pulse and SyncAIMD this pattern is not a workload.Source — it
// targets the parking-lot chain rather than the dumbbell — so it
// exposes a Build method instead.
type ParkingLotLoad struct {
	// Through is the number of flows crossing the whole chain; PerHop
	// is the number of cross flows local to each hop.
	Through, PerHop int
	// RTT is every flow's two-way propagation delay. It must be at
	// least twice the sum of the chain's core-link delays so the
	// through path fits inside it.
	RTT units.Duration
}

func (l ParkingLotLoad) String() string {
	return fmt.Sprintf("parkinglot(through=%d, perhop=%d, rtt=%v)", l.Through, l.PerHop, l.RTT)
}

// FlowsPerLink returns the flow count every core link carries.
func (l ParkingLotLoad) FlowsPerLink() int { return l.Through + l.PerHop }

// Build adds the pattern's flows to p and posts every start at the
// current instant — the synchronized ignition that lets the hops
// congest together. It returns the through and cross cohorts.
func (l ParkingLotLoad) Build(sched *sim.Scheduler, p *topology.ParkingLot, spec tcp.Config) (through, cross []*topology.PathFlow) {
	if l.Through <= 0 || l.PerHop < 0 {
		panic(fmt.Sprintf("adversary: ParkingLotLoad through=%d perhop=%d", l.Through, l.PerHop))
	}
	hops := len(p.Links)
	now := sched.Now()
	start := func(f *topology.PathFlow) {
		sched.PostAt(now, f.Sender, tcp.OpStart, nil)
	}
	for i := 0; i < l.Through; i++ {
		f := p.AddFlow(0, hops, l.RTT, spec)
		through = append(through, f)
		start(f)
	}
	for hop := 0; hop < hops; hop++ {
		for i := 0; i < l.PerHop; i++ {
			f := p.AddFlow(hop, hop+1, l.RTT, spec)
			cross = append(cross, f)
			start(f)
		}
	}
	return through, cross
}
