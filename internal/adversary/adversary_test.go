package adversary

import (
	"testing"

	"bufsim/internal/queue"
	"bufsim/internal/sim"
	"bufsim/internal/stats"
	"bufsim/internal/tcp"
	"bufsim/internal/topology"
	"bufsim/internal/units"
	"bufsim/internal/workload"
)

func TestPatternRegistry(t *testing.T) {
	names := PatternNames()
	if len(names) != numPatterns {
		t.Fatalf("PatternNames() = %v, want %d entries", names, numPatterns)
	}
	for i, name := range names {
		p, err := ParsePattern(name)
		if err != nil || p != Pattern(i) {
			t.Errorf("ParsePattern(%q) = %v, %v", name, p, err)
		}
		if Pattern(i).String() != name {
			t.Errorf("Pattern(%d).String() = %q, want %q", i, Pattern(i).String(), name)
		}
		if Pattern(i).Doc() == "" {
			t.Errorf("Pattern(%d) has no doc line", i)
		}
	}
	for alias, want := range map[string]Pattern{
		"cbr-pulse":       PatternPulse,
		"BURST":           PatternPulse,
		"sync-aimd":       PatternSyncAIMD,
		"lockstep":        PatternSyncAIMD,
		" multihop-load ": PatternParkingLot,
	} {
		if p, err := ParsePattern(alias); err != nil || p != want {
			t.Errorf("ParsePattern(%q) = %v, %v; want %v", alias, p, err, want)
		}
	}
	if _, err := ParsePattern("nonsense"); err == nil {
		t.Error("ParsePattern accepted an unknown name")
	}
	var p Pattern
	if err := p.UnmarshalText([]byte("aimdsync")); err != nil || p != PatternSyncAIMD {
		t.Errorf("UnmarshalText = %v, %v", p, err)
	}
	if b, err := PatternParkingLot.MarshalText(); err != nil || string(b) != "parkinglot" {
		t.Errorf("MarshalText = %q, %v", b, err)
	}
	if _, err := Pattern(99).MarshalText(); err == nil {
		t.Error("MarshalText accepted an out-of-range pattern")
	}
}

// testDumbbell builds a small fixed-RTT dumbbell with a DropTail buffer.
func testDumbbell(stations, bufferPkts int, rate units.BitRate) (*sim.Scheduler, *topology.Dumbbell) {
	sched := sim.NewScheduler()
	d := topology.NewDumbbell(topology.Config{
		Sched:           sched,
		BottleneckRate:  rate,
		BottleneckDelay: 10 * units.Millisecond,
		Buffer:          queue.PacketLimit(bufferPkts),
		Stations:        stations,
		RTTMin:          100 * units.Millisecond,
		RTTMax:          100 * units.Millisecond,
	})
	return sched, d
}

func runPulse(t *testing.T) (*PulseDriver, *topology.Dumbbell) {
	t.Helper()
	sched, d := testDumbbell(4, 20, 10*units.Mbps)
	src := Pulse{
		Senders:  4,
		PeakRate: 40 * units.Mbps, // 4x the bottleneck during each burst
		Period:   200 * units.Millisecond,
		Duty:     0.25,
	}
	drv, ok := src.Bind(d, nil).(*PulseDriver)
	if !ok {
		t.Fatal("pulse Bind did not return a *PulseDriver")
	}
	drv.Start()
	sched.Run(units.Epoch.Add(10 * units.Second))
	drv.Stop()
	sched.Run(units.Epoch.Add(12 * units.Second)) // drain in-flight packets
	return drv, d
}

func TestPulseOverloadsDuringBursts(t *testing.T) {
	drv, d := runPulse(t)
	// 10s x 0.25 duty at 40 Mbps aggregate, quantized per train; allow a
	// few percent slack for the window-boundary packets.
	onAir := units.Duration(float64(10*units.Second) * 0.25)
	expected := int64(onAir) * int64(40*units.Mbps) / int64(units.Second) / int64(units.DefaultSegment.Bits())
	if low, high := expected*95/100, expected*105/100; drv.Sent() < low || drv.Sent() > high {
		t.Errorf("sent %d packets, want ~%d", drv.Sent(), expected)
	}
	// Each burst offers 4x the line rate: the 20-packet buffer must
	// overflow every period even though the mean load is only 1x.
	if lr := drv.LossRate(); lr < 0.05 {
		t.Errorf("loss rate %.4f; synchronized bursts should overflow the buffer", lr)
	}
	if got := d.Bottleneck.Queue().Stats().DroppedPackets; got == 0 {
		t.Error("bottleneck queue recorded no drops")
	}
	if drv.MeanDelay() <= 0 {
		t.Error("no delay samples recorded")
	}
	if drv.Generated() != 4 || drv.Active() != 0 {
		t.Errorf("generated %d active %d after stop", drv.Generated(), drv.Active())
	}
}

func TestPulseDeterministic(t *testing.T) {
	a, _ := runPulse(t)
	b, _ := runPulse(t)
	if a.Sent() != b.Sent() || a.Received() != b.Received() {
		t.Errorf("pulse runs diverged: %d/%d vs %d/%d",
			a.Sent(), a.Received(), b.Sent(), b.Received())
	}
}

// TestSyncAIMDSharedLossEpochs pins the cohort's phase alignment: with
// equal RTTs and simultaneous starts the flows fill the buffer together
// and take their losses together, so every flow retransmits (no
// bystanders) and the windows stay tightly bunched. Exact per-flow
// lockstep is not claimed — which packets a full buffer rejects depends
// on arrival interleaving — but the spread stays small because every
// flow rides the same loss epochs.
func TestSyncAIMDSharedLossEpochs(t *testing.T) {
	sched, d := testDumbbell(8, 25, 10*units.Mbps)
	src := SyncAIMD{N: 8, TCP: tcp.Config{SegmentSize: units.DefaultSegment}}
	drv := src.Bind(d, sim.NewRNG(1)).(*SyncAIMDDriver)
	drv.Start()
	sched.Run(units.Epoch.Add(30 * units.Second))

	flows := drv.Flows()
	if len(flows) != 8 || drv.Active() != 8 || drv.Generated() != 8 {
		t.Fatalf("cohort size: flows=%d active=%d generated=%d", len(flows), drv.Active(), drv.Generated())
	}
	minW, maxW := flows[0].Sender.Cwnd(), flows[0].Sender.Cwnd()
	for i, f := range flows {
		if f.Sender.Stats().SegmentsSent == 0 {
			t.Fatalf("flow %d sent nothing", i)
		}
		if f.Sender.Stats().Retransmits == 0 {
			t.Errorf("flow %d never retransmitted; cohort should take losses together", i)
		}
		if w := f.Sender.Cwnd(); w < minW {
			minW = w
		} else if w > maxW {
			maxW = w
		}
	}
	if maxW > 1.25*minW {
		t.Errorf("cwnd spread [%.2f, %.2f] too wide for a phase-aligned cohort", minW, maxW)
	}
}

// TestSyncAIMDAmplifiesAggregateSwing pins the property the pattern
// exists to produce: relative to the same cohort with the paper's
// random staggered starts, the synchronized cohort's aggregate window
// swings with much larger relative amplitude — the sqrt(n) smoothing is
// defeated.
func TestSyncAIMDAmplifiesAggregateSwing(t *testing.T) {
	spec := tcp.Config{SegmentSize: units.DefaultSegment}
	cov := func(start func(*sim.Scheduler, *topology.Dumbbell)) float64 {
		sched, d := testDumbbell(8, 25, 10*units.Mbps)
		start(sched, d)
		var w stats.Welford
		for at := 10 * units.Second; at <= 30*units.Second; at += 100 * units.Millisecond {
			sched.Run(units.Epoch.Add(at))
			w.Add(d.AggregateWindow())
		}
		return w.CoV()
	}
	sync := cov(func(sched *sim.Scheduler, d *topology.Dumbbell) {
		SyncAIMD{N: 8, TCP: spec}.Bind(d, sim.NewRNG(1)).Start()
	})
	staggered := cov(func(sched *sim.Scheduler, d *topology.Dumbbell) {
		workload.StartLongLived(d, 8, spec, sim.NewRNG(1), 5*units.Second)
	})
	if sync <= staggered {
		t.Errorf("aggregate-window CoV: synchronized %.4f <= staggered %.4f; pattern failed to synchronize", sync, staggered)
	}
}

func TestParkingLotLoadBuild(t *testing.T) {
	sched := sim.NewScheduler()
	rate := 20 * units.Mbps
	hops := 3
	rates := make([]units.BitRate, hops)
	delays := make([]units.Duration, hops)
	buffers := make([]queue.Limit, hops)
	for i := range rates {
		rates[i] = rate
		delays[i] = 5 * units.Millisecond
		buffers[i] = queue.PacketLimit(30)
	}
	p := topology.NewParkingLot(topology.ParkingLotConfig{
		Sched: sched, Rates: rates, Delays: delays, Buffers: buffers,
	})
	load := ParkingLotLoad{Through: 3, PerHop: 2, RTT: 80 * units.Millisecond}
	if load.FlowsPerLink() != 5 {
		t.Fatalf("FlowsPerLink = %d", load.FlowsPerLink())
	}
	through, cross := load.Build(sched, p, tcp.Config{SegmentSize: units.DefaultSegment})
	if len(through) != 3 || len(cross) != 6 {
		t.Fatalf("built %d through, %d cross flows", len(through), len(cross))
	}
	if got := len(p.Flows()); got != 9 {
		t.Fatalf("parking lot has %d flows", got)
	}
	sched.Run(units.Epoch.Add(20 * units.Second))
	for i, l := range p.Links {
		if l.DeliveredPackets() == 0 {
			t.Errorf("core link %d delivered nothing", i)
		}
	}
	for i, f := range through {
		if f.Sender.Stats().SegmentsSent == 0 {
			t.Errorf("through flow %d sent nothing", i)
		}
	}
	// Every link is loaded; with synchronized starts each hop's queue
	// sees congestion, not just a single bottleneck.
	congested := 0
	for _, dt := range p.DropTails {
		if dt.Stats().DroppedPackets > 0 {
			congested++
		}
	}
	if congested == 0 {
		t.Error("no core queue ever dropped: pattern did not congest the chain")
	}
}
