package adversary

import (
	"fmt"

	"bufsim/internal/sim"
	"bufsim/internal/tcp"
	"bufsim/internal/topology"
	"bufsim/internal/workload"
)

// SyncAIMD is the phase-synchronized AIMD cohort as a workload.Source:
// N identical long-lived TCP flows all started at the same instant. The
// paper's sqrt(n) reduction comes from sawtooths with "random (and
// independent) start times" desynchronizing (§3); this source removes
// both sources of independence at once. Started together over a
// dumbbell with RTTMin == RTTMax (no per-station draw), the cohort
// fills the buffer in phase, takes its losses in the same RTT, and
// halves together — the aggregate window swings with the full sawtooth
// amplitude, as if n were 1.
//
// The bound RNG is passed through to workload.StartLongLived but never
// drawn from (stagger is zero); any residual desynchronization comes
// only from the topology, which is the experiment's knob.
type SyncAIMD struct {
	// N is the cohort size.
	N int
	// TCP is the shared flow template; TotalSegments is forced to 0
	// (long-lived).
	TCP tcp.Config
}

func (s SyncAIMD) String() string { return fmt.Sprintf("aimdsync(%d)", s.N) }

// Bind implements workload.Source.
func (s SyncAIMD) Bind(d *topology.Dumbbell, rng *sim.RNG) workload.Driver {
	if s.N <= 0 {
		panic(fmt.Sprintf("adversary: SyncAIMD.N = %d", s.N))
	}
	return &SyncAIMDDriver{src: s, d: d, rng: rng}
}

// SyncAIMDDriver is the bound cohort.
type SyncAIMDDriver struct {
	src   SyncAIMD
	d     *topology.Dumbbell
	rng   *sim.RNG
	flows []*topology.Flow
}

// Start implements workload.Driver: the whole cohort is posted at the
// current instant (zero stagger).
func (s *SyncAIMDDriver) Start() {
	if s.flows != nil {
		panic("adversary: aimdsync driver started twice")
	}
	s.flows = workload.StartLongLived(s.d, s.src.N, s.src.TCP, s.rng, 0)
}

// Stop implements workload.Driver: long-lived flows run until the
// simulation ends.
func (s *SyncAIMDDriver) Stop() {}

// Active implements workload.Driver.
func (s *SyncAIMDDriver) Active() int { return len(s.flows) }

// Generated implements workload.Driver.
func (s *SyncAIMDDriver) Generated() int64 { return int64(len(s.flows)) }

// Records implements workload.Driver: the cohort never completes.
func (s *SyncAIMDDriver) Records() []*workload.FlowRecord { return nil }

// Flows exposes the cohort for per-flow inspection (lockstep checks,
// window sampling).
func (s *SyncAIMDDriver) Flows() []*topology.Flow { return s.flows }
