// Package adversary generates deliberately hostile traffic for the
// buffer-sizing experiments. The paper's sqrt(n) rule rests on
// statistical assumptions — desynchronized sawtooths with independent
// random phases (§3), a single point of congestion (§5.1), and smooth
// aggregate arrivals — and the sources here are built to violate each
// one on purpose, in the spirit of adversarial queueing theory: instead
// of asking how a buffer behaves under plausible traffic, ask what the
// worst admissible traffic does to the buffer.
//
// Three patterns are provided, one per broken assumption:
//
//   - Pulse: phase-aligned on/off CBR trains from every sender at once,
//     so the aggregate arrives as periodic line-rate bursts rather than
//     the smoothed sum the central-limit argument expects.
//   - SyncAIMD: a cohort of identical long-lived TCP flows started at
//     the same instant; run over equal RTTs the sawtooths stay in
//     lockstep and the buffer sees the full-amplitude aggregate swing
//     the sqrt(n) reduction assumes away.
//   - ParkingLotLoad: through-flows crossing every hop of a parking-lot
//     chain plus per-hop cross traffic sized so each core link is an
//     equal bottleneck — the multi-congestion-point case §5.1 assumes
//     is rare.
//
// Every pattern is deterministic by design: bursts carry no jitter and
// cohort starts are simultaneous, because the adversary's power is
// exactly the randomness the normal workloads add to be realistic.
package adversary

import (
	"fmt"
	"strings"
)

// Pattern identifies one adversarial traffic pattern.
type Pattern int

const (
	// PatternPulse is the burst-synchronized CBR pulse train (Pulse).
	PatternPulse Pattern = iota
	// PatternSyncAIMD is the phase-synchronized AIMD cohort (SyncAIMD).
	PatternSyncAIMD
	// PatternParkingLot is the load-balanced multi-bottleneck pattern
	// (ParkingLotLoad).
	PatternParkingLot

	numPatterns = int(PatternParkingLot) + 1
)

// patterns is the registry: the canonical name, accepted aliases, and a
// one-line description per pattern. Parsing and printing derive from it
// so CLIs, configs and tables cannot drift apart.
var patterns = [numPatterns]struct {
	name    string
	aliases []string
	doc     string
}{
	PatternPulse: {"pulse", []string{"cbr-pulse", "burst"},
		"phase-aligned on/off CBR trains: the aggregate arrives as periodic line-rate bursts"},
	PatternSyncAIMD: {"aimdsync", []string{"sync-aimd", "lockstep"},
		"identical TCP flows started at the same instant: sawtooths in lockstep, full-amplitude window swings"},
	PatternParkingLot: {"parkinglot", []string{"multihop-load", "loadbalanced"},
		"through plus per-hop flows loading every link of a parking-lot chain equally: no single congestion point"},
}

func (p Pattern) String() string {
	if p < 0 || int(p) >= numPatterns {
		return fmt.Sprintf("pattern(%d)", int(p))
	}
	return patterns[p].name
}

// Doc returns the pattern's one-line description.
func (p Pattern) Doc() string {
	if p < 0 || int(p) >= numPatterns {
		return ""
	}
	return patterns[p].doc
}

// ParsePattern resolves a canonical name or alias, case-insensitively.
func ParsePattern(s string) (Pattern, error) {
	want := strings.ToLower(strings.TrimSpace(s))
	for i := range patterns {
		if patterns[i].name == want {
			return Pattern(i), nil
		}
		for _, a := range patterns[i].aliases {
			if a == want {
				return Pattern(i), nil
			}
		}
	}
	return 0, fmt.Errorf("adversary: unknown pattern %q (have %s)",
		s, strings.Join(PatternNames(), ", "))
}

// PatternNames returns the canonical names in registry order.
func PatternNames() []string {
	names := make([]string, numPatterns)
	for i := range patterns {
		names[i] = patterns[i].name
	}
	return names
}

// MarshalText implements encoding.TextMarshaler.
func (p Pattern) MarshalText() ([]byte, error) {
	if p < 0 || int(p) >= numPatterns {
		return nil, fmt.Errorf("adversary: cannot marshal pattern(%d)", int(p))
	}
	return []byte(p.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (p *Pattern) UnmarshalText(text []byte) error {
	v, err := ParsePattern(string(text))
	if err != nil {
		return err
	}
	*p = v
	return nil
}
