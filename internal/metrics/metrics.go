// Package metrics is the simulator's telemetry layer: counters, gauges,
// fixed-bucket histograms and (optionally) sampled time series that the
// sim kernel, queues, links and TCP senders report into.
//
// Two properties are non-negotiable and shape the whole design:
//
//   - Observation, never perturbation. Instruments hold plain values; they
//     never schedule events, draw random numbers, or touch simulation
//     state, so a run with metrics enabled schedules, drops and ACKs
//     exactly the same packets as a run without.
//
//   - Near-zero cost when disabled. Every constructor and every instrument
//     method is safe on a nil receiver and does nothing, so call sites
//     stay unconditional ("c.Inc()") and the disabled path costs one nil
//     check. Components accept a *Registry and simply pass it along; a nil
//     registry hands out nil instruments.
//
// A Registry is confined to one simulation and is NOT goroutine-safe; the
// sweep drivers give each parallel run its own registry and Merge them
// deterministically afterwards. Expensive-to-maintain values (heap depth,
// queue occupancy, aggregated sender counters) are produced by collector
// callbacks that run only at snapshot time, keeping them off the hot path
// entirely.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Counter is a monotonically increasing int64. A nil *Counter is a valid
// no-op instrument.
type Counter struct{ v int64 }

// Add increases the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Set overwrites the counter value; collectors use it to publish counters
// that are maintained elsewhere (e.g. queue.Stats) without hot-path cost.
func (c *Counter) Set(v int64) {
	if c != nil {
		c.v = v
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instantaneous float64 measurement. A nil *Gauge is a valid
// no-op instrument.
type Gauge struct{ v float64 }

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// SetMax records v only if it exceeds the current value.
func (g *Gauge) SetMax(v float64) {
	if g != nil && v > g.v {
		g.v = v
	}
}

// Value returns the gauge value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram counts observations into fixed buckets defined by ascending
// upper bounds; values above the last bound land in an overflow bucket.
// Buckets are fixed at creation so Observe never allocates. A nil
// *Histogram is a valid no-op instrument.
type Histogram struct {
	bounds   []float64 // ascending upper bounds (inclusive)
	counts   []int64   // len(bounds)+1; last bucket is overflow
	sum      float64
	n        int64
	min, max float64
}

// NewHistogram returns a histogram with the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Mean returns the mean observation (0 with no observations or on nil).
func (h *Histogram) Mean() float64 {
	if h == nil || h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Quantile returns an upper-bound estimate of the q-quantile (0 <= q <= 1)
// from the bucket counts: the bound of the bucket where the quantile
// falls. The overflow bucket reports the observed maximum.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.n == 0 {
		return 0
	}
	target := int64(q * float64(h.n))
	if target >= h.n {
		target = h.n - 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum > target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}

// ExpBuckets returns n ascending bounds starting at start, each factor
// times the previous — the usual shape for latency histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic(fmt.Sprintf("metrics: bad ExpBuckets(%g, %g, %d)", start, factor, n))
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// Series is a bounded sampled time series: (time, value) pairs recorded
// until capacity, then dropped (and counted). It exists for the optional
// "show me the trajectory" use; bounded capacity keeps long runs flat in
// memory. A nil *Series is a valid no-op instrument.
type Series struct {
	capacity int
	times    []float64
	values   []float64
	dropped  int64
}

// Append records one sample (dropped once at capacity).
func (s *Series) Append(t, v float64) {
	if s == nil {
		return
	}
	if len(s.times) >= s.capacity {
		s.dropped++
		return
	}
	s.times = append(s.times, t)
	s.values = append(s.values, v)
}

// Len returns the number of retained samples.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return len(s.times)
}

// Registry is a named collection of instruments plus collector callbacks
// that populate snapshot-time values. The zero value is not usable; call
// New. All methods are safe on a nil *Registry and return nil instruments,
// which is how "metrics disabled" is expressed.
type Registry struct {
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	series     map[string]*Series
	collectors []func()
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		series:   map[string]*Series{},
	}
}

// Counter returns the named counter, creating it if needed (nil on a nil
// registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed (nil on a nil
// registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// if needed (nil on a nil registry). Bounds are fixed by whoever creates
// the histogram first.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Series returns the named bounded time series, creating it with the given
// capacity if needed (nil on a nil registry).
func (r *Registry) Series(name string, capacity int) *Series {
	if r == nil {
		return nil
	}
	s, ok := r.series[name]
	if !ok {
		if capacity < 1 {
			capacity = 1
		}
		s = &Series{capacity: capacity}
		r.series[name] = s
	}
	return s
}

// OnCollect registers a callback run at snapshot time; components use it
// to publish values that would be too expensive (or pointless) to maintain
// per event.
func (r *Registry) OnCollect(fn func()) {
	if r == nil || fn == nil {
		return
	}
	r.collectors = append(r.collectors, fn)
}

// Collect runs the registered collectors.
func (r *Registry) Collect() {
	if r == nil {
		return
	}
	for _, fn := range r.collectors {
		fn()
	}
}

// BucketSnapshot is one histogram bucket in a snapshot: the count of
// observations at or below UpperBound (and above the previous bound).
type BucketSnapshot struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// HistogramSnapshot is a histogram's exported state.
type HistogramSnapshot struct {
	Count    int64            `json:"count"`
	Sum      float64          `json:"sum"`
	Min      float64          `json:"min"`
	Max      float64          `json:"max"`
	Overflow int64            `json:"overflow"`
	Buckets  []BucketSnapshot `json:"buckets"`
}

// SeriesSnapshot is a sampled time series' exported state.
type SeriesSnapshot struct {
	Times   []float64 `json:"times"`
	Values  []float64 `json:"values"`
	Dropped int64     `json:"dropped,omitempty"`
}

// Snapshot is the full registry state at one instant. Map keys make the
// JSON encoding deterministic (encoding/json sorts map keys).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Series     map[string]SeriesSnapshot    `json:"series,omitempty"`
}

// Snapshot runs the collectors and exports every instrument. Safe on a nil
// registry (returns an empty snapshot).
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{}
	if r == nil {
		return snap
	}
	r.Collect()
	if len(r.counters) > 0 {
		snap.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			snap.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		snap.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			snap.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			hs := HistogramSnapshot{
				Count: h.n, Sum: h.sum, Min: h.min, Max: h.max,
				Overflow: h.counts[len(h.counts)-1],
				Buckets:  make([]BucketSnapshot, len(h.bounds)),
			}
			for i, b := range h.bounds {
				hs.Buckets[i] = BucketSnapshot{UpperBound: b, Count: h.counts[i]}
			}
			snap.Histograms[name] = hs
		}
	}
	if len(r.series) > 0 {
		snap.Series = make(map[string]SeriesSnapshot, len(r.series))
		for name, s := range r.series {
			snap.Series[name] = SeriesSnapshot{Times: s.times, Values: s.values, Dropped: s.dropped}
		}
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON. The output is
// deterministic: map keys are sorted by the encoder.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Merge folds child's instruments into r under "prefix/name". Counters and
// histogram buckets add; gauges overwrite; series append sample-by-sample.
// Child collectors run once (via Snapshot) and are not carried over. Sweep
// drivers call Merge in deterministic (index) order after their parallel
// phase so the combined registry is identical at any worker count.
func (r *Registry) Merge(prefix string, child *Registry) {
	if r == nil || child == nil {
		return
	}
	child.Collect()
	for name, c := range child.counters {
		//lint:ignore maporder each key feeds its own instrument, so the per-key merge commutes
		r.Counter(prefix + "/" + name).Add(c.Value())
	}
	for name, g := range child.gauges {
		//lint:ignore maporder each key feeds its own instrument, so the per-key merge commutes
		r.Gauge(prefix + "/" + name).Set(g.Value())
	}
	for name, h := range child.hists {
		dst := r.Histogram(prefix+"/"+name, h.bounds)
		if len(dst.counts) != len(h.counts) {
			panic(fmt.Sprintf("metrics: merge of %q with mismatched buckets", name))
		}
		for i, c := range h.counts {
			dst.counts[i] += c
		}
		if h.n > 0 {
			if dst.n == 0 || h.min < dst.min {
				dst.min = h.min
			}
			if dst.n == 0 || h.max > dst.max {
				dst.max = h.max
			}
			dst.sum += h.sum
			dst.n += h.n
		}
	}
	for name, s := range child.series {
		dst := r.Series(prefix+"/"+name, s.capacity)
		for i := range s.times {
			dst.Append(s.times[i], s.values[i])
		}
		if dst != nil {
			dst.dropped += s.dropped
		}
	}
}
