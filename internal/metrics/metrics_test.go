package metrics

import (
	"bytes"
	"math"
	"testing"
)

func TestNilRegistryAndInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(10)
	if c.Value() != 0 {
		t.Fatal("nil counter accumulated")
	}
	g := r.Gauge("y")
	g.Set(3)
	g.SetMax(9)
	if g.Value() != 0 {
		t.Fatal("nil gauge accumulated")
	}
	h := r.Histogram("z", []float64{1, 2})
	h.Observe(1.5)
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram accumulated")
	}
	s := r.Series("w", 4)
	s.Append(0, 1)
	if s.Len() != 0 {
		t.Fatal("nil series accumulated")
	}
	r.OnCollect(func() { t.Fatal("collector on nil registry ran") })
	r.Collect()
	snap := r.Snapshot()
	if snap.Counters != nil || snap.Gauges != nil {
		t.Fatal("nil registry snapshot not empty")
	}
	r.Merge("p", New())
}

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("events")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("events") != c {
		t.Fatal("same name returned a different counter")
	}
	c.Set(42)
	if c.Value() != 42 {
		t.Fatal("Set did not overwrite")
	}
	g := r.Gauge("depth")
	g.SetMax(3)
	g.SetMax(1)
	if g.Value() != 3 {
		t.Fatalf("SetMax kept %v, want 3", g.Value())
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 0.7, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.counts[0]; got != 2 { // <= 1
		t.Fatalf("bucket0 = %d, want 2", got)
	}
	if got := h.counts[3]; got != 1 { // overflow
		t.Fatalf("overflow = %d, want 1", got)
	}
	if h.min != 0.5 || h.max != 500 {
		t.Fatalf("min/max = %v/%v", h.min, h.max)
	}
	if q := h.Quantile(0.5); q != 10 {
		t.Fatalf("median bound = %v, want 10", q)
	}
	if q := h.Quantile(1); q != 500 {
		t.Fatalf("q100 = %v, want observed max 500", q)
	}
	if m := h.Mean(); math.Abs(m-(0.5+0.7+5+50+500)/5) > 1e-9 {
		t.Fatalf("mean = %v", m)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.1, 10, 4)
	want := []float64{0.1, 1, 10, 100}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-9 {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
}

func TestSeriesCapacity(t *testing.T) {
	r := New()
	s := r.Series("cwnd", 2)
	s.Append(0, 1)
	s.Append(1, 2)
	s.Append(2, 3)
	if s.Len() != 2 || s.dropped != 1 {
		t.Fatalf("len=%d dropped=%d", s.Len(), s.dropped)
	}
}

func TestCollectorsRunAtSnapshot(t *testing.T) {
	r := New()
	g := r.Gauge("live")
	n := 0
	r.OnCollect(func() { n++; g.Set(float64(n)) })
	snap := r.Snapshot()
	if snap.Gauges["live"] != 1 {
		t.Fatalf("gauge = %v, want 1", snap.Gauges["live"])
	}
	r.Snapshot()
	if n != 2 {
		t.Fatalf("collector ran %d times, want 2", n)
	}
}

func TestWriteJSONDeterministic(t *testing.T) {
	build := func() *Registry {
		r := New()
		r.Counter("b").Add(2)
		r.Counter("a").Add(1)
		r.Gauge("g").Set(0.5)
		r.Histogram("h", []float64{1, 2}).Observe(1.5)
		r.Series("s", 8).Append(0, 3)
		return r
	}
	var b1, b2 bytes.Buffer
	if err := build().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatalf("non-deterministic JSON:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	if b1.Len() == 0 {
		t.Fatal("empty JSON")
	}
}

func TestMerge(t *testing.T) {
	parent := New()
	for i := 0; i < 2; i++ {
		child := New()
		child.Counter("drops").Add(3)
		child.Gauge("occ").Set(float64(i))
		child.Histogram("soj", []float64{1, 10}).Observe(5)
		child.Series("ts", 4).Append(float64(i), 1)
		parent.Merge("cell", child)
	}
	snap := parent.Snapshot()
	if got := snap.Counters["cell/drops"]; got != 6 {
		t.Fatalf("merged counter = %d, want 6", got)
	}
	if got := snap.Gauges["cell/occ"]; got != 1 {
		t.Fatalf("merged gauge = %v, want 1 (last wins)", got)
	}
	h := snap.Histograms["cell/soj"]
	if h.Count != 2 || h.Buckets[1].Count != 2 {
		t.Fatalf("merged histogram = %+v", h)
	}
	if len(snap.Series["cell/ts"].Times) != 2 {
		t.Fatalf("merged series = %+v", snap.Series["cell/ts"])
	}
}

func TestMergeRunsChildCollectors(t *testing.T) {
	parent := New()
	child := New()
	g := child.Gauge("v")
	child.OnCollect(func() { g.Set(7) })
	parent.Merge("c", child)
	if got := parent.Gauge("c/v").Value(); got != 7 {
		t.Fatalf("collector-populated gauge = %v, want 7", got)
	}
}
