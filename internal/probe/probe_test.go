package probe_test

import (
	"math"
	"testing"

	"bufsim/internal/probe"
	"bufsim/internal/queue"
	"bufsim/internal/sim"
	"bufsim/internal/units"
)

const probeRate = 10 * units.Mbps

// ladder is the range of configured buffer limits (packets) the
// estimates are validated against; the acceptance bar is 15% but the
// probe should be exact against our own disciplines at these scales.
var ladder = []int{16, 32, 64, 128, 256, 512}

func relErr(estimated, configured int) float64 {
	return math.Abs(float64(estimated)-float64(configured)) / float64(configured)
}

func TestProbeDropTailPacketLimits(t *testing.T) {
	for _, limit := range ladder {
		q := queue.NewDropTail(queue.PacketLimit(limit))
		est, err := probe.Run(q, probe.Config{Rate: probeRate})
		if err != nil {
			t.Fatalf("limit %d: %v", limit, err)
		}
		if est.Policy != probe.PolicyDropTail {
			t.Errorf("limit %d: policy = %v, want droptail (evidence: sojourn %.4f, early %.4f)",
				limit, est.Policy, est.SojournLossFraction, est.EarlyDropFraction)
		}
		if est.Mode != probe.PacketLimited {
			t.Errorf("limit %d: mode = %v, want packets (fill ratio %.2f)", limit, est.Mode, est.FillRatio)
		}
		if e := relErr(est.CapacityPackets, limit); e > 0.15 {
			t.Errorf("limit %d: estimated %d packets (%.0f%% off)", limit, est.CapacityPackets, 100*e)
		}
	}
}

func TestProbeDropTailByteLimits(t *testing.T) {
	// Byte limits both on and off packet-size multiples.
	for _, limitBytes := range []units.ByteSize{
		24_000, 96_000, 100_000, 384_000,
	} {
		q := queue.NewDropTail(queue.ByteLimit(limitBytes))
		est, err := probe.Run(q, probe.Config{Rate: probeRate})
		if err != nil {
			t.Fatalf("limit %v: %v", limitBytes, err)
		}
		if est.Policy != probe.PolicyDropTail {
			t.Errorf("limit %v: policy = %v, want droptail", limitBytes, est.Policy)
		}
		if est.Mode != probe.ByteLimited {
			t.Errorf("limit %v: mode = %v, want bytes (fill ratio %.2f)", limitBytes, est.Mode, est.FillRatio)
		}
		e := math.Abs(float64(est.CapacityBytes)-float64(limitBytes)) / float64(limitBytes)
		if e > 0.15 {
			t.Errorf("limit %v: estimated %v (%.0f%% off)", limitBytes, est.CapacityBytes, 100*e)
		}
	}
}

func TestProbeREDLadder(t *testing.T) {
	meanPkt := units.TransmissionTime(units.DefaultSegment, probeRate)
	for _, limit := range ladder {
		rng := sim.NewRNG(int64(limit))
		q := queue.NewRED(queue.DefaultRED(limit, meanPkt, rng.Float64))
		est, err := probe.Run(q, probe.Config{Rate: probeRate})
		if err != nil {
			t.Fatalf("limit %d: %v", limit, err)
		}
		if est.Policy != probe.PolicyRED {
			t.Errorf("limit %d: policy = %v, want red (evidence: sojourn %.4f, early %.4f)",
				limit, est.Policy, est.SojournLossFraction, est.EarlyDropFraction)
		}
		if est.Mode != probe.PacketLimited {
			t.Errorf("limit %d: mode = %v, want packets (fill ratio %.2f)", limit, est.Mode, est.FillRatio)
		}
		if e := relErr(est.CapacityPackets, limit); e > 0.15 {
			t.Errorf("limit %d: estimated %d packets (%.0f%% off)", limit, est.CapacityPackets, 100*e)
		}
	}
}

func TestProbeCoDelLadder(t *testing.T) {
	for _, limit := range ladder {
		q := queue.NewCoDel(queue.CoDelConfig{Limit: queue.PacketLimit(limit)})
		est, err := probe.Run(q, probe.Config{Rate: probeRate})
		if err != nil {
			t.Fatalf("limit %d: %v", limit, err)
		}
		if est.Policy != probe.PolicyCoDel {
			t.Errorf("limit %d: policy = %v, want codel (evidence: sojourn %.4f, early %.4f)",
				limit, est.Policy, est.SojournLossFraction, est.EarlyDropFraction)
		}
		if est.Mode != probe.PacketLimited {
			t.Errorf("limit %d: mode = %v, want packets (fill ratio %.2f)", limit, est.Mode, est.FillRatio)
		}
		if e := relErr(est.CapacityPackets, limit); e > 0.15 {
			t.Errorf("limit %d: estimated %d packets (%.0f%% off)", limit, est.CapacityPackets, 100*e)
		}
	}
}

func TestProbeUnlimitedQueue(t *testing.T) {
	q := queue.NewDropTail(queue.Unlimited())
	if _, err := probe.Run(q, probe.Config{Rate: probeRate}); err == nil {
		t.Fatal("probe of an unlimited queue returned no error")
	}
}

func TestProbeRequiresRate(t *testing.T) {
	q := queue.NewDropTail(queue.PacketLimit(10))
	if _, err := probe.Run(q, probe.Config{}); err == nil {
		t.Fatal("probe without a rate returned no error")
	}
}

// TestProbeDeterministic pins that the probe consumes no hidden state:
// two runs against identically seeded queues produce identical
// estimates.
func TestProbeDeterministic(t *testing.T) {
	meanPkt := units.TransmissionTime(units.DefaultSegment, probeRate)
	estimate := func() probe.Estimate {
		rng := sim.NewRNG(42)
		q := queue.NewRED(queue.DefaultRED(64, meanPkt, rng.Float64))
		est, err := probe.Run(q, probe.Config{Rate: probeRate})
		if err != nil {
			t.Fatal(err)
		}
		return est
	}
	if a, b := estimate(), estimate(); a != b {
		t.Errorf("probe not deterministic:\n%+v\n%+v", a, b)
	}
}
