package probe_test

import (
	"testing"

	"bufsim/internal/probe"
	"bufsim/internal/queue"
	"bufsim/internal/sim"
	"bufsim/internal/units"
)

// FuzzClassifier drives the drop-policy classifier across random
// (discipline, limit, seed) triples and checks the invariants that hold
// for every input:
//
//   - the probe never panics and never over-estimates the physical limit,
//   - a drop-tail queue is never classified as anything else (both of
//     the other signatures are exact zeros for it),
//   - RED is never classified as CoDel (RED drops only at admission),
//     and CoDel is never classified as RED (CoDel admits everything
//     below its physical limit).
//
// Exact classification for RED and CoDel additionally needs the signal
// to be physically present (e.g. a CoDel backlog whose sojourn exceeds
// the 5 ms target), which the deterministic ladder tests pin; the fuzz
// checks the classifier never crosses signatures.
func FuzzClassifier(f *testing.F) {
	f.Add(uint8(0), uint16(32), int64(1))
	f.Add(uint8(1), uint16(64), int64(2))
	f.Add(uint8(2), uint16(128), int64(3))
	f.Add(uint8(2), uint16(9), int64(4))
	f.Fuzz(func(t *testing.T, disc uint8, rawLimit uint16, seed int64) {
		limit := 8 + int(rawLimit)%505 // [8, 512]: within the fill method's validity
		want := probe.Policy(int(disc) % 3)
		var q probe.BlackBox
		switch want {
		case probe.PolicyDropTail:
			q = queue.NewDropTail(queue.PacketLimit(limit))
		case probe.PolicyRED:
			rng := sim.NewRNG(seed)
			q = queue.NewRED(queue.DefaultRED(limit, units.TransmissionTime(units.DefaultSegment, probeRate), rng.Float64))
		case probe.PolicyCoDel:
			q = queue.NewCoDel(queue.CoDelConfig{Limit: queue.PacketLimit(limit)})
		}
		est, err := probe.Run(q, probe.Config{Rate: probeRate})
		if err != nil {
			t.Fatalf("disc %v limit %d: %v", want, limit, err)
		}
		if est.CapacityPackets < 1 || est.CapacityPackets > limit {
			t.Fatalf("disc %v limit %d: capacity %d out of [1, %d]", want, limit, est.CapacityPackets, limit)
		}
		switch want {
		case probe.PolicyDropTail:
			if est.Policy != probe.PolicyDropTail {
				t.Fatalf("droptail limit %d classified %v (sojourn %.4f, early %.4f)",
					limit, est.Policy, est.SojournLossFraction, est.EarlyDropFraction)
			}
		case probe.PolicyRED:
			if est.Policy == probe.PolicyCoDel {
				t.Fatalf("red limit %d classified codel (sojourn %.4f)", limit, est.SojournLossFraction)
			}
		case probe.PolicyCoDel:
			if est.Policy == probe.PolicyRED {
				t.Fatalf("codel limit %d classified red (early %.4f)", limit, est.EarlyDropFraction)
			}
		}
	})
}
