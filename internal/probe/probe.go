// Package probe estimates a queue's buffer behaviour from the outside:
// it sends packet trains through a queue it cannot inspect and infers
// the effective buffer size, whether the limit is counted in packets or
// bytes, and which drop policy governs admission — the black-box
// methodology of "Empirically Characterizing the Buffer Behaviour of
// Real Devices" (see PAPERS.md), applied to the simulator's own queue
// implementations so the inference can be validated against ground
// truth.
//
// The probe owns virtual time: it emulates a fixed-rate server draining
// the queue, so no scheduler is involved and a probe run is a pure
// function of (queue state, config). It observes only what a real
// black-box measurement could observe — whether each offered packet was
// accepted, and which packets eventually came back out.
//
// Method, in phases:
//
//  1. Fill: offer a line-rate burst until the queue sustains rejection.
//     The admitted count is the capacity estimate. RED's probabilistic
//     early drops are isolated (Floyd's count resets after each), so a
//     short run of consecutive rejections separates "unlucky" from
//     "physically full".
//  2. Drain at the service rate, counting deliveries. Packets that were
//     accepted but never delivered were dropped inside the queue after
//     admission — the signature of a sojourn-time policy (CoDel).
//  3. Refill with smaller packets. A packet-counted limit admits the
//     same number; a byte-counted limit admits proportionally more.
//  4. Steady state: hold the queue near half capacity at the service
//     rate. Admission rejections well below the measured capacity are
//     the signature of an average-queue policy (RED); a pure drop-tail
//     queue never rejects below its limit.
//
// Assumptions, stated so the validation can probe them: the queue is
// work-conserving FIFO at a known service rate, and it admits a
// line-rate burst to its physical limit. A RED whose average-queue
// estimate catches up within one burst (very large buffers relative to
// 1/Wq) reads low — the fill stalls where the average crosses the upper
// threshold rather than at the physical limit.
package probe

import (
	"errors"
	"fmt"

	"bufsim/internal/packet"
	"bufsim/internal/units"
)

// BlackBox is the probed surface: admission and service, nothing else.
// Every queue.Queue satisfies it; the probe deliberately cannot reach
// Len, Bytes or Stats.
type BlackBox interface {
	Enqueue(p *packet.Packet, now units.Time) bool
	Dequeue(now units.Time) *packet.Packet
}

// Policy is the inferred drop discipline.
type Policy int

const (
	// PolicyDropTail: rejection happens only at the capacity boundary.
	PolicyDropTail Policy = iota
	// PolicyRED: admission rejections occur well below capacity.
	PolicyRED
	// PolicyCoDel: packets are accepted and then dropped before service.
	PolicyCoDel

	numPolicies = int(PolicyCoDel) + 1
)

func (p Policy) String() string {
	switch p {
	case PolicyDropTail:
		return "droptail"
	case PolicyRED:
		return "red"
	case PolicyCoDel:
		return "codel"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy resolves a policy name as printed by String.
func ParsePolicy(s string) (Policy, error) {
	for p := PolicyDropTail; int(p) < numPolicies; p++ {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("probe: unknown policy %q", s)
}

// MarshalText implements encoding.TextMarshaler.
func (p Policy) MarshalText() ([]byte, error) {
	if p < 0 || int(p) >= numPolicies {
		return nil, fmt.Errorf("probe: cannot marshal policy(%d)", int(p))
	}
	return []byte(p.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (p *Policy) UnmarshalText(text []byte) error {
	v, err := ParsePolicy(string(text))
	if err != nil {
		return err
	}
	*p = v
	return nil
}

// LimitMode is the inferred unit of the buffer limit.
type LimitMode int

const (
	// PacketLimited: the queue admits a fixed packet count.
	PacketLimited LimitMode = iota
	// ByteLimited: the queue admits a fixed byte volume.
	ByteLimited
)

func (m LimitMode) String() string {
	if m == ByteLimited {
		return "bytes"
	}
	return "packets"
}

// MarshalText implements encoding.TextMarshaler.
func (m LimitMode) MarshalText() ([]byte, error) { return []byte(m.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (m *LimitMode) UnmarshalText(text []byte) error {
	switch string(text) {
	case "packets":
		*m = PacketLimited
	case "bytes":
		*m = ByteLimited
	default:
		return fmt.Errorf("probe: unknown limit mode %q", text)
	}
	return nil
}

// Config parameterizes a probe run.
type Config struct {
	// Rate is the emulated service rate of the link draining the queue;
	// required.
	Rate units.BitRate
	// PacketSize is the standard probe packet (default
	// units.DefaultSegment).
	PacketSize units.ByteSize
	// SmallPacket is the second size used to discriminate packet- from
	// byte-counted limits (default PacketSize/4).
	SmallPacket units.ByteSize
	// MaxFill caps a single fill's offered packets; a queue that never
	// sustains rejection within it is reported as unlimited (default
	// 32768).
	MaxFill int
	// SteadySteps is the length of the half-capacity steady phase in
	// service slots (default 4096). It must span several RED averaging
	// windows (1/Wq enqueues) and several CoDel intervals of simulated
	// time for the classifier's signals to develop.
	SteadySteps int
}

func (c Config) withDefaults() Config {
	if c.PacketSize == 0 {
		c.PacketSize = units.DefaultSegment
	}
	if c.SmallPacket == 0 {
		c.SmallPacket = c.PacketSize / 4
	}
	if c.MaxFill == 0 {
		c.MaxFill = 32768
	}
	if c.SteadySteps == 0 {
		c.SteadySteps = 4096
	}
	return c
}

// Estimate is the probe's inference, with the evidence behind it.
type Estimate struct {
	// CapacityPackets is the effective buffer size in standard probe
	// packets; CapacityBytes is the same boundary in bytes (exact for a
	// byte-counted limit, capacity x packet size otherwise).
	CapacityPackets int
	CapacityBytes   units.ByteSize
	// Mode is the inferred limit unit; Policy the inferred discipline.
	Mode   LimitMode
	Policy Policy

	// FillRatio is (small-packet fill) / (standard fill): ~1 for a
	// packet-counted limit, ~PacketSize/SmallPacket for a byte-counted
	// one.
	FillRatio float64
	// SojournLossFraction is the share of admitted packets never
	// delivered — post-admission drops (CoDel's control law).
	SojournLossFraction float64
	// EarlyDropFraction is the share of steady-phase offers rejected
	// while the queue sat near half capacity (RED's early drops).
	EarlyDropFraction float64
}

// ErrNoLimit reports a fill that never sustained rejection: the queue is
// effectively unlimited at the probe's scale.
var ErrNoLimit = errors.New("probe: no buffer limit found within MaxFill packets")

// fillConsecReject is how many consecutive rejections a fill treats as
// "physically full". RED's early drops reset Floyd's count, so a run of
// this length below the physical limit needs several independent
// low-probability drops in a row.
const fillConsecReject = 4

// classifyThreshold is the evidence fraction above which a signal counts:
// post-admission loss (CoDel) or below-capacity rejection (RED). Both
// signatures produce percent-level fractions when present and exact
// zeros when absent, so the threshold sits well clear of either side.
const classifyThreshold = 0.005

// run carries one probe's virtual clock and end-to-end accounting.
type run struct {
	q   BlackBox
	cfg Config

	now units.Time
	seq int64

	offered   int64
	admitted  int64
	delivered int64

	// pending is the FIFO of admitted-but-not-yet-delivered sequence
	// numbers — what a real receiver reconstructs from sequence gaps. A
	// delivery that skips pending entries reveals post-admission drops,
	// and len(pending) is the probe's live backlog estimate.
	pending  []int64
	gapDrops int64
}

// Run probes q and returns the inference. The queue should be empty; any
// residue is drained first (and counts toward nothing).
func Run(q BlackBox, cfg Config) (Estimate, error) {
	if cfg.Rate <= 0 {
		return Estimate{}, errors.New("probe: Config.Rate is required")
	}
	cfg = cfg.withDefaults()
	r := &run{q: q, cfg: cfg, now: units.Epoch}
	r.flush()

	// Phase 1: capacity from a line-rate fill with standard packets.
	capPkts, err := r.fill(cfg.PacketSize)
	if err != nil {
		return Estimate{}, err
	}
	r.drain(cfg.PacketSize)
	r.idle()

	// Phase 3: the same fill with small packets separates packet- from
	// byte-counted limits.
	capSmall, err := r.fill(cfg.SmallPacket)
	if err != nil {
		return Estimate{}, err
	}
	r.drain(cfg.SmallPacket)
	r.idle()

	// Phase 4: hold the queue near half capacity and watch for
	// below-capacity rejections.
	steadyOffers, steadyRejects := r.steady(capPkts)
	r.drain(cfg.PacketSize)

	est := Estimate{
		CapacityPackets: capPkts,
		CapacityBytes:   units.ByteSize(capPkts) * cfg.PacketSize,
		FillRatio:       float64(capSmall) / float64(capPkts),
	}
	// A byte-counted limit admits more small packets in proportion to the
	// size ratio; a packet-counted one admits the same count. The midpoint
	// of the two predictions separates them.
	sizeRatio := float64(cfg.PacketSize) / float64(cfg.SmallPacket)
	if est.FillRatio > (1+sizeRatio)/2 {
		est.Mode = ByteLimited
	}
	if r.admitted > 0 {
		est.SojournLossFraction = float64(r.gapDrops) / float64(r.admitted)
	}
	if steadyOffers > 0 {
		est.EarlyDropFraction = float64(steadyRejects) / float64(steadyOffers)
	}
	switch {
	case est.SojournLossFraction > classifyThreshold:
		est.Policy = PolicyCoDel
	case est.EarlyDropFraction > classifyThreshold:
		est.Policy = PolicyRED
	default:
		est.Policy = PolicyDropTail
	}
	return est, nil
}

// offer presents one packet of the given size at the current instant and
// reports whether it was admitted.
func (r *run) offer(size units.ByteSize) bool {
	p := &packet.Packet{Flow: 1, Seq: r.seq, Size: size, Sent: r.now}
	r.seq++
	r.offered++
	if r.q.Enqueue(p, r.now) {
		r.admitted++
		r.pending = append(r.pending, p.Seq)
		return true
	}
	return false
}

// deliver reconciles one served packet against the pending FIFO: skipped
// sequence numbers were admitted and then dropped inside the queue.
func (r *run) deliver(p *packet.Packet) {
	r.delivered++
	for len(r.pending) > 0 {
		s := r.pending[0]
		r.pending = r.pending[1:]
		if s == p.Seq {
			return
		}
		r.gapDrops++
	}
}

// fill offers a back-to-back burst until the queue rejects
// fillConsecReject packets in a row, and returns how many packets the
// queue is holding at that point (admitted and not yet served — the
// capacity at this packet size).
func (r *run) fill(size units.ByteSize) (int, error) {
	held, consec := 0, 0
	for attempts := 0; attempts < r.cfg.MaxFill; attempts++ {
		if r.offer(size) {
			held++
			consec = 0
			continue
		}
		if consec++; consec >= fillConsecReject {
			return held, nil
		}
	}
	return 0, ErrNoLimit
}

// drain serves the queue at the configured rate until it is empty,
// counting deliveries and sequence gaps.
func (r *run) drain(size units.ByteSize) {
	per := units.TransmissionTime(size, r.cfg.Rate)
	for {
		r.now = r.now.Add(per)
		p := r.q.Dequeue(r.now)
		if p == nil {
			r.gapDrops += int64(len(r.pending))
			r.pending = r.pending[:0]
			return
		}
		r.deliver(p)
	}
}

// flush empties residue without counting it.
func (r *run) flush() {
	for r.q.Dequeue(r.now) != nil {
	}
}

// idle advances the clock far enough for any averaged state (RED's EWMA
// ages across idle periods) to decay before the next phase.
func (r *run) idle() {
	r.now = r.now.Add(60 * units.Second)
}

// steady holds the queue near half the measured capacity for
// SteadySteps service slots: each slot tops the backlog estimate up to
// the target (retrying, since an average-queue policy may reject) and
// serves one packet. It returns the offers made and the rejections seen
// — at half capacity a drop-tail queue rejects nothing, an
// average-queue policy rejects at percent level, and a sojourn-time
// policy keeps dropping after admission because the top-up never lets
// the standing delay clear.
func (r *run) steady(capPkts int) (offers, rejects int64) {
	target := capPkts / 2
	if target < 1 {
		target = 1
	}
	per := units.TransmissionTime(r.cfg.PacketSize, r.cfg.Rate)
	for step := 0; step < r.cfg.SteadySteps; step++ {
		for attempt := 0; len(r.pending) < target && attempt < 2*target; attempt++ {
			offers++
			if !r.offer(r.cfg.PacketSize) {
				rejects++
			}
		}
		r.now = r.now.Add(per)
		if p := r.q.Dequeue(r.now); p != nil {
			r.deliver(p)
		}
	}
	return offers, rejects
}
