// Package stats provides the measurement machinery the experiments share:
// streaming moments (Welford), time-weighted averages for queue occupancy,
// histograms, percentiles, and a normal-distribution fit with a
// Kolmogorov–Smirnov distance for the paper's Fig. 6 Gaussian claim.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"bufsim/internal/units"
)

// Welford computes streaming mean and variance in one pass, numerically
// stably. The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the observation count.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (0 with no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation.
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation.
func (w *Welford) Max() float64 { return w.max }

// CoV returns the coefficient of variation (stddev / mean).
func (w *Welford) CoV() float64 {
	if w.mean == 0 {
		return 0
	}
	return w.StdDev() / math.Abs(w.mean)
}

// TimeWeighted integrates a piecewise-constant signal over simulated time:
// queue occupancy, aggregate window, outstanding packets. Call Set at every
// change; Mean gives the time average.
type TimeWeighted struct {
	last     float64
	lastAt   units.Time
	area     float64 // integral of value dt (seconds)
	span     units.Duration
	max      float64
	started  bool
	startVal float64
}

// Set records that the signal takes value v from time now onward.
func (t *TimeWeighted) Set(v float64, now units.Time) {
	if !t.started {
		t.started = true
		t.last = v
		t.lastAt = now
		t.max = v
		t.startVal = v
		return
	}
	dt := now.Sub(t.lastAt)
	if dt < 0 {
		panic("stats: TimeWeighted.Set with time going backward")
	}
	t.area += t.last * dt.Seconds()
	t.span += dt
	t.lastAt = now
	t.last = v
	if v > t.max {
		t.max = v
	}
}

// Mean returns the time-average of the signal over the observed span,
// extending the last value to now.
func (t *TimeWeighted) Mean(now units.Time) float64 {
	if !t.started {
		return 0
	}
	area := t.area + t.last*now.Sub(t.lastAt).Seconds()
	span := (t.span + now.Sub(t.lastAt)).Seconds()
	if span <= 0 {
		return t.last
	}
	return area / span
}

// Max returns the largest value observed.
func (t *TimeWeighted) Max() float64 { return t.max }

// Current returns the most recent value.
func (t *TimeWeighted) Current() float64 { return t.last }

// Histogram is a fixed-width-bin histogram over [lo, hi); observations
// outside the range land in saturating edge bins.
type Histogram struct {
	lo, hi float64
	bins   []int64
	n      int64
	under  int64
	over   int64
}

// NewHistogram returns a histogram with nbins equal bins spanning [lo, hi).
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if hi <= lo || nbins <= 0 {
		panic(fmt.Sprintf("stats: bad histogram [%v,%v)/%d", lo, hi, nbins))
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]int64, nbins)}
}

// Add incorporates one observation.
func (h *Histogram) Add(x float64) {
	h.n++
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.bins)))
		if i >= len(h.bins) {
			i = len(h.bins) - 1
		}
		h.bins[i]++
	}
}

// N returns the total observation count (including out-of-range).
func (h *Histogram) N() int64 { return h.n }

// Bin returns the center and count of bin i.
func (h *Histogram) Bin(i int) (center float64, count int64) {
	w := (h.hi - h.lo) / float64(len(h.bins))
	return h.lo + (float64(i)+0.5)*w, h.bins[i]
}

// NumBins returns the bin count.
func (h *Histogram) NumBins() int { return len(h.bins) }

// OutOfRange returns the counts below lo and at-or-above hi.
func (h *Histogram) OutOfRange() (under, over int64) { return h.under, h.over }

// histogramJSON is the serialized form of a Histogram. The fields are
// unexported in Histogram to keep Add the only mutation path, but
// results embedding a histogram must survive a JSON round trip so the
// run cache can replay them bit-identically.
type histogramJSON struct {
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	Bins  []int64 `json:"bins"`
	N     int64   `json:"n"`
	Under int64   `json:"under"`
	Over  int64   `json:"over"`
}

// MarshalJSON implements json.Marshaler.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(histogramJSON{Lo: h.lo, Hi: h.hi, Bins: h.bins, N: h.n, Under: h.under, Over: h.over})
}

// UnmarshalJSON implements json.Unmarshaler.
func (h *Histogram) UnmarshalJSON(b []byte) error {
	var j histogramJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	h.lo, h.hi, h.bins, h.n, h.under, h.over = j.Lo, j.Hi, j.Bins, j.N, j.Under, j.Over
	return nil
}

// Density returns bin i's probability density (count / (N * binwidth)).
func (h *Histogram) Density(i int) float64 {
	if h.n == 0 {
		return 0
	}
	w := (h.hi - h.lo) / float64(len(h.bins))
	return float64(h.bins[i]) / (float64(h.n) * w)
}

// Percentile returns the p-th percentile (0 < p <= 100) of a sample,
// sorting a copy. It returns 0 for an empty sample.
func Percentile(sample []float64, p float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Mean returns the arithmetic mean of a sample (0 if empty).
func Mean(sample []float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range sample {
		sum += v
	}
	return sum / float64(len(sample))
}

// JainIndex returns Jain's fairness index (sum x)^2 / (n * sum x^2) over
// a set of per-flow allocations: 1 for perfect equality, 1/n when one
// flow takes everything. Used to quantify how evenly TCP divides the
// bottleneck as buffers shrink.
func JainIndex(alloc []float64) float64 {
	if len(alloc) == 0 {
		return 0
	}
	var sum, sumsq float64
	for _, x := range alloc {
		sum += x
		sumsq += x * x
	}
	if sumsq == 0 {
		return 1 // everyone got exactly nothing: technically fair
	}
	return sum * sum / (float64(len(alloc)) * sumsq)
}

// NormalCDF is the standard normal cumulative distribution function.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalQuantile returns the z with NormalCDF(z) = p, via bisection; it is
// used to translate a utilization target into a buffer size. p must be in
// (0, 1).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: NormalQuantile(%v) out of (0,1)", p))
	}
	lo, hi := -40.0, 40.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if NormalCDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// KSNormal returns the Kolmogorov–Smirnov distance between the empirical
// distribution of the sample and a Normal(mean, stddev): the Fig. 6
// goodness-of-fit measure. Smaller is closer; below ~0.05 the aggregate
// window is visually indistinguishable from a Gaussian.
func KSNormal(sample []float64, mean, stddev float64) float64 {
	if len(sample) == 0 || stddev <= 0 {
		return 1
	}
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	n := float64(len(s))
	maxD := 0.0
	for i, x := range s {
		f := NormalCDF((x - mean) / stddev)
		dPlus := (float64(i)+1)/n - f
		dMinus := f - float64(i)/n
		if dPlus > maxD {
			maxD = dPlus
		}
		if dMinus > maxD {
			maxD = dMinus
		}
	}
	return maxD
}
