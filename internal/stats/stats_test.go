package stats

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"

	"bufsim/internal/sim"
	"bufsim/internal/units"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(v)
	}
	if w.N() != 8 {
		t.Errorf("N = %d", w.N())
	}
	if got := w.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Population variance is 4; unbiased sample variance is 32/7.
	if got := w.Variance(); math.Abs(got-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdDev() != 0 {
		t.Error("empty Welford not zero")
	}
	w.Add(42)
	if w.Mean() != 42 || w.Variance() != 0 {
		t.Errorf("single-sample Welford: mean=%v var=%v", w.Mean(), w.Variance())
	}
}

func TestWelfordMatchesDirectComputation(t *testing.T) {
	f := func(raw []float64) bool {
		var vals []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
				vals = append(vals, v)
			}
		}
		if len(vals) < 2 {
			return true
		}
		var w Welford
		sum := 0.0
		for _, v := range vals {
			w.Add(v)
			sum += v
		}
		mean := sum / float64(len(vals))
		ss := 0.0
		for _, v := range vals {
			ss += (v - mean) * (v - mean)
		}
		variance := ss / float64(len(vals)-1)
		scale := math.Max(1, math.Abs(mean))
		return math.Abs(w.Mean()-mean) < 1e-9*scale &&
			math.Abs(w.Variance()-variance) < 1e-6*math.Max(1, variance)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTimeWeightedMean(t *testing.T) {
	var tw TimeWeighted
	tw.Set(0, 0)
	tw.Set(10, units.Time(units.Second))   // value 0 for 1s
	tw.Set(20, units.Time(3*units.Second)) // value 10 for 2s
	// At t=4s: value 20 for 1s. Mean = (0*1 + 10*2 + 20*1)/4 = 10.
	if got := tw.Mean(units.Time(4 * units.Second)); math.Abs(got-10) > 1e-9 {
		t.Errorf("Mean = %v, want 10", got)
	}
	if tw.Max() != 20 {
		t.Errorf("Max = %v, want 20", tw.Max())
	}
	if tw.Current() != 20 {
		t.Errorf("Current = %v, want 20", tw.Current())
	}
}

func TestTimeWeightedEmpty(t *testing.T) {
	var tw TimeWeighted
	if tw.Mean(units.Time(units.Second)) != 0 {
		t.Error("empty TimeWeighted mean not 0")
	}
}

func TestTimeWeightedBackwardPanics(t *testing.T) {
	var tw TimeWeighted
	tw.Set(1, units.Time(units.Second))
	defer func() {
		if recover() == nil {
			t.Error("backward Set did not panic")
		}
	}()
	tw.Set(2, 0)
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(11)
	if h.N() != 12 {
		t.Errorf("N = %d", h.N())
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 1 {
		t.Errorf("out of range = %d/%d", under, over)
	}
	for i := 0; i < 10; i++ {
		center, count := h.Bin(i)
		if count != 1 {
			t.Errorf("bin %d count = %d, want 1", i, count)
		}
		if math.Abs(center-(float64(i)+0.5)) > 1e-12 {
			t.Errorf("bin %d center = %v", i, center)
		}
	}
	// Density integrates to (in-range fraction).
	total := 0.0
	for i := 0; i < h.NumBins(); i++ {
		total += h.Density(i) * 1.0 // bin width 1
	}
	if math.Abs(total-10.0/12) > 1e-9 {
		t.Errorf("density integral = %v, want 10/12", total)
	}
}

func TestHistogramPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad histogram did not panic")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestPercentile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(s, 50); got != 5.5 {
		t.Errorf("P50 = %v, want 5.5", got)
	}
	if got := Percentile(s, 0); got != 1 {
		t.Errorf("P0 = %v, want 1", got)
	}
	if got := Percentile(s, 100); got != 10 {
		t.Errorf("P100 = %v, want 10", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
	// Percentile must not mutate its input.
	s2 := []float64{3, 1, 2}
	Percentile(s2, 50)
	if s2[0] != 3 || s2[1] != 1 || s2[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestMeanHelper(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{5, 5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal allocation index = %v, want 1", got)
	}
	// One hog among n flows: index = 1/n.
	if got := JainIndex([]float64{10, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("single-hog index = %v, want 0.25", got)
	}
	if got := JainIndex(nil); got != 0 {
		t.Errorf("empty index = %v", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 1 {
		t.Errorf("all-zero index = %v, want 1", got)
	}
	// Order invariance.
	a := JainIndex([]float64{1, 2, 3})
	b := JainIndex([]float64{3, 1, 2})
	if a != b {
		t.Error("JainIndex not order-invariant")
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1.6449, 0.95},
		{-1.6449, 0.05},
		{2.3263, 0.99},
		{3.0902, 0.999},
	}
	for _, c := range cases {
		if got := NormalCDF(c.z); math.Abs(got-c.want) > 1e-4 {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.z, got, c.want)
		}
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	for _, p := range []float64{0.01, 0.05, 0.5, 0.9, 0.98, 0.995, 0.999} {
		z := NormalQuantile(p)
		if got := NormalCDF(z); math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestNormalQuantilePanicsOutOfRange(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormalQuantile(%v) did not panic", p)
				}
			}()
			NormalQuantile(p)
		}()
	}
}

func TestKSNormalAcceptsGaussianSample(t *testing.T) {
	rng := sim.NewRNG(42)
	sample := make([]float64, 5000)
	for i := range sample {
		sample[i] = rng.Normal(100, 15)
	}
	d := KSNormal(sample, 100, 15)
	if d > 0.03 {
		t.Errorf("KS distance for a true Gaussian sample = %v, want < 0.03", d)
	}
}

func TestKSNormalRejectsUniformSample(t *testing.T) {
	rng := sim.NewRNG(42)
	sample := make([]float64, 5000)
	for i := range sample {
		sample[i] = rng.Uniform(0, 1)
	}
	// Compare against a normal with matched moments; the KS distance of
	// U(0,1) vs its moment-matched normal is about 0.06.
	d := KSNormal(sample, 0.5, math.Sqrt(1.0/12))
	if d < 0.04 {
		t.Errorf("KS distance for uniform sample = %v, want > 0.04", d)
	}
}

func TestKSNormalDegenerate(t *testing.T) {
	if KSNormal(nil, 0, 1) != 1 {
		t.Error("KS of empty sample should be 1")
	}
	if KSNormal([]float64{1, 2}, 0, 0) != 1 {
		t.Error("KS with zero stddev should be 1")
	}
}

func TestCoV(t *testing.T) {
	var w Welford
	for _, v := range []float64{9, 10, 11} {
		w.Add(v)
	}
	if got := w.CoV(); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("CoV = %v, want 0.1", got)
	}
	var zero Welford
	if zero.CoV() != 0 {
		t.Error("CoV of empty should be 0")
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0.5, 3.2, 3.3, 9.99, 10, 42} {
		h.Add(x)
	}
	b, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var got Histogram
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.N() != h.N() || got.NumBins() != h.NumBins() {
		t.Fatalf("round trip changed shape: %d/%d bins, %d/%d obs",
			got.NumBins(), h.NumBins(), got.N(), h.N())
	}
	gu, go_ := got.OutOfRange()
	hu, ho := h.OutOfRange()
	if gu != hu || go_ != ho {
		t.Fatalf("out-of-range counts changed: (%d,%d) vs (%d,%d)", gu, go_, hu, ho)
	}
	for i := 0; i < h.NumBins(); i++ {
		gc, gn := got.Bin(i)
		hc, hn := h.Bin(i)
		if gc != hc || gn != hn {
			t.Fatalf("bin %d changed: (%v,%d) vs (%v,%d)", i, gc, gn, hc, hn)
		}
	}
}
