package profile

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestParseProfile(t *testing.T) {
	cases := []struct {
		in   string
		want Preset
		ok   bool
	}{
		{"constant", Constant, true},
		{"Constant", Constant, true},
		{"steady", Constant, true},
		{"stationary", Constant, true},
		{"", Constant, true},
		{"diurnal", Diurnal, true},
		{"daily", Diurnal, true},
		{"flashcrowd", FlashCrowd, true},
		{"Flash-Crowd", FlashCrowd, true},
		{"spike", FlashCrowd, true},
		{"step", SteppedRamp, true},
		{"stepped-ramp", SteppedRamp, true},
		{"ramp", SteppedRamp, true},
		{"drain", Drain, true},
		{"maintenance", Drain, true},
		{"maintenance-drain", Drain, true},
		{"tsunami", Constant, false},
		{"constant ", Constant, false},
	}
	for _, c := range cases {
		got, err := ParseProfile(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseProfile(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseProfile(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestParseProfileErrorListsRegistry pins the contract that the
// "unknown workload profile" error is regenerated from the registry:
// every registered name must appear in it, so the message cannot drift
// as presets are added.
func TestParseProfileErrorListsRegistry(t *testing.T) {
	_, err := ParseProfile("nosuch")
	if err == nil {
		t.Fatal("ParseProfile(\"nosuch\") did not error")
	}
	for _, name := range ProfileNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not mention registered preset %q", err, name)
		}
	}
}

func TestPresetStringRoundTrip(t *testing.T) {
	for _, p := range Presets() {
		got, err := ParseProfile(p.String())
		if err != nil {
			t.Errorf("ParseProfile(%q): %v", p.String(), err)
			continue
		}
		if got != p {
			t.Errorf("round trip %v -> %q -> %v", p, p.String(), got)
		}
	}
	if s := Preset(99).String(); s != "preset(99)" {
		t.Errorf("out-of-range String = %q", s)
	}
}

// TestPresetRegistryExhaustive checks every registry slot is populated
// (the array length already pins the count at compile time) and that
// every preset builds a profile that validates, is normalized to peak
// 1.0, and carries its registry name.
func TestPresetRegistryExhaustive(t *testing.T) {
	for _, p := range Presets() {
		info := presetRegistry[p]
		if info.name == "" {
			t.Errorf("preset %d has no name", int(p))
		}
		if info.build == nil {
			t.Fatalf("preset %q has no builder", info.name)
		}
		prof := p.Profile()
		if err := prof.Validate(); err != nil {
			t.Errorf("preset %q does not validate: %v", info.name, err)
		}
		if prof.Name != info.name {
			t.Errorf("preset %q builds profile named %q", info.name, prof.Name)
		}
		if m := prof.Arrival.Max(); m != 1 {
			t.Errorf("preset %q arrival peak = %v, want 1.0 (normalized)", info.name, m)
		}
		if m := prof.Population.Max(); m != 1 {
			t.Errorf("preset %q population peak = %v, want 1.0 (normalized)", info.name, m)
		}
	}
}

func TestPresetTextMarshalling(t *testing.T) {
	for _, p := range Presets() {
		data, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("marshal %v: %v", p, err)
		}
		want := `"` + p.String() + `"`
		if string(data) != want {
			t.Errorf("marshal %v = %s, want %s", p, data, want)
		}
		var back Preset
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back != p {
			t.Errorf("unmarshal %s = %v, want %v", data, back, p)
		}
	}
	if _, err := json.Marshal(Preset(99)); err == nil {
		t.Error("marshalling an out-of-range preset did not error")
	}
	var p Preset
	if err := json.Unmarshal([]byte(`"nosuch"`), &p); err == nil {
		t.Error("unmarshalling an unknown preset did not error")
	}
}
