package profile

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bufsim/internal/units"
)

func TestLoad(t *testing.T) {
	const doc = `{
		"name": "launch-day",
		"arrival":    [{"t": "0s", "v": 0.1}, {"t": "30s", "v": 1.0}, {"t": 60, "v": 0.1}],
		"population": [{"t": 0, "v": 2}, {"t": "45s", "v": 6}]
	}`
	p, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "launch-day" {
		t.Errorf("Name = %q", p.Name)
	}
	// Duration strings and bare seconds must land on the same axis.
	if got := p.Arrival[1].T; got != 30*units.Second {
		t.Errorf("arrival[1].T = %v, want 30s", got)
	}
	if got := p.Arrival[2].T; got != 60*units.Second {
		t.Errorf("arrival[2].T = %v, want 60s (bare number of seconds)", got)
	}
	if got := p.Population[1].V; got != 6 {
		t.Errorf("population[1].V = %v, want 6", got)
	}
}

func TestLoadDefaultsAndCompress(t *testing.T) {
	const doc = `{
		"arrival": [{"t": 0, "v": 1}, {"t": 60, "v": 2}],
		"compress": 4
	}`
	p, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "custom" {
		t.Errorf("Name = %q, want %q default", p.Name, "custom")
	}
	if got := p.Arrival[1].T; got != 15*units.Second {
		t.Errorf("compressed end = %v, want 15s", got)
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"unknown field", `{"arrival": [{"t": 0, "v": 1}], "arival": []}`, "unknown field"},
		{"bad time", `{"arrival": [{"t": true, "v": 1}]}`, `"t" must be a duration string`},
		{"missing time", `{"arrival": [{"v": 1}]}`, `missing "t"`},
		{"validation", `{"arrival": [{"t": 0, "v": -1}]}`, "negative value"},
		{"no traffic", `{"name": "empty"}`, "describes no traffic"},
		{"bad compress", `{"arrival": [{"t": 0, "v": 1}], "compress": -2}`, "compress"},
		{"not json", `arrival: [0, 1]`, "profile:"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Load(strings.NewReader(c.doc))
			if err == nil {
				t.Fatalf("Load did not error, want %q", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("Load error = %q, want substring %q", err, c.wantErr)
			}
		})
	}
}

func TestFromArg(t *testing.T) {
	// A preset name resolves through the registry.
	p, err := FromArg("flashcrowd")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "flashcrowd" {
		t.Errorf("preset arg gave profile %q", p.Name)
	}

	// A .json path loads the file.
	dir := t.TempDir()
	path := filepath.Join(dir, "shape.json")
	if err := os.WriteFile(path, []byte(`{"name":"disk","arrival":[{"t":0,"v":1},{"t":10,"v":2}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err = FromArg(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "disk" {
		t.Errorf("file arg gave profile %q", p.Name)
	}

	// An unknown name errors and lists the presets so the user can
	// correct a typo without reading the docs.
	_, err = FromArg("tsunami")
	if err == nil {
		t.Fatal("FromArg(\"tsunami\") did not error")
	}
	for _, name := range ProfileNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list preset %q", err, name)
		}
	}

	// A missing .json path errors with the file problem, not a preset
	// lookup failure.
	_, err = FromArg(filepath.Join(dir, "nosuch.json"))
	if err == nil || !strings.Contains(err.Error(), "nosuch.json") {
		t.Errorf("missing file error = %v, want path mention", err)
	}
}
