package profile

import (
	"math"
	"reflect"
	"testing"

	"bufsim/internal/queue"
	"bufsim/internal/sim"
	"bufsim/internal/tcp"
	"bufsim/internal/topology"
	"bufsim/internal/units"
	"bufsim/internal/workload"
)

func testDumbbell(seed int64, stations, bufferPkts int, rate units.BitRate) (*sim.Scheduler, *topology.Dumbbell, *sim.RNG) {
	s := sim.NewScheduler()
	rng := sim.NewRNG(seed)
	d := topology.NewDumbbell(topology.Config{
		Sched:           s,
		RNG:             rng.Fork(),
		BottleneckRate:  rate,
		BottleneckDelay: 5 * units.Millisecond,
		Buffer:          queue.PacketLimit(bufferPkts),
		Stations:        stations,
		RTTMin:          40 * units.Millisecond,
		RTTMax:          120 * units.Millisecond,
	})
	return s, d, rng
}

// TestConstantProfileMatchesLegacyPoisson is the workload API
// redesign's anchor: a constant arrival profile must consume the RNG in
// exactly the stationary source's order, so the two produce identical
// flow schedules — starts, sizes and completions — on identical
// topologies and seeds.
func TestConstantProfileMatchesLegacyPoisson(t *testing.T) {
	const (
		seed     = 7
		stations = 10
		buffer   = 30
		rate     = 10 * units.Mbps
		load     = 0.6
	)
	sizes := workload.GeometricSize(14)
	tcpCfg := tcp.Config{MaxWindow: 32}
	horizon := units.Epoch.Add(20 * units.Second)

	// Legacy stationary source.
	s1, d1, rng1 := testDumbbell(seed, stations, buffer, rate)
	legacy := workload.NewShortFlows(workload.ShortFlowConfig{
		Dumbbell: d1, RNG: rng1.Fork(), Load: load, Sizes: sizes, TCP: tcpCfg,
	})
	legacy.Start()
	s1.Run(horizon)

	// Constant profile at the equivalent flows-per-second rate.
	lambda := workload.ArrivalRateForLoad(load, rate, tcpCfg.SegmentSize, sizes)
	s2, d2, rng2 := testDumbbell(seed, stations, buffer, rate)
	src := Source{
		Profile: Profile{
			Name:    "stationary",
			Arrival: Curve{{T: 0, V: lambda}, {T: 60 * units.Second, V: lambda}},
		},
		Sizes: sizes,
		TCP:   tcpCfg,
	}
	drv := src.Bind(d2, rng2.Fork())
	drv.Start()
	s2.Run(horizon)

	if legacy.Generated() == 0 {
		t.Fatal("legacy source generated no flows")
	}
	if got, want := drv.Generated(), legacy.Generated(); got != want {
		t.Fatalf("profile generated %d flows, legacy %d", got, want)
	}
	recs, legacyRecs := drv.Records(), legacy.Records
	for i := range legacyRecs {
		if !reflect.DeepEqual(*recs[i], *legacyRecs[i]) {
			t.Fatalf("record %d diverged:\nprofile %+v\nlegacy  %+v", i, *recs[i], *legacyRecs[i])
		}
	}
}

// TestEngineDeterminism: the same profile and seed produce the same
// schedule, run for run.
func TestEngineDeterminism(t *testing.T) {
	prof := FlashCrowd.Profile().ScaleTo(8, 4)
	run := func() []workload.FlowRecord {
		s, d, rng := testDumbbell(3, 8, 20, 10*units.Mbps)
		src := Source{Profile: prof, Sizes: workload.GeometricSize(10), TCP: tcp.Config{MaxWindow: 16}}
		drv := src.Bind(d, rng.Fork())
		drv.Start()
		s.Run(units.Epoch.Add(70 * units.Second))
		out := make([]workload.FlowRecord, 0, len(drv.Records()))
		for _, r := range drv.Records() {
			out = append(out, *r)
		}
		return out
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no flows generated")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical seeds produced different schedules")
	}
}

// TestThinningTracksRateCurve: over a two-level arrival curve, the
// realized arrival counts in each half must be close to each level's
// expectation — thinning follows the curve, not the envelope.
func TestThinningTracksRateCurve(t *testing.T) {
	s, d, rng := testDumbbell(11, 10, 50, 50*units.Mbps)
	const lo, hi = 5.0, 50.0
	src := Source{
		Profile: Profile{
			Name: "two-level",
			Arrival: Curve{
				{T: 0, V: lo},
				{T: 40 * units.Second, V: lo},
				// Sharp ramp between the levels keeps each half pure.
				{T: 40*units.Second + 10*units.Millisecond, V: hi},
				{T: 80 * units.Second, V: hi},
			},
		},
		Sizes: workload.FixedSize(2),
		TCP:   tcp.Config{MaxWindow: 8},
	}
	drv := src.Bind(d, rng.Fork())
	drv.Start()
	s.Run(units.Epoch.Add(40 * units.Second))
	firstHalf := drv.Generated()
	s.Run(units.Epoch.Add(80 * units.Second))
	secondHalf := drv.Generated() - firstHalf

	if math.Abs(float64(firstHalf)-lo*40) > 4*math.Sqrt(lo*40) {
		t.Errorf("low half generated %d flows, want ~%v", firstHalf, lo*40)
	}
	if math.Abs(float64(secondHalf)-hi*40) > 4*math.Sqrt(hi*40) {
		t.Errorf("high half generated %d flows, want ~%v", secondHalf, hi*40)
	}
}

func TestCompilePopulation(t *testing.T) {
	cases := []struct {
		name        string
		curve       Curve
		wantInitial int
		wantDeltas  []int
	}{
		{"empty", nil, 0, nil},
		{"constant", Curve{{T: 0, V: 5}, {T: 10 * units.Second, V: 5}}, 5, nil},
		{"ramp up", Curve{{T: 0, V: 1}, {T: 10 * units.Second, V: 4}}, 1, []int{+1, +1, +1}},
		{"ramp down", Curve{{T: 0, V: 3}, {T: 6 * units.Second, V: 0}}, 3, []int{-1, -1, -1}},
		{"spike", Curve{
			{T: 0, V: 2}, {T: 10 * units.Second, V: 2},
			{T: 12 * units.Second, V: 6}, {T: 14 * units.Second, V: 2},
		}, 2, []int{+1, +1, +1, +1, -1, -1, -1, -1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			initial, changes := compilePopulation(c.curve)
			if initial != c.wantInitial {
				t.Errorf("initial = %d, want %d", initial, c.wantInitial)
			}
			var deltas []int
			var prev units.Duration
			for _, ch := range changes {
				deltas = append(deltas, ch.delta)
				if ch.at < prev {
					t.Errorf("change at %v precedes %v: schedule not time-ordered", ch.at, prev)
				}
				prev = ch.at
			}
			if !reflect.DeepEqual(deltas, c.wantDeltas) {
				t.Errorf("deltas = %v, want %v", deltas, c.wantDeltas)
			}
		})
	}
}

// TestPopulationRampTracksCurve runs a population-only profile and
// checks the live long-flow count follows round(n(t)) at checkpoints,
// including back down the far side of a spike.
func TestPopulationRampTracksCurve(t *testing.T) {
	curve := Curve{
		{T: 0, V: 2},
		{T: 10 * units.Second, V: 2},
		{T: 14 * units.Second, V: 8},
		{T: 20 * units.Second, V: 8},
		{T: 24 * units.Second, V: 2},
	}
	s, d, rng := testDumbbell(5, 6, 40, 20*units.Mbps)
	src := Source{Profile: Profile{Name: "ramp", Population: curve}, LongTCP: tcp.Config{}}
	drv := src.Bind(d, rng.Fork())
	drv.Start()

	checkpoints := []struct {
		at   units.Duration
		want int
	}{
		{5 * units.Second, 2},
		{12 * units.Second, 5},
		{18 * units.Second, 8},
		{30 * units.Second, 2},
	}
	for _, cp := range checkpoints {
		s.Run(units.Epoch.Add(cp.at))
		if got := drv.Active(); got != cp.want {
			t.Errorf("Active at %v = %d, want %d", cp.at, got, cp.want)
		}
	}
	// The ramp-down shut senders down: no flow the engine dropped may
	// still transmit. Give in-flight packets time to clear, then check
	// the bottleneck goes idle (long flows left would keep it busy).
	busy := d.Bottleneck.BusyTime()
	s.Run(units.Epoch.Add(35 * units.Second))
	busyTail := d.Bottleneck.BusyTime() - busy
	// Two live flows keep transmitting; the tail must be well under
	// eight flows' worth of the previous plateau.
	if drv.Active() != 2 {
		t.Fatalf("Active after ramp-down = %d, want 2", drv.Active())
	}
	if busyTail <= 0 {
		t.Error("surviving long flows stopped transmitting")
	}
}
