package profile

import (
	"math"
	"strings"
	"testing"

	"bufsim/internal/units"
)

func TestCurveAt(t *testing.T) {
	c := Curve{
		{T: 10 * units.Second, V: 2},
		{T: 20 * units.Second, V: 4},
		{T: 30 * units.Second, V: 1},
	}
	cases := []struct {
		at   units.Duration
		want float64
	}{
		{0, 2},                   // clamp before first point
		{10 * units.Second, 2},   // exactly on a point
		{15 * units.Second, 3},   // interpolate up
		{20 * units.Second, 4},   // peak
		{25 * units.Second, 2.5}, // interpolate down
		{30 * units.Second, 1},
		{99 * units.Second, 1}, // clamp after last point
	}
	for _, cse := range cases {
		if got := c.At(cse.at); math.Abs(got-cse.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", cse.at, got, cse.want)
		}
	}
	if got := Curve(nil).At(5 * units.Second); got != 0 {
		t.Errorf("empty curve At = %v, want 0", got)
	}
	if got := c.Max(); got != 4 {
		t.Errorf("Max = %v, want 4", got)
	}
	if got := c.End(); got != 30*units.Second {
		t.Errorf("End = %v, want 30s", got)
	}
}

// TestValidateErrors is the satellite bugfix's regression net: every
// malformed input that previously had no guard (the package is new, but
// these same shapes fed raw into a thinning loop would NaN the
// inter-arrival mean or hang the population compiler) must now produce
// a clear error naming the defect.
func TestValidateErrors(t *testing.T) {
	valid := Curve{{T: 0, V: 1}, {T: 10 * units.Second, V: 2}}
	cases := []struct {
		name    string
		p       Profile
		wantErr string // substring; "" means valid
	}{
		{"valid", Profile{Name: "ok", Arrival: valid}, ""},
		{"valid population only", Profile{Name: "ok", Population: valid}, ""},
		{"negative rate", Profile{Arrival: Curve{{T: 0, V: -1}}}, "negative value"},
		{"negative population", Profile{Population: Curve{{T: 0, V: -0.5}}}, "negative value"},
		{"NaN rate", Profile{Arrival: Curve{{T: 0, V: math.NaN()}}}, "must be finite"},
		{"infinite rate", Profile{Arrival: Curve{{T: 0, V: math.Inf(1)}}}, "must be finite"},
		{"negative time", Profile{Arrival: Curve{{T: -units.Second, V: 1}}}, "negative time offset"},
		{"zero-duration segment", Profile{Arrival: Curve{
			{T: 5 * units.Second, V: 1}, {T: 5 * units.Second, V: 9},
		}}, "zero-duration segment"},
		{"non-monotone times", Profile{Arrival: Curve{
			{T: 5 * units.Second, V: 1}, {T: 2 * units.Second, V: 1},
		}}, "increasing time order"},
		{"no traffic", Profile{Name: "empty"}, "describes no traffic"},
		{"all-zero curves", Profile{
			Arrival:    Curve{{T: 0, V: 0}, {T: units.Second, V: 0}},
			Population: Curve{{T: 0, V: 0}},
		}, "describes no traffic"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.p.Validate()
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("Validate() = %q, want substring %q", err, c.wantErr)
			}
		})
	}
}

func TestCompress(t *testing.T) {
	p := Profile{
		Name:       "x",
		Arrival:    Curve{{T: 0, V: 1}, {T: 60 * units.Second, V: 2}},
		Population: Curve{{T: 0, V: 3}, {T: 30 * units.Second, V: 4}},
	}
	got, err := p.Compress(2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Arrival[1].T != 30*units.Second {
		t.Errorf("compressed arrival end = %v, want 30s", got.Arrival[1].T)
	}
	if got.Population[1].T != 15*units.Second {
		t.Errorf("compressed population end = %v, want 15s", got.Population[1].T)
	}
	if got.Arrival[1].V != 2 || got.Population[1].V != 4 {
		t.Error("compression changed curve values")
	}
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := p.Compress(bad); err == nil {
			t.Errorf("Compress(%v) did not error", bad)
		}
	}
}

func TestScaleTo(t *testing.T) {
	p := Profile{
		Arrival:    Curve{{T: 0, V: 0.1}, {T: 10 * units.Second, V: 1}},
		Population: Curve{{T: 0, V: 0.5}, {T: 10 * units.Second, V: 1}},
	}
	got := p.ScaleTo(40, 20)
	if m := got.Arrival.Max(); math.Abs(m-40) > 1e-9 {
		t.Errorf("arrival peak = %v, want 40", m)
	}
	if v := got.Arrival.At(0); math.Abs(v-4) > 1e-9 {
		t.Errorf("arrival baseline = %v, want 4", v)
	}
	if m := got.Population.Max(); math.Abs(m-20) > 1e-9 {
		t.Errorf("population peak = %v, want 20", m)
	}
	// A zero target removes the curve entirely.
	if got := p.ScaleTo(40, 0); got.Population != nil {
		t.Error("ScaleTo(.., 0) kept the population curve")
	}
	if got := p.ScaleTo(0, 20); got.Arrival != nil {
		t.Error("ScaleTo(0, ..) kept the arrival curve")
	}
}

func TestSum(t *testing.T) {
	a := Profile{
		Name:    "base",
		Arrival: Curve{{T: 0, V: 1}, {T: 10 * units.Second, V: 1}},
	}
	b := Profile{
		Name:    "spike",
		Arrival: Curve{{T: 0, V: 0}, {T: 5 * units.Second, V: 2}, {T: 10 * units.Second, V: 0}},
	}
	got := Sum(a, b)
	if got.Name != "base+spike" {
		t.Errorf("Name = %q", got.Name)
	}
	cases := []struct {
		at   units.Duration
		want float64
	}{
		{0, 1},
		{5 * units.Second, 3},
		{7500 * units.Millisecond, 2},
		{10 * units.Second, 1},
	}
	for _, c := range cases {
		if v := got.Arrival.At(c.at); math.Abs(v-c.want) > 1e-12 {
			t.Errorf("sum At(%v) = %v, want %v", c.at, v, c.want)
		}
	}
	// The union of control points keeps the sum exactly piecewise
	// linear: every input control time must appear.
	if len(got.Arrival) != 3 {
		t.Errorf("sum has %d control points, want 3 (union)", len(got.Arrival))
	}
	if err := got.Validate(); err != nil {
		t.Errorf("sum does not validate: %v", err)
	}
}
