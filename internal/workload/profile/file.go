package profile

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"bufsim/internal/units"
)

// profileFile is the JSON schema for a profile on disk: curves as
// arrays of {"t": offset, "v": value} control points, where offsets are
// duration strings in the package's notation ("30s", "1500ms") or bare
// numbers of seconds.
//
//	{
//	  "name": "launch-day",
//	  "arrival":    [{"t": "0s", "v": 0.1}, {"t": "30s", "v": 1.0}],
//	  "population": [{"t": "0s", "v": 1.0}],
//	  "compress": 2.0
//	}
//
// "compress" (optional) divides every control-point time, replaying the
// shape faster; "arrival" and "population" follow Profile's semantics.
type profileFile struct {
	Name       string      `json:"name"`
	Arrival    []filePoint `json:"arrival"`
	Population []filePoint `json:"population"`
	Compress   float64     `json:"compress"`
}

type filePoint struct {
	T json.RawMessage `json:"t"`
	V float64         `json:"v"`
}

// Load reads and validates a JSON profile.
func Load(r io.Reader) (Profile, error) {
	var pf profileFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&pf); err != nil {
		return Profile{}, fmt.Errorf("profile: %v", err)
	}
	arrival, err := curveFromFile("arrival", pf.Arrival)
	if err != nil {
		return Profile{}, err
	}
	population, err := curveFromFile("population", pf.Population)
	if err != nil {
		return Profile{}, err
	}
	p := Profile{Name: pf.Name, Arrival: arrival, Population: population}
	if p.Name == "" {
		p.Name = "custom"
	}
	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	if pf.Compress != 0 {
		if p, err = p.Compress(pf.Compress); err != nil {
			return Profile{}, err
		}
	}
	return p, nil
}

func curveFromFile(name string, points []filePoint) (Curve, error) {
	if len(points) == 0 {
		return nil, nil
	}
	c := make(Curve, len(points))
	for i, fp := range points {
		t, err := parseFileTime(fp.T)
		if err != nil {
			return nil, fmt.Errorf("profile: %s point %d: %v", name, i, err)
		}
		c[i] = Point{T: t, V: fp.V}
	}
	return c, nil
}

// parseFileTime accepts "30s"-style duration strings and bare numbers
// of seconds.
func parseFileTime(raw json.RawMessage) (units.Duration, error) {
	if len(raw) == 0 {
		return 0, fmt.Errorf(`missing "t"`)
	}
	var s string
	if err := json.Unmarshal(raw, &s); err == nil {
		return units.ParseDuration(s)
	}
	secs, err := strconv.ParseFloat(string(bytes.TrimSpace(raw)), 64)
	if err != nil {
		return 0, fmt.Errorf(`"t" must be a duration string or a number of seconds, got %s`, raw)
	}
	return units.DurationFromSeconds(secs), nil
}

// FromArg resolves a CLI -workload argument: a value naming a readable
// .json file (or any existing file) loads it; anything else must be a
// registered preset name. The error for an unknown name lists the
// presets, mirroring ParseProfile.
func FromArg(arg string) (Profile, error) {
	if strings.HasSuffix(arg, ".json") || fileExists(arg) {
		f, err := os.Open(arg)
		if err != nil {
			return Profile{}, fmt.Errorf("profile: %v", err)
		}
		defer f.Close()
		p, err := Load(f)
		if err != nil {
			return Profile{}, fmt.Errorf("%s: %v", arg, err)
		}
		return p, nil
	}
	preset, err := ParseProfile(arg)
	if err != nil {
		return Profile{}, err
	}
	return preset.Profile(), nil
}

func fileExists(path string) bool {
	info, err := os.Stat(path)
	return err == nil && !info.IsDir()
}
