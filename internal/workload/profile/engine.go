package profile

import (
	"fmt"
	"math"

	"bufsim/internal/sim"
	"bufsim/internal/tcp"
	"bufsim/internal/topology"
	"bufsim/internal/units"
	"bufsim/internal/workload"
)

// Source drives a dumbbell with the time-varying traffic a Profile
// describes: short flows arrive as a non-homogeneous Poisson process
// following the arrival curve (thinning against the curve's maximum),
// and long-lived flows start and stop so the live count tracks
// round(n(t)) along the population curve.
//
// Determinism contract: the schedule is a pure function of (profile,
// seed). Population changes are compiled to event times with no RNG
// draws at all, and the thinning loop skips the acceptance draw
// whenever the curve sits at its maximum — so a constant profile
// consumes the bound RNG in exactly the stationary Poisson source's
// order (inter-arrival, size, station, ...) and reproduces it bit for
// bit.
type Source struct {
	// Profile is the shape to drive; it must be valid (see
	// Profile.Validate) with absolute units — flows/sec and flow
	// counts, not normalized peaks.
	Profile Profile
	// Sizes is the short-flow length distribution; required when the
	// arrival curve is anywhere positive.
	Sizes workload.SizeDist
	// TCP is the short-flow template; TotalSegments is set per flow.
	TCP tcp.Config
	// LongTCP is the long-lived flow template; TotalSegments is forced
	// to zero (unbounded).
	LongTCP tcp.Config
}

func (s Source) String() string {
	return fmt.Sprintf("profile(%s)", s.Profile.Name)
}

// Bind implements workload.Source. The profile must already be valid —
// Bind is on the hot path of cached sweeps and panics on a defect the
// API boundary should have reported (see Profile.Validate).
func (s Source) Bind(d *topology.Dumbbell, rng *sim.RNG) workload.Driver {
	if err := s.Profile.Validate(); err != nil {
		panic(err)
	}
	if s.Profile.Arrival.Max() > 0 && s.Sizes == nil {
		panic("profile: Source with an arrival curve requires Sizes")
	}
	return &engine{
		src:   s,
		d:     d,
		rng:   rng,
		sched: d.Config().Sched,
	}
}

// engine event opcodes (see sim.Actor).
const (
	// opArrival: the next thinning candidate is due.
	opArrival int32 = iota
	// opDetach: a flow's teardown grace period elapsed; unwire it. The
	// payload is the *topology.Flow.
	opDetach
	// opAddLong: the population curve crossed up; start a long flow.
	opAddLong
	// opDropLong: the population curve crossed down; stop one.
	opDropLong
)

// engine is the bound driver: one actor owning every scheduled decision
// the profile implies.
type engine struct {
	src   Source
	d     *topology.Dumbbell
	rng   *sim.RNG
	sched *sim.Scheduler

	base    units.Time // simulated time of Start
	maxRate float64    // arrival curve maximum, the thinning envelope
	running bool

	records   []*workload.FlowRecord
	active    int
	generated int64

	long       []*topology.Flow // live long-lived flows, newest last
	longCursor int              // round-robin station assignment
}

// Start implements workload.Driver: it anchors the profile at the
// current simulated time, compiles the population curve into scheduled
// start/stop events, and begins the thinned arrival process.
func (e *engine) Start() {
	if e.running {
		panic("profile: engine started twice")
	}
	e.running = true
	e.base = e.sched.Now()

	initial, changes := compilePopulation(e.src.Profile.Population)
	for i := 0; i < initial; i++ {
		e.addLong()
	}
	for _, ch := range changes {
		op := opAddLong
		if ch.delta < 0 {
			op = opDropLong
		}
		e.sched.PostAt(e.base.Add(ch.at), e, op, nil)
	}

	if e.maxRate = e.src.Profile.Arrival.Max(); e.maxRate > 0 {
		e.scheduleNext()
	}
}

// Stop implements workload.Driver: no new short flows launch and the
// population stops changing; in-flight transfers run to completion.
func (e *engine) Stop() { e.running = false }

// Active implements workload.Driver: in-flight short flows plus live
// long-lived flows — the instantaneous n(t).
func (e *engine) Active() int { return e.active + len(e.long) }

// Generated implements workload.Driver (short flows launched).
func (e *engine) Generated() int64 { return e.generated }

// Records implements workload.Driver.
func (e *engine) Records() []*workload.FlowRecord { return e.records }

// OnEvent implements sim.Actor.
func (e *engine) OnEvent(op int32, arg any) {
	switch op {
	case opArrival:
		if !e.running {
			return
		}
		// Thinning: candidates arrive at the envelope rate and are
		// accepted with probability rate(t)/maxRate. When the curve
		// sits at its maximum the acceptance is certain and the draw is
		// skipped — that skip is what keeps a constant profile's RNG
		// stream identical to the stationary source's.
		rate := e.src.Profile.Arrival.At(e.sched.Now().Sub(e.base))
		if rate >= e.maxRate || e.rng.Uniform(0, e.maxRate) < rate {
			e.launch()
		}
		e.scheduleNext()
	case opDetach:
		e.d.RemoveFlow(arg.(*topology.Flow))
	case opAddLong:
		if e.running {
			e.addLong()
		}
	case opDropLong:
		if e.running {
			e.dropLong()
		}
	}
}

func (e *engine) scheduleNext() {
	wait := units.DurationFromSeconds(e.rng.Exp(1 / e.maxRate))
	e.sched.PostAfter(wait, e, opArrival, nil)
}

// launch mirrors the stationary source's arrival path draw for draw:
// size sample, then station pick, then flow start.
func (e *engine) launch() {
	size := e.src.Sizes.Sample(e.rng)
	spec := e.src.TCP
	spec.TotalSegments = size
	st := e.d.Station(e.rng.Intn(e.d.NumStations()))
	f := e.d.AddFlow(st, spec)

	rec := &workload.FlowRecord{Size: size, Start: e.sched.Now(), Completed: units.Never}
	e.records = append(e.records, rec)
	e.generated++
	e.active++

	f.Receiver.OnComplete = func(now units.Time) {
		rec.Completed = now
		e.active--
		// Defer the detach so the final ACK still reaches the sender
		// (the sender needs it to cancel its RTO and finish). The post
		// goes through the station's view: completion fires in the
		// station's shard, where a base-scheduler post would be illegal
		// inside a parallel window.
		f.Station.Sched().PostAfter(f.Station.RTT, e, opDetach, f)
	}
	f.Sender.Start()
}

// addLong starts one long-lived flow, assigning stations round-robin.
// Starts are not randomly staggered — the schedule is compiled, not
// drawn — so desynchronization comes from the topology's RTT spread.
func (e *engine) addLong() {
	spec := e.src.LongTCP
	spec.TotalSegments = 0
	st := e.d.Station(e.longCursor % e.d.NumStations())
	e.longCursor++
	f := e.d.AddFlow(st, spec)
	e.long = append(e.long, f)
	f.Sender.Start()
}

// dropLong stops the most recently started long-lived flow (LIFO, so a
// ramp up and back down returns to the original population).
func (e *engine) dropLong() {
	if len(e.long) == 0 {
		return
	}
	f := e.long[len(e.long)-1]
	e.long = e.long[:len(e.long)-1]
	f.Sender.Shutdown(e.sched.Now())
	// Let in-flight packets drain past the bottleneck before unwiring
	// the hosts, as the short-flow teardown does.
	e.sched.PostAfter(f.Station.RTT, e, opDetach, f)
}

// popChange is one compiled population step: at offset at from the
// profile start, the live flow count moves by delta (always ±1).
type popChange struct {
	at    units.Duration
	delta int
}

// compilePopulation turns the population curve into its initial flow
// count plus the time-ordered unit steps of round(n(t)) — a pure
// function of the curve, with no randomness, so the schedule is
// identical across seeds and runs.
func compilePopulation(c Curve) (initial int, changes []popChange) {
	if len(c) == 0 {
		return 0, nil
	}
	cur := int(math.Round(c[0].V))
	initial = cur
	for i := 1; i < len(c); i++ {
		lo, hi := c[i-1], c[i]
		target := int(math.Round(hi.V))
		if target == cur {
			continue
		}
		slope := (hi.V - lo.V) / float64(hi.T-lo.T)
		for cur < target {
			// round(v) first reaches cur+1 where v crosses cur+0.5.
			t := lo.T + units.Duration((float64(cur)+0.5-lo.V)/slope)
			changes = append(changes, popChange{at: clampOffset(t, lo.T, hi.T), delta: +1})
			cur++
		}
		for cur > target {
			// round(v) first drops to cur-1 where v crosses cur-0.5.
			t := lo.T + units.Duration((float64(cur)-0.5-lo.V)/slope)
			changes = append(changes, popChange{at: clampOffset(t, lo.T, hi.T), delta: -1})
			cur--
		}
	}
	return initial, changes
}

// clampOffset guards against floating-point drift pushing a crossing
// just outside its segment.
func clampOffset(t, lo, hi units.Duration) units.Duration {
	if t < lo {
		return lo
	}
	if t > hi {
		return hi
	}
	return t
}
