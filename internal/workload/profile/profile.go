// Package profile describes time-varying traffic declaratively: a
// piecewise-linear arrival-rate curve and a piecewise-linear long-lived
// flow-count curve, compiled into a deterministic per-seed schedule
// against the simulation kernel. The paper's buffer rule B = RTT·C/√n
// is a statement about n — this package is how n(t) stops being a
// constant: flash crowds, diurnal swings, stepped ramps and maintenance
// drains are all a handful of control points.
//
// Profiles are pure data (digestable by the run cache) and compose:
// curves can be scaled, summed and time-compressed, so a 24-hour
// diurnal shape replays in 60 simulated seconds.
package profile

import (
	"fmt"
	"math"

	"bufsim/internal/units"
)

// Point is one control point of a piecewise-linear curve: the value V
// holds at offset T from the profile's start. Between control points
// the curve interpolates linearly; before the first and after the last
// it clamps to the nearest point's value.
type Point struct {
	// T is the offset from the profile's start.
	T units.Duration
	// V is the curve value at T — flows per second for an arrival
	// curve, a flow count for a population curve.
	V float64
}

// Curve is a piecewise-linear function of time, given as control points
// in strictly increasing time order. An empty curve is identically
// zero.
type Curve []Point

// At evaluates the curve at offset t, clamping outside the control
// range.
func (c Curve) At(t units.Duration) float64 {
	if len(c) == 0 {
		return 0
	}
	if t <= c[0].T {
		return c[0].V
	}
	last := c[len(c)-1]
	if t >= last.T {
		return last.V
	}
	// Linear scan: control-point counts are small (a handful to a few
	// dozen) and the engine evaluates on arrivals, not per packet.
	for i := 1; i < len(c); i++ {
		if t <= c[i].T {
			lo, hi := c[i-1], c[i]
			frac := float64(t-lo.T) / float64(hi.T-lo.T)
			return lo.V + frac*(hi.V-lo.V)
		}
	}
	return last.V
}

// Max returns the curve's maximum value (zero for an empty curve). A
// piecewise-linear curve attains its maximum at a control point.
func (c Curve) Max() float64 {
	m := 0.0
	for _, p := range c {
		if p.V > m {
			m = p.V
		}
	}
	return m
}

// End returns the offset of the last control point, after which the
// curve is constant.
func (c Curve) End() units.Duration {
	if len(c) == 0 {
		return 0
	}
	return c[len(c)-1].T
}

// validate reports the first defect in the curve: negative offsets,
// non-finite or negative values, or control points out of order. Equal
// adjacent times are rejected explicitly — a zero-duration segment is
// almost always a typo for a step, which is written as two points a
// short transition apart.
func (c Curve) validate(name string) error {
	for i, p := range c {
		if p.T < 0 {
			return fmt.Errorf("profile: %s point %d: negative time offset %s", name, i, p.T)
		}
		if math.IsNaN(p.V) || math.IsInf(p.V, 0) {
			return fmt.Errorf("profile: %s point %d: value must be finite, got %v", name, i, p.V)
		}
		if p.V < 0 {
			return fmt.Errorf("profile: %s point %d: negative value %v (rates and flow counts cannot go below zero)", name, i, p.V)
		}
		if i == 0 {
			continue
		}
		switch prev := c[i-1]; {
		case p.T == prev.T:
			return fmt.Errorf("profile: %s point %d: zero-duration segment at t=%s (write a step as two points a short transition apart)", name, i, p.T)
		case p.T < prev.T:
			return fmt.Errorf("profile: %s point %d: time %s precedes point %d (%s); control points must be in increasing time order", name, i, p.T, i-1, prev.T)
		}
	}
	return nil
}

func (c Curve) scale(f float64) Curve {
	out := make(Curve, len(c))
	for i, p := range c {
		out[i] = Point{T: p.T, V: p.V * f}
	}
	return out
}

func (c Curve) compress(factor float64) Curve {
	out := make(Curve, len(c))
	for i, p := range c {
		out[i] = Point{T: units.Duration(float64(p.T) / factor), V: p.V}
	}
	return out
}

// Profile is a declarative time-varying workload: what the short-flow
// arrival rate and the long-lived flow population do over time.
type Profile struct {
	// Name labels the profile in reports and cache keys.
	Name string
	// Arrival is the short-flow arrival rate over time, in flows per
	// second. Empty means no short flows.
	Arrival Curve
	// Population is the long-lived flow count over time; the engine
	// tracks round(n(t)) with scheduled flow starts and stops. Empty
	// means no long-lived flows.
	Population Curve
}

// Validate reports the first defect in either curve, or that the
// profile describes no traffic at all.
func (p Profile) Validate() error {
	if err := p.Arrival.validate("arrival"); err != nil {
		return err
	}
	if err := p.Population.validate("population"); err != nil {
		return err
	}
	if p.Arrival.Max() == 0 && p.Population.Max() == 0 {
		return fmt.Errorf("profile: %q describes no traffic (arrival and population are both everywhere zero)", p.Name)
	}
	return nil
}

// Duration returns the time of the last control point across both
// curves; the profile is constant afterwards.
func (p Profile) Duration() units.Duration {
	if a, b := p.Arrival.End(), p.Population.End(); a > b {
		return a
	}
	return p.Population.End()
}

// ScaleArrival multiplies the arrival curve by f.
func (p Profile) ScaleArrival(f float64) Profile {
	p.Arrival = p.Arrival.scale(f)
	return p
}

// ScalePopulation multiplies the population curve by f.
func (p Profile) ScalePopulation(f float64) Profile {
	p.Population = p.Population.scale(f)
	return p
}

// ScaleTo rescales the profile as a shape: the arrival curve's peak
// becomes peakArrival flows/sec and the population curve's peak becomes
// peakPopulation flows. A curve that is empty or everywhere zero is
// left alone; a zero target removes that curve entirely.
func (p Profile) ScaleTo(peakArrival, peakPopulation float64) Profile {
	if m := p.Arrival.Max(); m > 0 {
		if peakArrival > 0 {
			p = p.ScaleArrival(peakArrival / m)
		} else {
			p.Arrival = nil
		}
	}
	if m := p.Population.Max(); m > 0 {
		if peakPopulation > 0 {
			p = p.ScalePopulation(peakPopulation / m)
		} else {
			p.Population = nil
		}
	}
	return p
}

// Compress divides every control-point time by factor, replaying the
// same shape faster (factor > 1) or slower (factor < 1) — e.g. a
// 24-hour diurnal cycle compressed 1440x runs in one simulated minute.
func (p Profile) Compress(factor float64) (Profile, error) {
	if factor <= 0 || math.IsNaN(factor) || math.IsInf(factor, 0) {
		return Profile{}, fmt.Errorf("profile: compression factor must be a positive finite number, got %v", factor)
	}
	p.Arrival = p.Arrival.compress(factor)
	p.Population = p.Population.compress(factor)
	return p, nil
}

// Sum composes profiles by pointwise addition of their curves, over the
// union of their control points — e.g. a diurnal baseline plus a flash
// crowd. The result carries a "+"-joined name.
func Sum(profiles ...Profile) Profile {
	var out Profile
	for i, p := range profiles {
		if i == 0 {
			out.Name = p.Name
		} else {
			out.Name += "+" + p.Name
		}
		out.Arrival = sumCurves(out.Arrival, p.Arrival)
		out.Population = sumCurves(out.Population, p.Population)
	}
	return out
}

// sumCurves returns the pointwise sum of two piecewise-linear curves,
// with control points at the union of both point sets (the sum of two
// piecewise-linear functions is piecewise linear on that union).
func sumCurves(a, b Curve) Curve {
	if len(a) == 0 {
		return append(Curve(nil), b...)
	}
	if len(b) == 0 {
		return append(Curve(nil), a...)
	}
	times := make([]units.Duration, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var t units.Duration
		switch {
		case i == len(a):
			t = b[j].T
		case j == len(b):
			t = a[i].T
		case a[i].T < b[j].T:
			t = a[i].T
		default:
			t = b[j].T
		}
		for i < len(a) && a[i].T == t {
			i++
		}
		for j < len(b) && b[j].T == t {
			j++
		}
		times = append(times, t)
	}
	out := make(Curve, len(times))
	for k, t := range times {
		out[k] = Point{T: t, V: a.At(t) + b.At(t)}
	}
	return out
}
