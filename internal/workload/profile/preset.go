package profile

import (
	"fmt"
	"strings"

	"bufsim/internal/units"
)

// Preset names a built-in profile shape. Each preset is an index into
// the package's preset registry, which supplies its name, parse aliases
// and normalized curves; adding a preset means adding one registry
// entry — String, ParseProfile, the TextMarshaler pair and the "unknown
// workload profile" error message all derive from the registry and
// cannot drift.
//
// Preset curves are shapes, normalized to peak 1.0 on both axes: scale
// them to real rates and flow counts with Profile.ScaleTo (the
// flashcrowd experiment and the CLIs do this from their load and flow
// parameters).
type Preset int

// Built-in profile shapes.
const (
	// Constant: the stationary baseline — arrival rate and population
	// flat at their peaks. Scaled to a pure Poisson load, it reproduces
	// the legacy short-flow source draw for draw.
	Constant Preset = iota
	// Diurnal: a 24-hour sinusoid-like swing between a 20% trough and
	// the peak, as three linear ramps; compress it to replay a day in
	// simulated seconds.
	Diurnal
	// FlashCrowd: a quiet 10% baseline that spikes 10x in two seconds,
	// holds, and decays — the n(t) regime the 2004 rule never modeled.
	FlashCrowd
	// SteppedRamp: four load plateaus (25/50/75/100%) with half-second
	// transitions, for dose-response sweeps along one run.
	SteppedRamp
	// Drain: full load with a mid-run maintenance window where traffic
	// drains to 5% and recovers — buffer behaviour through an
	// intentional trough.
	Drain

	numPresets = int(Drain) + 1
)

// presetInfo is one registry entry.
type presetInfo struct {
	name    string
	aliases []string
	build   func() Profile
}

// presetRegistry is indexed by Preset. The array length is pinned to
// numPresets, so adding a constant above without a registry entry (or
// vice versa) fails to compile; TestPresetRegistryExhaustive checks the
// entries themselves are populated.
var presetRegistry = [numPresets]presetInfo{
	Constant: {name: "constant", aliases: []string{"steady", "stationary"}, build: func() Profile {
		return Profile{
			Name:       "constant",
			Arrival:    Curve{{T: 0, V: 1}, {T: 60 * units.Second, V: 1}},
			Population: Curve{{T: 0, V: 1}, {T: 60 * units.Second, V: 1}},
		}
	}},
	Diurnal: {name: "diurnal", aliases: []string{"daily"}, build: func() Profile {
		day := 24 * 3600 * units.Second
		shape := Curve{
			{T: 0, V: 0.2},
			{T: day * 5 / 24, V: 0.2},
			{T: day * 13 / 24, V: 1},
			{T: day * 17 / 24, V: 1},
			{T: day, V: 0.2},
		}
		return Profile{Name: "diurnal", Arrival: shape, Population: shape}
	}},
	FlashCrowd: {name: "flashcrowd", aliases: []string{"flash-crowd", "spike"}, build: func() Profile {
		shape := Curve{
			{T: 0, V: 0.1},
			{T: 30 * units.Second, V: 0.1},
			{T: 32 * units.Second, V: 1},
			{T: 40 * units.Second, V: 1},
			{T: 46 * units.Second, V: 0.1},
			{T: 60 * units.Second, V: 0.1},
		}
		return Profile{Name: "flashcrowd", Arrival: shape, Population: shape}
	}},
	SteppedRamp: {name: "step", aliases: []string{"stepped-ramp", "ramp"}, build: func() Profile {
		shape := Curve{
			{T: 0, V: 0.25},
			{T: 14500 * units.Millisecond, V: 0.25},
			{T: 15 * units.Second, V: 0.5},
			{T: 29500 * units.Millisecond, V: 0.5},
			{T: 30 * units.Second, V: 0.75},
			{T: 44500 * units.Millisecond, V: 0.75},
			{T: 45 * units.Second, V: 1},
			{T: 60 * units.Second, V: 1},
		}
		return Profile{Name: "step", Arrival: shape, Population: shape}
	}},
	Drain: {name: "drain", aliases: []string{"maintenance", "maintenance-drain"}, build: func() Profile {
		shape := Curve{
			{T: 0, V: 1},
			{T: 25 * units.Second, V: 1},
			{T: 27 * units.Second, V: 0.05},
			{T: 35 * units.Second, V: 0.05},
			{T: 37 * units.Second, V: 1},
			{T: 60 * units.Second, V: 1},
		}
		return Profile{Name: "drain", Arrival: shape, Population: shape}
	}},
}

// valid reports whether p indexes a registered preset.
func (p Preset) valid() bool { return p >= 0 && int(p) < numPresets }

func (p Preset) String() string {
	if !p.valid() {
		return fmt.Sprintf("preset(%d)", int(p))
	}
	return presetRegistry[p].name
}

// Profile builds the preset's normalized profile. Out-of-range values
// fall back to Constant, the zero value.
func (p Preset) Profile() Profile {
	if !p.valid() {
		return presetRegistry[Constant].build()
	}
	return presetRegistry[p].build()
}

// ProfileNames returns the canonical preset names in registry order
// (for CLI help text and error messages).
func ProfileNames() []string {
	names := make([]string, numPresets)
	for i, info := range presetRegistry {
		names[i] = info.name
	}
	return names
}

// Presets returns all registered presets in registry order.
func Presets() []Preset {
	ps := make([]Preset, numPresets)
	for i := range ps {
		ps[i] = Preset(i)
	}
	return ps
}

// presetNameList renders "constant, diurnal, ... or drain" for the
// parse error, regenerated from the registry so it cannot drift as
// presets are added.
func presetNameList() string {
	names := ProfileNames()
	return strings.Join(names[:len(names)-1], ", ") + " or " + names[len(names)-1]
}

// ParseProfile parses a preset name, case-insensitively, accepting each
// preset's canonical name or registered aliases (e.g. "flash-crowd" for
// flashcrowd, "maintenance" for drain). The empty string parses as
// Constant, the zero value, so optional config fields round-trip.
func ParseProfile(s string) (Preset, error) {
	lower := strings.ToLower(s)
	if lower == "" {
		return Constant, nil
	}
	for i, info := range presetRegistry {
		if lower == info.name {
			return Preset(i), nil
		}
		for _, a := range info.aliases {
			if lower == a {
				return Preset(i), nil
			}
		}
	}
	return Constant, fmt.Errorf("profile: unknown workload profile %q (want %s)", s, presetNameList())
}

// MarshalText implements encoding.TextMarshaler, so a Preset renders as
// its name in JSON scenario files rather than a bare integer.
func (p Preset) MarshalText() ([]byte, error) {
	if !p.valid() {
		return nil, fmt.Errorf("profile: cannot marshal unknown preset %d", int(p))
	}
	return []byte(p.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler via ParseProfile.
func (p *Preset) UnmarshalText(text []byte) error {
	parsed, err := ParseProfile(string(text))
	if err != nil {
		return err
	}
	*p = parsed
	return nil
}
