// Package workload generates the paper's traffic mixes: sets of long-lived
// flows with staggered starts (§3, §5.1.1), Poisson arrivals of short
// slow-start flows with configurable size distributions (§4, §5.1.2), and
// combinations of the two (§5.1.3 and the Fig. 11 production mix).
package workload

import (
	"fmt"
	"math"

	"bufsim/internal/sim"
	"bufsim/internal/tcp"
	"bufsim/internal/topology"
	"bufsim/internal/units"
)

// SizeDist is a flow-length distribution in segments.
type SizeDist interface {
	// Sample draws one flow length (>= 1).
	Sample(rng *sim.RNG) int64
	// Mean returns the distribution's expected value.
	Mean() float64
	// String describes the distribution for reports.
	String() string
}

// FixedSize is a degenerate distribution: every flow has exactly N
// segments (the paper's Fig. 8 uses fixed-length short flows).
type FixedSize int64

// Sample implements SizeDist.
func (f FixedSize) Sample(*sim.RNG) int64 { return int64(f) }

// Mean implements SizeDist.
func (f FixedSize) Mean() float64 { return float64(f) }

func (f FixedSize) String() string { return fmt.Sprintf("fixed(%d)", int64(f)) }

// GeometricSize draws geometrically distributed flow lengths with the
// given mean — the memoryless baseline mix.
type GeometricSize float64

// Sample implements SizeDist.
func (g GeometricSize) Sample(rng *sim.RNG) int64 { return int64(rng.Geometric(float64(g))) }

// Mean implements SizeDist.
func (g GeometricSize) Mean() float64 { return math.Max(float64(g), 1) }

func (g GeometricSize) String() string { return fmt.Sprintf("geometric(%.1f)", float64(g)) }

// ParetoSize draws bounded-Pareto flow lengths: the heavy-tailed
// distribution of real flow sizes the paper appeals to ("flow lengths
// follow a typically heavy-tailed distribution", §5.1.3).
type ParetoSize struct {
	Shape    float64 // tail index alpha; smaller is heavier
	Min, Max int64   // bounds in segments
}

// Sample implements SizeDist.
func (p ParetoSize) Sample(rng *sim.RNG) int64 {
	v := rng.BoundedPareto(p.Shape, float64(p.Min), float64(p.Max))
	return int64(math.Max(1, math.Round(v)))
}

// Mean implements SizeDist (the analytic truncated-Pareto mean).
func (p ParetoSize) Mean() float64 {
	a := p.Shape
	l, h := float64(p.Min), float64(p.Max)
	if l >= h {
		return l
	}
	norm := 1 - math.Pow(l/h, a)
	if a == 1 {
		return l * math.Log(h/l) / norm
	}
	return a * math.Pow(l, a) / norm * (math.Pow(l, 1-a) - math.Pow(h, 1-a)) / (a - 1)
}

func (p ParetoSize) String() string {
	return fmt.Sprintf("pareto(%.2f,[%d,%d])", p.Shape, p.Min, p.Max)
}

// StartLongLived adds n long-lived flows, one per station (station i gets
// flow i mod stations), with start times drawn uniformly from
// [0, stagger] — the "random (and independent) start times" that
// desynchronize the sawtooths. It returns the flows.
func StartLongLived(d *topology.Dumbbell, n int, spec tcp.Config, rng *sim.RNG, stagger units.Duration) []*topology.Flow {
	if n <= 0 {
		panic(fmt.Sprintf("workload: StartLongLived with n=%d", n))
	}
	spec.TotalSegments = 0
	sched := d.Config().Sched
	flows := make([]*topology.Flow, 0, n)
	for i := 0; i < n; i++ {
		st := d.Station(i % d.NumStations())
		f := d.AddFlow(st, spec)
		flows = append(flows, f)
		at := sched.Now()
		if stagger > 0 {
			at = at.Add(units.Duration(rng.Uniform(0, float64(stagger))))
		}
		// Start through the station's view: the start is shard-classified
		// work, so a sharded run fires it inside the station's window
		// instead of forcing a global barrier per flow.
		st.Sched().PostAt(at, f.Sender, tcp.OpStart, nil)
	}
	return flows
}

// FlowRecord is one completed (or in-flight) short flow.
type FlowRecord struct {
	Size      int64      // segments
	Start     units.Time // first transmission
	Completed units.Time // last segment reached the receiver; units.Never if not yet
}

// Duration returns the flow completion time in the paper's sense (first
// packet sent until last packet received).
func (r FlowRecord) Duration() units.Duration {
	if r.Completed == units.Never {
		return units.Duration(math.MaxInt64)
	}
	return r.Completed.Sub(r.Start)
}

// ShortFlowConfig parameterizes a Poisson short-flow source.
type ShortFlowConfig struct {
	Dumbbell *topology.Dumbbell
	RNG      *sim.RNG

	// Load is the target bottleneck utilization offered by this source
	// (rho); the arrival rate is derived as
	// lambda = rho * C / (E[size] * segment bits).
	Load float64

	// Sizes is the flow-length distribution.
	Sizes SizeDist

	// TCP is the per-flow template; TotalSegments is overwritten per
	// flow. The paper's §4 model assumes short flows respect a modest
	// MaxWindow (12–43).
	TCP tcp.Config
}

// ShortFlows is a Poisson source of finite TCP flows over a dumbbell's
// stations. Each arriving flow takes a uniformly random station, runs to
// completion, and is detached so stations can be reused indefinitely.
type ShortFlows struct {
	cfg       ShortFlowConfig
	sched     *sim.Scheduler
	interMean float64 // seconds
	running   bool

	// Records holds one entry per arrived flow, in arrival order.
	Records []*FlowRecord

	active    int
	generated int64
}

// ArrivalRateForLoad returns the flows-per-second Poisson rate that
// offers the given bottleneck load: lambda = rho * C / (E[size] * segment
// bits). A zero segment size means units.DefaultSegment. Time-varying
// profiles use the same conversion so a constant profile at this rate is
// the stationary source, draw for draw.
func ArrivalRateForLoad(load float64, rate units.BitRate, seg units.ByteSize, sizes SizeDist) float64 {
	if seg == 0 {
		seg = units.DefaultSegment
	}
	segsPerSec := load * float64(rate) / float64(seg.Bits())
	return segsPerSec / sizes.Mean()
}

// NewShortFlows returns a stopped source; call Start.
func NewShortFlows(cfg ShortFlowConfig) *ShortFlows {
	if cfg.Dumbbell == nil || cfg.RNG == nil || cfg.Sizes == nil {
		panic("workload: ShortFlowConfig requires Dumbbell, RNG and Sizes")
	}
	if cfg.Load <= 0 || cfg.Load >= 1 {
		panic(fmt.Sprintf("workload: short-flow load %v out of (0,1)", cfg.Load))
	}
	lambda := ArrivalRateForLoad(cfg.Load, cfg.Dumbbell.Config().BottleneckRate, cfg.TCP.SegmentSize, cfg.Sizes)
	return &ShortFlows{
		cfg:       cfg,
		sched:     cfg.Dumbbell.Config().Sched,
		interMean: 1 / lambda,
	}
}

// ArrivalRate returns the source's flows-per-second rate.
func (g *ShortFlows) ArrivalRate() float64 { return 1 / g.interMean }

// Start begins Poisson arrivals.
func (g *ShortFlows) Start() {
	if g.running {
		panic("workload: ShortFlows started twice")
	}
	g.running = true
	g.scheduleNext()
}

// Stop halts new arrivals; in-flight flows run to completion.
func (g *ShortFlows) Stop() { g.running = false }

// Active returns the number of flows currently in flight.
func (g *ShortFlows) Active() int { return g.active }

// Generated returns the total number of flows started.
func (g *ShortFlows) Generated() int64 { return g.generated }

// ShortFlows event opcodes (see sim.Actor).
const (
	// opArrival: the next Poisson arrival is due.
	opArrival int32 = iota
	// opDetach: a completed flow's grace period elapsed; unwire it. The
	// payload is the *topology.Flow.
	opDetach
)

// OnEvent implements sim.Actor: arrivals and detaches are typed kernel
// events, so a short-flow workload allocates per flow, never per timer.
func (g *ShortFlows) OnEvent(op int32, arg any) {
	switch op {
	case opArrival:
		if !g.running {
			return
		}
		g.launch()
		g.scheduleNext()
	case opDetach:
		g.cfg.Dumbbell.RemoveFlow(arg.(*topology.Flow))
	}
}

func (g *ShortFlows) scheduleNext() {
	wait := units.DurationFromSeconds(g.cfg.RNG.Exp(g.interMean))
	g.sched.PostAfter(wait, g, opArrival, nil)
}

func (g *ShortFlows) launch() {
	d := g.cfg.Dumbbell
	size := g.cfg.Sizes.Sample(g.cfg.RNG)
	spec := g.cfg.TCP
	spec.TotalSegments = size
	st := d.Station(g.cfg.RNG.Intn(d.NumStations()))
	f := d.AddFlow(st, spec)

	rec := &FlowRecord{Size: size, Start: g.sched.Now(), Completed: units.Never}
	g.Records = append(g.Records, rec)
	g.generated++
	g.active++

	f.Receiver.OnComplete = func(now units.Time) {
		rec.Completed = now
		g.active--
		// Defer the detach so the final ACK still reaches the sender
		// (the sender needs it to cancel its RTO and finish). The post
		// goes through the station's view: completion fires in the
		// station's shard, where a base-scheduler post would be illegal
		// inside a parallel window.
		f.Station.Sched().PostAfter(f.Station.RTT, g, opDetach, f)
	}
	f.Sender.Start()
}

// AFCT returns the average flow completion time over flows that started in
// [from, to], along with how many such flows completed and how many did
// not (censored). Censored flows are excluded from the average, so callers
// should drain the system (or report incomplete) before trusting the
// number.
func (g *ShortFlows) AFCT(from, to units.Time) (afct units.Duration, completed, censored int) {
	return RecordAFCT(g.Records, from, to)
}
