package workload

import (
	"fmt"

	"bufsim/internal/sim"
	"bufsim/internal/tcp"
	"bufsim/internal/topology"
	"bufsim/internal/units"
)

// Source is a declarative traffic description: pure data (digestable by
// the run cache) that binds onto a dumbbell to produce a Driver. The
// three historical front ends — stationary Poisson short flows, Harpoon
// sessions and recorded-trace replay — and the time-varying profile
// engine all satisfy it, so an experiment can grid over workloads the
// way it grids over buffer sizes.
//
// Binding must be deterministic: the same source bound with the same
// seed produces the same flow schedule, packet for packet.
type Source interface {
	// Bind wires the workload onto d, drawing all randomness from rng,
	// and returns the stopped driver; the caller starts it.
	Bind(d *topology.Dumbbell, rng *sim.RNG) Driver
	// String describes the workload for reports and tables.
	String() string
}

// Driver is a bound, runnable workload.
type Driver interface {
	// Start begins generating traffic at the current simulated time.
	Start()
	// Stop halts new flow launches; in-flight flows run to completion.
	Stop()
	// Active returns the number of flows currently in flight — the
	// paper's instantaneous n(t).
	Active() int
	// Generated returns the total number of flows started so far.
	Generated() int64
	// Records returns one entry per launched finite flow, in launch
	// order, with completion times filling in as flows finish.
	Records() []*FlowRecord
}

// RecordAFCT returns the average flow completion time over records whose
// flow started in [from, to], along with how many such flows completed
// and how many did not (censored). Censored flows are excluded from the
// average, so callers should drain the system (or report incomplete)
// before trusting the number.
func RecordAFCT(records []*FlowRecord, from, to units.Time) (afct units.Duration, completed, censored int) {
	var sum units.Duration
	for _, r := range records {
		if r.Start < from || r.Start > to {
			continue
		}
		if r.Completed == units.Never {
			censored++
			continue
		}
		sum += r.Duration()
		completed++
	}
	if completed == 0 {
		return 0, 0, censored
	}
	return sum / units.Duration(completed), completed, censored
}

// PoissonSource is the legacy stationary workload as a Source: Poisson
// arrivals of finite flows at a fixed offered load.
type PoissonSource struct {
	// Load is the target bottleneck utilization (see ShortFlowConfig).
	Load float64
	// Sizes is the flow-length distribution.
	Sizes SizeDist
	// TCP is the per-flow template; TotalSegments is set per flow.
	TCP tcp.Config
}

func (s PoissonSource) String() string {
	return fmt.Sprintf("poisson(load=%.2f, %s)", s.Load, s.Sizes)
}

// Bind implements Source.
func (s PoissonSource) Bind(d *topology.Dumbbell, rng *sim.RNG) Driver {
	return poissonDriver{NewShortFlows(ShortFlowConfig{
		Dumbbell: d,
		RNG:      rng,
		Load:     s.Load,
		Sizes:    s.Sizes,
		TCP:      s.TCP,
	})}
}

// poissonDriver adapts *ShortFlows (whose Records is a field) to Driver.
type poissonDriver struct{ *ShortFlows }

func (p poissonDriver) Records() []*FlowRecord { return p.ShortFlows.Records }

// SessionSource is the Harpoon-style closed-loop workload as a Source.
type SessionSource struct {
	// Sessions is the population size (see SessionConfig).
	Sessions int
	// Sizes is the file-size distribution in segments.
	Sizes SizeDist
	// MeanThink is the average pause between a session's transfers.
	MeanThink units.Duration
	// TCP is the per-transfer template; TotalSegments is set per file.
	TCP tcp.Config
}

func (s SessionSource) String() string {
	return fmt.Sprintf("sessions(%d, %s, think=%s)", s.Sessions, s.Sizes, s.MeanThink)
}

// Bind implements Source.
func (s SessionSource) Bind(d *topology.Dumbbell, rng *sim.RNG) Driver {
	return sessionDriver{NewSessions(SessionConfig{
		Dumbbell:  d,
		RNG:       rng,
		Sessions:  s.Sessions,
		Sizes:     s.Sizes,
		MeanThink: s.MeanThink,
		TCP:       s.TCP,
	})}
}

// sessionDriver adapts *Sessions (whose Records is a field) to Driver.
type sessionDriver struct{ *Sessions }

func (s sessionDriver) Records() []*FlowRecord { return s.Sessions.Records }
func (s sessionDriver) Generated() int64       { return int64(len(s.Sessions.Records)) }

// TraceSource replays a recorded flow trace as a Source. Replay is
// deterministic — the bound RNG is never consulted.
type TraceSource struct {
	// Flows is the trace, ordered by start offset (see ReadFlows).
	Flows []FlowSpec
	// TCP is the per-flow template; TotalSegments is set per flow.
	TCP tcp.Config
}

func (s TraceSource) String() string {
	return fmt.Sprintf("trace(%d flows)", len(s.Flows))
}

// Bind implements Source.
func (s TraceSource) Bind(d *topology.Dumbbell, _ *sim.RNG) Driver {
	return &traceDriver{d: d, src: s}
}

// traceDriver defers the Replay call to Start so the trace anchors at
// the driver's start time, like every other workload.
type traceDriver struct {
	d   *topology.Dumbbell
	src TraceSource
	run *replayRun
}

// Start implements Driver.
func (t *traceDriver) Start() {
	if t.run != nil {
		panic("workload: trace driver started twice")
	}
	t.run = startReplay(t.d, t.src.Flows, t.src.TCP)
}

// Stop implements Driver: flows not yet started are abandoned.
func (t *traceDriver) Stop() {
	if t.run != nil {
		t.run.stopped = true
	}
}

// Active implements Driver.
func (t *traceDriver) Active() int {
	if t.run == nil {
		return 0
	}
	return t.run.active
}

// Generated implements Driver.
func (t *traceDriver) Generated() int64 {
	if t.run == nil {
		return 0
	}
	return t.run.started
}

// Records implements Driver. Entries for flows that have not started
// yet have a zero Start and Never completion.
func (t *traceDriver) Records() []*FlowRecord {
	if t.run == nil {
		return nil
	}
	return t.run.records
}
