package workload

import (
	"testing"

	"bufsim/internal/tcp"
	"bufsim/internal/units"
)

func TestSessionsCycleTransfers(t *testing.T) {
	s, d, rng := testDumbbell(10, 200, 20*units.Mbps)
	g := NewSessions(SessionConfig{
		Dumbbell:  d,
		RNG:       rng.Fork(),
		Sessions:  20,
		Sizes:     GeometricSize(20),
		MeanThink: 500 * units.Millisecond,
		TCP:       tcp.Config{SegmentSize: 1000, MaxWindow: 43},
	})
	g.Start()
	s.Run(units.Time(30 * units.Second))
	// 20 sessions cycling ~20-segment files with sub-second pauses must
	// complete many transfers (each session several per second at most;
	// conservatively demand a few per session).
	if g.Transfers < 100 {
		t.Errorf("Transfers = %d, want sessions to cycle", g.Transfers)
	}
	// Active flows stay within the population.
	if g.Active() < 0 || g.Active() > 20 {
		t.Errorf("Active = %d, want [0, 20]", g.Active())
	}
	// Every record either completed or is one of the active ones.
	var completed int
	for _, r := range g.Records {
		if r.Completed != units.Never {
			completed++
		}
	}
	if completed+g.Active() != len(g.Records) {
		t.Errorf("completed %d + active %d != records %d",
			completed, g.Active(), len(g.Records))
	}
}

func TestSessionsEquilibriumLoad(t *testing.T) {
	// With long think times the offered load is light; the link should
	// be far from saturated. Sanity check of the think-time control.
	s, d, rng := testDumbbell(10, 200, 20*units.Mbps)
	g := NewSessions(SessionConfig{
		Dumbbell:  d,
		RNG:       rng.Fork(),
		Sessions:  5,
		Sizes:     FixedSize(10),
		MeanThink: 5 * units.Second,
		TCP:       tcp.Config{SegmentSize: 1000, MaxWindow: 43},
	})
	g.Start()
	warm := units.Time(5 * units.Second)
	s.Run(warm)
	busy := d.Bottleneck.BusyTime()
	s.Run(units.Time(30 * units.Second))
	util := d.Bottleneck.Utilization(busy, warm)
	if util > 0.2 {
		t.Errorf("light session load utilization = %v, want < 0.2", util)
	}
	if g.Transfers == 0 {
		t.Error("no transfers completed")
	}
}

func TestSessionsStopHalts(t *testing.T) {
	s, d, rng := testDumbbell(4, 100, 10*units.Mbps)
	g := NewSessions(SessionConfig{
		Dumbbell:  d,
		RNG:       rng.Fork(),
		Sessions:  4,
		Sizes:     FixedSize(5),
		MeanThink: 100 * units.Millisecond,
		TCP:       tcp.Config{SegmentSize: 1000},
	})
	g.Start()
	s.Run(units.Time(5 * units.Second))
	g.Stop()
	s.Run(units.Time(10 * units.Second)) // drain
	n := g.Transfers
	s.Run(units.Time(20 * units.Second))
	if g.Transfers != n {
		t.Error("sessions kept transferring after Stop")
	}
	if g.Active() != 0 {
		t.Errorf("Active = %d after stop+drain", g.Active())
	}
}

func TestSessionsValidation(t *testing.T) {
	_, d, rng := testDumbbell(2, 10, units.Mbps)
	mustPanic := func(name string, cfg SessionConfig) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		NewSessions(cfg)
	}
	mustPanic("nil dumbbell", SessionConfig{RNG: rng, Sizes: FixedSize(1), Sessions: 1})
	mustPanic("zero sessions", SessionConfig{Dumbbell: d, RNG: rng, Sizes: FixedSize(1)})
	mustPanic("nil sizes", SessionConfig{Dumbbell: d, RNG: rng, Sessions: 1})

	g := NewSessions(SessionConfig{Dumbbell: d, RNG: rng, Sizes: FixedSize(1), Sessions: 1})
	g.Start()
	defer func() {
		if recover() == nil {
			t.Error("double Start did not panic")
		}
	}()
	g.Start()
}
