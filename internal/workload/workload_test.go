package workload

import (
	"math"
	"testing"

	"bufsim/internal/queue"
	"bufsim/internal/sim"
	"bufsim/internal/tcp"
	"bufsim/internal/topology"
	"bufsim/internal/units"
)

func testDumbbell(stations int, bufferPkts int, rate units.BitRate) (*sim.Scheduler, *topology.Dumbbell, *sim.RNG) {
	s := sim.NewScheduler()
	rng := sim.NewRNG(42)
	d := topology.NewDumbbell(topology.Config{
		Sched:           s,
		RNG:             rng.Fork(),
		BottleneckRate:  rate,
		BottleneckDelay: 5 * units.Millisecond,
		Buffer:          queue.PacketLimit(bufferPkts),
		Stations:        stations,
		RTTMin:          40 * units.Millisecond,
		RTTMax:          120 * units.Millisecond,
	})
	return s, d, rng
}

func TestFixedSize(t *testing.T) {
	d := FixedSize(14)
	if d.Sample(nil) != 14 || d.Mean() != 14 {
		t.Error("FixedSize wrong")
	}
	if d.String() != "fixed(14)" {
		t.Errorf("String = %q", d.String())
	}
}

func TestGeometricSizeMean(t *testing.T) {
	rng := sim.NewRNG(1)
	d := GeometricSize(14)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := d.Sample(rng)
		if v < 1 {
			t.Fatalf("sample %d < 1", v)
		}
		sum += float64(v)
	}
	if got := sum / n; math.Abs(got-14) > 0.5 {
		t.Errorf("empirical mean = %v, want 14", got)
	}
}

func TestParetoSizeMeanMatchesAnalytic(t *testing.T) {
	rng := sim.NewRNG(2)
	d := ParetoSize{Shape: 1.2, Min: 2, Max: 10000}
	sum := 0.0
	const n = 300000
	for i := 0; i < n; i++ {
		v := d.Sample(rng)
		if v < 1 || v > 10000 {
			t.Fatalf("sample %d out of bounds", v)
		}
		sum += float64(v)
	}
	emp := sum / n
	ana := d.Mean()
	if math.Abs(emp-ana)/ana > 0.1 {
		t.Errorf("empirical mean %v vs analytic %v", emp, ana)
	}
	// Degenerate and alpha=1 paths.
	if got := (ParetoSize{Shape: 1.5, Min: 5, Max: 5}).Mean(); got != 5 {
		t.Errorf("degenerate mean = %v", got)
	}
	one := ParetoSize{Shape: 1, Min: 2, Max: 200}
	if m := one.Mean(); m < 2 || m > 200 {
		t.Errorf("alpha=1 mean = %v out of range", m)
	}
}

func TestStartLongLivedStaggersStarts(t *testing.T) {
	s, d, rng := testDumbbell(20, 100, 10*units.Mbps)
	flows := StartLongLived(d, 20, tcp.Config{SegmentSize: 1000}, rng, 2*units.Second)
	if len(flows) != 20 {
		t.Fatalf("got %d flows", len(flows))
	}
	s.Run(units.Time(5 * units.Second))
	var starts []units.Time
	for _, f := range flows {
		st := f.Sender.Stats()
		if st.Started == 0 && f.Station.Index != 0 {
			// Stagger should spread almost all starts away from 0.
			continue
		}
		starts = append(starts, st.Started)
	}
	var early, late int
	for _, f := range flows {
		if f.Sender.Stats().Started < units.Time(units.Second) {
			early++
		} else {
			late++
		}
	}
	if early == 0 || late == 0 {
		t.Errorf("starts not staggered: %d early, %d late", early, late)
	}
}

func TestLongLivedFillLink(t *testing.T) {
	s, d, rng := testDumbbell(10, 80, 10*units.Mbps)
	StartLongLived(d, 10, tcp.Config{SegmentSize: 1000}, rng, units.Second)
	warm := units.Time(8 * units.Second)
	s.Run(warm)
	busy := d.Bottleneck.BusyTime()
	s.Run(warm + units.Time(15*units.Second))
	if util := d.Bottleneck.Utilization(busy, warm); util < 0.9 {
		t.Errorf("long-lived utilization = %v", util)
	}
}

func TestShortFlowsPoissonLoad(t *testing.T) {
	// Offered load 0.5 on a 20 Mb/s link with 14-segment flows: the link
	// should carry roughly 0.5 utilization and flows should complete.
	s, d, rng := testDumbbell(30, 200, 20*units.Mbps)
	g := NewShortFlows(ShortFlowConfig{
		Dumbbell: d,
		RNG:      rng.Fork(),
		Load:     0.5,
		Sizes:    FixedSize(14),
		TCP:      tcp.Config{SegmentSize: 1000, MaxWindow: 43},
	})
	// lambda = 0.5 * 20e6 / 8000 / 14 = 89.3 flows/s.
	if r := g.ArrivalRate(); math.Abs(r-89.28) > 0.5 {
		t.Errorf("ArrivalRate = %v, want ~89.3", r)
	}
	g.Start()
	warm := units.Time(5 * units.Second)
	s.Run(warm)
	busy := d.Bottleneck.BusyTime()
	s.Run(warm + units.Time(20*units.Second))
	util := d.Bottleneck.Utilization(busy, warm)
	// ACK-path overhead is excluded; data plus retransmissions should put
	// utilization near the offered load.
	if util < 0.4 || util > 0.62 {
		t.Errorf("offered 0.5, measured %v", util)
	}
	g.Stop()
	s.Run(s.Now() + units.Time(10*units.Second)) // drain
	afct, completed, censored := g.AFCT(warm, warm+units.Time(20*units.Second))
	if completed < 1000 {
		t.Fatalf("only %d flows completed", completed)
	}
	if censored > completed/100 {
		t.Errorf("%d censored flows after drain (completed %d)", censored, completed)
	}
	// 14 segments in slow start over ~80 ms mean RTT: bursts 2,4,8 need
	// ~3 RTTs plus transmission; AFCT should land in the few-hundred-ms
	// range with ample buffers.
	if afct < 100*units.Millisecond || afct > 600*units.Millisecond {
		t.Errorf("AFCT = %v, want a few hundred ms", afct)
	}
	if g.Active() != 0 && censored == 0 {
		t.Errorf("Active = %d after drain", g.Active())
	}
}

func TestShortFlowsStationsReused(t *testing.T) {
	s, d, rng := testDumbbell(5, 100, 10*units.Mbps)
	g := NewShortFlows(ShortFlowConfig{
		Dumbbell: d,
		RNG:      rng.Fork(),
		Load:     0.3,
		Sizes:    FixedSize(5),
		TCP:      tcp.Config{SegmentSize: 1000},
	})
	g.Start()
	s.Run(units.Time(30 * units.Second))
	// 5 stations, ~75 flows/s for 30 s: thousands of flows over 5
	// stations proves reuse works.
	if g.Generated() < 500 {
		t.Errorf("Generated = %d, want many flows on few stations", g.Generated())
	}
}

func TestAFCTWindowFiltering(t *testing.T) {
	g := &ShortFlows{}
	g.Records = []*FlowRecord{
		{Size: 1, Start: 0, Completed: units.Time(units.Second)},
		{Size: 1, Start: units.Time(10 * units.Second), Completed: units.Time(12 * units.Second)},
		{Size: 1, Start: units.Time(11 * units.Second), Completed: units.Never},
	}
	afct, completed, censored := g.AFCT(units.Time(9*units.Second), units.Time(20*units.Second))
	if completed != 1 || censored != 1 {
		t.Errorf("completed=%d censored=%d", completed, censored)
	}
	if afct != 2*units.Second {
		t.Errorf("AFCT = %v, want 2s", afct)
	}
	// Empty window.
	if a, c, _ := g.AFCT(units.Time(100*units.Second), units.Time(200*units.Second)); a != 0 || c != 0 {
		t.Errorf("empty window AFCT = %v/%d", a, c)
	}
}

func TestFlowRecordDuration(t *testing.T) {
	r := FlowRecord{Start: units.Time(units.Second), Completed: units.Time(3 * units.Second)}
	if r.Duration() != 2*units.Second {
		t.Errorf("Duration = %v", r.Duration())
	}
	incomplete := FlowRecord{Start: 0, Completed: units.Never}
	if incomplete.Duration() != units.Duration(math.MaxInt64) {
		t.Error("incomplete duration should be MaxInt64")
	}
}

func TestConfigValidation(t *testing.T) {
	s, d, rng := testDumbbell(2, 10, units.Mbps)
	_ = s
	mustPanic := func(name string, cfg ShortFlowConfig) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		NewShortFlows(cfg)
	}
	mustPanic("nil dumbbell", ShortFlowConfig{RNG: rng, Sizes: FixedSize(1), Load: 0.5})
	mustPanic("bad load", ShortFlowConfig{Dumbbell: d, RNG: rng, Sizes: FixedSize(1), Load: 1.5})
	mustPanic("nil sizes", ShortFlowConfig{Dumbbell: d, RNG: rng, Load: 0.5})

	mustPanicN := func(name string, n int) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		StartLongLived(d, n, tcp.Config{}, rng, 0)
	}
	mustPanicN("zero long flows", 0)
}
