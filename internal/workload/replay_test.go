package workload

import (
	"strings"
	"testing"

	"bufsim/internal/tcp"
	"bufsim/internal/units"
)

func TestParseTrace(t *testing.T) {
	in := `# flows exported from somewhere
start_seconds,size_segments
0.1,4
0.5,10

2.25,100
`
	specs, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("specs = %+v", specs)
	}
	if specs[0].Size != 4 || specs[1].Size != 10 || specs[2].Size != 100 {
		t.Errorf("order wrong: %+v", specs)
	}
	if specs[0].Start != 100*units.Millisecond {
		t.Errorf("start = %v", specs[0].Start)
	}
	if specs[2].Start != 2250*units.Millisecond {
		t.Errorf("start = %v", specs[2].Start)
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := map[string]string{
		"wrong fields":  "1,2,3\n",
		"bad size":      "1.0,ten\n",
		"negative":      "-1,5\n",
		"zero size":     "1,0\n",
		"bad start row": "0.1,5\n(oops),5\n",
	}
	for name, in := range cases {
		if _, err := ParseTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
	// Empty trace is fine.
	specs, err := ParseTrace(strings.NewReader("# nothing\n"))
	if err != nil || len(specs) != 0 {
		t.Errorf("empty trace: %v %v", specs, err)
	}
}

func TestReplayRunsTrace(t *testing.T) {
	s, d, _ := testDumbbell(5, 200, 10*units.Mbps)
	specs := []FlowSpec{
		{Start: 0, Size: 10},
		{Start: 500 * units.Millisecond, Size: 20},
		{Start: units.Second, Size: 5},
	}
	records := Replay(d, specs, tcp.Config{SegmentSize: 1000, MaxWindow: 43})
	s.Run(units.Time(20 * units.Second))
	if len(records) != 3 {
		t.Fatalf("records = %d", len(records))
	}
	for i, r := range records {
		if r.Completed == units.Never {
			t.Errorf("flow %d never completed", i)
			continue
		}
		if r.Start < units.Epoch.Add(specs[i].Start) {
			t.Errorf("flow %d started at %v before its trace time %v", i, r.Start, specs[i].Start)
		}
		if r.Completed <= r.Start {
			t.Errorf("flow %d completed before starting", i)
		}
	}
	// Start times respect the trace (within scheduling exactness).
	if records[1].Start != units.Epoch.Add(specs[1].Start) {
		t.Errorf("flow 1 start = %v, want %v", records[1].Start, specs[1].Start)
	}
}

func TestReplayEndToEndFromCSV(t *testing.T) {
	s, d, _ := testDumbbell(10, 100, 10*units.Mbps)
	csv := "0.0,14\n0.2,14\n0.4,30\n0.6,8\n0.8,14\n"
	specs, err := ParseTrace(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	records := Replay(d, specs, tcp.Config{SegmentSize: 1000, MaxWindow: 43})
	s.Run(units.Time(30 * units.Second))
	var done int
	for _, r := range records {
		if r.Completed != units.Never {
			done++
		}
	}
	if done != len(records) {
		t.Errorf("%d/%d trace flows completed", done, len(records))
	}
}
