package workload

import (
	"strings"
	"testing"

	"bufsim/internal/units"
)

func TestReadFlowsSniffsCSV(t *testing.T) {
	in := "# legacy export\n0.1,4\n0.5,10\n2.25,100\n"
	specs, err := ReadFlows(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 || specs[0].Size != 4 || specs[2].Start != 2250*units.Millisecond {
		t.Errorf("specs = %+v", specs)
	}
}

func TestReadFlowsSniffsJSON(t *testing.T) {
	in := ` [
		{"start": "100ms", "size": 4},
		{"start": 0.5, "size": 10},
		{"start": "2.25s", "size": 100}
	]`
	specs, err := ReadFlows(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("specs = %+v", specs)
	}
	// Duration strings and bare seconds land on the same axis.
	if specs[0].Start != 100*units.Millisecond || specs[1].Start != 500*units.Millisecond {
		t.Errorf("starts = %v, %v", specs[0].Start, specs[1].Start)
	}
	if specs[2].Size != 100 {
		t.Errorf("size = %d", specs[2].Size)
	}
}

// TestReadFlowsRejectsOutOfOrder pins the bugfix: ParseTrace silently
// resorted shuffled rows, hiding corrupted or mis-merged traces.
// ReadFlows treats order as part of the format in both encodings.
func TestReadFlowsRejectsOutOfOrder(t *testing.T) {
	cases := map[string]string{
		"csv":  "0.5,10\n0.1,4\n",
		"json": `[{"start": 0.5, "size": 10}, {"start": 0.1, "size": 4}]`,
	}
	for name, in := range cases {
		_, err := ReadFlows(strings.NewReader(in))
		if err == nil {
			t.Errorf("%s: out-of-order trace accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), "ordered by start time") {
			t.Errorf("%s: error %q does not explain the ordering contract", name, err)
		}
	}
	// ParseTrace shares the same contract: it used to silently re-sort,
	// which is precisely the hazard this test pins against.
	_, err := ParseTrace(strings.NewReader("0.5,10\n0.1,4\n"))
	if err == nil {
		t.Error("ParseTrace: out-of-order trace accepted")
	} else if !strings.Contains(err.Error(), "ordered by start time") {
		t.Errorf("ParseTrace: error %q does not explain the ordering contract", err)
	}
}

func TestReadFlowsJSONErrors(t *testing.T) {
	cases := map[string]string{
		"unknown field":  `[{"start": 0, "size": 4, "bytes": 100}]`,
		"missing start":  `[{"size": 4}]`,
		"bad start":      `[{"start": true, "size": 4}]`,
		"negative start": `[{"start": -1, "size": 4}]`,
		"zero size":      `[{"start": 0, "size": 0}]`,
		"negative size":  `[{"start": 0, "size": -4}]`,
		"not an array":   `{"start": 0, "size": 4}`,
	}
	for name, in := range cases {
		if _, err := ReadFlows(strings.NewReader(in)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
	// An empty JSON trace is fine, like an empty CSV one.
	specs, err := ReadFlows(strings.NewReader("[]"))
	if err != nil || len(specs) != 0 {
		t.Errorf("empty JSON trace: %v %v", specs, err)
	}
}

func TestReadFlowsCSVRejectsNonFinite(t *testing.T) {
	for _, in := range []string{"NaN,4\n", "+Inf,4\n"} {
		if _, err := ReadFlows(strings.NewReader(in)); err == nil {
			t.Errorf("%q: non-finite start accepted", strings.TrimSpace(in))
		}
	}
}
