package workload

import (
	"fmt"

	"bufsim/internal/packet"
	"bufsim/internal/sim"
	"bufsim/internal/stats"
	"bufsim/internal/topology"
	"bufsim/internal/units"
)

// CBRConfig describes a constant-bit-rate (UDP-like) flow: traffic that
// does not react to congestion. The paper's §4 notes its short-flow
// queueing methodology "can also be used for UDP flows and other traffic
// that does not react to congestion"; CBR flows let the production-mix
// experiments include such a component and measure its loss and delay.
type CBRConfig struct {
	Dumbbell *topology.Dumbbell
	Station  *topology.Station

	// Rate is the flow's constant sending rate.
	Rate units.BitRate
	// PacketSize is the wire size of each packet.
	PacketSize units.ByteSize
	// Jitter, in [0,1), randomizes each inter-packet gap by +-Jitter/2 of
	// its nominal value to avoid phase-locking with other CBR sources.
	// Requires RNG when nonzero.
	Jitter float64
	RNG    *sim.RNG
}

// CBR is a running constant-bit-rate source with a measuring sink.
type CBR struct {
	cfg   CBRConfig
	sched *sim.Scheduler
	flow  *topology.RawFlow
	gap   units.Duration

	running bool
	seq     int64

	// Sent and Received count packets end to end; the difference (minus
	// packets in flight) is congestion loss.
	Sent     int64
	Received int64
	// OneWayDelay aggregates per-packet latency (seconds), including
	// queueing — the delay penalty overbuffering inflicts on real-time
	// traffic (§1.1's "low-latency needs of real time applications").
	OneWayDelay stats.Welford
}

// NewCBR wires a CBR source across the dumbbell. Call Start.
func NewCBR(cfg CBRConfig) *CBR {
	if cfg.Dumbbell == nil || cfg.Station == nil {
		panic("workload: CBRConfig requires Dumbbell and Station")
	}
	if cfg.Rate <= 0 {
		panic(fmt.Sprintf("workload: CBR rate %v must be positive", cfg.Rate))
	}
	if cfg.PacketSize <= 0 {
		cfg.PacketSize = 200 * units.Byte // small real-time-ish datagrams
	}
	if cfg.Jitter < 0 || cfg.Jitter >= 1 {
		panic(fmt.Sprintf("workload: CBR jitter %v out of [0,1)", cfg.Jitter))
	}
	if cfg.Jitter > 0 && cfg.RNG == nil {
		panic("workload: CBR jitter requires an RNG")
	}
	c := &CBR{
		cfg:   cfg,
		sched: cfg.Dumbbell.Config().Sched,
		flow:  cfg.Dumbbell.NewRawFlow(cfg.Station),
	}
	// Nominal inter-packet gap for the configured rate.
	c.gap = units.Duration(int64(cfg.PacketSize.Bits()) * int64(units.Second) / int64(cfg.Rate))
	cfg.Dumbbell.BindRawFlow(c.flow, nil, packet.HandlerFunc(c.receive))
	return c
}

// Start begins transmission.
func (c *CBR) Start() {
	if c.running {
		panic("workload: CBR started twice")
	}
	c.running = true
	c.sendNext()
}

// Stop halts transmission.
func (c *CBR) Stop() { c.running = false }

// LossRate returns the end-to-end loss fraction observed so far. Packets
// still in flight count as lost, so read it after a drain period.
func (c *CBR) LossRate() float64 {
	if c.Sent == 0 {
		return 0
	}
	return float64(c.Sent-c.Received) / float64(c.Sent)
}

func (c *CBR) sendNext() {
	if !c.running {
		return
	}
	now := c.sched.Now()
	c.flow.Forward.Handle(&packet.Packet{
		Flow: c.flow.ID,
		Src:  c.flow.Src,
		Dst:  c.flow.Dst,
		Seq:  c.seq,
		Size: c.cfg.PacketSize,
		Sent: now,
	})
	c.seq++
	c.Sent++
	gap := c.gap
	if c.cfg.Jitter > 0 {
		f := 1 + c.cfg.Jitter*(c.cfg.RNG.Float64()-0.5)
		gap = units.Duration(float64(gap) * f)
	}
	c.sched.PostAfter(gap, c, 0, nil)
}

// OnEvent implements sim.Actor: the inter-packet timer is a typed kernel
// event (a method-value callback would allocate per packet).
func (c *CBR) OnEvent(int32, any) { c.sendNext() }

func (c *CBR) receive(p *packet.Packet) {
	c.Received++
	c.OneWayDelay.Add(c.sched.Now().Sub(p.Sent).Seconds())
}
