package workload

import (
	"strings"
	"testing"

	"bufsim/internal/tcp"
	"bufsim/internal/units"
)

// TestPoissonSourceMatchesShortFlows: the Source adapter must be a pure
// re-packaging of NewShortFlows — same RNG, same schedule.
func TestPoissonSourceMatchesShortFlows(t *testing.T) {
	sizes := GeometricSize(12)
	cfgTCP := tcp.Config{MaxWindow: 32}

	s1, d1, rng1 := testDumbbell(8, 40, 10*units.Mbps)
	legacy := NewShortFlows(ShortFlowConfig{
		Dumbbell: d1, RNG: rng1.Fork(), Load: 0.5, Sizes: sizes, TCP: cfgTCP,
	})
	legacy.Start()
	s1.Run(units.Time(15 * units.Second))

	s2, d2, rng2 := testDumbbell(8, 40, 10*units.Mbps)
	drv := PoissonSource{Load: 0.5, Sizes: sizes, TCP: cfgTCP}.Bind(d2, rng2.Fork())
	drv.Start()
	s2.Run(units.Time(15 * units.Second))

	if legacy.Generated() == 0 {
		t.Fatal("no flows generated")
	}
	if drv.Generated() != legacy.Generated() {
		t.Fatalf("source generated %d, legacy %d", drv.Generated(), legacy.Generated())
	}
	recs := drv.Records()
	for i, want := range legacy.Records {
		if *recs[i] != *want {
			t.Fatalf("record %d: %+v != %+v", i, *recs[i], *want)
		}
	}
}

func TestSessionSourceDrives(t *testing.T) {
	s, d, rng := testDumbbell(6, 40, 10*units.Mbps)
	drv := SessionSource{
		Sessions: 4, Sizes: FixedSize(10), MeanThink: 200 * units.Millisecond,
		TCP: tcp.Config{MaxWindow: 16},
	}.Bind(d, rng.Fork())
	drv.Start()
	s.Run(units.Time(10 * units.Second))
	if drv.Generated() == 0 {
		t.Fatal("sessions generated no transfers")
	}
	if int64(len(drv.Records())) != drv.Generated() {
		t.Errorf("Records/Generated mismatch: %d vs %d", len(drv.Records()), drv.Generated())
	}
	drv.Stop()
	gen := drv.Generated()
	s.Run(units.Time(30 * units.Second))
	if drv.Generated() != gen {
		t.Errorf("Stop did not halt launches: %d -> %d", gen, drv.Generated())
	}
}

func TestTraceSourceAnchorsAtStart(t *testing.T) {
	s, d, rng := testDumbbell(5, 100, 10*units.Mbps)
	specs, err := ReadFlows(strings.NewReader("0.0,10\n0.5,20\n1.0,5\n"))
	if err != nil {
		t.Fatal(err)
	}
	drv := TraceSource{Flows: specs, TCP: tcp.Config{SegmentSize: 1000, MaxWindow: 43}}.Bind(d, rng.Fork())

	// Nothing runs before Start; the trace anchors when started, not at
	// the epoch.
	s.Run(units.Time(2 * units.Second))
	if drv.Generated() != 0 || drv.Active() != 0 || drv.Records() != nil {
		t.Fatal("trace driver ran before Start")
	}
	drv.Start()
	s.Run(units.Time(30 * units.Second))
	if drv.Generated() != 3 {
		t.Fatalf("generated = %d, want 3", drv.Generated())
	}
	recs := drv.Records()
	if recs[1].Start != units.Time(2*units.Second).Add(specs[1].Start) {
		t.Errorf("flow 1 start = %v, want trace offset %v past the driver start", recs[1].Start, specs[1].Start)
	}
	for i, r := range recs {
		if r.Completed == units.Never {
			t.Errorf("flow %d never completed", i)
		}
	}
	if drv.Active() != 0 {
		t.Errorf("Active = %d after all flows completed", drv.Active())
	}
}

func TestTraceSourceStopAbandonsPending(t *testing.T) {
	s, d, rng := testDumbbell(5, 100, 10*units.Mbps)
	specs := []FlowSpec{
		{Start: 0, Size: 5},
		{Start: 10 * units.Second, Size: 5},
	}
	drv := TraceSource{Flows: specs, TCP: tcp.Config{MaxWindow: 16}}.Bind(d, rng.Fork())
	drv.Start()
	s.Run(units.Time(5 * units.Second))
	drv.Stop()
	s.Run(units.Time(30 * units.Second))
	if drv.Generated() != 1 {
		t.Errorf("generated = %d after Stop, want 1 (second flow abandoned)", drv.Generated())
	}
}

func TestRecordAFCT(t *testing.T) {
	at := func(d units.Duration) units.Time { return units.Epoch.Add(d) }
	records := []*FlowRecord{
		{Start: at(1 * units.Second), Completed: at(2 * units.Second)},         // in window: 1s
		{Start: at(2 * units.Second), Completed: at(5 * units.Second)},         // in window: 3s
		{Start: at(3 * units.Second), Completed: units.Never},                  // censored
		{Start: at(20 * units.Second), Completed: at(21 * units.Second)},       // outside window
		{Start: at(0), Completed: at(10 * units.Second)},                       // before window
		{Start: at(4 * units.Second), Completed: at(4500 * units.Millisecond)}, // in window: 0.5s
	}
	afct, completed, censored := RecordAFCT(records, at(units.Second), at(10*units.Second))
	if completed != 3 || censored != 1 {
		t.Fatalf("completed=%d censored=%d, want 3, 1", completed, censored)
	}
	if want := units.Duration(1500 * units.Millisecond); afct != want {
		t.Errorf("afct = %v, want %v", afct, want)
	}
	afct, completed, censored = RecordAFCT(nil, at(0), at(units.Second))
	if afct != 0 || completed != 0 || censored != 0 {
		t.Error("empty records should be all zeros")
	}
}

func TestSourceStrings(t *testing.T) {
	cases := []struct {
		src  Source
		want string
	}{
		{PoissonSource{Load: 0.85, Sizes: GeometricSize(14)}, "poisson(load=0.85"},
		{SessionSource{Sessions: 40, Sizes: FixedSize(10), MeanThink: units.Second}, "sessions(40"},
		{TraceSource{Flows: make([]FlowSpec, 7)}, "trace(7 flows)"},
	}
	for _, c := range cases {
		if got := c.src.String(); !strings.Contains(got, c.want) {
			t.Errorf("String() = %q, want substring %q", got, c.want)
		}
	}
}
