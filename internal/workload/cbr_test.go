package workload

import (
	"math"
	"testing"

	"bufsim/internal/tcp"
	"bufsim/internal/units"
)

func TestCBRRateAccuracy(t *testing.T) {
	s, d, _ := testDumbbell(2, 1000, 10*units.Mbps)
	c := NewCBR(CBRConfig{
		Dumbbell:   d,
		Station:    d.Station(0),
		Rate:       units.Mbps, // 1 Mb/s of 200-B packets = 625 pkt/s
		PacketSize: 200,
	})
	c.Start()
	s.Run(units.Time(10 * units.Second))
	want := 625.0 * 10
	if math.Abs(float64(c.Sent)-want) > want/100 {
		t.Errorf("Sent = %d, want ~%v", c.Sent, want)
	}
	c.Stop()
	s.Run(units.Time(11 * units.Second)) // drain in-flight packets
	if c.LossRate() > 0.001 {
		t.Errorf("uncongested CBR lost %v", c.LossRate())
	}
	// One-way delay ~= half the station RTT plus serialization.
	mean := c.OneWayDelay.Mean()
	if mean < 0.02 || mean > 0.08 {
		t.Errorf("one-way delay = %vs, want ~RTT/2", mean)
	}
}

func TestCBRJitterStillMeetsRate(t *testing.T) {
	s, d, rng := testDumbbell(2, 1000, 10*units.Mbps)
	c := NewCBR(CBRConfig{
		Dumbbell:   d,
		Station:    d.Station(0),
		Rate:       2 * units.Mbps,
		PacketSize: 500,
		Jitter:     0.5,
		RNG:        rng.Fork(),
	})
	c.Start()
	s.Run(units.Time(10 * units.Second))
	want := 2e6 / 4000 * 10 // 500 pkt/s x 10 s
	if math.Abs(float64(c.Sent)-want) > want/10 {
		t.Errorf("jittered Sent = %d, want ~%v", c.Sent, want)
	}
}

func TestCBRExperiencesCongestionLoss(t *testing.T) {
	// A 2 Mb/s CBR stream sharing a 10 Mb/s bottleneck with saturating
	// TCP must see some loss and extra queueing delay (the buffer is
	// kept full by TCP).
	s, d, rng := testDumbbell(6, 100, 10*units.Mbps)
	StartLongLived(d, 5, tcp.Config{SegmentSize: 1000}, rng.Fork(), units.Second)
	c := NewCBR(CBRConfig{
		Dumbbell:   d,
		Station:    d.Station(5),
		Rate:       2 * units.Mbps,
		PacketSize: 500,
	})
	c.Start()
	s.Run(units.Time(20 * units.Second))
	c.Stop()
	s.Run(units.Time(22 * units.Second)) // drain in-flight packets
	if c.LossRate() <= 0 {
		t.Errorf("CBR against saturating TCP saw no loss (sent %d, recv %d)", c.Sent, c.Received)
	}
	if c.LossRate() > 0.5 {
		t.Errorf("CBR loss %v implausibly high", c.LossRate())
	}
	// Delay should exceed the uncongested propagation substantially
	// (standing queue of ~100 packets at 10 Mb/s ~ 80 ms).
	if c.OneWayDelay.Mean() < 0.05 {
		t.Errorf("congested one-way delay = %vs, want queueing visible", c.OneWayDelay.Mean())
	}
}

func TestCBRStopHalts(t *testing.T) {
	s, d, _ := testDumbbell(1, 100, 10*units.Mbps)
	c := NewCBR(CBRConfig{Dumbbell: d, Station: d.Station(0), Rate: units.Mbps})
	c.Start()
	s.Run(units.Time(units.Second))
	c.Stop()
	sent := c.Sent
	s.Run(units.Time(5 * units.Second))
	if c.Sent != sent {
		t.Error("CBR kept sending after Stop")
	}
}

func TestCBRValidation(t *testing.T) {
	s, d, _ := testDumbbell(1, 100, 10*units.Mbps)
	_ = s
	mustPanic := func(name string, cfg CBRConfig) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		NewCBR(cfg)
	}
	mustPanic("nil dumbbell", CBRConfig{Station: d.Station(0), Rate: units.Mbps})
	mustPanic("zero rate", CBRConfig{Dumbbell: d, Station: d.Station(0)})
	mustPanic("bad jitter", CBRConfig{Dumbbell: d, Station: d.Station(0), Rate: units.Mbps, Jitter: 1.5})
	mustPanic("jitter without rng", CBRConfig{Dumbbell: d, Station: d.Station(0), Rate: units.Mbps, Jitter: 0.2})

	c := NewCBR(CBRConfig{Dumbbell: d, Station: d.Station(0), Rate: units.Mbps})
	c.Start()
	defer func() {
		if recover() == nil {
			t.Error("double Start did not panic")
		}
	}()
	c.Start()
}

func TestRawFlowBindOneWay(t *testing.T) {
	// NewRawFlow + BindRawFlow with nil sender agent must work (CBR uses
	// exactly this) and allocate distinct flow IDs.
	s, d, _ := testDumbbell(1, 100, 10*units.Mbps)
	_ = s
	f1 := d.NewRawFlow(d.Station(0))
	f2 := d.NewRawFlow(d.Station(0))
	if f1.ID == f2.ID {
		t.Error("raw flows share an ID")
	}
	if f1.Src == 0 || f1.Dst == 0 || f1.Forward == nil || f1.Reverse == nil {
		t.Errorf("raw flow not fully populated: %+v", f1)
	}

}
