package workload

import (
	"fmt"

	"bufsim/internal/sim"
	"bufsim/internal/tcp"
	"bufsim/internal/topology"
	"bufsim/internal/units"
)

// SessionConfig describes a Harpoon-style traffic source (Sommers &
// Barford, the generator behind the paper's §5.2 lab experiment): a fixed
// population of sessions, each looping "transfer a heavy-tailed file,
// think for an exponential pause, repeat". The number of *active* flows
// fluctuates around an equilibrium set by the transfer and think times —
// exactly how the lab's "n flows" were produced, as opposed to the ns-2
// experiments' permanently-backlogged senders.
type SessionConfig struct {
	Dumbbell *topology.Dumbbell
	RNG      *sim.RNG

	// Sessions is the population size. Each session binds to a station
	// round-robin.
	Sessions int

	// Sizes is the file-size distribution in segments.
	Sizes SizeDist

	// MeanThink is the average pause between a session's transfers.
	MeanThink units.Duration

	// TCP is the per-transfer template; TotalSegments is set per file.
	TCP tcp.Config
}

// Sessions is a running Harpoon-like source.
type Sessions struct {
	cfg   SessionConfig
	sched *sim.Scheduler

	running bool
	active  int

	// Transfers counts completed file transfers; Records keeps one entry
	// per transfer for flow-size and completion accounting.
	Transfers int64
	Records   []*FlowRecord
}

// Sessions event opcodes (see sim.Actor).
const (
	opSessionTransfer int32 = iota // arg: *topology.Station
	opSessionRemove                // arg: *topology.Flow
)

// OnEvent implements sim.Actor: session recycling runs through the
// kernel's typed-event path, so a large session population schedules no
// per-event closures.
func (g *Sessions) OnEvent(op int32, arg any) {
	switch op {
	case opSessionTransfer:
		g.transfer(arg.(*topology.Station))
	case opSessionRemove:
		g.cfg.Dumbbell.RemoveFlow(arg.(*topology.Flow))
	}
}

// NewSessions returns a stopped source; call Start.
func NewSessions(cfg SessionConfig) *Sessions {
	if cfg.Dumbbell == nil || cfg.RNG == nil || cfg.Sizes == nil {
		panic("workload: SessionConfig requires Dumbbell, RNG and Sizes")
	}
	if cfg.Sessions <= 0 {
		panic(fmt.Sprintf("workload: Sessions = %d", cfg.Sessions))
	}
	if cfg.MeanThink <= 0 {
		cfg.MeanThink = units.Second
	}
	return &Sessions{cfg: cfg, sched: cfg.Dumbbell.Config().Sched}
}

// Start launches every session, desynchronized by an initial random think
// pause.
func (g *Sessions) Start() {
	if g.running {
		panic("workload: Sessions started twice")
	}
	g.running = true
	for i := 0; i < g.cfg.Sessions; i++ {
		station := g.cfg.Dumbbell.Station(i % g.cfg.Dumbbell.NumStations())
		delay := units.DurationFromSeconds(g.cfg.RNG.Exp(g.cfg.MeanThink.Seconds()))
		// Through the station's view: transfers are station-shard work,
		// so under sharding they fire inside the station's window.
		station.Sched().PostAfter(delay, g, opSessionTransfer, station)
	}
}

// Stop lets in-flight transfers finish but schedules no more.
func (g *Sessions) Stop() { g.running = false }

// Active returns the number of transfers currently in flight — the
// equilibrium version of the paper's "number of concurrent flows".
func (g *Sessions) Active() int { return g.active }

func (g *Sessions) transfer(station *topology.Station) {
	if !g.running {
		return
	}
	d := g.cfg.Dumbbell
	spec := g.cfg.TCP
	spec.TotalSegments = g.cfg.Sizes.Sample(g.cfg.RNG)
	f := d.AddFlow(station, spec)
	// The station view's clock is correct in every context this can fire
	// in: a sharded transfer fires inside the station's window, where the
	// base scheduler's clock still reads the window start.
	rec := &FlowRecord{Size: spec.TotalSegments, Start: station.Sched().Now(), Completed: units.Never}
	g.Records = append(g.Records, rec)
	g.active++

	f.Receiver.OnComplete = func(now units.Time) {
		rec.Completed = now
		g.active--
		g.Transfers++
		// Give the final ACK time to drain, then recycle the session
		// after its think pause. Both posts go through the station's
		// view (see ShortFlows.launch).
		station.Sched().PostAfter(f.Station.RTT, g, opSessionRemove, f)
		think := units.DurationFromSeconds(g.cfg.RNG.Exp(g.cfg.MeanThink.Seconds()))
		station.Sched().PostAfter(think, g, opSessionTransfer, station)
	}
	f.Sender.Start()
}
