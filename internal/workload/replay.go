package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"bufsim/internal/sim"
	"bufsim/internal/tcp"
	"bufsim/internal/topology"
	"bufsim/internal/units"
)

// FlowSpec is one flow of a recorded trace: when it starts and how many
// segments it carries. Start is an offset from wherever the replay
// begins, not an absolute instant — Replay anchors it to the simulated
// time of its call.
type FlowSpec struct {
	Start units.Duration
	Size  int64 // segments
}

// ParseTrace reads a flow trace in the two-column CSV form
//
//	start_seconds,size_segments
//
// (comments starting with '#' and blank lines are skipped; a header line
// is tolerated). Rows must be ordered by start time: a trace is a
// timeline, and an out-of-order row means a corrupted or mis-merged
// input, so ParseTrace reports it. It shares ReadFlows's CSV semantics
// exactly — earlier revisions silently re-sorted out-of-order rows, which
// hid exactly the corrupted inputs the ordering check exists to catch.
//
// Deprecated: use ReadFlows, which additionally accepts JSON flow
// records.
func ParseTrace(r io.Reader) ([]FlowSpec, error) {
	return parseTraceCSV(r, true)
}

// parseTraceCSV scans the two-column CSV trace form. With strict set,
// rows whose start time precedes the previous row's are an error — a
// recorded trace is a timeline, and silently reordering it hides
// corrupted or mis-merged inputs.
func parseTraceCSV(r io.Reader, strict bool) ([]FlowSpec, error) {
	var specs []FlowSpec
	sc := bufio.NewScanner(r)
	line := 0
	sawRow := false
	prevStart := -1.0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("workload: trace line %d: want 2 fields, got %d", line, len(parts))
		}
		start, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			if !sawRow {
				continue // a header row like "start_seconds,size_segments"
			}
			return nil, fmt.Errorf("workload: trace line %d: bad start: %v", line, err)
		}
		sawRow = true
		size, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad size: %v", line, err)
		}
		if start < 0 || math.IsNaN(start) || math.IsInf(start, 0) || size <= 0 {
			return nil, fmt.Errorf("workload: trace line %d: start %v / size %d out of range", line, start, size)
		}
		if strict && start < prevStart {
			return nil, fmt.Errorf("workload: trace line %d: start %vs precedes previous row (%vs); flow records must be ordered by start time", line, start, prevStart)
		}
		prevStart = start
		specs = append(specs, FlowSpec{
			Start: units.DurationFromSeconds(start),
			Size:  size,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return specs, nil
}

// replayRun is the actor driving one Replay call: a typed event per flow
// start and per flow teardown, instead of a scheduled closure per flow.
type replayRun struct {
	d        *topology.Dumbbell
	sched    *sim.Scheduler
	template tcp.Config

	records []*FlowRecord
	started int64
	active  int
	stopped bool
}

// replayFlow is the opReplayStart argument: which station to bind, how
// much to send, and where to record the outcome.
type replayFlow struct {
	size int64
	st   *topology.Station
	rec  *FlowRecord
}

// Replay event opcodes (see sim.Actor).
const (
	opReplayStart  int32 = iota // arg: *replayFlow
	opReplayRemove              // arg: *topology.Flow
)

// OnEvent implements sim.Actor.
func (r *replayRun) OnEvent(op int32, arg any) {
	switch op {
	case opReplayStart:
		if r.stopped {
			return
		}
		rf := arg.(*replayFlow)
		cfg := r.template
		cfg.TotalSegments = rf.size
		f := r.d.AddFlow(rf.st, cfg)
		rf.rec.Start = r.sched.Now()
		r.started++
		r.active++
		f.Receiver.OnComplete = func(now units.Time) {
			rf.rec.Completed = now
			r.active--
			// Via the station's view: completion fires in the station's
			// shard (see ShortFlows.launch).
			f.Station.Sched().PostAfter(f.Station.RTT, r, opReplayRemove, f)
		}
		f.Sender.Start()
	case opReplayRemove:
		r.d.RemoveFlow(arg.(*topology.Flow))
	}
}

// Replay schedules every flow of a trace across the dumbbell's stations
// (round-robin) and returns the records, which fill in as flows complete.
// The trace's start offsets are anchored at the current simulated time.
func Replay(d *topology.Dumbbell, specs []FlowSpec, template tcp.Config) []*FlowRecord {
	return startReplay(d, specs, template).records
}

// startReplay is Replay with access to the driving actor, for the
// Source adapter's Stop and live counters.
func startReplay(d *topology.Dumbbell, specs []FlowSpec, template tcp.Config) *replayRun {
	sched := d.Config().Sched
	base := sched.Now()
	run := &replayRun{d: d, sched: sched, template: template}
	run.records = make([]*FlowRecord, len(specs))
	for i, spec := range specs {
		rec := &FlowRecord{Size: spec.Size, Completed: units.Never}
		run.records[i] = rec
		rf := &replayFlow{size: spec.Size, st: d.Station(i % d.NumStations()), rec: rec}
		sched.PostAt(base.Add(spec.Start), run, opReplayStart, rf)
	}
	return run
}
