package workload

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"bufsim/internal/tcp"
	"bufsim/internal/topology"
	"bufsim/internal/units"
)

// FlowSpec is one flow of a recorded trace: when it starts and how many
// segments it carries.
type FlowSpec struct {
	Start units.Time
	Size  int64 // segments
}

// ParseTrace reads a flow trace in the two-column CSV form
//
//	start_seconds,size_segments
//
// (comments starting with '#' and blank lines are skipped; a header line
// is tolerated). Rows may be in any order; the result is sorted by start
// time. This is the bridge for replaying real flow-level traces — e.g.
// a NetFlow export reduced to arrival time and transfer size — through
// the simulator instead of synthetic Poisson arrivals.
func ParseTrace(r io.Reader) ([]FlowSpec, error) {
	var specs []FlowSpec
	sc := bufio.NewScanner(r)
	line := 0
	sawRow := false
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("workload: trace line %d: want 2 fields, got %d", line, len(parts))
		}
		start, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			if !sawRow {
				continue // a header row like "start_seconds,size_segments"
			}
			return nil, fmt.Errorf("workload: trace line %d: bad start: %v", line, err)
		}
		sawRow = true
		size, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad size: %v", line, err)
		}
		if start < 0 || size <= 0 {
			return nil, fmt.Errorf("workload: trace line %d: start %v / size %d out of range", line, start, size)
		}
		specs = append(specs, FlowSpec{
			Start: units.Time(units.DurationFromSeconds(start)),
			Size:  size,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].Start < specs[j].Start })
	return specs, nil
}

// Replay schedules every flow of a trace across the dumbbell's stations
// (round-robin) and returns the records, which fill in as flows complete.
// The trace's start times are relative to the current simulated time.
func Replay(d *topology.Dumbbell, specs []FlowSpec, template tcp.Config) []*FlowRecord {
	sched := d.Config().Sched
	base := sched.Now()
	records := make([]*FlowRecord, len(specs))
	for i, spec := range specs {
		i, spec := i, spec
		rec := &FlowRecord{Size: spec.Size, Completed: units.Never}
		records[i] = rec
		st := d.Station(i % d.NumStations())
		sched.At(base+spec.Start, func() {
			cfg := template
			cfg.TotalSegments = spec.Size
			f := d.AddFlow(st, cfg)
			rec.Start = sched.Now()
			f.Receiver.OnComplete = func(now units.Time) {
				rec.Completed = now
				sched.After(f.Station.RTT, func() { d.RemoveFlow(f) })
			}
			f.Sender.Start()
		})
	}
	return records
}
