package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"bufsim/internal/units"
)

// jsonFlowRecord is one element of the JSON trace form: a start offset
// (either a duration string like "1.5s" or a bare number of seconds)
// and a size in segments.
type jsonFlowRecord struct {
	Start json.RawMessage `json:"start"`
	Size  int64           `json:"size"`
}

// ReadFlows reads a recorded flow trace in either supported encoding,
// sniffing the format from the first non-space byte:
//
//   - JSON — an array of {"start": "1.5s", "size": 30} records, where
//     "start" is a duration string in the package's notation or a bare
//     number of seconds;
//   - CSV — the legacy two-column start_seconds,size_segments form
//     accepted by ParseTrace ('#' comments and a header line tolerated).
//
// In both formats records must be ordered by start time: a trace is a
// timeline, and an out-of-order row means a corrupted or mis-merged
// input, so ReadFlows reports it instead of silently resorting the way
// ParseTrace did.
func ReadFlows(r io.Reader) ([]FlowSpec, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if first := firstByte(data); first == '[' || first == '{' {
		return readFlowsJSON(data)
	}
	return parseTraceCSV(bytes.NewReader(data), true)
}

// firstByte returns the first non-whitespace byte, or 0 if none.
func firstByte(data []byte) byte {
	if t := bytes.TrimLeft(data, " \t\r\n"); len(t) > 0 {
		return t[0]
	}
	return 0
}

func readFlowsJSON(data []byte) ([]FlowSpec, error) {
	var raw []jsonFlowRecord
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("workload: JSON trace: %v", err)
	}
	specs := make([]FlowSpec, 0, len(raw))
	prev := units.Duration(-1)
	for i, rec := range raw {
		start, err := parseJSONStart(rec.Start)
		if err != nil {
			return nil, fmt.Errorf("workload: JSON trace record %d: %v", i, err)
		}
		if start < 0 {
			return nil, fmt.Errorf("workload: JSON trace record %d: negative start %s", i, start)
		}
		if rec.Size <= 0 {
			return nil, fmt.Errorf("workload: JSON trace record %d: size %d out of range", i, rec.Size)
		}
		if start < prev {
			return nil, fmt.Errorf("workload: JSON trace record %d: start %s precedes previous record (%s); flow records must be ordered by start time", i, start, prev)
		}
		prev = start
		specs = append(specs, FlowSpec{Start: start, Size: rec.Size})
	}
	return specs, nil
}

// parseJSONStart accepts "100ms"-style duration strings and bare
// numbers of seconds.
func parseJSONStart(raw json.RawMessage) (units.Duration, error) {
	if len(raw) == 0 {
		return 0, fmt.Errorf(`missing "start"`)
	}
	var s string
	if err := json.Unmarshal(raw, &s); err == nil {
		return units.ParseDuration(s)
	}
	secs, err := strconv.ParseFloat(string(bytes.TrimSpace(raw)), 64)
	if err != nil {
		return 0, fmt.Errorf(`"start" must be a duration string or a number of seconds, got %s`, raw)
	}
	return units.DurationFromSeconds(secs), nil
}
