// Package node provides the two kinds of network elements the topologies
// are wired from: Routers (output-queued, statically routed) and Hosts
// (endpoints that demultiplex packets to protocol agents by flow).
package node

import (
	"fmt"

	"bufsim/internal/packet"
)

// Router forwards packets toward their destination over per-destination
// next hops. It is output-queued: the only buffering is in each output
// link's queue, which is the router-buffer B the paper sizes. Forwarding
// itself is instantaneous (the paper's experiments never stress the
// switching fabric; its GSR showed "no input queueing"). A next hop is
// usually a *link.Link, but locally attached hosts can be wired directly.
type Router struct {
	id     packet.NodeID
	name   string
	routes map[packet.NodeID]packet.Handler
}

// NewRouter returns an empty router.
func NewRouter(id packet.NodeID, name string) *Router {
	return &Router{id: id, name: name, routes: make(map[packet.NodeID]packet.Handler)}
}

// ID returns the router's node ID.
func (r *Router) ID() packet.NodeID { return r.id }

// AddRoute directs traffic for dst to the next hop. Adding a duplicate
// route panics: topologies are static and a silent overwrite hides wiring
// bugs.
func (r *Router) AddRoute(dst packet.NodeID, next packet.Handler) {
	if _, ok := r.routes[dst]; ok {
		panic(fmt.Sprintf("node: router %s already has a route for %d", r.name, dst))
	}
	r.routes[dst] = next
}

// Handle implements packet.Handler by forwarding to the route for the
// packet's destination. An unroutable packet panics — topologies are
// closed worlds and a miss means mis-wiring, not a runtime condition.
func (r *Router) Handle(p *packet.Packet) {
	next, ok := r.routes[p.Dst]
	if !ok {
		panic(fmt.Sprintf("node: router %s has no route for %v", r.name, p))
	}
	next.Handle(p)
}

// Host is an endpoint. Each flow terminating at the host registers an
// agent; incoming packets demultiplex by flow ID.
type Host struct {
	id     packet.NodeID
	name   string
	agents map[packet.FlowID]packet.Handler
}

// NewHost returns an empty host.
func NewHost(id packet.NodeID, name string) *Host {
	return &Host{id: id, name: name, agents: make(map[packet.FlowID]packet.Handler)}
}

// ID returns the host's node ID.
func (h *Host) ID() packet.NodeID { return h.id }

// Attach registers an agent to receive packets for flow f.
func (h *Host) Attach(f packet.FlowID, agent packet.Handler) {
	if _, ok := h.agents[f]; ok {
		panic(fmt.Sprintf("node: host %s already has an agent for flow %d", h.name, f))
	}
	h.agents[f] = agent
}

// Detach removes a finished flow's agent so long-running workloads (the
// Poisson short-flow generators) do not accumulate state. Packets still in
// flight for a detached flow are dropped silently.
func (h *Host) Detach(f packet.FlowID) {
	delete(h.agents, f)
}

// Handle implements packet.Handler.
func (h *Host) Handle(p *packet.Packet) {
	if a, ok := h.agents[p.Flow]; ok {
		a.Handle(p)
	}
	// Packets for detached (finished) flows fall on the floor, like a
	// host RST-ing a closed port.
}
