package node

import (
	"testing"

	"bufsim/internal/packet"
)

type sink struct{ got []*packet.Packet }

func (s *sink) Handle(p *packet.Packet) { s.got = append(s.got, p) }

func TestRouterForwardsByDestination(t *testing.T) {
	r := NewRouter(1, "r1")
	a, b := &sink{}, &sink{}
	r.AddRoute(10, a)
	r.AddRoute(11, b)
	r.Handle(&packet.Packet{Dst: 10})
	r.Handle(&packet.Packet{Dst: 11})
	r.Handle(&packet.Packet{Dst: 10})
	if len(a.got) != 2 || len(b.got) != 1 {
		t.Errorf("routed %d/%d, want 2/1", len(a.got), len(b.got))
	}
}

func TestRouterDuplicateRoutePanics(t *testing.T) {
	r := NewRouter(1, "r1")
	r.AddRoute(10, &sink{})
	defer func() {
		if recover() == nil {
			t.Error("duplicate route did not panic")
		}
	}()
	r.AddRoute(10, &sink{})
}

func TestRouterUnroutablePanics(t *testing.T) {
	r := NewRouter(1, "r1")
	defer func() {
		if recover() == nil {
			t.Error("unroutable packet did not panic")
		}
	}()
	r.Handle(&packet.Packet{Dst: 99})
}

func TestHostDemuxByFlow(t *testing.T) {
	h := NewHost(5, "h")
	f1, f2 := &sink{}, &sink{}
	h.Attach(1, f1)
	h.Attach(2, f2)
	h.Handle(&packet.Packet{Flow: 1})
	h.Handle(&packet.Packet{Flow: 2})
	h.Handle(&packet.Packet{Flow: 1})
	if len(f1.got) != 2 || len(f2.got) != 1 {
		t.Errorf("demuxed %d/%d, want 2/1", len(f1.got), len(f2.got))
	}
	if h.ID() != 5 {
		t.Errorf("ID = %d", h.ID())
	}
}

func TestHostDetachDropsSilently(t *testing.T) {
	h := NewHost(5, "h")
	f := &sink{}
	h.Attach(1, f)
	h.Detach(1)
	h.Handle(&packet.Packet{Flow: 1}) // must not panic
	if len(f.got) != 0 {
		t.Error("detached agent still received packets")
	}
	// Re-attach after detach is allowed (flow IDs are unique in practice,
	// but the host should not care).
	h.Attach(1, f)
}

func TestHostDuplicateAttachPanics(t *testing.T) {
	h := NewHost(5, "h")
	h.Attach(1, &sink{})
	defer func() {
		if recover() == nil {
			t.Error("duplicate attach did not panic")
		}
	}()
	h.Attach(1, &sink{})
}
