package queue

import (
	"bufsim/internal/metrics"
	"bufsim/internal/units"
)

// sojournBuckets spans 10 µs to ~84 s in doubling steps — wide enough for
// any buffer the experiments size, in milliseconds.
var sojournBuckets = metrics.ExpBuckets(0.01, 2, 24)

// Instrument registers q's telemetry into reg under name (e.g.
// "queue.bottleneck"): the cumulative acceptance/drop counters every
// discipline maintains, occupancy, a per-packet sojourn-time histogram
// (milliseconds), and discipline-specific extras — peak occupancy for
// drop-tail, ECN marks and the average-queue estimate for RED, control-law
// drops for CoDel. Counters are published by a snapshot-time collector;
// the only hot-path addition is the sojourn observation at dequeue, which
// is disabled (nil histogram) unless Instrument is called. A nil registry
// is a no-op.
func Instrument(reg *metrics.Registry, name string, q Queue) {
	if reg == nil || q == nil {
		return
	}
	soj := reg.Histogram(name+".sojourn_ms", sojournBuckets)
	enq := reg.Counter(name + ".enqueued_packets")
	deq := reg.Counter(name + ".dequeued_packets")
	drops := reg.Counter(name + ".dropped_packets")
	dropBytes := reg.Counter(name + ".dropped_bytes")
	occ := reg.Gauge(name + ".occupancy_packets")
	occBytes := reg.Gauge(name + ".occupancy_bytes")

	// Look through an audit wrapper so the discipline-specific telemetry
	// below still reaches the concrete type; the collectors keep reading
	// through q (the wrapper forwards Stats/Len/Bytes unchanged).
	inner := q
	if w, ok := inner.(*Audited); ok {
		inner = w.Unwrap()
	}
	var extra func()
	switch t := inner.(type) {
	case *DropTail:
		t.sojourn = soj
		occMax := reg.Gauge(name + ".occupancy_max_packets")
		extra = func() { occMax.Set(float64(t.MaxOccupancy())) }
	case *RED:
		t.sojourn = soj
		marks := reg.Counter(name + ".ecn_marked_packets")
		avg := reg.Gauge(name + ".red_avg_queue_packets")
		extra = func() {
			marks.Set(t.Marked)
			avg.Set(t.AvgQueue())
		}
	case *CoDel:
		t.sojourn = soj
		ctrl := reg.Counter(name + ".codel_sojourn_drops")
		extra = func() { ctrl.Set(t.SojournDrops) }
	}

	reg.OnCollect(func() {
		st := q.Stats()
		enq.Set(st.EnqueuedPackets)
		deq.Set(st.DequeuedPackets)
		drops.Set(st.DroppedPackets)
		dropBytes.Set(int64(st.DroppedBytes))
		occ.Set(float64(q.Len()))
		occBytes.Set(float64(q.Bytes()))
		if extra != nil {
			extra()
		}
	})
}

// observeSojourn records a dequeued packet's queueing delay. h may be nil
// (metrics disabled), making this a single nil check on the hot path.
func observeSojourn(h *metrics.Histogram, queued units.Time, now units.Time) {
	if h != nil {
		h.Observe(now.Sub(queued).Milliseconds())
	}
}
