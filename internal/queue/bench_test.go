package queue

import (
	"testing"

	"bufsim/internal/packet"
	"bufsim/internal/units"
)

// Microbenchmarks for the per-packet hot path: every simulated packet
// passes Enqueue+Dequeue once per hop, so these costs bound the whole
// simulator's throughput.

func BenchmarkDropTailEnqueueDequeue(b *testing.B) {
	q := NewDropTail(PacketLimit(1024))
	pkts := make([]*packet.Packet, 64)
	for i := range pkts {
		pkts[i] = &packet.Packet{Seq: int64(i), Size: 1000}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enqueue(pkts[i%len(pkts)], units.Time(i))
		q.Dequeue(units.Time(i))
	}
}

func BenchmarkREDEnqueueDequeue(b *testing.B) {
	rng := func() float64 { return 0.42 }
	q := NewRED(DefaultRED(1024, units.Microsecond, rng))
	pkts := make([]*packet.Packet, 64)
	for i := range pkts {
		pkts[i] = &packet.Packet{Seq: int64(i), Size: 1000}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enqueue(pkts[i%len(pkts)], units.Time(i))
		q.Dequeue(units.Time(i))
	}
}

func BenchmarkCoDelEnqueueDequeue(b *testing.B) {
	q := NewCoDel(CoDelConfig{Limit: PacketLimit(1024)})
	pkts := make([]*packet.Packet, 64)
	for i := range pkts {
		pkts[i] = &packet.Packet{Seq: int64(i), Size: 1000}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enqueue(pkts[i%len(pkts)], units.Time(i))
		q.Dequeue(units.Time(i) + units.Time(units.Millisecond))
	}
}
