package queue

import (
	"testing"

	"bufsim/internal/units"
)

func ms(n int64) units.Time { return units.Time(n) * units.Time(units.Millisecond) }

func TestCoDelPassesLightTraffic(t *testing.T) {
	// Sojourn always below target: CoDel must behave like a plain FIFO.
	q := NewCoDel(CoDelConfig{Limit: PacketLimit(100)})
	for i := int64(0); i < 200; i++ {
		if !q.Enqueue(mkpkt(i, 1000), ms(i)) {
			t.Fatalf("light enqueue %d rejected", i)
		}
		p := q.Dequeue(ms(i) + units.Time(units.Millisecond)) // 1 ms sojourn
		if p == nil || p.Seq != i {
			t.Fatalf("dequeue %d: %v", i, p)
		}
	}
	if q.SojournDrops != 0 {
		t.Errorf("SojournDrops = %d under light load", q.SojournDrops)
	}
}

func TestCoDelDropsPersistentQueue(t *testing.T) {
	// Build a standing queue whose sojourn stays far above target for
	// much longer than one interval: CoDel must start dropping.
	q := NewCoDel(CoDelConfig{Limit: PacketLimit(10000)})
	for i := int64(0); i < 2000; i++ {
		q.Enqueue(mkpkt(i, 1000), ms(i/10)) // 10 packets per ms: queue grows
	}
	// Drain slowly starting at t=500ms: every packet has a huge sojourn.
	var delivered, got int
	for i := int64(0); i < 1900; i++ {
		if p := q.Dequeue(ms(500 + i)); p != nil {
			delivered++
		}
		got++
	}
	if q.SojournDrops == 0 {
		t.Fatal("CoDel never dropped despite persistent overload")
	}
	if delivered == 0 {
		t.Fatal("CoDel starved the link completely")
	}
	// The drop rate ramps: with a persistent bad queue, drops should be
	// a visible fraction but not everything.
	frac := float64(q.SojournDrops) / float64(q.SojournDrops+int64(delivered))
	if frac < 0.01 || frac > 0.9 {
		t.Errorf("drop fraction = %v, implausible", frac)
	}
}

func TestCoDelRecoversWhenQueueClears(t *testing.T) {
	q := NewCoDel(CoDelConfig{Limit: PacketLimit(10000)})
	// Phase 1: overload to trigger dropping.
	for i := int64(0); i < 1000; i++ {
		q.Enqueue(mkpkt(i, 1000), 0)
	}
	for i := int64(0); i < 900; i++ {
		q.Dequeue(ms(200 + i))
	}
	if q.SojournDrops == 0 {
		t.Fatal("no drops during overload phase")
	}
	// Drain fully; the leftover packets are ancient, so the control law
	// keeps dropping through the drain (that is correct CoDel behaviour).
	// The queue empties and the state resets.
	for q.Len() > 0 {
		q.Dequeue(ms(3000))
	}
	dropsAfterOverload := q.SojournDrops
	// Phase 2: light traffic again — no more control-law drops.
	for i := int64(0); i < 100; i++ {
		now := ms(4000 + i)
		q.Enqueue(mkpkt(i, 1000), now)
		if p := q.Dequeue(now + units.Time(units.Millisecond)); p == nil {
			t.Fatalf("light packet %d dropped after recovery", i)
		}
	}
	if q.SojournDrops != dropsAfterOverload {
		t.Errorf("control law kept dropping after recovery: %d -> %d",
			dropsAfterOverload, q.SojournDrops)
	}
}

func TestCoDelPhysicalLimit(t *testing.T) {
	q := NewCoDel(CoDelConfig{Limit: PacketLimit(5)})
	accepted := 0
	for i := int64(0); i < 10; i++ {
		if q.Enqueue(mkpkt(i, 1000), 0) {
			accepted++
		}
	}
	if accepted != 5 {
		t.Errorf("accepted %d, want 5", accepted)
	}
	if q.SojournDrops != 0 {
		t.Error("tail drops counted as sojourn drops")
	}
	if q.Stats().DroppedPackets != 5 {
		t.Errorf("DroppedPackets = %d", q.Stats().DroppedPackets)
	}
}

func TestCoDelMaxPacketSmallSegments(t *testing.T) {
	// Regression: the "fewer than one MTU queued" suspension compared the
	// backlog against a hardcoded 1500 bytes instead of the configured
	// MaxPacket. With sub-MTU segments (here 100 B) a standing queue of
	// ten packets never reached 1500 B, so the control law was permanently
	// suspended and CoDel degenerated into a plain FIFO.
	q := NewCoDel(CoDelConfig{Limit: PacketLimit(100), MaxPacket: 100})
	for i := int64(0); i < 10; i++ {
		q.Enqueue(mkpkt(i, 100), 0)
	}
	// One-in one-out at 1 packet/ms keeps the backlog at ten packets
	// (1000 B) and every sojourn near 10 ms — persistently above the 5 ms
	// target for many intervals.
	for i := int64(0); i < 1000; i++ {
		q.Enqueue(mkpkt(10+i, 100), ms(i))
		q.Dequeue(ms(i))
	}
	if q.SojournDrops == 0 {
		t.Fatal("persistent 10ms standing queue of 100B packets never dropped; MaxPacket not honoured")
	}
}

func TestCoDelMaxPacketJumboSuspension(t *testing.T) {
	// The converse direction: with a 9000 B MTU configured, a backlog of
	// four 2000 B packets (8000 B, above the old hardcoded 1500 B but
	// below one jumbo frame) must keep the control law suspended even
	// though sojourns sit above target.
	q := NewCoDel(CoDelConfig{Limit: PacketLimit(100), MaxPacket: 9000})
	for i := int64(0); i < 4; i++ {
		q.Enqueue(mkpkt(i, 2000), 0)
	}
	for i := int64(0); i < 1000; i++ {
		now := ms(2 * i)
		q.Enqueue(mkpkt(4+i, 2000), now)
		q.Dequeue(now) // backlog after pop: 4 pkts = 8000 B < MaxPacket
	}
	if q.SojournDrops != 0 {
		t.Fatalf("control law dropped %d packets with less than one MTU queued", q.SojournDrops)
	}
}

func TestCoDelMaxPacketDefault(t *testing.T) {
	// The default MTU is the simulator's segment size, not Ethernet's
	// 1500: the two differ here, which is exactly how the hardcoded
	// constant went wrong.
	q := NewCoDel(CoDelConfig{})
	if q.cfg.MaxPacket != units.DefaultSegment {
		t.Errorf("default MaxPacket = %v, want units.DefaultSegment (%v)", q.cfg.MaxPacket, units.DefaultSegment)
	}
}

func TestCoDelEmptyDequeue(t *testing.T) {
	q := NewCoDel(CoDelConfig{Limit: Unlimited()})
	if q.Dequeue(0) != nil {
		t.Error("empty dequeue returned a packet")
	}
	if q.Len() != 0 || q.Bytes() != 0 {
		t.Error("empty queue has size")
	}
}
