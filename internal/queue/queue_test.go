package queue

import (
	"math"
	"testing"
	"testing/quick"

	"bufsim/internal/packet"
	"bufsim/internal/units"
)

func mkpkt(seq int64, size units.ByteSize) *packet.Packet {
	return &packet.Packet{Seq: seq, Size: size}
}

func TestDropTailFIFOOrder(t *testing.T) {
	q := NewDropTail(PacketLimit(100))
	for i := int64(0); i < 10; i++ {
		if !q.Enqueue(mkpkt(i, 1000), 0) {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	for i := int64(0); i < 10; i++ {
		p := q.Dequeue(0)
		if p == nil || p.Seq != i {
			t.Fatalf("dequeue %d: got %v", i, p)
		}
	}
	if p := q.Dequeue(0); p != nil {
		t.Errorf("dequeue from empty queue returned %v", p)
	}
}

func TestDropTailPacketLimit(t *testing.T) {
	q := NewDropTail(PacketLimit(3))
	for i := int64(0); i < 3; i++ {
		if !q.Enqueue(mkpkt(i, 1000), 0) {
			t.Fatalf("enqueue %d rejected below limit", i)
		}
	}
	if q.Enqueue(mkpkt(3, 1000), 0) {
		t.Error("enqueue accepted above packet limit")
	}
	st := q.Stats()
	if st.DroppedPackets != 1 || st.EnqueuedPackets != 3 {
		t.Errorf("stats = %+v", st)
	}
	// Draining one packet makes room for exactly one more.
	q.Dequeue(0)
	if !q.Enqueue(mkpkt(4, 1000), 0) {
		t.Error("enqueue rejected after drain")
	}
	if q.Enqueue(mkpkt(5, 1000), 0) {
		t.Error("enqueue accepted when full again")
	}
}

func TestDropTailByteLimit(t *testing.T) {
	q := NewDropTail(ByteLimit(2500))
	if !q.Enqueue(mkpkt(0, 1000), 0) || !q.Enqueue(mkpkt(1, 1000), 0) {
		t.Fatal("enqueues rejected below byte limit")
	}
	if q.Enqueue(mkpkt(2, 1000), 0) {
		t.Error("enqueue accepted above byte limit")
	}
	// A smaller packet still fits.
	if !q.Enqueue(mkpkt(3, 500), 0) {
		t.Error("small packet rejected though bytes available")
	}
	if q.Bytes() != 2500 {
		t.Errorf("Bytes = %d, want 2500", q.Bytes())
	}
}

func TestDropTailUnlimited(t *testing.T) {
	q := NewDropTail(Unlimited())
	for i := int64(0); i < 10000; i++ {
		if !q.Enqueue(mkpkt(i, 1500), 0) {
			t.Fatalf("unlimited queue dropped packet %d", i)
		}
	}
	if q.Len() != 10000 {
		t.Errorf("Len = %d", q.Len())
	}
}

func TestDropTailOccupancyAccounting(t *testing.T) {
	q := NewDropTail(PacketLimit(10))
	// One packet resident for 1s, then two packets for 1s.
	q.Enqueue(mkpkt(0, 100), 0)
	q.Enqueue(mkpkt(1, 100), units.Time(units.Second))
	mean := q.MeanOccupancy(units.Time(2 * units.Second))
	if mean < 1.49 || mean > 1.51 {
		t.Errorf("MeanOccupancy = %v, want 1.5", mean)
	}
	if q.MaxOccupancy() != 2 {
		t.Errorf("MaxOccupancy = %d, want 2", q.MaxOccupancy())
	}
}

func TestDropTailEnqueueStampsTime(t *testing.T) {
	q := NewDropTail(PacketLimit(10))
	p := mkpkt(0, 100)
	q.Enqueue(p, units.Time(42))
	if p.Enqueued != 42 {
		t.Errorf("Enqueued = %v, want 42", p.Enqueued)
	}
}

func TestFIFOGrowthPreservesOrder(t *testing.T) {
	// Push/pop across multiple ring growths, checking order; exercises
	// the wraparound copy in grow().
	f := func(ops []bool) bool {
		q := NewDropTail(Unlimited())
		var next, expect int64
		for _, push := range ops {
			if push {
				q.Enqueue(mkpkt(next, 10), 0)
				next++
			} else if q.Len() > 0 {
				p := q.Dequeue(0)
				if p.Seq != expect {
					return false
				}
				expect++
			}
		}
		for q.Len() > 0 {
			p := q.Dequeue(0)
			if p.Seq != expect {
				return false
			}
			expect++
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQueueInvariantLenBytes(t *testing.T) {
	// Property: Len and Bytes always agree with the multiset of resident
	// packets under any workload.
	f := func(sizes []uint8) bool {
		q := NewDropTail(PacketLimit(32))
		resident := 0
		var bytes units.ByteSize
		for i, s := range sizes {
			size := units.ByteSize(s) + 40
			if i%3 == 2 {
				if p := q.Dequeue(0); p != nil {
					resident--
					bytes -= p.Size
				}
				continue
			}
			if q.Enqueue(mkpkt(int64(i), size), 0) {
				resident++
				bytes += size
			}
		}
		return q.Len() == resident && q.Bytes() == bytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDropRate(t *testing.T) {
	var s Stats
	if s.DropRate() != 0 {
		t.Error("empty stats drop rate should be 0")
	}
	s.EnqueuedPackets = 90
	s.DroppedPackets = 10
	if got := s.DropRate(); got != 0.1 {
		t.Errorf("DropRate = %v, want 0.1", got)
	}
}

// --- RED ---

func redRand(seq ...float64) func() float64 {
	i := 0
	return func() float64 {
		v := seq[i%len(seq)]
		i++
		return v
	}
}

func TestREDBelowMinThreshNeverDrops(t *testing.T) {
	cfg := DefaultRED(100, units.Millisecond, redRand(0.0))
	q := NewRED(cfg)
	// Keep the queue shallow: alternate enqueue/dequeue.
	for i := int64(0); i < 1000; i++ {
		if !q.Enqueue(mkpkt(i, 1000), units.Time(i)*units.Time(units.Millisecond)) {
			t.Fatalf("RED dropped below MinThresh at %d (avg=%v)", i, q.AvgQueue())
		}
		q.Dequeue(units.Time(i) * units.Time(units.Millisecond))
	}
}

func TestREDDropsProbabilisticallyBetweenThresholds(t *testing.T) {
	cfg := REDConfig{
		Limit:          PacketLimit(1000),
		MinThresh:      5,
		MaxThresh:      15,
		MaxP:           0.5,
		Wq:             1.0, // avg tracks the instantaneous queue exactly
		MeanPacketTime: units.Millisecond,
		Rand:           redRand(0.9999), // never triggers a probabilistic drop...
	}
	q := NewRED(cfg)
	for i := int64(0); i < 10; i++ {
		if !q.Enqueue(mkpkt(i, 100), 0) {
			t.Fatalf("unexpected drop at %d", i)
		}
	}
	// avg is now ~10, between thresholds. With Rand always ~1, drops only
	// happen when pa >= 1 (forced); with low Rand, every packet drops.
	q2 := NewRED(REDConfig{
		Limit: PacketLimit(1000), MinThresh: 5, MaxThresh: 15, MaxP: 0.5,
		Wq: 1.0, MeanPacketTime: units.Millisecond, Rand: redRand(0.0),
	})
	for i := int64(0); i < 6; i++ {
		q2.Enqueue(mkpkt(i, 100), 0)
	}
	// avg == 5 is not > MinThresh; the 7th packet sees avg 5.? > 5 (it
	// counts current occupancy 6) and must early-drop with Rand()==0.
	if q2.Enqueue(mkpkt(7, 100), 0) {
		t.Errorf("RED did not early-drop between thresholds (avg=%v)", q2.AvgQueue())
	}
}

func TestREDAboveMaxThreshAlwaysDrops(t *testing.T) {
	cfg := REDConfig{
		Limit: PacketLimit(1000), MinThresh: 2, MaxThresh: 4, MaxP: 0.1,
		Wq: 1.0, MeanPacketTime: units.Millisecond, Rand: redRand(0.9999),
	}
	q := NewRED(cfg)
	accepted := 0
	for i := int64(0); i < 100; i++ {
		if q.Enqueue(mkpkt(i, 100), 0) {
			accepted++
		}
	}
	// Once the queue holds >= MaxThresh packets, everything drops.
	if q.Len() > 6 {
		t.Errorf("RED queue grew to %d despite MaxThresh=4", q.Len())
	}
	if st := q.Stats(); st.DroppedPackets == 0 {
		t.Error("no drops recorded")
	}
}

func TestREDHardLimit(t *testing.T) {
	// Even with thresholds that never early-drop, the physical buffer cap
	// must hold.
	cfg := REDConfig{
		Limit: PacketLimit(5), MinThresh: 1000, MaxThresh: 2000, MaxP: 0.1,
		Wq: 0.002, MeanPacketTime: units.Millisecond, Rand: redRand(0.9999),
	}
	q := NewRED(cfg)
	for i := int64(0); i < 10; i++ {
		q.Enqueue(mkpkt(i, 100), 0)
	}
	if q.Len() != 5 {
		t.Errorf("Len = %d, want 5 (hard limit)", q.Len())
	}
}

func TestREDIdleDecay(t *testing.T) {
	cfg := REDConfig{
		Limit: PacketLimit(100), MinThresh: 5, MaxThresh: 50, MaxP: 0.1,
		Wq: 0.5, MeanPacketTime: units.Millisecond, Rand: redRand(0.9999),
	}
	q := NewRED(cfg)
	for i := int64(0); i < 20; i++ {
		q.Enqueue(mkpkt(i, 100), 0)
	}
	avgBefore := q.AvgQueue()
	for q.Len() > 0 {
		q.Dequeue(0)
	}
	// A long idle period decays the average toward zero.
	q.Enqueue(mkpkt(100, 100), units.Time(units.Second))
	if q.AvgQueue() >= avgBefore/2 {
		t.Errorf("avg did not decay across idle: before=%v after=%v", avgBefore, q.AvgQueue())
	}
}

func TestREDIdleStateWithoutAging(t *testing.T) {
	// Regression: with MeanPacketTime == 0 (idle aging unconfigured) the
	// idle flag was only cleared inside the aging branch, so once the
	// queue drained it stayed flagged idle forever with a stale idleSince.
	cfg := REDConfig{
		Limit: PacketLimit(100), MinThresh: 5, MaxThresh: 50, MaxP: 0.1,
		Wq: 0.5, Rand: redRand(0.9999),
	}
	q := NewRED(cfg)
	q.Enqueue(mkpkt(0, 100), 0)
	if q.idle {
		t.Fatal("idle flag still set after enqueue with aging disabled")
	}
	q.Dequeue(ms(1))
	if !q.idle {
		t.Fatal("drained queue must be flagged idle")
	}
	// Build up an average, drain, and come back much later: with aging
	// off the average must follow the plain EWMA — the idle gap and the
	// stale flag must contribute nothing.
	for i := int64(1); i <= 20; i++ {
		q.Enqueue(mkpkt(i, 100), ms(2))
	}
	avgBefore := q.AvgQueue()
	for q.Len() > 0 {
		q.Dequeue(ms(3))
	}
	q.Enqueue(mkpkt(100, 100), ms(60_000))
	want := (1 - cfg.Wq) * avgBefore // one EWMA step toward the empty queue
	if got := q.AvgQueue(); math.Abs(got-want) > 1e-12 {
		t.Errorf("avg after idle gap = %v, want plain EWMA %v (MeanPacketTime==0 must not age)", got, want)
	}
	if q.idle {
		t.Error("idle flag set while the queue is non-empty")
	}
}

func TestDropTailResetOccupancyEpoch(t *testing.T) {
	// Ten packets resident for the first second (the warmup fill), then
	// the epoch moves: the mean over the new window must not see the
	// transient, which would otherwise bias it toward the fill-up.
	q := NewDropTail(PacketLimit(100))
	for i := int64(0); i < 10; i++ {
		q.Enqueue(mkpkt(i, 100), 0)
	}
	sec := units.Time(units.Second)
	if m := q.MeanOccupancy(sec); m < 9.99 || m > 10.01 {
		t.Fatalf("MeanOccupancy over warmup = %v, want 10", m)
	}
	q.ResetOccupancy(sec)
	if q.MaxOccupancy() != 10 {
		t.Errorf("peak after reset = %d, want the current occupancy 10", q.MaxOccupancy())
	}
	for i := 0; i < 10; i++ {
		q.Dequeue(sec)
	}
	// Empty throughout (1s, 2s]: the epoch-based mean is 0; integrating
	// from t=0 would have reported (10*1 + 0*1)/2 = 5.
	if m := q.MeanOccupancy(2 * sec); m != 0 {
		t.Errorf("MeanOccupancy after reset = %v, want 0", m)
	}
}

func TestREDPanicsWithoutRand(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRED without Rand did not panic")
		}
	}()
	NewRED(REDConfig{Wq: 0.1})
}

func TestREDMarkECN(t *testing.T) {
	cfg := REDConfig{
		Limit: PacketLimit(1000), MinThresh: 2, MaxThresh: 4, MaxP: 0.1,
		Wq: 1.0, MeanPacketTime: units.Millisecond, Rand: redRand(0.0),
		MarkECN: true,
	}
	q := NewRED(cfg)
	// ECN-capable packets above MaxThresh get marked, not dropped.
	for i := int64(0); i < 10; i++ {
		p := mkpkt(i, 100)
		p.Flags |= packet.FlagECT
		if !q.Enqueue(p, 0) {
			t.Fatalf("ECT packet %d dropped despite MarkECN", i)
		}
	}
	if q.Marked == 0 {
		t.Fatal("no packets marked")
	}
	marked := 0
	for q.Len() > 0 {
		if q.Dequeue(0).Flags&packet.FlagCE != 0 {
			marked++
		}
	}
	if int64(marked) != q.Marked {
		t.Errorf("marked-in-queue %d != Marked counter %d", marked, q.Marked)
	}
	// Non-ECT packets still drop.
	q2 := NewRED(cfg)
	dropped := false
	for i := int64(0); i < 10; i++ {
		if !q2.Enqueue(mkpkt(i, 100), 0) {
			dropped = true
		}
	}
	if !dropped {
		t.Error("non-ECT packets never dropped under MarkECN")
	}
	// The physical limit still tail-drops even ECT packets.
	q3 := NewRED(REDConfig{
		Limit: PacketLimit(3), MinThresh: 100, MaxThresh: 200, MaxP: 0.1,
		Wq: 0.002, MeanPacketTime: units.Millisecond, Rand: redRand(0.9999),
		MarkECN: true,
	})
	drops := 0
	for i := int64(0); i < 6; i++ {
		p := mkpkt(i, 100)
		p.Flags |= packet.FlagECT
		if !q3.Enqueue(p, 0) {
			drops++
		}
	}
	if drops != 3 {
		t.Errorf("physical-limit drops = %d, want 3", drops)
	}
}

func TestREDMarkThenTailDropAccounting(t *testing.T) {
	// Regression: an ECT packet whose early-drop decision was converted to
	// a CE mark can still be forced-tail-dropped at the physical limit. The
	// mark must not survive that drop — previously the packet left Enqueue
	// with CE set and Marked incremented despite never entering the queue.
	q := NewRED(REDConfig{
		Limit: PacketLimit(3), MinThresh: 0.5, MaxThresh: 1.5, MaxP: 1.0,
		Wq: 1.0, MeanPacketTime: units.Millisecond, Rand: redRand(0.0),
		MarkECN: true,
	})
	// Fill to the physical limit with ECT packets; with Wq=1 the average
	// tracks the instantaneous length, so every admission past the first is
	// an early-drop-turned-mark.
	for i := int64(0); i < 3; i++ {
		p := mkpkt(i, 100)
		p.Flags |= packet.FlagECT
		if !q.Enqueue(p, 0) {
			t.Fatalf("ECT packet %d dropped while filling", i)
		}
	}
	markedBefore := q.Marked
	if markedBefore == 0 {
		t.Fatal("setup failed: no packets were CE-marked during the fill")
	}
	// The queue is physically full: this ECT packet is early-"dropped"
	// (avg >= MaxThresh), eligible for marking, then tail-dropped.
	p := mkpkt(99, 100)
	p.Flags |= packet.FlagECT
	if q.Enqueue(p, 0) {
		t.Fatal("packet admitted past the physical limit")
	}
	if p.Flags&packet.FlagCE != 0 {
		t.Error("tail-dropped packet left Enqueue with CE set")
	}
	if q.Marked != markedBefore {
		t.Errorf("Marked advanced %d -> %d on a dropped packet", markedBefore, q.Marked)
	}
	// Conservation: the Marked counter equals the CE packets actually queued.
	marked := int64(0)
	for q.Len() > 0 {
		if q.Dequeue(0).Flags&packet.FlagCE != 0 {
			marked++
		}
	}
	if marked != q.Marked {
		t.Errorf("CE packets in queue %d != Marked counter %d", marked, q.Marked)
	}
}

func TestREDFIFOOrder(t *testing.T) {
	cfg := DefaultRED(100, units.Millisecond, redRand(0.9999))
	q := NewRED(cfg)
	for i := int64(0); i < 5; i++ {
		q.Enqueue(mkpkt(i, 100), 0)
	}
	for i := int64(0); i < 5; i++ {
		p := q.Dequeue(0)
		if p == nil || p.Seq != i {
			t.Fatalf("RED broke FIFO order at %d: %v", i, p)
		}
	}
}
