// Package queue implements the router output-queue disciplines the paper
// studies: FIFO with drop-tail (the primary discipline, §5.1) and RED (the
// "we expect our results to be valid for other queueing disciplines"
// claim). Queues are where the buffer-sizing question lives: the buffer
// limit handed to a queue is the B the paper sizes.
package queue

import (
	"bufsim/internal/metrics"
	"bufsim/internal/packet"
	"bufsim/internal/units"
)

// Queue is an output-port packet queue. Enqueue either accepts the packet
// or drops it (returning false); the caller owns the clock, so queues are
// told the current time rather than holding a scheduler reference.
type Queue interface {
	// Enqueue offers p to the queue at time now. It returns false if the
	// packet was dropped.
	Enqueue(p *packet.Packet, now units.Time) bool
	// Dequeue removes and returns the head packet, or nil if empty.
	Dequeue(now units.Time) *packet.Packet
	// Len returns the number of queued packets.
	Len() int
	// Bytes returns the total bytes queued.
	Bytes() units.ByteSize
	// Stats returns cumulative acceptance/drop counters.
	Stats() Stats
}

// Stats are cumulative counters every discipline maintains.
type Stats struct {
	EnqueuedPackets int64
	DroppedPackets  int64
	DequeuedPackets int64
	EnqueuedBytes   units.ByteSize
	DroppedBytes    units.ByteSize
	DequeuedBytes   units.ByteSize
}

// DropRate returns the fraction of offered packets that were dropped.
func (s Stats) DropRate() float64 {
	offered := s.EnqueuedPackets + s.DroppedPackets
	if offered == 0 {
		return 0
	}
	return float64(s.DroppedPackets) / float64(offered)
}

// fifo is the shared packet FIFO under both disciplines: a ring buffer
// that grows on demand.
type fifo struct {
	buf   []*packet.Packet
	head  int
	count int
	bytes units.ByteSize
}

func (f *fifo) push(p *packet.Packet) {
	if f.count == len(f.buf) {
		f.grow()
	}
	f.buf[(f.head+f.count)%len(f.buf)] = p
	f.count++
	f.bytes += p.Size
}

func (f *fifo) pop() *packet.Packet {
	if f.count == 0 {
		return nil
	}
	p := f.buf[f.head]
	f.buf[f.head] = nil
	f.head = (f.head + 1) % len(f.buf)
	f.count--
	f.bytes -= p.Size
	return p
}

func (f *fifo) grow() {
	n := len(f.buf) * 2
	if n == 0 {
		n = 64
	}
	nb := make([]*packet.Packet, n)
	for i := 0; i < f.count; i++ {
		nb[i] = f.buf[(f.head+i)%len(f.buf)]
	}
	f.buf = nb
	f.head = 0
}

// Limit expresses a buffer size either in packets or in bytes (router
// vendors quote both; the paper's tables use packets).
type Limit struct {
	Packets int            // 0 means unlimited in packets
	Bytes   units.ByteSize // 0 means unlimited in bytes
}

// PacketLimit returns a Limit of n packets.
func PacketLimit(n int) Limit { return Limit{Packets: n} }

// ByteLimit returns a Limit of b bytes.
func ByteLimit(b units.ByteSize) Limit { return Limit{Bytes: b} }

// Unlimited returns a Limit that never drops (the paper's
// "infinite buffer" baseline for Fig. 8).
func Unlimited() Limit { return Limit{} }

// admits reports whether a queue currently holding (pkts, bytes) can accept
// another packet of size s under the limit.
func (l Limit) admits(pkts int, bytes units.ByteSize, s units.ByteSize) bool {
	if l.Packets > 0 && pkts+1 > l.Packets {
		return false
	}
	if l.Bytes > 0 && bytes+s > l.Bytes {
		return false
	}
	return true
}

// DropTail is the classic FIFO queue with tail drop. It also maintains the
// time-weighted occupancy statistics the experiments sample (mean queue
// length, peak occupancy), because queueing delay is one of the paper's
// headline motivations for small buffers.
type DropTail struct {
	limit Limit
	q     fifo
	stats Stats

	// Time-weighted occupancy accounting, integrated since epoch (zero
	// until ResetOccupancy moves it, e.g. to the end of a warmup window).
	epoch      units.Time
	lastChange units.Time
	areaPkts   float64 // integral of Len() dt, in packet-seconds
	maxLen     int

	// sojourn, when non-nil (see Instrument), records each dequeued
	// packet's queueing delay.
	sojourn *metrics.Histogram
}

// NewDropTail returns a drop-tail queue with the given buffer limit.
func NewDropTail(limit Limit) *DropTail {
	return &DropTail{limit: limit}
}

// Enqueue implements Queue.
func (d *DropTail) Enqueue(p *packet.Packet, now units.Time) bool {
	if !d.limit.admits(d.q.count, d.q.bytes, p.Size) {
		d.stats.DroppedPackets++
		if !mutateSkipDroppedBytes {
			d.stats.DroppedBytes += p.Size
		}
		return false
	}
	d.account(now)
	p.Enqueued = now
	d.q.push(p)
	if d.q.count > d.maxLen {
		d.maxLen = d.q.count
	}
	d.stats.EnqueuedPackets++
	d.stats.EnqueuedBytes += p.Size
	return true
}

// Dequeue implements Queue.
func (d *DropTail) Dequeue(now units.Time) *packet.Packet {
	d.account(now)
	p := d.q.pop()
	if p != nil {
		d.stats.DequeuedPackets++
		d.stats.DequeuedBytes += p.Size
		observeSojourn(d.sojourn, p.Enqueued, now)
	}
	return p
}

func (d *DropTail) account(now units.Time) {
	dt := now.Sub(d.lastChange).Seconds()
	if dt > 0 {
		d.areaPkts += dt * float64(d.q.count)
		d.lastChange = now
	}
}

// Len implements Queue.
func (d *DropTail) Len() int { return d.q.count }

// Bytes implements Queue.
func (d *DropTail) Bytes() units.ByteSize { return d.q.bytes }

// Stats implements Queue.
func (d *DropTail) Stats() Stats { return d.stats }

// MeanOccupancy returns the time-averaged queue length in packets over
// [epoch, now], where epoch is zero unless ResetOccupancy moved it.
func (d *DropTail) MeanOccupancy(now units.Time) float64 {
	d.account(now)
	t := now.Sub(d.epoch).Seconds()
	if t <= 0 {
		return 0
	}
	return d.areaPkts / t
}

// ResetOccupancy restarts the occupancy measurement at now: the
// time-weighted integral and the peak restart from the queue's current
// state, and subsequent MeanOccupancy calls average over [now, ...] only.
// Experiments call it at the end of their warmup window so the reported
// mean queue is not biased by the fill-up transient.
func (d *DropTail) ResetOccupancy(now units.Time) {
	d.account(now)
	d.epoch = now
	d.lastChange = now
	d.areaPkts = 0
	d.maxLen = d.q.count
}

// MaxOccupancy returns the peak queue length observed, in packets.
func (d *DropTail) MaxOccupancy() int { return d.maxLen }

// Limit returns the configured buffer limit.
func (d *DropTail) Limit() Limit { return d.limit }
