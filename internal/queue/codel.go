package queue

import (
	"math"

	"bufsim/internal/metrics"
	"bufsim/internal/packet"
	"bufsim/internal/units"
)

// CoDelConfig parameterizes Controlled Delay AQM (Nichols & Jacobson,
// 2012). CoDel postdates the paper, but it attacks the same problem from
// the delay side: instead of sizing the buffer, it bounds the *sojourn
// time* packets experience, dropping at an increasing rate while the
// minimum sojourn over an interval stays above target. Including it lets
// the buffer-sizing experiments ask the modern question: does a
// delay-managed queue make the sqrt(n) capacity question moot?
type CoDelConfig struct {
	Limit Limit // hard physical capacity (tail-drop beyond)

	// Target is the acceptable standing sojourn time (default 5 ms).
	Target units.Duration
	// Interval is the sliding window over which the minimum sojourn must
	// dip below Target (default 100 ms).
	Interval units.Duration

	// MaxPacket is the MTU used for the "fewer than one MTU queued" test
	// that suspends dropping when the queue is nearly empty (default
	// units.DefaultSegment, the simulator's segment size).
	MaxPacket units.ByteSize
}

func (c CoDelConfig) withDefaults() CoDelConfig {
	if c.Target == 0 {
		c.Target = 5 * units.Millisecond
	}
	if c.Interval == 0 {
		c.Interval = 100 * units.Millisecond
	}
	if c.MaxPacket == 0 {
		c.MaxPacket = units.DefaultSegment
	}
	return c
}

// CoDel implements the CoDel AQM: drops happen at dequeue, driven by
// packet sojourn times, at a rate that increases with the square root of
// the drop count while the queue stays bad.
type CoDel struct {
	cfg   CoDelConfig
	q     fifo
	stats Stats

	// firstAbove is when the sojourn first exceeded Target with no dip
	// since; zero means "currently below target".
	firstAbove units.Time
	dropping   bool
	dropNext   units.Time
	count      int

	// SojournDrops counts packets dropped by the control law (as opposed
	// to tail drops at the physical limit).
	SojournDrops int64

	// sojourn, when non-nil (see Instrument), records each delivered
	// packet's queueing delay.
	sojourn *metrics.Histogram
}

// NewCoDel returns a CoDel queue.
func NewCoDel(cfg CoDelConfig) *CoDel {
	return &CoDel{cfg: cfg.withDefaults()}
}

// Enqueue implements Queue: admission is only bounded by the physical
// limit; the control law acts at dequeue.
func (c *CoDel) Enqueue(p *packet.Packet, now units.Time) bool {
	if !c.cfg.Limit.admits(c.q.count, c.q.bytes, p.Size) {
		c.stats.DroppedPackets++
		c.stats.DroppedBytes += p.Size
		return false
	}
	p.Enqueued = now
	c.q.push(p)
	c.stats.EnqueuedPackets++
	c.stats.EnqueuedBytes += p.Size
	return true
}

// controlLaw returns the next drop time after t for the current count.
func (c *CoDel) controlLaw(t units.Time) units.Time {
	return t.Add(units.Duration(float64(c.cfg.Interval) / math.Sqrt(float64(c.count))))
}

// doDequeue pops one packet and reports whether its sojourn was above
// target (maintaining firstAbove).
func (c *CoDel) doDequeue(now units.Time) (*packet.Packet, bool) {
	p := c.q.pop()
	if p == nil {
		c.firstAbove = 0
		return nil, false
	}
	sojourn := now.Sub(p.Enqueued)
	if sojourn < c.cfg.Target || c.q.bytes < c.cfg.MaxPacket {
		// Below target (or nearly empty): reset the above-target clock.
		c.firstAbove = 0
		return p, false
	}
	if c.firstAbove == 0 {
		c.firstAbove = now.Add(c.cfg.Interval)
		return p, false
	}
	return p, now >= c.firstAbove
}

// Dequeue implements Queue with the CoDel state machine.
func (c *CoDel) Dequeue(now units.Time) *packet.Packet {
	p, okToDrop := c.doDequeue(now)
	if p == nil {
		c.dropping = false
		return nil
	}
	if c.dropping {
		if !okToDrop {
			c.dropping = false
		} else {
			for now >= c.dropNext && c.dropping {
				c.drop(p)
				c.count++
				p, okToDrop = c.doDequeue(now)
				if p == nil {
					c.dropping = false
					return nil
				}
				if !okToDrop {
					c.dropping = false
				} else {
					c.dropNext = c.controlLaw(c.dropNext)
				}
			}
		}
	} else if okToDrop {
		// Enter dropping state.
		c.drop(p)
		c.count++
		p, _ = c.doDequeue(now)
		c.dropping = true
		// Start the next drop soon if we were dropping recently (keeps
		// the rate ramping instead of restarting), else one interval out.
		if c.count > 2 && now.Sub(c.dropNext) < 8*c.cfg.Interval {
			c.count -= 2
		} else {
			c.count = 1
		}
		c.dropNext = c.controlLaw(now)
	}
	if p != nil {
		c.stats.DequeuedPackets++
		c.stats.DequeuedBytes += p.Size
		observeSojourn(c.sojourn, p.Enqueued, now)
	}
	return p
}

func (c *CoDel) drop(p *packet.Packet) {
	c.stats.DroppedPackets++
	c.stats.DroppedBytes += p.Size
	c.SojournDrops++
}

// Len implements Queue.
func (c *CoDel) Len() int { return c.q.count }

// Bytes implements Queue.
func (c *CoDel) Bytes() units.ByteSize { return c.q.bytes }

// Stats implements Queue.
func (c *CoDel) Stats() Stats { return c.stats }
