package queue

import (
	"math"

	"bufsim/internal/metrics"
	"bufsim/internal/packet"
	"bufsim/internal/units"
)

// REDConfig parameterizes Random Early Detection (Floyd & Jacobson 1993),
// the paper's reference for an alternative discipline under which the
// sqrt(n) result is still expected to hold.
type REDConfig struct {
	Limit Limit // hard buffer limit (tail-drop beyond this)

	MinThresh float64 // avg queue (packets) below which no packet drops
	MaxThresh float64 // avg queue above which every packet drops
	MaxP      float64 // drop probability at MaxThresh
	Wq        float64 // EWMA weight for the average queue estimate

	// MeanPacketTime is the transmission time of an average packet on
	// the outgoing link; RED uses it to age the average across idle
	// periods, per the original paper.
	MeanPacketTime units.Duration

	// Rand supplies uniform variates in [0,1); it must be deterministic
	// for reproducible runs.
	Rand func() float64

	// MarkECN makes RED mark ECN-capable packets (set CE) instead of
	// early-dropping them, per RFC 3168. Packets without ECT, and
	// forced tail drops at the physical limit, are still dropped.
	MarkECN bool
}

// DefaultRED returns the conventional "gentle-ish" configuration scaled to
// a buffer of limitPkts packets: min = limit/4 (at least 5 packets),
// max = 3*limit/4, maxP = 0.1, wq = 0.002.
func DefaultRED(limitPkts int, meanPktTime units.Duration, rand func() float64) REDConfig {
	minTh := math.Max(float64(limitPkts)/4, 5)
	maxTh := math.Max(3*float64(limitPkts)/4, minTh+1)
	return REDConfig{
		Limit:          PacketLimit(limitPkts),
		MinThresh:      minTh,
		MaxThresh:      maxTh,
		MaxP:           0.1,
		Wq:             0.002,
		MeanPacketTime: meanPktTime,
		Rand:           rand,
	}
}

// RED implements the Random Early Detection AQM discipline.
type RED struct {
	cfg   REDConfig
	q     fifo
	stats Stats

	avg       float64 // EWMA of the queue length in packets
	count     int     // packets since the last early drop
	idleSince units.Time
	idle      bool

	// Marked counts packets CE-marked instead of dropped (MarkECN).
	Marked int64

	// sojourn, when non-nil (see Instrument), records each dequeued
	// packet's queueing delay.
	sojourn *metrics.Histogram
}

// NewRED returns a RED queue. The config's Rand must be non-nil.
func NewRED(cfg REDConfig) *RED {
	if cfg.Rand == nil {
		panic("queue: RED requires a random source")
	}
	if cfg.Wq <= 0 || cfg.Wq > 1 {
		panic("queue: RED Wq must be in (0,1]")
	}
	return &RED{cfg: cfg, count: -1, idle: true}
}

// AvgQueue returns RED's current average-queue estimate in packets.
func (r *RED) AvgQueue() float64 { return r.avg }

// Enqueue implements Queue.
func (r *RED) Enqueue(p *packet.Packet, now units.Time) bool {
	// Age the average across an idle period: the queue was empty, so the
	// average decays as if m small packets had departed. The idle flag is
	// cleared whether or not aging is configured (MeanPacketTime > 0) —
	// leaving it set would make a later Dequeue's idleSince stamp stale.
	if r.idle {
		if r.cfg.MeanPacketTime > 0 {
			m := float64(now.Sub(r.idleSince)) / float64(r.cfg.MeanPacketTime)
			if m > 0 {
				r.avg *= math.Pow(1-r.cfg.Wq, m)
			}
		}
		r.idle = false
	}
	r.avg = (1-r.cfg.Wq)*r.avg + r.cfg.Wq*float64(r.q.count)

	drop := false
	switch {
	case r.avg >= r.cfg.MaxThresh:
		drop = true
		r.count = 0
	case r.avg > r.cfg.MinThresh:
		r.count++
		pb := r.cfg.MaxP * (r.avg - r.cfg.MinThresh) / (r.cfg.MaxThresh - r.cfg.MinThresh)
		// Spread drops uniformly between early drops (Floyd's pa).
		pa := pb / math.Max(1-float64(r.count)*pb, 1e-12)
		if pa >= 1 || r.cfg.Rand() < pa {
			drop = true
			r.count = 0
		}
	default:
		r.count = -1
	}
	// An early "drop" decision becomes a CE mark for ECN-capable packets —
	// but the mark is only committed after the packet is admitted. A marked
	// packet can still be forced-tail-dropped at the limit check below, and
	// committing early would leave CE set (and Marked incremented) on a
	// packet that never entered the queue.
	mark := false
	if drop && r.cfg.MarkECN && p.Flags&packet.FlagECT != 0 {
		mark = true
		drop = false
	}
	if !drop && !r.cfg.Limit.admits(r.q.count, r.q.bytes, p.Size) {
		drop = true // forced tail drop: buffer physically full
		mark = false
		r.count = 0
	}
	if drop {
		r.stats.DroppedPackets++
		r.stats.DroppedBytes += p.Size
		return false
	}
	if mark {
		p.Flags |= packet.FlagCE
		r.Marked++
	}
	p.Enqueued = now
	r.q.push(p)
	r.stats.EnqueuedPackets++
	r.stats.EnqueuedBytes += p.Size
	return true
}

// Dequeue implements Queue.
func (r *RED) Dequeue(now units.Time) *packet.Packet {
	p := r.q.pop()
	if p != nil {
		r.stats.DequeuedPackets++
		r.stats.DequeuedBytes += p.Size
		observeSojourn(r.sojourn, p.Enqueued, now)
		if r.q.count == 0 {
			r.idle = true
			r.idleSince = now
		}
	}
	return p
}

// Len implements Queue.
func (r *RED) Len() int { return r.q.count }

// Bytes implements Queue.
func (r *RED) Bytes() units.ByteSize { return r.q.bytes }

// Stats implements Queue.
func (r *RED) Stats() Stats { return r.stats }
