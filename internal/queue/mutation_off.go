//go:build !auditmutation

package queue

// mutateSkipDroppedBytes deliberately breaks DropTail's dropped-bytes
// accounting when built with -tags auditmutation, so TestAuditMutation can
// prove the audit layer catches a real bookkeeping bug. In normal builds
// it is a compile-time false and the guarded increment costs nothing.
const mutateSkipDroppedBytes = false
