package queue

import (
	"math/rand"
	"testing"

	"bufsim/internal/audit"
	"bufsim/internal/packet"
	"bufsim/internal/units"
)

// disciplineTable is the shared cross-discipline test matrix: every queue
// discipline, in a few representative configurations, constructed fresh
// per run. The conservation property test and the fuzz harness both drive
// every entry through the Audited wrapper, so a new discipline gets the
// whole battery by adding one row here.
var disciplineTable = []struct {
	name string
	make func(seed int64) Queue
}{
	{"droptail-pkts", func(int64) Queue { return NewDropTail(PacketLimit(32)) }},
	{"droptail-bytes", func(int64) Queue { return NewDropTail(ByteLimit(20000)) }},
	{"droptail-unlimited", func(int64) Queue { return NewDropTail(Unlimited()) }},
	{"red", func(seed int64) Queue {
		return NewRED(DefaultRED(32, 400*units.Microsecond, rand.New(rand.NewSource(seed)).Float64))
	}},
	{"red-noaging", func(seed int64) Queue {
		return NewRED(DefaultRED(32, 0, rand.New(rand.NewSource(seed)).Float64))
	}},
	{"red-ecn", func(seed int64) Queue {
		cfg := DefaultRED(32, 400*units.Microsecond, rand.New(rand.NewSource(seed)).Float64)
		cfg.MarkECN = true
		return NewRED(cfg)
	}},
	{"codel", func(int64) Queue { return NewCoDel(CoDelConfig{Limit: PacketLimit(32)}) }},
	{"codel-smallmtu", func(int64) Queue {
		return NewCoDel(CoDelConfig{Limit: PacketLimit(32), MaxPacket: 100})
	}},
}

// driveRandom pushes a deterministic pseudo-random enqueue/dequeue
// schedule through q under the conservation auditor and fails the test on
// the first violation. Enqueues outnumber dequeues so limited queues
// exercise their drop paths, and the queue is drained at the end so the
// final cross-check runs against an empty queue.
func driveRandom(t *testing.T, name string, q Queue, seed int64, ops int) {
	t.Helper()
	aud := audit.New()
	w := NewAudited(q, aud, name)
	rng := rand.New(rand.NewSource(seed))
	now := units.Time(0)
	var seq int64
	for i := 0; i < ops; i++ {
		now = now.Add(units.Duration(rng.Intn(2000)) * units.Microsecond)
		if rng.Intn(3) < 2 {
			size := units.ByteSize(40 + rng.Intn(1460))
			p := mkpkt(seq, size)
			if name == "red-ecn" && rng.Intn(2) == 0 {
				p.Flags |= packet.FlagECT
			}
			w.Enqueue(p, now)
			seq++
		} else {
			for n := rng.Intn(4); n >= 0; n-- {
				w.Dequeue(now)
			}
		}
	}
	for w.Len() > 0 {
		w.Dequeue(now)
	}
	if err := aud.Err(); err != nil {
		t.Fatalf("%s (seed %d): %v", name, seed, err)
	}
}

func TestConservationAcrossDisciplines(t *testing.T) {
	for _, d := range disciplineTable {
		d := d
		t.Run(d.name, func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				driveRandom(t, d.name, d.make(seed), seed*977, 20000)
			}
		})
	}
}

// FuzzQueueConservation feeds an arbitrary op stream to every discipline:
// byte pairs decode to (time advance + enqueue/dequeue choice, packet
// size). Whatever the schedule, the conservation laws and FIFO order must
// hold.
func FuzzQueueConservation(f *testing.F) {
	f.Add([]byte{0x01, 0x80, 0x12, 0xff, 0x03, 0x10, 0x1f, 0x00})
	f.Add([]byte("enqueue-heavy then drain completely, with some luck"))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, d := range disciplineTable {
			aud := audit.New()
			w := NewAudited(d.make(1), aud, d.name)
			now := units.Time(0)
			var seq int64
			for i := 0; i+1 < len(data); i += 2 {
				op, b := data[i], data[i+1]
				now = now.Add(units.Duration(op&0x0f) * units.Millisecond)
				if op&0x10 != 0 {
					w.Dequeue(now)
				} else {
					p := mkpkt(seq, units.ByteSize(40+int(b)*8))
					if op&0x20 != 0 {
						p.Flags |= packet.FlagECT
					}
					w.Enqueue(p, now)
					seq++
				}
			}
			for w.Len() > 0 {
				w.Dequeue(now)
			}
			if err := aud.Err(); err != nil {
				t.Fatalf("%s: %v", d.name, err)
			}
		}
	})
}

// miscountingQueue underreports delivered bytes in its Stats — the class
// of bookkeeping bug the audit layer exists to catch.
type miscountingQueue struct{ *DropTail }

func (m miscountingQueue) Stats() Stats {
	s := m.DropTail.Stats()
	s.DequeuedBytes /= 2
	return s
}

// leakyQueue silently discards every second delivered packet: the packet
// leaves the inner queue (and its stats) but never reaches the caller.
type leakyQueue struct {
	*DropTail
	n int
}

func (l *leakyQueue) Dequeue(now units.Time) *packet.Packet {
	p := l.DropTail.Dequeue(now)
	l.n++
	if p != nil && l.n%2 == 0 {
		return nil
	}
	return p
}

// lifoQueue delivers newest-first, violating FIFO order.
type lifoQueue struct {
	stack []*packet.Packet
	stats Stats
}

func (l *lifoQueue) Enqueue(p *packet.Packet, now units.Time) bool {
	p.Enqueued = now
	l.stack = append(l.stack, p)
	l.stats.EnqueuedPackets++
	l.stats.EnqueuedBytes += p.Size
	return true
}

func (l *lifoQueue) Dequeue(now units.Time) *packet.Packet {
	if len(l.stack) == 0 {
		return nil
	}
	p := l.stack[len(l.stack)-1]
	l.stack = l.stack[:len(l.stack)-1]
	l.stats.DequeuedPackets++
	l.stats.DequeuedBytes += p.Size
	return p
}

func (l *lifoQueue) Len() int { return len(l.stack) }

func (l *lifoQueue) Bytes() units.ByteSize {
	var b units.ByteSize
	for _, p := range l.stack {
		b += p.Size
	}
	return b
}

func (l *lifoQueue) Stats() Stats { return l.stats }

// TestAuditCatchesBrokenQueues is the liveness check for the audit layer
// itself: each deliberately broken discipline must trip the named
// invariant. Without this, a silently dead auditor would make every green
// conservation test meaningless.
func TestAuditCatchesBrokenQueues(t *testing.T) {
	cases := []struct {
		name      string
		make      func() Queue
		invariant string
	}{
		{"miscounted-bytes", func() Queue { return miscountingQueue{NewDropTail(PacketLimit(16))} }, "dequeue-accounting"},
		{"leaked-packet", func() Queue { return &leakyQueue{DropTail: NewDropTail(PacketLimit(16))} }, "dequeue-accounting"},
		{"lifo-order", func() Queue { return &lifoQueue{} }, "fifo-order"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			aud := audit.New()
			w := NewAudited(tc.make(), aud, tc.name)
			for i := int64(0); i < 8; i++ {
				w.Enqueue(mkpkt(i, 1000), ms(i))
			}
			for i := int64(0); i < 8; i++ {
				w.Dequeue(ms(10 + i))
			}
			if aud.Count() == 0 {
				t.Fatalf("auditor missed a %s queue", tc.name)
			}
			found := false
			for _, v := range aud.Violations() {
				if v.Invariant == tc.invariant {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("no %q violation recorded; got %v", tc.invariant, aud.Violations())
			}
		})
	}
}

// TestAuditedTransparent pins the wrapper contract: operations pass
// through unchanged (same acceptance decisions, same packets in the same
// order) and Unwrap exposes the inner discipline.
func TestAuditedTransparent(t *testing.T) {
	aud := audit.New()
	inner := NewDropTail(PacketLimit(3))
	w := NewAudited(inner, aud, "transparent")
	if w.Unwrap() != Queue(inner) {
		t.Fatal("Unwrap did not return the inner queue")
	}
	accepted := 0
	for i := int64(0); i < 5; i++ {
		if w.Enqueue(mkpkt(i, 500), ms(i)) {
			accepted++
		}
	}
	if accepted != 3 {
		t.Errorf("accepted %d through the wrapper, want 3", accepted)
	}
	if w.Len() != 3 || w.Bytes() != 1500 {
		t.Errorf("Len/Bytes = %d/%d, want 3/1500", w.Len(), w.Bytes())
	}
	for i := int64(0); i < 3; i++ {
		p := w.Dequeue(ms(10 + i))
		if p == nil || p.Seq != i {
			t.Fatalf("dequeue %d through the wrapper: %v", i, p)
		}
	}
	if err := aud.Err(); err != nil {
		t.Fatalf("clean run reported violations: %v", err)
	}
}
