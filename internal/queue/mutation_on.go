//go:build auditmutation

package queue

// mutateSkipDroppedBytes: see mutation_off.go. Under this tag DropTail
// stops counting DroppedBytes; the audit layer must notice.
const mutateSkipDroppedBytes = true
