package queue

import (
	"bufsim/internal/audit"
	"bufsim/internal/packet"
	"bufsim/internal/units"
)

// Audited wraps a Queue with conservation-law checks. It maintains its own
// shadow counters from the operations it forwards — independent of the
// discipline's Stats — and cross-checks the two on every operation, so a
// discipline that miscounts (or leaks, duplicates, or reorders packets) is
// caught at the first operation where the books disagree. It forwards
// every call unchanged, so wrapping never perturbs a run.
type Audited struct {
	inner Queue
	aud   *audit.Auditor
	name  string

	// Shadow counters, observed at the wrapper boundary.
	offeredPkts   int64
	acceptedPkts  int64
	dequeuedPkts  int64
	offeredBytes  units.ByteSize
	acceptedBytes units.ByteSize
	dequeuedBytes units.ByteSize

	// FIFO-order check: enqueue stamps of dequeued packets must be
	// non-decreasing.
	lastEnqueued units.Time
	haveDequeued bool
}

// NewAudited wraps q so that every operation is checked against the
// conservation laws, reporting violations to aud under the given
// component name. A nil auditor yields a transparent wrapper.
func NewAudited(q Queue, aud *audit.Auditor, name string) *Audited {
	return &Audited{inner: q, aud: aud, name: "queue:" + name}
}

// Unwrap returns the wrapped Queue, so telemetry (Instrument) can reach
// the concrete discipline through the wrapper.
func (a *Audited) Unwrap() Queue { return a.inner }

// Enqueue implements Queue.
func (a *Audited) Enqueue(p *packet.Packet, now units.Time) bool {
	size := p.Size
	ok := a.inner.Enqueue(p, now)
	a.offeredPkts++
	a.offeredBytes += size
	if ok {
		a.acceptedPkts++
		a.acceptedBytes += size
	}
	a.check(now)
	return ok
}

// Dequeue implements Queue.
func (a *Audited) Dequeue(now units.Time) *packet.Packet {
	p := a.inner.Dequeue(now)
	if p != nil {
		a.dequeuedPkts++
		a.dequeuedBytes += p.Size
		if p.Enqueued > now {
			a.aud.Violationf(now, a.name, "sojourn-nonnegative",
				"dequeued packet stamped Enqueued=%v after now", p.Enqueued)
		}
		if a.haveDequeued && p.Enqueued < a.lastEnqueued {
			a.aud.Violationf(now, a.name, "fifo-order",
				"dequeued packet enqueued at %v after one enqueued at %v", p.Enqueued, a.lastEnqueued)
		}
		a.lastEnqueued = p.Enqueued
		a.haveDequeued = true
	}
	a.check(now)
	return p
}

// Len implements Queue.
func (a *Audited) Len() int { return a.inner.Len() }

// Bytes implements Queue.
func (a *Audited) Bytes() units.ByteSize { return a.inner.Bytes() }

// Stats implements Queue.
func (a *Audited) Stats() Stats { return a.inner.Stats() }

// check verifies the conservation laws relating the wrapper's shadow
// counters, the discipline's Stats, and the current queue contents.
func (a *Audited) check(now units.Time) {
	s := a.inner.Stats()
	qLen := int64(a.inner.Len())
	qBytes := a.inner.Bytes()

	// The discipline's acceptance/departure books must match what was
	// observed at the boundary.
	if s.EnqueuedPackets != a.acceptedPkts || s.EnqueuedBytes != a.acceptedBytes {
		a.aud.Violationf(now, a.name, "enqueue-accounting",
			"stats report %d pkts/%d B enqueued, observed %d pkts/%d B accepted",
			s.EnqueuedPackets, s.EnqueuedBytes, a.acceptedPkts, a.acceptedBytes)
	}
	if s.DequeuedPackets != a.dequeuedPkts || s.DequeuedBytes != a.dequeuedBytes {
		a.aud.Violationf(now, a.name, "dequeue-accounting",
			"stats report %d pkts/%d B dequeued, observed %d pkts/%d B",
			s.DequeuedPackets, s.DequeuedBytes, a.dequeuedPkts, a.dequeuedBytes)
	}

	// Drops split into rejections at the door (Enqueue returned false —
	// observed directly) and post-enqueue drops (CoDel's control law).
	// The discipline's total must cover the rejections.
	preDropPkts := a.offeredPkts - a.acceptedPkts
	preDropBytes := a.offeredBytes - a.acceptedBytes
	postDropPkts := s.DroppedPackets - preDropPkts
	postDropBytes := s.DroppedBytes - preDropBytes
	if postDropPkts < 0 || postDropBytes < 0 {
		a.aud.Violationf(now, a.name, "drop-accounting",
			"stats report %d pkts/%d B dropped, but %d pkts/%d B were rejected at enqueue",
			s.DroppedPackets, s.DroppedBytes, preDropPkts, preDropBytes)
		return // conservation below would double-report with garbage numbers
	}

	// Flow conservation: everything accepted is either delivered, dropped
	// after admission, or still queued — in packets and in bytes.
	if a.acceptedPkts != a.dequeuedPkts+postDropPkts+qLen {
		a.aud.Violationf(now, a.name, "packet-conservation",
			"accepted %d != dequeued %d + post-enqueue drops %d + queued %d",
			a.acceptedPkts, a.dequeuedPkts, postDropPkts, qLen)
	}
	if a.acceptedBytes != a.dequeuedBytes+postDropBytes+qBytes {
		a.aud.Violationf(now, a.name, "byte-conservation",
			"accepted %d B != dequeued %d B + post-enqueue drops %d B + queued %d B",
			a.acceptedBytes, a.dequeuedBytes, postDropBytes, qBytes)
	}
	if qLen == 0 && qBytes != 0 {
		a.aud.Violationf(now, a.name, "empty-queue-bytes", "Len()==0 but Bytes()==%d", qBytes)
	}
}
