//go:build auditmutation

package queue

import (
	"testing"

	"bufsim/internal/audit"
)

// TestAuditMutation is the mutation check for the audit layer: the
// auditmutation build tag seeds a real accounting bug (DropTail forgets
// to count dropped bytes — see mutation_on.go), and this test proves the
// conservation checker catches it at the first drop. Run with:
//
//	go test -tags auditmutation -run TestAuditMutation ./internal/queue/
func TestAuditMutation(t *testing.T) {
	if !mutateSkipDroppedBytes {
		t.Fatal("auditmutation build tag set but the mutation gate is off")
	}
	aud := audit.New()
	w := NewAudited(NewDropTail(PacketLimit(1)), aud, "mutated")
	w.Enqueue(mkpkt(0, 1000), 0)
	w.Enqueue(mkpkt(1, 1000), 0) // rejected; its bytes go uncounted under the mutation
	if aud.Count() == 0 {
		t.Fatal("seeded DroppedBytes bug was not caught by the conservation audit")
	}
	found := false
	for _, v := range aud.Violations() {
		if v.Invariant == "drop-accounting" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a drop-accounting violation, got %v", aud.Violations())
	}
}
