//go:build !auditmutation

package queue

import "testing"

// TestMutationGateOffByDefault guards the build-tag wiring: without the
// auditmutation tag the seeded bug must be compiled out, or every normal
// run would be measuring a deliberately broken queue.
func TestMutationGateOffByDefault(t *testing.T) {
	if mutateSkipDroppedBytes {
		t.Fatal("mutateSkipDroppedBytes is on without the auditmutation build tag")
	}
}
