// Package link models a unidirectional point-to-point link: a finite-rate
// transmitter fed by an output queue, followed by a fixed propagation
// delay. This is the "store-and-forward output-queued port" abstraction
// the paper's single-bottleneck analysis assumes.
//
// Utilization — the paper's primary metric — is measured here exactly:
// the transmitter accumulates busy time, so utilization over a window is
// busy-time divided by wall-time with no sampling error.
package link

import (
	"bufsim/internal/audit"
	"bufsim/internal/metrics"
	"bufsim/internal/packet"
	"bufsim/internal/queue"
	"bufsim/internal/sim"
	"bufsim/internal/units"
)

// Link is a unidirectional link. Create with New; a Link must not be
// copied after first use.
type Link struct {
	name  string
	sched *sim.Scheduler
	rate  units.BitRate
	delay units.Duration
	q     queue.Queue
	dst   packet.Handler

	busy      bool
	busySince units.Time
	busyTotal units.Duration

	deliveredPackets int64
	deliveredBytes   units.ByteSize

	// aud, when non-nil, receives busy-time and delivery-consistency
	// violations; expectedBusy is the exact sum of per-packet transmission
	// times, maintained only while auditing.
	aud          *audit.Auditor
	expectedBusy units.Duration

	// OnDequeue, if set, observes each packet as it begins transmission
	// together with the queueing delay it experienced. Experiments use it
	// to build queueing-delay distributions.
	OnDequeue func(p *packet.Packet, queued units.Duration)
	// OnDrop, if set, observes packets rejected by the queue.
	OnDrop func(p *packet.Packet)

	// DeliverVia, if set, routes each packet's arrival event to the shard
	// that owns the far end of the wire (see sim.Target): propagation is
	// scheduled on the returned target instead of self-posting opArrive,
	// so the arrival fires in the destination's shard. The propagation
	// delay doubles as the sharded kernel's lookahead, which is why a
	// cross-shard link must have positive delay. An invalid target falls
	// back to the self-post path. Delivery times and event order are
	// identical either way — sharded and unsharded runs are bit-identical.
	DeliverVia func(p *packet.Packet) sim.Target
}

// Link event opcodes (see sim.Actor).
const (
	// opTxDone: the last bit of the packet left the transmitter.
	opTxDone int32 = iota
	// opArrive: the packet finished propagating and reaches dst.
	opArrive
)

// OnEvent implements sim.Actor: transmit-completion and propagation
// events carry the packet as their typed payload, so the per-packet path
// through a link allocates no closures.
func (l *Link) OnEvent(op int32, arg any) {
	p := arg.(*packet.Packet)
	switch op {
	case opTxDone:
		l.finishTransmit(p)
	case opArrive:
		l.dst.Handle(p)
	}
}

// New returns a link transmitting at rate with one-way propagation delay d,
// buffered by q, delivering to dst.
func New(name string, sched *sim.Scheduler, rate units.BitRate, d units.Duration, q queue.Queue, dst packet.Handler) *Link {
	if rate <= 0 {
		panic("link: non-positive rate")
	}
	if d < 0 {
		panic("link: negative delay")
	}
	return &Link{name: name, sched: sched, rate: rate, delay: d, q: q, dst: dst}
}

// Name returns the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// Rate returns the link's transmission rate.
func (l *Link) Rate() units.BitRate { return l.rate }

// Delay returns the link's one-way propagation delay.
func (l *Link) Delay() units.Duration { return l.delay }

// Queue returns the link's output queue (for occupancy inspection).
func (l *Link) Queue() queue.Queue { return l.q }

// SetAuditor attaches an invariant checker: after every completed
// transmission the link verifies its busy-time accounting against the sum
// of per-packet transmission times and against elapsed simulated time. A
// nil auditor (the default) disables the checks.
func (l *Link) SetAuditor(a *audit.Auditor) { l.aud = a }

// Handle implements packet.Handler so links compose directly with routers
// and protocol agents.
func (l *Link) Handle(p *packet.Packet) { l.Send(p) }

// Send offers a packet to the link. If the output queue rejects it the
// packet is dropped silently (TCP discovers the loss end-to-end, exactly
// as with a real drop-tail router).
func (l *Link) Send(p *packet.Packet) {
	now := l.sched.Now()
	if !l.q.Enqueue(p, now) {
		if l.OnDrop != nil {
			l.OnDrop(p)
		}
		return
	}
	if !l.busy {
		l.startNext()
	}
}

// startNext begins transmitting the head-of-line packet. Caller guarantees
// the transmitter is idle and the queue non-empty.
func (l *Link) startNext() {
	now := l.sched.Now()
	p := l.q.Dequeue(now)
	if p == nil {
		return
	}
	if l.OnDequeue != nil {
		l.OnDequeue(p, now.Sub(p.Enqueued))
	}
	l.busy = true
	l.busySince = now
	tx := units.TransmissionTime(p.Size, l.rate)
	l.sched.PostAfter(tx, l, opTxDone, p)
}

// finishTransmit fires when the last bit of p leaves the transmitter: the
// packet enters the wire (propagation), and the next queued packet can
// start immediately.
func (l *Link) finishTransmit(p *packet.Packet) {
	now := l.sched.Now()
	l.busy = false
	l.busyTotal += now.Sub(l.busySince)
	l.deliveredPackets++
	l.deliveredBytes += p.Size
	if l.aud != nil {
		l.auditTransmit(p, now)
	}

	if l.delay == 0 {
		l.dst.Handle(p)
	} else if l.DeliverVia != nil {
		if tg := l.DeliverVia(p); tg.Valid() {
			l.sched.PostToAfter(l.delay, tg, opArrive, p)
		} else {
			l.sched.PostAfter(l.delay, l, opArrive, p)
		}
	} else {
		l.sched.PostAfter(l.delay, l, opArrive, p)
	}
	if l.q.Len() > 0 {
		l.startNext()
	}
}

// auditTransmit checks the link's accounting after a completed
// transmission. busyTotal must equal the exact sum of per-packet
// transmission times (expectedBusy, maintained here so multi-gigabyte
// delivered totals never hit the int64 overflow a single
// TransmissionTime(deliveredBytes, rate) call would), and a transmitter
// that has only existed for `now` cannot have been busy longer than that.
// A float cross-check ties delivered bytes to rate x busy time, allowing
// one nanosecond of truncation per packet.
func (l *Link) auditTransmit(p *packet.Packet, now units.Time) {
	comp := "link:" + l.name
	l.expectedBusy += units.TransmissionTime(p.Size, l.rate)
	if l.busyTotal != l.expectedBusy {
		l.aud.Violationf(now, comp, "busy-accounting",
			"busyTotal %v != sum of transmission times %v after %d packets",
			l.busyTotal, l.expectedBusy, l.deliveredPackets)
	}
	if l.busyTotal > now.Sub(units.Epoch) {
		l.aud.Violationf(now, comp, "busy-bounded",
			"busyTotal %v exceeds elapsed simulated time %v", l.busyTotal, now.Sub(units.Epoch))
	}
	// delivered bits / rate should equal busy seconds, up to 1 ns of
	// TransmissionTime truncation per delivered packet.
	idealSec := float64(l.deliveredBytes) * 8 / float64(l.rate)
	busySec := l.busyTotal.Seconds()
	slopSec := float64(l.deliveredPackets) * 1e-9
	if diff := idealSec - busySec; diff < -slopSec || diff > slopSec {
		l.aud.Violationf(now, comp, "delivery-rate",
			"delivered %d B at %v implies %.9fs busy, accounted %.9fs (slop %.9fs)",
			l.deliveredBytes, l.rate, idealSec, busySec, slopSec)
	}
}

// BusyTime returns the cumulative time the transmitter has spent sending,
// including the in-progress transmission up to now.
func (l *Link) BusyTime() units.Duration {
	t := l.busyTotal
	if l.busy {
		t += l.sched.Now().Sub(l.busySince)
	}
	return t
}

// Utilization returns the fraction of the window [from, now] the
// transmitter was busy, given the busy time previously snapshotted at
// `from` (see BusyTime). Returns 0 for an empty window.
func (l *Link) Utilization(busyAtFrom units.Duration, from units.Time) float64 {
	window := l.sched.Now().Sub(from)
	if window <= 0 {
		return 0
	}
	return float64(l.BusyTime()-busyAtFrom) / float64(window)
}

// Instrument registers the link's telemetry into reg under name: busy
// (transmitting) seconds and delivered packet/byte counts, published by a
// snapshot-time collector. The link's queue is instrumented separately via
// queue.Instrument. A nil registry is a no-op.
func (l *Link) Instrument(reg *metrics.Registry, name string) {
	if reg == nil {
		return
	}
	busy := reg.Gauge(name + ".busy_seconds")
	pkts := reg.Counter(name + ".delivered_packets")
	bytes := reg.Counter(name + ".delivered_bytes")
	reg.OnCollect(func() {
		busy.Set(l.BusyTime().Seconds())
		pkts.Set(l.deliveredPackets)
		bytes.Set(int64(l.deliveredBytes))
	})
}

// DeliveredPackets returns the count of fully transmitted packets.
func (l *Link) DeliveredPackets() int64 { return l.deliveredPackets }

// DeliveredBytes returns the bytes fully transmitted.
func (l *Link) DeliveredBytes() units.ByteSize { return l.deliveredBytes }
