package link

import (
	"testing"

	"bufsim/internal/packet"
	"bufsim/internal/queue"
	"bufsim/internal/sim"
	"bufsim/internal/units"
)

type collector struct {
	pkts  []*packet.Packet
	times []units.Time
	sched *sim.Scheduler
}

func (c *collector) Handle(p *packet.Packet) {
	c.pkts = append(c.pkts, p)
	c.times = append(c.times, c.sched.Now())
}

func newTestLink(t *testing.T, rate units.BitRate, delay units.Duration, limit int) (*sim.Scheduler, *Link, *collector) {
	t.Helper()
	s := sim.NewScheduler()
	c := &collector{sched: s}
	l := New("test", s, rate, delay, queue.NewDropTail(queue.PacketLimit(limit)), c)
	return s, l, c
}

func mkpkt(seq int64, size units.ByteSize) *packet.Packet {
	return &packet.Packet{Seq: seq, Size: size}
}

func TestSinglePacketLatency(t *testing.T) {
	// 1000 B at 10 Mb/s = 800 us serialization, plus 5 ms propagation.
	s, l, c := newTestLink(t, 10*units.Mbps, 5*units.Millisecond, 10)
	l.Send(mkpkt(0, 1000))
	s.Run(units.Time(units.Second))
	if len(c.pkts) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(c.pkts))
	}
	want := units.Time(800*units.Microsecond + 5*units.Millisecond)
	if c.times[0] != want {
		t.Errorf("delivery at %v, want %v", c.times[0], want)
	}
}

func TestBackToBackSerialization(t *testing.T) {
	// Two packets sent at t=0 are delivered one transmission time apart:
	// the wire pipelines propagation but the transmitter serializes.
	s, l, c := newTestLink(t, 10*units.Mbps, 5*units.Millisecond, 10)
	l.Send(mkpkt(0, 1000))
	l.Send(mkpkt(1, 1000))
	s.Run(units.Time(units.Second))
	if len(c.pkts) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(c.pkts))
	}
	gap := c.times[1].Sub(c.times[0])
	if gap != 800*units.Microsecond {
		t.Errorf("inter-delivery gap = %v, want 800us", gap)
	}
}

func TestDeliveryPreservesOrder(t *testing.T) {
	s, l, c := newTestLink(t, 100*units.Mbps, units.Millisecond, 100)
	for i := int64(0); i < 50; i++ {
		l.Send(mkpkt(i, 500))
	}
	s.Run(units.Time(units.Second))
	if len(c.pkts) != 50 {
		t.Fatalf("delivered %d packets, want 50", len(c.pkts))
	}
	for i, p := range c.pkts {
		if p.Seq != int64(i) {
			t.Fatalf("out of order at %d: seq %d", i, p.Seq)
		}
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	s, l, c := newTestLink(t, units.Mbps, 0, 2)
	var dropped []*packet.Packet
	l.OnDrop = func(p *packet.Packet) { dropped = append(dropped, p) }
	// First packet starts transmitting immediately (dequeued), next two
	// occupy the buffer, the rest drop.
	for i := int64(0); i < 6; i++ {
		l.Send(mkpkt(i, 1000))
	}
	s.Run(units.Time(units.Second))
	if len(c.pkts) != 3 {
		t.Fatalf("delivered %d packets, want 3", len(c.pkts))
	}
	if len(dropped) != 3 {
		t.Fatalf("dropped %d packets, want 3", len(dropped))
	}
	if dropped[0].Seq != 3 {
		t.Errorf("first drop seq %d, want 3 (tail drop)", dropped[0].Seq)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	// One 1000-B packet at 10 Mb/s in a 8 ms window: busy 800us -> 10%.
	s, l, _ := newTestLink(t, 10*units.Mbps, 0, 10)
	l.Send(mkpkt(0, 1000))
	s.Run(units.Time(8 * units.Millisecond))
	util := l.Utilization(0, 0)
	if util < 0.099 || util > 0.101 {
		t.Errorf("utilization = %v, want 0.1", util)
	}
}

func TestUtilizationFullySaturated(t *testing.T) {
	s, l, _ := newTestLink(t, 10*units.Mbps, 0, 1000)
	// 100 x 1000 B = 80 ms of serialization; run exactly that long.
	for i := int64(0); i < 100; i++ {
		l.Send(mkpkt(i, 1000))
	}
	s.Run(units.Time(80 * units.Millisecond))
	util := l.Utilization(0, 0)
	if util < 0.999 {
		t.Errorf("utilization = %v, want 1.0", util)
	}
}

func TestUtilizationWindowed(t *testing.T) {
	// Snapshot busy time mid-run and measure only the second window.
	s, l, _ := newTestLink(t, 10*units.Mbps, 0, 1000)
	l.Send(mkpkt(0, 1000)) // busy only during the first window
	s.Run(units.Time(10 * units.Millisecond))
	snap := l.BusyTime()
	from := s.Now()
	s.Run(units.Time(20 * units.Millisecond))
	if u := l.Utilization(snap, from); u != 0 {
		t.Errorf("second-window utilization = %v, want 0", u)
	}
}

func TestBusyTimeIncludesInProgress(t *testing.T) {
	s := sim.NewScheduler()
	c := &collector{sched: s}
	l := New("t", s, units.Mbps, 0, queue.NewDropTail(queue.PacketLimit(10)), c)
	l.Send(mkpkt(0, 1000)) // 8 ms serialization
	s.Run(units.Time(4 * units.Millisecond))
	if bt := l.BusyTime(); bt != 4*units.Millisecond {
		t.Errorf("BusyTime mid-transmission = %v, want 4ms", bt)
	}
}

func TestOnDequeueReportsQueueingDelay(t *testing.T) {
	s, l, _ := newTestLink(t, 10*units.Mbps, 0, 10)
	var delays []units.Duration
	l.OnDequeue = func(p *packet.Packet, d units.Duration) { delays = append(delays, d) }
	l.Send(mkpkt(0, 1000))
	l.Send(mkpkt(1, 1000))
	s.Run(units.Time(units.Second))
	if len(delays) != 2 {
		t.Fatalf("observed %d dequeues, want 2", len(delays))
	}
	if delays[0] != 0 {
		t.Errorf("head packet queueing delay = %v, want 0", delays[0])
	}
	if delays[1] != 800*units.Microsecond {
		t.Errorf("second packet queueing delay = %v, want 800us", delays[1])
	}
}

func TestDeliveredCounters(t *testing.T) {
	s, l, _ := newTestLink(t, 100*units.Mbps, 0, 100)
	for i := int64(0); i < 10; i++ {
		l.Send(mkpkt(i, 1500))
	}
	s.Run(units.Time(units.Second))
	if l.DeliveredPackets() != 10 {
		t.Errorf("DeliveredPackets = %d", l.DeliveredPackets())
	}
	if l.DeliveredBytes() != 15000 {
		t.Errorf("DeliveredBytes = %d", l.DeliveredBytes())
	}
}

func TestInvalidConstruction(t *testing.T) {
	s := sim.NewScheduler()
	q := queue.NewDropTail(queue.PacketLimit(1))
	for _, tc := range []struct {
		rate  units.BitRate
		delay units.Duration
	}{{0, 0}, {-1, 0}, {units.Mbps, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(rate=%v, delay=%v) did not panic", tc.rate, tc.delay)
				}
			}()
			New("bad", s, tc.rate, tc.delay, q, packet.HandlerFunc(func(*packet.Packet) {}))
		}()
	}
}

func TestAccessorsAndHandle(t *testing.T) {
	s, l, c := newTestLink(t, 10*units.Mbps, 2*units.Millisecond, 4)
	if l.Name() != "test" || l.Rate() != 10*units.Mbps || l.Delay() != 2*units.Millisecond {
		t.Errorf("accessors: %q %v %v", l.Name(), l.Rate(), l.Delay())
	}
	if l.Queue() == nil {
		t.Error("Queue accessor nil")
	}
	// Handle is the packet.Handler adapter for Send.
	l.Handle(mkpkt(0, 1000))
	s.Run(units.Time(units.Second))
	if len(c.pkts) != 1 {
		t.Errorf("Handle did not deliver")
	}
}

func TestUtilizationEmptyWindow(t *testing.T) {
	s, l, _ := newTestLink(t, 10*units.Mbps, 0, 4)
	s.Run(units.Time(units.Second))
	if got := l.Utilization(0, units.Time(units.Second)); got != 0 {
		t.Errorf("empty-window utilization = %v, want 0", got)
	}
	if got := l.Utilization(0, units.Time(2*units.Second)); got != 0 {
		t.Errorf("future-window utilization = %v, want 0", got)
	}
}

func TestZeroDelayDeliversSynchronously(t *testing.T) {
	s, l, c := newTestLink(t, 10*units.Mbps, 0, 10)
	l.Send(mkpkt(0, 1000))
	s.Run(units.Time(800 * units.Microsecond))
	if len(c.pkts) != 1 {
		t.Fatalf("zero-delay link did not deliver at end of serialization")
	}
}
