// Package model implements the paper's analytical results: the classical
// rule-of-thumb, the sqrt(n) rule for desynchronized long flows (§3), the
// Gaussian aggregate-window utilization bound, and the effective-bandwidth
// / M/G/1 queue model for short slow-start flows (§4).
//
// All buffer quantities are expressed in packets (fixed-size segments),
// matching the paper's tables; helpers convert from line rate and RTT.
package model

import (
	"fmt"
	"math"
	"sort"

	"bufsim/internal/stats"
	"bufsim/internal/units"
)

// RuleOfThumbPackets returns the classical B = RTT x C buffer in packets:
// the §2 result for a single long-lived flow.
func RuleOfThumbPackets(rtt units.Duration, c units.BitRate, segment units.ByteSize) int {
	return units.PacketsInFlight(c, rtt, segment)
}

// SqrtRulePackets returns the paper's B = RTT x C / sqrt(n) buffer in
// packets for n desynchronized long-lived flows (§3). n must be positive.
func SqrtRulePackets(rtt units.Duration, c units.BitRate, segment units.ByteSize, n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("model: SqrtRulePackets with n=%d", n))
	}
	bdp := float64(units.PacketsInFlight(c, rtt, segment))
	return int(math.Round(bdp / math.Sqrt(float64(n))))
}

// BufferReduction returns the fractional buffer saving of the sqrt(n) rule
// versus the rule-of-thumb: 1 - 1/sqrt(n). For the paper's 10,000-flow
// example this is 0.99 ("could reduce its buffers by 99%").
func BufferReduction(n int) float64 {
	if n <= 0 {
		panic(fmt.Sprintf("model: BufferReduction with n=%d", n))
	}
	return 1 - 1/math.Sqrt(float64(n))
}

// LongFlowGaussian is the §3 aggregate-window model for n desynchronized
// long-lived flows sharing a bottleneck whose bandwidth-delay product is
// BDP packets (2*Tp*C) and whose buffer is B packets.
//
// Each Reno flow's window follows a sawtooth between Wmax/2 and Wmax, so
// it is approximately uniform with standard deviation W̄/sqrt(27). The sum
// of n independent such windows is approximately Normal (central limit
// theorem; the paper's Fig. 6). In equilibrium the total outstanding data
// equals BDP plus the queue, so we take
//
//	mean  μ = BDP + B/2          (queue centred mid-buffer)
//	sdev  σ = (BDP + B) / (sqrt(27) * sqrt(n))
//
// The link goes idle when W < BDP; the throughput lost is the expected
// shortfall E[(BDP − W)+] spread over the pipe.
//
// This is our re-derivation of the technical report's bound; it matches
// the published model's shape (near-zero loss at B = BDP/sqrt(n), improving
// with n) though not its exact decimals — see DESIGN.md.
type LongFlowGaussian struct {
	N   int     // concurrent long-lived flows
	BDP float64 // bandwidth-delay product 2*Tp*C, in packets
}

// Sigma returns the model's aggregate-window standard deviation for buffer
// bufferPkts.
func (m LongFlowGaussian) Sigma(bufferPkts float64) float64 {
	if m.N <= 0 || m.BDP <= 0 {
		panic(fmt.Sprintf("model: bad LongFlowGaussian %+v", m))
	}
	return (m.BDP + bufferPkts) / (math.Sqrt(27) * math.Sqrt(float64(m.N)))
}

// Utilization returns the model's predicted link utilization with a buffer
// of bufferPkts packets, in [0,1].
func (m LongFlowGaussian) Utilization(bufferPkts float64) float64 {
	sigma := m.Sigma(bufferPkts)
	z := (bufferPkts / 2) / sigma
	// E[(BDP - W)+] for W ~ N(BDP + B/2, sigma):
	// shortfall = sigma*phi(z) - (mu-BDP)*(1-Phi(z)), with mu-BDP = B/2.
	phi := math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
	shortfall := sigma*phi - (bufferPkts/2)*(1-stats.NormalCDF(z))
	u := 1 - shortfall/m.BDP
	return math.Max(0, math.Min(1, u))
}

// BufferForUtilization returns the smallest buffer (packets) whose modeled
// utilization reaches target, by bisection. target must be in (0,1).
func (m LongFlowGaussian) BufferForUtilization(target float64) float64 {
	if target <= 0 || target >= 1 {
		panic(fmt.Sprintf("model: target utilization %v out of (0,1)", target))
	}
	if m.Utilization(0) >= target {
		return 0 // even a bufferless link meets the target under this model
	}
	lo, hi := 0.0, m.BDP*4
	if m.Utilization(hi) < target {
		return hi
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if m.Utilization(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// --- Short flows (§4) ---

// BurstMoments describes the first two moments of the slow-start burst
// size distribution X for an arriving traffic mix. The short-flow buffer
// bound depends on the mix only through these moments.
type BurstMoments struct {
	EX  float64 // E[X], mean burst size in packets
	EX2 float64 // E[X^2]
}

// SlowStartBursts returns the burst sizes (packets per RTT) a flow of
// flowLen segments emits in slow start with the given initial window and
// receive-window cap: iw, 2*iw, 4*iw, ... capped at maxWindow, with a
// final partial burst. This is the §4 "first sends two packets, then
// four, eight, sixteen" pattern.
func SlowStartBursts(flowLen int64, iw, maxWindow int) []int64 {
	if flowLen <= 0 {
		return nil
	}
	if iw <= 0 {
		iw = 2
	}
	if maxWindow <= 0 {
		maxWindow = 1 << 30
	}
	var bursts []int64
	remaining := flowLen
	b := int64(iw)
	for remaining > 0 {
		if b > int64(maxWindow) {
			b = int64(maxWindow)
		}
		if b > remaining {
			b = remaining
		}
		bursts = append(bursts, b)
		remaining -= b
		b *= 2
	}
	return bursts
}

// MomentsForFlowLength returns the burst moments for a traffic mix where
// every flow carries exactly flowLen segments.
func MomentsForFlowLength(flowLen int64, iw, maxWindow int) BurstMoments {
	return MomentsForDistribution(map[int64]float64{flowLen: 1}, iw, maxWindow)
}

// MomentsForDistribution returns the burst moments for a discrete flow
// length distribution: lengths[L] is the probability of a flow of L
// segments. Bursts from all flows are pooled, weighted by how many bursts
// each flow length produces.
func MomentsForDistribution(lengths map[int64]float64, iw, maxWindow int) BurstMoments {
	// Accumulate in sorted key order: float rounding depends on summation
	// order, and map iteration would make these moments (and everything
	// derived from them) differ between identical runs.
	keys := make([]int64, 0, len(lengths))
	for flowLen := range lengths {
		keys = append(keys, flowLen)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var wsum, sum, sum2 float64
	for _, flowLen := range keys {
		p := lengths[flowLen]
		if p <= 0 {
			continue
		}
		for _, b := range SlowStartBursts(flowLen, iw, maxWindow) {
			fb := float64(b)
			wsum += p
			sum += p * fb
			sum2 += p * fb * fb
		}
	}
	if wsum == 0 {
		return BurstMoments{}
	}
	return BurstMoments{EX: sum / wsum, EX2: sum2 / wsum}
}

// QueueTail returns the §4 effective-bandwidth bound on the queue-length
// distribution for short-flow traffic at load rho with burst moments m:
//
//	P(Q >= b) = exp(-b * 2(1-rho)/rho * E[X]/E[X^2])
//
// which upper-bounds the drop probability of a buffer of b packets.
func (m BurstMoments) QueueTail(rho float64, b float64) float64 {
	if rho <= 0 || rho >= 1 {
		panic(fmt.Sprintf("model: load %v out of (0,1)", rho))
	}
	if m.EX <= 0 || m.EX2 <= 0 {
		panic("model: burst moments not set")
	}
	return math.Exp(-b * 2 * (1 - rho) / rho * m.EX / m.EX2)
}

// MinBuffer returns the smallest buffer (packets) keeping the §4 bound on
// drop probability at or below pDrop:
//
//	B = rho/(2(1-rho)) * E[X^2]/E[X] * ln(1/pDrop)
//
// The key property the paper stresses: the result depends only on the load
// and the burst moments — not on the line rate, RTT or flow count.
func (m BurstMoments) MinBuffer(rho, pDrop float64) float64 {
	if pDrop <= 0 || pDrop >= 1 {
		panic(fmt.Sprintf("model: pDrop %v out of (0,1)", pDrop))
	}
	if rho <= 0 || rho >= 1 {
		panic(fmt.Sprintf("model: load %v out of (0,1)", rho))
	}
	return rho / (2 * (1 - rho)) * m.EX2 / m.EX * math.Log(1/pDrop)
}

// MD1QueueTail is the M/D/1 special case (X_i = 1) the paper gives for
// fully smoothed, per-packet-Poisson arrivals from slow access links:
// P(Q >= b) = exp(-b * 2(1-rho)/rho).
func MD1QueueTail(rho, b float64) float64 {
	return BurstMoments{EX: 1, EX2: 1}.QueueTail(rho, b)
}

// --- TCP steady-state relations (§5.1.1) ---

// LossForWindow returns the §5.1.1 approximation of the loss rate of a TCP
// flow with average window W: l = 0.76 / W^2 (Morris 2000).
func LossForWindow(w float64) float64 {
	if w <= 0 {
		panic(fmt.Sprintf("model: window %v must be positive", w))
	}
	return 0.76 / (w * w)
}

// WindowForLoss inverts LossForWindow.
func WindowForLoss(l float64) float64 {
	if l <= 0 {
		panic(fmt.Sprintf("model: loss %v must be positive", l))
	}
	return math.Sqrt(0.76 / l)
}

// Throughput returns TCP's R = W/RTT sending rate for a window of w
// segments of the given size.
func Throughput(w float64, segment units.ByteSize, rtt units.Duration) units.BitRate {
	if rtt <= 0 {
		panic("model: non-positive RTT")
	}
	bitsPerRTT := w * float64(segment.Bits())
	return units.BitRate(math.Round(bitsPerRTT / rtt.Seconds()))
}
