package model

import (
	"math"
	"testing"
	"testing/quick"

	"bufsim/internal/units"
)

func TestRuleOfThumbHeadlineExample(t *testing.T) {
	// The paper's abstract: a 10 Gb/s linecard with 250 ms RTT needs
	// 2.5 Gbit = 312.5 MB of buffering; with 1000-byte packets that is
	// 312,500 packets.
	got := RuleOfThumbPackets(250*units.Millisecond, 10*units.Gbps, 1000)
	if got != 312500 {
		t.Errorf("RuleOfThumbPackets = %d, want 312500", got)
	}
}

func TestSqrtRuleAbstractExample(t *testing.T) {
	// "a 10Gb/s link carrying 50,000 flows requires only 10Mbits of
	// buffering": 2.5 Gbit / sqrt(50000) = 11.18 Mbit ~ 10 Mbit.
	rot := RuleOfThumbPackets(250*units.Millisecond, 10*units.Gbps, 1000)
	small := SqrtRulePackets(250*units.Millisecond, 10*units.Gbps, 1000, 50000)
	gotMbit := float64(small) * 8000 / 1e6
	if gotMbit < 9 || gotMbit > 13 {
		t.Errorf("sqrt-rule buffer = %.1f Mbit, want ~11", gotMbit)
	}
	if rot/small < 200 {
		t.Errorf("reduction factor = %d, want > 200x", rot/small)
	}
}

func TestSqrtRuleSingleFlowEqualsRuleOfThumb(t *testing.T) {
	rtt := 100 * units.Millisecond
	if SqrtRulePackets(rtt, units.OC3, 1000, 1) != RuleOfThumbPackets(rtt, units.OC3, 1000) {
		t.Error("sqrt rule with n=1 should equal the rule of thumb")
	}
}

func TestBufferReduction(t *testing.T) {
	// "a 2.5Gb/s link carrying 10,000 flows could reduce its buffers by
	// 99%".
	if got := BufferReduction(10000); math.Abs(got-0.99) > 1e-9 {
		t.Errorf("BufferReduction(10000) = %v, want 0.99", got)
	}
	if got := BufferReduction(1); got != 0 {
		t.Errorf("BufferReduction(1) = %v, want 0", got)
	}
}

func TestSqrtRuleMonotoneInN(t *testing.T) {
	f := func(a, b uint16) bool {
		n1, n2 := int(a%5000)+1, int(b%5000)+1
		if n1 > n2 {
			n1, n2 = n2, n1
		}
		b1 := SqrtRulePackets(100*units.Millisecond, units.OC3, 1000, n1)
		b2 := SqrtRulePackets(100*units.Millisecond, units.OC3, 1000, n2)
		return b1 >= b2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGaussianUtilizationShape(t *testing.T) {
	m := LongFlowGaussian{N: 400, BDP: 1291}
	sqrtRule := m.BDP / math.Sqrt(float64(m.N)) // ~64.5 packets
	uHalf := m.Utilization(sqrtRule / 2)
	uOne := m.Utilization(sqrtRule)
	uTwo := m.Utilization(2 * sqrtRule)
	if !(uHalf < uOne && uOne <= uTwo) {
		t.Errorf("utilization not monotone: %v %v %v", uHalf, uOne, uTwo)
	}
	// The paper's qualitative claims: ~full utilization at 1x the sqrt
	// rule, and still decent (>90%) at 0.5x.
	if uOne < 0.98 {
		t.Errorf("utilization at 1x sqrt-rule = %v, want >= 0.98", uOne)
	}
	if uTwo < 0.999 {
		t.Errorf("utilization at 2x sqrt-rule = %v, want ~1", uTwo)
	}
	if uHalf < 0.9 {
		t.Errorf("utilization at 0.5x sqrt-rule = %v, want > 0.9", uHalf)
	}
	if u0 := m.Utilization(0); u0 >= uHalf {
		t.Errorf("zero buffer should be worst: %v >= %v", u0, uHalf)
	}
}

func TestGaussianUtilizationImprovesWithN(t *testing.T) {
	// With the buffer fixed in absolute packets, more flows means more
	// statistical multiplexing and higher utilization.
	buf := 64.0
	u100 := LongFlowGaussian{N: 100, BDP: 1291}.Utilization(buf)
	u400 := LongFlowGaussian{N: 400, BDP: 1291}.Utilization(buf)
	if u400 <= u100 {
		t.Errorf("utilization(n=400)=%v <= utilization(n=100)=%v", u400, u100)
	}
}

func TestBufferForUtilizationInverts(t *testing.T) {
	m := LongFlowGaussian{N: 200, BDP: 1291}
	for _, target := range []float64{0.999, 0.9995, 0.9999} {
		b := m.BufferForUtilization(target)
		u := m.Utilization(b)
		if math.Abs(u-target) > 1e-6 {
			t.Errorf("Utilization(BufferForUtilization(%v)) = %v", target, u)
		}
	}
	// A target below the model's zero-buffer floor is met with no buffer.
	if b := m.BufferForUtilization(0.5); b != 0 {
		t.Errorf("BufferForUtilization(0.5) = %v, want 0", b)
	}
}

func TestBufferForUtilizationScalesAsSqrtN(t *testing.T) {
	bdp := 1550.0
	b100 := LongFlowGaussian{N: 100, BDP: bdp}.BufferForUtilization(0.9995)
	b400 := LongFlowGaussian{N: 400, BDP: bdp}.BufferForUtilization(0.9995)
	ratio := b100 / b400
	// Quadrupling n should roughly halve the buffer (sqrt scaling); the
	// absolute-shortfall target and the (BDP+B) term skew it somewhat.
	if ratio < 1.6 || ratio > 2.9 {
		t.Errorf("buffer ratio for 4x flows = %v, want ~2", ratio)
	}
}

func TestSlowStartBursts(t *testing.T) {
	cases := []struct {
		flowLen  int64
		iw, maxW int
		want     []int64
	}{
		{14, 2, 1 << 30, []int64{2, 4, 8}},
		{10, 2, 1 << 30, []int64{2, 4, 4}},
		{1, 2, 1 << 30, []int64{1}},
		{0, 2, 1 << 30, nil},
		{62, 2, 1 << 30, []int64{2, 4, 8, 16, 32}},
		// Receive-window cap: after reaching 12, bursts stay at 12.
		{50, 2, 12, []int64{2, 4, 8, 12, 12, 12}},
		{7, 4, 1 << 30, []int64{4, 3}},
	}
	for _, c := range cases {
		got := SlowStartBursts(c.flowLen, c.iw, c.maxW)
		if len(got) != len(c.want) {
			t.Errorf("SlowStartBursts(%d,%d,%d) = %v, want %v", c.flowLen, c.iw, c.maxW, got, c.want)
			continue
		}
		var sum int64
		for i := range got {
			sum += got[i]
			if got[i] != c.want[i] {
				t.Errorf("SlowStartBursts(%d,%d,%d) = %v, want %v", c.flowLen, c.iw, c.maxW, got, c.want)
				break
			}
		}
		if c.flowLen > 0 && sum != c.flowLen {
			t.Errorf("bursts sum to %d, want %d", sum, c.flowLen)
		}
	}
}

func TestSlowStartBurstsConservation(t *testing.T) {
	f := func(l uint16, iw uint8, maxW uint8) bool {
		flowLen := int64(l%2000) + 1
		bursts := SlowStartBursts(flowLen, int(iw%8), int(maxW))
		var sum int64
		prev := int64(0)
		for i, b := range bursts {
			if b <= 0 {
				return false
			}
			sum += b
			// Bursts are non-decreasing until the final partial one.
			if i > 0 && i < len(bursts)-1 && b < prev {
				return false
			}
			prev = b
		}
		return sum == flowLen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMomentsForFlowLength(t *testing.T) {
	// Flow of 14 segments: bursts 2,4,8. E[X] = 14/3, E[X^2] = 28.
	m := MomentsForFlowLength(14, 2, 1<<30)
	if math.Abs(m.EX-14.0/3) > 1e-12 {
		t.Errorf("EX = %v, want 14/3", m.EX)
	}
	if math.Abs(m.EX2-28) > 1e-12 {
		t.Errorf("EX2 = %v, want 28", m.EX2)
	}
}

func TestMomentsForDistribution(t *testing.T) {
	// 50/50 mix of 2-segment flows (one burst of 2) and 6-segment flows
	// (bursts 2,4). Burst population: {2 w/ 0.5, 2 w/ 0.5, 4 w/ 0.5}.
	// E[X] = (2*0.5 + 2*0.5 + 4*0.5)/1.5 = 4/1.5 ~ 2.667.
	m := MomentsForDistribution(map[int64]float64{2: 0.5, 6: 0.5}, 2, 1<<30)
	if math.Abs(m.EX-8.0/3) > 1e-12 {
		t.Errorf("EX = %v, want 8/3", m.EX)
	}
	if math.Abs(m.EX2-(4*0.5+4*0.5+16*0.5)/1.5) > 1e-12 {
		t.Errorf("EX2 = %v", m.EX2)
	}
	// Degenerate cases.
	if got := MomentsForDistribution(nil, 2, 0); got.EX != 0 {
		t.Errorf("empty distribution moments = %+v", got)
	}
}

func TestQueueTailDecaysExponentially(t *testing.T) {
	m := MomentsForFlowLength(14, 2, 1<<30)
	p10 := m.QueueTail(0.8, 10)
	p20 := m.QueueTail(0.8, 20)
	p40 := m.QueueTail(0.8, 40)
	if !(p10 > p20 && p20 > p40) {
		t.Errorf("tail not decreasing: %v %v %v", p10, p20, p40)
	}
	// Exponential decay: P(20)/P(10) == P(40)/P(30) ratio structure, i.e.
	// log-linear.
	r1 := p20 / p10
	r2 := p40 / p20 / r1 // should be r1 again => p40/p20 == r1^2... check log-linearity
	if math.Abs(math.Log(p40/p20)-2*math.Log(r1))/math.Abs(math.Log(r1)) > 1e-9 {
		t.Errorf("tail not log-linear: %v", r2)
	}
	if p0 := m.QueueTail(0.8, 0); p0 != 1 {
		t.Errorf("P(Q>=0) = %v, want 1", p0)
	}
}

func TestQueueTailLoadSensitivity(t *testing.T) {
	m := MomentsForFlowLength(14, 2, 1<<30)
	if m.QueueTail(0.9, 50) <= m.QueueTail(0.5, 50) {
		t.Error("higher load should have heavier tail")
	}
}

func TestMinBufferInvertsTail(t *testing.T) {
	m := MomentsForFlowLength(30, 2, 1<<30)
	for _, p := range []float64{0.1, 0.025, 0.001} {
		b := m.MinBuffer(0.8, p)
		if got := m.QueueTail(0.8, b); math.Abs(got-p)/p > 1e-9 {
			t.Errorf("QueueTail(MinBuffer(%v)) = %v", p, got)
		}
	}
}

func TestMinBufferIndependentOfLineRate(t *testing.T) {
	// The paper's key §4 claim, restated: the bound has no line-rate or
	// RTT parameter at all — same moments and load, same buffer. This is
	// structural (the formula takes only rho and moments), so just pin
	// the numbers for two mixes.
	m := MomentsForFlowLength(62, 2, 64)
	b := m.MinBuffer(0.8, 0.025)
	// E[X] = 62/5, E[X2] = (4+16+64+256+1024)/5 = 272.8 -> B = 2*22*ln40
	want := 0.8 / (2 * 0.2) * (1364.0 / 62) * math.Log(40)
	if math.Abs(b-want) > 1e-9 {
		t.Errorf("MinBuffer = %v, want %v", b, want)
	}
}

func TestMinBufferGrowsWithLoad(t *testing.T) {
	m := MomentsForFlowLength(14, 2, 1<<30)
	if m.MinBuffer(0.9, 0.025) <= m.MinBuffer(0.7, 0.025) {
		t.Error("buffer should grow with load")
	}
}

func TestMD1QueueTail(t *testing.T) {
	// M/D/1 with X=1: P(Q>=b) = exp(-b*2(1-rho)/rho).
	got := MD1QueueTail(0.8, 10)
	want := math.Exp(-10 * 2 * 0.2 / 0.8)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("MD1QueueTail = %v, want %v", got, want)
	}
	// For equal load, batched (slow-start) arrivals need more buffer than
	// smooth Poisson arrivals.
	m := MomentsForFlowLength(62, 2, 1<<30)
	if m.QueueTail(0.8, 20) <= MD1QueueTail(0.8, 20) {
		t.Error("bursty arrivals should have a heavier tail than M/D/1")
	}
}

func TestLossWindowRoundTrip(t *testing.T) {
	for _, w := range []float64{2, 10, 64} {
		l := LossForWindow(w)
		if got := WindowForLoss(l); math.Abs(got-w) > 1e-9 {
			t.Errorf("WindowForLoss(LossForWindow(%v)) = %v", w, got)
		}
	}
	if l := LossForWindow(10); math.Abs(l-0.0076) > 1e-12 {
		t.Errorf("LossForWindow(10) = %v, want 0.0076", l)
	}
}

func TestThroughput(t *testing.T) {
	// W=10 segments of 1000 B over a 100 ms RTT: 10*8000 bits / 0.1 s =
	// 800 Kb/s.
	got := Throughput(10, 1000, 100*units.Millisecond)
	if got != 800*units.Kbps {
		t.Errorf("Throughput = %v, want 800Kbps", got)
	}
}

func TestPanicsOnInvalidInputs(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	m := MomentsForFlowLength(14, 2, 0)
	mustPanic("SqrtRulePackets n=0", func() { SqrtRulePackets(units.Second, units.Mbps, 1000, 0) })
	mustPanic("BufferReduction 0", func() { BufferReduction(0) })
	mustPanic("QueueTail rho=1", func() { m.QueueTail(1, 10) })
	mustPanic("QueueTail rho=0", func() { m.QueueTail(0, 10) })
	mustPanic("MinBuffer pDrop=0", func() { m.MinBuffer(0.8, 0) })
	mustPanic("zero moments", func() { BurstMoments{}.QueueTail(0.5, 1) })
	mustPanic("LossForWindow 0", func() { LossForWindow(0) })
	mustPanic("WindowForLoss 0", func() { WindowForLoss(0) })
	mustPanic("Throughput rtt=0", func() { Throughput(1, 1000, 0) })
	mustPanic("Gaussian n=0", func() { LongFlowGaussian{N: 0, BDP: 100}.Utilization(10) })
	mustPanic("BufferForUtilization 1", func() { LongFlowGaussian{N: 10, BDP: 100}.BufferForUtilization(1) })
}
