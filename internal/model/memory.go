package model

import (
	"fmt"

	"bufsim/internal/units"
)

// The paper's §1.3 memory-technology constants (2004 vintage, kept as the
// defaults so the paper's worked examples reproduce; all overridable via
// MemoryTech).
const (
	// SRAMChipBits is "the largest commercial SRAM chip today is
	// 36Mbits".
	SRAMChipBits = 36e6
	// DRAMChipBits is "DRAM devices are available up to 1Gbit".
	DRAMChipBits = 1e9
	// DRAMAccessTime is "DRAM has a random access time of about 50ns".
	DRAMAccessTime = 50 * units.Nanosecond
	// SRAMAccessTime is a typical 2004 SRAM random-access time.
	SRAMAccessTime = 4 * units.Nanosecond
	// MinPacket is the minimum-length packet (40 bytes) whose arrival
	// rate sets the memory-bandwidth requirement.
	MinPacket = 40 * units.Byte
	// EmbeddedDRAMBits is "commercial packet processor ASICs have been
	// built with 256Mbits of embedded DRAM" — the on-chip budget that
	// makes buffers of ~2% of the delay-bandwidth product attractive.
	EmbeddedDRAMBits = 256e6
)

// MemoryTech describes a buffer memory technology.
type MemoryTech struct {
	Name       string
	ChipBits   float64
	AccessTime units.Duration
}

// SRAM and DRAM return the paper's reference technologies.
func SRAM() MemoryTech {
	return MemoryTech{Name: "SRAM", ChipBits: SRAMChipBits, AccessTime: SRAMAccessTime}
}

// DRAM returns the paper's reference DRAM technology.
func DRAM() MemoryTech {
	return MemoryTech{Name: "DRAM", ChipBits: DRAMChipBits, AccessTime: DRAMAccessTime}
}

// ChipsNeeded returns how many devices hold a buffer of the given size.
func (t MemoryTech) ChipsNeeded(buffer units.ByteSize) int {
	if buffer <= 0 {
		return 0
	}
	bits := float64(buffer.Bits())
	n := int(bits / t.ChipBits)
	if float64(n)*t.ChipBits < bits {
		n++
	}
	return n
}

// PacketInterval returns how often a minimum-length packet can arrive and
// depart on a line of the given rate — the §1.3 "a minimum length (40
// byte) packet can arrive and depart every 8ns" for 40 Gb/s. A buffer
// memory must complete a random access in half this interval (one write
// and one read per packet time).
func PacketInterval(rate units.BitRate) units.Duration {
	return units.TransmissionTime(MinPacket, rate)
}

// KeepsUp reports whether a single device of this technology can sustain
// the per-packet access rate of a line at the given rate.
func (t MemoryTech) KeepsUp(rate units.BitRate) bool {
	return 2*t.AccessTime <= PacketInterval(rate)
}

// BufferFeasibility is the §1.3 design summary for one buffer size on one
// line rate.
type BufferFeasibility struct {
	Rate   units.BitRate
	Buffer units.ByteSize

	SRAMChips int
	DRAMChips int
	// DRAMKeepsUp is whether DRAM's 50ns random access meets the
	// per-packet deadline (it stops doing so around 1.6 Gb/s; beyond
	// that, designs need wide parallel banks or SRAM caches).
	DRAMKeepsUp bool
	// FitsOnChip is whether the buffer fits in a single packet
	// processor's embedded DRAM — the paper's end goal for the sqrt(n)
	// rule.
	FitsOnChip bool
}

// Feasibility evaluates a buffer size against the paper's memory
// technologies.
func Feasibility(rate units.BitRate, buffer units.ByteSize) BufferFeasibility {
	return BufferFeasibility{
		Rate:        rate,
		Buffer:      buffer,
		SRAMChips:   SRAM().ChipsNeeded(buffer),
		DRAMChips:   DRAM().ChipsNeeded(buffer),
		DRAMKeepsUp: DRAM().KeepsUp(rate),
		FitsOnChip:  float64(buffer.Bits()) <= EmbeddedDRAMBits,
	}
}

// String renders the feasibility verdict like the paper's §1.3 narrative.
func (f BufferFeasibility) String() string {
	verdict := "needs external memory"
	if f.FitsOnChip {
		verdict = "fits in on-chip embedded DRAM"
	}
	return fmt.Sprintf("%v buffer on a %v line: %d SRAM chips or %d DRAM chips (DRAM keeps up: %v); %s",
		f.Buffer, f.Rate, f.SRAMChips, f.DRAMChips, f.DRAMKeepsUp, verdict)
}
