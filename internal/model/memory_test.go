package model

import (
	"strings"
	"testing"

	"bufsim/internal/units"
)

func TestPaperWorkedExample40G(t *testing.T) {
	// §1.3: a 40 Gb/s linecard with 250 ms of buffering has 10 Gbits
	// (1.25 GB); "a 40Gb/s linecard would require over 300 [SRAM] chips"
	// and "If instead we try to build the linecard using DRAM, we would
	// just need 10 devices".
	buffer := units.BytesInFlight(40*units.Gbps, 250*units.Millisecond)
	if buffer != 1250000000 {
		t.Fatalf("buffer = %d bytes, want 1.25GB", buffer)
	}
	f := Feasibility(40*units.Gbps, buffer)
	// Raw capacity division gives 278 chips; the paper's "over 300"
	// includes per-chip overhead. Same order, same conclusion ("the
	// board too large, too expensive and too hot").
	if f.SRAMChips != 278 {
		t.Errorf("SRAMChips = %d, want 278 (paper: 'over 300' incl. overhead)", f.SRAMChips)
	}
	if f.DRAMChips != 10 {
		t.Errorf("DRAMChips = %d, paper says 10", f.DRAMChips)
	}
	// "a minimum length (40byte) packet can arrive and depart every 8ns"
	if got := PacketInterval(40 * units.Gbps); got != 8*units.Nanosecond {
		t.Errorf("PacketInterval = %v, want 8ns", got)
	}
	// "DRAM has a random access time of about 50ns, which is hard to use"
	if f.DRAMKeepsUp {
		t.Error("DRAM should not keep up with 40 Gb/s")
	}
	if f.FitsOnChip {
		t.Error("1.25 GB should not fit on chip")
	}
}

func TestSqrtRuleBufferFitsOnChip(t *testing.T) {
	// The abstract: "a 10Gb/s link carrying 50,000 flows requires only
	// 10Mbits of buffering, which can easily be implemented using fast,
	// on-chip SRAM".
	pkts := SqrtRulePackets(250*units.Millisecond, 10*units.Gbps, 1000, 50000)
	buffer := units.ByteSize(pkts) * 1000
	f := Feasibility(10*units.Gbps, buffer)
	if !f.FitsOnChip {
		t.Errorf("sqrt-rule backbone buffer (%v) should fit on chip", buffer)
	}
	if f.SRAMChips != 1 {
		t.Errorf("SRAMChips = %d, want 1", f.SRAMChips)
	}
}

func TestKeepsUpThreshold(t *testing.T) {
	// DRAM (50ns access, 100ns per write+read) keeps up while the 40-byte
	// packet interval is >= 100ns: up to 3.2 Gb/s.
	if !DRAM().KeepsUp(3 * units.Gbps) {
		t.Error("DRAM should keep up at 3 Gb/s")
	}
	if DRAM().KeepsUp(4 * units.Gbps) {
		t.Error("DRAM should not keep up at 4 Gb/s")
	}
	// SRAM at 4ns handles 40 Gb/s (8ns interval).
	if !SRAM().KeepsUp(40 * units.Gbps) {
		t.Error("SRAM should keep up at 40 Gb/s")
	}
}

func TestChipsNeededEdges(t *testing.T) {
	if got := SRAM().ChipsNeeded(0); got != 0 {
		t.Errorf("ChipsNeeded(0) = %d", got)
	}
	// Exactly one chip's worth.
	oneChip := units.ByteSize(SRAMChipBits / 8)
	if got := SRAM().ChipsNeeded(oneChip); got != 1 {
		t.Errorf("ChipsNeeded(36Mbit) = %d, want 1", got)
	}
	if got := SRAM().ChipsNeeded(oneChip + 1); got != 2 {
		t.Errorf("ChipsNeeded(36Mbit+1B) = %d, want 2", got)
	}
}

func TestFeasibilityString(t *testing.T) {
	s := Feasibility(10*units.Gbps, 1250*units.Kilobyte).String()
	if !strings.Contains(s, "SRAM") || !strings.Contains(s, "on-chip") {
		t.Errorf("String() = %q", s)
	}
	big := Feasibility(40*units.Gbps, units.Gigabyte).String()
	if !strings.Contains(big, "external") {
		t.Errorf("String() = %q", big)
	}
}
