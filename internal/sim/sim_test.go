package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"bufsim/internal/units"
)

func TestRunOrdersEvents(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.Run(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
	if s.Now() != 100 {
		t.Errorf("Now = %v, want 100", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Run(10)
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events fired out of order: %v", order)
		}
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	s := NewScheduler()
	var fired units.Time
	s.At(10, func() {
		s.After(5, func() { fired = s.Now() })
	})
	s.Run(100)
	if fired != 15 {
		t.Errorf("After fired at %v, want 15", fired)
	}
}

func TestCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	e := s.At(10, func() { fired = true })
	s.Cancel(e)
	s.Run(100)
	if fired {
		t.Error("cancelled event fired")
	}
	if s.Active(e) {
		t.Error("cancelled event reports active")
	}
	// Double-cancel and cancelling the zero handle must be safe.
	s.Cancel(e)
	s.Cancel(Event{})
}

func TestCancelOneOfMany(t *testing.T) {
	s := NewScheduler()
	var order []int
	var events []Event
	for i := 0; i < 20; i++ {
		i := i
		events = append(events, s.At(units.Time(i), func() { order = append(order, i) }))
	}
	// Cancel the even ones.
	for i := 0; i < 20; i += 2 {
		s.Cancel(events[i])
	}
	s.Run(100)
	want := []int{1, 3, 5, 7, 9, 11, 13, 15, 17, 19}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestReschedule(t *testing.T) {
	s := NewScheduler()
	var fired []units.Time
	e := s.At(10, func() { fired = append(fired, s.Now()) })
	e = s.Reschedule(e, 20, func() { fired = append(fired, s.Now()) })
	_ = e
	s.Run(100)
	if len(fired) != 1 || fired[0] != 20 {
		t.Errorf("fired = %v, want [20]", fired)
	}
}

func TestRunStopsAtBoundary(t *testing.T) {
	s := NewScheduler()
	fired := false
	s.At(50, func() { fired = true })
	s.Run(49)
	if fired {
		t.Error("event beyond horizon fired")
	}
	if s.Now() != 49 {
		t.Errorf("Now = %v, want 49", s.Now())
	}
	s.Run(50)
	if !fired {
		t.Error("event at horizon did not fire")
	}
}

func TestStop(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(units.Time(i), func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run(100)
	if count != 3 {
		t.Errorf("executed %d events after Stop, want 3", count)
	}
	// Run can resume.
	s.Run(100)
	if count != 10 {
		t.Errorf("executed %d events total, want 10", count)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(10, func() {})
	s.Run(20)
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	s.At(5, func() {})
}

func TestStep(t *testing.T) {
	s := NewScheduler()
	n := 0
	s.At(1, func() { n++ })
	s.At(2, func() { n++ })
	if !s.Step() || n != 1 {
		t.Fatalf("first Step: n=%d", n)
	}
	if !s.Step() || n != 2 {
		t.Fatalf("second Step: n=%d", n)
	}
	if s.Step() {
		t.Error("Step on empty queue returned true")
	}
}

func TestHeapPropertyRandomOrder(t *testing.T) {
	// Property: regardless of insertion order, events fire sorted by time.
	f := func(times []uint16) bool {
		s := NewScheduler()
		var fired []units.Time
		for _, tt := range times {
			at := units.Time(tt)
			s.At(at, func() { fired = append(fired, s.Now()) })
		}
		s.Run(units.Time(math.MaxUint16) + 1)
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEventAccessorsAndCounters(t *testing.T) {
	s := NewScheduler()
	e := s.At(25, func() {})
	if at, ok := s.EventTime(e); !ok || at != 25 {
		t.Errorf("EventTime = %v, %v", at, ok)
	}
	if !s.Active(e) {
		t.Error("pending event reports inactive")
	}
	s.At(30, func() {})
	if s.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", s.Pending())
	}
	s.Run(100)
	if s.Pending() != 0 {
		t.Errorf("Pending after run = %d", s.Pending())
	}
	if s.Processed != 2 {
		t.Errorf("Processed = %d, want 2", s.Processed)
	}
	if s.Active(e) {
		t.Error("fired event should report inactive")
	}
	if _, ok := s.EventTime(e); ok {
		t.Error("EventTime on a fired event should report not-ok")
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	s := NewScheduler()
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	s.After(-1, func() {})
}

func TestPermIsPermutation(t *testing.T) {
	g := NewRNG(17)
	p := g.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGForkIndependence(t *testing.T) {
	g := NewRNG(1)
	f1 := g.Fork()
	f2 := g.Fork()
	// The two forks must differ from each other.
	diff := false
	for i := 0; i < 10; i++ {
		if f1.Float64() != f2.Float64() {
			diff = true
		}
	}
	if !diff {
		t.Error("forked streams identical")
	}
}

func TestExpMean(t *testing.T) {
	g := NewRNG(7)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.Exp(10)
	}
	mean := sum / n
	if math.Abs(mean-10) > 0.2 {
		t.Errorf("Exp mean = %v, want ~10", mean)
	}
}

func TestUniformRange(t *testing.T) {
	g := NewRNG(9)
	for i := 0; i < 1000; i++ {
		v := g.Uniform(25, 300)
		if v < 25 || v >= 300 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestBoundedParetoRangeAndTail(t *testing.T) {
	g := NewRNG(11)
	const n = 100000
	count := 0
	sum := 0.0
	for i := 0; i < n; i++ {
		v := g.BoundedPareto(1.2, 4, 10000)
		if v < 4 || v > 10000 {
			t.Fatalf("BoundedPareto out of range: %v", v)
		}
		sum += v
		if v > 1000 {
			count++
		}
	}
	// Heavy tail: a visible fraction of samples exceed 250x the minimum.
	if count == 0 {
		t.Error("BoundedPareto produced no tail samples")
	}
	// Mean of a bounded Pareto(1.2, 4, 10000) is about 19.6.
	mean := sum / n
	if mean < 10 || mean > 35 {
		t.Errorf("BoundedPareto mean = %v, want ~19.6", mean)
	}
}

func TestBoundedParetoDegenerate(t *testing.T) {
	g := NewRNG(3)
	if v := g.BoundedPareto(1.5, 10, 10); v != 10 {
		t.Errorf("degenerate BoundedPareto = %v, want 10", v)
	}
}

func TestGeometricMean(t *testing.T) {
	g := NewRNG(5)
	const n = 200000
	sum := 0
	for i := 0; i < n; i++ {
		v := g.Geometric(14)
		if v < 1 {
			t.Fatalf("Geometric returned %d < 1", v)
		}
		sum += v
	}
	mean := float64(sum) / n
	if math.Abs(mean-14) > 0.5 {
		t.Errorf("Geometric mean = %v, want ~14", mean)
	}
	if v := g.Geometric(0.5); v != 1 {
		t.Errorf("Geometric(0.5) = %d, want 1", v)
	}
}

func TestNormalMoments(t *testing.T) {
	g := NewRNG(13)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := g.Normal(5, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("Normal mean = %v, want ~5", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Errorf("Normal variance = %v, want ~4", variance)
	}
}

func BenchmarkSchedulerChurn(b *testing.B) {
	// Measures raw kernel throughput: schedule + fire, with a rolling
	// window of pending events, the pattern network simulations produce.
	s := NewScheduler()
	var tick func()
	i := 0
	tick = func() {
		i++
		if i < b.N {
			s.After(10, tick)
		}
	}
	for j := 0; j < 100 && j < b.N; j++ {
		s.After(units.Duration(j), tick)
	}
	b.ResetTimer()
	s.Run(units.Never - 1)
}

// testActor records typed dispatches for the pooled-event tests.
type testActor struct {
	ops  []int32
	args []any
}

func (a *testActor) OnEvent(op int32, arg any) {
	a.ops = append(a.ops, op)
	a.args = append(a.args, arg)
}

func TestTypedDispatch(t *testing.T) {
	s := NewScheduler()
	a := &testActor{}
	payload := &testActor{} // any pointer will do as a payload
	s.PostAt(5, a, 7, payload)
	s.PostAfter(10, a, 8, nil)
	s.Run(100)
	if len(a.ops) != 2 || a.ops[0] != 7 || a.ops[1] != 8 {
		t.Fatalf("ops = %v, want [7 8]", a.ops)
	}
	if a.args[0] != payload || a.args[1] != nil {
		t.Errorf("args = %v", a.args)
	}
}

func TestCancelAfterFireIsStale(t *testing.T) {
	// A handle whose event already fired must be inert: its slot may have
	// been recycled for a different event, and Cancel must not kill that
	// newer event.
	s := NewScheduler()
	e1 := s.At(10, func() {})
	s.Run(20)
	if s.Active(e1) {
		t.Fatal("fired event still active")
	}
	// The freed slot is reused by the next schedule.
	fired := false
	e2 := s.At(30, func() { fired = true })
	// Cancelling the stale handle must be a no-op even though e1 and e2
	// likely share a slot (the generation differs).
	s.Cancel(e1)
	if !s.Active(e2) {
		t.Fatal("cancelling a stale handle killed the recycled slot's event")
	}
	s.Run(40)
	if !fired {
		t.Error("recycled-slot event did not fire")
	}
}

func TestRescheduleRecycledSlot(t *testing.T) {
	// Reschedule with a stale handle must behave like a fresh schedule and
	// must not disturb the event now occupying the recycled slot.
	s := NewScheduler()
	e1 := s.At(10, func() {})
	s.Run(20)
	survivor := false
	e2 := s.At(50, func() { survivor = true })
	moved := false
	e3 := s.Reschedule(e1, 40, func() { moved = true })
	if !s.Active(e2) || !s.Active(e3) {
		t.Fatal("reschedule of stale handle disturbed live events")
	}
	s.Run(100)
	if !survivor || !moved {
		t.Errorf("survivor=%v moved=%v, want both true", survivor, moved)
	}
}

func TestRescheduleActiveEventMoves(t *testing.T) {
	s := NewScheduler()
	var at units.Time
	e := s.At(10, func() { at = s.Now() })
	e2 := s.Reschedule(e, 30, func() { at = s.Now() })
	if s.Active(e) {
		t.Error("original handle still active after reschedule")
	}
	if !s.Active(e2) {
		t.Error("rescheduled handle not active")
	}
	s.Run(100)
	if at != 30 {
		t.Errorf("rescheduled event fired at %v, want 30", at)
	}
}

func TestSameInstantFIFOMixedKinds(t *testing.T) {
	// Closure and typed events scheduled at the same instant must fire in
	// scheduling order regardless of slot reuse underneath.
	s := NewScheduler()
	var order []int
	a := &testActor{}
	// Churn some slots first so the free list is non-trivial.
	for i := 0; i < 5; i++ {
		s.At(1, func() {})
	}
	s.Run(2)
	s.At(10, func() { order = append(order, 0) })
	s.PostAt(10, a, 0, nil)
	s.At(10, func() { order = append(order, 2) })
	s.PostAt(10, a, 1, nil)
	s.At(10, func() { order = append(order, 4) })
	s.Run(20)
	if len(order) != 3 || order[0] != 0 || order[1] != 2 || order[2] != 4 {
		t.Errorf("closure order = %v, want [0 2 4]", order)
	}
	if len(a.ops) != 2 || a.ops[0] != 0 || a.ops[1] != 1 {
		t.Errorf("typed order = %v, want [0 1]", a.ops)
	}
}

func TestSlotReuseAcrossManyCycles(t *testing.T) {
	// Exercise alloc/release heavily: a single self-rescheduling typed
	// event plus cancelled decoys should never confuse generations.
	s := NewScheduler()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 1000 {
			decoy := s.After(5, func() { t.Error("decoy fired") })
			s.After(1, tick)
			s.Cancel(decoy)
		}
	}
	s.After(1, tick)
	s.Run(units.Never - 1)
	if n != 1000 {
		t.Errorf("ticks = %d, want 1000", n)
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d after drain", s.Pending())
	}
}

func TestMaxPendingTracksHighWater(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 7; i++ {
		s.At(units.Time(10+i), func() {})
	}
	s.Run(100)
	if s.MaxPending() != 7 {
		t.Errorf("MaxPending = %d, want 7", s.MaxPending())
	}
}

func BenchmarkSchedulerChurnTyped(b *testing.B) {
	// The same rolling-window churn as BenchmarkSchedulerChurn but through
	// the typed zero-allocation path.
	s := NewScheduler()
	c := &churnActor{s: s, limit: b.N}
	for j := 0; j < 100 && j < b.N; j++ {
		s.PostAfter(units.Duration(j), c, 0, nil)
	}
	b.ResetTimer()
	s.Run(units.Never - 1)
}

type churnActor struct {
	s     *Scheduler
	i     int
	limit int
}

func (c *churnActor) OnEvent(int32, any) {
	c.i++
	if c.i < c.limit {
		c.s.PostAfter(10, c, 0, nil)
	}
}
