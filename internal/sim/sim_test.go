package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"bufsim/internal/units"
)

func TestRunOrdersEvents(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.Run(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
	if s.Now() != 100 {
		t.Errorf("Now = %v, want 100", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Run(10)
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events fired out of order: %v", order)
		}
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	s := NewScheduler()
	var fired units.Time
	s.At(10, func() {
		s.After(5, func() { fired = s.Now() })
	})
	s.Run(100)
	if fired != 15 {
		t.Errorf("After fired at %v, want 15", fired)
	}
}

func TestCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	e := s.At(10, func() { fired = true })
	s.Cancel(e)
	s.Run(100)
	if fired {
		t.Error("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Error("event does not report cancelled")
	}
	// Double-cancel and cancel-nil must be safe.
	s.Cancel(e)
	s.Cancel(nil)
}

func TestCancelOneOfMany(t *testing.T) {
	s := NewScheduler()
	var order []int
	var events []*Event
	for i := 0; i < 20; i++ {
		i := i
		events = append(events, s.At(units.Time(i), func() { order = append(order, i) }))
	}
	// Cancel the even ones.
	for i := 0; i < 20; i += 2 {
		s.Cancel(events[i])
	}
	s.Run(100)
	want := []int{1, 3, 5, 7, 9, 11, 13, 15, 17, 19}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestReschedule(t *testing.T) {
	s := NewScheduler()
	var fired []units.Time
	e := s.At(10, func() { fired = append(fired, s.Now()) })
	e = s.Reschedule(e, 20, func() { fired = append(fired, s.Now()) })
	_ = e
	s.Run(100)
	if len(fired) != 1 || fired[0] != 20 {
		t.Errorf("fired = %v, want [20]", fired)
	}
}

func TestRunStopsAtBoundary(t *testing.T) {
	s := NewScheduler()
	fired := false
	s.At(50, func() { fired = true })
	s.Run(49)
	if fired {
		t.Error("event beyond horizon fired")
	}
	if s.Now() != 49 {
		t.Errorf("Now = %v, want 49", s.Now())
	}
	s.Run(50)
	if !fired {
		t.Error("event at horizon did not fire")
	}
}

func TestStop(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(units.Time(i), func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run(100)
	if count != 3 {
		t.Errorf("executed %d events after Stop, want 3", count)
	}
	// Run can resume.
	s.Run(100)
	if count != 10 {
		t.Errorf("executed %d events total, want 10", count)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(10, func() {})
	s.Run(20)
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	s.At(5, func() {})
}

func TestStep(t *testing.T) {
	s := NewScheduler()
	n := 0
	s.At(1, func() { n++ })
	s.At(2, func() { n++ })
	if !s.Step() || n != 1 {
		t.Fatalf("first Step: n=%d", n)
	}
	if !s.Step() || n != 2 {
		t.Fatalf("second Step: n=%d", n)
	}
	if s.Step() {
		t.Error("Step on empty queue returned true")
	}
}

func TestHeapPropertyRandomOrder(t *testing.T) {
	// Property: regardless of insertion order, events fire sorted by time.
	f := func(times []uint16) bool {
		s := NewScheduler()
		var fired []units.Time
		for _, tt := range times {
			at := units.Time(tt)
			s.At(at, func() { fired = append(fired, s.Now()) })
		}
		s.Run(units.Time(math.MaxUint16) + 1)
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEventAccessorsAndCounters(t *testing.T) {
	s := NewScheduler()
	e := s.At(25, func() {})
	if e.Time() != 25 {
		t.Errorf("Time = %v", e.Time())
	}
	if e.Cancelled() {
		t.Error("pending event reports cancelled")
	}
	s.At(30, func() {})
	if s.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", s.Pending())
	}
	s.Run(100)
	if s.Pending() != 0 {
		t.Errorf("Pending after run = %d", s.Pending())
	}
	if s.Processed != 2 {
		t.Errorf("Processed = %d, want 2", s.Processed)
	}
	if !e.Cancelled() {
		t.Error("fired event should report cancelled/done")
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	s := NewScheduler()
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	s.After(-1, func() {})
}

func TestPermIsPermutation(t *testing.T) {
	g := NewRNG(17)
	p := g.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGForkIndependence(t *testing.T) {
	g := NewRNG(1)
	f1 := g.Fork()
	f2 := g.Fork()
	// The two forks must differ from each other.
	diff := false
	for i := 0; i < 10; i++ {
		if f1.Float64() != f2.Float64() {
			diff = true
		}
	}
	if !diff {
		t.Error("forked streams identical")
	}
}

func TestExpMean(t *testing.T) {
	g := NewRNG(7)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.Exp(10)
	}
	mean := sum / n
	if math.Abs(mean-10) > 0.2 {
		t.Errorf("Exp mean = %v, want ~10", mean)
	}
}

func TestUniformRange(t *testing.T) {
	g := NewRNG(9)
	for i := 0; i < 1000; i++ {
		v := g.Uniform(25, 300)
		if v < 25 || v >= 300 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestBoundedParetoRangeAndTail(t *testing.T) {
	g := NewRNG(11)
	const n = 100000
	count := 0
	sum := 0.0
	for i := 0; i < n; i++ {
		v := g.BoundedPareto(1.2, 4, 10000)
		if v < 4 || v > 10000 {
			t.Fatalf("BoundedPareto out of range: %v", v)
		}
		sum += v
		if v > 1000 {
			count++
		}
	}
	// Heavy tail: a visible fraction of samples exceed 250x the minimum.
	if count == 0 {
		t.Error("BoundedPareto produced no tail samples")
	}
	// Mean of a bounded Pareto(1.2, 4, 10000) is about 19.6.
	mean := sum / n
	if mean < 10 || mean > 35 {
		t.Errorf("BoundedPareto mean = %v, want ~19.6", mean)
	}
}

func TestBoundedParetoDegenerate(t *testing.T) {
	g := NewRNG(3)
	if v := g.BoundedPareto(1.5, 10, 10); v != 10 {
		t.Errorf("degenerate BoundedPareto = %v, want 10", v)
	}
}

func TestGeometricMean(t *testing.T) {
	g := NewRNG(5)
	const n = 200000
	sum := 0
	for i := 0; i < n; i++ {
		v := g.Geometric(14)
		if v < 1 {
			t.Fatalf("Geometric returned %d < 1", v)
		}
		sum += v
	}
	mean := float64(sum) / n
	if math.Abs(mean-14) > 0.5 {
		t.Errorf("Geometric mean = %v, want ~14", mean)
	}
	if v := g.Geometric(0.5); v != 1 {
		t.Errorf("Geometric(0.5) = %d, want 1", v)
	}
}

func TestNormalMoments(t *testing.T) {
	g := NewRNG(13)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := g.Normal(5, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("Normal mean = %v, want ~5", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Errorf("Normal variance = %v, want ~4", variance)
	}
}

func BenchmarkSchedulerChurn(b *testing.B) {
	// Measures raw kernel throughput: schedule + fire, with a rolling
	// window of pending events, the pattern network simulations produce.
	s := NewScheduler()
	var tick func()
	i := 0
	tick = func() {
		i++
		if i < b.N {
			s.After(10, tick)
		}
	}
	for j := 0; j < 100 && j < b.N; j++ {
		s.After(units.Duration(j), tick)
	}
	b.ResetTimer()
	s.Run(units.Never - 1)
}
