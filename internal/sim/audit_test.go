package sim

import (
	"testing"

	"bufsim/internal/audit"
	"bufsim/internal/units"
)

// TestKernelCleanUnderAudit runs a busy schedule — zero-duration events,
// same-instant bursts, cancels of live and stale handles, reschedules,
// heavy slot recycling — with the auditor attached, and requires zero
// violations plus a structurally sound kernel at every step.
func TestKernelCleanUnderAudit(t *testing.T) {
	aud := audit.New()
	s := NewScheduler()
	s.SetAuditor(aud)
	verify := func() {
		t.Helper()
		if err := s.VerifyInvariants(); err != nil {
			t.Fatal(err)
		}
	}

	// Zero-duration events: fire at the current instant, in FIFO order.
	var order []int
	s.At(10, func() {
		s.After(0, func() { order = append(order, 1) })
		s.After(0, func() { order = append(order, 2) })
	})
	s.Run(20)
	verify()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("zero-duration events fired as %v, want [1 2]", order)
	}

	// Stale handles: cancel after fire, cancel after recycle, reschedule
	// a stale handle — all while the auditor watches the heap/slot links.
	e1 := s.At(30, func() {})
	s.Run(40)
	s.Cancel(e1)
	fired := false
	e2 := s.At(50, func() { fired = true })
	s.Cancel(e1) // stale again, e2 likely occupies e1's slot
	verify()
	if !s.Active(e2) {
		t.Fatal("stale cancel killed a live event")
	}
	e3 := s.Reschedule(e1, 60, func() {})
	verify()
	s.Run(70)
	verify()
	if !fired || s.Active(e3) {
		t.Fatalf("fired=%v active(e3)=%v after run", fired, s.Active(e3))
	}

	// Churn: interleaved schedule/cancel across many recycles.
	var handles []Event
	for i := 0; i < 200; i++ {
		handles = append(handles, s.At(units.Time(100+i%7), func() {}))
		if i%3 == 0 {
			s.Cancel(handles[i/2])
		}
	}
	verify()
	s.Run(200)
	verify()
	if aud.Count() != 0 {
		t.Fatalf("kernel audit violations: %v", aud.Err())
	}
}

// FuzzSchedulerInvariants decodes an arbitrary byte stream into kernel
// operations (schedule closure/typed, cancel, reschedule, step, run) and
// checks the full structural invariant set after every operation, with
// the auditor attached throughout.
func FuzzSchedulerInvariants(f *testing.F) {
	f.Add([]byte{0x00, 0x05, 0x41, 0x02, 0x83, 0x00, 0xc1, 0x07})
	f.Add([]byte("schedule, cancel, step, repeat"))
	f.Fuzz(func(t *testing.T, data []byte) {
		aud := audit.New()
		s := NewScheduler()
		s.SetAuditor(aud)
		a := &testActor{}
		var handles []Event
		for i := 0; i+1 < len(data); i += 2 {
			op, b := data[i]>>6, data[i]&0x3f
			switch op {
			case 0: // schedule a closure event b ticks out
				handles = append(handles, s.After(units.Duration(b), func() {}))
			case 1: // schedule a typed event b ticks out
				handles = append(handles, s.PostAfter(units.Duration(b), a, int32(b), nil))
			case 2: // cancel an arbitrary handle (live, fired, or recycled)
				if len(handles) > 0 {
					s.Cancel(handles[int(b)%len(handles)])
				}
			case 3: // advance: either one step or a bounded run
				if b%2 == 0 {
					s.Step()
				} else {
					s.Run(s.Now() + units.Time(b))
				}
			}
			_ = data[i+1]
			if err := s.VerifyInvariants(); err != nil {
				t.Fatalf("after op %d: %v", i/2, err)
			}
		}
		s.Run(s.Now() + 1000)
		if err := s.VerifyInvariants(); err != nil {
			t.Fatal(err)
		}
		if aud.Count() != 0 {
			t.Fatalf("audit violations: %v", aud.Err())
		}
	})
}
