// Sharded execution engine: conservative parallel windows over the
// topology cut, bit-identical to the sequential kernel.
//
// # Model
//
// EnableShards splits one Scheduler into n shards. Every event carries a
// class: shard k (its handler touches only shard k's component state) or
// global (everything else — experiment drivers, samplers, any event
// scheduled through the base scheduler). Components are handed per-shard
// views (ShardView); an event's class is simply the scheduler object it
// was posted through, so unmodified component code classifies itself.
//
// Run proceeds window by window. With T the earliest pending time, the
// window is [T, E) where E = min(T+L, first global-class event time,
// until+1) and L is the lookahead: the smallest cross-shard propagation
// delay in the topology. Every pending event below E is popped from the
// base heap and seeded into its shard's private mini-heap; shards then
// drain their heaps concurrently. Cross-shard and beyond-window schedules
// are deferred, and a cross-shard post below E panics — the lookahead
// contract is that shard state can only be reached across a link whose
// delay is at least L. When E <= T (a global-class event is due, or the
// lookahead is exhausted) the engine falls back to firing the whole
// timestamp cohort on the sequential path, which makes cross-shard
// readers (samplers, flow arrivals) automatically safe: they observe
// exactly the state the sequential kernel would have produced.
//
// # Determinism
//
// The sequential kernel orders events by (time, seq) with seq assigned in
// schedule-call order. The engine reproduces that order exactly:
//
//   - Seeds keep their global seq as the local tie-break key. In-window
//     children draw keys from a counter starting at the window's base-seq
//     snapshot, which exceeds every seed's seq — so at equal times, seeds
//     fire before children, in global order, and same-shard children fire
//     in local scheduling order, exactly as the sequential kernel would.
//   - Each shard logs its window: a begin record per fired event, then
//     one record per schedule/cancel call, in call order. At the barrier
//     the logs are replayed through a virtual heap ordered by (time,
//     seq): popping an event replays its schedule records, assigning
//     fresh global seqs in pop order — the exact seqs the sequential
//     kernel would have assigned. Beyond-window events are forwarded into
//     the base heap under their replayed seq; in-window children are
//     pushed back into the virtual heap and must match their shard's
//     next begin record. That match is the frontier-merge invariant: it
//     proves the shard's local execution order was the global (time,
//     seq) order restricted to the shard.
//
// Timer handles survive the window boundary through arena encoding: a
// schedule inside a window allocates from the shard's local arena, and if
// the event outlives the window the barrier forwards it into the base
// heap, leaving the local slot behind as a shell that redirects Cancel,
// Active and EventTime. Shells die with their base slot (backRef), so
// long-lived rescheduled timers (RTOs) do not accumulate storage.
package sim

import (
	"fmt"
	"sync"

	"bufsim/internal/units"
)

// globalClass marks events owned by no shard: they force a sequential
// cohort at their timestamp.
const globalClass int32 = -1

// MaxShards bounds the shard count; arena indices share the 31-bit handle
// space with the 24-bit slot index.
const MaxShards = 64

// Target names a destination actor together with the shard that owns its
// state, so links can hand packets across a shard boundary (PostToAt
// defers delivery to the destination's shard at the barrier). Build one
// with TargetFor on the scheduler view of the owning shard.
type Target struct {
	A     Actor
	Shard int32
}

// Valid reports whether the target names an actor.
func (t Target) Valid() bool { return t.A != nil }

// EnableShards attaches the parallel-window engine: n shards with the
// given conservative lookahead (the minimum cross-shard link delay;
// must be positive — a topology with a zero-delay cross-shard edge
// cannot shard). Call once, on a base scheduler, before Run. Pass
// units.Duration(units.Never) for fully disjoint shards with no
// cross-shard edges.
func (s *Scheduler) EnableShards(n int, lookahead units.Duration) {
	if s.eng != nil {
		if s.viewShard != globalClass {
			panic("sim: EnableShards called on a shard view")
		}
		panic("sim: EnableShards called twice")
	}
	if n < 2 || n > MaxShards {
		panic(fmt.Sprintf("sim: shard count %d outside [2, %d]", n, MaxShards))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: non-positive lookahead %v", lookahead))
	}
	e := &shardEngine{base: s, lookahead: lookahead}
	e.shards = make([]*shardRun, n)
	e.views = make([]*Scheduler, n)
	for k := range e.shards {
		e.shards[k] = &shardRun{id: int32(k), eng: e}
		e.views[k] = &Scheduler{eng: e, viewShard: int32(k)}
	}
	s.viewShard = globalClass
	s.eng = e
	// Events scheduled before sharding was enabled carry the global
	// class; register them for window sizing.
	for _, en := range s.heap {
		e.noteGlobal(en.at, en.slot, s.slots[en.slot].gen)
	}
}

// ShardView returns the scheduler view owned by shard k. Components of
// shard k must schedule exclusively through their view; events posted
// through it are classified as shard-k work and may run concurrently
// with other shards. On an unsharded scheduler every view is the
// scheduler itself, so topology code can use views unconditionally.
func (s *Scheduler) ShardView(k int) *Scheduler {
	if s.eng == nil {
		return s
	}
	return s.eng.views[k]
}

// ShardCount reports the number of shards (1 when sharding is off).
func (s *Scheduler) ShardCount() int {
	if s.eng == nil {
		return 1
	}
	return len(s.eng.shards)
}

// TargetFor binds an actor to the calling view's shard, producing the
// hand-off address cross-shard senders post to.
func (s *Scheduler) TargetFor(a Actor) Target {
	if s.eng == nil {
		return Target{A: a, Shard: globalClass}
	}
	return Target{A: a, Shard: s.viewShard}
}

// PostToAt schedules a typed event on the target's shard: at time t the
// kernel calls tg.A.OnEvent(op, arg) in the context of tg.Shard. From a
// different shard, t must respect the lookahead (t >= window end).
func (s *Scheduler) PostToAt(t units.Time, tg Target, op int32, arg any) Event {
	if s.eng != nil {
		return s.eng.scheduleFrom(s.viewShard, t, nil, tg.A, op, arg, tg.Shard)
	}
	return s.scheduleBase(t, nil, tg.A, op, arg, globalClass)
}

// PostToAfter schedules a typed event on the target's shard d from now.
func (s *Scheduler) PostToAfter(d units.Duration, tg Target, op int32, arg any) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.PostToAt(s.Now().Add(d), tg, op, arg)
}

// root resolves a view to its base scheduler.
func (s *Scheduler) root() *Scheduler {
	if s.eng != nil {
		return s.eng.base
	}
	return s
}

// shardEngine coordinates the parallel windows. It is reachable from the
// base scheduler and every view; all mutable state below is owned by the
// sequential portions of Run except the per-shard runs, which their
// goroutines own exclusively between window start and the barrier.
type shardEngine struct {
	base      *Scheduler
	views     []*Scheduler
	shards    []*shardRun
	lookahead units.Duration

	window    bool       // a parallel window is executing
	windowEnd units.Time // exclusive bound E of the executing window

	gheap  []gentry // lazily-pruned min-heap over pending global-class events
	virt   []ventry // barrier scratch: the virtual replay heap
	seeded []int32  // barrier scratch: shards seeded this window
}

// gentry tracks one pending global-class event for window sizing.
// Entries are pruned lazily: a generation mismatch means the event fired
// or was cancelled.
type gentry struct {
	at   units.Time
	slot int32
	gen  uint32
}

// ventry is one virtual-replay heap element, ordered by (at, seq) — the
// global order the sequential kernel would have used.
type ventry struct {
	at    units.Time
	seq   uint64
	shard int32
	ref   int32 // encoded handle: arena 0 for seeds, shard arena for children
}

func vbefore(a, b ventry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Local-arena slot states.
const (
	lsFree      int8 = iota
	lsPending        // in the owning shard's window heap
	lsDeferred       // beyond the window (or cross-shard); forwarded at the barrier
	lsFired          // fired this window; storage recycles at the barrier
	lsCancelled      // cancelled this window before settling
	lsForwarded      // shell: the live event moved to a base slot (fwd)
)

// lslot is one shard-local event slot.
type lslot struct {
	gen    uint32
	state  int8
	pos    int32 // window-heap index while lsPending
	op     int32
	target int32 // destination shard recorded at schedule time
	at     units.Time
	actor  Actor
	arg    any
	fn     func()
	fwd    Event // base-arena handle once lsForwarded
}

// lentry is one window-heap element. Seeds carry their global seq as the
// key; children draw keys from the shard's counter, which starts above
// every seed's seq.
type lentry struct {
	at  units.Time
	key uint64
	ref int32 // encoded handle
}

func lbefore(a, b lentry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.key < b.key
}

// Window log record kinds.
const (
	recBeginSeed  int8 = iota // a seed fired; a = its global seq
	recBeginChild             // an in-window child fired; a = local slot index
	recSched                  // a schedule call; a = local slot index
	recCancel                 // an applied cancel; a = encoded handle id
)

type logRec struct {
	kind int8
	at   units.Time
	a    int64
	gen  uint32 // recCancel: the cancelled handle's generation
}

// shardRun is one shard's execution state. Between windows it is owned by
// the engine's sequential code; during a window, exclusively by the
// shard's goroutine.
type shardRun struct {
	id     int32
	eng    *shardEngine
	now    units.Time
	heap   []lentry
	slots  []lslot
	free   []int32
	key    uint64 // child tie-break counter; reset to the base-seq snapshot per window
	log    []logRec
	dead   []int32 // local slots fired this window, recycled at the barrier
	cursor int     // barrier scratch: replay position in log

	processed  uint64
	maxPending int
	panicked   any
}

// ---- scheduling ----

// nowFor is the routed clock: a shard's local clock inside a window, the
// base clock everywhere else.
func (e *shardEngine) nowFor(k int32) units.Time {
	if e.window && k != globalClass {
		return e.shards[k].now
	}
	return e.base.now
}

// scheduleFrom routes a schedule call: inside a window it lands in the
// calling shard's arena; outside, on the base heap stamped with the
// target class.
func (e *shardEngine) scheduleFrom(from int32, t units.Time, fn func(), a Actor, op int32, arg any, target int32) Event {
	if e.window {
		if from == globalClass {
			panic("sim: base-scheduler event scheduled inside a parallel window")
		}
		return e.scheduleLocal(from, t, fn, a, op, arg, target)
	}
	return e.base.scheduleBase(t, fn, a, op, arg, target)
}

// scheduleLocal allocates from shard k's arena. Same-shard events below
// the window bound enter the window heap; everything else is deferred to
// the barrier. A cross-shard post below the window bound is a lookahead
// violation and panics: the topology promised no shard can be reached
// faster than the lookahead.
func (e *shardEngine) scheduleLocal(k int32, t units.Time, fn func(), a Actor, op int32, arg any, target int32) Event {
	sh := e.shards[k]
	if t < sh.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before shard %d clock %v", t, k, sh.now))
	}
	if target != k && t < e.windowEnd {
		if b := e.base; b.aud != nil {
			b.aud.Violationf(sh.now, "sim", "lookahead",
				"shard %d posted to shard %d at %v inside window ending %v", k, target, t, e.windowEnd)
		}
		panic(fmt.Sprintf("sim: lookahead violation: shard %d posted to shard %d at %v inside window ending %v",
			k, target, t, e.windowEnd))
	}
	idx := sh.alloc()
	ls := &sh.slots[idx]
	ls.fn = fn
	ls.actor = a
	ls.op = op
	ls.arg = arg
	ls.at = t
	ls.target = target
	ref := handleFor(k+1, idx)
	if t < e.windowEnd {
		ls.state = lsPending
		sh.push(lentry{at: t, key: sh.key, ref: ref})
		sh.key++
	} else {
		ls.state = lsDeferred
		ls.pos = -1
	}
	sh.log = append(sh.log, logRec{kind: recSched, at: t, a: int64(idx)})
	return Event{id: ref, gen: ls.gen}
}

// ---- cancellation / handle resolution ----

// cancel routes Cancel through the engine. In-window cancels log their
// effect so the barrier replay applies it under the global order;
// sequential-context cancels resolve shells down to base slots directly.
func (e *shardEngine) cancel(from int32, ev Event) {
	if ev.id == 0 {
		return
	}
	if e.window && from != globalClass {
		e.cancelInWindow(from, ev)
		return
	}
	ar, idx := handleArena(ev.id), handleIdx(ev.id)
	if ar == 0 {
		e.base.cancelBase(idx, ev.gen)
		return
	}
	sh := e.shards[ar-1]
	ls := &sh.slots[idx]
	if ls.gen != ev.gen || ls.state != lsForwarded {
		return
	}
	e.base.cancelBase(handleIdx(ls.fwd.id), ls.fwd.gen)
	if ls.state == lsForwarded { // base event already gone; drop the stale shell
		sh.releaseLocal(idx)
	}
}

// cancelInWindow applies a cancel from shard k's execution context.
// Pending same-shard work is removed immediately; events living in the
// base heap are marked (defc) and surgically removed at the barrier,
// where mutating the shared heap is safe.
func (e *shardEngine) cancelInWindow(k int32, ev Event) {
	sh := e.shards[k]
	b := e.base
	ar, idx := handleArena(ev.id), handleIdx(ev.id)
	if ar == 0 {
		e.cancelSeedOrBase(sh, &b.slots[idx], ev.id, ev.gen)
		return
	}
	if ar != k+1 {
		panic("sim: cross-shard cancel of a shard-local event")
	}
	ls := &sh.slots[idx]
	if ls.gen != ev.gen {
		return
	}
	switch ls.state {
	case lsPending:
		sh.removeLocalAt(int(ls.pos))
		ls.pos = -1
		ls.gen++
		ls.state = lsCancelled
		sh.log = append(sh.log, logRec{kind: recCancel, a: int64(ev.id), gen: ev.gen})
	case lsDeferred:
		ls.gen++
		ls.state = lsCancelled
		sh.log = append(sh.log, logRec{kind: recCancel, a: int64(ev.id), gen: ev.gen})
	case lsForwarded:
		bsl := &b.slots[handleIdx(ls.fwd.id)]
		if bsl.gen != ls.fwd.gen {
			return
		}
		e.cancelSeedOrBase(sh, bsl, ev.id, ev.gen)
	}
}

// cancelSeedOrBase cancels a base-arena event from shard context: a seed
// pending in this shard's window heap comes out now; a future base-heap
// event is deferred to the barrier. id/gen identify the handle the
// component holds (possibly a shell), recorded for the replay log.
func (e *shardEngine) cancelSeedOrBase(sh *shardRun, sl *slot, id int32, gen uint32) {
	if handleArena(id) == 0 && sl.gen != gen {
		return
	}
	if sl.defc {
		return
	}
	switch {
	case sl.pos <= posSeedBase: // pending in a window heap
		if sl.shard != sh.id {
			panic("sim: cross-shard cancel of an in-window event")
		}
		sh.removeLocalAt(int(posSeedBase - sl.pos))
		sl.pos = posSeedCancelled
		sl.gen++
		sh.log = append(sh.log, logRec{kind: recCancel, a: int64(id), gen: gen})
	case sl.pos >= 0: // future event in the base heap
		if sl.shard != sh.id {
			panic("sim: cross-shard cancel of a base event")
		}
		sl.defc = true
		sh.log = append(sh.log, logRec{kind: recCancel, a: int64(id), gen: gen})
	}
}

// active resolves a handle through arenas, shells and window sentinels.
func (e *shardEngine) active(ev Event) bool {
	if ev.id == 0 {
		return false
	}
	ar, idx := handleArena(ev.id), handleIdx(ev.id)
	if ar == 0 {
		return e.baseActive(idx, ev.gen)
	}
	ls := &e.shards[ar-1].slots[idx]
	if ls.gen != ev.gen {
		return false
	}
	switch ls.state {
	case lsPending, lsDeferred:
		return true
	case lsForwarded:
		return e.baseActive(handleIdx(ls.fwd.id), ls.fwd.gen)
	}
	return false
}

func (e *shardEngine) baseActive(idx int32, gen uint32) bool {
	sl := &e.base.slots[idx]
	if sl.gen != gen || sl.defc {
		return false
	}
	return sl.pos >= 0 || sl.pos <= posSeedBase
}

// eventTime resolves a handle to its pending fire time.
func (e *shardEngine) eventTime(ev Event) (units.Time, bool) {
	if ev.id == 0 {
		return 0, false
	}
	ar, idx := handleArena(ev.id), handleIdx(ev.id)
	if ar == 0 {
		return e.baseEventTime(idx, ev.gen)
	}
	sh := e.shards[ar-1]
	ls := &sh.slots[idx]
	if ls.gen != ev.gen {
		return 0, false
	}
	switch ls.state {
	case lsPending:
		return sh.heap[ls.pos].at, true
	case lsDeferred:
		return ls.at, true
	case lsForwarded:
		return e.baseEventTime(handleIdx(ls.fwd.id), ls.fwd.gen)
	}
	return 0, false
}

func (e *shardEngine) baseEventTime(idx int32, gen uint32) (units.Time, bool) {
	sl := &e.base.slots[idx]
	if sl.gen != gen || sl.defc {
		return 0, false
	}
	switch {
	case sl.pos >= 0:
		return e.base.heap[sl.pos].at, true
	case sl.pos <= posSeedBase:
		return e.shards[sl.shard].heap[posSeedBase-sl.pos].at, true
	}
	return 0, false
}

// releaseShell recycles a forwarded local slot when its base slot dies.
func (e *shardEngine) releaseShell(ref int32) {
	e.shards[handleArena(ref)-1].releaseLocal(handleIdx(ref))
}

// ---- the window loop ----

// noteGlobal records a pending global-class event for window sizing.
func (e *shardEngine) noteGlobal(t units.Time, slot int32, gen uint32) {
	e.gheap = append(e.gheap, gentry{at: t, slot: slot, gen: gen})
	i := len(e.gheap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if e.gheap[p].at <= e.gheap[i].at {
			break
		}
		e.gheap[p], e.gheap[i] = e.gheap[i], e.gheap[p]
		i = p
	}
}

// nextGlobalAt returns the earliest pending global-class event time,
// pruning entries whose events fired or were cancelled since.
func (e *shardEngine) nextGlobalAt() units.Time {
	b := e.base
	for len(e.gheap) > 0 {
		g := e.gheap[0]
		sl := &b.slots[g.slot]
		if sl.gen == g.gen && sl.pos >= 0 && sl.shard == globalClass {
			return g.at
		}
		n := len(e.gheap) - 1
		e.gheap[0] = e.gheap[n]
		e.gheap = e.gheap[:n]
		// sift down
		i := 0
		for {
			c := 2*i + 1
			if c >= n {
				break
			}
			if c+1 < n && e.gheap[c+1].at < e.gheap[c].at {
				c++
			}
			if e.gheap[i].at <= e.gheap[c].at {
				break
			}
			e.gheap[i], e.gheap[c] = e.gheap[c], e.gheap[i]
			i = c
		}
	}
	return units.Never
}

// satAdd is t+d saturating at units.Never.
func satAdd(t units.Time, d units.Duration) units.Time {
	if units.Time(units.Never).Sub(t) <= d {
		return units.Never
	}
	return t.Add(d)
}

// run is the sharded Run loop: sequential cohorts when a global-class
// event is due at the frontier, parallel windows otherwise.
func (e *shardEngine) run(until units.Time) {
	b := e.base
	b.stopped = false
	for len(b.heap) > 0 && !b.stopped {
		T := b.heap[0].at
		if T > until {
			break
		}
		E := satAdd(T, e.lookahead)
		if tg := e.nextGlobalAt(); tg < E {
			E = tg
		}
		// The window must cover `until` itself, hence the one-nanosecond
		// overshoot on the exclusive bound.
		const tick = units.Duration(1)
		if until < units.Never && until.Add(tick) < E {
			E = until.Add(tick)
		}
		if E <= T {
			// A global-class event is due at T: fire the whole timestamp
			// cohort sequentially, in global (time, seq) order.
			for len(b.heap) > 0 && b.heap[0].at == T && !b.stopped {
				b.fire()
			}
			continue
		}
		e.runWindow(T, E)
	}
	if !b.stopped && b.now < until {
		b.now = until
	}
}

// runWindow executes the parallel window [T, E): distribute seeds, drain
// shards concurrently, then merge at the barrier.
func (e *shardEngine) runWindow(T, E units.Time) {
	b := e.base
	if b.aud != nil && T < b.now {
		b.aud.Violationf(b.now, "sim", "merge-monotonic",
			"window starting at %v opened after clock reached %v", T, b.now)
	}
	e.seeded = e.seeded[:0]
	e.virt = e.virt[:0]
	for len(b.heap) > 0 && b.heap[0].at < E {
		top := b.popRoot()
		sl := &b.slots[top.slot]
		k := sl.shard
		if k == globalClass {
			panic("sim: global-class event inside a parallel window")
		}
		sh := e.shards[k]
		if len(sh.heap) == 0 {
			e.seeded = append(e.seeded, k)
		}
		sh.push(lentry{at: top.at, key: top.seq, ref: handleFor(0, top.slot)})
		e.virt = append(e.virt, ventry{at: top.at, seq: top.seq, shard: k, ref: handleFor(0, top.slot)})
	}
	snap := b.seq
	for _, k := range e.seeded {
		sh := e.shards[k]
		sh.key = snap
		sh.now = b.now
	}
	e.window = true
	e.windowEnd = E
	if len(e.seeded) == 1 {
		e.shards[e.seeded[0]].drain()
	} else {
		var wg sync.WaitGroup
		for _, k := range e.seeded {
			sh := e.shards[k]
			wg.Add(1)
			go func() {
				defer wg.Done()
				sh.drain()
			}()
		}
		wg.Wait()
	}
	e.window = false
	for _, k := range e.seeded {
		if p := e.shards[k].panicked; p != nil {
			e.shards[k].panicked = nil
			panic(p)
		}
	}
	e.replay(E)
	maxAt := b.now
	for _, k := range e.seeded {
		sh := e.shards[k]
		if sh.cursor != len(sh.log) {
			panic(fmt.Sprintf("sim: frontier merge left %d unmatched log records on shard %d",
				len(sh.log)-sh.cursor, k))
		}
		sh.log = sh.log[:0]
		sh.cursor = 0
		for _, idx := range sh.dead {
			if sh.slots[idx].state == lsFired {
				sh.releaseLocal(idx)
			}
		}
		sh.dead = sh.dead[:0]
		if sh.now > maxAt {
			maxAt = sh.now
		}
		b.Processed += sh.processed
		sh.processed = 0
		// MaxPending under sharding is an approximation: per-shard peaks
		// summed with the base backlog, not a globally-consistent snapshot.
		if mp := len(b.heap) + sh.maxPending; mp > b.maxPending {
			b.maxPending = mp
		}
		sh.maxPending = 0
	}
	b.now = maxAt
}

// drain runs one shard's window to exhaustion, capturing panics for the
// coordinator to re-raise after the barrier.
func (sh *shardRun) drain() {
	defer func() {
		if p := recover(); p != nil {
			sh.panicked = p
		}
	}()
	for len(sh.heap) > 0 {
		sh.fireLocal()
	}
}

// fireLocal pops and dispatches the shard's earliest window event.
func (sh *shardRun) fireLocal() {
	top := sh.heap[0]
	last := len(sh.heap) - 1
	if last > 0 {
		moved := sh.heap[last]
		sh.heap = sh.heap[:last]
		sh.heap[0] = moved
		sh.setPos(moved.ref, 0)
		sh.siftDown(0)
	} else {
		sh.heap = sh.heap[:0]
	}
	b := sh.eng.base
	if b.aud != nil && top.at < sh.now {
		b.aud.Violationf(sh.now, "sim", "shard-clock-monotonic",
			"shard %d event at %v fires after shard clock reached %v", sh.id, top.at, sh.now)
	}
	sh.now = top.at
	var fn func()
	var actor Actor
	var op int32
	var arg any
	idx := handleIdx(top.ref)
	if handleArena(top.ref) == 0 {
		sl := &b.slots[idx]
		fn, actor, op, arg = sl.fn, sl.actor, sl.op, sl.arg
		sl.gen++
		sl.pos = posSeedFired
		sh.log = append(sh.log, logRec{kind: recBeginSeed, at: top.at, a: int64(top.key)})
	} else {
		ls := &sh.slots[idx]
		fn, actor, op, arg = ls.fn, ls.actor, ls.op, ls.arg
		ls.gen++
		ls.state = lsFired
		ls.pos = -1
		sh.dead = append(sh.dead, idx)
		sh.log = append(sh.log, logRec{kind: recBeginChild, at: top.at, a: int64(idx)})
	}
	sh.processed++
	if actor != nil {
		actor.OnEvent(op, arg)
	} else {
		fn()
	}
}

// ---- the barrier ----

// replay merges the window deterministically: a virtual heap ordered by
// (time, seq) walks the shards' logs, assigning the exact global
// sequence numbers the sequential kernel would have produced and
// checking that each shard fired in that order (the frontier-merge
// invariant).
func (e *shardEngine) replay(E units.Time) {
	b := e.base
	// e.virt was filled in ascending pop order, so it is already a heap.
	lastAt := b.now
	for len(e.virt) > 0 {
		v := e.popVirt()
		sh := e.shards[v.shard]
		if handleArena(v.ref) == 0 {
			if b.slots[handleIdx(v.ref)].pos != posSeedFired {
				continue // seed cancelled mid-window: no begin record to match
			}
		} else if sh.slots[handleIdx(v.ref)].state != lsFired {
			panic("sim: virtual replay reached a child that never fired")
		}
		if b.aud != nil && v.at < lastAt {
			b.aud.Violationf(v.at, "sim", "merge-monotonic",
				"frontier merge popped %v after reaching %v", v.at, lastAt)
		}
		lastAt = v.at
		e.matchBegin(sh, v)
		if handleArena(v.ref) == 0 {
			b.release(handleIdx(v.ref))
		}
		for sh.cursor < len(sh.log) {
			r := sh.log[sh.cursor]
			if r.kind == recBeginSeed || r.kind == recBeginChild {
				break
			}
			sh.cursor++
			switch r.kind {
			case recSched:
				e.replaySched(sh, r, E)
			case recCancel:
				e.replayCancel(r)
			}
		}
	}
}

// matchBegin checks the frontier-merge invariant: the event the global
// (time, seq) order says fires next on this shard must be exactly the
// event the shard's log says it fired next.
func (e *shardEngine) matchBegin(sh *shardRun, v ventry) {
	mismatch := func(detail string) {
		if b := e.base; b.aud != nil {
			b.aud.Violationf(v.at, "sim", "frontier-merge", "%s", detail)
		}
		panic("sim: frontier-merge invariant violated: " + detail)
	}
	if sh.cursor >= len(sh.log) {
		mismatch(fmt.Sprintf("shard %d log exhausted but global order expects an event at %v", sh.id, v.at))
	}
	r := sh.log[sh.cursor]
	sh.cursor++
	switch {
	case r.kind == recBeginSeed && handleArena(v.ref) == 0:
		if r.at != v.at || r.a != int64(v.seq) {
			mismatch(fmt.Sprintf("shard %d fired seed seq %d at %v, global order expects seq %d at %v",
				sh.id, r.a, r.at, v.seq, v.at))
		}
	case r.kind == recBeginChild && handleArena(v.ref) != 0:
		if r.at != v.at || r.a != int64(handleIdx(v.ref)) {
			mismatch(fmt.Sprintf("shard %d fired child slot %d at %v, global order expects slot %d at %v",
				sh.id, r.a, r.at, handleIdx(v.ref), v.at))
		}
	default:
		mismatch(fmt.Sprintf("shard %d log record kind %d does not match replayed event at %v", sh.id, r.kind, v.at))
	}
}

// replaySched assigns the event its true global seq. In-window children
// re-enter the virtual heap under that seq; survivors beyond the window
// are forwarded into the base heap; cancelled events consume their seq
// (exactly as the sequential kernel would have) and release storage.
func (e *shardEngine) replaySched(sh *shardRun, r logRec, E units.Time) {
	b := e.base
	idx := int32(r.a)
	ls := &sh.slots[idx]
	seqn := b.seq
	b.seq++
	switch ls.state {
	case lsFired:
		e.pushVirt(ventry{at: r.at, seq: seqn, shard: sh.id, ref: handleFor(sh.id+1, idx)})
	case lsCancelled:
		sh.releaseLocal(idx)
	case lsDeferred:
		e.forward(sh, idx, seqn)
	default:
		panic("sim: schedule record references a slot in an unexpected state")
	}
}

// forward re-homes a deferred local event into the base heap under its
// replayed seq, leaving the local slot as a redirecting shell.
func (e *shardEngine) forward(sh *shardRun, idx int32, seqn uint64) {
	b := e.base
	ls := &sh.slots[idx]
	bidx := b.allocSlot()
	bsl := &b.slots[bidx]
	bsl.fn = ls.fn
	bsl.actor = ls.actor
	bsl.op = ls.op
	bsl.arg = ls.arg
	bsl.shard = ls.target
	bsl.backRef = handleFor(sh.id+1, idx)
	i := len(b.heap)
	b.heap = append(b.heap, entry{at: ls.at, seq: seqn, slot: bidx})
	b.siftUp(i)
	if len(b.heap) > b.maxPending {
		b.maxPending = len(b.heap)
	}
	ls.state = lsForwarded
	ls.fwd = Event{id: bidx + 1, gen: bsl.gen}
	ls.fn = nil
	ls.actor = nil
	ls.arg = nil
	if ls.target == globalClass {
		e.noteGlobal(ls.at, bidx, bsl.gen)
	}
}

// replayCancel applies a logged cancel under the global order.
func (e *shardEngine) replayCancel(r logRec) {
	b := e.base
	id := int32(r.a)
	ar, idx := handleArena(id), handleIdx(id)
	if ar == 0 {
		sl := &b.slots[idx]
		if sl.pos == posSeedCancelled {
			b.release(idx)
		} else if sl.gen == r.gen && sl.pos >= 0 {
			sl.defc = false
			b.removeAt(int(sl.pos))
			b.release(idx)
		}
		return
	}
	sh := e.shards[ar-1]
	ls := &sh.slots[idx]
	if ls.state != lsForwarded {
		return // settled at its own schedule record
	}
	bidx := handleIdx(ls.fwd.id)
	bsl := &b.slots[bidx]
	if bsl.pos == posSeedCancelled && bsl.backRef == id {
		b.release(bidx) // reaps the shell through backRef
		return
	}
	bsl.defc = false
	b.cancelBase(bidx, ls.fwd.gen)
	if ls.state == lsForwarded { // base event already gone; drop the stale shell
		sh.releaseLocal(idx)
	}
}

// pushVirt / popVirt maintain the (time, seq) virtual replay heap.
func (e *shardEngine) pushVirt(v ventry) {
	e.virt = append(e.virt, v)
	i := len(e.virt) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !vbefore(e.virt[i], e.virt[p]) {
			break
		}
		e.virt[p], e.virt[i] = e.virt[i], e.virt[p]
		i = p
	}
}

func (e *shardEngine) popVirt() ventry {
	top := e.virt[0]
	n := len(e.virt) - 1
	e.virt[0] = e.virt[n]
	e.virt = e.virt[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && vbefore(e.virt[c+1], e.virt[c]) {
			c++
		}
		if !vbefore(e.virt[c], e.virt[i]) {
			break
		}
		e.virt[i], e.virt[c] = e.virt[c], e.virt[i]
		i = c
	}
	return top
}

// ---- shard-local storage and heap ----

// alloc takes a local slot. Slots freed mid-window only re-enter the
// free list at the barrier, so a slot index identifies at most one
// schedule record per window log.
func (sh *shardRun) alloc() int32 {
	if n := len(sh.free); n > 0 {
		idx := sh.free[n-1]
		sh.free = sh.free[:n-1]
		return idx
	}
	if len(sh.slots) > idxMask-1 {
		panic("sim: shard arena exhausted its 24-bit slot index space")
	}
	sh.slots = append(sh.slots, lslot{})
	return int32(len(sh.slots) - 1)
}

// releaseLocal recycles a local slot. Only called from sequential
// contexts (the barrier, or cancels between windows).
func (sh *shardRun) releaseLocal(idx int32) {
	ls := &sh.slots[idx]
	ls.gen++
	ls.state = lsFree
	ls.pos = -1
	ls.actor = nil
	ls.arg = nil
	ls.fn = nil
	ls.fwd = Event{}
	sh.free = append(sh.free, idx)
}

// setPos records a window-heap position on the element's slot: local
// slots store it directly, seeds encode it into their base slot's pos
// sentinel so in-window cancels can find them.
func (sh *shardRun) setPos(ref, pos int32) {
	if handleArena(ref) == 0 {
		sh.eng.base.slots[handleIdx(ref)].pos = posSeedBase - pos
	} else {
		sh.slots[handleIdx(ref)].pos = pos
	}
}

func (sh *shardRun) push(le lentry) {
	i := len(sh.heap)
	sh.heap = append(sh.heap, le)
	sh.siftUp(i)
	if len(sh.heap) > sh.maxPending {
		sh.maxPending = len(sh.heap)
	}
}

func (sh *shardRun) removeLocalAt(i int) {
	last := len(sh.heap) - 1
	if i == last {
		sh.heap = sh.heap[:last]
		return
	}
	moved := sh.heap[last]
	sh.heap = sh.heap[:last]
	sh.heap[i] = moved
	sh.setPos(moved.ref, int32(i))
	if p := (i - 1) / 4; i > 0 && lbefore(moved, sh.heap[p]) {
		sh.siftUp(i)
	} else {
		sh.siftDown(i)
	}
}

func (sh *shardRun) siftUp(i int) {
	e := sh.heap[i]
	for i > 0 {
		p := (i - 1) / 4
		if !lbefore(e, sh.heap[p]) {
			break
		}
		sh.heap[i] = sh.heap[p]
		sh.setPos(sh.heap[i].ref, int32(i))
		i = p
	}
	sh.heap[i] = e
	sh.setPos(e.ref, int32(i))
}

func (sh *shardRun) siftDown(i int) {
	e := sh.heap[i]
	n := len(sh.heap)
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if lbefore(sh.heap[j], sh.heap[m]) {
				m = j
			}
		}
		if !lbefore(sh.heap[m], e) {
			break
		}
		sh.heap[i] = sh.heap[m]
		sh.setPos(sh.heap[i].ref, int32(i))
		i = m
	}
	sh.heap[i] = e
	sh.setPos(e.ref, int32(i))
}

// ---- invariants ----

// verify checks the engine's between-window structure: empty window
// heaps and logs, and every live local slot a well-linked shell.
func (e *shardEngine) verify() error {
	if e.window {
		return fmt.Errorf("sim: verify called during an active window")
	}
	b := e.base
	for _, sh := range e.shards {
		if len(sh.heap) != 0 {
			return fmt.Errorf("sim: shard %d window heap not drained (%d entries)", sh.id, len(sh.heap))
		}
		if len(sh.log) != 0 || sh.cursor != 0 {
			return fmt.Errorf("sim: shard %d log not consumed (%d records, cursor %d)", sh.id, len(sh.log), sh.cursor)
		}
		if len(sh.dead) != 0 {
			return fmt.Errorf("sim: shard %d has %d unreaped dead slots", sh.id, len(sh.dead))
		}
		inFree := make(map[int32]bool, len(sh.free))
		for _, idx := range sh.free {
			if idx < 0 || int(idx) >= len(sh.slots) {
				return fmt.Errorf("sim: shard %d free list references slot %d outside pool of %d", sh.id, idx, len(sh.slots))
			}
			if inFree[idx] {
				return fmt.Errorf("sim: shard %d slot %d appears in free list twice", sh.id, idx)
			}
			inFree[idx] = true
			if st := sh.slots[idx].state; st != lsFree {
				return fmt.Errorf("sim: shard %d free slot %d has state %d", sh.id, idx, st)
			}
		}
		live := 0
		for idx := range sh.slots {
			ls := &sh.slots[idx]
			switch ls.state {
			case lsFree:
				if !inFree[int32(idx)] {
					return fmt.Errorf("sim: shard %d slot %d free but not on the free list", sh.id, idx)
				}
			case lsForwarded:
				live++
				bidx := handleIdx(ls.fwd.id)
				if bidx < 0 || int(bidx) >= len(b.slots) {
					return fmt.Errorf("sim: shard %d shell %d forwards outside the base pool", sh.id, idx)
				}
				bsl := &b.slots[bidx]
				if bsl.gen == ls.fwd.gen && bsl.backRef != handleFor(sh.id+1, int32(idx)) {
					return fmt.Errorf("sim: shard %d shell %d and base slot %d disagree on the back-reference", sh.id, idx, bidx)
				}
			default:
				return fmt.Errorf("sim: shard %d slot %d in transient state %d between windows", sh.id, idx, ls.state)
			}
		}
		if live+len(sh.free) != len(sh.slots) {
			return fmt.Errorf("sim: shard %d %d live + %d free != %d slots", sh.id, live, len(sh.free), len(sh.slots))
		}
	}
	return nil
}
