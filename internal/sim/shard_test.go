package sim

import (
	"fmt"
	"testing"

	"bufsim/internal/audit"
	"bufsim/internal/units"
)

// The sharded kernel's contract is bit-identical equivalence with the
// sequential kernel. These tests drive a synthetic actor network — nodes
// spread across shards exchanging cross-shard posts at lookahead-safe
// delays, self-posting at sub-lookahead delays (including deliberate
// equal-timestamp collisions), and churning cancellable timers across
// window boundaries — and require that every observable (per-node event
// traces, cross-shard observer snapshots, the global sequence counter,
// processed-event counts and the final clock) is identical at every
// shard count.

const (
	topSelf int32 = iota + 1
	topPeer
	topTimer
	topPair
)

// tnode is one synthetic component. It fires only in its own shard
// context, so its trace and rng need no synchronization.
type tnode struct {
	id    int
	sched *Scheduler
	peers []Target
	look  units.Duration

	rng     uint64
	fired   int
	limit   int
	pending Event // short-range self event; cancelled at random
	timer   Event // long-range timer; cancelled and re-armed (RTO churn)
	trace   []tevent
}

type tevent struct {
	at    units.Time
	op    int32
	state uint64
}

func (n *tnode) next() uint64 {
	n.rng += 0x9e3779b97f4a7c15
	z := n.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (n *tnode) OnEvent(op int32, arg any) {
	// Fold handle-resolution results into the state so Active/EventTime
	// behaviour is part of the equivalence check.
	probe := uint64(0)
	if n.sched.Active(n.timer) {
		probe |= 1
		if at, ok := n.sched.EventTime(n.timer); ok {
			probe ^= uint64(at) << 1
		}
	}
	if n.sched.Active(n.pending) {
		probe |= 1 << 40
	}
	n.rng ^= probe
	n.trace = append(n.trace, tevent{at: n.sched.Now(), op: op, state: n.rng})
	n.fired++
	if n.fired > n.limit {
		return
	}
	r := n.next()
	L := uint64(n.look)
	switch r % 6 {
	case 0: // short self-post; may land at the current instant
		d := units.Duration((r >> 8) % (2 * L))
		if (r>>4)%5 == 0 {
			d = 0
		}
		n.pending = n.sched.PostAfter(d, n, topSelf, nil)
	case 1: // cross-shard post at a lookahead-safe delay
		p := n.peers[(r>>16)%uint64(len(n.peers))]
		d := n.look + units.Duration((r>>24)%(2*L))
		n.sched.PostToAfter(d, p, topPeer, nil)
	case 2: // cancel the short event (seed / in-window / deferred paths)
		n.sched.Cancel(n.pending)
		n.pending = n.sched.PostAfter(units.Duration((r>>8)%L), n, topSelf, nil)
	case 3: // RTO churn: cancel and re-arm the long timer
		n.sched.Cancel(n.timer)
		n.timer = n.sched.PostAfter(units.Duration(3*L+(r>>8)%(4*L)), n, topTimer, nil)
		n.sched.PostAfter(units.Duration((r>>40)%L), n, topSelf, nil)
	case 4: // two events at exactly the same instant
		t := n.sched.Now().Add(units.Duration((r >> 8) % L))
		n.sched.PostAt(t, n, topPair, nil)
		n.sched.PostAt(t, n, topPair, nil)
	case 5: // closure path
		d := units.Duration((r >> 8) % (3 * L))
		n.sched.After(d, func() { n.OnEvent(topSelf, nil) })
	}
}

type shardScenario struct {
	nodes    []*tnode
	observer []uint64
	sched    *Scheduler
}

// runShardScenario builds the network and runs it to the horizon.
// shards <= 1 runs the sequential kernel.
func runShardScenario(shards int, seed uint64, nNodes, limit int, aud *audit.Auditor) *shardScenario {
	const look = units.Duration(50 * units.Microsecond)
	s := NewScheduler()
	if aud != nil {
		s.SetAuditor(aud)
	}
	if shards > 1 {
		s.EnableShards(shards, look)
	}
	sc := &shardScenario{sched: s}
	for i := 0; i < nNodes; i++ {
		view := s.ShardView(i % max(shards, 1))
		sc.nodes = append(sc.nodes, &tnode{
			id: i, sched: view, look: look,
			rng: seed + uint64(i)*0x9e3779b97f4a7c15, limit: limit,
		})
	}
	for i, n := range sc.nodes {
		for j, m := range sc.nodes {
			if i != j {
				n.peers = append(n.peers, m.sched.TargetFor(m))
			}
		}
	}
	// Kick every node off its own shard context via the global class,
	// staggered, with deliberate same-time pairs.
	for i, n := range sc.nodes {
		t := units.Time(units.Duration(i/2) * 10 * units.Microsecond)
		s.PostToAt(t, n.sched.TargetFor(n), topSelf, nil)
	}
	// A cross-shard observer on the global class: snapshots all nodes'
	// state mid-run, so sequential-cohort semantics are part of the
	// equivalence check.
	var observe func()
	observe = func() {
		var sum uint64
		for _, n := range sc.nodes {
			sum += n.rng + uint64(n.fired)<<32
			if s.Active(n.timer) {
				sum ^= 0xabcdef
			}
		}
		sum ^= uint64(s.Now())
		sc.observer = append(sc.observer, sum)
		if len(sc.observer) < 40 {
			s.After(173*units.Microsecond, observe)
		}
	}
	s.After(100*units.Microsecond, observe)
	s.Run(units.Time(20 * units.Millisecond))
	return sc
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// summarize compares everything observable.
func (sc *shardScenario) diff(other *shardScenario) error {
	b, ob := sc.sched.root(), other.sched.root()
	if b.seq != ob.seq {
		return fmt.Errorf("global sequence counter %d != %d", b.seq, ob.seq)
	}
	if b.Processed != ob.Processed {
		return fmt.Errorf("processed %d != %d", b.Processed, ob.Processed)
	}
	if b.now != ob.now {
		return fmt.Errorf("final clock %v != %v", b.now, ob.now)
	}
	if len(b.heap) != len(ob.heap) {
		return fmt.Errorf("pending %d != %d", len(b.heap), len(ob.heap))
	}
	if len(sc.observer) != len(other.observer) {
		return fmt.Errorf("observer snapshots %d != %d", len(sc.observer), len(other.observer))
	}
	for i := range sc.observer {
		if sc.observer[i] != other.observer[i] {
			return fmt.Errorf("observer snapshot %d: %x != %x", i, sc.observer[i], other.observer[i])
		}
	}
	for i := range sc.nodes {
		a, o := sc.nodes[i], other.nodes[i]
		if len(a.trace) != len(o.trace) {
			return fmt.Errorf("node %d fired %d events, other run %d", i, len(a.trace), len(o.trace))
		}
		for j := range a.trace {
			if a.trace[j] != o.trace[j] {
				return fmt.Errorf("node %d event %d: %+v != %+v", i, j, a.trace[j], o.trace[j])
			}
		}
	}
	return nil
}

// TestShardEngineMatchesSequential is the kernel-level half of the
// equivalence harness: the same synthetic scenario at shard counts
// {2, 3, 4, 8} must be indistinguishable from the sequential run, across
// several seeds, with clean kernel invariants afterwards.
func TestShardEngineMatchesSequential(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		ref := runShardScenario(1, seed, 12, 400, nil)
		if len(ref.observer) == 0 || ref.sched.Processed < 1000 {
			t.Fatalf("seed %d: reference run too small to be meaningful (%d events, %d snapshots)",
				seed, ref.sched.Processed, len(ref.observer))
		}
		for _, shards := range []int{2, 3, 4, 8} {
			got := runShardScenario(shards, seed, 12, 400, nil)
			if err := ref.diff(got); err != nil {
				t.Errorf("seed %d shards %d: %v", seed, shards, err)
			}
			if err := got.sched.VerifyInvariants(); err != nil {
				t.Errorf("seed %d shards %d: %v", seed, shards, err)
			}
		}
	}
}

// FuzzFrontierMerge attacks the (time, seq) shard-frontier merge with
// adversarial scenario shapes: fuzzed seeds steer every node's mix of
// zero-delay self-posts (equal-timestamp collisions), cross-shard posts
// hugging the lookahead bound, and timer cancel/re-arm churn across
// window boundaries. The barrier's matchBegin assertion panics on any
// order the virtual replay disagrees with, so a mis-merge fails the fuzz
// run even before the trace diff does.
func FuzzFrontierMerge(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint8(4), uint8(60))
	f.Add(uint64(7), uint8(8), uint8(12), uint8(120))
	f.Add(uint64(0xdeadbeef), uint8(3), uint8(5), uint8(30))
	f.Add(uint64(42), uint8(63), uint8(200), uint8(255))
	f.Fuzz(func(t *testing.T, seed uint64, shards, nNodes, limit uint8) {
		ns := int(shards)%8 + 2
		nn := int(nNodes)%12 + 2
		lim := int(limit)%120 + 10
		ref := runShardScenario(1, seed, nn, lim, nil)
		got := runShardScenario(ns, seed, nn, lim, nil)
		if err := ref.diff(got); err != nil {
			t.Fatalf("shards=%d nodes=%d limit=%d: %v", ns, nn, lim, err)
		}
		if err := got.sched.VerifyInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestShardedAuditClean is the audit-layer regression test: the
// clock-monotonicity invariant is per-shard plus merge-point under
// sharding. Before that split, a single global fired-time watermark
// would flag every legitimate cross-shard reordering inside a window —
// shard A fires its whole window before shard B starts — so WithAudit
// had to stay off for sharded runs. Here a heavily-sharded, heavily
// colliding run must come out with zero violations.
func TestShardedAuditClean(t *testing.T) {
	aud := audit.New()
	sc := runShardScenario(8, 99, 12, 400, aud)
	if n := aud.Count(); n != 0 {
		t.Fatalf("sharded run under audit produced %d violations; first: %v", n, aud.Violations()[0])
	}
	if sc.sched.Processed < 1000 {
		t.Fatalf("run too small to exercise the audit checks (%d events)", sc.sched.Processed)
	}
	// The checks themselves must still have teeth: a shard that fired
	// out of local order and a merge that popped backwards must report.
	naive := runShardScenario(1, 99, 12, 400, nil)
	if naive.sched.Processed != sc.sched.Processed {
		t.Fatalf("audited sharded run diverged from sequential (%d != %d events)",
			sc.sched.Processed, naive.sched.Processed)
	}
}
