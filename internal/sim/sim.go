// Package sim implements the discrete-event simulation kernel that drives
// everything else: a clock, a pending-event priority queue, and
// cancellable timers.
//
// The kernel is deliberately single-threaded. Determinism matters more for
// a reproduction study than parallel speed: two runs with the same seed
// must schedule, drop and acknowledge exactly the same packets. Events at
// the same instant fire in the order they were scheduled (stable FIFO
// tie-break by sequence number).
//
// # Throughput design
//
// Sweeping the paper's figures means hundreds of packet-level runs, so the
// kernel is built to schedule and fire tens of millions of events per
// second without allocating on the hot path:
//
//   - Events live in a pooled slot array, recycled through a free list.
//     Handles (Event) carry a generation counter, so Cancel on a handle
//     whose slot has been recycled is a safe no-op rather than a
//     use-after-free.
//   - The pending queue is a concrete 4-ary min-heap of inline
//     {time, seq, slot} entries — no interface boxing, no per-node heap
//     allocation, and a shallower tree with better cache locality than
//     container/heap's pointer-based binary heap.
//   - Hot callers schedule typed events (an Actor owner, an opcode, and a
//     pointer-shaped argument) via PostAt/PostAfter instead of closures,
//     so steady-state simulation allocates nothing per event. The
//     closure-based At/After remain for cold paths (experiment setup,
//     sampling) where convenience beats the one closure allocation.
package sim

import (
	"fmt"

	"bufsim/internal/audit"
	"bufsim/internal/metrics"
	"bufsim/internal/units"
)

// Actor receives typed events. Components on the per-packet path (TCP
// senders and receivers, links, traffic generators) implement OnEvent and
// schedule themselves with PostAt/PostAfter; op is an opcode private to
// the actor and arg is the payload it passed when scheduling (typically a
// *packet.Packet or nil — pointer-shaped values avoid boxing).
type Actor interface {
	OnEvent(op int32, arg any)
}

// Event is a handle to a scheduled event, issued by At/After and
// PostAt/PostAfter. It is a small value, not a pointer: the event's
// storage belongs to the scheduler's pool and is recycled after the event
// fires or is cancelled. A stale handle (kept after its event fired) is
// detected by generation counter, so Cancel and Active on it are safe.
// The zero Event is a valid "no event" handle.
type Event struct {
	id  int32  // arena<<arenaShift | slot index + 1; 0 is the zero handle
	gen uint32 // slot generation this handle was issued for
}

// Handle encoding. The low 24 bits carry the slot index + 1 within an
// arena; the bits above select the arena. Arena 0 is the scheduler's own
// pool, so for an unsharded scheduler every handle keeps the historical
// slot+1 form. Arena k+1 is shard k's local pool when sharding is enabled
// (see shard.go). The 24-bit index bounds a sharded run to ~16.7M live
// slots per arena; allocSlot panics past that rather than aliasing.
const (
	arenaShift = 24
	idxMask    = 1<<arenaShift - 1
)

func handleFor(arena, idx int32) int32 { return arena<<arenaShift | (idx + 1) }
func handleArena(id int32) int32       { return id >> arenaShift }
func handleIdx(id int32) int32         { return id&idxMask - 1 }

// slot.pos sentinels. Non-negative pos is the heap index while pending.
// During a parallel window a slot seeded into a shard's local heap stores
// posSeedBase-localIndex (always <= posSeedBase), so the owning shard can
// remove it on cancel; posSeedFired / posSeedCancelled record how the
// seed left the window until the barrier recycles it.
const (
	posFree          int32 = -1
	posSeedFired     int32 = -2
	posSeedCancelled int32 = -3
	posSeedBase      int32 = -10
)

// slot is the pooled storage behind one scheduled event.
type slot struct {
	gen     uint32 // incremented on every recycle; stale handles mismatch
	pos     int32  // index in the heap while pending, else a sentinel above
	op      int32
	shard   int32 // event class: owning shard, or globalClass (sequential)
	backRef int32 // shard-local shell forwarded onto this slot (0 = none)
	defc    bool  // cancelled mid-window; the barrier applies the removal
	actor   Actor
	arg     any
	fn      func()
}

// entry is one pending-queue element. The ordering key (time, then
// scheduling sequence for FIFO ties) is stored inline so heap sifts never
// chase pointers.
type entry struct {
	at   units.Time
	seq  uint64
	slot int32
}

// before reports whether a fires strictly before b.
func before(a, b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Scheduler is the simulation event loop. The zero value is not usable;
// call NewScheduler.
type Scheduler struct {
	now        units.Time
	seq        uint64
	heap       []entry
	slots      []slot
	free       []int32
	maxPending int
	stopped    bool
	aud        *audit.Auditor

	// eng is non-nil once EnableShards has attached the parallel-window
	// engine (shard.go). viewShard distinguishes the base scheduler
	// (globalClass) from the per-shard views the engine issues; a view
	// owns no heap of its own, it only routes through eng. Every public
	// method guards the engine path behind one nil test, so the
	// unsharded hot path is unchanged.
	eng       *shardEngine
	viewShard int32

	// Processed counts the events executed so far; useful for
	// benchmarking the kernel itself.
	Processed uint64
}

// NewScheduler returns a scheduler with the clock at the simulation epoch.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current simulated time: the base clock, or the owning
// shard's local clock while a parallel window is executing.
func (s *Scheduler) Now() units.Time {
	if s.eng != nil {
		return s.eng.nowFor(s.viewShard)
	}
	return s.now
}

// SetAuditor attaches an invariant checker to the kernel: every fired
// event is checked for clock monotonicity (per-shard plus merge-point
// monotonicity when sharding is on) and slot/heap cross-link
// consistency. A nil auditor (the default) disables the checks.
func (s *Scheduler) SetAuditor(a *audit.Auditor) { s.root().aud = a }

// Pending returns the number of events waiting to fire.
func (s *Scheduler) Pending() int { return len(s.root().heap) }

// MaxPending returns the deepest the event heap has been. Under sharding
// this is an approximation (per-shard peaks plus the base backlog), not
// a globally-consistent snapshot.
func (s *Scheduler) MaxPending() int { return s.root().maxPending }

// Active reports whether e refers to an event that is still pending: not
// yet fired, not cancelled, and not a recycled slot now owned by some
// later event. The zero Event is never active.
func (s *Scheduler) Active(e Event) bool {
	if s.eng != nil {
		return s.eng.active(e)
	}
	if e.id == 0 {
		return false
	}
	sl := &s.slots[e.id-1]
	return sl.gen == e.gen && sl.pos >= 0
}

// EventTime returns the instant a pending event is scheduled to fire, and
// whether the handle is still active.
func (s *Scheduler) EventTime(e Event) (units.Time, bool) {
	if s.eng != nil {
		return s.eng.eventTime(e)
	}
	if !s.Active(e) {
		return 0, false
	}
	return s.heap[s.slots[e.id-1].pos].at, true
}

// allocSlot takes a slot from the free list, growing the pool on demand.
func (s *Scheduler) allocSlot() int32 {
	if n := len(s.free); n > 0 {
		id := s.free[n-1]
		s.free = s.free[:n-1]
		return id
	}
	if s.eng != nil && len(s.slots) > idxMask-1 {
		panic("sim: sharded scheduler exhausted its 24-bit slot index space")
	}
	s.slots = append(s.slots, slot{})
	return int32(len(s.slots) - 1)
}

// release recycles a slot: the generation bump invalidates every
// outstanding handle, and clearing the references lets fired payloads be
// collected. A shard-local shell forwarded onto this slot dies with it.
func (s *Scheduler) release(id int32) {
	sl := &s.slots[id]
	sl.gen++
	sl.pos = posFree
	sl.actor = nil
	sl.arg = nil
	sl.fn = nil
	sl.defc = false
	if sl.backRef != 0 {
		s.eng.releaseShell(sl.backRef)
		sl.backRef = 0
	}
	s.free = append(s.free, id)
}

// schedule is the shared path behind At/After/PostAt/PostAfter.
// Scheduling in the past panics: it always indicates a logic error in a
// component, and silently reordering time would corrupt every downstream
// measurement.
func (s *Scheduler) schedule(t units.Time, fn func(), a Actor, op int32, arg any) Event {
	if s.eng != nil {
		return s.eng.scheduleFrom(s.viewShard, t, fn, a, op, arg, s.viewShard)
	}
	return s.scheduleBase(t, fn, a, op, arg, globalClass)
}

// scheduleBase inserts into the base heap with the next global sequence
// number, stamping the slot with its event class. It runs only in
// sequential contexts (unsharded runs, setup code between Run calls, and
// the engine's sequential cohorts) — never inside a parallel window.
func (s *Scheduler) scheduleBase(t units.Time, fn func(), a Actor, op int32, arg any, shard int32) Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	id := s.allocSlot()
	sl := &s.slots[id]
	sl.fn = fn
	sl.actor = a
	sl.op = op
	sl.arg = arg
	sl.shard = shard
	i := len(s.heap)
	s.heap = append(s.heap, entry{at: t, seq: s.seq, slot: id})
	s.seq++
	s.siftUp(i)
	if len(s.heap) > s.maxPending {
		s.maxPending = len(s.heap)
	}
	if shard == globalClass && s.eng != nil {
		s.eng.noteGlobal(t, id, sl.gen)
	}
	return Event{id: id + 1, gen: sl.gen}
}

// At schedules fn to run at the absolute time t.
func (s *Scheduler) At(t units.Time, fn func()) Event {
	return s.schedule(t, fn, nil, 0, nil)
}

// After schedules fn to run d from now.
func (s *Scheduler) After(d units.Duration, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.schedule(s.Now().Add(d), fn, nil, 0, nil)
}

// PostAt schedules a typed event: at time t the kernel calls
// a.OnEvent(op, arg). This is the allocation-free path hot components use
// instead of closures.
func (s *Scheduler) PostAt(t units.Time, a Actor, op int32, arg any) Event {
	return s.schedule(t, nil, a, op, arg)
}

// PostAfter schedules a typed event d from now.
func (s *Scheduler) PostAfter(d units.Duration, a Actor, op int32, arg any) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.schedule(s.Now().Add(d), nil, a, op, arg)
}

// Cancel removes a pending event. Cancelling the zero handle, an event
// that already fired, one already cancelled, or a handle whose slot has
// been recycled by a later event is a no-op, so callers can cancel
// unconditionally.
func (s *Scheduler) Cancel(e Event) {
	if s.eng != nil {
		s.eng.cancel(s.viewShard, e)
		return
	}
	if e.id == 0 {
		return
	}
	s.cancelBase(e.id-1, e.gen)
}

// cancelBase removes a pending arena-0 event by slot index if the handle
// generation still matches. It is the legacy cancel body, shared with the
// engine's barrier (which resolves forwarded handles down to base slots).
func (s *Scheduler) cancelBase(id int32, gen uint32) {
	sl := &s.slots[id]
	if sl.gen != gen || sl.pos < 0 {
		return
	}
	s.removeAt(int(sl.pos))
	s.release(id)
}

// Reschedule cancels e (if pending) and schedules fn at t, returning the
// new event. It is the common pattern for retransmission timers.
func (s *Scheduler) Reschedule(e Event, t units.Time, fn func()) Event {
	s.Cancel(e)
	return s.At(t, fn)
}

// removeAt deletes the heap entry at index i, restoring heap order.
func (s *Scheduler) removeAt(i int) {
	last := len(s.heap) - 1
	if i == last {
		s.heap = s.heap[:last]
		return
	}
	moved := s.heap[last]
	s.heap = s.heap[:last]
	s.heap[i] = moved
	s.slots[moved.slot].pos = int32(i)
	if p := (i - 1) / 4; i > 0 && before(moved, s.heap[p]) {
		s.siftUp(i)
	} else {
		s.siftDown(i)
	}
}

// siftUp restores heap order from index i toward the root.
func (s *Scheduler) siftUp(i int) {
	e := s.heap[i]
	for i > 0 {
		p := (i - 1) / 4
		if !before(e, s.heap[p]) {
			break
		}
		s.heap[i] = s.heap[p]
		s.slots[s.heap[i].slot].pos = int32(i)
		i = p
	}
	s.heap[i] = e
	s.slots[e.slot].pos = int32(i)
}

// siftDown restores heap order from index i toward the leaves.
func (s *Scheduler) siftDown(i int) {
	e := s.heap[i]
	n := len(s.heap)
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if before(s.heap[j], s.heap[m]) {
				m = j
			}
		}
		if !before(s.heap[m], e) {
			break
		}
		s.heap[i] = s.heap[m]
		s.slots[s.heap[i].slot].pos = int32(i)
		i = m
	}
	s.heap[i] = e
	s.slots[e.slot].pos = int32(i)
}

// popRoot removes and returns the heap minimum, restoring heap order.
func (s *Scheduler) popRoot() entry {
	top := s.heap[0]
	last := len(s.heap) - 1
	if last > 0 {
		moved := s.heap[last]
		s.heap = s.heap[:last]
		s.heap[0] = moved
		s.slots[moved.slot].pos = 0
		s.siftDown(0)
	} else {
		s.heap = s.heap[:0]
	}
	return top
}

// fire pops the earliest event, advances the clock and dispatches it. The
// slot is recycled before dispatch, so the handler is free to schedule
// (possibly reusing the very slot that just fired).
func (s *Scheduler) fire() {
	top := s.heap[0]
	if s.aud != nil {
		if top.at < s.now {
			s.aud.Violationf(s.now, "sim", "clock-monotonic",
				"event at %v fires after clock reached %v", top.at, s.now)
		}
		if sl := &s.slots[top.slot]; sl.pos != 0 {
			s.aud.Violationf(s.now, "sim", "slot-heap-link",
				"heap root references slot %d with pos %d (stale or recycled slot about to fire)", top.slot, sl.pos)
		}
	}
	s.popRoot()
	sl := &s.slots[top.slot]
	fn, actor, op, arg := sl.fn, sl.actor, sl.op, sl.arg
	s.release(top.slot)
	s.now = top.at
	s.Processed++
	if actor != nil {
		actor.OnEvent(op, arg)
	} else {
		fn()
	}
}

// Instrument registers the kernel's telemetry into reg: events processed,
// current and peak heap depth, and the simulated clock. Values are
// published by a snapshot-time collector, so instrumentation adds no
// per-event work and cannot perturb scheduling. A nil registry is a no-op.
func (s *Scheduler) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	r := s.root()
	events := reg.Counter("sim.events_processed")
	depth := reg.Gauge("sim.heap_depth")
	depthMax := reg.Gauge("sim.heap_depth_max")
	clock := reg.Gauge("sim.time_seconds")
	reg.OnCollect(func() {
		events.Set(int64(r.Processed))
		depth.Set(float64(len(r.heap)))
		depthMax.Set(float64(r.maxPending))
		clock.Set(r.now.Seconds())
	})
}

// Stop makes Run return after the event currently executing completes.
// Under sharding the granularity is one window: the current window
// finishes and merges before Run returns.
func (s *Scheduler) Stop() {
	if s.eng != nil {
		s.eng.base.stopped = true
		return
	}
	s.stopped = true
}

// Run executes events in order until the clock would pass `until`, no
// events remain, or Stop is called. The clock is left at `until` (or at
// the last event time if the queue drained first and that is earlier).
func (s *Scheduler) Run(until units.Time) {
	if s.eng != nil {
		if s.viewShard != globalClass {
			panic("sim: Run called on a shard view")
		}
		s.eng.run(until)
		return
	}
	s.stopped = false
	for len(s.heap) > 0 && !s.stopped {
		if s.heap[0].at > until {
			break
		}
		s.fire()
	}
	if !s.stopped && s.now < until {
		s.now = until
	}
}

// Step executes exactly one event if any is pending and returns whether an
// event was executed. Useful in tests. Not available under sharding,
// where execution advances a window at a time.
func (s *Scheduler) Step() bool {
	if s.eng != nil {
		panic("sim: Step is not available on a sharded scheduler")
	}
	if len(s.heap) == 0 {
		return false
	}
	s.fire()
	return true
}

// VerifyInvariants exhaustively checks the kernel's internal structure:
// heap order, heap-entry/slot cross-links, free-list consistency, and
// that no slot is both pending and free. It is O(pool size) and meant for
// tests and the fuzz harness, not the hot path. It returns the first
// problem found, or nil.
func (s *Scheduler) VerifyInvariants() error {
	for i := 1; i < len(s.heap); i++ {
		p := (i - 1) / 4
		if before(s.heap[i], s.heap[p]) {
			return fmt.Errorf("sim: heap order violated at index %d: child (at=%v seq=%d) before parent (at=%v seq=%d)",
				i, s.heap[i].at, s.heap[i].seq, s.heap[p].at, s.heap[p].seq)
		}
	}
	inHeap := make(map[int32]int, len(s.heap))
	for i, e := range s.heap {
		if e.at < s.now {
			return fmt.Errorf("sim: pending event at %v is before now %v", e.at, s.now)
		}
		if e.slot < 0 || int(e.slot) >= len(s.slots) {
			return fmt.Errorf("sim: heap index %d references slot %d outside pool of %d", i, e.slot, len(s.slots))
		}
		if prev, dup := inHeap[e.slot]; dup {
			return fmt.Errorf("sim: slot %d appears in heap twice (indexes %d and %d)", e.slot, prev, i)
		}
		inHeap[e.slot] = i
		if got := s.slots[e.slot].pos; got != int32(i) {
			return fmt.Errorf("sim: slot %d at heap index %d records pos %d", e.slot, i, got)
		}
	}
	inFree := make(map[int32]bool, len(s.free))
	for _, id := range s.free {
		if id < 0 || int(id) >= len(s.slots) {
			return fmt.Errorf("sim: free list references slot %d outside pool of %d", id, len(s.slots))
		}
		if inFree[id] {
			return fmt.Errorf("sim: slot %d appears in free list twice", id)
		}
		inFree[id] = true
		if _, pending := inHeap[id]; pending {
			return fmt.Errorf("sim: slot %d is both pending and free", id)
		}
		if got := s.slots[id].pos; got != -1 {
			return fmt.Errorf("sim: free slot %d records pos %d", id, got)
		}
	}
	if len(s.heap)+len(s.free) != len(s.slots) {
		return fmt.Errorf("sim: %d pending + %d free != %d slots", len(s.heap), len(s.free), len(s.slots))
	}
	if s.eng != nil {
		return s.eng.verify()
	}
	return nil
}
