// Package sim implements the discrete-event simulation kernel that drives
// everything else: a clock, a pending-event heap, and cancellable timers.
//
// The kernel is deliberately single-threaded. Determinism matters more for
// a reproduction study than parallel speed: two runs with the same seed
// must schedule, drop and acknowledge exactly the same packets. Events at
// the same instant fire in the order they were scheduled (stable FIFO
// tie-break by sequence number).
package sim

import (
	"container/heap"
	"fmt"

	"bufsim/internal/metrics"
	"bufsim/internal/units"
)

// Event is a scheduled callback. The zero value is invalid; events are
// created through Scheduler.At / Scheduler.After.
type Event struct {
	at    units.Time
	seq   uint64
	index int // position in the heap, -1 once fired or cancelled
	fn    func()
}

// Time returns the instant at which the event (is|was) scheduled to fire.
func (e *Event) Time() units.Time { return e.at }

// Cancelled reports whether the event has already fired or been cancelled.
func (e *Event) Cancelled() bool { return e.index < 0 }

// eventHeap orders events by time, then by scheduling sequence so that
// simultaneous events fire in FIFO order.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Scheduler is the simulation event loop. The zero value is not usable;
// call NewScheduler.
type Scheduler struct {
	now        units.Time
	seq        uint64
	pending    eventHeap
	maxPending int
	stopped    bool

	// Processed counts the events executed so far; useful for
	// benchmarking the kernel itself.
	Processed uint64
}

// NewScheduler returns a scheduler with the clock at the simulation epoch.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current simulated time.
func (s *Scheduler) Now() units.Time { return s.now }

// Pending returns the number of events waiting to fire.
func (s *Scheduler) Pending() int { return len(s.pending) }

// At schedules fn to run at the absolute time t. Scheduling in the past
// panics: it always indicates a logic error in a component, and silently
// reordering time would corrupt every downstream measurement.
func (s *Scheduler) At(t units.Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	e := &Event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.pending, e)
	if len(s.pending) > s.maxPending {
		s.maxPending = len(s.pending)
	}
	return e
}

// MaxPending returns the deepest the event heap has been.
func (s *Scheduler) MaxPending() int { return s.maxPending }

// Instrument registers the kernel's telemetry into reg: events processed,
// current and peak heap depth, and the simulated clock. Values are
// published by a snapshot-time collector, so instrumentation adds no
// per-event work and cannot perturb scheduling. A nil registry is a no-op.
func (s *Scheduler) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	events := reg.Counter("sim.events_processed")
	depth := reg.Gauge("sim.heap_depth")
	depthMax := reg.Gauge("sim.heap_depth_max")
	clock := reg.Gauge("sim.time_seconds")
	reg.OnCollect(func() {
		events.Set(int64(s.Processed))
		depth.Set(float64(len(s.pending)))
		depthMax.Set(float64(s.maxPending))
		clock.Set(s.now.Seconds())
	})
}

// After schedules fn to run d from now.
func (s *Scheduler) After(d units.Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now.Add(d), fn)
}

// Cancel removes a pending event. Cancelling an event that already fired
// or was already cancelled is a no-op, so callers can cancel
// unconditionally.
func (s *Scheduler) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	heap.Remove(&s.pending, e.index)
	e.fn = nil
}

// Reschedule cancels e (if pending) and schedules fn at t, returning the
// new event. It is the common pattern for retransmission timers.
func (s *Scheduler) Reschedule(e *Event, t units.Time, fn func()) *Event {
	s.Cancel(e)
	return s.At(t, fn)
}

// Stop makes Run return after the event currently executing completes.
func (s *Scheduler) Stop() { s.stopped = true }

// Run executes events in order until the clock would pass `until`, no
// events remain, or Stop is called. The clock is left at `until` (or at
// the last event time if the queue drained first and that is earlier).
func (s *Scheduler) Run(until units.Time) {
	s.stopped = false
	for len(s.pending) > 0 && !s.stopped {
		next := s.pending[0]
		if next.at > until {
			break
		}
		heap.Pop(&s.pending)
		s.now = next.at
		fn := next.fn
		next.fn = nil
		s.Processed++
		fn()
	}
	if !s.stopped && s.now < until {
		s.now = until
	}
}

// Step executes exactly one event if any is pending and returns whether an
// event was executed. Useful in tests.
func (s *Scheduler) Step() bool {
	if len(s.pending) == 0 {
		return false
	}
	e := heap.Pop(&s.pending).(*Event)
	s.now = e.at
	fn := e.fn
	e.fn = nil
	s.Processed++
	fn()
	return true
}
