package sim

import (
	"math"
	"math/rand"
)

// RNG wraps a deterministic pseudo-random source with the distributions the
// workload generators need. Each component takes its own stream (via Fork)
// so that adding randomness to one component does not perturb another —
// a property ns-2 users rely on when comparing scenarios.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent stream from this one. The derived stream is a
// pure function of the parent's state, so a simulation seeded once is fully
// reproducible regardless of how many components fork streams, as long as
// the fork order is deterministic (it is: component construction order).
func (g *RNG) Fork() *RNG {
	return NewRNG(g.r.Int63())
}

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform value in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Uniform returns a uniform value in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Exp returns an exponentially distributed value with the given mean.
// It is the inter-arrival time distribution of a Poisson process.
func (g *RNG) Exp(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// Normal returns a normally distributed value.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// Pareto returns a value from a Pareto distribution with the given shape
// (alpha) and scale (minimum value). For alpha <= 1 the mean is infinite;
// workloads use BoundedPareto instead so that the offered load is finite.
func (g *RNG) Pareto(shape, scale float64) float64 {
	u := g.r.Float64()
	for u == 0 {
		u = g.r.Float64()
	}
	return scale / math.Pow(u, 1/shape)
}

// BoundedPareto returns a value from a Pareto distribution truncated to
// [lo, hi] by inverse-CDF sampling, preserving the heavy tail below the
// bound. Flow-size distributions in the paper's "production mix" are
// heavy-tailed; bounding keeps E[X] and E[X^2] finite so the load can be
// controlled.
func (g *RNG) BoundedPareto(shape, lo, hi float64) float64 {
	if lo >= hi {
		return lo
	}
	u := g.r.Float64()
	la := math.Pow(lo, shape)
	ha := math.Pow(hi, shape)
	// Inverse CDF of the truncated Pareto.
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/shape)
	return math.Min(math.Max(x, lo), hi)
}

// Geometric returns a geometrically distributed value in {1, 2, ...} with
// the given mean (mean must be >= 1).
func (g *RNG) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	u := g.r.Float64()
	for u == 0 {
		u = g.r.Float64()
	}
	return 1 + int(math.Log(u)/math.Log(1-p))
}

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }
