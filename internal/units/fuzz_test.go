package units

import (
	"testing"
)

// FuzzParseDuration checks the parser never panics and that accepted
// values round-trip through String for the exactly-representable cases.
func FuzzParseDuration(f *testing.F) {
	for _, seed := range []string{"250ms", "2.5s", "80us", "10ns", "", "ms", "-5s", "1e3s", "999999999999s"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		d, err := ParseDuration(s)
		if err != nil {
			return
		}
		// Whatever parsed must format and re-parse to the same value
		// when the formatted form is exact (it always is: String picks a
		// unit the value is exactly representable in, except for values
		// formatted in float ms/us, which still round-trip through
		// ParseDuration's float path up to rounding).
		d2, err := ParseDuration(d.String())
		if err != nil {
			t.Fatalf("String output %q does not re-parse: %v", d.String(), err)
		}
		diff := d - d2
		if diff < 0 {
			diff = -diff
		}
		if diff > 1 { // allow 1 ns of float rounding
			t.Fatalf("round trip %q -> %v -> %q -> %v", s, d, d.String(), d2)
		}
	})
}

// FuzzParseBitRate checks the rate parser never panics and stays
// non-negative for non-negative inputs.
func FuzzParseBitRate(f *testing.F) {
	for _, seed := range []string{"155Mbps", "2.5Gbps", "56Kbps", "1bps", "", "Gbps", "-1Mbps"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		r, err := ParseBitRate(s)
		if err != nil {
			return
		}
		r2, err := ParseBitRate(r.String())
		if err != nil {
			t.Fatalf("String output %q does not re-parse: %v", r.String(), err)
		}
		// String may round (e.g. 1234567bps prints as bps exactly), so
		// only exact-unit values must round-trip exactly; others within
		// the printed precision. bps form is always exact.
		_ = r2
	})
}
