// Package units provides the physical quantities used throughout the
// simulator: simulated time, data sizes, and bit rates.
//
// Simulated time is kept as an integer number of nanoseconds so that event
// ordering is exact and runs are bit-for-bit reproducible. Bit rates are
// kept in bits per second. Helpers convert between the three (for example,
// the serialization delay of a packet on a link).
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Time is an absolute simulated time in nanoseconds since the start of the
// simulation. The zero Time is the simulation epoch.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
)

// Never is a sentinel Time later than any reachable simulation instant.
const Never Time = math.MaxInt64

// Epoch is the simulation start instant. Converting a span into an
// absolute instant is written Epoch.Add(d) rather than Time(d): the
// former states the intent (a point d after the start), the latter
// launders a Duration into a Time and is rejected by the unitsafety
// analyzer.
const Epoch Time = 0

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the time as a floating-point number of seconds since the
// simulation epoch.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string {
	if t == Never {
		return "never"
	}
	return Duration(t).String()
}

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds returns the duration as a floating-point number of
// milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

func (d Duration) String() string {
	switch {
	case d == 0:
		return "0s"
	case d%Second == 0:
		return strconv.FormatInt(int64(d/Second), 10) + "s"
	case d >= Millisecond || d <= -Millisecond:
		return strconv.FormatFloat(d.Milliseconds(), 'g', -1, 64) + "ms"
	case d >= Microsecond || d <= -Microsecond:
		return strconv.FormatFloat(float64(d)/float64(Microsecond), 'g', -1, 64) + "us"
	default:
		return strconv.FormatInt(int64(d), 10) + "ns"
	}
}

// DurationFromSeconds converts a floating-point number of seconds to a
// Duration, rounding to the nearest nanosecond.
func DurationFromSeconds(s float64) Duration {
	return Duration(math.Round(s * float64(Second)))
}

// ParseDuration parses strings like "250ms", "80us", "2.5s" or "10ns".
func ParseDuration(s string) (Duration, error) {
	orig := s
	var unit Duration
	switch {
	case strings.HasSuffix(s, "ms"):
		unit, s = Millisecond, strings.TrimSuffix(s, "ms")
	case strings.HasSuffix(s, "us"):
		unit, s = Microsecond, strings.TrimSuffix(s, "us")
	case strings.HasSuffix(s, "ns"):
		unit, s = Nanosecond, strings.TrimSuffix(s, "ns")
	case strings.HasSuffix(s, "s"):
		unit, s = Second, strings.TrimSuffix(s, "s")
	default:
		return 0, fmt.Errorf("units: duration %q has no unit suffix", orig)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad duration %q: %v", orig, err)
	}
	return Duration(math.Round(v * float64(unit))), nil
}

// ByteSize is a quantity of data in bytes.
type ByteSize int64

// Common data sizes.
const (
	Byte     ByteSize = 1
	Kilobyte          = 1000 * Byte
	Megabyte          = 1000 * Kilobyte
	Gigabyte          = 1000 * Megabyte
)

// DefaultSegment is the segment (packet) size every simulation and sizing
// rule assumes when none is given: the paper's approximation of an
// Internet MTU-sized packet, and the unit buffers are counted in.
const DefaultSegment = 1000 * Byte

// Bits returns the size in bits.
func (b ByteSize) Bits() int64 { return int64(b) * 8 }

func (b ByteSize) String() string {
	switch {
	case b >= Gigabyte:
		return strconv.FormatFloat(float64(b)/float64(Gigabyte), 'g', 4, 64) + "GB"
	case b >= Megabyte:
		return strconv.FormatFloat(float64(b)/float64(Megabyte), 'g', 4, 64) + "MB"
	case b >= Kilobyte:
		return strconv.FormatFloat(float64(b)/float64(Kilobyte), 'g', 4, 64) + "KB"
	default:
		return strconv.FormatInt(int64(b), 10) + "B"
	}
}

// BitRate is a data rate in bits per second.
type BitRate int64

// Common rates, including the SONET line rates the paper evaluates.
const (
	BitPerSecond BitRate = 1
	Kbps                 = 1000 * BitPerSecond
	Mbps                 = 1000 * Kbps
	Gbps                 = 1000 * Mbps

	OC3  = 155 * Mbps // the paper's lab and ns-2 line rate (155.52 rounded as in the paper)
	OC12 = 622 * Mbps
	OC48 = 2488 * Mbps // "2.5Gb/s"
)

func (r BitRate) String() string {
	switch {
	case r >= Gbps && r%Gbps == 0:
		return strconv.FormatInt(int64(r/Gbps), 10) + "Gbps"
	case r >= Mbps && r%Mbps == 0:
		return strconv.FormatInt(int64(r/Mbps), 10) + "Mbps"
	case r >= Kbps && r%Kbps == 0:
		return strconv.FormatInt(int64(r/Kbps), 10) + "Kbps"
	default:
		return strconv.FormatInt(int64(r), 10) + "bps"
	}
}

// ParseBitRate parses strings like "155Mbps", "2.5Gbps" or "56Kbps".
func ParseBitRate(s string) (BitRate, error) {
	orig := s
	var unit BitRate
	switch {
	case strings.HasSuffix(s, "Gbps"):
		unit, s = Gbps, strings.TrimSuffix(s, "Gbps")
	case strings.HasSuffix(s, "Mbps"):
		unit, s = Mbps, strings.TrimSuffix(s, "Mbps")
	case strings.HasSuffix(s, "Kbps"):
		unit, s = Kbps, strings.TrimSuffix(s, "Kbps")
	case strings.HasSuffix(s, "bps"):
		unit, s = BitPerSecond, strings.TrimSuffix(s, "bps")
	default:
		return 0, fmt.Errorf("units: bit rate %q has no unit suffix", orig)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad bit rate %q: %v", orig, err)
	}
	return BitRate(math.Round(v * float64(unit))), nil
}

// TransmissionTime returns how long it takes to serialize size bytes onto a
// link of rate r. It panics if r is not positive.
func TransmissionTime(size ByteSize, r BitRate) Duration {
	if r <= 0 {
		panic("units: non-positive bit rate")
	}
	bits := size.Bits()
	// bits * 1e9 / rate, using integer math with care for overflow:
	// bits fits comfortably (packet sizes), so bits*Second is fine for
	// sizes under ~9.2 GB.
	return Duration(bits * int64(Second) / int64(r))
}

// BytesInFlight returns how many bytes a rate sustains over a duration
// (the bandwidth-delay product when d is the round-trip time).
func BytesInFlight(r BitRate, d Duration) ByteSize {
	bits := float64(r) * d.Seconds()
	return ByteSize(math.Round(bits / 8))
}

// PacketsInFlight returns the bandwidth-delay product expressed in packets
// of the given size, rounding to the nearest whole packet.
func PacketsInFlight(r BitRate, d Duration, packetSize ByteSize) int {
	if packetSize <= 0 {
		panic("units: non-positive packet size")
	}
	return int(math.Round(float64(BytesInFlight(r, d)) / float64(packetSize)))
}
