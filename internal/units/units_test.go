package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeAddSub(t *testing.T) {
	t0 := Time(0)
	t1 := t0.Add(250 * Millisecond)
	if got := t1.Sub(t0); got != 250*Millisecond {
		t.Errorf("Sub = %v, want 250ms", got)
	}
	if got := t1.Seconds(); got != 0.25 {
		t.Errorf("Seconds = %v, want 0.25", got)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{0, "0s"},
		{Second, "1s"},
		{250 * Millisecond, "250ms"},
		{80 * Microsecond, "80us"},
		{5 * Nanosecond, "5ns"},
		{2 * Second, "2s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestParseDuration(t *testing.T) {
	cases := []struct {
		in   string
		want Duration
	}{
		{"250ms", 250 * Millisecond},
		{"2.5s", 2500 * Millisecond},
		{"80us", 80 * Microsecond},
		{"10ns", 10 * Nanosecond},
		{"0.08s", 80 * Millisecond},
	}
	for _, c := range cases {
		got, err := ParseDuration(c.in)
		if err != nil {
			t.Errorf("ParseDuration(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseDuration(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "10", "fast", "10sec"} {
		if _, err := ParseDuration(bad); err == nil {
			t.Errorf("ParseDuration(%q): want error", bad)
		}
	}
}

func TestParseBitRate(t *testing.T) {
	cases := []struct {
		in   string
		want BitRate
	}{
		{"155Mbps", OC3},
		{"2.5Gbps", 2500 * Mbps},
		{"56Kbps", 56 * Kbps},
		{"1000bps", 1000},
	}
	for _, c := range cases {
		got, err := ParseBitRate(c.in)
		if err != nil {
			t.Errorf("ParseBitRate(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseBitRate(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if _, err := ParseBitRate("10"); err == nil {
		t.Error("ParseBitRate(10): want error")
	}
}

func TestTransmissionTime(t *testing.T) {
	// A 1000-byte packet on a 10 Mb/s link takes 800 us.
	if got := TransmissionTime(1000, 10*Mbps); got != 800*Microsecond {
		t.Errorf("TransmissionTime = %v, want 800us", got)
	}
	// A 40-byte packet at 40 Gb/s takes 8 ns (the paper's §1.3 example).
	if got := TransmissionTime(40, 40*Gbps); got != 8*Nanosecond {
		t.Errorf("TransmissionTime = %v, want 8ns", got)
	}
}

func TestBandwidthDelayProduct(t *testing.T) {
	// The paper's headline example: 250 ms x 10 Gb/s = 2.5 Gbit = 312.5 MB.
	got := BytesInFlight(10*Gbps, 250*Millisecond)
	if got != 312500000 {
		t.Errorf("BytesInFlight = %d, want 312500000", got)
	}
	// OC3 with 100 ms RTT and 1000-byte packets: about 1937 packets,
	// close to the paper's 1291 value for their RTT/packet-size choice.
	pkts := PacketsInFlight(OC3, 100*Millisecond, 1500)
	if pkts != 1292 {
		t.Errorf("PacketsInFlight = %d, want 1292", pkts)
	}
}

func TestTransmissionTimeProperty(t *testing.T) {
	// Transmission time is monotone in size and antitone in rate.
	f := func(size uint16, rate uint32) bool {
		s := ByteSize(size%9000 + 40)
		r := BitRate(rate%1000+1) * Mbps
		t1 := TransmissionTime(s, r)
		t2 := TransmissionTime(s+100, r)
		t3 := TransmissionTime(s, r+Mbps)
		return t2 >= t1 && t3 <= t1 && t1 > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDurationFromSeconds(t *testing.T) {
	if got := DurationFromSeconds(0.25); got != 250*Millisecond {
		t.Errorf("DurationFromSeconds(0.25) = %v", got)
	}
	if got := DurationFromSeconds(1e-9); got != Nanosecond {
		t.Errorf("DurationFromSeconds(1e-9) = %v", got)
	}
}

func TestByteSizeString(t *testing.T) {
	cases := []struct {
		b    ByteSize
		want string
	}{
		{500, "500B"},
		{2 * Kilobyte, "2KB"},
		{3 * Megabyte, "3MB"},
		{Gigabyte, "1GB"},
	}
	for _, c := range cases {
		if got := c.b.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.b), got, c.want)
		}
	}
}

func TestBitRateString(t *testing.T) {
	cases := []struct {
		r    BitRate
		want string
	}{
		{OC3, "155Mbps"},
		{10 * Gbps, "10Gbps"},
		{56 * Kbps, "56Kbps"},
		{999, "999bps"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.r), got, c.want)
		}
	}
}

func TestRoundTripParseFormat(t *testing.T) {
	f := func(ms uint16) bool {
		d := Duration(ms) * Millisecond
		parsed, err := ParseDuration(d.String())
		return err == nil && parsed == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransmissionTimePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("TransmissionTime(_, 0) did not panic")
		}
	}()
	TransmissionTime(1000, 0)
}

func TestNever(t *testing.T) {
	if Never.String() != "never" {
		t.Errorf("Never.String() = %q", Never.String())
	}
	if Never <= Time(math.MaxInt64-1) {
		t.Error("Never should be the maximum Time")
	}
}
