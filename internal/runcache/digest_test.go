package runcache

import "testing"

// abOrder and baOrder declare the same fields in opposite source order;
// the canonical digest must not see the difference.
type abOrder struct {
	Alpha int
	Beta  string
	Gamma float64
}

type baOrder struct {
	Gamma float64
	Beta  string
	Alpha int
}

func TestKeyFieldOrderIndependence(t *testing.T) {
	a := Key("s", "k", abOrder{Alpha: 3, Beta: "x", Gamma: 1.5})
	b := Key("s", "k", baOrder{Alpha: 3, Beta: "x", Gamma: 1.5})
	if a != b {
		t.Fatalf("field order changed the digest: %s vs %s", a, b)
	}
}

func TestKeyZeroValueVsAbsent(t *testing.T) {
	type opt struct {
		N     int
		Tags  []string
		Extra map[string]int
		Ptr   *int
	}
	// nil slice/map/pointer must digest like their empty/zero forms,
	// so "option not set" and "option explicitly zero" share an entry.
	zero := Key("s", "k", opt{})
	explicit := Key("s", "k", opt{Tags: []string{}, Extra: map[string]int{}})
	if zero != explicit {
		t.Fatalf("nil vs empty collections changed the digest")
	}
	v := 0
	if Key("s", "k", opt{Ptr: &v}) != zero {
		t.Fatalf("pointer to zero should digest like the zero value")
	}
	v = 7
	if Key("s", "k", opt{Ptr: &v}) == zero {
		t.Fatalf("pointer to non-zero must change the digest")
	}
}

func TestKeySemanticFieldsChangeDigest(t *testing.T) {
	type cfg struct {
		Seed  int64
		Rate  float64
		Label string
		On    bool
		List  []int
	}
	base := cfg{Seed: 1, Rate: 2.5, Label: "a", On: false, List: []int{1, 2}}
	want := Key("s", "k", base)
	perturbed := []cfg{
		{Seed: 2, Rate: 2.5, Label: "a", List: []int{1, 2}},
		{Seed: 1, Rate: 2.6, Label: "a", List: []int{1, 2}},
		{Seed: 1, Rate: 2.5, Label: "b", List: []int{1, 2}},
		{Seed: 1, Rate: 2.5, Label: "a", On: true, List: []int{1, 2}},
		{Seed: 1, Rate: 2.5, Label: "a", List: []int{1, 3}},
		{Seed: 1, Rate: 2.5, Label: "a", List: []int{1, 2, 3}},
	}
	for i, p := range perturbed {
		if Key("s", "k", p) == want {
			t.Errorf("perturbation %d did not change the digest: %+v", i, p)
		}
	}
}

func TestKeySaltAndKindChangeDigest(t *testing.T) {
	cfg := abOrder{Alpha: 1}
	base := Key("s1", "k1", cfg)
	if Key("s2", "k1", cfg) == base {
		t.Fatalf("salt did not change the digest")
	}
	if Key("s1", "k2", cfg) == base {
		t.Fatalf("kind did not change the digest")
	}
}

type sizer interface{ Mean() float64 }

type fixedSizer float64
type geomSizer float64

func (f fixedSizer) Mean() float64 { return float64(f) }
func (g geomSizer) Mean() float64  { return float64(g) }

func TestKeyInterfaceConcreteType(t *testing.T) {
	type cfg struct{ Dist sizer }
	a := Key("s", "k", cfg{Dist: fixedSizer(4)})
	b := Key("s", "k", cfg{Dist: geomSizer(4)})
	if a == b {
		t.Fatalf("different concrete types behind an interface digested identically")
	}
	if Key("s", "k", cfg{Dist: fixedSizer(4)}) != a {
		t.Fatalf("digest not deterministic for interface values")
	}
	if Key("s", "k", cfg{}) == a {
		t.Fatalf("nil interface digested like a concrete value")
	}
}

func TestKeyIgnoreFields(t *testing.T) {
	type cfg struct {
		Seed        int64
		Parallelism int
	}
	ignore := IgnoreFields("Parallelism")
	a := Key("s", "k", cfg{Seed: 1, Parallelism: 0}, ignore)
	b := Key("s", "k", cfg{Seed: 1, Parallelism: 16}, ignore)
	if a != b {
		t.Fatalf("ignored field changed the digest")
	}
	if Key("s", "k", cfg{Seed: 2}, ignore) == a {
		t.Fatalf("semantic field no longer changes the digest")
	}
}

func TestKeyMapOrderIndependence(t *testing.T) {
	type cfg struct{ M map[string]int }
	a := Key("s", "k", cfg{M: map[string]int{"x": 1, "y": 2, "z": 3}})
	for i := 0; i < 10; i++ {
		if Key("s", "k", cfg{M: map[string]int{"z": 3, "y": 2, "x": 1}}) != a {
			t.Fatalf("map iteration order leaked into the digest")
		}
	}
}

func TestKeyUnsupportedKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic digesting a func-typed slice element")
		}
	}()
	Key("s", "k", []func(){func() {}})
}
