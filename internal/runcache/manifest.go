package runcache

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// SweepManifest checkpoints the progress of one sweep: which point
// indices have completed. The orchestrator writes it after every
// finished point, so an interrupted sweep restarted with Resume can
// report how far the previous run got (the results themselves come back
// via cache hits — the manifest is progress metadata, not data).
//
// A nil *SweepManifest is valid and inert, so callers without a cache
// need no branches.
type SweepManifest struct {
	store *Store
	path  string

	mu    sync.Mutex
	state sweepState
}

type sweepState struct {
	Name     string `json:"name"`
	Key      string `json:"key"`
	Total    int    `json:"total"`
	Done     []int  `json:"done"`
	Complete bool   `json:"complete"`
}

// Sweep opens the progress manifest for the sweep identified by key
// (the digest of the sweep-level config). With resume set, an existing
// manifest for the same key and total is continued; otherwise the
// record restarts from zero.
func (s *Store) Sweep(name, key string, total int, resume bool) *SweepManifest {
	if s == nil {
		return nil
	}
	m := &SweepManifest{
		store: s,
		path:  filepath.Join(s.dir, "sweeps", key+".json"),
		state: sweepState{Name: name, Key: key, Total: total},
	}
	if resume {
		var prev sweepState
		if b, err := os.ReadFile(m.path); err == nil && json.Unmarshal(b, &prev) == nil &&
			prev.Key == key && prev.Total == total {
			m.state = prev
		}
	}
	return m
}

// DoneCount returns how many points the manifest records as completed.
func (m *SweepManifest) DoneCount() int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.state.Done)
}

// MarkDone records point i as completed and checkpoints to disk.
func (m *SweepManifest) MarkDone(i int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, d := range m.state.Done {
		if d == i {
			return
		}
	}
	m.state.Done = append(m.state.Done, i)
	sort.Ints(m.state.Done)
	m.flushLocked()
}

// Finish marks the sweep complete and writes the final state.
func (m *SweepManifest) Finish() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.state.Complete = true
	m.flushLocked()
}

func (m *SweepManifest) flushLocked() {
	b, err := json.Marshal(m.state)
	if err != nil {
		return
	}
	// Checkpointing is best-effort: a failed write only costs resume
	// granularity, never correctness.
	m.store.writeAtomic(m.path, b)
}

// RunManifest checkpoints a CLI-level run (e.g. `paperexp -exp all`):
// which experiment ids finished. A resumed identical invocation skips
// completed experiments outright. Finish removes the record, so a
// successful run leaves nothing to resume.
type RunManifest struct {
	store *Store
	path  string

	mu    sync.Mutex
	state runState
}

type runState struct {
	Key  string   `json:"key"`
	Done []string `json:"done"`
}

// Run opens the manifest for the CLI run identified by key (a digest of
// the invocation: experiment ids, quick flag, seed). Without resume any
// previous record for the key is discarded.
func (s *Store) Run(key string, resume bool) *RunManifest {
	if s == nil {
		return nil
	}
	m := &RunManifest{
		store: s,
		path:  filepath.Join(s.dir, "runs", key+".json"),
		state: runState{Key: key},
	}
	if resume {
		var prev runState
		if b, err := os.ReadFile(m.path); err == nil && json.Unmarshal(b, &prev) == nil && prev.Key == key {
			m.state = prev
		}
	}
	return m
}

// IsDone reports whether id completed in the run being resumed.
func (m *RunManifest) IsDone(id string) bool {
	if m == nil {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, d := range m.state.Done {
		if d == id {
			return true
		}
	}
	return false
}

// MarkDone records id as completed and checkpoints to disk.
func (m *RunManifest) MarkDone(id string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, d := range m.state.Done {
		if d == id {
			return
		}
	}
	m.state.Done = append(m.state.Done, id)
	b, err := json.Marshal(m.state)
	if err != nil {
		return
	}
	m.store.writeAtomic(m.path, b)
}

// Finish deletes the record: the run completed, nothing to resume.
func (m *RunManifest) Finish() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	os.Remove(m.path)
}
