package runcache

import (
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Store is a content-addressed result cache rooted at a directory.
// Blobs live under objects/<key[:2]>/<key>.json, sweep checkpoints under
// sweeps/, and CLI run checkpoints under runs/. All writes are atomic
// (temp file + rename), so a crash never leaves a torn blob. A Store is
// safe for concurrent use by the sweep workers.
type Store struct {
	dir string

	hits      atomic.Int64
	misses    atomic.Int64
	puts      atomic.Int64
	putErrors atomic.Int64
	verified  atomic.Int64

	verifyFrac float64

	mu       sync.Mutex
	failures []VerifyFailure

	// OnPut, when set, is called after each successful Put with the
	// stored key. Tests use it to interrupt a sweep after exactly k
	// completed points.
	OnPut func(key string)
}

// Stats is a snapshot of cache activity counters.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Puts      int64 `json:"puts"`
	PutErrors int64 `json:"put_errors"`
	// Verified counts hits that were recomputed by verification
	// sampling; VerifyFailures counts those whose recomputation did
	// not reproduce the stored bytes.
	Verified       int64 `json:"verified"`
	VerifyFailures int64 `json:"verify_failures"`
}

// HitRate is hits / (hits + misses), or 0 with no lookups.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// VerifyFailure records one sampled hit whose recomputation disagreed
// with the stored blob — evidence of nondeterminism or a stale salt.
type VerifyFailure struct {
	Key  string
	Kind string
}

// Open creates (if needed) and returns the cache rooted at dir.
func Open(dir string) (*Store, error) {
	for _, sub := range []string{"objects", "sweeps", "runs"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("runcache: open %s: %w", dir, err)
		}
	}
	return &Store{dir: dir}, nil
}

// Dir returns the cache root directory.
func (s *Store) Dir() string { return s.dir }

// objectPath maps a key to its blob location, fanned out by the first
// two hex digits to keep directories small.
func (s *Store) objectPath(key string) string {
	return filepath.Join(s.dir, "objects", key[:2], key+".json")
}

// Get returns the blob stored under key, if any. Unreadable or missing
// blobs count as misses.
func (s *Store) Get(key string) (json.RawMessage, bool) {
	b, err := os.ReadFile(s.objectPath(key))
	if err != nil || !json.Valid(b) {
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return b, true
}

// Put stores v under key as JSON. Marshal failures (e.g. NaN in a
// result) make the entry uncacheable: the error is counted and
// returned, and the caller should fall back to the computed value.
func (s *Store) Put(key string, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		s.putErrors.Add(1)
		return fmt.Errorf("runcache: marshal %s: %w", key, err)
	}
	if err := s.writeAtomic(s.objectPath(key), b); err != nil {
		s.putErrors.Add(1)
		return err
	}
	s.puts.Add(1)
	if s.OnPut != nil {
		s.OnPut(key)
	}
	return nil
}

// writeAtomic writes data to path via a temp file and rename.
func (s *Store) writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("runcache: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("runcache: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("runcache: write %s: %w", path, werr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runcache: %w", err)
	}
	return nil
}

// SetVerifySample enables verification sampling: roughly the given
// fraction of hits (chosen deterministically by key, so repeated runs
// verify the same entries) are recomputed and compared byte-for-byte
// against the stored blob.
func (s *Store) SetVerifySample(frac float64) {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	s.verifyFrac = frac
}

// Verifying reports whether verification sampling is enabled.
func (s *Store) Verifying() bool { return s.verifyFrac > 0 }

// ShouldVerify reports whether a hit on key falls in the verification
// sample. The decision hashes only the key, so it is stable across runs
// and independent of sweep order.
func (s *Store) ShouldVerify(key string) bool {
	if s.verifyFrac <= 0 {
		return false
	}
	raw, err := hex.DecodeString(key[:16])
	if err != nil || len(raw) < 8 {
		return true
	}
	u := binary.BigEndian.Uint64(raw)
	return float64(u)/float64(^uint64(0)) < s.verifyFrac
}

// RecordVerify logs the outcome of one sampled recomputation.
func (s *Store) RecordVerify(key, kind string, ok bool) {
	s.verified.Add(1)
	if ok {
		return
	}
	s.mu.Lock()
	s.failures = append(s.failures, VerifyFailure{Key: key, Kind: kind})
	s.mu.Unlock()
}

// VerifyFailures returns all recorded verification mismatches.
func (s *Store) VerifyFailures() []VerifyFailure {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]VerifyFailure(nil), s.failures...)
}

// Stats returns a snapshot of the activity counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	nfail := int64(len(s.failures))
	s.mu.Unlock()
	return Stats{
		Hits:           s.hits.Load(),
		Misses:         s.misses.Load(),
		Puts:           s.puts.Load(),
		PutErrors:      s.putErrors.Load(),
		Verified:       s.verified.Load(),
		VerifyFailures: nfail,
	}
}
