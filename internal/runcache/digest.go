// Package runcache is a content-addressed store for simulation results.
//
// Every experiment point in this repo is a pure function of its
// configuration and seed: the same inputs produce bit-identical outputs
// (the determinism contract pinned by internal/experiment/digest_test.go).
// runcache exploits that by keying each result on a canonical digest of
// (salt, kind, config) and memoizing the result as a JSON blob on disk,
// so a warm sweep replays from the cache instead of re-simulating.
//
// The digest deliberately ignores fields that do not change the numbers a
// run produces (telemetry sinks, audit hooks, parallelism, the cache
// handle itself); the caller names those via IgnoreFields. The salt
// encodes the code version: any change to simulation semantics must bump
// the salt, which invalidates every cached entry at once (see DESIGN.md).
package runcache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"reflect"
	"sort"
	"strconv"
)

// Option adjusts how Key canonicalizes a configuration.
type Option func(*digestOptions)

type digestOptions struct {
	ignore map[string]bool
}

// IgnoreFields excludes struct fields with the given names (at any
// nesting depth) from the digest. Use it for fields that carry
// observers or execution policy rather than simulation semantics.
func IgnoreFields(names ...string) Option {
	return func(o *digestOptions) {
		if o.ignore == nil {
			o.ignore = make(map[string]bool, len(names))
		}
		for _, n := range names {
			o.ignore[n] = true
		}
	}
}

// Key returns the content address for one run: a hex SHA-256 over the
// salt, the kind, and a canonical encoding of cfg.
//
// The encoding is independent of struct field order (fields are sorted
// by name) and of nil-versus-empty distinctions for slices and maps, so
// a zero-value option and an absent option digest identically. Struct
// type names are NOT part of the encoding — the kind string carries the
// semantic identity of the computation — but the concrete type behind an
// interface value is, since different implementations of e.g. a size
// distribution mean different workloads. Unexported fields, funcs and
// channels are skipped. Digesting an unsupported value (e.g. a bare
// func) panics: configs must stay digestable.
func Key(salt, kind string, cfg any, opts ...Option) string {
	var o digestOptions
	for _, opt := range opts {
		opt(&o)
	}
	h := sha256.New()
	io.WriteString(h, salt)
	h.Write([]byte{0})
	io.WriteString(h, kind)
	h.Write([]byte{0})
	encodeValue(h, reflect.ValueOf(cfg), &o)
	return hex.EncodeToString(h.Sum(nil))
}

// encodeValue writes the canonical encoding of v to w.
func encodeValue(w hash.Hash, v reflect.Value, o *digestOptions) {
	if !v.IsValid() {
		io.WriteString(w, "nil")
		return
	}
	switch v.Kind() {
	case reflect.Ptr:
		if v.IsNil() {
			// An absent option digests like its zero value, so a
			// config that never mentions a knob shares entries with
			// one that sets it to the default explicitly.
			encodeValue(w, reflect.Zero(v.Type().Elem()), o)
			return
		}
		encodeValue(w, v.Elem(), o)
	case reflect.Interface:
		if v.IsNil() {
			io.WriteString(w, "nil")
			return
		}
		// The concrete type is semantic: FixedSize(4) and
		// GeometricSize(4) are different workloads.
		elem := v.Elem()
		io.WriteString(w, "(")
		io.WriteString(w, concreteTypeName(elem.Type()))
		io.WriteString(w, ")")
		encodeValue(w, elem, o)
	case reflect.Struct:
		t := v.Type()
		names := make([]string, 0, t.NumField())
		byName := make(map[string]reflect.Value, t.NumField())
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() || o.ignore[f.Name] {
				continue
			}
			switch f.Type.Kind() {
			case reflect.Func, reflect.Chan, reflect.UnsafePointer:
				continue
			}
			names = append(names, f.Name)
			byName[f.Name] = v.Field(i)
		}
		sort.Strings(names)
		io.WriteString(w, "{")
		for _, n := range names {
			io.WriteString(w, n)
			io.WriteString(w, "=")
			encodeValue(w, byName[n], o)
			io.WriteString(w, ";")
		}
		io.WriteString(w, "}")
	case reflect.Map:
		keys := make([]string, 0, v.Len())
		byKey := make(map[string]reflect.Value, v.Len())
		iter := v.MapRange()
		for iter.Next() {
			ks := scalarString(iter.Key())
			keys = append(keys, ks)
			byKey[ks] = iter.Value()
		}
		sort.Strings(keys)
		io.WriteString(w, "map[")
		for _, k := range keys {
			io.WriteString(w, k)
			io.WriteString(w, ":")
			encodeValue(w, byKey[k], o)
			io.WriteString(w, ";")
		}
		io.WriteString(w, "]")
	case reflect.Slice, reflect.Array:
		io.WriteString(w, "[")
		for i := 0; i < v.Len(); i++ {
			encodeValue(w, v.Index(i), o)
			io.WriteString(w, ";")
		}
		io.WriteString(w, "]")
	case reflect.String, reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64,
		reflect.Complex64, reflect.Complex128:
		io.WriteString(w, scalarString(v))
	default:
		panic(fmt.Sprintf("runcache: cannot digest %s (kind %s)", v.Type(), v.Kind()))
	}
}

// scalarString renders a scalar value canonically. Floats use the
// shortest representation that round-trips, so equal values always
// encode identically.
func scalarString(v reflect.Value) string {
	switch v.Kind() {
	case reflect.String:
		return strconv.Quote(v.String())
	case reflect.Bool:
		return strconv.FormatBool(v.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return strconv.FormatInt(v.Int(), 10)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return strconv.FormatUint(v.Uint(), 10)
	case reflect.Float32:
		return strconv.FormatFloat(v.Float(), 'g', -1, 32)
	case reflect.Float64:
		return strconv.FormatFloat(v.Float(), 'g', -1, 64)
	case reflect.Complex64, reflect.Complex128:
		return strconv.FormatComplex(v.Complex(), 'g', -1, 128)
	default:
		panic(fmt.Sprintf("runcache: cannot digest %s as a map key or scalar", v.Kind()))
	}
}

// concreteTypeName identifies the dynamic type behind an interface.
func concreteTypeName(t reflect.Type) string {
	for t.Kind() == reflect.Ptr {
		t = t.Elem()
	}
	if t.PkgPath() != "" {
		return t.PkgPath() + "." + t.Name()
	}
	return t.String()
}
