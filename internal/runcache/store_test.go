package runcache

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

type payload struct {
	N int     `json:"n"`
	X float64 `json:"x"`
}

func TestStoreGetPutRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("s", "k", payload{N: 1})
	if _, ok := s.Get(key); ok {
		t.Fatalf("hit on an empty store")
	}
	want := payload{N: 42, X: 0.1 + 0.2}
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}
	blob, ok := s.Get(key)
	if !ok {
		t.Fatalf("miss after Put")
	}
	var got payload
	if err := json.Unmarshal(blob, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mangled the value: got %+v want %+v", got, want)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v, want hits=1 misses=1 puts=1", st)
	}
	if st.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", st.HitRate())
	}
}

func TestStorePutUnmarshalableValue(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("s", "k", payload{N: 2})
	if err := s.Put(key, payload{X: math.NaN()}); err == nil {
		t.Fatalf("expected an error storing NaN")
	}
	if _, ok := s.Get(key); ok {
		t.Fatalf("failed Put left a readable blob")
	}
	if st := s.Stats(); st.PutErrors != 1 {
		t.Fatalf("put_errors = %d, want 1", st.PutErrors)
	}
}

func TestStoreCorruptBlobIsMiss(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("s", "k", payload{N: 3})
	if err := s.Put(key, payload{N: 3}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.objectPath(key), []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatalf("corrupt blob served as a hit")
	}
}

func TestShouldVerifyDeterministicSampling(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if s.ShouldVerify(Key("s", "k", payload{N: 1})) {
		t.Fatalf("verification fired with sampling disabled")
	}
	s.SetVerifySample(0.25)
	sampled := 0
	const n = 400
	for i := 0; i < n; i++ {
		key := Key("s", "k", payload{N: i})
		first := s.ShouldVerify(key)
		if first != s.ShouldVerify(key) {
			t.Fatalf("ShouldVerify not deterministic for key %s", key)
		}
		if first {
			sampled++
		}
	}
	// The key hash is uniform, so ~25% of keys land in the sample.
	if sampled < n/8 || sampled > n/2 {
		t.Fatalf("sampled %d of %d keys at fraction 0.25", sampled, n)
	}
	s.SetVerifySample(1)
	if !s.ShouldVerify(Key("s", "k", payload{N: 9})) {
		t.Fatalf("fraction 1.0 must verify every key")
	}
}

func TestRecordVerifyFailures(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.RecordVerify("k1", "long-lived", true)
	s.RecordVerify("k2", "trace", false)
	st := s.Stats()
	if st.Verified != 2 || st.VerifyFailures != 1 {
		t.Fatalf("stats = %+v, want verified=2 failures=1", st)
	}
	fails := s.VerifyFailures()
	if len(fails) != 1 || fails[0].Key != "k2" || fails[0].Kind != "trace" {
		t.Fatalf("failures = %+v", fails)
	}
}

func TestSweepManifestCheckpointAndResume(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("s", "sweep", payload{N: 5})
	m := s.Sweep("fig", key, 4, false)
	m.MarkDone(2)
	m.MarkDone(0)
	m.MarkDone(2) // idempotent
	if m.DoneCount() != 2 {
		t.Fatalf("done = %d, want 2", m.DoneCount())
	}

	// A new store on the same directory resumes the checkpoint.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	resumed := s2.Sweep("fig", key, 4, true)
	if resumed.DoneCount() != 2 {
		t.Fatalf("resumed done = %d, want 2", resumed.DoneCount())
	}
	// Resume with a different total means a different sweep: start over.
	if got := s2.Sweep("fig", key, 5, true).DoneCount(); got != 0 {
		t.Fatalf("mismatched total resumed %d points", got)
	}
	// Without resume the record resets.
	if got := s2.Sweep("fig", key, 4, false).DoneCount(); got != 0 {
		t.Fatalf("non-resume sweep kept %d points", got)
	}

	// Nil manifests (no cache configured) are inert.
	var nilM *SweepManifest
	nilM.MarkDone(1)
	nilM.Finish()
	if nilM.DoneCount() != 0 {
		t.Fatalf("nil manifest reported progress")
	}
}

func TestRunManifestLifecycle(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("s", "run", payload{N: 6})
	m := s.Run(key, false)
	m.MarkDone("fig2")
	m.MarkDone("fig8")
	if !m.IsDone("fig2") || m.IsDone("codel") {
		t.Fatalf("IsDone bookkeeping wrong")
	}

	resumed := s.Run(key, true)
	if !resumed.IsDone("fig8") {
		t.Fatalf("resume lost completed experiments")
	}
	resumed.Finish()
	if s.Run(key, true).IsDone("fig2") {
		t.Fatalf("Finish did not clear the record")
	}
	if _, err := os.Stat(filepath.Join(dir, "runs", key+".json")); !os.IsNotExist(err) {
		t.Fatalf("run manifest file survived Finish: %v", err)
	}

	var nilM *RunManifest
	nilM.MarkDone("x")
	nilM.Finish()
	if nilM.IsDone("x") {
		t.Fatalf("nil run manifest reported progress")
	}
}
