package packet

import (
	"strings"
	"testing"
)

func TestFlagsString(t *testing.T) {
	cases := []struct {
		f    Flags
		want string
	}{
		{0, "-"},
		{FlagSYN, "S"},
		{FlagACK, "A"},
		{FlagFIN, "F"},
		{FlagSYN | FlagACK, "SA"},
		{FlagSYN | FlagACK | FlagFIN, "SAF"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("Flags(%d).String() = %q, want %q", c.f, got, c.want)
		}
	}
}

func TestIsAck(t *testing.T) {
	data := &Packet{Seq: 5, Size: 1000}
	if data.IsAck() {
		t.Error("data packet reported as ACK")
	}
	ack := &Packet{Ack: 6, Flags: FlagACK, Size: 40}
	if !ack.IsAck() {
		t.Error("ACK not recognized")
	}
}

func TestPacketString(t *testing.T) {
	data := &Packet{Flow: 3, Seq: 17, Size: 1000}
	if s := data.String(); !strings.Contains(s, "seq 17") || !strings.Contains(s, "flow 3") {
		t.Errorf("data String() = %q", s)
	}
	ack := &Packet{Flow: 3, Ack: 18, Flags: FlagACK, Size: 40}
	if s := ack.String(); !strings.Contains(s, "ack 18") {
		t.Errorf("ack String() = %q", s)
	}
}

func TestHandlerFunc(t *testing.T) {
	var got *Packet
	h := HandlerFunc(func(p *Packet) { got = p })
	p := &Packet{Seq: 1}
	h.Handle(p)
	if got != p {
		t.Error("HandlerFunc did not forward the packet")
	}
}
