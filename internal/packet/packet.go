// Package packet defines the unit of data the simulator moves around.
//
// Following the paper's presentation, TCP windows are counted in
// fixed-size segments; a Packet is one such segment (or a pure ACK). A
// packet carries just enough header state for a Reno implementation:
// sequence/ack numbers in segment units, flags, and the addressing the
// routers forward on.
package packet

import (
	"fmt"

	"bufsim/internal/units"
)

// NodeID identifies a host or router in a topology.
type NodeID int32

// FlowID identifies a TCP flow (a sender/receiver pair).
type FlowID int32

// Flags mark the kind of segment.
type Flags uint8

// Packet flag bits. The ECN bits follow RFC 3168's roles: ECT marks a
// packet from an ECN-capable transport, CE is stamped by an AQM queue in
// place of dropping, and ECE is the receiver echoing congestion back to
// the sender on ACKs.
const (
	FlagSYN Flags = 1 << iota
	FlagACK
	FlagFIN
	FlagECT // ECN-capable transport
	FlagCE  // congestion experienced (set by the queue)
	FlagECE // echo of CE (set by the receiver on ACKs)
)

func (f Flags) String() string {
	s := ""
	if f&FlagSYN != 0 {
		s += "S"
	}
	if f&FlagACK != 0 {
		s += "A"
	}
	if f&FlagFIN != 0 {
		s += "F"
	}
	if f&FlagECT != 0 {
		s += "e"
	}
	if f&FlagCE != 0 {
		s += "c"
	}
	if f&FlagECE != 0 {
		s += "E"
	}
	if s == "" {
		return "-"
	}
	return s
}

// Packet is one segment in flight. Packets are heap-allocated and shared
// by reference along the path; components must not retain a packet after
// handing it downstream.
type Packet struct {
	Flow FlowID
	Src  NodeID
	Dst  NodeID

	// Seq is the segment sequence number (data packets) and Ack is the
	// cumulative acknowledgement (ACK packets): "every segment below Ack
	// has been received".
	Seq int64
	Ack int64

	// Sack carries up to three selective-acknowledgement blocks on ACK
	// packets: [start, end) ranges of segments received above Ack. Nil
	// when the receiver has nothing out of order (or SACK is disabled).
	Sack [][2]int64

	Flags Flags

	// Size is the wire size in bytes, including an idealized header.
	Size units.ByteSize

	// Sent is when the sender's TCP put the packet on its access link;
	// used for RTT sampling. Retransmitted marks retransmissions so RTT
	// samples obey Karn's rule.
	Sent          units.Time
	Retransmitted bool

	// Enqueued is stamped by a queue when the packet is accepted, so the
	// queueing delay can be measured at dequeue.
	Enqueued units.Time
}

// IsAck reports whether the packet is a pure acknowledgement.
func (p *Packet) IsAck() bool { return p.Flags&FlagACK != 0 }

func (p *Packet) String() string {
	if p.IsAck() {
		return fmt.Sprintf("flow %d ack %d (%s, %dB)", p.Flow, p.Ack, p.Flags, p.Size)
	}
	return fmt.Sprintf("flow %d seq %d (%s, %dB)", p.Flow, p.Seq, p.Flags, p.Size)
}

// Handler consumes packets; links deliver to Handlers, routers and hosts
// implement it.
type Handler interface {
	Handle(p *Packet)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(p *Packet)

// Handle calls f(p).
func (f HandlerFunc) Handle(p *Packet) { f(p) }
