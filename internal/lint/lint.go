// Package lint is the simulator's first-party static-analysis suite.
//
// The reproduction's headline numbers are trustworthy only because a run
// is a pure function of (config, seed): the pinned digests, the
// content-addressed run cache, and crash-resume all replay on that
// assumption. The runtime layers (digest tests, -cache-verify, the audit
// hooks) catch drift after it happens; this package catches the usual
// sources of drift at compile time:
//
//   - simdeterminism: no wall clock or global math/rand in the
//     deterministic core; wall reads that provably flow only to
//     telemetry sinks are exempt (dataflow-based).
//   - maporder: no order-dependent work inside `range` over a map.
//   - unitsafety: no bare numeric literals or cross-unit conversions
//     where units.* quantities are expected.
//   - digestfield: every exported config field is visible to the
//     runcache digest or explicitly ignored.
//   - eventcapture: hot paths use the pooled kernel's Actor dispatch,
//     not closure posting, and never compare Event handles.
//   - shardsafety: the cross-shard scheduling surface stays confined to
//     the shard-aware layers, so the topology cut remains the only
//     place events cross shards — the structural fact the sharded
//     kernel's bit-identical equivalence proof rests on.
//   - shardownership: values bound to ShardView(k) are scheduled only
//     through shard k; cross-shard work goes through the
//     PostToAt/PostToAfter frontier (dataflow-based).
//   - slabescape: no pointer or subslice into a tcp.Slab column is
//     retained across anything that can reach addRow, whose append
//     reallocation would invalidate it (dataflow-based).
//   - rngconfinement: each RNG stream stays on one shard and no draw
//     site is control-dependent on the shard count (dataflow-based).
//
// The analyzers mirror the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic) but are built purely on the standard
// library so the module stays dependency-free; the flow-aware checks
// share the intraprocedural engine in dataflow.go. cmd/buflint
// assembles the suite into a vettool speaking the `go vet -vettool`
// protocol.
//
// Intentional exceptions are suppressed in source with
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// on, or on the line before, the offending line. A directive without a
// reason is itself a diagnostic (lintdirective), and so is a directive
// whose finding no longer fires (lintstale): suppressions may only
// cover live findings, so the count can only shrink.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"hash/fnv"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Analyzer is one static check. It mirrors the x/tools analysis.Analyzer
// surface that cmd/buflint and linttest need, so the suite can migrate to
// the upstream framework without touching the checks themselves.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives.
	Name string

	// Doc is a one-paragraph description of the invariant enforced.
	Doc string

	// AppliesTo reports whether the analyzer should run on the package
	// with the given import path. A nil AppliesTo runs everywhere. The
	// test harness bypasses this so fixtures can live in synthetic
	// packages.
	AppliesTo func(pkgPath string) bool

	// Run performs the analysis and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// PkgPath is the import path being analyzed, normalized (test
	// variant suffixes stripped).
	PkgPath string

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding, positioned by token.Pos within the pass's
// file set.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Finding is a rendered diagnostic, positioned absolutely and carrying a
// stable fingerprint.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string

	// Fingerprint identifies the finding across unrelated edits: an
	// FNV-64a hash of (package, analyzer, file, enclosing function,
	// message), deliberately excluding line and column so findings keep
	// their identity as code moves around them.
	Fingerprint string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Position, f.Message, f.Analyzer)
}

// AnalyzerTiming is one analyzer's wall-time cost over one package (or,
// aggregated by the callers, a whole run). Reported in buflint's -json
// output so the blocking CI lint job's budget is observable.
type AnalyzerTiming struct {
	Analyzer string
	Elapsed  time.Duration
}

// Analyzers returns the full buflint suite, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		SimDeterminism,
		MapOrder,
		UnitSafety,
		DigestField,
		EventCapture,
		ShardSafety,
		ShardOwnership,
		SlabEscape,
		RNGConfinement,
	}
}

// NormalizePkgPath strips the " [pkg.test]" variant suffix go vet appends
// to import paths of packages rebuilt for testing.
func NormalizePkgPath(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	return path
}

// RunAnalyzers runs the given analyzers over one type-checked package and
// returns the surviving findings; see RunAnalyzersTimed.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, pkgPath string, analyzers []*Analyzer) ([]Finding, error) {
	findings, _, err := RunAnalyzersTimed(fset, files, pkg, info, pkgPath, analyzers)
	return findings, err
}

// RunAnalyzersTimed runs the given analyzers over one type-checked
// package and returns the surviving findings plus per-analyzer timings:
// suppression directives are honored, diagnostics in _test.go files are
// dropped (the determinism contract binds the simulator, not its tests),
// malformed directives are reported under the pseudo-analyzer
// "lintdirective", and directives that suppressed nothing even though
// every analyzer they name ran are reported under "lintstale". Findings
// are sorted by position.
func RunAnalyzersTimed(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, pkgPath string, analyzers []*Analyzer) ([]Finding, []AnalyzerTiming, error) {
	pkgPath = NormalizePkgPath(pkgPath)
	var diags []Diagnostic
	var timings []AnalyzerTiming
	ran := make(map[string]bool)
	for _, a := range analyzers {
		ran[a.Name] = true
		if a.AppliesTo != nil && !a.AppliesTo(pkgPath) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			PkgPath:  pkgPath,
			report:   func(d Diagnostic) { diags = append(diags, d) },
		}
		start := time.Now()
		err := a.Run(pass)
		timings = append(timings, AnalyzerTiming{Analyzer: a.Name, Elapsed: time.Since(start)})
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	idx := newIgnoreIndex(fset, files)
	var out []Finding
	emit := func(pos token.Position, analyzer, message string) {
		out = append(out, Finding{
			Position:    pos,
			Analyzer:    analyzer,
			Message:     message,
			Fingerprint: fingerprint(files, fset, pkgPath, pos, analyzer, message),
		})
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		if idx.suppressed(d.Analyzer, pos) {
			continue
		}
		emit(pos, d.Analyzer, d.Message)
	}
	for _, bad := range idx.malformed {
		pos := fset.Position(bad)
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		emit(pos, "lintdirective", "malformed //lint:ignore directive: want //lint:ignore <analyzer> <reason>")
	}
	for _, d := range idx.stale(ran) {
		pos := fset.Position(d.pos)
		emit(pos, "lintstale", fmt.Sprintf("stale //lint:ignore %s directive: no suppressed finding fires here anymore; delete it", d.names()))
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Position, out[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, timings, nil
}

// fingerprint hashes the position-independent identity of a finding.
// Line and column stay out of the hash so unrelated edits above a
// finding don't change its identity; the enclosing function name keeps
// two same-message findings in different functions distinct.
func fingerprint(files []*ast.File, fset *token.FileSet, pkgPath string, pos token.Position, analyzer, message string) string {
	fn := ""
	for _, f := range files {
		tf := fset.File(f.Pos())
		if tf == nil || tf.Name() != pos.Filename {
			continue
		}
		if pos.Offset >= 0 && pos.Offset < tf.Size() {
			fn = enclosingFuncName([]*ast.File{f}, tf.Pos(pos.Offset))
		}
		break
	}
	h := fnv.New64a()
	for _, part := range []string{pkgPath, analyzer, filepath.Base(pos.Filename), fn, message} {
		h.Write([]byte(part))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
