// Package lint is the simulator's first-party static-analysis suite.
//
// The reproduction's headline numbers are trustworthy only because a run
// is a pure function of (config, seed): the seven pinned digests, the
// content-addressed run cache, and crash-resume all replay on that
// assumption. The runtime layers (digest tests, -cache-verify, the audit
// hooks) catch drift after it happens; this package catches the usual
// sources of drift at compile time:
//
//   - simdeterminism: no wall clock or global math/rand in the
//     deterministic core.
//   - maporder: no order-dependent work inside `range` over a map.
//   - unitsafety: no bare numeric literals or cross-unit conversions
//     where units.* quantities are expected.
//   - digestfield: every exported config field is visible to the
//     runcache digest or explicitly ignored.
//   - eventcapture: hot paths use the pooled kernel's Actor dispatch,
//     not closure posting, and never compare Event handles.
//   - shardsafety: the cross-shard scheduling surface stays confined to
//     the shard-aware layers, so the topology cut remains the only
//     place events cross shards — the structural fact the sharded
//     kernel's bit-identical equivalence proof rests on.
//
// The analyzers mirror the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic) but are built purely on the standard
// library so the module stays dependency-free; cmd/buflint assembles
// them into a vettool speaking the `go vet -vettool` protocol.
//
// Intentional exceptions are suppressed in source with
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// on, or on the line before, the offending line. A directive without a
// reason is itself a diagnostic.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. It mirrors the x/tools analysis.Analyzer
// surface that cmd/buflint and linttest need, so the suite can migrate to
// the upstream framework without touching the checks themselves.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives.
	Name string

	// Doc is a one-paragraph description of the invariant enforced.
	Doc string

	// AppliesTo reports whether the analyzer should run on the package
	// with the given import path. A nil AppliesTo runs everywhere. The
	// test harness bypasses this so fixtures can live in synthetic
	// packages.
	AppliesTo func(pkgPath string) bool

	// Run performs the analysis and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// PkgPath is the import path being analyzed, normalized (test
	// variant suffixes stripped).
	PkgPath string

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding, positioned by token.Pos within the pass's
// file set.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Finding is a rendered diagnostic, positioned absolutely.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Position, f.Message, f.Analyzer)
}

// Analyzers returns the full buflint suite, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		SimDeterminism,
		MapOrder,
		UnitSafety,
		DigestField,
		EventCapture,
		ShardSafety,
	}
}

// NormalizePkgPath strips the " [pkg.test]" variant suffix go vet appends
// to import paths of packages rebuilt for testing.
func NormalizePkgPath(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	return path
}

// RunAnalyzers runs the given analyzers over one type-checked package and
// returns the surviving findings: suppression directives are honored,
// diagnostics in _test.go files are dropped (the determinism contract
// binds the simulator, not its tests), and malformed directives are
// reported under the pseudo-analyzer "lintdirective". Findings are
// sorted by position.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, pkgPath string, analyzers []*Analyzer) ([]Finding, error) {
	pkgPath = NormalizePkgPath(pkgPath)
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.AppliesTo != nil && !a.AppliesTo(pkgPath) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			PkgPath:  pkgPath,
			report:   func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	idx := newIgnoreIndex(fset, files)
	var out []Finding
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		if idx.suppressed(d.Analyzer, pos) {
			continue
		}
		out = append(out, Finding{Position: pos, Analyzer: d.Analyzer, Message: d.Message})
	}
	for _, bad := range idx.malformed {
		pos := fset.Position(bad)
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		out = append(out, Finding{
			Position: pos,
			Analyzer: "lintdirective",
			Message:  "malformed //lint:ignore directive: want //lint:ignore <analyzer> <reason>",
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Position, out[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}
