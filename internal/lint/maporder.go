package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags `range` loops over maps whose bodies do order-dependent
// work: appending values to an outer slice, writing to a stream, encoder
// or hash, publishing metrics, sending on a channel, or accumulating
// floats. Go randomizes map iteration order, so any of these makes the
// output differ between identical runs — the exact failure mode the
// digest tests and the run cache cannot tolerate. The sanctioned idiom
// is to collect the keys, sort them, and range over the sorted slice;
// a body whose only mutation is `keys = append(keys, k)` is recognized
// as the first half of that idiom and allowed.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "forbid order-dependent work (appends, stream/encoder/hash writes, metrics publishes, " +
		"float accumulation) inside range-over-map; sort the keys first",
	AppliesTo: func(pkgPath string) bool {
		return pkgPath == "bufsim" || strings.HasPrefix(pkgPath, "bufsim/internal/") || strings.HasPrefix(pkgPath, "bufsim/cmd/")
	},
	Run: runMapOrder,
}

// streamMethodNames are method names that emit bytes or records in call
// order: io.Writer and friends, encoders, and hashes.
var streamMethodNames = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"Encode":      true,
	"Sum":         true,
	"Print":       true,
	"Printf":      true,
	"Println":     true,
	"Fprint":      true,
	"Fprintf":     true,
	"Fprintln":    true,
}

// metricsMethodNames publish a value to the telemetry registry.
var metricsMethodNames = map[string]bool{
	"Set":     true,
	"Add":     true,
	"Inc":     true,
	"Observe": true,
}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(pass, rng)
			return true
		})
	}
	return nil
}

// checkMapRangeBody walks one map-range body (including nested blocks
// and function literals, which typically run within the iteration) and
// reports every order-dependent operation.
func checkMapRangeBody(pass *Pass, rng *ast.RangeStmt) {
	keyObj := identObject(pass, rng.Key)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "send on a channel inside range over a map delivers in random order; sort the keys first")
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, rng, keyObj, n)
		case *ast.CallExpr:
			checkMapRangeCall(pass, rng, n)
		}
		return true
	})
}

func checkMapRangeAssign(pass *Pass, rng *ast.RangeStmt, keyObj types.Object, n *ast.AssignStmt) {
	switch n.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		// Integer accumulation commutes exactly; floating-point does not
		// (rounding depends on summation order), so a float total built
		// in map order differs from run to run in the low bits — enough
		// to move a digest.
		for _, lhs := range n.Lhs {
			t, ok := pass.Info.Types[lhs]
			if !ok {
				continue
			}
			if b, ok := t.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 && declaredOutside(pass, baseExpr(lhs), rng) {
				pass.Reportf(n.Pos(), "floating-point accumulation into %s inside range over a map is order-dependent; sort the keys first", exprString(lhs))
			}
		}
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range n.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass, call) || len(call.Args) < 2 || i >= len(n.Lhs) {
				continue
			}
			if !declaredOutside(pass, call.Args[0], rng) {
				continue // scratch slice local to the body
			}
			// Bless the sort-keys idiom: appending exactly the key.
			if len(call.Args) == 2 && !call.Ellipsis.IsValid() && keyObj != nil && identObject(pass, call.Args[1]) == keyObj {
				continue
			}
			pass.Reportf(call.Pos(), "append to %s inside range over a map builds a randomly-ordered slice; collect and sort the keys, then range over them", exprString(call.Args[0]))
		}
	}
}

func checkMapRangeCall(pass *Pass, rng *ast.RangeStmt, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := pass.Info.Uses[sel.Sel]
	if !ok {
		return
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	name := fn.Name()
	if sig.Recv() == nil {
		// Package-level emitters: fmt.Print*/Fprint*.
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
			pass.Reportf(call.Pos(), "fmt.%s inside range over a map emits lines in random order; sort the keys first", name)
		}
		return
	}
	// Both rules below apply only when the call repeatedly targets ONE
	// sink that outlives the loop. A receiver minted inside the body
	// (e.g. r.Counter(name).Add(v) in a keyed merge) touches a distinct
	// object per key, which commutes.
	if !declaredOutside(pass, baseExpr(sel.X), rng) {
		return
	}
	if streamMethodNames[name] {
		pass.Reportf(call.Pos(), "%s.%s inside range over a map writes in random order; sort the keys first", recvTypeString(sig), name)
		return
	}
	if metricsMethodNames[name] && recvFromMetricsPkg(sig) {
		pass.Reportf(call.Pos(), "publishing metrics inside range over a map records values in random order; sort the keys first")
	}
}

// baseExpr peels selectors, indexes and derefs down to the root
// expression: the identifier for x.f[i].g, or the call for f().g.
func baseExpr(e ast.Expr) ast.Expr {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return v
		}
	}
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// identObject resolves an expression to the object of a plain
// identifier, or nil.
func identObject(pass *Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj, ok := pass.Info.Uses[id]; ok {
		return obj
	}
	return pass.Info.Defs[id]
}

// declaredOutside reports whether the storage behind e outlives one
// iteration of rng: a variable declared outside the range statement, or
// any non-identifier target (field, index, dereference).
func declaredOutside(pass *Pass, e ast.Expr, rng *ast.RangeStmt) bool {
	obj := identObject(pass, e)
	if obj == nil {
		return true
	}
	return obj.Pos() < rng.Pos() || obj.Pos() >= rng.End()
}

func recvFromMetricsPkg(sig *types.Signature) bool {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return strings.HasSuffix(named.Obj().Pkg().Path(), "internal/metrics")
}

func recvTypeString(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// exprString renders a small expression for a message.
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.SliceExpr:
		return exprString(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.UnaryExpr:
		return e.Op.String() + exprString(e.X)
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	default:
		return "expression"
	}
}
