package lint_test

import (
	"testing"

	"bufsim/internal/lint"
	"bufsim/internal/lint/linttest"
)

func TestSimDeterminism(t *testing.T) {
	linttest.Run(t, lint.SimDeterminism, "simdet", "profiledet", "advdet")
}
func TestMapOrder(t *testing.T) { linttest.Run(t, lint.MapOrder, "mapord") }
func TestUnitSafety(t *testing.T) {
	linttest.Run(t, lint.UnitSafety, "unitsafe", "profileunits", "probeunits")
}
func TestDigestField(t *testing.T) {
	linttest.Run(t, lint.DigestField, "digestcfg", "profilecfg", "advcfg")
}
func TestEventCapture(t *testing.T) { linttest.Run(t, lint.EventCapture, "eventcap") }
func TestShardSafety(t *testing.T)  { linttest.Run(t, lint.ShardSafety, "shardsafe") }
func TestShardOwnership(t *testing.T) {
	linttest.Run(t, lint.ShardOwnership, "shardown")
}
func TestSlabEscape(t *testing.T) {
	linttest.Run(t, lint.SlabEscape, "internal/tcp")
}
func TestRNGConfinement(t *testing.T) {
	linttest.Run(t, lint.RNGConfinement, "rngconf")
}

// TestSuiteComplete pins the analyzer roster: the CI gate, the vettool
// and the docs all promise these nine checks.
func TestSuiteComplete(t *testing.T) {
	want := map[string]bool{
		"simdeterminism": true,
		"maporder":       true,
		"unitsafety":     true,
		"digestfield":    true,
		"eventcapture":   true,
		"shardsafety":    true,
		"shardownership": true,
		"slabescape":     true,
		"rngconfinement": true,
	}
	got := lint.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(got), len(want))
	}
	for _, a := range got {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q in suite", a.Name)
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run", a.Name)
		}
	}
}

// TestAppliesToScopes pins which corners of the tree each analyzer
// guards, so a scope regression (e.g. dropping tcp from the
// deterministic core) fails loudly.
func TestAppliesToScopes(t *testing.T) {
	cases := []struct {
		analyzer *lint.Analyzer
		pkg      string
		want     bool
	}{
		{lint.SimDeterminism, "bufsim/internal/sim", true},
		{lint.SimDeterminism, "bufsim/internal/tcp", true},
		{lint.SimDeterminism, "bufsim/internal/link", true},
		{lint.SimDeterminism, "bufsim/internal/queue", true},
		{lint.SimDeterminism, "bufsim/internal/experiment", true},
		{lint.SimDeterminism, "bufsim/internal/workload", true},
		{lint.SimDeterminism, "bufsim/internal/workload/profile", true},
		{lint.SimDeterminism, "bufsim/internal/adversary", true},
		{lint.SimDeterminism, "bufsim/internal/probe", true},
		{lint.SimDeterminism, "bufsim", true},
		{lint.SimDeterminism, "bufsim/cmd/paperexp", false}, // CLIs may read the wall clock
		{lint.SimDeterminism, "bufsim/internal/metrics", false},
		{lint.UnitSafety, "bufsim/internal/units", false}, // the units package defines the conversions
		{lint.UnitSafety, "bufsim/internal/tcp", true},
		{lint.UnitSafety, "bufsim/cmd/bufsim", true},
		{lint.EventCapture, "bufsim/internal/sim", false}, // sim defines the closure entry points
		{lint.EventCapture, "bufsim/internal/workload", true},
		{lint.EventCapture, "bufsim/internal/workload/profile", true},
		{lint.UnitSafety, "bufsim/internal/workload/profile", true},
		{lint.UnitSafety, "bufsim/internal/adversary", true},
		{lint.UnitSafety, "bufsim/internal/probe", true},
		{lint.EventCapture, "bufsim/internal/adversary", true},
		{lint.DigestField, "bufsim/internal/workload/profile", true},
		{lint.EventCapture, "bufsim/internal/experiment", true},
		{lint.MapOrder, "bufsim/internal/experiment", true},
		{lint.DigestField, "bufsim/internal/experiment", true},
		{lint.ShardSafety, "bufsim/internal/queue", true},
		{lint.ShardSafety, "bufsim/internal/tcp", true},
		{lint.ShardSafety, "bufsim/internal/workload", true},
		{lint.ShardSafety, "bufsim/internal/lint", true}, // lint-the-linter: the suite holds itself to the surface rules
		{lint.ShardOwnership, "bufsim/internal/topology", true},
		{lint.ShardOwnership, "bufsim/internal/link", true},
		{lint.ShardOwnership, "bufsim/internal/sim", false}, // the kernel implements the frontier itself
		{lint.SlabEscape, "bufsim/internal/tcp", true},
		{lint.SlabEscape, "bufsim/internal/queue", false}, // columns are unexported; only tcp can alias them
		{lint.RNGConfinement, "bufsim/internal/workload", true},
		{lint.RNGConfinement, "bufsim/internal/experiment", true},
		{lint.RNGConfinement, "bufsim/internal/sim", false}, // sim owns RNG and the shard machinery
	}
	for _, c := range cases {
		if got := c.analyzer.AppliesTo(c.pkg); got != c.want {
			t.Errorf("%s.AppliesTo(%q) = %v, want %v", c.analyzer.Name, c.pkg, got, c.want)
		}
	}
}
