package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// UnitSafety enforces the typed-quantity discipline around
// internal/units (Time, Duration, ByteSize, BitRate):
//
//  1. A bare numeric literal must not cross into a units-typed slot
//     (call argument, struct field, assignment, return). `1500` says
//     nothing about bytes vs packets vs nanoseconds — the CoDel-MTU bug
//     PR 3 caught at runtime was exactly a raw 1500 where a configured
//     ByteSize belonged. Write `1500 * units.Byte`, a named constant
//     (units.DefaultSegment), or an explicit conversion instead. Zero
//     is exempt: it is the zero value in every unit.
//  2. A value of one units type must not be converted directly into
//     another (`units.Duration(t)` where t is a Time, ByteSize from a
//     BitRate, ...). Conversions between quantities go through the
//     semantic helpers: Time.Add/Sub, units.Epoch, TransmissionTime,
//     BytesInFlight.
//  3. Two Times must not be added or subtracted with raw operators: a
//     Time is a point, not a span. t.Add(d) moves a point by a span;
//     t.Sub(u) yields the span between points.
var UnitSafety = &Analyzer{
	Name: "unitsafety",
	Doc: "forbid bare numeric literals in units.* typed slots, direct conversions between units " +
		"types, and raw +/- between two Times; use named constants and the units helpers",
	AppliesTo: func(pkgPath string) bool {
		if pkgPath == "bufsim/internal/units" || pkgPath == "bufsim/internal/lint" {
			return false
		}
		return pkgPath == "bufsim" || strings.HasPrefix(pkgPath, "bufsim/")
	},
	Run: runUnitSafety,
}

// unitsTypeOf returns the named type from the units package behind t
// (through one level of naming — units types are defined basics), or nil.
func unitsTypeOf(t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	pkg := named.Obj().Pkg()
	if pkg == nil || !strings.HasSuffix(pkg.Path(), "internal/units") {
		return nil
	}
	return named
}

func isUnitsTime(t types.Type) bool {
	n := unitsTypeOf(t)
	return n != nil && n.Obj().Name() == "Time"
}

// bareNumericLiteral reports whether e is a plain numeric literal
// (possibly parenthesized or signed) with a nonzero value. Expressions
// that mention a named constant — 60 * units.Millisecond — are not bare:
// the unit is in the name.
func bareNumericLiteral(e ast.Expr) (*ast.BasicLit, bool) {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.UnaryExpr:
			if v.Op != token.ADD && v.Op != token.SUB {
				return nil, false
			}
			e = v.X
		case *ast.BasicLit:
			if v.Kind != token.INT && v.Kind != token.FLOAT {
				return nil, false
			}
			return v, true
		default:
			return nil, false
		}
	}
}

func isZeroConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return constant.Sign(tv.Value) == 0
}

func runUnitSafety(pass *Pass) error {
	for _, f := range pass.Files {
		var funcResults []*types.Tuple // stack of enclosing func result tuples
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return false
				}
				funcResults = append(funcResults, signatureResults(pass, n.Name))
				for _, st := range n.Body.List {
					ast.Inspect(st, walk)
				}
				funcResults = funcResults[:len(funcResults)-1]
				return false
			case *ast.FuncLit:
				sig, _ := pass.Info.Types[n].Type.(*types.Signature)
				var res *types.Tuple
				if sig != nil {
					res = sig.Results()
				}
				funcResults = append(funcResults, res)
				ast.Inspect(n.Body, walk)
				funcResults = funcResults[:len(funcResults)-1]
				return false
			case *ast.ReturnStmt:
				if len(funcResults) == 0 {
					return true
				}
				res := funcResults[len(funcResults)-1]
				if res == nil || res.Len() != len(n.Results) {
					return true
				}
				for i, r := range n.Results {
					checkUnitsSlot(pass, res.At(i).Type(), r, "return value")
				}
			case *ast.CallExpr:
				checkUnitsCall(pass, n)
			case *ast.CompositeLit:
				checkUnitsCompositeLit(pass, n)
			case *ast.AssignStmt:
				if n.Tok == token.ASSIGN && len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						if tv, ok := pass.Info.Types[n.Lhs[i]]; ok {
							checkUnitsSlot(pass, tv.Type, n.Rhs[i], "assignment to "+exprString(n.Lhs[i]))
						}
					}
				}
			case *ast.ValueSpec:
				if n.Type != nil {
					if tv, ok := pass.Info.Types[n.Type]; ok {
						for _, v := range n.Values {
							checkUnitsSlot(pass, tv.Type, v, "declaration")
						}
					}
				}
			case *ast.BinaryExpr:
				if n.Op == token.ADD || n.Op == token.SUB {
					xt, xok := pass.Info.Types[n.X]
					yt, yok := pass.Info.Types[n.Y]
					if xok && yok && isUnitsTime(xt.Type) && isUnitsTime(yt.Type) &&
						!isZeroConst(pass, n.X) && !isZeroConst(pass, n.Y) {
						if n.Op == token.ADD {
							pass.Reportf(n.Pos(), "adding two units.Time values: a Time is a point in time, not a span; use t.Add(d) with a units.Duration")
						} else {
							pass.Reportf(n.Pos(), "subtracting units.Time values with '-' yields a mistyped Time; use t.Sub(u), which returns a units.Duration")
						}
					}
				}
			}
			return true
		}
		for _, decl := range f.Decls {
			ast.Inspect(decl, walk)
		}
	}
	return nil
}

func signatureResults(pass *Pass, name *ast.Ident) *types.Tuple {
	obj, ok := pass.Info.Defs[name].(*types.Func)
	if !ok {
		return nil
	}
	return obj.Type().(*types.Signature).Results()
}

// checkUnitsSlot reports a bare nonzero literal flowing into a
// units-typed slot.
func checkUnitsSlot(pass *Pass, want types.Type, e ast.Expr, where string) {
	named := unitsTypeOf(want)
	if named == nil {
		return
	}
	lit, ok := bareNumericLiteral(e)
	if !ok || isZeroConst(pass, e) {
		return
	}
	pass.Reportf(lit.Pos(), "bare literal %s in %s where units.%s is expected; name the unit (e.g. a units.%s constant expression or explicit conversion)",
		lit.Value, where, named.Obj().Name(), named.Obj().Name())
}

func checkUnitsCall(pass *Pass, call *ast.CallExpr) {
	// A conversion T(x) between two different units types launders a
	// quantity across dimensions.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		target := unitsTypeOf(tv.Type)
		if target == nil || len(call.Args) != 1 {
			return
		}
		argTV, ok := pass.Info.Types[call.Args[0]]
		if !ok {
			return
		}
		src := unitsTypeOf(argTV.Type)
		if src != nil && src.Obj() != target.Obj() {
			pass.Reportf(call.Pos(), "direct conversion units.%s -> units.%s changes the quantity's meaning; use the units helpers (Time.Add/Sub, units.Epoch, TransmissionTime, BytesInFlight)",
				src.Obj().Name(), target.Obj().Name())
		}
		return
	}
	// Ordinary call: check each argument against its parameter type.
	fnTV, ok := pass.Info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := fnTV.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		checkUnitsSlot(pass, pt, arg, "call argument")
	}
}

func checkUnitsCompositeLit(pass *Pass, lit *ast.CompositeLit) {
	tv, ok := pass.Info.Types[lit]
	if !ok {
		return
	}
	switch u := tv.Type.Underlying().(type) {
	case *types.Struct:
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				// Positional struct literals are rare in this tree;
				// resolve by index.
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			for i := 0; i < u.NumFields(); i++ {
				if u.Field(i).Name() == key.Name {
					checkUnitsSlot(pass, u.Field(i).Type(), kv.Value, "field "+key.Name)
					break
				}
			}
		}
	case *types.Slice:
		for _, el := range lit.Elts {
			checkUnitsSlot(pass, u.Elem(), elementValue(el), "slice element")
		}
	case *types.Array:
		for _, el := range lit.Elts {
			checkUnitsSlot(pass, u.Elem(), elementValue(el), "array element")
		}
	case *types.Map:
		for _, el := range lit.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				checkUnitsSlot(pass, u.Key(), kv.Key, "map key")
				checkUnitsSlot(pass, u.Elem(), kv.Value, "map value")
			}
		}
	}
}

func elementValue(el ast.Expr) ast.Expr {
	if kv, ok := el.(*ast.KeyValueExpr); ok {
		return kv.Value
	}
	return el
}
