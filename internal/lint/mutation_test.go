package lint_test

import (
	"strings"
	"testing"

	"bufsim/internal/lint"
)

// TestSeededMutationDetected loads the deliberately seeded cross-shard
// ownership bug in internal/topology (build tag "shardmutation",
// excluded from every normal build) and demands that shardownership
// reports it: the analyzer proves itself against the real tree, not
// just against fixtures. Without the tag the package must stay clean —
// the same source the digest harness actually runs.
func TestSeededMutationDetected(t *testing.T) {
	mod, err := lint.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	const pkg = "bufsim/internal/topology"
	analyzers := []*lint.Analyzer{lint.ShardOwnership}

	load := func(tags ...string) []lint.Finding {
		t.Helper()
		loader := lint.NewLoader(mod)
		loader.Tags = tags
		p, err := loader.Load(pkg)
		if err != nil {
			t.Fatal(err)
		}
		findings, err := lint.RunAnalyzers(p.Fset, p.Files, p.Types, p.Info, p.PkgPath, analyzers)
		if err != nil {
			t.Fatal(err)
		}
		return findings
	}

	if clean := load(); len(clean) != 0 {
		t.Fatalf("topology without the mutation should be clean, got %v", clean)
	}

	seeded := load("shardmutation")
	found := false
	for _, f := range seeded {
		if f.Analyzer == "shardownership" &&
			strings.Contains(f.Message, "crosses shard views") &&
			strings.Contains(f.Position.Filename, "shardmutation.go") {
			found = true
		}
	}
	if !found {
		t.Fatalf("shardownership did not report the seeded cross-shard mutation; findings: %v", seeded)
	}
}
