package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"bufsim/internal/lint"
)

func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "directive.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

// TestMalformedDirective: a //lint:ignore without a reason (or without
// an analyzer list) is itself reported, under the pseudo-analyzer
// lintdirective — an unexplained suppression is worth nothing in review.
func TestMalformedDirective(t *testing.T) {
	fset, files := parseOne(t, `package p

func f() int {
	//lint:ignore simdeterminism
	return 1
}
`)
	findings, err := lint.RunAnalyzers(fset, files, nil, nil, "p", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "lintdirective" || !strings.Contains(f.Message, "malformed") {
		t.Errorf("unexpected finding: %+v", f)
	}
	if f.Position.Line != 4 {
		t.Errorf("finding at line %d, want 4", f.Position.Line)
	}
}

// TestWellFormedDirectiveSilent: a directive with a reason produces no
// lintdirective noise on its own.
func TestWellFormedDirectiveSilent(t *testing.T) {
	fset, files := parseOne(t, `package p

func f() int {
	//lint:ignore simdeterminism progress output only
	return 1
}
`)
	findings, err := lint.RunAnalyzers(fset, files, nil, nil, "p", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("got findings %v, want none", findings)
	}
}
