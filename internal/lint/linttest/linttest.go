// Package linttest runs one lint.Analyzer over fixture packages under
// testdata/src and checks its diagnostics against `// want` annotations,
// in the style of golang.org/x/tools/go/analysis/analysistest:
//
//	x := m[k] // want `regexp matching the diagnostic`
//
// A want annotation takes one or more Go string literals (quoted or
// backquoted), each a regexp that must match exactly one diagnostic
// reported on that line. Diagnostics without a matching want, and wants
// without a matching diagnostic, fail the test.
//
// Fixture packages may import real module packages (bufsim/...): the
// harness registers both the enclosing module and the GOPATH-style
// testdata/src root with the loader. The analyzer's AppliesTo filter is
// deliberately bypassed so fixtures can live in synthetic packages.
package linttest

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"bufsim/internal/lint"
)

// Run loads each fixture package and checks a's diagnostics against the
// package's want annotations.
func Run(t *testing.T, a *lint.Analyzer, pkgs ...string) {
	t.Helper()
	mod, err := lint.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	loader := lint.NewLoader(mod, lint.Module{Path: "", Dir: filepath.Join("testdata", "src")})
	for _, pkgPath := range pkgs {
		pkg, err := loader.Load(pkgPath)
		if err != nil {
			t.Fatalf("load %s: %v", pkgPath, err)
		}
		findings, err := lint.RunAnalyzers(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, pkg.PkgPath, []*lint.Analyzer{stripAppliesTo(a)})
		if err != nil {
			t.Fatalf("run %s on %s: %v", a.Name, pkgPath, err)
		}
		checkWants(t, pkg, findings)
	}
}

func stripAppliesTo(a *lint.Analyzer) *lint.Analyzer {
	cp := *a
	cp.AppliesTo = nil
	return &cp
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

func checkWants(t *testing.T, pkg *lint.Package, findings []lint.Finding) {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				wants = append(wants, parseWants(t, pkg.Fset, c)...)
			}
		}
	}
	for _, fd := range findings {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != fd.Position.Filename || w.line != fd.Position.Line {
				continue
			}
			if w.re.MatchString(fd.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s (%s)", fd.Position, fd.Message, fd.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}

// parseWants extracts the want annotations from one comment. The
// comment's END position anchors the line, so a trailing comment binds
// to its own source line.
func parseWants(t *testing.T, fset *token.FileSet, c *ast.Comment) []*want {
	t.Helper()
	text := c.Text
	idx := strings.Index(text, "// want ")
	if idx < 0 {
		if idx = strings.Index(text, "/* want "); idx < 0 {
			return nil
		}
	}
	rest := strings.TrimSpace(text[idx+len("// want "):])
	rest = strings.TrimSuffix(rest, "*/")
	pos := fset.Position(c.Pos())
	var out []*want
	for rest != "" {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			break
		}
		var lit, remainder string
		switch rest[0] {
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated backquoted want", pos)
			}
			lit, remainder = rest[1:1+end], rest[end+2:]
		case '"':
			var err error
			// Find the closing quote by re-scanning with strconv.
			end := matchQuoted(rest)
			if end < 0 {
				t.Fatalf("%s: unterminated quoted want", pos)
			}
			lit, err = strconv.Unquote(rest[:end+1])
			if err != nil {
				t.Fatalf("%s: bad want literal: %v", pos, err)
			}
			remainder = rest[end+1:]
		default:
			t.Fatalf("%s: want arguments must be quoted or backquoted regexps, got %q", pos, rest)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", pos, lit, err)
		}
		out = append(out, &want{file: pos.Filename, line: pos.Line, re: re, raw: lit})
		rest = remainder
	}
	if len(out) == 0 {
		t.Fatalf("%s: want comment with no patterns", pos)
	}
	return out
}

// matchQuoted returns the index of the closing double quote of a Go
// string literal starting at s[0]=='"', honoring escapes, or -1.
func matchQuoted(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i
		}
	}
	return -1
}

// RunAll is a convenience for driving several fixture packages through
// several analyzers in one test table.
func RunAll(t *testing.T, cases map[*lint.Analyzer][]string) {
	t.Helper()
	for a, pkgs := range cases {
		a, pkgs := a, pkgs
		t.Run(a.Name, func(t *testing.T) { Run(t, a, pkgs...) })
	}
}
