package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"
)

// Module is one root the loader can resolve import paths under. A Module
// with an empty Path is a GOPATH-style fixture root: the import path is
// joined directly onto Dir (linttest uses this for testdata/src).
type Module struct {
	Path string // import path prefix, e.g. "bufsim"; "" for fixture roots
	Dir  string // directory holding the module root
}

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Loader parses and type-checks packages without the go command, so the
// analyzers can run inside tests and in the standalone buflint mode.
// Imports under a registered Module resolve from source on disk;
// everything else (the standard library) resolves through go/importer's
// source importer against GOROOT. The loader memoizes by import path.
type Loader struct {
	fset    *token.FileSet
	mods    []Module
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool

	// Tags are extra build tags honored when selecting files, so tests
	// can load deliberately seeded mutations (e.g. the shardmutation
	// cross-shard bug) that normal builds exclude. Set before the first
	// Load; the loader memoizes per instance.
	Tags []string
}

// NewLoader returns a loader resolving imports under the given modules.
func NewLoader(mods ...Module) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		mods:    mods,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// Fset returns the file set all loaded packages share.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// dirFor resolves an import path to a directory under one of the
// loader's modules.
func (l *Loader) dirFor(path string) (string, bool) {
	for _, m := range l.mods {
		switch {
		case m.Path == "":
			dir := filepath.Join(m.Dir, filepath.FromSlash(path))
			if st, err := os.Stat(dir); err == nil && st.IsDir() {
				return dir, true
			}
		case path == m.Path:
			return m.Dir, true
		case strings.HasPrefix(path, m.Path+"/"):
			return filepath.Join(m.Dir, filepath.FromSlash(strings.TrimPrefix(path, m.Path+"/"))), true
		}
	}
	return "", false
}

// Load parses and type-checks the package at the given import path.
// Type errors are fatal: an analyzer's answers are only meaningful on a
// well-typed package.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("lint: import path %q is outside every registered module", path)
	}
	bctx := build.Default
	bctx.BuildTags = append(append([]string(nil), bctx.BuildTags...), l.Tags...)
	bp, err := bctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %v", path, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer: importerFunc(l.importPkg),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %v", path, err)
	}
	p := &Package{PkgPath: path, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.dirFor(path); ok {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return Module{}, err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					path := strings.TrimSpace(strings.Trim(strings.TrimSpace(rest), `"`))
					if path != "" {
						return Module{Path: path, Dir: d}, nil
					}
				}
			}
			return Module{}, fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return Module{}, fmt.Errorf("lint: no go.mod at or above %s", abs)
		}
		d = parent
	}
}

// ExpandPatterns resolves go-style package patterns ("./...",
// "./internal/...", "./cmd/bufsim") against a module into the import
// paths of every directory that holds buildable Go files. testdata and
// hidden directories are skipped, as the go tool does.
func ExpandPatterns(mod Module, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(rel string) {
		rel = filepath.ToSlash(rel)
		var imp string
		switch {
		case rel == "." || rel == "":
			imp = mod.Path
		default:
			imp = mod.Path + "/" + rel
		}
		if !seen[imp] {
			seen[imp] = true
			out = append(out, imp)
		}
	}
	hasGo := func(dir string) bool {
		ents, err := os.ReadDir(dir)
		if err != nil {
			return false
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				return true
			}
		}
		return false
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
		}
		if pat == "..." {
			recursive, pat = true, "."
		}
		pat = strings.TrimPrefix(pat, "./")
		if pat == "" {
			pat = "."
		}
		root := filepath.Join(mod.Dir, filepath.FromSlash(pat))
		if !recursive {
			if hasGo(root) {
				rel, err := filepath.Rel(mod.Dir, root)
				if err != nil {
					return nil, err
				}
				add(rel)
			}
			continue
		}
		err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGo(p) {
				rel, err := filepath.Rel(mod.Dir, p)
				if err != nil {
					return err
				}
				add(rel)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

// Run loads every package matched by patterns under the module and runs
// the analyzers, returning all surviving findings sorted by position.
func Run(mod Module, patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	findings, _, err := RunTimed(mod, patterns, analyzers)
	return findings, err
}

// RunTimed is Run plus per-analyzer wall time aggregated across all
// loaded packages, in suite order.
func RunTimed(mod Module, patterns []string, analyzers []*Analyzer) ([]Finding, []AnalyzerTiming, error) {
	paths, err := ExpandPatterns(mod, patterns)
	if err != nil {
		return nil, nil, err
	}
	loader := NewLoader(mod)
	var findings []Finding
	total := make(map[string]time.Duration)
	var order []string
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			return nil, nil, err
		}
		fs, ts, err := RunAnalyzersTimed(pkg.Fset, pkg.Files, pkg.Types, pkg.Info, pkg.PkgPath, analyzers)
		if err != nil {
			return nil, nil, err
		}
		findings = append(findings, fs...)
		for _, t := range ts {
			if _, ok := total[t.Analyzer]; !ok {
				order = append(order, t.Analyzer)
			}
			total[t.Analyzer] += t.Elapsed
		}
	}
	timings := make([]AnalyzerTiming, 0, len(order))
	for _, name := range order {
		timings = append(timings, AnalyzerTiming{Analyzer: name, Elapsed: total[name]})
	}
	return findings, timings, nil
}
