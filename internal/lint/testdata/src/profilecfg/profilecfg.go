// Package profilecfg is the digestfield fixture for workload-profile
// configs: a run config carrying a workload source as pure data (an
// interface over digestable structs) is fine, while launch callbacks
// and progress channels — tempting additions to a traffic engine —
// silently vanish from the cache key.
package profilecfg

import (
	"bufsim/internal/runcache"
	"bufsim/internal/units"
)

var digestIgnore = runcache.IgnoreFields("Metrics", "Cache")

type curve []struct {
	T units.Duration
	V float64
}

// ProfileConfig mirrors the real profile run config: curves are slices
// of scalar structs and the source is an interface whose value digests
// by concrete type — every semantic field reaches the key.
type ProfileConfig struct {
	Seed       int64
	Rate       units.BitRate
	Arrival    curve
	Population curve
	Source     interface{ String() string }
	Buffers    []int

	Metrics *int // ignored: observer
	Cache   *int // ignored: cache plumbing
}

// BadEngineConfig collects the hazards a traffic engine invites: hooks
// observing flow launches and channels reporting progress are invisible
// to the digest, so two configs differing only there would share one
// cached result.
type BadEngineConfig struct {
	Seed     int64
	OnLaunch func(int64)   // want `BadEngineConfig\.OnLaunch \(kind func\) is silently skipped by the runcache digest`
	Progress chan float64  // want `BadEngineConfig\.Progress \(kind chan\) is silently skipped by the runcache digest`
	Stages   []func() bool // want `BadEngineConfig\.Stages\[\] reaches a func value`
}
