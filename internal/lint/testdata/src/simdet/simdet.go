// Package simdet is the simdeterminism fixture: wall-clock reads whose
// values escape and global math/rand draws are violations; reads that
// provably flow only to telemetry sinks (stderr, confined in-package
// helpers), seeded streams, and plain type uses are not.
package simdet

import (
	"fmt"
	"math/rand"
	"os"
	"time"
)

// wallClock leaks the elapsed reading to its caller: the time.Since
// result escapes, and the Sleep is a finding wherever it appears. The
// time.Now feeding only time.Since is exempt — the finding sits on the
// escape, not the read that stayed inside.
func wallClock() time.Duration {
	start := time.Now()          // exempt: flows only into time.Since below
	time.Sleep(time.Millisecond) // want `wall-clock time\.Sleep`
	return time.Since(start)     // want `wall-clock time\.Since`
}

// wallLeak returns the raw clock reading itself.
func wallLeak() time.Time {
	return time.Now() // want `wall-clock time\.Now in deterministic package`
}

func timers() {
	_ = time.After(time.Second)    // want `wall-clock time\.After`
	_ = time.NewTimer(time.Second) // want `wall-clock time\.NewTimer`
}

func globalRand() int {
	rand.Seed(42)             // want `global math/rand\.Seed`
	rand.Shuffle(3, swap)     // want `global math/rand\.Shuffle`
	if rand.Float64() > 0.5 { // want `global math/rand\.Float64`
		return rand.Intn(10) // want `global math/rand\.Intn`
	}
	return 0
}

func swap(i, j int) {}

// seeded streams are the sanctioned source of randomness.
func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// plain uses of time's types and constants are fine: only clock reads
// and waits are nondeterministic.
func typesOnly(d time.Duration) time.Duration {
	var zero time.Time
	_ = zero
	return d * 2
}

func work() {}

// observeWall is a telemetry helper: its parameter goes only to stderr
// progress output, so the confinement summary marks it a safe sink.
func observeWall(d time.Duration) {
	fmt.Fprintf(os.Stderr, "progress: %v\n", d)
}

// confinedHelper times work for progress output only: the read flows
// into a helper whose summary proves the parameter confined.
func confinedHelper() {
	t0 := time.Now() // exempt: reaches only the confined helper
	work()
	observeWall(time.Since(t0)) // exempt: observeWall's parameter is confined
}

// recordWall stores its argument in package state, so it is NOT a
// confined sink and callers handing it wall time leak.
var lastElapsed time.Duration

func recordWall(d time.Duration) {
	lastElapsed = d
}

func leakyHelper() {
	t0 := time.Now() // exempt: flows only into time.Since
	work()
	recordWall(time.Since(t0)) // want `wall-clock time\.Since`
}

// aggregate exercises the container-store propagation: durations stored
// in a local slice stay local, and the slice reaches only a confined
// reporter — exempt end to end.
func aggregate(n int) {
	t0 := time.Now()
	ds := make([]time.Duration, n)
	for i := range ds {
		ds[i] = time.Since(t0)
	}
	reportDurations(ds)
}

func reportDurations(ds []time.Duration) {
	for _, d := range ds {
		fmt.Fprintln(os.Stderr, d)
	}
}

// suppressed demonstrates the escape hatch: the directive names the
// analyzer and gives a reason, so the leak is accepted.
func suppressed() time.Time {
	//lint:ignore simdeterminism fixture: progress output timing never feeds a result
	return time.Now()
}

func suppressedTrailing() time.Time {
	return time.Now() //lint:ignore simdeterminism fixture: trailing-form suppression
}
