// Package simdet is the simdeterminism fixture: wall-clock reads and
// global math/rand draws are violations; seeded streams and plain type
// uses are not.
package simdet

import (
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()          // want `wall-clock time\.Now in deterministic package`
	time.Sleep(time.Millisecond) // want `wall-clock time\.Sleep`
	return time.Since(start)     // want `wall-clock time\.Since`
}

func timers() {
	_ = time.After(time.Second)    // want `wall-clock time\.After`
	_ = time.NewTimer(time.Second) // want `wall-clock time\.NewTimer`
}

func globalRand() int {
	rand.Seed(42)             // want `global math/rand\.Seed`
	rand.Shuffle(3, swap)     // want `global math/rand\.Shuffle`
	if rand.Float64() > 0.5 { // want `global math/rand\.Float64`
		return rand.Intn(10) // want `global math/rand\.Intn`
	}
	return 0
}

func swap(i, j int) {}

// seeded streams are the sanctioned source of randomness.
func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// plain uses of time's types and constants are fine: only clock reads
// and waits are nondeterministic.
func typesOnly(d time.Duration) time.Duration {
	var zero time.Time
	_ = zero
	return d * 2
}

// suppressed demonstrates the escape hatch: the directive names the
// analyzer and gives a reason, so the read is accepted.
func suppressed() time.Time {
	//lint:ignore simdeterminism fixture: progress output timing never feeds a result
	return time.Now()
}

func suppressedTrailing() time.Time {
	return time.Now() //lint:ignore simdeterminism fixture: trailing-form suppression
}
