// Package digestcfg is the digestfield fixture: config fields the
// runcache digest silently skips (func/chan/unsafe kinds), shapes it
// panics on (nested funcs, non-scalar map keys), and stale IgnoreFields
// entries are violations; ignored observers and digestable fields are
// not.
package digestcfg

import (
	"context"

	"bufsim/internal/runcache"
	"bufsim/internal/units"
)

var digestIgnore = runcache.IgnoreFields("Observer", "Ctx", "Stale") // want `IgnoreFields entry "Stale" matches no exported field`

// GoodConfig exercises every digestable shape.
type GoodConfig struct {
	N        int
	Load     float64
	Name     string
	RTT      units.Duration
	Sizes    []units.ByteSize
	ByName   map[string]float64
	Nested   goodNested
	MaybePtr *goodNested
	Dist     interface{ Sample() float64 }

	Observer func(int)       // ignored: observer hook
	Ctx      context.Context // ignored: execution policy

	hidden func() // unexported fields are skipped by design
}

type goodNested struct {
	Depth int
}

// Flavor mirrors a registry-driven enum such as a congestion-control
// variant: a named integer is a scalar to the digest, alone, in a
// slice, or as a map key.
type Flavor int

// PointConfig mirrors a sweep grid point that embeds a full scenario
// config: IgnoreFields applies at any depth of the walk, so the nested
// observer fields below must be honoured, not reported.
type PointConfig struct {
	Scenario scenarioConfig
	Variants []Flavor
	ByFlavor map[Flavor]float64
	Target   float64
}

// scenarioConfig is unexported, so it is only checked through the
// exported configs that reach it.
type scenarioConfig struct {
	N        int
	Variant  Flavor
	Observer func(int)       // ignored at depth by the package IgnoreFields set
	Ctx      context.Context // ignored at depth
}

// RateConfig mirrors a rate-driven controller config whose pacing hook
// was never registered in IgnoreFields: a func-typed knob silently
// disappears from the cache key, which is exactly the hazard this
// analyzer exists to catch.
type RateConfig struct {
	Gain       float64
	MinRTT     units.Duration
	PacingHook func(float64) // want `RateConfig\.PacingHook \(kind func\) is silently skipped by the runcache digest`
}

// BadConfig collects the hazards.
type BadConfig struct {
	Hook  func()            // want `BadConfig\.Hook \(kind func\) is silently skipped by the runcache digest`
	Done  chan struct{}     // want `BadConfig\.Done \(kind chan\) is silently skipped by the runcache digest`
	Hooks []func()          // want `BadConfig\.Hooks\[\] reaches a func value`
	ByKey map[[2]int]string // want `BadConfig\.ByKey has map key type`
	Sub   badNested         // want `BadConfig\.Sub\.Fn \(kind func\) is silently skipped`
}

type badNested struct {
	Fn func()
}
