// Package eventcap is the eventcapture fixture: closure-posting and
// sim.Event identity tests are violations; Actor dispatch and
// Scheduler.Active are the sanctioned forms.
package eventcap

import (
	"bufsim/internal/sim"
	"bufsim/internal/units"
)

const opPing = 1

type pinger struct {
	sched *sim.Scheduler
	timer sim.Event
}

func (p *pinger) OnEvent(op int32, arg any) {
	if op == opPing {
		p.timer = p.sched.PostAfter(units.Second, p, opPing, nil) // actor dispatch: fine
	}
}

func (p *pinger) arm(at units.Time) {
	p.timer = p.sched.PostAt(at, p, opPing, nil)
}

func (p *pinger) disarm() {
	p.sched.Cancel(p.timer) // cancelling a possibly-stale handle is safe
}

func (p *pinger) alive() bool {
	return p.sched.Active(p.timer) // liveness via the scheduler, not ==
}

func closures(s *sim.Scheduler, t units.Time) {
	s.At(t, func() {})               // want `closure-posting Scheduler\.At`
	s.After(units.Second, func() {}) // want `closure-posting Scheduler\.After`
}

func rearm(s *sim.Scheduler, e sim.Event, t units.Time) {
	s.Reschedule(e, t, func() {}) // want `closure-posting Scheduler\.Reschedule`
}

func compare(a, b sim.Event) bool {
	return a == b // want `comparing sim\.Event handles`
}

func zeroCheck(p *pinger) bool {
	return p.timer != (sim.Event{}) // want `comparing sim\.Event handles`
}

var byEvent map[sim.Event]int // want `sim\.Event used as a map key`

func suppressed(s *sim.Scheduler, t units.Time) {
	//lint:ignore eventcapture fixture: cold-path setup scheduling, never per-packet
	s.At(t, func() {})
}
