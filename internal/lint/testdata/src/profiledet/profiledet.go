// Package profiledet is the simdeterminism fixture for workload-profile
// shapes: compiling a time-varying profile into an arrival schedule must
// be a pure function of (curve, seed). Wall-clock anchoring and global
// math/rand thinning are violations; seeded streams and pure
// control-point arithmetic are not.
package profiledet

import (
	"math/rand"
	"time"
)

type point struct {
	T time.Duration
	V float64
}

// badCompile anchors the schedule at the machine's clock and draws the
// thinning acceptance from the process-global source: the same profile
// would compile differently on every run. The time.Now read itself is
// exempt (it flows only into time.Since); the finding sits on the
// Since result escaping into the returned schedule.
func badCompile(curve []point) []time.Duration {
	start := time.Now() // exempt: flows only into time.Since below
	var schedule []time.Duration
	for _, p := range curve {
		if rand.Float64() < p.V { // want `global math/rand\.Float64`
			schedule = append(schedule, time.Since(start)+p.T) // want `wall-clock time\.Since`
		}
	}
	return schedule
}

// badPacing waits on the machine clock between launches instead of
// scheduling simulated events.
func badPacing(gap time.Duration) {
	time.Sleep(gap) // want `wall-clock time\.Sleep`
}

// goodCompile is the sanctioned shape: a seeded stream for thinning and
// pure duration arithmetic on the control points.
func goodCompile(curve []point, seed int64) []time.Duration {
	rng := rand.New(rand.NewSource(seed))
	var schedule []time.Duration
	var at time.Duration
	for _, p := range curve {
		if rng.Float64() < p.V {
			schedule = append(schedule, at+p.T)
		}
		at += p.T
	}
	return schedule
}

// interpolate is plain control-point math: time.Duration is just a
// type here, no clock is read.
func interpolate(a, b point, at time.Duration) float64 {
	if b.T == a.T {
		return a.V
	}
	frac := float64(at-a.T) / float64(b.T-a.T)
	return a.V + frac*(b.V-a.V)
}
