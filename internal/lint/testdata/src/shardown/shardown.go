// Package shardown is the shardownership fixture: state handed to
// ShardView(k) belongs to shard k, and only shard k may see it again.
// Scheduling it through another view — directly, via closure capture,
// or by aliasing through a field store — is the violation; the
// PostToAt/PostToAfter(Target) frontier, one view per component, and
// helpers handed a single arbitrary view are the blessed idioms.
package shardown

import (
	"bufsim/internal/sim"
	"bufsim/internal/units"
)

const opKick = 1

type actor struct {
	peer *actor
	n    int
}

func (a *actor) OnEvent(op int32, arg any) {}

// doubleBind schedules one actor through two views: both shards would
// dispatch into its state.
func doubleBind(s *sim.Scheduler, a *actor) {
	v0 := s.ShardView(0)
	v1 := s.ShardView(1)
	v0.PostAfter(units.Second, a, opKick, nil)
	v1.PostAfter(units.Second, a, opKick, nil) // want `a crosses shard views: bound to ShardView\(0\), now scheduled through ShardView\(1\)`
}

// closureAlias captures shard 0's actor in a closure run on shard 1.
func closureAlias(s *sim.Scheduler, a *actor) {
	v0 := s.ShardView(0)
	v1 := s.ShardView(1)
	v0.PostAfter(units.Second, a, opKick, nil)
	v1.After(units.Second, func() { a.n++ }) // want `closure scheduled through ShardView\(1\) captures a, which is bound to ShardView\(0\)`
}

// eventRebind cancels shard 0's event through shard 1's view: the
// handle pins the view that minted it.
func eventRebind(s *sim.Scheduler, a *actor) {
	v0 := s.ShardView(0)
	v1 := s.ShardView(1)
	ev := v0.PostAfter(units.Second, a, opKick, nil)
	v1.Cancel(ev) // want `ev crosses shard views: bound to ShardView\(0\), now scheduled through ShardView\(1\)`
}

// fieldAlias stores shard 0's actor into shard 1's actor: the next
// dispatch on shard 1 reaches across the cut through the field.
func fieldAlias(s *sim.Scheduler, a, b *actor) {
	v0 := s.ShardView(0)
	v1 := s.ShardView(1)
	v0.PostAfter(units.Second, a, opKick, nil)
	v1.PostAfter(units.Second, b, opKick, nil)
	b.peer = a // want `stores a \(bound to ShardView\(0\)\) into b\.peer \(bound to ShardView\(1\)\)`
}

// frontier is the sanctioned crossing: cross-shard work goes through a
// Target and the PostToAt/PostToAfter merge point.
func frontier(s *sim.Scheduler, a *actor) {
	v1 := s.ShardView(1)
	v1.PostAfter(units.Second, a, opKick, nil)
	tg := s.TargetFor(a)
	s.PostToAfter(units.Second, tg, opKick, nil)
}

// sameView twice is the normal shard-local pattern.
func sameView(s *sim.Scheduler, a *actor) {
	v := s.ShardView(2)
	v.PostAfter(units.Second, a, opKick, nil)
	v.PostAfter(2*units.Second, a, opKick, nil)
}

// helper is handed one arbitrary view: it mints no view identity of its
// own, so the intraprocedural analysis stays silent rather than guess.
func helper(view *sim.Scheduler, a *actor) {
	view.PostAfter(units.Second, a, opKick, nil)
}

// perShard gives each shard its own actor: bindings never conflict.
func perShard(s *sim.Scheduler, as []*actor) {
	for i, a := range as {
		v := s.ShardView(i)
		v.PostAfter(units.Second, a, opKick, nil)
	}
}
