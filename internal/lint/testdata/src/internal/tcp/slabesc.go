// Package tcp is the slabescape fixture: a miniature struct-of-arrays
// Slab whose columns grow through addRow, mirroring the real sender
// slab. Element reads and writes copy scalars and are always safe;
// what must not happen is an alias of a column's backing array —
// &col[i], col[i:j], or the column slice itself — surviving anything
// that can grow the column.
package tcp

type Slab struct {
	cwnd []float64
	srtt []float64
}

func (sl *Slab) addRow() int32 {
	sl.cwnd = append(sl.cwnd, 0)
	sl.srtt = append(sl.srtt, 0)
	return int32(len(sl.cwnd) - 1)
}

// grow reaches addRow transitively: the static call graph sees through
// the indirection.
func (sl *Slab) grow() { sl.addRow() }

type sender struct {
	sl  *Slab
	row int32
	cw  *float64
}

// onAck is the blessed access pattern: element reads and writes copy
// scalars in and out, no alias of the backing array survives.
func (s *sender) onAck() {
	s.sl.cwnd[s.row] += 1
	v := s.sl.srtt[s.row]
	_ = v
}

// useAfterGrow holds an element pointer across growth.
func useAfterGrow(sl *Slab) float64 {
	p := &sl.cwnd[0]
	sl.grow()
	return *p // want `p aliases a tcp\.Slab column and is used after a call that can reach addRow`
}

// window returns a subslice of a column: the caller would hold it
// across the next growth.
func window(sl *Slab, i, j int32) []float64 {
	return sl.srtt[i:j] // want `returning sl\.srtt\[\.\.\.\], an alias into a tcp\.Slab column`
}

var stash *float64

// storeGlobal parks an element pointer in package state.
func storeGlobal(sl *Slab) {
	stash = &sl.cwnd[0] // want `storing &sl\.cwnd\[\.\.\.\], an alias into a tcp\.Slab column, in stash`
}

// cache stores the alias in longer-lived struct state.
func (s *sender) cache() {
	s.cw = &s.sl.cwnd[s.row] // want `storing &s\.sl\.cwnd\[\.\.\.\], an alias into a tcp\.Slab column, in s\.cw`
}

// handOff passes an alias to a callee that can grow the slab.
func handOff(sl *Slab) {
	p := &sl.srtt[0]
	consume(sl, p) // want `passing p, an alias into a tcp\.Slab column, to a call that can reach addRow`
}

func consume(sl *Slab, p *float64) {
	sl.addRow()
	_ = *p
}

// publish hands an alias to dynamic dispatch: the analyzer cannot see
// whether the callee grows or retains, so it refuses.
func publish(sl *Slab, f func(*float64)) {
	f(&sl.cwnd[0]) // want `passing &sl\.cwnd\[\.\.\.\], an alias into a tcp\.Slab column, through dynamic dispatch`
}

// sendAlias ships a column header across a channel.
func sendAlias(sl *Slab, ch chan []float64) {
	ch <- sl.cwnd // want `sending sl\.cwnd, an alias into a tcp\.Slab column, across a channel`
}

// scratch uses the alias only before growth: fine.
func scratch(sl *Slab) {
	p := &sl.cwnd[0]
	*p = 2
	sl.grow()
}

// snapshot copies the element before growth: a scalar copy is not an
// alias.
func snapshot(sl *Slab) float64 {
	v := sl.cwnd[0]
	sl.grow()
	return v
}

// pinned demonstrates the audited escape hatch.
func pinned(sl *Slab) *float64 {
	//lint:ignore slabescape fixture: caller re-derives the pointer after every growth
	return &sl.cwnd[0]
}
