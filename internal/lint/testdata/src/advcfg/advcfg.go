// Package advcfg is the digestfield fixture for adversarial-sweep
// configs: a grid point keyed by scalar pattern knobs digests cleanly,
// while per-burst callbacks and drop-report channels — tempting
// additions to an attack harness — silently vanish from the cache key.
package advcfg

import (
	"bufsim/internal/runcache"
	"bufsim/internal/units"
)

var digestIgnore = runcache.IgnoreFields("Audit", "Cache")

// PatternConfig mirrors the real adversarial point config: only scalar
// semantic knobs, so every field reaches the key.
type PatternConfig struct {
	Seed       int64
	Pattern    int
	N          int
	Rate       units.BitRate
	RTT        units.Duration
	PeakFactor float64
	Factors    []float64

	Audit *int // ignored: observer
	Cache *int // ignored: cache plumbing
}

// BadHarnessConfig collects the hazards an attack harness invites:
// hooks observing each burst and channels streaming drop events are
// invisible to the digest, so two configs differing only there would
// share one cached result.
type BadHarnessConfig struct {
	Seed    int64
	OnBurst func(int)     // want `BadHarnessConfig\.OnBurst \(kind func\) is silently skipped by the runcache digest`
	Drops   chan int64    // want `BadHarnessConfig\.Drops \(kind chan\) is silently skipped by the runcache digest`
	Phases  []func() bool // want `BadHarnessConfig\.Phases\[\] reaches a func value`
}
