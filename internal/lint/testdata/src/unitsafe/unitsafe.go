// Package unitsafe is the unitsafety fixture: bare numeric literals in
// units-typed slots, direct cross-unit conversions, and raw Time
// arithmetic are violations; named constants, explicit constructions
// and the units helpers are not.
package unitsafe

import "bufsim/internal/units"

type linkSpec struct {
	Segment units.ByteSize
	RTT     units.Duration
	Rate    units.BitRate
}

func badFields() linkSpec {
	return linkSpec{
		Segment: 1500,             // want `bare literal 1500 in field Segment where units\.ByteSize is expected`
		RTT:     100,              // want `bare literal 100 in field RTT where units\.Duration is expected`
		Rate:    155 * units.Mbps, // constant expression names the unit
	}
}

func goodFields() linkSpec {
	return linkSpec{
		Segment: units.DefaultSegment,
		RTT:     100 * units.Millisecond,
		Rate:    units.OC3,
	}
}

func takesSize(b units.ByteSize) {}

func args() {
	takesSize(1000)                 // want `bare literal 1000 in call argument where units\.ByteSize is expected`
	takesSize(0)                    // zero is the zero value in every unit
	takesSize(units.DefaultSegment) // named constant
	takesSize(1500 * units.Byte)    // constructed with the unit in the name
	takesSize(units.ByteSize(40))   // explicit conversion names the unit
}

func assign(s *linkSpec) {
	s.Segment = 9000 // want `bare literal 9000 in assignment to s\.Segment`
}

func decl() {
	var d units.Duration = 250 // want `bare literal 250 in declaration`
	_ = d
}

func ret() units.Duration {
	return 42 // want `bare literal 42 in return value`
}

func crossConvert(t units.Time, d units.Duration, b units.ByteSize) {
	_ = units.Duration(t)    // want `direct conversion units\.Time -> units\.Duration`
	_ = units.Time(d)        // want `direct conversion units\.Duration -> units\.Time`
	_ = units.BitRate(b)     // want `direct conversion units\.ByteSize -> units\.BitRate`
	_ = units.Time(int64(7)) // plain integer conversion constructs, not launders
}

func pointArithmetic(t, u units.Time, d units.Duration) units.Time {
	_ = t + u // want `adding two units\.Time values`
	_ = t - u // want `subtracting units\.Time values`
	_ = t.Sub(u)
	return t.Add(d)
}

func slices() []units.Duration {
	return []units.Duration{
		80 * units.Millisecond,
		120, // want `bare literal 120 in slice element`
	}
}

// ccSpec mirrors a congestion-control config: rate-based controllers
// carry both time-domain knobs (min-RTT window, probe interval) and a
// pacing rate, so they are prime territory for bare literals and for
// laundering a BitRate into a Duration.
type ccSpec struct {
	MinRTTWindow  units.Duration
	ProbeInterval units.Duration
	PacingRate    units.BitRate
}

func badCC() ccSpec {
	return ccSpec{
		MinRTTWindow:  10 * units.Second,
		ProbeInterval: 200, // want `bare literal 200 in field ProbeInterval where units\.Duration is expected`
		PacingRate:    25 * units.Mbps,
	}
}

func paceFrom(r units.BitRate, w units.Duration) units.Duration {
	_ = units.Duration(r) // want `direct conversion units\.BitRate -> units\.Duration`
	return w
}

func suppressed() units.ByteSize {
	//lint:ignore unitsafety fixture: demonstrating the suppression path
	return 1480
}
