// Package profileunits is the unitsafety fixture for workload-profile
// shapes: control points pair a units.Duration offset with a unitless
// value, so bare literals in the time slot and laundering a profile
// offset into an absolute Time are the live hazards.
package profileunits

import "bufsim/internal/units"

type controlPoint struct {
	T units.Duration // offset from the profile start
	V float64        // unitless: flows/sec or a flow count
}

func badCurve() []controlPoint {
	return []controlPoint{
		{T: 0, V: 0.1}, // zero is the zero value in every unit
		{T: 30, V: 1},  // want `bare literal 30 in field T where units\.Duration is expected`
		{T: 60 * units.Second, V: 0.1},
	}
}

func goodCurve() []controlPoint {
	return []controlPoint{
		{T: 0, V: 0.1},
		{T: 30 * units.Second, V: 1},
		{T: units.Minute, V: 0.1},
	}
}

// anchor turns a profile offset into simulated time: the sanctioned
// route is Time.Add, never a direct conversion.
func anchor(base units.Time, offset units.Duration) units.Time {
	_ = units.Time(offset) // want `direct conversion units\.Duration -> units\.Time`
	return base.Add(offset)
}

// elapsed measures where in the profile a simulated instant lands: the
// span between two points comes from Sub, not raw subtraction.
func elapsed(now, start units.Time) units.Duration {
	_ = now - start // want `subtracting units\.Time values`
	return now.Sub(start)
}

func badHorizon(end units.Duration) units.Duration {
	var horizon units.Duration = 3600 // want `bare literal 3600 in declaration`
	if end > horizon {
		return end
	}
	return horizon
}
