// Package mapord is the maporder fixture: order-dependent work inside
// range-over-map is a violation; the collect-keys-and-sort idiom and
// commutative aggregation are not.
package mapord

import (
	"fmt"
	"sort"
	"strings"
)

func emit(m map[string]int, w *strings.Builder) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt\.Fprintf inside range over a map`
	}
}

func emitMethod(m map[string]int, w *strings.Builder) {
	for k := range m {
		w.WriteString(k) // want `Builder\.WriteString inside range over a map`
	}
}

func values(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // want `append to out inside range over a map`
	}
	return out
}

// sortedKeys is the sanctioned idiom: collect only the keys, sort them,
// iterate the slice.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedEmit(m map[string]int, w *strings.Builder) {
	for _, k := range sortedKeys(m) {
		fmt.Fprintf(w, "%s=%d\n", k, m[k]) // slice range: fine
	}
}

func floatSum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `floating-point accumulation into total`
	}
	return total
}

// intSum commutes exactly, so map order cannot change the answer.
func intSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func drain(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want `send on a channel inside range over a map`
	}
}

// scratch appends only to a slice whose lifetime is one iteration.
func scratch(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}

// suppressed: a keyed lookup table where order genuinely cannot matter,
// accepted with a reason.
func suppressed(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		//lint:ignore maporder fixture: demonstrating the suppression path
		total += v
	}
	return total
}
