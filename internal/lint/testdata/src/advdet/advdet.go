// Package advdet is the simdeterminism fixture for adversarial traffic
// generation: a pulse train or lockstep cohort is only adversarial if
// it replays identically, so its epochs come from the simulated clock
// and any jitter from a seeded stream. Wall-clock anchoring and global
// math/rand jitter are violations; pure phase arithmetic is not.
package advdet

import (
	"math/rand"
	"time"
)

type train struct {
	Period time.Duration
	Duty   float64
}

// badEpochs anchors the burst phase at the machine's clock and jitters
// it from the process-global source: the "synchronized" cohort would
// drift apart between runs. The time.Now read is exempt (it flows only
// into time.Since); the finding sits on the escaping Since result.
func badEpochs(trains []train) []time.Duration {
	epoch := time.Now() // exempt: flows only into time.Since below
	var starts []time.Duration
	for _, tr := range trains {
		jitter := time.Duration(rand.Int63n(int64(tr.Period))) // want `global math/rand\.Int63n`
		starts = append(starts, time.Since(epoch)+jitter)      // want `wall-clock time\.Since`
	}
	return starts
}

// badSpacing paces the probe's fill phase on the machine clock instead
// of scheduling simulated departures.
func badSpacing(gap time.Duration) {
	time.Sleep(gap) // want `wall-clock time\.Sleep`
}

// goodEpochs is the sanctioned shape: every train starts at the same
// simulated origin and any jitter comes from a seeded stream.
func goodEpochs(trains []train, seed int64) []time.Duration {
	rng := rand.New(rand.NewSource(seed))
	var starts []time.Duration
	for _, tr := range trains {
		starts = append(starts, time.Duration(rng.Int63n(int64(tr.Period))))
	}
	return starts
}

// phaseOffset is pure modular arithmetic on simulated durations: no
// clock is read, time.Duration is just a type.
func phaseOffset(since, period time.Duration, duty float64) bool {
	off := since % period
	return off < time.Duration(duty*float64(period))
}
