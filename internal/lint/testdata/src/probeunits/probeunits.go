// Package probeunits is the unitsafety fixture for the black-box probe:
// a probe schedule mixes service-time gaps (units.Duration), absolute
// deadlines (units.Time) and packet sizes (units.ByteSize), so bare
// literals in those slots and laundering a gap into a deadline are the
// live hazards.
package probeunits

import "bufsim/internal/units"

type probeStep struct {
	Gap    units.Duration // inter-packet spacing at the probed rate
	Packet units.ByteSize
}

func badSchedule() []probeStep {
	return []probeStep{
		{Gap: 0, Packet: units.DefaultSegment}, // zero is the zero value in every unit
		{Gap: 800, Packet: 250},                // want `bare literal 800 in field Gap where units\.Duration is expected` `bare literal 250 in field Packet where units\.ByteSize is expected`
		{Gap: 800 * units.Microsecond, Packet: units.DefaultSegment / 4},
	}
}

func goodSchedule() []probeStep {
	return []probeStep{
		{Gap: 800 * units.Microsecond, Packet: units.DefaultSegment},
		{Gap: units.Millisecond, Packet: 250 * units.Byte},
	}
}

// deadline turns a drain gap into the next service instant: the
// sanctioned route is Time.Add, never a direct conversion.
func deadline(now units.Time, gap units.Duration) units.Time {
	_ = units.Time(gap) // want `direct conversion units\.Duration -> units\.Time`
	return now.Add(gap)
}

// sojourn measures a packet's queueing delay: the span between enqueue
// and dequeue comes from Sub, not raw subtraction.
func sojourn(out, in units.Time) units.Duration {
	_ = out - in // want `subtracting units\.Time values`
	return out.Sub(in)
}

func badIdle() units.Duration {
	var idle units.Duration = 60_000_000_000 // want `bare literal 60_000_000_000 in declaration`
	return idle
}
