// Package shardsafe is the shardsafety fixture: it plays a component
// package OUTSIDE the shard-aware layers (sim, topology, link), so any
// touch of the cross-shard scheduling surface is a violation, and
// constant EnableShards arguments that would panic at runtime are
// compile-time findings.
package shardsafe

import (
	"bufsim/internal/sim"
	"bufsim/internal/units"
)

const opDeliver = 1

type component struct {
	sched *sim.Scheduler
}

func (c *component) OnEvent(op int32, arg any) {}

// Shard-local scheduling through the ordinary surface is fine: the
// event's class is the scheduler view it was posted through.
func (c *component) armLocal() {
	c.sched.PostAfter(units.Second, c, opDeliver, nil)
}

// Reaching across the cut from a component package is not.
func (c *component) reachAcross(k int) {
	view := c.sched.ShardView(k) // want `Scheduler\.ShardView outside the shard-aware layers`
	view.PostAfter(units.Second, c, opDeliver, nil)
}

func (c *component) aimAt(other *component) {
	tg := c.sched.TargetFor(other)                        // want `Scheduler\.TargetFor outside the shard-aware layers`
	c.sched.PostToAfter(units.Second, tg, opDeliver, nil) // want `Scheduler\.PostToAfter outside the shard-aware layers`
}

func (c *component) aimAtAbsolute(tg sim.Target, at units.Time) { // want `sim\.Target outside the shard-aware layers`
	c.sched.PostToAt(at, tg, opDeliver, nil) // want `Scheduler\.PostToAt outside the shard-aware layers`
}

// Holding a Target in component state smuggles cross-shard reach into a
// package that should be shard-local.
type smuggler struct {
	dst sim.Target // want `sim\.Target outside the shard-aware layers`
}

// Constant-argument validation fires alongside the placement finding:
// these calls panic at runtime regardless of where they live.
func enableBad(s *sim.Scheduler) {
	s.EnableShards(1, units.Second) // want `Scheduler\.EnableShards outside the shard-aware layers` `EnableShards with constant shard count 1`
	s.EnableShards(4, 0)            // want `Scheduler\.EnableShards outside the shard-aware layers` `EnableShards with constant lookahead 0`
}

func enableRuntimeSized(s *sim.Scheduler, n int, look units.Duration) {
	// Non-constant arguments are the kernel's runtime checks to make.
	s.EnableShards(n, look) // want `Scheduler\.EnableShards outside the shard-aware layers`
}

// Constant propagation through a single-assignment local: the dataflow
// engine sees n is always 1, so this is the literal's finding too.
func enableConstLocal(s *sim.Scheduler, look units.Duration) {
	n := 1
	s.EnableShards(n, look) // want `Scheduler\.EnableShards outside the shard-aware layers` `EnableShards with constant shard count 1`
}

func suppressed(c *component, other *component) {
	//lint:ignore shardsafety fixture: demonstrating an audited exception at the merge point
	_ = c.sched.TargetFor(other)
}
