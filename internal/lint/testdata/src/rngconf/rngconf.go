// Package rngconf is the rngconfinement fixture: every RNG stream
// belongs to exactly one shard, and the number of draws a stream makes
// must not depend on the shard count. Forking one stream per component
// is the blessed idiom.
package rngconf

import (
	"bufsim/internal/sim"
	"bufsim/internal/units"
)

const opPull = 1

type source struct{ rate float64 }

func (s *source) OnEvent(op int32, arg any) {}

// frontierRNG hands a stream across the merge point: another shard
// would draw from it.
func frontierRNG(s *sim.Scheduler, a *source) {
	rng := sim.NewRNG(1)
	tg := s.TargetFor(a)
	s.PostToAfter(units.Second, tg, opPull, rng) // want `RNG stream rng crosses the shard frontier through PostToAfter`
}

// twoShardStream draws one stream from closures on two shards.
func twoShardStream(s *sim.Scheduler) {
	rng := sim.NewRNG(1)
	v0 := s.ShardView(0)
	v1 := s.ShardView(1)
	v0.After(units.Second, func() { _ = rng.Float64() })
	v1.After(units.Second, func() { _ = rng.Float64() }) // want `RNG stream rng is scheduled through ShardView\(1\) but already belongs to ShardView\(0\)`
}

// forkPerShard is the sanctioned idiom: each shard draws from its own
// fork.
func forkPerShard(s *sim.Scheduler) {
	parent := sim.NewRNG(1)
	v0 := s.ShardView(0)
	v1 := s.ShardView(1)
	r0 := parent.Fork()
	r1 := parent.Fork()
	v0.After(units.Second, func() { _ = r0.Float64() })
	v1.After(units.Second, func() { _ = r1.Float64() })
}

type cfg struct{ Shards int }

// shardCountDraw draws only when the run is sharded: the stream
// advances differently at different shard counts.
func shardCountDraw(s *sim.Scheduler, rng *sim.RNG) float64 {
	if s.ShardCount() > 1 {
		return rng.Float64() // want `RNG draw rng\.Float64 is control-dependent on the shard count \(ShardCount\)`
	}
	return rng.Float64()
}

// configDraw reaches the shard count through a config field and a
// local: the dataflow engine carries the taint into the condition.
func configDraw(c cfg, rng *sim.RNG) int {
	n := c.Shards
	if n > 1 {
		return rng.Intn(n) // want `RNG draw rng\.Intn is control-dependent on the shard count \(Shards\)`
	}
	return 0
}

// forkUnderBranch counts too: forking advances the parent stream, so a
// shard-count-dependent fork perturbs every later draw.
func forkUnderBranch(c cfg, parent *sim.RNG) *sim.RNG {
	if c.Shards > 1 {
		return parent.Fork() // want `RNG draw parent\.Fork is control-dependent on the shard count \(Shards\)`
	}
	return parent
}

// blessed: drawing before the branch and branching on the count without
// drawing are both fine — the stream advances identically either way.
func blessed(c cfg, rng *sim.RNG) int {
	x := rng.Intn(10)
	if c.Shards > 1 {
		return x + 1
	}
	return x
}
