package lint_test

import (
	"testing"

	"bufsim/internal/lint"
)

// TestTreeIsClean runs every analyzer over the real module and demands
// zero findings: the contracts buflint enforces are not aspirational,
// the tree actually satisfies them (modulo reasoned //lint:ignore
// directives). This is the same check CI runs through
// `go vet -vettool=buflint`, kept here too so `go test ./...` alone
// catches a violation.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	mod, err := lint.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := lint.Run(mod, []string{"./..."}, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
