package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ShardSafety guards the sharded kernel's equivalence proof. The proof
// that sharded and sequential runs are bit-identical rests on one
// structural fact: the ONLY way state crosses an event shard is the
// topology cut's ingress merge point. Every other component reads and
// writes state owned by its own shard. The analyzer keeps that surface
// from spreading:
//
//   - The cross-shard API — Scheduler.EnableShards, ShardView, PostToAt,
//     PostToAfter, TargetFor, and the sim.Target type — may be used only
//     by the shard-aware layers (internal/sim, which defines the engine;
//     internal/topology, which owns the cut; and internal/link, whose
//     wires carry the hand-off the cut configures). A queue, endpoint or
//     workload package reaching for a Target would move state across
//     shards outside the merge point, silently growing the surface the
//     digest harness must prove equivalent.
//   - EnableShards arguments that are compile-time constants must be
//     valid: a shard count of at least 2 and a strictly positive
//     conservative lookahead. Both are runtime panics; constants make
//     them compile-time findings. This check applies everywhere,
//     including the shard-aware layers, and sees through single-
//     assignment locals via the dataflow engine's def-use constant
//     propagation (n := 1; s.EnableShards(n, ...) is the same finding
//     as the literal).
var ShardSafety = &Analyzer{
	Name: "shardsafety",
	Doc: "restrict the cross-shard scheduling surface (EnableShards, ShardView, PostToAt/PostToAfter, " +
		"TargetFor, sim.Target) to the shard-aware layers, and reject constant EnableShards arguments " +
		"that would panic at runtime; cross-shard hand-off belongs at the topology cut's merge point",
	AppliesTo: func(pkgPath string) bool {
		return pkgPath == "bufsim" || strings.HasPrefix(pkgPath, "bufsim/")
	},
	Run: runShardSafety,
}

// shardAwarePkgs are the packages allowed to touch the cross-shard
// surface: the engine itself, the topology layer that owns the cut, and
// the link layer that executes the hand-off the cut configures (a
// link's DeliverVia hook posts arrivals to the far shard's ingress).
var shardAwarePkgs = map[string]bool{
	"bufsim/internal/sim":      true,
	"bufsim/internal/topology": true,
	"bufsim/internal/link":     true,
}

// crossShardMethods is the Scheduler surface that classifies or targets
// events across shards.
var crossShardMethods = map[string]bool{
	"EnableShards": true,
	"ShardView":    true,
	"PostToAt":     true,
	"PostToAfter":  true,
	"TargetFor":    true,
}

func runShardSafety(pass *Pass) error {
	shardAware := shardAwarePkgs[pass.PkgPath]
	// Def-use flows per function, built lazily: only EnableShards calls
	// need constant propagation through single-assignment locals.
	flows := make(map[*ast.FuncDecl]*funcFlow)
	flowAt := func(pos token.Pos) *funcFlow {
		for _, fd := range funcDecls(pass.Files) {
			if pos >= fd.Pos() && pos < fd.End() {
				ff, ok := flows[fd]
				if !ok {
					ff = newFuncFlow(pass, flowSpec{}, fd)
					flows[fd] = ff
				}
				return ff
			}
		}
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCrossShardCall(pass, n, shardAware, flowAt)
			case *ast.Ident:
				if !shardAware && isSimTargetUse(pass, n) {
					pass.Reportf(n.Pos(), "sim.Target outside the shard-aware layers: cross-shard delivery belongs at the topology cut's ingress merge point")
				}
			}
			return true
		})
	}
	return nil
}

func checkCrossShardCall(pass *Pass, call *ast.CallExpr, shardAware bool, flowAt func(token.Pos) *funcFlow) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || !crossShardMethods[fn.Name()] || !isSchedulerMethod(fn) {
		return
	}
	if !shardAware {
		pass.Reportf(call.Pos(), "Scheduler.%s outside the shard-aware layers: only the kernel and the topology cut may move events across shards", fn.Name())
		// The argument checks below still apply; a misplaced call can
		// also carry bad constants.
	}
	if fn.Name() == "EnableShards" && len(call.Args) == 2 {
		ff := flowAt(call.Pos())
		if v, ok := constIntArg(pass, ff, call.Args[0]); ok && v < 2 {
			pass.Reportf(call.Args[0].Pos(), "EnableShards with constant shard count %d: the engine needs at least 2 shards (this panics at runtime)", v)
		}
		if v, ok := constIntArg(pass, ff, call.Args[1]); ok && v <= 0 {
			pass.Reportf(call.Args[1].Pos(), "EnableShards with constant lookahead %d: the conservative window must be strictly positive (this panics at runtime)", v)
		}
	}
}

// isSchedulerMethod reports whether fn is a method on the sim package's
// Scheduler.
func isSchedulerMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	return ok && named.Obj().Name() == "Scheduler" && named.Obj().Pkg() != nil &&
		strings.HasSuffix(named.Obj().Pkg().Path(), "internal/sim")
}

// isSimTargetUse reports whether ident is a use of the sim.Target type
// itself (declaration, composite literal, conversion, field type).
func isSimTargetUse(pass *Pass, ident *ast.Ident) bool {
	obj, ok := pass.Info.Uses[ident]
	if !ok {
		return false
	}
	tn, ok := obj.(*types.TypeName)
	return ok && tn.Name() == "Target" && tn.Pkg() != nil &&
		strings.HasSuffix(tn.Pkg().Path(), "internal/sim")
}
