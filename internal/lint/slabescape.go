package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// SlabEscape guards the struct-of-arrays sender state: tcp.Slab's
// columns are append-grown by addRow, and append reallocation silently
// invalidates every interior pointer (&sl.cwnd[i]) and subslice
// (sl.srtt[i:j]) taken before the growth. Reading an element copies and
// is always safe; what must not happen is an *alias of the backing
// array* living across anything that can grow it. The analyzer tags
// column aliases with the dataflow engine and reports any alias that
// (a) is used after a call that can reach addRow through the static
// call graph, or (b) escapes the function entirely — a return, a store
// into a struct or global, a channel send, or an argument handed to a
// callee that can grow the slab.
//
// The columns are unexported, so aliases are only constructible inside
// package tcp; the analyzer runs there (and on fixture packages named
// internal/tcp).
var SlabEscape = &Analyzer{
	Name: "slabescape",
	Doc: "pointers and subslices into tcp.Slab columns must not be retained across " +
		"any call that can reach Slab.addRow: append reallocation invalidates them",
	AppliesTo: func(pkgPath string) bool { return pkgPathMatches(pkgPath, "internal/tcp") },
	Run:       runSlabEscape,
}

// isSlabColumn reports whether sel reads a slice-typed field of
// tcp.Slab — a column of the struct-of-arrays.
func isSlabColumn(pass *Pass, sel *ast.SelectorExpr) bool {
	v, ok := pass.Info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return false
	}
	if _, ok := v.Type().Underlying().(*types.Slice); !ok {
		return false
	}
	tv, ok := pass.Info.Types[sel.X]
	if !ok {
		return false
	}
	return typeIsNamed(tv.Type, "internal/tcp", "Slab")
}

// slabSource tags expressions that alias column storage: the bare
// column selector evaluated as a value (copying the slice header), and
// — via the aliasOfIndex propagation — &col[i] and col[i:j].
func slabSource(pass *Pass, e ast.Expr) []tag {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || !isSlabColumn(pass, sel) {
		return nil
	}
	return []tag{{kind: "slab", key: posKey(pass, e.Pos())}}
}

var slabFlowSpec = flowSpec{
	source: slabSource,
	// Indexing extracts a scalar copy — safe, so no throughIndex — but
	// element addresses and subslices alias the backing array.
	aliasOfIndex:          true,
	throughContainerStore: false,
}

func runSlabEscape(pass *Pass) error {
	cg := buildCallGraph(pass)
	isAddRow := func(fn *types.Func) bool {
		if fn.Name() != "addRow" {
			return false
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return false
		}
		return typeIsNamed(sig.Recv().Type(), "internal/tcp", "Slab")
	}
	// mayGrow: can this call reach addRow? Static callees are resolved
	// through the call graph; dynamic calls (interface methods, func
	// values) inside the slab's own package are conservatively assumed
	// able to grow it.
	mayGrow := func(call *ast.CallExpr) bool {
		if isBuiltinAny(pass, call) || isTypeConversion(pass, call) {
			return false
		}
		callee := staticCallee(pass, call)
		if callee == nil {
			return true
		}
		if callee.Pkg() == nil || callee.Pkg().Path() != pass.Pkg.Path() {
			// A foreign callee cannot name the unexported addRow.
			return false
		}
		return cg.reaches(callee, isAddRow)
	}
	for _, fd := range funcDecls(pass.Files) {
		checkSlabEscapeFunc(pass, fd, mayGrow, isAddRow)
	}
	return nil
}

func isBuiltinAny(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, ok = pass.Info.Uses[id].(*types.Builtin)
	return ok
}

func checkSlabEscapeFunc(pass *Pass, fd *ast.FuncDecl, mayGrow func(*ast.CallExpr) bool, isAddRow func(*types.Func) bool) {
	// addRow itself (and any method that grows columns in place) writes
	// append results back into the columns; that is the sanctioned
	// mutation, not an escape.
	if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok && isAddRow(fn) {
		return
	}
	ff := newFuncFlow(pass, slabFlowSpec, fd)
	ff.solve()

	// End positions of calls that can grow the slab, in source order: a
	// use is "after" a growing call once the call is complete, so the
	// call's own arguments don't count.
	var growPos []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && mayGrow(call) {
			growPos = append(growPos, call.End())
		}
		return true
	})
	sort.Slice(growPos, func(i, j int) bool { return growPos[i] < growPos[j] })
	growBetween := func(a, b token.Pos) bool {
		i := sort.Search(len(growPos), func(i int) bool { return growPos[i] > a })
		return i < len(growPos) && growPos[i] < b
	}

	// First definition position of each slab-tagged local.
	defPos := make(map[*types.Var]token.Pos)
	for _, e := range ff.edges {
		if len(ff.vars[e.dst]) == 0 {
			continue
		}
		if p, ok := defPos[e.dst]; !ok || e.rhs.Pos() < p {
			defPos[e.dst] = e.rhs.Pos()
		}
	}

	// aliasTagged: the expression both carries a slab tag and has a type
	// that can actually alias storage. Dereferencing an element pointer
	// (*p) yields a scalar copy — safe even though the flow descends
	// through it.
	aliasTagged := func(e ast.Expr) bool {
		tv, ok := pass.Info.Types[e]
		if !ok || !aliasCapable(tv.Type) {
			return false
		}
		return hasKind(ff.exprTags(e), "slab")
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.Ident:
			// A use of a slab-tagged local after an addRow-reaching call
			// that follows its definition.
			v, ok := pass.Info.Uses[s].(*types.Var)
			if !ok || !aliasCapable(v.Type()) {
				return true
			}
			dp, ok := defPos[v]
			if !ok || !hasKind(ff.vars[v], "slab") {
				return true
			}
			if s.Pos() > dp && growBetween(dp, s.Pos()) {
				pass.Reportf(s.Pos(), "%s aliases a tcp.Slab column and is used after a call that can reach addRow; append reallocation leaves it pointing into the old array", s.Name)
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if aliasTagged(r) {
					pass.Reportf(r.Pos(), "returning %s, an alias into a tcp.Slab column: the caller would hold it across future addRow growth", exprString(r))
				}
			}
		case *ast.SendStmt:
			if aliasTagged(s.Value) {
				pass.Reportf(s.Value.Pos(), "sending %s, an alias into a tcp.Slab column, across a channel: the receiver would hold it across future addRow growth", exprString(s.Value))
			}
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				var rhs ast.Expr
				if len(s.Rhs) == len(s.Lhs) {
					rhs = s.Rhs[i]
				} else if len(s.Rhs) == 1 {
					rhs = s.Rhs[0]
				}
				if rhs == nil || !aliasTagged(rhs) {
					continue
				}
				switch l := ast.Unparen(lhs).(type) {
				case *ast.Ident:
					if l.Name == "_" || ff.localVar(l) != nil {
						continue // local retention is checked at later uses
					}
					pass.Reportf(lhs.Pos(), "storing %s, an alias into a tcp.Slab column, in %s: the alias outlives this call frame and addRow growth invalidates it", exprString(rhs), exprString(lhs))
				case *ast.SelectorExpr:
					if isSlabColumn(pass, l) {
						continue // writing a column back into the slab (append growth)
					}
					pass.Reportf(lhs.Pos(), "storing %s, an alias into a tcp.Slab column, in %s: the alias outlives this call frame and addRow growth invalidates it", exprString(rhs), exprString(lhs))
				default:
					pass.Reportf(lhs.Pos(), "storing %s, an alias into a tcp.Slab column, in %s: the alias outlives this call frame and addRow growth invalidates it", exprString(rhs), exprString(lhs))
				}
			}
		case *ast.CallExpr:
			if isBuiltinAny(pass, s) || isTypeConversion(pass, s) {
				return true
			}
			callee := staticCallee(pass, s)
			grows := mayGrow(s)
			for _, arg := range s.Args {
				if !aliasTagged(arg) {
					continue
				}
				if callee == nil {
					pass.Reportf(arg.Pos(), "passing %s, an alias into a tcp.Slab column, through dynamic dispatch: the callee may retain it across addRow growth", exprString(arg))
				} else if grows {
					pass.Reportf(arg.Pos(), "passing %s, an alias into a tcp.Slab column, to a call that can reach addRow: the callee may grow the column while holding it", exprString(arg))
				}
			}
		}
		return true
	})
}

// aliasCapable reports whether a value of type t can alias backing
// storage: pointers and slices.
func aliasCapable(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice:
		return true
	}
	return false
}

func hasKind(ts tagSet, kind string) bool {
	for t := range ts {
		if t.kind == kind {
			return true
		}
	}
	return false
}
