package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// DigestField is the static mirror of TestDigestCoversEveryField: every
// exported field of an experiment config struct must be visible to the
// runcache digest, or listed in the package's runcache.IgnoreFields set.
//
// The digest walks configs by reflection. Struct fields whose own kind
// is func, chan or unsafe.Pointer are *silently skipped* — a semantic
// field of such a type would not move the cache key, so two different
// runs would share a cached result. Values of those kinds reached any
// deeper (a slice of funcs, a pointer to a chan) panic at digest time.
// Map keys must be scalars or the digest panics. This analyzer reports
// all three hazards at compile time, plus IgnoreFields entries that no
// longer match any field (a typo there silently un-ignores nothing and
// may shadow a future field).
//
// The analyzer activates on any package that calls runcache.IgnoreFields,
// and checks every exported struct type in it named *Config.
var DigestField = &Analyzer{
	Name: "digestfield",
	Doc: "every exported field of a *Config struct must be digestable by runcache.Key or listed " +
		"in IgnoreFields; silently-skipped kinds (func/chan/unsafe) and panicking shapes are errors",
	AppliesTo: func(pkgPath string) bool {
		// Cheap pre-filter; the real trigger is the IgnoreFields call.
		return strings.HasPrefix(pkgPath, "bufsim/")
	},
	Run: runDigestField,
}

func runDigestField(pass *Pass) error {
	ignored := collectIgnoreFields(pass)
	if ignored == nil {
		return nil // package does not digest configs
	}
	usedIgnores := make(map[string]bool)
	var ignorePos token.Pos

	// Find the IgnoreFields call position for stale-entry reports.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isIgnoreFieldsCall(pass, call) && ignorePos == token.NoPos {
				ignorePos = call.Pos()
			}
			return true
		})
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !ts.Name.IsExported() || !strings.HasSuffix(ts.Name.Name, "Config") {
					continue
				}
				obj, ok := pass.Info.Defs[ts.Name]
				if !ok {
					continue
				}
				st, ok := obj.Type().Underlying().(*types.Struct)
				if !ok {
					continue
				}
				checkConfigStruct(pass, ts, st, ignored, usedIgnores)
			}
		}
	}

	for name := range ignored {
		if !usedIgnores[name] && ignorePos != token.NoPos {
			pass.Reportf(ignorePos, "IgnoreFields entry %q matches no exported field of any config struct; remove it or fix the name", name)
		}
	}
	return nil
}

// collectIgnoreFields returns the union of string arguments to every
// runcache.IgnoreFields call in the package, or nil if there is none.
func collectIgnoreFields(pass *Pass) map[string]bool {
	var ignored map[string]bool
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isIgnoreFieldsCall(pass, call) {
				return true
			}
			if ignored == nil {
				ignored = make(map[string]bool)
			}
			for _, arg := range call.Args {
				tv, ok := pass.Info.Types[arg]
				if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
					continue
				}
				ignored[constant.StringVal(tv.Value)] = true
			}
			return true
		})
	}
	return ignored
}

func isIgnoreFieldsCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "IgnoreFields" || fn.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(fn.Pkg().Path(), "runcache")
}

// checkConfigStruct verifies every exported field of one config struct,
// reporting at the field's declaration so the fix is one click away.
func checkConfigStruct(pass *Pass, ts *ast.TypeSpec, st *types.Struct, ignored, usedIgnores map[string]bool) {
	stExpr, ok := ts.Type.(*ast.StructType)
	if !ok {
		return
	}
	fieldPos := make(map[string]token.Pos)
	for _, f := range stExpr.Fields.List {
		for _, name := range f.Names {
			fieldPos[name.Name] = name.Pos()
		}
		if len(f.Names) == 0 { // embedded field
			if id := embeddedFieldName(f.Type); id != "" {
				fieldPos[id] = f.Type.Pos()
			}
		}
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			continue
		}
		if ignored[f.Name()] {
			usedIgnores[f.Name()] = true
			continue
		}
		pos, ok := fieldPos[f.Name()]
		if !ok {
			pos = ts.Pos()
		}
		path := ts.Name.Name + "." + f.Name()
		checkDigestable(pass, pos, path, f.Type(), ignored, usedIgnores, true, make(map[types.Type]bool))
	}
}

func embeddedFieldName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return embeddedFieldName(e.X)
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

// checkDigestable mirrors runcache.encodeValue's type walk. structField
// records whether t is the declared type of a struct field: at that
// level func/chan/unsafe kinds are silently skipped by the digest; any
// deeper they panic.
func checkDigestable(pass *Pass, pos token.Pos, path string, t types.Type, ignored, usedIgnores map[string]bool, structField bool, visited map[types.Type]bool) {
	if visited[t] {
		return
	}
	visited[t] = true
	defer delete(visited, t)

	switch u := t.Underlying().(type) {
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			reportUndigestable(pass, pos, path, "unsafe.Pointer", structField)
		}
	case *types.Signature:
		reportUndigestable(pass, pos, path, "func", structField)
	case *types.Chan:
		reportUndigestable(pass, pos, path, "chan", structField)
	case *types.Interface:
		// Digested via the concrete type at runtime; nothing to check
		// statically.
	case *types.Pointer:
		checkDigestable(pass, pos, path, u.Elem(), ignored, usedIgnores, false, visited)
	case *types.Slice:
		checkDigestable(pass, pos, path+"[]", u.Elem(), ignored, usedIgnores, false, visited)
	case *types.Array:
		checkDigestable(pass, pos, path+"[]", u.Elem(), ignored, usedIgnores, false, visited)
	case *types.Map:
		if !scalarMapKey(u.Key()) {
			pass.Reportf(pos, "%s has map key type %s, which runcache.Key cannot canonicalize (it panics at digest time); key maps by scalars", path, u.Key())
		}
		checkDigestable(pass, pos, path+"[...]", u.Elem(), ignored, usedIgnores, false, visited)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if !f.Exported() {
				continue
			}
			if ignored[f.Name()] {
				usedIgnores[f.Name()] = true
				continue
			}
			checkDigestable(pass, pos, path+"."+f.Name(), f.Type(), ignored, usedIgnores, true, visited)
		}
	}
}

func reportUndigestable(pass *Pass, pos token.Pos, path, kind string, structField bool) {
	if structField {
		pass.Reportf(pos, "%s (kind %s) is silently skipped by the runcache digest, so it would not move the cache key; list it in IgnoreFields if it is an observer, or make it digestable", path, kind)
	} else {
		pass.Reportf(pos, "%s reaches a %s value, which runcache.Key panics on at digest time; restructure the field or list it in IgnoreFields", path, kind)
	}
}

// scalarMapKey mirrors runcache.scalarString's accepted kinds.
func scalarMapKey(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch {
	case b.Info()&(types.IsBoolean|types.IsNumeric|types.IsString) != 0:
		return b.Kind() != types.UnsafePointer
	default:
		return false
	}
}
