package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignorePrefix is the suppression directive marker. The full grammar is
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// and the directive silences the named analyzers on its own line and on
// the first line after it, so it works both as a trailing comment and as
// a standalone comment above the offending statement.
const ignorePrefix = "//lint:ignore"

type ignoreDirective struct {
	analyzers map[string]bool
	line      int // line the directive appears on
}

type ignoreIndex struct {
	fset *token.FileSet
	// byFile maps filename -> directives in that file.
	byFile map[string][]ignoreDirective
	// malformed collects positions of directives missing a reason or an
	// analyzer list.
	malformed []token.Pos
}

func newIgnoreIndex(fset *token.FileSet, files []*ast.File) *ignoreIndex {
	idx := &ignoreIndex{fset: fset, byFile: make(map[string][]ignoreDirective)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:ignorefoo — not ours
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					// Needs both an analyzer list and a reason: an
					// unexplained suppression is worth nothing in review.
					idx.malformed = append(idx.malformed, c.Pos())
					continue
				}
				pos := fset.Position(c.Pos())
				names := make(map[string]bool)
				for _, n := range strings.Split(fields[0], ",") {
					if n != "" {
						names[n] = true
					}
				}
				idx.byFile[pos.Filename] = append(idx.byFile[pos.Filename], ignoreDirective{
					analyzers: names,
					line:      pos.Line,
				})
			}
		}
	}
	return idx
}

// suppressed reports whether a diagnostic from the named analyzer at pos
// is covered by a directive.
func (idx *ignoreIndex) suppressed(analyzer string, pos token.Position) bool {
	for _, d := range idx.byFile[pos.Filename] {
		if !d.analyzers[analyzer] {
			continue
		}
		if pos.Line == d.line || pos.Line == d.line+1 {
			return true
		}
	}
	return false
}
