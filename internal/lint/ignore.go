package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// ignorePrefix is the suppression directive marker. The full grammar is
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// and the directive silences the named analyzers on its own line and on
// the first line after it, so it works both as a trailing comment and as
// a standalone comment above the offending statement.
const ignorePrefix = "//lint:ignore"

type ignoreDirective struct {
	analyzers map[string]bool
	line      int       // line the directive appears on
	pos       token.Pos // directive position, for staleness findings
	hits      int       // diagnostics this directive suppressed in this run
}

type ignoreIndex struct {
	fset *token.FileSet
	// byFile maps filename -> directives in that file.
	byFile map[string][]*ignoreDirective
	// malformed collects positions of directives missing a reason or an
	// analyzer list.
	malformed []token.Pos
}

func newIgnoreIndex(fset *token.FileSet, files []*ast.File) *ignoreIndex {
	idx := &ignoreIndex{fset: fset, byFile: make(map[string][]*ignoreDirective)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:ignorefoo — not ours
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					// Needs both an analyzer list and a reason: an
					// unexplained suppression is worth nothing in review.
					idx.malformed = append(idx.malformed, c.Pos())
					continue
				}
				pos := fset.Position(c.Pos())
				names := make(map[string]bool)
				for _, n := range strings.Split(fields[0], ",") {
					if n != "" {
						names[n] = true
					}
				}
				idx.byFile[pos.Filename] = append(idx.byFile[pos.Filename], &ignoreDirective{
					analyzers: names,
					line:      pos.Line,
					pos:       c.Pos(),
				})
			}
		}
	}
	return idx
}

// suppressed reports whether a diagnostic from the named analyzer at pos
// is covered by a directive, and credits the directive with the hit for
// the staleness check.
func (idx *ignoreIndex) suppressed(analyzer string, pos token.Position) bool {
	for _, d := range idx.byFile[pos.Filename] {
		if !d.analyzers[analyzer] {
			continue
		}
		if pos.Line == d.line || pos.Line == d.line+1 {
			d.hits++
			return true
		}
	}
	return false
}

// stale returns the directives that suppressed nothing even though every
// analyzer they name ran — dead weight that hides the next real finding
// at that line. Directives naming an analyzer outside the run set are
// skipped (a single-analyzer run can't judge them), as are directives in
// _test.go files (test diagnostics are dropped before suppression, so
// they never record hits).
func (idx *ignoreIndex) stale(ran map[string]bool) []*ignoreDirective {
	files := make([]string, 0, len(idx.byFile))
	for file := range idx.byFile {
		files = append(files, file)
	}
	sort.Strings(files)
	var out []*ignoreDirective
	for _, file := range files {
		if strings.HasSuffix(file, "_test.go") {
			continue
		}
		for _, d := range idx.byFile[file] {
			if d.hits > 0 {
				continue
			}
			covered := true
			for name := range d.analyzers {
				if !ran[name] {
					covered = false
					break
				}
			}
			if covered {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

// names renders the directive's analyzer list deterministically.
func (d *ignoreDirective) names() string {
	out := make([]string, 0, len(d.analyzers))
	for n := range d.analyzers {
		out = append(out, n)
	}
	sort.Strings(out)
	return strings.Join(out, ",")
}
