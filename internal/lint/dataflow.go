package lint

// The intraprocedural dataflow engine behind the flow-aware analyzers
// (simdeterminism, shardownership, slabescape, rngconfinement). The
// design is deliberately small: a *tag* is a fact about a value ("came
// from this time.Now call", "is the scheduler view for shard 1", "is an
// interior pointer into a Slab column"), tags attach to expressions at
// *sources*, and a per-function fixpoint propagates them through local
// def-use chains. Analyzers then walk the function once more and ask
// each interesting expression which tags it carries.
//
// The engine is flow-insensitive within a function (a variable's tag
// set is the union over all its assignments) and purely intraprocedural
// except for two explicit bridges: constDef (single-assignment constant
// propagation, used by shardsafety) and callGraph.reaches (static-
// dispatch transitive reachability, used by slabescape). Both err on
// the side of fewer facts, so analyzers built on the engine miss
// exotic flows rather than inventing false ones.

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// tag is one dataflow fact. kind namespaces the analyzer ("wall",
// "view", "bind", "slab", "rng", "nshard"); key identifies the source
// ("file:line:col" of the originating call, a constant shard index, a
// parameter name).
type tag struct {
	kind string
	key  string
}

// tagSet maps each tag to the position where it first attached.
type tagSet map[tag]token.Pos

func (ts tagSet) add(t tag, pos token.Pos) bool {
	if _, ok := ts[t]; ok {
		return false
	}
	ts[t] = pos
	return true
}

func (ts tagSet) mergeFrom(src tagSet) bool {
	changed := false
	for t, pos := range src {
		if ts.add(t, pos) {
			changed = true
		}
	}
	return changed
}

// flowSpec configures how tags propagate through expressions.
type flowSpec struct {
	// source returns the intrinsic tags of an expression — the facts
	// that hold regardless of dataflow (a call to time.Now, a selector
	// of a Slab column). Consulted for every expression the evaluator
	// visits.
	source func(pass *Pass, e ast.Expr) []tag

	// throughMethods taints the result of a method call whose receiver
	// is tainted (time.Since(t0).Seconds() stays wall-tainted).
	throughMethods bool

	// throughOps taints the result of binary and unary arithmetic with
	// a tainted operand (wall/1e9, n-1).
	throughOps bool

	// throughIndex treats containers as tainted wholes: x[i], x[i:j],
	// range values and composite literals propagate element taint in
	// both directions. Leave false when indexing extracts a safe scalar
	// (reading a float out of a Slab column is fine; the column alias
	// is what must not escape).
	throughIndex bool

	// throughContainerStore taints a local container when a tainted
	// value is stored into one of its elements (durations[i] = elapsed).
	throughContainerStore bool

	// aliasOfIndex taints &x[i] and x[i:j] from x even when
	// throughIndex is false: taking an element's address or a subslice
	// aliases the backing array even though reading the element copies.
	aliasOfIndex bool
}

// flowEdge is one def-use edge: dst acquires the tags of rhs.
type flowEdge struct {
	dst *types.Var
	rhs ast.Expr
	// viaIndex marks element extraction (range values), gated by
	// throughIndex; viaStore marks container stores (x[i] = rhs), gated
	// by throughContainerStore.
	viaIndex bool
	viaStore bool
}

// funcFlow is the dataflow solution for one function (including any
// function literals nested in it, which share the enclosing scope).
type funcFlow struct {
	pass  *Pass
	spec  flowSpec
	node  ast.Node // *ast.FuncDecl or *ast.FuncLit
	edges []flowEdge
	vars  map[*types.Var]tagSet
	// seeds carry externally injected tags (parameter sources for
	// summaries, shard-view bindings) that survive re-solving.
	seeds map[*types.Var]tagSet
}

func newFuncFlow(pass *Pass, spec flowSpec, node ast.Node) *funcFlow {
	ff := &funcFlow{
		pass:  pass,
		spec:  spec,
		node:  node,
		vars:  make(map[*types.Var]tagSet),
		seeds: make(map[*types.Var]tagSet),
	}
	ff.collectEdges()
	return ff
}

// localVar resolves an identifier to a function-local variable
// (parameters, results, and body declarations, including those of
// nested literals). Fields and package-level variables return nil: the
// engine tracks locals only, so anything stored elsewhere is handled by
// the analyzers' escape checks rather than silently propagated.
func (ff *funcFlow) localVar(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := ff.pass.Info.ObjectOf(id)
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if v.Pos() < ff.node.Pos() || v.Pos() >= ff.node.End() {
		return nil
	}
	return v
}

func (ff *funcFlow) addEdge(lhs ast.Expr, rhs ast.Expr, viaIndex bool) {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		if v := ff.localVar(id); v != nil {
			ff.edges = append(ff.edges, flowEdge{dst: v, rhs: rhs, viaIndex: viaIndex})
		}
		return
	}
	// x[i] = rhs taints the container x when the spec says stores do.
	if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
		if v := ff.localVar(baseExpr(idx.X)); v != nil {
			ff.edges = append(ff.edges, flowEdge{dst: v, rhs: rhs, viaStore: true})
		}
	}
}

func (ff *funcFlow) collectEdges() {
	body := funcBody(ff.node)
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) == len(s.Rhs) {
				for i := range s.Lhs {
					ff.addEdge(s.Lhs[i], s.Rhs[i], false)
				}
			} else if len(s.Rhs) == 1 {
				// Tuple assignment: every lhs acquires the call's tags.
				for i := range s.Lhs {
					ff.addEdge(s.Lhs[i], s.Rhs[0], false)
				}
			}
		case *ast.ValueSpec:
			if len(s.Names) == len(s.Values) {
				for i := range s.Names {
					ff.addEdge(s.Names[i], s.Values[i], false)
				}
			} else if len(s.Values) == 1 {
				for i := range s.Names {
					ff.addEdge(s.Names[i], s.Values[0], false)
				}
			}
		case *ast.RangeStmt:
			if s.Key != nil {
				ff.addEdge(s.Key, s.X, true)
			}
			if s.Value != nil {
				ff.addEdge(s.Value, s.X, true)
			}
		}
		return true
	})
}

// seed injects externally supplied tags on a variable (a parameter
// under summary analysis, a shard binding) ahead of solving.
func (ff *funcFlow) seed(v *types.Var, t tag, pos token.Pos) bool {
	ts := ff.seeds[v]
	if ts == nil {
		ts = make(tagSet)
		ff.seeds[v] = ts
	}
	if !ts.add(t, pos) {
		return false
	}
	// Make the seed visible to exprTags immediately: callers interleave
	// seeding with queries (shardownership binds post sites in source
	// order), and solve() re-merges seeds anyway.
	dst := ff.vars[v]
	if dst == nil {
		dst = make(tagSet)
		ff.vars[v] = dst
	}
	dst.add(t, pos)
	return true
}

// solve runs the propagation fixpoint. Safe to call repeatedly after
// adding seeds; tag sets only grow, so the fixpoint terminates.
func (ff *funcFlow) solve() {
	for v, ts := range ff.seeds {
		dst := ff.vars[v]
		if dst == nil {
			dst = make(tagSet)
			ff.vars[v] = dst
		}
		dst.mergeFrom(ts)
	}
	for changed := true; changed; {
		changed = false
		for _, e := range ff.edges {
			if e.viaIndex && !ff.spec.throughIndex {
				continue
			}
			if e.viaStore && !ff.spec.throughContainerStore {
				continue
			}
			ts := ff.exprTags(e.rhs)
			if len(ts) == 0 {
				continue
			}
			dst := ff.vars[e.dst]
			if dst == nil {
				dst = make(tagSet)
				ff.vars[e.dst] = dst
			}
			if dst.mergeFrom(ts) {
				changed = true
			}
		}
	}
}

// exprTags evaluates the tags an expression carries under the current
// solution.
func (ff *funcFlow) exprTags(e ast.Expr) tagSet {
	out := make(tagSet)
	ff.addExprTags(out, e)
	return out
}

func (ff *funcFlow) addExprTags(out tagSet, e ast.Expr) {
	if e == nil {
		return
	}
	if ff.spec.source != nil {
		for _, t := range ff.spec.source(ff.pass, e) {
			out.add(t, e.Pos())
		}
	}
	switch v := e.(type) {
	case *ast.Ident:
		if lv := ff.localVar(v); lv != nil {
			out.mergeFrom(ff.vars[lv])
		}
	case *ast.ParenExpr:
		ff.addExprTags(out, v.X)
	case *ast.StarExpr:
		ff.addExprTags(out, v.X)
	case *ast.TypeAssertExpr:
		ff.addExprTags(out, v.X)
	case *ast.UnaryExpr:
		if v.Op == token.AND && ff.spec.aliasOfIndex {
			if idx, ok := ast.Unparen(v.X).(*ast.IndexExpr); ok {
				ff.addExprTags(out, idx.X)
				return
			}
		}
		ff.addExprTags(out, v.X)
	case *ast.BinaryExpr:
		if ff.spec.throughOps {
			ff.addExprTags(out, v.X)
			ff.addExprTags(out, v.Y)
		}
	case *ast.IndexExpr:
		if ff.spec.throughIndex {
			ff.addExprTags(out, v.X)
		}
	case *ast.SliceExpr:
		if ff.spec.throughIndex || ff.spec.aliasOfIndex {
			ff.addExprTags(out, v.X)
		}
	case *ast.CompositeLit:
		if ff.spec.throughIndex {
			for _, el := range v.Elts {
				ff.addExprTags(out, el)
			}
		}
	case *ast.KeyValueExpr:
		ff.addExprTags(out, v.Value)
	case *ast.CallExpr:
		if isTypeConversion(ff.pass, v) && len(v.Args) == 1 {
			ff.addExprTags(out, v.Args[0])
			return
		}
		if isBuiltinAppend(ff.pass, v) && len(v.Args) > 0 {
			// append's result aliases (or extends) its first argument.
			ff.addExprTags(out, v.Args[0])
			if ff.spec.throughIndex {
				for _, a := range v.Args[1:] {
					ff.addExprTags(out, a)
				}
			}
			return
		}
		if ff.spec.throughMethods {
			if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok && isMethodCall(ff.pass, sel) {
				ff.addExprTags(out, sel.X)
			}
		}
	}
}

// constDef returns the constant value of a single-assignment local
// whose one definition is a compile-time constant — the def-use
// counterpart of types.Info.Types[expr].Value for plain literals.
func (ff *funcFlow) constDef(v *types.Var) (constant.Value, bool) {
	var def ast.Expr
	for _, e := range ff.edges {
		if e.dst != v {
			continue
		}
		if e.viaIndex || e.viaStore || def != nil {
			return nil, false // reassigned, or not a plain copy
		}
		def = e.rhs
	}
	if def == nil {
		return nil, false
	}
	tv, ok := ff.pass.Info.Types[def]
	if !ok || tv.Value == nil {
		return nil, false
	}
	return tv.Value, true
}

// constIntArg resolves a call argument to a constant int, either
// directly (a literal or named constant) or through a single-assignment
// local. The second result reports whether a constant was found.
func constIntArg(pass *Pass, ff *funcFlow, e ast.Expr) (int64, bool) {
	if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil {
		if n, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
			return n, true
		}
		return 0, false
	}
	if ff == nil {
		return 0, false
	}
	if v := ff.localVar(e); v != nil {
		if val, ok := ff.constDef(v); ok {
			if n, exact := constant.Int64Val(constant.ToInt(val)); exact {
				return n, true
			}
		}
	}
	return 0, false
}

func funcBody(node ast.Node) *ast.BlockStmt {
	switch fn := node.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

func isTypeConversion(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[call.Fun]
	return ok && tv.IsType()
}

func isMethodCall(pass *Pass, sel *ast.SelectorExpr) bool {
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// namedType peels pointers off t and returns the underlying named type,
// or nil.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// typeIsNamed reports whether t (possibly behind a pointer) is the
// named type pkgSuffix.name, matching the package by import-path
// suffix so fixture packages under testdata/src qualify.
func typeIsNamed(t types.Type, pkgSuffix, name string) bool {
	named := namedType(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == name && pkgPathMatches(named.Obj().Pkg().Path(), pkgSuffix)
}

// pkgPathMatches reports whether path is pkgSuffix or ends in
// "/"+pkgSuffix — the same convention the syntactic analyzers use so
// that both the real tree and synthetic fixture modules match.
func pkgPathMatches(path, pkgSuffix string) bool {
	if path == pkgSuffix {
		return true
	}
	n := len(path) - len(pkgSuffix)
	return n > 0 && path[n-1] == '/' && path[n:] == pkgSuffix
}

// staticCallee resolves a call to the function it must invoke, or nil
// when dispatch is dynamic (interface method, func value, builtin).
func staticCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			return nil // dynamic dispatch
		}
	}
	return fn
}

// callGraph is the static-dispatch call graph of one package: edges
// from each declared function to every function it demonstrably calls.
// Dynamic calls (interface methods, func values) have no edge; analyzers
// that need soundness for them must treat no-callee calls conservatively.
type callGraph struct {
	out map[*types.Func][]*types.Func
}

func buildCallGraph(pass *Pass) *callGraph {
	cg := &callGraph{out: make(map[*types.Func][]*types.Func)}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			owner, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := staticCallee(pass, call); callee != nil {
					cg.out[owner] = append(cg.out[owner], callee)
				}
				return true
			})
		}
	}
	return cg
}

// reaches reports whether from (or anything it transitively calls
// through static dispatch) satisfies hit.
func (cg *callGraph) reaches(from *types.Func, hit func(*types.Func) bool) bool {
	seen := map[*types.Func]bool{}
	stack := []*types.Func{from}
	for len(stack) > 0 {
		fn := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[fn] {
			continue
		}
		seen[fn] = true
		if hit(fn) {
			return true
		}
		stack = append(stack, cg.out[fn]...)
	}
	return false
}

// funcDecls returns every function declaration with a body, in file
// order — the analysis unit of the flow-aware analyzers.
func funcDecls(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// enclosingFuncName names the innermost function declaration containing
// pos ("(*Dumbbell).buildStation" style receivers elided to the bare
// method name), or "" at package scope. Used to build position-stable
// finding fingerprints.
func enclosingFuncName(files []*ast.File, pos token.Pos) string {
	for _, f := range files {
		if pos < f.Pos() || pos >= f.End() {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if pos >= fd.Pos() && pos < fd.End() {
				return fd.Name.Name
			}
		}
	}
	return ""
}

// posKey renders a position as a stable tag key.
func posKey(pass *Pass, pos token.Pos) string {
	return pass.Fset.Position(pos).String()
}
