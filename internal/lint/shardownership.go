package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// ShardOwnership enforces the ownership half of the sharded kernel's
// contract: state handed to ShardView(k) belongs to shard k, and only
// shard k may see it again. The dataflow engine tracks which scheduler
// view each local came from and which view each posted value was bound
// to; passing a value bound to one view through a second view — as a
// post argument, a captured closure variable, or a store into another
// shard's state — is exactly the aliasing that makes a sharded run
// diverge from the sequential one, and that -race only catches when the
// schedule happens to interleave. The sanctioned crossing is
// PostToAt/PostToAfter with a Target: the frontier merge serializes it.
var ShardOwnership = &Analyzer{
	Name: "shardownership",
	Doc: "values bound to ShardView(k) may only be scheduled through shard k; " +
		"cross-shard work must flow through PostToAt/PostToAfter(Target), " +
		"and closures or struct fields must not alias state across shard views",
	AppliesTo: func(pkgPath string) bool {
		// The kernel itself implements the frontier and legitimately
		// touches every view; the linter has no scheduler state.
		return pkgPath != "bufsim/internal/sim" && pkgPath != "bufsim/internal/lint"
	},
	Run: runShardOwnership,
}

// schedBindMethods are the Scheduler methods that bind their reference
// arguments (actors, payloads, closures) to the view they are called
// on: the kernel will dispatch them on that view's shard.
var schedBindMethods = map[string]bool{
	"PostAt":     true,
	"PostAfter":  true,
	"At":         true,
	"After":      true,
	"Reschedule": true,
	"Cancel":     true,
}

func isSchedulerMethodCall(pass *Pass, call *ast.CallExpr) (*ast.SelectorExpr, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil, "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, "", false
	}
	if !typeIsNamed(sig.Recv().Type(), "internal/sim", "Scheduler") {
		return nil, "", false
	}
	return sel, fn.Name(), true
}

// viewSource tags the result of every ShardView call with the view's
// identity: the constant shard index when the argument is one, else the
// call site (two dynamic calls are conservatively distinct views).
func viewSource(pass *Pass, e ast.Expr) []tag {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	_, name, ok := isSchedulerMethodCall(pass, call)
	if !ok || name != "ShardView" || len(call.Args) != 1 {
		return nil
	}
	key := "ShardView@" + posKey(pass, call.Pos())
	if tv, ok := pass.Info.Types[call.Args[0]]; ok && tv.Value != nil {
		if n, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
			key = "ShardView(" + itoa(n) + ")"
		}
	}
	return []tag{{kind: "view", key: key}}
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [24]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

var viewFlowSpec = flowSpec{
	source:       viewSource,
	throughIndex: true, // a slice of views carries all their identities
}

// bindableType reports whether a value of type t can alias shard state:
// anything with reference semantics, plus sim.Event handles (they pin
// the view that minted them).
func bindableType(t types.Type) bool {
	if t == nil {
		return false
	}
	if typeIsNamed(t, "internal/sim", "Event") {
		return true
	}
	if typeIsNamed(t, "internal/sim", "Scheduler") {
		// Views themselves are plural by design; tracked separately.
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Signature, *types.Map, *types.Chan, *types.Slice:
		return true
	}
	return false
}

func runShardOwnership(pass *Pass) error {
	for _, fd := range funcDecls(pass.Files) {
		checkShardOwnershipFunc(pass, fd)
	}
	return nil
}

type ownershipReport struct {
	pos token.Pos
	msg string
}

func checkShardOwnershipFunc(pass *Pass, fd *ast.FuncDecl) {
	ff := newFuncFlow(pass, viewFlowSpec, fd)
	ff.solve()

	// Collect the view-context call sites in source order: scheduler
	// method calls whose receiver carries exactly one view identity.
	type bindSite struct {
		call *ast.CallExpr
		sel  *ast.SelectorExpr
		name string
	}
	var sites []bindSite
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, name, ok := isSchedulerMethodCall(pass, call); ok && schedBindMethods[name] {
			sites = append(sites, bindSite{call: call, sel: sel, name: name})
		}
		return true
	})
	if len(sites) == 0 {
		return
	}

	reports := make(map[string]ownershipReport)
	record := func(pos token.Pos, msg string) {
		key := posKey(pass, pos) + "\x00" + msg
		if _, ok := reports[key]; !ok {
			reports[key] = ownershipReport{pos: pos, msg: msg}
		}
	}

	// Result-binding edges: ev := view.PostAfter(...) pins the event
	// handle to that view. Collected once; the fixpoint below re-solves
	// with the accumulated bind seeds until nothing new appears.
	resultDst := make(map[*ast.CallExpr][]*types.Var)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if v := ff.localVar(lhs); v != nil {
				resultDst[call] = append(resultDst[call], v)
			}
		}
		return true
	})

	for changed := true; changed; {
		changed = false
		ff.solve()
		for _, s := range sites {
			viewKey := singleKey(ff.exprTags(s.sel.X), "view")
			if viewKey == "" {
				continue
			}
			for _, arg := range s.call.Args {
				argT := pass.Info.Types[arg].Type
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					for v, pos := range freeVars(pass, ff, lit) {
						if !bindableType(v.Type()) {
							continue
						}
						if prior := singleOther(ff.vars[v], "bind", viewKey); prior != "" {
							record(pos, "closure scheduled through "+viewKey+" captures "+v.Name()+", which is bound to "+prior+"; cross-shard work must go through PostToAt/PostToAfter")
						} else if ff.seed(v, tag{kind: "bind", key: viewKey}, pos) {
							// Keep the first binding: one bad crossing is one
							// finding, not a symmetric pair.
							changed = true
						}
					}
					continue
				}
				if !bindableType(argT) {
					continue
				}
				if prior := singleOther(ff.exprTags(arg), "bind", viewKey); prior != "" {
					record(arg.Pos(), exprString(arg)+" crosses shard views: bound to "+prior+", now scheduled through "+viewKey+"; cross-shard work must go through PostToAt/PostToAfter")
				} else if v := ff.localVar(arg); v != nil {
					// Keep the first binding: one bad crossing is one
					// finding, not a symmetric pair.
					if ff.seed(v, tag{kind: "bind", key: viewKey}, arg.Pos()) {
						changed = true
					}
				}
			}
			for _, v := range resultDst[s.call] {
				if ff.seed(v, tag{kind: "bind", key: viewKey}, s.call.Pos()) {
					changed = true
				}
			}
		}
	}

	// Field stores that alias across views: x.f = y where x and y are
	// bound to different views.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			dstKey := singleKey(ff.exprTags(baseExpr(sel.X)), "bind")
			srcKey := singleKey(ff.exprTags(as.Rhs[i]), "bind")
			if dstKey != "" && srcKey != "" && dstKey != srcKey {
				record(lhs.Pos(), "stores "+exprString(as.Rhs[i])+" (bound to "+srcKey+") into "+exprString(lhs)+" (bound to "+dstKey+"); cross-shard aliasing breaks the sharded equivalence proof")
			}
		}
		return true
	})

	keys := make([]string, 0, len(reports))
	for k := range reports {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ordered := make([]ownershipReport, 0, len(reports))
	for _, k := range keys {
		ordered = append(ordered, reports[k])
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].pos != ordered[j].pos {
			return ordered[i].pos < ordered[j].pos
		}
		return ordered[i].msg < ordered[j].msg
	})
	for _, r := range ordered {
		pass.Reportf(r.pos, "%s", r.msg)
	}
}

// singleKey returns the key when ts holds exactly one tag of the given
// kind, else "". Scheduler receivers with several possible views (a
// helper handed an arbitrary view) yield no context rather than a wrong
// one.
func singleKey(ts tagSet, kind string) string {
	key := ""
	for t := range ts {
		if t.kind != kind {
			continue
		}
		if key != "" && key != t.key {
			return ""
		}
		key = t.key
	}
	return key
}

// singleOther returns the (lexicographically first, for determinism)
// key of the given kind differing from k, or "".
func singleOther(ts tagSet, kind, k string) string {
	other := ""
	for t := range ts {
		if t.kind != kind || t.key == k {
			continue
		}
		if other == "" || t.key < other {
			other = t.key
		}
	}
	return other
}

// freeVars returns the function-local variables a literal captures from
// its enclosing function, each with the position of one capturing use.
func freeVars(pass *Pass, ff *funcFlow, lit *ast.FuncLit) map[*types.Var]token.Pos {
	out := make(map[*types.Var]token.Pos)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Declared in the enclosing function but outside the literal.
		if v.Pos() >= ff.node.Pos() && v.Pos() < ff.node.End() &&
			(v.Pos() < lit.Pos() || v.Pos() >= lit.End()) {
			if _, seen := out[v]; !seen {
				out[v] = id.Pos()
			}
		}
		return true
	})
	return out
}
