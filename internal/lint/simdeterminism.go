package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// deterministicCorePkgs are the packages whose execution must be a pure
// function of (config, seed): everything on the simulate-and-measure
// path. Observer-only packages (metrics, plot, runcache, audit sinks)
// and the CLIs may read the wall clock; these may not, except where the
// dataflow engine proves the reading never feeds a result (telemetry
// gauges, stderr progress output) or under a //lint:ignore with a
// reason.
var deterministicCorePkgs = map[string]bool{
	"bufsim":                           true,
	"bufsim/internal/adversary":        true,
	"bufsim/internal/probe":            true,
	"bufsim/internal/sim":              true,
	"bufsim/internal/tcp":              true,
	"bufsim/internal/link":             true,
	"bufsim/internal/queue":            true,
	"bufsim/internal/node":             true,
	"bufsim/internal/packet":           true,
	"bufsim/internal/topology":         true,
	"bufsim/internal/workload":         true,
	"bufsim/internal/workload/profile": true,
	"bufsim/internal/trace":            true,
	"bufsim/internal/model":            true,
	"bufsim/internal/stats":            true,
	"bufsim/internal/units":            true,
	"bufsim/internal/experiment":       true,
}

// wallWaitFuncs block on or schedule against the machine clock. They
// have no telemetry-only use, so they are findings wherever they appear
// in the core, flow or no flow.
var wallWaitFuncs = map[string]bool{
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// wallReadFuncs read the machine clock and return it as a value. A read
// is a finding only when the dataflow engine shows the value (or
// anything derived from it) escaping to a non-confined sink: returned,
// stored outside the function, or passed to a callee that is not a
// telemetry sink. Reads that provably feed only metrics gauges, stderr
// progress output, or confined in-package helpers are exempt — that is
// the entire class the old syntactic analyzer needed //lint:ignore
// directives for.
var wallReadFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// SimDeterminism forbids wall-clock dependence and the process-global
// math/rand source inside the deterministic core. Both make a run a
// function of when and where it executed instead of (config, seed),
// which silently invalidates the pinned digests and every cached result.
var SimDeterminism = &Analyzer{
	Name: "simdeterminism",
	Doc: "forbid wall-clock time and global math/rand in the deterministic simulator core; " +
		"simulated time comes from sim.Scheduler.Now and randomness from a seeded sim.RNG; " +
		"wall reads whose values flow only to telemetry sinks (metrics, stderr) are exempt",
	AppliesTo: func(pkgPath string) bool { return deterministicCorePkgs[pkgPath] },
	Run:       runSimDeterminism,
}

func runSimDeterminism(pass *Pass) error {
	wa := newWallAnalysis(pass)
	wa.solveSummaries()
	wa.report()

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn := selectorFunc(pass, sel)
			if fn == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallWaitFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(), "wall-clock time.%s in deterministic package %s; use the scheduler's simulated clock (sim.Scheduler.Now)", fn.Name(), pass.PkgPath)
				}
			case "math/rand", "math/rand/v2":
				// Package-level functions draw from the shared global
				// source; constructors (New, NewSource, ...) that feed a
				// seeded stream are the sanctioned path.
				if fn.Type().(*types.Signature).Recv() == nil && !strings.HasPrefix(fn.Name(), "New") {
					pass.Reportf(sel.Pos(), "global %s.%s draws from the process-wide source and breaks (config, seed) determinism; use a seeded sim.RNG", fn.Pkg().Path(), fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

func selectorFunc(pass *Pass, sel *ast.SelectorExpr) *types.Func {
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	return fn
}

// wallSource tags clock-read calls (time.Now/Since/Until).
func wallSource(pass *Pass, e ast.Expr) []tag {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn := selectorFunc(pass, sel)
	if fn == nil || fn.Pkg().Path() != "time" || !wallReadFuncs[fn.Name()] {
		return nil
	}
	return []tag{{kind: "wall", key: posKey(pass, call.Pos())}}
}

var wallFlowSpec = flowSpec{
	source:                wallSource,
	throughMethods:        true,
	throughOps:            true,
	throughIndex:          true,
	throughContainerStore: true,
}

// wallAnalysis runs the telemetry-confinement analysis for one package:
// which wall reads escape, and which function parameters are confined
// sinks (so a caller may hand them wall time without a finding).
type wallAnalysis struct {
	pass  *Pass
	decls []*ast.FuncDecl
	flows map[*ast.FuncDecl]*funcFlow
	// reads maps each function to its wall-read calls: tag -> call site.
	reads map[*ast.FuncDecl]map[tag]*ast.CallExpr
	// paramTag maps each candidate parameter to its summary tag.
	paramTags map[*ast.FuncDecl]map[*types.Var]tag
	// confined[fn][i] reports parameter i of fn accepts wall time
	// without leaking it. Greatest fixpoint: starts all-true, flips to
	// false as leaks are found.
	confined map[*types.Func][]bool
	funcOf   map[*ast.FuncDecl]*types.Func
}

func newWallAnalysis(pass *Pass) *wallAnalysis {
	wa := &wallAnalysis{
		pass:      pass,
		decls:     funcDecls(pass.Files),
		flows:     make(map[*ast.FuncDecl]*funcFlow),
		reads:     make(map[*ast.FuncDecl]map[tag]*ast.CallExpr),
		paramTags: make(map[*ast.FuncDecl]map[*types.Var]tag),
		confined:  make(map[*types.Func][]bool),
		funcOf:    make(map[*ast.FuncDecl]*types.Func),
	}
	for _, fd := range wa.decls {
		fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		wa.funcOf[fd] = fn
		ff := newFuncFlow(pass, wallFlowSpec, fd)

		reads := make(map[tag]*ast.CallExpr)
		ast.Inspect(fd, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				for _, t := range wallSource(pass, call) {
					reads[t] = call
				}
			}
			return true
		})
		wa.reads[fd] = reads

		sig := fn.Type().(*types.Signature)
		ptags := make(map[*types.Var]tag)
		conf := make([]bool, sig.Params().Len())
		for i := 0; i < sig.Params().Len(); i++ {
			p := sig.Params().At(i)
			conf[i] = true
			if !wallCarrierType(p.Type()) {
				continue
			}
			t := tag{kind: "wallp", key: posKey(pass, p.Pos())}
			ptags[p] = t
			ff.seed(p, t, p.Pos())
		}
		wa.confined[fn] = conf
		wa.paramTags[fd] = ptags
		ff.solve()
		wa.flows[fd] = ff
	}
	return wa
}

// wallCarrierType reports whether a parameter of type t can carry wall
// time: time.Time, time.Duration, or slices/pointers of them.
func wallCarrierType(t types.Type) bool {
	switch u := t.(type) {
	case *types.Pointer:
		return wallCarrierType(u.Elem())
	case *types.Slice:
		return wallCarrierType(u.Elem())
	}
	return typeIsNamed(t, "time", "Time") || typeIsNamed(t, "time", "Duration")
}

// solveSummaries iterates the confinement fixpoint: a parameter stops
// being confined the moment any scan shows its tag escaping, and
// flipping one summary can make a caller's argument leak, so iterate to
// a fixed point. Monotone (confined only flips to false), so it
// terminates.
func (wa *wallAnalysis) solveSummaries() {
	for changed := true; changed; {
		changed = false
		for _, fd := range wa.decls {
			violated := wa.scan(fd)
			fn := wa.funcOf[fd]
			sig := fn.Type().(*types.Signature)
			for i := 0; i < sig.Params().Len(); i++ {
				t, ok := wa.paramTags[fd][sig.Params().At(i)]
				if !ok {
					continue
				}
				if _, bad := violated[t]; bad && wa.confined[fn][i] {
					wa.confined[fn][i] = false
					changed = true
				}
			}
		}
	}
}

// report emits a finding for every wall read whose tag escapes under
// the stable summaries, plus any read at package scope (no function to
// confine it).
func (wa *wallAnalysis) report() {
	inDecl := func(pos token.Pos) bool {
		for _, fd := range wa.decls {
			if pos >= fd.Pos() && pos < fd.End() {
				return true
			}
		}
		return false
	}
	for _, fd := range wa.decls {
		violated := wa.scan(fd)
		for t, call := range wa.reads[fd] {
			if _, bad := violated[t]; bad {
				wa.reportRead(call)
			}
		}
	}
	// Package-scope reads (var initializers) have no confining flow.
	for _, f := range wa.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if len(wallSource(wa.pass, call)) > 0 && !inDecl(call.Pos()) {
				wa.reportRead(call)
			}
			return true
		})
	}
}

func (wa *wallAnalysis) reportRead(call *ast.CallExpr) {
	sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	fn := selectorFunc(wa.pass, sel)
	wa.pass.Reportf(sel.Pos(), "wall-clock time.%s in deterministic package %s; use the scheduler's simulated clock (sim.Scheduler.Now)", fn.Name(), wa.pass.PkgPath)
}

// scan walks one function and returns the set of wall tags that escape
// to a non-confined sink: returned, stored outside the function's
// locals, sent on a channel, or passed to a callee that is not a
// telemetry sink under the current summaries.
func (wa *wallAnalysis) scan(fd *ast.FuncDecl) tagSet {
	ff := wa.flows[fd]
	violated := make(tagSet)
	leak := func(e ast.Expr) {
		violated.mergeFrom(ff.exprTags(e))
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				leak(r)
			}
		case *ast.SendStmt:
			leak(s.Value)
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				var rhs ast.Expr
				if len(s.Rhs) == len(s.Lhs) {
					rhs = s.Rhs[i]
				} else if len(s.Rhs) == 1 {
					rhs = s.Rhs[0]
				}
				if rhs == nil || wa.localSink(ff, lhs) {
					continue
				}
				leak(rhs)
			}
		case *ast.CallExpr:
			for i, arg := range s.Args {
				ts := ff.exprTags(arg)
				if len(ts) == 0 {
					continue
				}
				if !wa.confinedArg(s, i) {
					violated.mergeFrom(ts)
				}
			}
		}
		return true
	})
	return violated
}

// localSink reports whether assigning to lhs keeps the value inside the
// function: a local variable, the blank identifier, or an element of a
// local container (the flow engine already taints the container).
func (wa *wallAnalysis) localSink(ff *funcFlow, lhs ast.Expr) bool {
	switch v := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		return v.Name == "_" || ff.localVar(v) != nil
	case *ast.IndexExpr:
		return ff.localVar(baseExpr(v.X)) != nil
	}
	return false
}

// confinedArg reports whether argument i of call is a confined sink for
// wall time: the time package itself (Since(start) reads, it does not
// leak), telemetry registry methods, stderr progress printing, safe
// builtins, or an in-package callee whose summary proves the parameter
// confined.
func (wa *wallAnalysis) confinedArg(call *ast.CallExpr, i int) bool {
	// Builtins: len/cap/append/copy extract or move values the flow
	// engine already tracks; they leak nothing themselves.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := wa.pass.Info.Uses[id].(*types.Builtin); ok {
			return b.Name() != "print" && b.Name() != "println"
		}
	}
	if isTypeConversion(wa.pass, call) {
		return true // conversions propagate, checked at the converted value's sinks
	}
	fn := calleeFunc(wa.pass, call)
	if fn == nil || fn.Pkg() == nil {
		return false // dynamic call: assume it leaks
	}
	if fn.Pkg().Path() == "time" {
		return true
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := namedType(sig.Recv().Type()); named != nil && named.Obj().Pkg() != nil {
			if pkgPathMatches(named.Obj().Pkg().Path(), "internal/metrics") {
				return true
			}
		}
	}
	if fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "F") && len(call.Args) > 0 {
		if isStderr(wa.pass, call.Args[0]) {
			return true
		}
	}
	// In-package callee with a confinement summary.
	if conf, ok := wa.confined[fn]; ok {
		sig := fn.Type().(*types.Signature)
		pi := i
		if sig.Variadic() && pi >= sig.Params().Len() {
			pi = sig.Params().Len() - 1
		}
		if pi >= 0 && pi < len(conf) {
			return conf[pi]
		}
	}
	return false
}

// calleeFunc resolves the called function, through interfaces too (the
// confinement question is about the arg position, not dispatch).
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}

func isStderr(pass *Pass, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Stderr" {
		return false
	}
	obj := pass.Info.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "os"
}
