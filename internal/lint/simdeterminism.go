package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// deterministicCorePkgs are the packages whose execution must be a pure
// function of (config, seed): everything on the simulate-and-measure
// path. Observer-only packages (metrics, plot, runcache, audit sinks)
// and the CLIs may read the wall clock; these may not, except under a
// //lint:ignore with a reason (e.g. wall-time telemetry that never feeds
// a result).
var deterministicCorePkgs = map[string]bool{
	"bufsim":                           true,
	"bufsim/internal/adversary":        true,
	"bufsim/internal/probe":            true,
	"bufsim/internal/sim":              true,
	"bufsim/internal/tcp":              true,
	"bufsim/internal/link":             true,
	"bufsim/internal/queue":            true,
	"bufsim/internal/node":             true,
	"bufsim/internal/packet":           true,
	"bufsim/internal/topology":         true,
	"bufsim/internal/workload":         true,
	"bufsim/internal/workload/profile": true,
	"bufsim/internal/trace":            true,
	"bufsim/internal/model":            true,
	"bufsim/internal/stats":            true,
	"bufsim/internal/units":            true,
	"bufsim/internal/experiment":       true,
}

// wallClockFuncs are the time-package functions that read or wait on the
// machine clock. Types (time.Time, time.Duration) and pure constructors
// are fine; the simulator's own clock is units.Time via Scheduler.Now.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// SimDeterminism forbids wall-clock reads and the process-global
// math/rand source inside the deterministic core. Both make a run a
// function of when and where it executed instead of (config, seed),
// which silently invalidates the pinned digests and every cached result.
var SimDeterminism = &Analyzer{
	Name: "simdeterminism",
	Doc: "forbid wall-clock time and global math/rand in the deterministic simulator core; " +
		"simulated time comes from sim.Scheduler.Now and randomness from a seeded sim.RNG",
	AppliesTo: func(pkgPath string) bool { return deterministicCorePkgs[pkgPath] },
	Run:       runSimDeterminism,
}

func runSimDeterminism(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.Info.Uses[sel.Sel]
			if !ok {
				return true
			}
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(), "wall-clock time.%s in deterministic package %s; use the scheduler's simulated clock (sim.Scheduler.Now)", fn.Name(), pass.PkgPath)
				}
			case "math/rand", "math/rand/v2":
				// Package-level functions draw from the shared global
				// source; constructors (New, NewSource, ...) that feed a
				// seeded stream are the sanctioned path.
				if fn.Type().(*types.Signature).Recv() == nil && !strings.HasPrefix(fn.Name(), "New") {
					pass.Reportf(sel.Pos(), "global %s.%s draws from the process-wide source and breaks (config, seed) determinism; use a seeded sim.RNG", fn.Pkg().Path(), fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
