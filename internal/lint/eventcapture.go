package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// EventCapture enforces the pooled event kernel's contracts on the
// packages that schedule simulation work:
//
//   - Closure posting (Scheduler.At/After/Reschedule with a func) is
//     forbidden: each call heap-allocates the closure plus its captures
//     on what PR 2 made an allocation-free path. Components implement
//     sim.Actor and schedule themselves with PostAt/PostAfter.
//   - sim.Event handles must not be compared with == / != or used as
//     map keys. A handle is {slot, generation}: after the slot is
//     recycled an equal-looking handle can denote a different event, so
//     identity tests are meaningless — ask Scheduler.Active instead.
//
// The sim package itself is exempt (it defines the closure entry points
// for tests and cold paths), as are test files everywhere.
var EventCapture = &Analyzer{
	Name: "eventcapture",
	Doc: "forbid closure-posting (Scheduler.At/After/Reschedule) and sim.Event identity " +
		"comparison on simulation scheduling paths; use Actor dispatch (PostAt/PostAfter) and Scheduler.Active",
	AppliesTo: func(pkgPath string) bool {
		switch pkgPath {
		case "bufsim/internal/sim", "bufsim/internal/lint":
			return false
		}
		return pkgPath == "bufsim" || strings.HasPrefix(pkgPath, "bufsim/")
	},
	Run: runEventCapture,
}

var closurePostMethods = map[string]string{
	"At":         "PostAt",
	"After":      "PostAfter",
	"Reschedule": "Cancel + PostAt",
}

func runEventCapture(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkClosurePost(pass, n)
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					checkEventComparison(pass, n)
				}
			case *ast.MapType:
				if tv, ok := pass.Info.Types[n.Key]; ok && isSimEvent(tv.Type) {
					pass.Reportf(n.Pos(), "sim.Event used as a map key: handles of recycled slots collide, so lookups are unreliable; key by component identity instead")
				}
			}
			return true
		})
	}
	return nil
}

func checkClosurePost(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	replacement, banned := closurePostMethods[fn.Name()]
	if !banned {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Scheduler" || named.Obj().Pkg() == nil ||
		!strings.HasSuffix(named.Obj().Pkg().Path(), "internal/sim") {
		return
	}
	pass.Reportf(call.Pos(), "closure-posting Scheduler.%s allocates the func and its captures per event; implement sim.Actor and use %s", fn.Name(), replacement)
}

func checkEventComparison(pass *Pass, n *ast.BinaryExpr) {
	xt, xok := pass.Info.Types[n.X]
	yt, yok := pass.Info.Types[n.Y]
	if !xok || !yok {
		return
	}
	if isSimEvent(xt.Type) && isSimEvent(yt.Type) {
		pass.Reportf(n.Pos(), "comparing sim.Event handles: a recycled slot makes distinct events compare equal; use Scheduler.Active to test liveness")
	}
}

func isSimEvent(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Event" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/sim")
}
