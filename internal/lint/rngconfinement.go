package lint

import (
	"go/ast"
	"go/types"
)

// RNGConfinement enforces the randomness half of the sharded contract:
// every *sim.RNG / *rand.Rand stream belongs to exactly one shard, and
// the number of draws a stream makes must not depend on how many shards
// the run was split into. Either violation breaks determinism twice
// over — the stream's sequence diverges between runs, and the
// sharded≡unsharded equivalence proof loses its premise that shard
// count only re-orders work, never changes it.
//
// Three rules, all on the dataflow engine:
//   - a stream must not cross the frontier: an RNG passed through
//     PostToAt/PostToAfter executes on another shard;
//   - a stream must not be scheduled through two different shard views
//     in one function (the intraprocedural slice of "one stream, one
//     shard"); Fork() per component is the sanctioned idiom — each
//     fork is a fresh stream, so forking for another shard is fine;
//   - a draw site must not be control-dependent on the shard count
//     (ShardCount(), a Shards config field): if the branch executes at
//     all, it must draw the same values at every shard count.
var RNGConfinement = &Analyzer{
	Name: "rngconfinement",
	Doc: "each *sim.RNG / *rand.Rand stream stays on one shard: no RNG through the " +
		"PostToAt/PostToAfter frontier, no stream scheduled through two shard views, " +
		"and no draw site control-dependent on the shard count",
	AppliesTo: func(pkgPath string) bool {
		return pkgPath != "bufsim/internal/sim" && pkgPath != "bufsim/internal/lint"
	},
	Run: runRNGConfinement,
}

func isRNGType(t types.Type) bool {
	return typeIsNamed(t, "internal/sim", "RNG") || typeIsNamed(t, "math/rand", "Rand")
}

// rngSource tags stream-minting calls: sim.NewRNG, RNG.Fork, rand.New.
// Each mint is a distinct stream.
func rngSource(pass *Pass, e ast.Expr) []tag {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	tv, ok := pass.Info.Types[call]
	if !ok || !isRNGType(tv.Type) {
		return nil
	}
	return []tag{{kind: "rng", key: "stream@" + posKey(pass, call.Pos())}}
}

// shardCountSource tags reads of the shard count: Scheduler.ShardCount
// calls and selections of a field named Shards.
func shardCountSource(pass *Pass, e ast.Expr) []tag {
	switch v := e.(type) {
	case *ast.CallExpr:
		if _, name, ok := isSchedulerMethodCall(pass, v); ok && name == "ShardCount" {
			return []tag{{kind: "nshard", key: "ShardCount"}}
		}
	case *ast.SelectorExpr:
		if fld, ok := pass.Info.Uses[v.Sel].(*types.Var); ok && fld.IsField() && fld.Name() == "Shards" {
			return []tag{{kind: "nshard", key: "Shards"}}
		}
	}
	return nil
}

var rngFlowSpec = flowSpec{
	source: func(pass *Pass, e ast.Expr) []tag {
		return append(rngSource(pass, e), shardCountSource(pass, e)...)
	},
	throughOps:   true, // 1 + i%(n-1) stays shard-count-dependent
	throughIndex: true, // a slice of streams carries them all
}

func runRNGConfinement(pass *Pass) error {
	for _, fd := range funcDecls(pass.Files) {
		checkRNGConfinementFunc(pass, fd)
	}
	return nil
}

func checkRNGConfinementFunc(pass *Pass, fd *ast.FuncDecl) {
	ff := newFuncFlow(pass, rngFlowSpec, fd)
	ff.solve()

	// Rule 1: no RNG value through the cross-shard frontier, and rule 2:
	// no stream scheduled through two different shard views. View
	// identity rides on a second flow with the shardownership spec.
	vf := newFuncFlow(pass, viewFlowSpec, fd)
	vf.solve()
	streamView := make(map[*types.Var]string) // RNG local -> view key it is bound to

	for pass2 := 0; pass2 < 2; pass2++ {
		// Two passes so a binding later in the function still conflicts
		// with a use earlier in it; reports only on the second pass.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, name, ok := isSchedulerMethodCall(pass, call)
			if !ok {
				return true
			}
			if name == "PostToAt" || name == "PostToAfter" {
				for _, arg := range call.Args {
					if t := pass.Info.Types[arg].Type; t != nil && isRNGType(t) {
						if pass2 == 1 {
							pass.Reportf(arg.Pos(), "RNG stream %s crosses the shard frontier through %s; streams are shard-local — Fork one per component instead", exprString(arg), name)
						}
					}
				}
				return true
			}
			if !schedBindMethods[name] {
				return true
			}
			viewKey := singleKey(vf.exprTags(sel.X), "view")
			if viewKey == "" {
				return true
			}
			bindStream := func(v *types.Var, pos ast.Expr) {
				prior, bound := streamView[v]
				if !bound {
					streamView[v] = viewKey
					return
				}
				if prior != viewKey && pass2 == 1 {
					pass.Reportf(pos.Pos(), "RNG stream %s is scheduled through %s but already belongs to %s; a stream is shard-local — Fork a new one per shard", v.Name(), viewKey, prior)
					// Keep the first binding so one bad rebinding
					// doesn't cascade.
				}
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					for v := range freeVars(pass, ff, lit) {
						if isRNGType(v.Type()) {
							bindStream(v, arg)
						}
					}
					continue
				}
				if t := pass.Info.Types[arg].Type; t != nil && isRNGType(t) {
					if v := ff.localVar(arg); v != nil {
						bindStream(v, arg)
					}
				}
			}
			return true
		})
	}

	// Rule 3: draw sites not control-dependent on the shard count. Find
	// branch statements whose condition carries an nshard tag and scan
	// their bodies for draws.
	reportDraws := func(body ast.Node, what string) {
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil || !isRNGType(sig.Recv().Type()) {
				return true
			}
			// Fork counts too: forking advances the parent stream, so a
			// shard-count-dependent fork perturbs every later draw.
			pass.Reportf(call.Pos(), "RNG draw %s.%s is control-dependent on the shard count (%s); the stream would advance differently at different shard counts, breaking sharded≡unsharded equivalence", exprString(sel.X), fn.Name(), what)
			return true
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.IfStmt:
			if k := anyKindKey(ff.exprTags(s.Cond), "nshard"); k != "" {
				reportDraws(s.Body, k)
				if s.Else != nil {
					reportDraws(s.Else, k)
				}
			}
		case *ast.ForStmt:
			if s.Cond != nil {
				if k := anyKindKey(ff.exprTags(s.Cond), "nshard"); k != "" {
					reportDraws(s.Body, k)
				}
			}
		case *ast.SwitchStmt:
			if s.Tag != nil {
				if k := anyKindKey(ff.exprTags(s.Tag), "nshard"); k != "" {
					reportDraws(s.Body, k)
				}
			}
		}
		return true
	})
}

// anyKindKey returns the lexicographically first key of the given kind.
func anyKindKey(ts tagSet, kind string) string {
	key := ""
	for t := range ts {
		if t.kind != kind {
			continue
		}
		if key == "" || t.key < key {
			key = t.key
		}
	}
	return key
}
