package trace

import (
	"strings"
	"testing"

	"bufsim/internal/sim"
	"bufsim/internal/units"
)

func TestSeriesBasics(t *testing.T) {
	s := &Series{Name: "q"}
	s.Add(0, 5)
	s.Add(units.Time(units.Second), 1)
	s.Add(units.Time(2*units.Second), 9)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Min() != 1 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	w := s.Window(0.5, 1.5)
	if w.Len() != 1 || w.Values[0] != 1 {
		t.Errorf("Window = %+v", w)
	}
	var empty Series
	if empty.Min() != 0 || empty.Max() != 0 {
		t.Error("empty series min/max not 0")
	}
}

func TestWriteCSV(t *testing.T) {
	a := &Series{Name: "cwnd"}
	b := &Series{Name: "queue"}
	a.Add(0, 2)
	a.Add(units.Time(units.Second), 4)
	b.Add(0, 0)
	var sb strings.Builder
	if err := WriteCSV(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "time_s,cwnd,queue" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[1], "0.000000,2,0") {
		t.Errorf("row 1 = %q", lines[1])
	}
	if !strings.Contains(lines[2], ",4,") {
		t.Errorf("row 2 = %q", lines[2])
	}
	// No series: no output, no error.
	var sb2 strings.Builder
	if err := WriteCSV(&sb2); err != nil || sb2.Len() != 0 {
		t.Error("empty WriteCSV misbehaved")
	}
}

func TestASCIIPlot(t *testing.T) {
	s := &Series{Name: "saw"}
	for i := 0; i < 100; i++ {
		s.Add(units.Time(i)*units.Time(units.Second), float64(i%10))
	}
	out := ASCIIPlot(s, 40, 8)
	if !strings.Contains(out, "saw") || !strings.Contains(out, "*") {
		t.Errorf("plot missing content:\n%s", out)
	}
	if got := ASCIIPlot(&Series{}, 40, 8); !strings.Contains(got, "empty") {
		t.Error("empty plot not flagged")
	}
	// Constant series must not divide by zero.
	c := &Series{Name: "const"}
	c.Add(0, 5)
	c.Add(units.Time(units.Second), 5)
	_ = ASCIIPlot(c, 10, 4)
}

func TestDownsample(t *testing.T) {
	s := &Series{Name: "saw"}
	for i := 0; i < 10000; i++ {
		s.Add(units.Time(i)*units.Time(units.Millisecond), float64(i%100))
	}
	d := s.Downsample(500)
	if d.Len() > 500 {
		t.Fatalf("Len = %d, want <= 500", d.Len())
	}
	if d.Len() < 400 {
		t.Fatalf("Len = %d, too aggressive", d.Len())
	}
	// Envelope preserved: the sawtooth's extremes survive.
	if d.Max() < 95 || d.Min() > 5 {
		t.Errorf("envelope lost: [%v, %v]", d.Min(), d.Max())
	}
	// Times remain sorted.
	for i := 1; i < d.Len(); i++ {
		if d.Times[i] < d.Times[i-1] {
			t.Fatal("downsampled times not sorted")
		}
	}
	// Short series pass through untouched.
	if got := s.Downsample(20000); got != s {
		t.Error("within-budget series was copied")
	}
	if got := s.Downsample(1); got != s {
		t.Error("degenerate maxPoints should return the original")
	}
}

func TestSamplerPolls(t *testing.T) {
	sched := sim.NewScheduler()
	v := 0.0
	sched.After(units.Second/2, func() { v = 10 })
	s := NewSampler(sched, "probe", 100*units.Millisecond, func() float64 { return v })
	sched.Run(units.Time(units.Second))
	series := s.Series()
	if series.Len() != 10 {
		t.Fatalf("Len = %d, want 10", series.Len())
	}
	if series.Values[0] != 0 || series.Values[9] != 10 {
		t.Errorf("values = %v", series.Values)
	}
	if series.Times[0] != 0.1 {
		t.Errorf("first sample at %v, want 0.1s", series.Times[0])
	}
}

func TestSamplerStop(t *testing.T) {
	sched := sim.NewScheduler()
	s := NewSampler(sched, "p", 100*units.Millisecond, func() float64 { return 1 })
	sched.After(units.Second/2, s.Stop)
	sched.Run(units.Time(units.Second))
	if s.Series().Len() > 5 {
		t.Errorf("sampler did not stop: %d points", s.Series().Len())
	}
}

func TestSamplerBadPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero period did not panic")
		}
	}()
	NewSampler(sim.NewScheduler(), "p", 0, func() float64 { return 0 })
}
