// Package trace records simulation time series — congestion windows,
// queue occupancy, aggregate windows — and renders them as CSV or quick
// ASCII plots. These are the raw material for the paper's Figs. 2–6.
package trace

import (
	"fmt"
	"io"
	"strings"

	"bufsim/internal/sim"
	"bufsim/internal/units"
)

// Series is a sampled time series.
type Series struct {
	Name   string
	Times  []float64 // seconds
	Values []float64
}

// Add appends one point.
func (s *Series) Add(t units.Time, v float64) {
	s.Times = append(s.Times, t.Seconds())
	s.Values = append(s.Values, v)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Times) }

// Min and Max return the value range (0,0 for an empty series).
func (s *Series) Min() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	m := s.Values[0]
	for _, v := range s.Values {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest value.
func (s *Series) Max() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	m := s.Values[0]
	for _, v := range s.Values {
		if v > m {
			m = v
		}
	}
	return m
}

// Window returns the sub-series with Times in [from, to] (in seconds).
func (s *Series) Window(from, to float64) *Series {
	out := &Series{Name: s.Name}
	for i, t := range s.Times {
		if t >= from && t <= to {
			out.Times = append(out.Times, t)
			out.Values = append(out.Values, s.Values[i])
		}
	}
	return out
}

// Downsample returns a copy of the series reduced to at most maxPoints by
// keeping, within each of maxPoints equal-width time buckets, the point
// with the extreme value (alternating min/max so sawtooth envelopes
// survive the reduction). Series already within budget are returned
// unchanged.
func (s *Series) Downsample(maxPoints int) *Series {
	if maxPoints < 2 || s.Len() <= maxPoints {
		return s
	}
	out := &Series{Name: s.Name}
	per := float64(s.Len()) / float64(maxPoints)
	for b := 0; b < maxPoints; b++ {
		lo := int(float64(b) * per)
		hi := int(float64(b+1) * per)
		if hi > s.Len() {
			hi = s.Len()
		}
		if lo >= hi {
			continue
		}
		best := lo
		for i := lo + 1; i < hi; i++ {
			if b%2 == 0 { // even buckets keep the max...
				if s.Values[i] > s.Values[best] {
					best = i
				}
			} else if s.Values[i] < s.Values[best] { // ...odd keep the min
				best = i
			}
		}
		out.Times = append(out.Times, s.Times[best])
		out.Values = append(out.Values, s.Values[best])
	}
	return out
}

// WriteCSV writes "time,<name>" rows for one or more series sharing a
// header. All series must be sampled on their own clocks; each series is
// written as its own column block sequentially when lengths differ, so for
// plotting prefer equal-length sampled series.
func WriteCSV(w io.Writer, series ...*Series) error {
	if len(series) == 0 {
		return nil
	}
	// Header.
	cols := make([]string, 0, len(series)+1)
	cols = append(cols, "time_s")
	for _, s := range series {
		cols = append(cols, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	n := 0
	for _, s := range series {
		if s.Len() > n {
			n = s.Len()
		}
	}
	for i := 0; i < n; i++ {
		row := make([]string, 0, len(series)+1)
		// Use the first series with a point at i for the timestamp.
		ts := ""
		for _, s := range series {
			if i < s.Len() {
				ts = fmt.Sprintf("%.6f", s.Times[i])
				break
			}
		}
		row = append(row, ts)
		for _, s := range series {
			if i < s.Len() {
				row = append(row, fmt.Sprintf("%g", s.Values[i]))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// ASCIIPlot renders a crude fixed-size terminal plot of the series; the
// examples use it so the sawtooth of Fig. 3 is visible without leaving the
// shell.
func ASCIIPlot(s *Series, width, height int) string {
	if s.Len() == 0 || width < 2 || height < 2 {
		return "(empty series)\n"
	}
	lo, hi := s.Min(), s.Max()
	if hi == lo {
		hi = lo + 1
	}
	t0, t1 := s.Times[0], s.Times[s.Len()-1]
	if t1 == t0 {
		t1 = t0 + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for i := range s.Times {
		x := int((s.Times[i] - t0) / (t1 - t0) * float64(width-1))
		y := int((s.Values[i] - lo) / (hi - lo) * float64(height-1))
		row := height - 1 - y
		grid[row][x] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [%.6g .. %.6g]\n", s.Name, lo, hi)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, " t: %.3gs .. %.3gs\n", t0, t1)
	return b.String()
}

// Sampler polls a probe function on a fixed period and accumulates a
// Series. Sampling ends when the scheduler drains or Stop is called.
type Sampler struct {
	sched  *sim.Scheduler
	period units.Duration
	probe  func() float64
	series *Series
	stop   bool
}

// NewSampler starts sampling probe every period, beginning one period from
// now.
func NewSampler(sched *sim.Scheduler, name string, period units.Duration, probe func() float64) *Sampler {
	if period <= 0 {
		panic("trace: non-positive sampling period")
	}
	s := &Sampler{sched: sched, period: period, probe: probe, series: &Series{Name: name}}
	s.sched.PostAfter(s.period, s, 0, nil)
	return s
}

// OnEvent implements sim.Actor: each tick samples the probe and re-arms,
// with no per-sample allocation.
func (s *Sampler) OnEvent(int32, any) {
	if s.stop {
		return
	}
	s.series.Add(s.sched.Now(), s.probe())
	s.sched.PostAfter(s.period, s, 0, nil)
}

// Stop ends sampling.
func (s *Sampler) Stop() { s.stop = true }

// Series returns the accumulated series (safe to read after the run).
func (s *Sampler) Series() *Series { return s.series }
