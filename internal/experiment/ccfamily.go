package experiment

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	"bufsim/internal/audit"
	"bufsim/internal/metrics"
	"bufsim/internal/runcache"
	"bufsim/internal/tcp"
	"bufsim/internal/units"
)

// CCFamilyConfig drives the updated-buffer-sizing-theory comparison
// (Spang, Arslan, McKeown, "Updating the Theory of Buffer Sizing"): how
// much buffer does each congestion-control family actually need as n
// grows? The 2004 rule B = RTT·C/sqrt(n) was derived for loss-based,
// window-driven Reno; the loss-based families are expected to track it
// (CUBIC with a larger constant, since its decrease is gentler), while
// the rate-based BBR's requirement is expected to decouple from n —
// which is exactly where the rule breaks.
//
// For every (variant, n) grid point the driver measures the variant's
// utilization ceiling at a generous buffer (two BDPs), bisects for the
// smallest buffer reaching Target x ceiling, and measures utilization
// at the paper's sqrt-rule buffer. Comparing min-buffer against the
// rule's prediction per family is the figure's payload. The relative
// target makes families with different ceilings comparable: each is
// asked to reach its own attainable throughput, not Reno's.
type CCFamilyConfig struct {
	Seed int64

	// Ns are the long-lived flow counts to sweep.
	Ns []int
	// Variants are the congestion-control families to compare; defaults
	// to every registered variant.
	Variants []tcp.Variant

	BottleneckRate units.BitRate
	RTTMin, RTTMax units.Duration
	SegmentSize    units.ByteSize

	// Target is the fraction of each variant's own large-buffer
	// utilization ceiling the min-buffer search must reach.
	Target float64

	Warmup, Measure units.Duration

	// Parallelism bounds the sweep's worker goroutines; 0 means the
	// machine's parallelism.
	Parallelism int

	// Metrics, Audit, Cache, Resume and Ctx observe and orchestrate the
	// underlying runs exactly as in LongLivedConfig.
	Metrics *metrics.Registry
	Audit   *audit.Auditor
	Cache   *runcache.Store
	Resume  bool
	Ctx     context.Context
}

func (c CCFamilyConfig) withDefaults() CCFamilyConfig {
	if len(c.Ns) == 0 {
		c.Ns = []int{25, 50, 100, 200, 400}
	}
	if len(c.Variants) == 0 {
		c.Variants = tcp.Variants()
	}
	if c.BottleneckRate == 0 {
		c.BottleneckRate = units.OC3
	}
	if c.RTTMin == 0 {
		c.RTTMin = 60 * units.Millisecond
	}
	if c.RTTMax == 0 {
		c.RTTMax = 100 * units.Millisecond
	}
	if c.SegmentSize == 0 {
		c.SegmentSize = units.DefaultSegment
	}
	if c.Target == 0 {
		c.Target = 0.95
	}
	if c.Warmup == 0 {
		c.Warmup = 20 * units.Second
	}
	if c.Measure == 0 {
		c.Measure = 40 * units.Second
	}
	return c
}

// CCFamilyPoint is one (variant, n) outcome of the buffer-requirement
// comparison.
type CCFamilyPoint struct {
	Variant tcp.Variant
	N       int

	// BDPPackets is MeanRTT x C in packets; SqrtRule is the 2004
	// recommendation BDP/sqrt(n).
	BDPPackets int
	SqrtRule   int

	// Ceiling is the variant's utilization with a two-BDP buffer — its
	// attainable throughput on this scenario — and Target the absolute
	// utilization the min-buffer search had to reach (Target x Ceiling).
	Ceiling float64
	Target  float64

	// MinBuffer is the smallest buffer reaching Target, by bisection;
	// equal to the search bound when unreachable.
	MinBuffer int
	// RuleRatio is MinBuffer / SqrtRule: 1.0 means the 2004 rule sizes
	// this family exactly; above 1 the rule under-provisions it.
	RuleRatio float64
	// BDPFraction is MinBuffer / BDP, the classic rule-of-thumb scale.
	BDPFraction float64

	// UtilAtRule is the measured utilization with exactly the sqrt-rule
	// buffer.
	UtilAtRule float64
}

// ccFamilyPointConfig is the semantic identity of one grid point for
// the run cache: the scenario plus the search parameters.
type ccFamilyPointConfig struct {
	Scenario LongLivedConfig
	Target   float64
	SearchHi int
}

// CCFamilyTable is the cross-family buffer-requirement dataset, in
// (variant, n) grid order.
type CCFamilyTable []CCFamilyPoint

// Table implements Result.
func (t CCFamilyTable) Table() string {
	return tabulate(func(tw *tabwriter.Writer) {
		fmt.Fprintln(tw, "Variant\tFlows\tBDP\tSqrtRule\tMinBuffer\tMin/Rule\tMin/BDP\tUtil@Rule\tCeiling")
		for _, p := range t {
			fmt.Fprintf(tw, "%v\t%d\t%d\t%d\t%d\t%.2fx\t%.3f\t%.2f%%\t%.2f%%\n",
				p.Variant, p.N, p.BDPPackets, p.SqrtRule, p.MinBuffer,
				p.RuleRatio, p.BDPFraction, 100*p.UtilAtRule, 100*p.Ceiling)
		}
	})
}

// WriteJSON implements Result.
func (t CCFamilyTable) WriteJSON(w io.Writer) error { return writeJSON(w, t) }

// RunCCFamily measures the buffer requirement of every configured
// congestion-control family across the configured flow counts. Grid
// points run through the sweep orchestrator (parallel, cached,
// checkpointed); each point is internally sequential (its bisection
// probes depend on each other).
func RunCCFamily(cfg CCFamilyConfig) CCFamilyTable {
	cfg = cfg.withDefaults()
	meanRTT := (cfg.RTTMin + cfg.RTTMax) / 2
	bdp := units.PacketsInFlight(cfg.BottleneckRate, meanRTT, cfg.SegmentSize)

	points := make(CCFamilyTable, len(cfg.Variants)*len(cfg.Ns))
	runSweep(sweepSpec{
		name:        "ccfamily",
		cfg:         cfg,
		cache:       cfg.Cache,
		resume:      cfg.Resume,
		ctx:         cfg.Ctx,
		parallelism: cfg.Parallelism,
		metrics:     cfg.Metrics,
	}, len(points), func(i int) {
		v := cfg.Variants[i/len(cfg.Ns)]
		n := cfg.Ns[i%len(cfg.Ns)]
		points[i] = runCCFamilyPoint(cfg, v, n, bdp)
	})
	return points
}

// runCCFamilyPoint measures one (variant, n) grid point: ceiling,
// min-buffer bisection, and utilization at the sqrt-rule buffer.
func runCCFamilyPoint(cfg CCFamilyConfig, v tcp.Variant, n, bdp int) CCFamilyPoint {
	ll := LongLivedConfig{
		Seed:           cfg.Seed,
		N:              n,
		BottleneckRate: cfg.BottleneckRate,
		RTTMin:         cfg.RTTMin,
		RTTMax:         cfg.RTTMax,
		SegmentSize:    cfg.SegmentSize,
		Warmup:         cfg.Warmup,
		Measure:        cfg.Measure,
		Variant:        v,
		Audit:          cfg.Audit,
		Cache:          cfg.Cache,
	}
	sqrtRule := SqrtRuleBuffer(float64(bdp), n)
	hi := 2 * bdp
	if hi < 4*sqrtRule {
		hi = 4 * sqrtRule
	}
	if hi < 4 {
		hi = 4
	}
	// The whole point is one cache unit (kind "ccfamily-point") on top
	// of the per-run memoization, so a cached sweep replays instantly
	// instead of re-walking the bisection's probe sequence.
	force := cfg.Metrics != nil || cfg.Audit != nil
	key := ccFamilyPointConfig{Scenario: ll, Target: cfg.Target, SearchHi: hi}
	return memoRun(cfg.Cache, "ccfamily-point", key, force, func() CCFamilyPoint {
		ceiling := MeasuredUtilization(ll, hi)
		target := cfg.Target * ceiling
		minB := MinBufferForUtilization(ll, target, hi)
		return CCFamilyPoint{
			Variant:     v,
			N:           n,
			BDPPackets:  bdp,
			SqrtRule:    sqrtRule,
			Ceiling:     ceiling,
			Target:      target,
			MinBuffer:   minB,
			RuleRatio:   float64(minB) / float64(sqrtRule),
			BDPFraction: float64(minB) / float64(bdp),
			UtilAtRule:  MeasuredUtilization(ll, sqrtRule),
		}
	})
}
