package experiment

import (
	"math/rand"
	"testing"

	"bufsim/internal/adversary"
	"bufsim/internal/audit"
	"bufsim/internal/tcp"
	"bufsim/internal/units"
	"bufsim/internal/workload"
)

// TestRandomScenariosUnderAudit is the randomized end-to-end property
// test: small simulations with randomly drawn parameters across the
// discipline/variant/feature matrix must complete with zero invariant
// violations. The generator is seeded, so a failure reproduces exactly;
// the failing seed and config are in the test output.
func TestRandomScenariosUnderAudit(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized scenario sweep in -short mode")
	}
	rng := rand.New(rand.NewSource(20260805))
	variants := []tcp.Variant{tcp.Reno, tcp.Tahoe, tcp.NewReno, tcp.Sack}
	for i := 0; i < 12; i++ {
		aud := audit.New()
		cfg := LongLivedConfig{
			Seed:           rng.Int63n(1 << 30),
			N:              2 + rng.Intn(12),
			BottleneckRate: units.BitRate(5+rng.Intn(20)) * units.Mbps,
			BufferPackets:  4 + rng.Intn(60),
			Warmup:         units.Duration(1+rng.Intn(2)) * units.Second,
			Measure:        units.Duration(2+rng.Intn(3)) * units.Second,
			Variant:        variants[rng.Intn(len(variants))],
			Paced:          rng.Intn(3) == 0,
			DelayedAck:     rng.Intn(3) == 0,
			Audit:          aud,
		}
		switch rng.Intn(4) {
		case 1:
			cfg.UseRED = true
		case 2:
			cfg.UseRED = true
			cfg.ECN = true
		case 3:
			cfg.UseCoDel = true
		}
		res := RunLongLived(cfg)
		if err := aud.Err(); err != nil {
			t.Fatalf("scenario %d (%+v): %v", i, cfg, err)
		}
		if res.Utilization < 0 || res.Utilization > 1.000001 {
			t.Fatalf("scenario %d: utilization %v out of range", i, res.Utilization)
		}
	}

	// Short-flow and mixed workloads exercise finite flows, slow-start
	// completion accounting and the trace generator under audit.
	aud := audit.New()
	afct, completed, _ := ShortFlowAFCT(ShortFlowRunConfig{
		Seed: 42, Rate: 20 * units.Mbps, Load: 0.6, FlowLength: 10,
		BufferPackets: 40, Warmup: 2 * units.Second, Measure: 4 * units.Second,
		Audit: aud,
	})
	if err := aud.Err(); err != nil {
		t.Fatalf("short flows: %v", err)
	}
	if completed > 0 && afct <= 0 {
		t.Fatalf("short flows: %d completed but AFCT %v", completed, afct)
	}

	aud = audit.New()
	RunMixed(MixedConfig{
		Seed: 13, NLong: 6, ShortLoad: 0.2, Sizes: workload.GeometricSize(8),
		BottleneckRate: 20 * units.Mbps, BufferPackets: 30,
		Warmup: 2 * units.Second, Measure: 4 * units.Second,
		Audit: aud,
	})
	if err := aud.Err(); err != nil {
		t.Fatalf("mixed traffic: %v", err)
	}

	// Adversarial patterns are exactly the traffic that stresses the
	// conservation laws hardest — synchronized bursts overflowing tiny
	// buffers, lockstep loss epochs, multi-bottleneck chains — so each
	// randomized point runs one under audit too.
	for i := 0; i < 6; i++ {
		aud := audit.New()
		pc := adversarialPointConfig{
			Seed:            rng.Int63n(1 << 30),
			Pattern:         adversary.Pattern(i % len(adversary.PatternNames())),
			N:               2 + rng.Intn(10),
			BottleneckRate:  units.BitRate(10+rng.Intn(20)) * units.Mbps,
			RTT:             units.Duration(40+rng.Intn(80)) * units.Millisecond,
			SegmentSize:     units.DefaultSegment,
			BufferFactor:    0.05 + rng.Float64(),
			PulsePeakFactor: 2 + rng.Float64()*4,
			PulsePeriod:     units.Duration(100+rng.Intn(200)) * units.Millisecond,
			PulseDuty:       0.1 + rng.Float64()*0.5,
			Hops:            2 + rng.Intn(2),
			Warmup:          units.Duration(1+rng.Intn(2)) * units.Second,
			Measure:         units.Duration(2+rng.Intn(3)) * units.Second,
		}
		row := runAdversarialPoint(pc, aud)
		if err := aud.Err(); err != nil {
			t.Fatalf("adversarial %v (%+v): %v", pc.Pattern, pc, err)
		}
		if row.Utilization < 0 || row.Utilization > 1.000001 {
			t.Fatalf("adversarial %v: utilization %v out of range", pc.Pattern, row.Utilization)
		}
	}
}

// TestAuditDoesNotPerturbResults pins the pure-observation contract at
// the experiment level: the same config with and without an auditor must
// produce identical results, field for field.
func TestAuditDoesNotPerturbResults(t *testing.T) {
	cfg := LongLivedConfig{
		Seed: 7, N: 8, BottleneckRate: 15 * units.Mbps, BufferPackets: 20,
		Warmup: 2 * units.Second, Measure: 4 * units.Second, UseRED: true,
	}
	base := RunLongLived(cfg)
	aud := audit.New()
	cfg.Audit = aud
	audited := RunLongLived(cfg)
	if err := aud.Err(); err != nil {
		t.Fatalf("audited run: %v", err)
	}
	cfg.Audit = nil
	if base != audited {
		t.Errorf("audit perturbed the run:\n  off: %+v\n  on:  %+v", base, audited)
	}
}
