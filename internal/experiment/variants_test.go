package experiment

import (
	"testing"

	"bufsim/internal/tcp"
	"bufsim/internal/units"
)

func TestRunVariantAblationRuleHoldsForAll(t *testing.T) {
	if testing.Short() {
		t.Skip("four simulation runs")
	}
	points := RunVariantAblation(VariantConfig{
		Seed:           1,
		N:              100,
		BottleneckRate: 40 * units.Mbps,
		BufferFactor:   1.5,
		Warmup:         10 * units.Second,
		Measure:        20 * units.Second,
	})
	if len(points) != 4 {
		t.Fatalf("got %d points", len(points))
	}
	byName := map[tcp.Variant]VariantPoint{}
	for _, p := range points {
		byName[p.Variant] = p
		// The sizing result must not hinge on the CC flavour.
		if p.Utilization < 0.93 {
			t.Errorf("%v utilization = %v, want >= 0.93", p.Variant, p.Utilization)
		}
		if p.LossRate <= 0 {
			t.Errorf("%v shows no loss despite saturation", p.Variant)
		}
	}
	// SACK's whole point: materially fewer timeouts than Reno on the
	// same scenario.
	if byName[tcp.Sack].Timeouts >= byName[tcp.Reno].Timeouts {
		t.Errorf("SACK timeouts (%d) not below Reno's (%d)",
			byName[tcp.Sack].Timeouts, byName[tcp.Reno].Timeouts)
	}
}
