package experiment

import (
	"bufsim/internal/audit"
	"bufsim/internal/model"
	"bufsim/internal/queue"
	"bufsim/internal/runcache"
	"bufsim/internal/sim"
	"bufsim/internal/tcp"
	"bufsim/internal/topology"
	"bufsim/internal/units"
	"bufsim/internal/workload"
)

// PacingConfig drives the pacing ablation: the technical report argues
// that sender pacing removes the burstiness that forces buffers above the
// sqrt(n) rule when n is small. We compare utilization with and without
// pacing across buffer sizes well below the single-flow rule of thumb.
type PacingConfig struct {
	Seed int64

	N              int
	BottleneckRate units.BitRate
	RTTMin, RTTMax units.Duration
	SegmentSize    units.ByteSize
	BufferFactors  []float64 // multiples of RTTxC/sqrt(n)

	Warmup, Measure units.Duration

	// Audit, when non-nil, runs every comparison under the
	// conservation-law checker (see LongLivedConfig.Audit).
	Audit *audit.Auditor

	// Cache, when non-nil, memoizes the underlying long-lived runs (see
	// LongLivedConfig.Cache).
	Cache *runcache.Store
}

func (c PacingConfig) withDefaults() PacingConfig {
	if c.N == 0 {
		c.N = 25
	}
	if c.BottleneckRate == 0 {
		c.BottleneckRate = 40 * units.Mbps
	}
	if len(c.BufferFactors) == 0 {
		c.BufferFactors = []float64{0.25, 0.5, 1}
	}
	return c
}

// PacingPoint compares the two senders at one buffer size.
type PacingPoint struct {
	BufferPackets int
	Factor        float64
	UtilUnpaced   float64
	UtilPaced     float64
}

// RunPacingAblation executes the pacing comparison.
func RunPacingAblation(cfg PacingConfig) PacingTable {
	cfg = cfg.withDefaults()
	ll := LongLivedConfig{
		Seed:           cfg.Seed,
		N:              cfg.N,
		BottleneckRate: cfg.BottleneckRate,
		RTTMin:         cfg.RTTMin,
		RTTMax:         cfg.RTTMax,
		SegmentSize:    cfg.SegmentSize,
		Warmup:         cfg.Warmup,
		Measure:        cfg.Measure,
		Audit:          cfg.Audit,
		Cache:          cfg.Cache,
	}
	ll = ll.withDefaults()
	meanRTT := (ll.RTTMin + ll.RTTMax) / 2
	bdp := float64(units.PacketsInFlight(ll.BottleneckRate, meanRTT, ll.SegmentSize))

	var out []PacingPoint
	for _, f := range cfg.BufferFactors {
		buffer := int(f * float64(SqrtRuleBuffer(bdp, cfg.N)))
		if buffer < 1 {
			buffer = 1
		}
		unpaced := ll
		unpaced.BufferPackets = buffer
		paced := unpaced
		paced.Paced = true
		out = append(out, PacingPoint{
			BufferPackets: buffer,
			Factor:        f,
			UtilUnpaced:   RunLongLived(unpaced).Utilization,
			UtilPaced:     RunLongLived(paced).Utilization,
		})
	}
	return out
}

// SmoothingConfig drives the §4 access-link ablation. The paper: "for our
// model and simulation we assumed access links that are faster than the
// bottleneck link. There is evidence that highly aggregated traffic from
// slow access links in some cases can lead to bursts being smoothed out
// completely. In this case individual packet arrivals are close to
// Poisson, resulting in even smaller buffers" (computable with M/D/1).
//
// We measure short-flow queue tails with fast access links (slow-start
// bursts arrive intact -> M/G/1 with bursty X) versus slow access links
// (bursts smeared -> toward M/D/1).
type SmoothingConfig struct {
	Seed int64

	BottleneckRate units.BitRate
	Load           float64
	FlowLen        int64
	MaxWindow      int
	SegmentSize    units.ByteSize
	Stations       int

	// AccessRatios are access-link rates as multiples of the bottleneck:
	// 10x approximates the paper's "infinite speed" worst case; ratios
	// well below 1 model the paper's "highly aggregated traffic from
	// slow access links", which smears slow-start bursts toward
	// per-packet Poisson arrivals.
	AccessRatios []float64

	// TailAt is the queue depth at which P(Q >= b) is measured.
	TailAt int

	Warmup, Measure units.Duration

	// Audit, when non-nil, runs every access-ratio point under the
	// conservation-law checker (see LongLivedConfig.Audit).
	Audit *audit.Auditor

	// Cache, when non-nil, memoizes each access-ratio point (see
	// LongLivedConfig.Cache).
	Cache *runcache.Store
}

func (c SmoothingConfig) withDefaults() SmoothingConfig {
	if c.BottleneckRate == 0 {
		c.BottleneckRate = 40 * units.Mbps
	}
	if c.Load == 0 {
		c.Load = 0.8
	}
	if c.FlowLen == 0 {
		c.FlowLen = 30
	}
	if c.MaxWindow == 0 {
		c.MaxWindow = 43
	}
	if c.SegmentSize == 0 {
		c.SegmentSize = units.DefaultSegment
	}
	if c.Stations == 0 {
		c.Stations = 50
	}
	if len(c.AccessRatios) == 0 {
		c.AccessRatios = []float64{10, 1, 0.25}
	}
	if c.TailAt == 0 {
		c.TailAt = 20
	}
	if c.Warmup == 0 {
		c.Warmup = 10 * units.Second
	}
	if c.Measure == 0 {
		c.Measure = 60 * units.Second
	}
	return c
}

// SmoothingPoint is one access-ratio measurement.
type SmoothingPoint struct {
	AccessRatio float64
	// TailProb is the measured P(Q >= TailAt) at the bottleneck,
	// sampled at packet enqueue times.
	TailProb float64
	// MeanQueue is the time-averaged occupancy.
	MeanQueue float64
	// ModelMG1 and ModelMD1 bracket the measurement: bursty slow-start
	// arrivals vs fully smoothed Poisson packets.
	ModelMG1 float64
	ModelMD1 float64
}

// RunSmoothing executes the access-link smoothing ablation. With
// cfg.Cache set, each access-ratio point is memoized under a key with
// AccessRatios narrowed to that single ratio, so points are shared
// between runs that sweep different ratio lists.
func RunSmoothing(cfg SmoothingConfig) SmoothingTable {
	cfg = cfg.withDefaults()
	moments := model.MomentsForFlowLength(cfg.FlowLen, 2, cfg.MaxWindow)

	out := SmoothingTable{TailAt: cfg.TailAt}
	for _, ratio := range cfg.AccessRatios {
		cfgKey := cfg
		cfgKey.AccessRatios = []float64{ratio}
		p := memoRun(cfg.Cache, "smoothing", cfgKey, cfg.Audit != nil, func() SmoothingPoint {
			return runSmoothingPoint(cfg, ratio, moments)
		})
		out.Points = append(out.Points, p)
	}
	return out
}

// runSmoothingPoint measures one access ratio; cfg has defaults applied.
func runSmoothingPoint(cfg SmoothingConfig, ratio float64, moments model.BurstMoments) SmoothingPoint {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(cfg.Seed)
	d := topology.NewDumbbell(topology.Config{
		Sched:           sched,
		RNG:             rng.Fork(),
		BottleneckRate:  cfg.BottleneckRate,
		BottleneckDelay: 10 * units.Millisecond,
		Buffer:          queue.Unlimited(),
		AccessRate:      units.BitRate(ratio * float64(cfg.BottleneckRate)),
		Stations:        cfg.Stations,
		RTTMin:          60 * units.Millisecond,
		RTTMax:          140 * units.Millisecond,
		Auditor:         cfg.Audit,
	})
	gen := workload.NewShortFlows(workload.ShortFlowConfig{
		Dumbbell: d,
		RNG:      rng.Fork(),
		Load:     cfg.Load,
		Sizes:    workload.FixedSize(cfg.FlowLen),
		TCP:      tcp.Config{SegmentSize: cfg.SegmentSize, MaxWindow: cfg.MaxWindow},
	})
	gen.Start()

	warmEnd := units.Epoch.Add(cfg.Warmup)
	sched.Run(warmEnd)
	// Sample the queue during the window (arrival sampling, matching the
	// model's P(Q >= b) seen by arrivals).
	probe := &queueProbe{sched: sched, d: d, period: units.Millisecond, tailAt: cfg.TailAt}
	sched.PostAfter(probe.period, probe, 0, nil)
	sched.Run(warmEnd.Add(cfg.Measure))
	gen.Stop()

	p := SmoothingPoint{
		AccessRatio: ratio,
		ModelMG1:    moments.QueueTail(cfg.Load, float64(cfg.TailAt)),
		ModelMD1:    model.MD1QueueTail(cfg.Load, float64(cfg.TailAt)),
	}
	if probe.samples > 0 {
		p.TailProb = float64(probe.exceed) / float64(probe.samples)
		p.MeanQueue = probe.occupancy / float64(probe.samples)
	}
	return p
}

// queueProbe periodically samples the bottleneck queue through the
// kernel's typed-event path: one actor for the whole run instead of one
// rescheduled closure per sample.
type queueProbe struct {
	sched  *sim.Scheduler
	d      *topology.Dumbbell
	period units.Duration
	tailAt int

	samples   int64
	exceed    int64
	occupancy float64
}

// OnEvent implements sim.Actor.
func (p *queueProbe) OnEvent(int32, any) {
	q := p.d.Bottleneck.Queue().Len()
	p.samples++
	p.occupancy += float64(q)
	if q >= p.tailAt {
		p.exceed++
	}
	p.sched.PostAfter(p.period, p, 0, nil)
}
