package experiment

import (
	"bufsim/internal/audit"
	"bufsim/internal/runcache"
	"bufsim/internal/units"
)

// BackboneConfig reproduces the paper's §5.3 closing experiment: a 10 Gb/s
// Internet2 link run at 0.5% of its default one-second buffer showed "no
// measurable degradation in quality of service". Simulating 10 Gb/s
// packet-by-packet is wasteful for the same physics, so the default here
// is a 2.5 Gb/s (OC48-class) bottleneck with thousands of flows; the
// buffer is DefaultBufferFraction of a full second's worth of line rate,
// exactly the paper's framing ("5ms compared with the default of 1
// second").
type BackboneConfig struct {
	Seed int64

	BottleneckRate units.BitRate
	N              int
	RTTMin, RTTMax units.Duration
	SegmentSize    units.ByteSize

	// BufferFraction scales the classical one-second buffer
	// (1s x C): the paper ran 0.005.
	BufferFraction float64

	Warmup, Measure units.Duration

	// Audit, when non-nil, runs the scenario under the conservation-law
	// checker (see LongLivedConfig.Audit).
	Audit *audit.Auditor

	// Cache, when non-nil, memoizes the underlying runs (see
	// LongLivedConfig.Cache).
	Cache *runcache.Store
}

func (c BackboneConfig) withDefaults() BackboneConfig {
	if c.BottleneckRate == 0 {
		c.BottleneckRate = units.OC48
	}
	if c.N == 0 {
		c.N = 2500
	}
	if c.RTTMin == 0 {
		c.RTTMin = 60 * units.Millisecond
	}
	if c.RTTMax == 0 {
		c.RTTMax = 140 * units.Millisecond
	}
	if c.SegmentSize == 0 {
		c.SegmentSize = units.DefaultSegment
	}
	if c.BufferFraction == 0 {
		c.BufferFraction = 0.005
	}
	if c.Warmup == 0 {
		c.Warmup = 10 * units.Second
	}
	if c.Measure == 0 {
		c.Measure = 20 * units.Second
	}
	return c
}

// BackboneResult summarizes the backbone run at two buffer sizes.
type BackboneResult struct {
	OneSecondBuffer int // packets: the "default" 1s x C
	SmallBuffer     int // packets: BufferFraction of the above
	SqrtRule        int // packets: RTT x C / sqrt(n), for reference

	Small LongLivedResult // measured with the small buffer
	// QoS indicators at the small buffer.
	UtilDegradation float64 // 1 - utilization
}

// RunBackbone executes the §5.3 scenario at the small buffer. (Running
// the full one-second buffer is pointless — it cannot do worse than 100%
// utilization and would only add seconds of queueing; the paper also only
// reports the small-buffer outcome.)
func RunBackbone(cfg BackboneConfig) BackboneResult {
	cfg = cfg.withDefaults()
	oneSec := units.PacketsInFlight(cfg.BottleneckRate, units.Second, cfg.SegmentSize)
	small := int(float64(oneSec) * cfg.BufferFraction)
	meanRTT := (cfg.RTTMin + cfg.RTTMax) / 2
	bdp := units.PacketsInFlight(cfg.BottleneckRate, meanRTT, cfg.SegmentSize)

	res := BackboneResult{
		OneSecondBuffer: oneSec,
		SmallBuffer:     small,
		SqrtRule:        SqrtRuleBuffer(float64(bdp), cfg.N),
	}
	res.Small = RunLongLived(LongLivedConfig{
		Seed:           cfg.Seed,
		N:              cfg.N,
		BottleneckRate: cfg.BottleneckRate,
		RTTMin:         cfg.RTTMin,
		RTTMax:         cfg.RTTMax,
		SegmentSize:    cfg.SegmentSize,
		BufferPackets:  small,
		Warmup:         cfg.Warmup,
		Measure:        cfg.Measure,
		Audit:          cfg.Audit,
		Cache:          cfg.Cache,
	})
	res.UtilDegradation = 1 - res.Small.Utilization
	return res
}
