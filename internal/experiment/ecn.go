package experiment

import (
	"bufsim/internal/audit"
	"bufsim/internal/runcache"
	"bufsim/internal/units"
)

// ECNConfig drives the ECN ablation: RED that marks (with ECN-capable
// senders) versus RED that drops, at the same sqrt(n)-rule buffer. Marking
// delivers the congestion signal without losing packets, so the same tiny
// buffer should yield equal-or-better utilization with near-zero loss —
// an AQM-era postscript to the paper's drop-tail result.
type ECNConfig struct {
	Seed int64

	N              int
	BottleneckRate units.BitRate
	RTTMin, RTTMax units.Duration
	SegmentSize    units.ByteSize
	BufferFactor   float64 // multiple of RTTxC/sqrt(n)

	Warmup, Measure units.Duration

	// Audit, when non-nil, runs both arms under the conservation-law
	// checker (see LongLivedConfig.Audit).
	Audit *audit.Auditor

	// Cache, when non-nil, memoizes the underlying runs (see
	// LongLivedConfig.Cache).
	Cache *runcache.Store
}

func (c ECNConfig) withDefaults() ECNConfig {
	if c.N == 0 {
		c.N = 200
	}
	if c.BottleneckRate == 0 {
		c.BottleneckRate = units.OC3
	}
	if c.BufferFactor == 0 {
		c.BufferFactor = 2
	}
	return c
}

// ECNResult compares marking and dropping.
type ECNResult struct {
	BufferPackets int
	Drop          LongLivedResult // RED dropping
	Mark          LongLivedResult // RED marking + ECN senders
}

// RunECN executes the ablation.
func RunECN(cfg ECNConfig) ECNResult {
	cfg = cfg.withDefaults()
	ll := LongLivedConfig{
		Seed:           cfg.Seed,
		N:              cfg.N,
		BottleneckRate: cfg.BottleneckRate,
		RTTMin:         cfg.RTTMin,
		RTTMax:         cfg.RTTMax,
		SegmentSize:    cfg.SegmentSize,
		UseRED:         true,
		Warmup:         cfg.Warmup,
		Measure:        cfg.Measure,
		Audit:          cfg.Audit,
		Cache:          cfg.Cache,
	}
	ll = ll.withDefaults()
	meanRTT := (ll.RTTMin + ll.RTTMax) / 2
	bdp := float64(units.PacketsInFlight(ll.BottleneckRate, meanRTT, ll.SegmentSize))
	buffer := int(cfg.BufferFactor * float64(SqrtRuleBuffer(bdp, cfg.N)))
	if buffer < 1 {
		buffer = 1
	}
	ll.BufferPackets = buffer

	drop := ll
	mark := ll
	mark.ECN = true
	return ECNResult{
		BufferPackets: buffer,
		Drop:          RunLongLived(drop),
		Mark:          RunLongLived(mark),
	}
}
