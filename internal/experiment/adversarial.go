package experiment

import (
	"context"
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"bufsim/internal/adversary"
	"bufsim/internal/audit"
	"bufsim/internal/metrics"
	"bufsim/internal/probe"
	"bufsim/internal/queue"
	"bufsim/internal/runcache"
	"bufsim/internal/sim"
	"bufsim/internal/tcp"
	"bufsim/internal/topology"
	"bufsim/internal/units"
)

// AdversarialConfig drives the failure-mode sweep: every adversarial
// pattern (see internal/adversary) against a ladder of buffer sizes,
// measuring how the sqrt(n) regime degrades when the rule's statistical
// assumptions are attacked directly. Where the paper's experiments ask
// "how small can the buffer be under realistic traffic", this sweep
// asks "what does the worst admissible traffic do at each size" — the
// adversarial-queueing counterpart.
//
// Each pattern runs over a deliberately hostile scenario: a single
// fixed RTT (no per-station draw to desynchronize the cohort), jitter-
// free bursts, simultaneous starts. SyncIndex is reported for the AIMD
// cohort (measured aggregate-window CoV over the desynchronized CLT
// prediction, as in RunSyncAblation); it reads near sqrt(n) when the
// attack works.
type AdversarialConfig struct {
	Seed int64

	// Patterns defaults to every registered adversarial pattern.
	Patterns []adversary.Pattern
	// N is the pattern's cohort size: pulse trains, AIMD flows, or
	// flows per core link in the parking lot.
	N int

	BottleneckRate units.BitRate
	// RTT is every flow's two-way propagation delay; a single value on
	// purpose (equal RTTs are part of the attack).
	RTT         units.Duration
	SegmentSize units.ByteSize

	// BufferFactors ladder the buffer as multiples of the BDP; note the
	// sqrt(n) rule's 1/sqrt(N) lives inside this range.
	BufferFactors []float64

	// PulsePeakFactor is the pulse pattern's aggregate on-phase rate as
	// a multiple of the bottleneck; PulsePeriod and PulseDuty shape the
	// train.
	PulsePeakFactor float64
	PulsePeriod     units.Duration
	PulseDuty       float64

	// Hops is the parking-lot chain length.
	Hops int

	Warmup, Measure units.Duration

	// Parallelism bounds the sweep's worker goroutines; 0 means the
	// machine's parallelism.
	Parallelism int

	// Metrics, Audit, Cache, Resume and Ctx observe and orchestrate the
	// runs exactly as in LongLivedConfig.
	Metrics *metrics.Registry
	Audit   *audit.Auditor
	Cache   *runcache.Store
	Resume  bool
	Ctx     context.Context
}

func (c AdversarialConfig) withDefaults() AdversarialConfig {
	if len(c.Patterns) == 0 {
		for i := range adversary.PatternNames() {
			c.Patterns = append(c.Patterns, adversary.Pattern(i))
		}
	}
	if c.N == 0 {
		c.N = 16
	}
	if c.BottleneckRate == 0 {
		c.BottleneckRate = 40 * units.Mbps
	}
	if c.RTT == 0 {
		c.RTT = 100 * units.Millisecond
	}
	if c.SegmentSize == 0 {
		c.SegmentSize = units.DefaultSegment
	}
	if len(c.BufferFactors) == 0 {
		c.BufferFactors = []float64{0.05, 0.125, 0.25, 0.5, 1.0}
	}
	if c.PulsePeakFactor == 0 {
		c.PulsePeakFactor = 4
	}
	if c.PulsePeriod == 0 {
		c.PulsePeriod = 200 * units.Millisecond
	}
	if c.PulseDuty == 0 {
		c.PulseDuty = 0.25
	}
	if c.Hops == 0 {
		c.Hops = 3
	}
	if c.Warmup == 0 {
		c.Warmup = 10 * units.Second
	}
	if c.Measure == 0 {
		c.Measure = 30 * units.Second
	}
	return c
}

// adversarialPointConfig is the semantic identity of one grid point for
// the run cache: only the fields that change what the point computes,
// so extending the sweep's pattern list or factor ladder replays the
// untouched points as hits.
type adversarialPointConfig struct {
	Seed            int64
	Pattern         adversary.Pattern
	N               int
	BottleneckRate  units.BitRate
	RTT             units.Duration
	SegmentSize     units.ByteSize
	BufferFactor    float64
	PulsePeakFactor float64
	PulsePeriod     units.Duration
	PulseDuty       float64
	Hops            int
	Warmup, Measure units.Duration
}

// AdversarialRow is one (pattern, buffer) cell of the failure-mode
// table.
type AdversarialRow struct {
	Pattern       adversary.Pattern
	BufferFactor  float64 // x BDP
	BufferPackets int     // per bottleneck link

	// Utilization is the bottleneck's measured utilization (the minimum
	// across core links for the parking lot — the through flows' view).
	Utilization float64
	// LossRate is the bottleneck queues' drop fraction of offered
	// packets over the measurement window.
	LossRate float64
	// MeanQueue and PeakQueue are the bottleneck queue's occupancy in
	// packets: the mean over the measurement window and the peak over
	// the whole run (worst link for the parking lot).
	MeanQueue float64
	PeakQueue int
	// SyncIndex is the aggregate-window synchronization index (see
	// SyncPoint); measured for the AIMD cohort, 0 for the others.
	SyncIndex float64
}

// AdversarialTable is the failure-mode dataset in (pattern, factor)
// grid order.
type AdversarialTable []AdversarialRow

// Table implements Result.
func (t AdversarialTable) Table() string {
	return tabulate(func(tw *tabwriter.Writer) {
		fmt.Fprintln(tw, "Pattern\tBuffer\tPkts\tUtil\tLoss\tMeanQ\tPeakQ\tSyncIndex")
		for _, r := range t {
			sync := "-"
			if r.SyncIndex != 0 {
				sync = fmt.Sprintf("%.2f", r.SyncIndex)
			}
			fmt.Fprintf(tw, "%v\t%.3fx\t%d\t%.2f%%\t%.3f%%\t%.1f\t%d\t%s\n",
				r.Pattern, r.BufferFactor, r.BufferPackets,
				100*r.Utilization, 100*r.LossRate, r.MeanQueue, r.PeakQueue, sync)
		}
	})
}

// WriteJSON implements Result.
func (t AdversarialTable) WriteJSON(w io.Writer) error { return writeJSON(w, t) }

// RunAdversarial executes the pattern x buffer grid through the sweep
// orchestrator (parallel, cached, checkpointed, resumable).
func RunAdversarial(cfg AdversarialConfig) AdversarialTable {
	cfg = cfg.withDefaults()
	rows := make(AdversarialTable, len(cfg.Patterns)*len(cfg.BufferFactors))
	force := cfg.Metrics != nil || cfg.Audit != nil
	runSweep(sweepSpec{
		name:        "adversarial",
		cfg:         cfg,
		cache:       cfg.Cache,
		resume:      cfg.Resume,
		ctx:         cfg.Ctx,
		parallelism: cfg.Parallelism,
		metrics:     cfg.Metrics,
	}, len(rows), func(i int) {
		pc := adversarialPointConfig{
			Seed:            cfg.Seed,
			Pattern:         cfg.Patterns[i/len(cfg.BufferFactors)],
			N:               cfg.N,
			BottleneckRate:  cfg.BottleneckRate,
			RTT:             cfg.RTT,
			SegmentSize:     cfg.SegmentSize,
			BufferFactor:    cfg.BufferFactors[i%len(cfg.BufferFactors)],
			PulsePeakFactor: cfg.PulsePeakFactor,
			PulsePeriod:     cfg.PulsePeriod,
			PulseDuty:       cfg.PulseDuty,
			Hops:            cfg.Hops,
			Warmup:          cfg.Warmup,
			Measure:         cfg.Measure,
		}
		rows[i] = memoRun(cfg.Cache, "adversarial", pc, force, func() AdversarialRow {
			return runAdversarialPoint(pc, cfg.Audit)
		})
	})
	return rows
}

// adversarialBuffer sizes the per-link buffer for one point.
func adversarialBuffer(pc adversarialPointConfig) (bdp, buffer int) {
	bdp = units.PacketsInFlight(pc.BottleneckRate, pc.RTT, pc.SegmentSize)
	buffer = int(pc.BufferFactor * float64(bdp))
	if buffer < 1 {
		buffer = 1
	}
	return bdp, buffer
}

func runAdversarialPoint(pc adversarialPointConfig, aud *audit.Auditor) AdversarialRow {
	_, buffer := adversarialBuffer(pc)
	return runAdversarialAt(pc, buffer, aud)
}

// runAdversarialAt dispatches one pattern run with the per-link buffer
// already fixed in packets.
func runAdversarialAt(pc adversarialPointConfig, buffer int, aud *audit.Auditor) AdversarialRow {
	switch pc.Pattern {
	case adversary.PatternPulse, adversary.PatternSyncAIMD:
		return runAdversarialDumbbell(pc, buffer, aud)
	case adversary.PatternParkingLot:
		return runAdversarialParkingLot(pc, buffer, aud)
	}
	panic(fmt.Sprintf("experiment: unhandled adversarial pattern %v", pc.Pattern))
}

// AdversaryScenario is the single-scenario counterpart of the
// RunAdversarial grid: one pattern against one explicit buffer, with
// the zero fields defaulting as in AdversarialConfig. It backs the
// bufsim CLI's -adversary flag, where the buffer arrives in packets
// rather than as a BDP multiple.
type AdversaryScenario struct {
	Seed    int64
	Pattern adversary.Pattern
	// N is the cohort size (see AdversarialConfig.N).
	N int

	BottleneckRate units.BitRate
	RTT            units.Duration
	SegmentSize    units.ByteSize
	// BufferPackets is the per-bottleneck buffer; 0 defaults to the
	// rule-of-thumb BDP.
	BufferPackets int

	PulsePeakFactor float64
	PulsePeriod     units.Duration
	PulseDuty       float64
	Hops            int

	Warmup, Measure units.Duration

	// Audit and Cache observe the run exactly as in LongLivedConfig.
	Audit *audit.Auditor
	Cache *runcache.Store
}

func (c AdversaryScenario) withDefaults() AdversaryScenario {
	base := AdversarialConfig{
		N: c.N, BottleneckRate: c.BottleneckRate, RTT: c.RTT,
		SegmentSize: c.SegmentSize, PulsePeakFactor: c.PulsePeakFactor,
		PulsePeriod: c.PulsePeriod, PulseDuty: c.PulseDuty, Hops: c.Hops,
		Warmup: c.Warmup, Measure: c.Measure,
	}.withDefaults()
	c.N, c.BottleneckRate, c.RTT = base.N, base.BottleneckRate, base.RTT
	c.SegmentSize, c.PulsePeakFactor = base.SegmentSize, base.PulsePeakFactor
	c.PulsePeriod, c.PulseDuty, c.Hops = base.PulsePeriod, base.PulseDuty, base.Hops
	c.Warmup, c.Measure = base.Warmup, base.Measure
	if c.BufferPackets < 1 {
		c.BufferPackets = units.PacketsInFlight(c.BottleneckRate, c.RTT, c.SegmentSize)
	}
	return c
}

// RunAdversaryScenario runs one adversarial pattern at one buffer and
// reports the same row the failure-mode table would hold for it.
func RunAdversaryScenario(cfg AdversaryScenario) AdversarialRow {
	cfg = cfg.withDefaults()
	force := cfg.Audit != nil
	return memoRun(cfg.Cache, "adversary-scenario", cfg, force, func() AdversarialRow {
		bdp := units.PacketsInFlight(cfg.BottleneckRate, cfg.RTT, cfg.SegmentSize)
		pc := adversarialPointConfig{
			Seed:            cfg.Seed,
			Pattern:         cfg.Pattern,
			N:               cfg.N,
			BottleneckRate:  cfg.BottleneckRate,
			RTT:             cfg.RTT,
			SegmentSize:     cfg.SegmentSize,
			BufferFactor:    float64(cfg.BufferPackets) / float64(bdp),
			PulsePeakFactor: cfg.PulsePeakFactor,
			PulsePeriod:     cfg.PulsePeriod,
			PulseDuty:       cfg.PulseDuty,
			Hops:            cfg.Hops,
			Warmup:          cfg.Warmup,
			Measure:         cfg.Measure,
		}
		return runAdversarialAt(pc, cfg.BufferPackets, cfg.Audit)
	})
}

// runAdversarialDumbbell measures the pulse or AIMD pattern on the
// standard dumbbell with a fixed RTT.
func runAdversarialDumbbell(pc adversarialPointConfig, buffer int, aud *audit.Auditor) AdversarialRow {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(pc.Seed)

	d := topology.NewDumbbell(topology.Config{
		Sched:           sched,
		BottleneckRate:  pc.BottleneckRate,
		BottleneckDelay: pc.RTT / 10,
		Buffer:          queue.PacketLimit(buffer),
		Stations:        pc.N,
		RTTMin:          pc.RTT,
		RTTMax:          pc.RTT,
		Auditor:         aud,
	})

	switch pc.Pattern {
	case adversary.PatternPulse:
		adversary.Pulse{
			Senders:    pc.N,
			PeakRate:   units.BitRate(pc.PulsePeakFactor * float64(pc.BottleneckRate)),
			Period:     pc.PulsePeriod,
			Duty:       pc.PulseDuty,
			PacketSize: pc.SegmentSize,
		}.Bind(d, rng.Fork()).Start()
	case adversary.PatternSyncAIMD:
		adversary.SyncAIMD{
			N:   pc.N,
			TCP: tcp.Config{SegmentSize: pc.SegmentSize},
		}.Bind(d, rng.Fork()).Start()
	}

	warmEnd := units.Epoch.Add(pc.Warmup)
	sched.Run(warmEnd)
	busy := d.Bottleneck.BusyTime()
	qs := d.Bottleneck.Queue().Stats()
	d.DropTail.ResetOccupancy(warmEnd)

	var sampler *windowSampler
	if pc.Pattern == adversary.PatternSyncAIMD {
		sampler = &windowSampler{sched: sched, d: d, every: 10 * units.Millisecond}
		sched.PostAfter(sampler.every, sampler, 0, nil)
	}
	measureEnd := warmEnd.Add(pc.Measure)
	sched.Run(measureEnd)

	row := AdversarialRow{
		Pattern:       pc.Pattern,
		BufferFactor:  pc.BufferFactor,
		BufferPackets: buffer,
		Utilization:   d.Bottleneck.Utilization(busy, warmEnd),
		MeanQueue:     d.DropTail.MeanOccupancy(measureEnd),
		PeakQueue:     d.DropTail.MaxOccupancy(),
	}
	now := d.Bottleneck.Queue().Stats()
	offered := (now.EnqueuedPackets - qs.EnqueuedPackets) + (now.DroppedPackets - qs.DroppedPackets)
	if offered > 0 {
		row.LossRate = float64(now.DroppedPackets-qs.DroppedPackets) / float64(offered)
	}
	if sampler != nil {
		mean, sd := fitNormal(sampler.samples)
		if mean > 0 {
			row.SyncIndex = (sd / mean) / (sawtoothCoV / math.Sqrt(float64(pc.N)))
		}
	}
	return row
}

// runAdversarialParkingLot measures the load-balanced multi-bottleneck
// pattern: N/2 through flows plus N/2 cross flows per hop, so every
// core link carries N flows and none is "the" bottleneck.
func runAdversarialParkingLot(pc adversarialPointConfig, buffer int, aud *audit.Auditor) AdversarialRow {
	sched := sim.NewScheduler()

	rates := make([]units.BitRate, pc.Hops)
	delays := make([]units.Duration, pc.Hops)
	buffers := make([]queue.Limit, pc.Hops)
	for i := 0; i < pc.Hops; i++ {
		rates[i] = pc.BottleneckRate
		// The chain's one-way core delay must fit inside RTT/2.
		delays[i] = pc.RTT / units.Duration(4*pc.Hops)
		buffers[i] = queue.PacketLimit(buffer)
	}
	p := topology.NewParkingLot(topology.ParkingLotConfig{
		Sched:   sched,
		Rates:   rates,
		Delays:  delays,
		Buffers: buffers,
		Auditor: aud,
	})
	through := pc.N / 2
	if through < 1 {
		through = 1
	}
	load := adversary.ParkingLotLoad{Through: through, PerHop: pc.N - through, RTT: pc.RTT}
	load.Build(sched, p, tcp.Config{SegmentSize: pc.SegmentSize})

	warmEnd := units.Epoch.Add(pc.Warmup)
	sched.Run(warmEnd)
	busy := make([]units.Duration, pc.Hops)
	qs := make([]queue.Stats, pc.Hops)
	for i, l := range p.Links {
		busy[i] = l.BusyTime()
		qs[i] = l.Queue().Stats()
		p.DropTails[i].ResetOccupancy(warmEnd)
	}
	measureEnd := warmEnd.Add(pc.Measure)
	sched.Run(measureEnd)

	row := AdversarialRow{
		Pattern:       pc.Pattern,
		BufferFactor:  pc.BufferFactor,
		BufferPackets: buffer,
		Utilization:   1,
	}
	var dropped, offered int64
	for i, l := range p.Links {
		if u := l.Utilization(busy[i], warmEnd); u < row.Utilization {
			row.Utilization = u
		}
		now := l.Queue().Stats()
		dropped += now.DroppedPackets - qs[i].DroppedPackets
		offered += (now.EnqueuedPackets - qs[i].EnqueuedPackets) + (now.DroppedPackets - qs[i].DroppedPackets)
		if m := p.DropTails[i].MeanOccupancy(measureEnd); m > row.MeanQueue {
			row.MeanQueue = m
		}
		if pk := p.DropTails[i].MaxOccupancy(); pk > row.PeakQueue {
			row.PeakQueue = pk
		}
	}
	if offered > 0 {
		row.LossRate = float64(dropped) / float64(offered)
	}
	return row
}

// ProbeLadderConfig drives the black-box probe validation: each queue
// discipline instantiated across a ladder of configured limits, probed
// with internal/probe, and compared against ground truth.
type ProbeLadderConfig struct {
	Seed int64

	// Rate is the probe's emulated service rate.
	Rate units.BitRate
	// Limits is the ladder of configured buffer sizes in packets.
	Limits []int
	// SegmentSize is the probe's standard packet.
	SegmentSize units.ByteSize

	// Cache, when non-nil, memoizes the table (see LongLivedConfig.Cache).
	Cache *runcache.Store
}

func (c ProbeLadderConfig) withDefaults() ProbeLadderConfig {
	if c.Rate == 0 {
		c.Rate = 10 * units.Mbps
	}
	if len(c.Limits) == 0 {
		c.Limits = []int{16, 32, 64, 128, 256}
	}
	if c.SegmentSize == 0 {
		c.SegmentSize = units.DefaultSegment
	}
	return c
}

// ProbeLadderRow is one (discipline, limit) probe outcome.
type ProbeLadderRow struct {
	Discipline probe.Policy // ground truth
	Limit      int          // configured, packets

	Estimated  int     // probe's capacity estimate, packets
	ErrPct     float64 // |Estimated - Limit| / Limit, percent
	Classified probe.Policy
	Mode       probe.LimitMode
	Correct    bool // classification matches ground truth
}

// ProbeLadderTable is the probe validation dataset.
type ProbeLadderTable []ProbeLadderRow

// Table implements Result.
func (t ProbeLadderTable) Table() string {
	return tabulate(func(tw *tabwriter.Writer) {
		fmt.Fprintln(tw, "Discipline\tLimit\tEstimated\tErr\tClassified\tMode\tCorrect")
		for _, r := range t {
			fmt.Fprintf(tw, "%v\t%d\t%d\t%.1f%%\t%v\t%v\t%v\n",
				r.Discipline, r.Limit, r.Estimated, r.ErrPct, r.Classified, r.Mode, r.Correct)
		}
	})
}

// WriteJSON implements Result.
func (t ProbeLadderTable) WriteJSON(w io.Writer) error { return writeJSON(w, t) }

// RunProbeLadder probes every discipline x limit cell. The table is one
// cache unit: probing is fast, so per-cell memoization would be all
// overhead.
func RunProbeLadder(cfg ProbeLadderConfig) ProbeLadderTable {
	cfg = cfg.withDefaults()
	return memoRun(cfg.Cache, "probe-ladder", cfg, false, func() ProbeLadderTable {
		return runProbeLadder(cfg)
	})
}

func runProbeLadder(cfg ProbeLadderConfig) ProbeLadderTable {
	meanPkt := units.TransmissionTime(cfg.SegmentSize, cfg.Rate)
	var out ProbeLadderTable
	for disc := probe.PolicyDropTail; disc <= probe.PolicyCoDel; disc++ {
		for _, limit := range cfg.Limits {
			var q probe.BlackBox
			switch disc {
			case probe.PolicyDropTail:
				q = queue.NewDropTail(queue.PacketLimit(limit))
			case probe.PolicyRED:
				rng := sim.NewRNG(cfg.Seed + int64(limit))
				q = queue.NewRED(queue.DefaultRED(limit, meanPkt, rng.Float64))
			case probe.PolicyCoDel:
				q = queue.NewCoDel(queue.CoDelConfig{Limit: queue.PacketLimit(limit)})
			}
			est, err := probe.Run(q, probe.Config{Rate: cfg.Rate, PacketSize: cfg.SegmentSize})
			if err != nil {
				panic(fmt.Sprintf("experiment: probe of %v limit %d: %v", disc, limit, err))
			}
			out = append(out, ProbeLadderRow{
				Discipline: disc,
				Limit:      limit,
				Estimated:  est.CapacityPackets,
				ErrPct:     100 * math.Abs(float64(est.CapacityPackets)-float64(limit)) / float64(limit),
				Classified: est.Policy,
				Mode:       est.Mode,
				Correct:    est.Policy == disc,
			})
		}
	}
	return out
}
