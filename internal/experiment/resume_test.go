package experiment

import (
	"context"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"bufsim/internal/runcache"
	"bufsim/internal/units"
)

// TestSweepCrashResume interrupts a cached sweep partway through, then
// reruns it with Resume and checks the merged table is bit-identical to
// an uninterrupted run — with the pre-crash points replayed from the
// cache (hits) and only the remainder simulated (misses).
func TestSweepCrashResume(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation runs")
	}
	base := UtilizationTableConfig{
		Seed: 3,
		Ns:   []int{3, 4}, Factors: []float64{0.5, 1}, // 4 cells
		BottleneckRate: 10 * units.Mbps,
		Warmup:         1 * units.Second, Measure: 2 * units.Second,
		Parallelism: 1, // deterministic interruption point
	}
	total := len(base.Ns) * len(base.Factors)
	want := RunUtilizationTable(base) // uninterrupted, uncached baseline

	dir := t.TempDir()
	store, err := runcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var puts atomic.Int64
	store.OnPut = func(string) {
		if puts.Add(1) == 2 {
			cancel()
			// Keep this worker parked so the dispatcher sees the
			// cancellation before the worker asks for another job;
			// otherwise the send and the Done case race in its select.
			time.Sleep(50 * time.Millisecond)
		}
	}
	crashed := base
	crashed.Cache, crashed.Ctx = store, ctx
	RunUtilizationTable(crashed) // partial table discarded, as a crash would
	done := int(store.Stats().Puts)
	if done < 2 || done >= total {
		t.Fatalf("interrupted run completed %d of %d points, want a strict partial >= 2", done, total)
	}

	// "Process restart": a fresh store over the same directory, counters
	// zeroed, resuming the checkpoint.
	store2, err := runcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	resumed := base
	resumed.Cache, resumed.Resume = store2, true
	got := RunUtilizationTable(resumed)

	if !reflect.DeepEqual(got, want) {
		t.Errorf("resumed table differs from uninterrupted run:\ngot  %+v\nwant %+v", got, want)
	}
	st := store2.Stats()
	if st.Hits != int64(done) {
		t.Errorf("resumed run replayed %d points from cache, want %d (each pre-crash point exactly once)", st.Hits, done)
	}
	if st.Misses != int64(total-done) {
		t.Errorf("resumed run simulated %d points, want %d (only the remainder)", st.Misses, total-done)
	}
}
