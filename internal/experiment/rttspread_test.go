package experiment

import (
	"testing"

	"bufsim/internal/units"
)

func TestRunRTTSpreadDesynchronizes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run ablation")
	}
	points := RunRTTSpread(RTTSpreadConfig{
		Seed:           1,
		N:              100,
		BottleneckRate: 40 * units.Mbps,
		Spreads:        []units.Duration{0, 5 * units.Millisecond, 20 * units.Millisecond},
		Warmup:         10 * units.Second,
		Measure:        25 * units.Second,
	})
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	homo, small := points[0], points[1]
	// §3's claim: identical RTTs synchronize (high index, depressed
	// utilization); a few ms of spread is enough to break it.
	if homo.SyncIndex < small.SyncIndex*1.5 {
		t.Errorf("homogeneous sync index %v not clearly above 5ms-spread %v",
			homo.SyncIndex, small.SyncIndex)
	}
	if small.Utilization < homo.Utilization {
		t.Errorf("5ms spread utilization %v below homogeneous %v",
			small.Utilization, homo.Utilization)
	}
	if small.Utilization < 0.97 {
		t.Errorf("desynchronized utilization = %v, want ~full", small.Utilization)
	}
}
