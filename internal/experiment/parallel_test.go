package experiment

import (
	"sync/atomic"
	"testing"

	"bufsim/internal/units"
)

func TestParallelForCoversAllIndices(t *testing.T) {
	old := Concurrency
	defer func() { Concurrency = old }()
	for _, workers := range []int{0, 1, 4, 100} {
		Concurrency = workers
		var hits [57]int32
		parallelFor(len(hits), func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
	// n = 0 must be a no-op.
	parallelFor(0, func(int) { t.Fatal("fn called for n=0") })
}

func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("paired sweeps")
	}
	old := Concurrency
	defer func() { Concurrency = old }()
	cfg := UtilizationTableConfig{
		Seed:           5,
		BottleneckRate: 10 * units.Mbps,
		Ns:             []int{20, 40},
		Factors:        []float64{1, 2},
		Warmup:         5 * units.Second,
		Measure:        8 * units.Second,
	}
	Concurrency = 1
	seq := RunUtilizationTable(cfg)
	Concurrency = 8
	par := RunUtilizationTable(cfg)
	if len(seq) != len(par) {
		t.Fatalf("row counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("row %d differs:\nseq %+v\npar %+v", i, seq[i], par[i])
		}
	}
}
