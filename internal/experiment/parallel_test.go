package experiment

import (
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"

	"bufsim/internal/metrics"
	"bufsim/internal/units"
)

func TestParallelForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 4, 100} {
		var hits [57]int32
		parallelFor(workers, len(hits), func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
	// n = 0 must be a no-op.
	parallelFor(4, 0, func(int) { t.Fatal("fn called for n=0") })
}

func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("paired sweeps")
	}
	cfg := UtilizationTableConfig{
		Seed:           5,
		BottleneckRate: 10 * units.Mbps,
		Ns:             []int{20, 40},
		Factors:        []float64{1, 2},
		Warmup:         5 * units.Second,
		Measure:        8 * units.Second,
	}
	cfg.Parallelism = 1
	seq := RunUtilizationTable(cfg)
	cfg.Parallelism = 8
	par := RunUtilizationTable(cfg)
	if len(seq) != len(par) {
		t.Fatalf("row counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("row %d differs:\nseq %+v\npar %+v", i, seq[i], par[i])
		}
	}
}

// stableMetricsJSON renders a registry snapshot with the wall-clock gauges
// removed — those measure host time, everything else must be
// deterministic.
func stableMetricsJSON(t *testing.T, reg *metrics.Registry) string {
	t.Helper()
	snap := reg.Snapshot()
	for name := range snap.Gauges {
		if strings.Contains(name, "wall_seconds") {
			delete(snap.Gauges, name)
		}
	}
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSweepDeterministicWithMetrics is the telemetry contract: attaching a
// registry must not change a single result bit, and the merged registry
// itself must be identical at any worker count.
func TestSweepDeterministicWithMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("paired sweeps")
	}
	cfg := UtilizationTableConfig{
		Seed:           5,
		BottleneckRate: 10 * units.Mbps,
		Ns:             []int{20, 40},
		Factors:        []float64{1, 2},
		Warmup:         5 * units.Second,
		Measure:        8 * units.Second,
	}
	cfg.Parallelism = 4
	plain := RunUtilizationTable(cfg)

	withMetrics := cfg
	withMetrics.Metrics = metrics.New()
	withMetrics.Parallelism = 1
	seq := RunUtilizationTable(withMetrics)
	seqJSON := stableMetricsJSON(t, withMetrics.Metrics)

	withMetrics.Metrics = metrics.New()
	withMetrics.Parallelism = 8
	par := RunUtilizationTable(withMetrics)
	parJSON := stableMetricsJSON(t, withMetrics.Metrics)

	if len(plain) != len(seq) || len(plain) != len(par) {
		t.Fatalf("row counts differ: plain=%d seq=%d par=%d", len(plain), len(seq), len(par))
	}
	for i := range plain {
		if plain[i] != seq[i] {
			t.Errorf("row %d: metrics changed the result:\noff %+v\non  %+v", i, plain[i], seq[i])
		}
		if seq[i] != par[i] {
			t.Errorf("row %d differs across worker counts:\nseq %+v\npar %+v", i, seq[i], par[i])
		}
	}
	if seqJSON != parJSON {
		t.Errorf("merged registry differs across worker counts:\nseq %s\npar %s", seqJSON, parJSON)
	}
	if !strings.Contains(seqJSON, "sim.events_processed") {
		t.Errorf("registry missing scheduler counters: %s", seqJSON)
	}
}

// TestLongLivedMetricsPopulated checks that one instrumented run publishes
// the scheduler, queue and TCP instruments it promises.
func TestLongLivedMetricsPopulated(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	reg := metrics.New()
	RunLongLived(LongLivedConfig{
		Seed:           7,
		N:              10,
		BottleneckRate: 10 * units.Mbps,
		Warmup:         3 * units.Second,
		Measure:        5 * units.Second,
		Metrics:        reg,
	})
	snap := reg.Snapshot()
	for _, name := range []string{
		"sim.events_processed",
		"bottleneck.enqueued_packets",
		"bottleneck.dequeued_packets",
		"tcp.segments_sent",
		"tcp.acks_received",
		"tcp.flows_tracked",
	} {
		if snap.Counters[name] <= 0 {
			t.Errorf("counter %s = %d, want > 0", name, snap.Counters[name])
		}
	}
	if snap.Gauges["sim.wall_seconds"] <= 0 {
		t.Errorf("sim.wall_seconds = %v, want > 0", snap.Gauges["sim.wall_seconds"])
	}
	if snap.Gauges["sim.time_seconds"] != 8 {
		t.Errorf("sim.time_seconds = %v, want 8", snap.Gauges["sim.time_seconds"])
	}
	if h := snap.Histograms["bottleneck.sojourn_ms"]; h.Count <= 0 {
		t.Errorf("sojourn histogram empty: %+v", h)
	}
	if h := snap.Histograms["tcp.cwnd_segments"]; h.Count <= 0 {
		t.Errorf("cwnd histogram empty: %+v", h)
	}
}
