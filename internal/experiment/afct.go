package experiment

import (
	"math"
	"time"

	"bufsim/internal/audit"
	"bufsim/internal/metrics"
	"bufsim/internal/queue"
	"bufsim/internal/runcache"
	"bufsim/internal/sim"
	"bufsim/internal/tcp"
	"bufsim/internal/topology"
	"bufsim/internal/units"
	"bufsim/internal/workload"
)

// AFCTComparisonConfig reproduces Fig. 9: average flow completion times of
// short flows competing with long-lived flows, under the rule-of-thumb
// buffer (RTT x C) versus the paper's buffer (RTT x C / sqrt(n)).
type AFCTComparisonConfig struct {
	Seed int64

	NLong           int
	ShortLoad       float64           // fraction of bottleneck offered by short flows
	Sizes           workload.SizeDist // short-flow length distribution
	BottleneckRate  units.BitRate
	BottleneckDelay units.Duration
	RTTMin, RTTMax  units.Duration
	SegmentSize     units.ByteSize
	MaxWindow       int // short flows' receiver cap

	// Variant, DelayedAck and Paced apply to every sender (long-lived and
	// short), as in LongLivedConfig.
	Variant    tcp.Variant
	DelayedAck bool
	Paced      bool
	// UseRED switches each regime's bottleneck to RED sized to that
	// regime's buffer.
	UseRED bool

	Warmup, Measure units.Duration

	// Metrics, when non-nil, receives telemetry for both regimes, merged
	// under the regime labels ("RTT*C", "RTT*C/sqrt(n)").
	Metrics *metrics.Registry

	// Audit, when non-nil, runs both regimes under the conservation-law
	// checker (see LongLivedConfig.Audit).
	Audit *audit.Auditor

	// Cache, when non-nil, memoizes each regime's run (see
	// LongLivedConfig.Cache).
	Cache *runcache.Store

	// MeanQueueIncludesWarmup reverts MeanQueue to averaging from t=0
	// instead of the measurement window (see LongLivedConfig).
	MeanQueueIncludesWarmup bool

	// Shards requests sharded kernel execution (see LongLivedConfig.Shards).
	// Mixed traffic is generator-driven, so the effective count is capped at
	// two (see sharedGeneratorShards). An observer: excluded from the cache
	// key, results bit-identical at every count.
	Shards int
}

func (c AFCTComparisonConfig) withDefaults() AFCTComparisonConfig {
	if c.NLong == 0 {
		c.NLong = 100
	}
	if c.ShortLoad == 0 {
		c.ShortLoad = 0.2
	}
	if c.Sizes == nil {
		c.Sizes = workload.GeometricSize(14)
	}
	if c.BottleneckRate == 0 {
		c.BottleneckRate = 50 * units.Mbps
	}
	if c.BottleneckDelay == 0 {
		c.BottleneckDelay = 10 * units.Millisecond
	}
	if c.RTTMin == 0 {
		c.RTTMin = 60 * units.Millisecond
	}
	if c.RTTMax == 0 {
		c.RTTMax = 140 * units.Millisecond
	}
	if c.SegmentSize == 0 {
		c.SegmentSize = units.DefaultSegment
	}
	if c.MaxWindow == 0 {
		c.MaxWindow = 43
	}
	if c.Warmup == 0 {
		c.Warmup = 20 * units.Second
	}
	if c.Measure == 0 {
		c.Measure = 40 * units.Second
	}
	return c
}

// AFCTOutcome is the result for one buffer sizing.
type AFCTOutcome struct {
	Label         string
	BufferPackets int
	AFCT          units.Duration
	Completed     int
	Censored      int
	Utilization   float64
	MeanQueue     float64 // packets
}

// MixedConfig is one mixed-traffic run: long-lived flows plus Poisson
// short flows over a single drop-tail bottleneck of explicit buffer size.
// It is the single-buffer building block RunAFCTComparison pairs up, and
// the scenario the public API exposes as SimulateMix.
type MixedConfig struct {
	Seed int64

	NLong           int
	ShortLoad       float64
	Sizes           workload.SizeDist
	BottleneckRate  units.BitRate
	BottleneckDelay units.Duration
	RTTMin, RTTMax  units.Duration
	SegmentSize     units.ByteSize
	MaxWindow       int
	BufferPackets   int

	// Variant, DelayedAck and Paced apply to every sender, as in
	// LongLivedConfig.
	Variant    tcp.Variant
	DelayedAck bool
	Paced      bool
	// UseRED switches the bottleneck to RED sized to BufferPackets.
	UseRED bool

	Warmup, Measure units.Duration

	// Metrics, when non-nil, receives the run's telemetry (see
	// LongLivedConfig.Metrics).
	Metrics *metrics.Registry

	// Audit, when non-nil, runs the scenario under the conservation-law
	// checker (see LongLivedConfig.Audit).
	Audit *audit.Auditor

	// Cache, when non-nil, memoizes the run (see LongLivedConfig.Cache).
	// The entry is shared with RunAFCTComparison points that lower to the
	// same scenario.
	Cache *runcache.Store

	// MeanQueueIncludesWarmup reverts MeanQueue to averaging from t=0
	// instead of the measurement window (see LongLivedConfig).
	MeanQueueIncludesWarmup bool

	// Shards requests sharded kernel execution (see
	// AFCTComparisonConfig.Shards).
	Shards int
}

// RunMixed executes one mixed-traffic scenario.
func RunMixed(cfg MixedConfig) AFCTOutcome {
	base := AFCTComparisonConfig{
		Seed:            cfg.Seed,
		NLong:           cfg.NLong,
		ShortLoad:       cfg.ShortLoad,
		Sizes:           cfg.Sizes,
		BottleneckRate:  cfg.BottleneckRate,
		BottleneckDelay: cfg.BottleneckDelay,
		RTTMin:          cfg.RTTMin,
		RTTMax:          cfg.RTTMax,
		SegmentSize:     cfg.SegmentSize,
		MaxWindow:       cfg.MaxWindow,
		Variant:         cfg.Variant,
		DelayedAck:      cfg.DelayedAck,
		Paced:           cfg.Paced,
		UseRED:          cfg.UseRED,
		Warmup:          cfg.Warmup,
		Measure:         cfg.Measure,
		Audit:           cfg.Audit,
		Cache:           cfg.Cache,
		Shards:          cfg.Shards,

		MeanQueueIncludesWarmup: cfg.MeanQueueIncludesWarmup,
	}.withDefaults()
	buffer := cfg.BufferPackets
	if buffer < 1 {
		buffer = 1
	}
	return runMixedOnce(base, "mixed", buffer, cfg.Metrics)
}

// AFCTComparisonResult pairs the two buffer regimes.
type AFCTComparisonResult struct {
	BDPPackets int
	RuleThumb  AFCTOutcome // B = RTT x C
	SqrtRule   AFCTOutcome // B = RTT x C / sqrt(n)
}

// TraceConfig replays a recorded flow trace (arrival time + size per
// flow) through a dumbbell — the bridge from synthetic workloads to real
// flow-level data.
type TraceConfig struct {
	Seed int64

	Flows          []workload.FlowSpec
	BottleneckRate units.BitRate
	RTTMin, RTTMax units.Duration
	SegmentSize    units.ByteSize
	MaxWindow      int
	BufferPackets  int // 0 = unlimited
	Stations       int

	// Variant, DelayedAck and Paced apply to every replayed sender, as in
	// LongLivedConfig.
	Variant    tcp.Variant
	DelayedAck bool
	Paced      bool
	// UseRED switches the bottleneck to RED sized to BufferPackets
	// (which must then be positive).
	UseRED bool

	// Drain bounds how long after the last arrival the simulation keeps
	// running for stragglers (default 60 s).
	Drain units.Duration

	// Metrics, when non-nil, receives the run's telemetry (see
	// LongLivedConfig.Metrics).
	Metrics *metrics.Registry

	// Audit, when non-nil, runs the replay under the conservation-law
	// checker (see LongLivedConfig.Audit).
	Audit *audit.Auditor

	// Cache, when non-nil, memoizes the replay's result (see
	// LongLivedConfig.Cache).
	Cache *runcache.Store

	// Shards requests sharded kernel execution (see
	// AFCTComparisonConfig.Shards).
	Shards int
}

// TraceResult summarizes a replayed trace.
type TraceResult struct {
	Completed   int
	Censored    int
	AFCT        units.Duration
	Utilization float64 // over [first arrival, last arrival]
}

// RunTrace replays the trace and reports completion statistics. With
// cfg.Cache set the result is memoized.
func RunTrace(cfg TraceConfig) TraceResult {
	if len(cfg.Flows) == 0 {
		return TraceResult{}
	}
	if cfg.SegmentSize == 0 {
		cfg.SegmentSize = units.DefaultSegment
	}
	if cfg.MaxWindow == 0 {
		cfg.MaxWindow = 43
	}
	if cfg.Stations == 0 {
		cfg.Stations = 50
	}
	if cfg.RTTMin == 0 {
		cfg.RTTMin = 60 * units.Millisecond
	}
	if cfg.RTTMax == 0 {
		cfg.RTTMax = 140 * units.Millisecond
	}
	if cfg.Drain == 0 {
		cfg.Drain = 60 * units.Second
	}
	return memoRun(cfg.Cache, "trace", cfg, cfg.Metrics != nil || cfg.Audit != nil, func() TraceResult {
		return runTrace(cfg)
	})
}

// runTrace is the uncached body of RunTrace; cfg has defaults applied.
func runTrace(cfg TraceConfig) TraceResult {
	limit := queue.Unlimited()
	if cfg.BufferPackets > 0 {
		limit = queue.PacketLimit(cfg.BufferPackets)
	}
	wallStart := time.Now()
	sched := sim.NewScheduler()
	rng := sim.NewRNG(cfg.Seed)
	topoCfg := topology.Config{
		Sched:           sched,
		RNG:             rng.Fork(),
		BottleneckRate:  cfg.BottleneckRate,
		BottleneckDelay: 10 * units.Millisecond,
		Buffer:          limit,
		Stations:        cfg.Stations,
		RTTMin:          cfg.RTTMin,
		RTTMax:          cfg.RTTMax,
		Auditor:         cfg.Audit,
		Shards:          sharedGeneratorShards(cfg.Shards),
	}
	if cfg.UseRED {
		topoCfg.NewQueue = redQueueHook(cfg.BufferPackets, cfg.SegmentSize, cfg.BottleneckRate, rng.Fork(), false)
	}
	d := topology.NewDumbbell(topoCfg)
	instrumentDumbbell(cfg.Metrics, sched, d)
	records := workload.Replay(d, cfg.Flows, tcp.Config{
		SegmentSize: cfg.SegmentSize,
		MaxWindow:   cfg.MaxWindow,
		Variant:     cfg.Variant,
		DelayedAck:  cfg.DelayedAck,
		Paced:       cfg.Paced,
	})
	last := units.Epoch.Add(cfg.Flows[len(cfg.Flows)-1].Start)
	first := units.Epoch.Add(cfg.Flows[0].Start)
	sched.Run(first)
	busy := d.Bottleneck.BusyTime()
	sched.Run(last.Add(cfg.Drain))

	res := TraceResult{}
	if last > first {
		res.Utilization = float64(d.Bottleneck.BusyTime()-busy) / float64(last.Sub(first)+cfg.Drain)
	}
	var sum units.Duration
	for _, r := range records {
		if r.Completed == units.Never {
			res.Censored++
			continue
		}
		res.Completed++
		sum += r.Duration()
	}
	if res.Completed > 0 {
		res.AFCT = sum / units.Duration(res.Completed)
	}
	observeWallTime(cfg.Metrics, wallStart, sched)
	return res
}

// runMixedOnce runs one mixed-traffic scenario at one buffer size, wiring
// telemetry into reg when non-nil. cfg must already have defaults applied.
// With cfg.Cache set the outcome is memoized, keyed on (scenario, label,
// buffer) — RunMixed and RunAFCTComparison share entries when they lower
// to the same point.
func runMixedOnce(cfg AFCTComparisonConfig, label string, buffer int, reg *metrics.Registry) AFCTOutcome {
	type mixedKey struct {
		Base   AFCTComparisonConfig
		Label  string
		Buffer int
	}
	key := mixedKey{Base: cfg, Label: label, Buffer: buffer}
	return memoRun(cfg.Cache, "mixed", key, reg != nil || cfg.Audit != nil, func() AFCTOutcome {
		return runMixedUncached(cfg, label, buffer, reg)
	})
}

// runMixedUncached is the uncached body of runMixedOnce.
func runMixedUncached(cfg AFCTComparisonConfig, label string, buffer int, reg *metrics.Registry) AFCTOutcome {
	wallStart := time.Now()
	sched := sim.NewScheduler()
	rng := sim.NewRNG(cfg.Seed)
	topoCfg := topology.Config{
		Sched:           sched,
		RNG:             rng.Fork(),
		BottleneckRate:  cfg.BottleneckRate,
		BottleneckDelay: cfg.BottleneckDelay,
		Buffer:          queue.PacketLimit(buffer),
		Stations:        cfg.NLong + 50,
		RTTMin:          cfg.RTTMin,
		RTTMax:          cfg.RTTMax,
		Auditor:         cfg.Audit,
		Shards:          sharedGeneratorShards(cfg.Shards),
	}
	if cfg.UseRED {
		topoCfg.NewQueue = redQueueHook(buffer, cfg.SegmentSize, cfg.BottleneckRate, rng.Fork(), false)
	}
	d := topology.NewDumbbell(topoCfg)
	instrumentDumbbell(reg, sched, d)
	workload.StartLongLived(d, cfg.NLong,
		tcp.Config{
			SegmentSize: cfg.SegmentSize,
			Variant:     cfg.Variant,
			DelayedAck:  cfg.DelayedAck,
			Paced:       cfg.Paced,
		}, rng.Fork(), cfg.Warmup/2)
	gen := workload.NewShortFlows(workload.ShortFlowConfig{
		Dumbbell: d,
		RNG:      rng.Fork(),
		Load:     cfg.ShortLoad,
		Sizes:    cfg.Sizes,
		TCP: tcp.Config{
			SegmentSize: cfg.SegmentSize,
			MaxWindow:   cfg.MaxWindow,
			Variant:     cfg.Variant,
			DelayedAck:  cfg.DelayedAck,
			Paced:       cfg.Paced,
		},
	})
	gen.Start()

	warmEnd := units.Epoch.Add(cfg.Warmup)
	sched.Run(warmEnd)
	if d.DropTail != nil && !cfg.MeanQueueIncludesWarmup {
		d.DropTail.ResetOccupancy(warmEnd)
	}
	busySnap := d.Bottleneck.BusyTime()
	measureEnd := warmEnd.Add(cfg.Measure)
	sched.Run(measureEnd)
	util := d.Bottleneck.Utilization(busySnap, warmEnd)
	meanQ := 0.0
	if d.DropTail != nil {
		meanQ = d.DropTail.MeanOccupancy(measureEnd)
	}
	gen.Stop()
	sched.Run(measureEnd.Add(60 * units.Second)) // drain
	observeWallTime(reg, wallStart, sched)
	afct, completed, censored := gen.AFCT(warmEnd, measureEnd)
	return AFCTOutcome{
		Label: label, BufferPackets: buffer, AFCT: afct,
		Completed: completed, Censored: censored,
		Utilization: util, MeanQueue: meanQ,
	}
}

// RunAFCTComparison executes the Fig. 9 experiment.
func RunAFCTComparison(cfg AFCTComparisonConfig) AFCTComparisonResult {
	cfg = cfg.withDefaults()
	meanRTT := (cfg.RTTMin + cfg.RTTMax) / 2
	bdp := units.PacketsInFlight(cfg.BottleneckRate, meanRTT, cfg.SegmentSize)
	small := SqrtRuleBuffer(float64(bdp), cfg.NLong)

	var thumbReg, sqrtReg *metrics.Registry
	if cfg.Metrics != nil {
		thumbReg, sqrtReg = metrics.New(), metrics.New()
	}
	res := AFCTComparisonResult{
		BDPPackets: bdp,
		RuleThumb:  runMixedOnce(cfg, "RTT*C", int(math.Max(1, float64(bdp))), thumbReg),
		SqrtRule:   runMixedOnce(cfg, "RTT*C/sqrt(n)", small, sqrtReg),
	}
	if cfg.Metrics != nil {
		cfg.Metrics.Merge(res.RuleThumb.Label, thumbReg)
		cfg.Metrics.Merge(res.SqrtRule.Label, sqrtReg)
	}
	return res
}
