package experiment

import (
	"context"
	"fmt"
	"math"

	"bufsim/internal/audit"
	"bufsim/internal/metrics"
	"bufsim/internal/model"
	"bufsim/internal/queue"
	"bufsim/internal/runcache"
	"bufsim/internal/sim"
	"bufsim/internal/tcp"
	"bufsim/internal/topology"
	"bufsim/internal/trace"
	"bufsim/internal/units"
	"bufsim/internal/workload"
)

// UtilizationTableConfig reproduces Fig. 10: the Cisco-GSR validation
// table. For each flow count and each multiple of RTTxC/sqrt(n) it reports
// the model's predicted utilization and the simulated utilization (the
// paper's third column, Exp., was the physical router we substitute with
// the same scenario in this simulator — see DESIGN.md).
type UtilizationTableConfig struct {
	Seed int64

	Ns      []int     // paper: 100, 200, 300, 400
	Factors []float64 // paper: 0.5, 1, 2, 3

	BottleneckRate  units.BitRate // paper: OC3
	BottleneckDelay units.Duration
	RTTMin, RTTMax  units.Duration
	SegmentSize     units.ByteSize

	UseRED bool // ablation: run the same table under RED

	// Parallelism bounds how many cells simulate at once; 0 means the
	// machine's parallelism. Results are identical at any setting.
	Parallelism int

	Warmup, Measure units.Duration

	// Metrics, when non-nil, receives per-cell telemetry: each (n, factor)
	// cell runs with its own child registry, merged in deterministic cell
	// order under an "n=...,factor=..." prefix once the sweep finishes.
	// Rows are byte-identical with Metrics nil or set, at any Parallelism.
	Metrics *metrics.Registry

	// Audit, when non-nil, runs every cell under the conservation-law
	// checker; the Auditor is shared across the sweep's workers (it is
	// concurrency-safe). See LongLivedConfig.Audit.
	Audit *audit.Auditor

	// Cache memoizes each cell's run; Resume continues an interrupted
	// sweep's checkpoint; Ctx cancels the sweep between cells. See
	// LongLivedConfig for semantics.
	Cache  *runcache.Store
	Resume bool
	Ctx    context.Context
}

func (c UtilizationTableConfig) withDefaults() UtilizationTableConfig {
	if len(c.Ns) == 0 {
		c.Ns = []int{100, 200, 300, 400}
	}
	if len(c.Factors) == 0 {
		c.Factors = []float64{0.5, 1, 2, 3}
	}
	if c.BottleneckRate == 0 {
		c.BottleneckRate = units.OC3
	}
	if c.BottleneckDelay == 0 {
		c.BottleneckDelay = 10 * units.Millisecond
	}
	if c.RTTMin == 0 {
		c.RTTMin = 60 * units.Millisecond
	}
	if c.RTTMax == 0 {
		c.RTTMax = 100 * units.Millisecond
	}
	if c.SegmentSize == 0 {
		c.SegmentSize = units.DefaultSegment
	}
	if c.Warmup == 0 {
		c.Warmup = 20 * units.Second
	}
	if c.Measure == 0 {
		c.Measure = 40 * units.Second
	}
	return c
}

// UtilizationRow is one Fig. 10 row.
type UtilizationRow struct {
	N       int
	Factor  float64 // multiple of RTTxC/sqrt(n)
	Packets int     // buffer in packets
	RAMMbit float64 // buffer size in megabits (paper's "RAM" column)

	ModelUtil float64 // Gaussian-model prediction
	SimUtil   float64 // measured in simulation
	LossRate  float64
}

// RunUtilizationTable executes the Fig. 10 table.
func RunUtilizationTable(cfg UtilizationTableConfig) UtilizationTable {
	cfg = cfg.withDefaults()
	meanRTT := (cfg.RTTMin + cfg.RTTMax) / 2
	bdp := units.PacketsInFlight(cfg.BottleneckRate, meanRTT, cfg.SegmentSize)

	type cell struct{ n, factorIdx int }
	var cells []cell
	for i := range cfg.Ns {
		for j := range cfg.Factors {
			cells = append(cells, cell{i, j})
		}
	}
	rows := make([]UtilizationRow, len(cells))
	var cellRegs []*metrics.Registry
	if cfg.Metrics != nil {
		cellRegs = make([]*metrics.Registry, len(cells))
		for k := range cellRegs {
			cellRegs[k] = metrics.New()
		}
	}
	runSweep(sweepSpec{
		name:        "utilization-table",
		cfg:         cfg,
		cache:       cfg.Cache,
		resume:      cfg.Resume,
		ctx:         cfg.Ctx,
		parallelism: cfg.Parallelism,
		metrics:     cfg.Metrics,
	}, len(cells), func(k int) {
		n := cfg.Ns[cells[k].n]
		factor := cfg.Factors[cells[k].factorIdx]
		gauss := model.LongFlowGaussian{N: n, BDP: float64(bdp)}
		sqrtRule := float64(bdp) / math.Sqrt(float64(n))
		buffer := int(math.Max(1, math.Round(factor*sqrtRule)))
		run := LongLivedConfig{
			Seed:            cfg.Seed + int64(n)*100 + int64(factor*10),
			N:               n,
			BottleneckRate:  cfg.BottleneckRate,
			BottleneckDelay: cfg.BottleneckDelay,
			RTTMin:          cfg.RTTMin,
			RTTMax:          cfg.RTTMax,
			SegmentSize:     cfg.SegmentSize,
			BufferPackets:   buffer,
			UseRED:          cfg.UseRED,
			Warmup:          cfg.Warmup,
			Measure:         cfg.Measure,
			Audit:           cfg.Audit,
			Cache:           cfg.Cache,
		}
		if cellRegs != nil {
			run.Metrics = cellRegs[k]
		}
		r := RunLongLived(run)
		rows[k] = UtilizationRow{
			N: n, Factor: factor, Packets: buffer,
			RAMMbit:   float64(buffer) * float64(cfg.SegmentSize.Bits()) / 1e6,
			ModelUtil: gauss.Utilization(float64(buffer)),
			SimUtil:   r.Utilization,
			LossRate:  r.LossRate,
		}
	})
	for k := range cellRegs {
		if rows[k].N == 0 {
			continue // cell never ran (cancelled sweep)
		}
		cfg.Metrics.Merge(fmt.Sprintf("n=%d,factor=%g", rows[k].N, rows[k].Factor), cellRegs[k])
	}
	return rows
}

// ProductionConfig reproduces Fig. 11: the Stanford dormitory experiment.
// The paper throttled a campus router to 20 Mb/s serving an estimated 400
// concurrent flows of live traffic and measured utilization at four buffer
// sizes. We substitute a synthetic production mix: a base of long-lived
// flows plus Poisson arrivals of bounded-Pareto (heavy-tailed) short
// flows.
type ProductionConfig struct {
	Seed int64

	BottleneckRate  units.BitRate
	BottleneckDelay units.Duration
	RTTMin, RTTMax  units.Duration
	SegmentSize     units.ByteSize

	NLong     int     // persistent flows (bulk transfers)
	ShortLoad float64 // offered load from the heavy-tailed short flows
	Pareto    workload.ParetoSize

	Buffers []int // packets; paper: 500, 85, 65, 46

	Warmup, Measure units.Duration

	// Audit, when non-nil, runs every buffer point under the
	// conservation-law checker (see LongLivedConfig.Audit).
	Audit *audit.Auditor

	// Parallelism bounds how many buffer points simulate at once; 0
	// means the machine's parallelism. Points are independent
	// simulations, so rows are identical at any setting.
	Parallelism int

	// Cache memoizes each buffer point; Resume continues an interrupted
	// sweep's checkpoint; Ctx cancels between points. See
	// LongLivedConfig for semantics.
	Cache  *runcache.Store
	Resume bool
	Ctx    context.Context
}

func (c ProductionConfig) withDefaults() ProductionConfig {
	if c.BottleneckRate == 0 {
		c.BottleneckRate = 20 * units.Mbps
	}
	if c.BottleneckDelay == 0 {
		c.BottleneckDelay = 10 * units.Millisecond
	}
	if c.RTTMin == 0 {
		c.RTTMin = 40 * units.Millisecond
	}
	if c.RTTMax == 0 {
		c.RTTMax = 250 * units.Millisecond
	}
	if c.SegmentSize == 0 {
		c.SegmentSize = units.DefaultSegment
	}
	if c.NLong == 0 {
		c.NLong = 60
	}
	if c.ShortLoad == 0 {
		c.ShortLoad = 0.25
	}
	if c.Pareto == (workload.ParetoSize{}) {
		c.Pareto = workload.ParetoSize{Shape: 1.2, Min: 2, Max: 5000}
	}
	if len(c.Buffers) == 0 {
		c.Buffers = []int{46, 65, 85, 500}
	}
	if c.Warmup == 0 {
		c.Warmup = 20 * units.Second
	}
	if c.Measure == 0 {
		c.Measure = 60 * units.Second
	}
	return c
}

// ProductionRow is one Fig. 11 row.
type ProductionRow struct {
	Buffer          int
	SqrtRuleRatio   float64 // buffer / (RTT x C / sqrt(n_effective))
	Utilization     float64
	ModelUtil       float64
	MeanConcurrent  float64 // measured mean concurrent flows (the paper's "~400")
	AFCT            units.Duration
	ShortsCompleted int
}

// RunProduction executes the Fig. 11 experiment.
func RunProduction(cfg ProductionConfig) ProductionTable {
	cfg = cfg.withDefaults()
	meanRTT := (cfg.RTTMin + cfg.RTTMax) / 2
	bdp := float64(units.PacketsInFlight(cfg.BottleneckRate, meanRTT, cfg.SegmentSize))

	rows := make(ProductionTable, len(cfg.Buffers))
	runSweep(sweepSpec{
		name:        "production",
		cfg:         cfg,
		cache:       cfg.Cache,
		resume:      cfg.Resume,
		ctx:         cfg.Ctx,
		parallelism: cfg.Parallelism,
	}, len(cfg.Buffers), func(bi int) {
		buffer := cfg.Buffers[bi]
		// The per-point key is the config narrowed to this one buffer,
		// so the same point is shared across different Buffers lists.
		cfgKey := cfg
		cfgKey.Buffers = []int{buffer}
		rows[bi] = memoRun(cfg.Cache, "production", cfgKey, cfg.Audit != nil, func() ProductionRow {
			return runProductionPoint(cfg, buffer, bdp)
		})
	})
	return rows
}

// runProductionPoint simulates one Fig. 11 buffer point.
func runProductionPoint(cfg ProductionConfig, buffer int, bdp float64) ProductionRow {
	{
		sched := sim.NewScheduler()
		rng := sim.NewRNG(cfg.Seed)
		d := topology.NewDumbbell(topology.Config{
			Sched:           sched,
			RNG:             rng.Fork(),
			BottleneckRate:  cfg.BottleneckRate,
			BottleneckDelay: cfg.BottleneckDelay,
			Buffer:          queue.PacketLimit(buffer),
			Stations:        cfg.NLong + 100,
			RTTMin:          cfg.RTTMin,
			RTTMax:          cfg.RTTMax,
			Auditor:         cfg.Audit,
		})
		workload.StartLongLived(d, cfg.NLong,
			tcp.Config{SegmentSize: cfg.SegmentSize}, rng.Fork(), cfg.Warmup/2)
		gen := workload.NewShortFlows(workload.ShortFlowConfig{
			Dumbbell: d,
			RNG:      rng.Fork(),
			Load:     cfg.ShortLoad,
			Sizes:    cfg.Pareto,
			TCP:      tcp.Config{SegmentSize: cfg.SegmentSize, MaxWindow: 43},
		})
		gen.Start()

		concurrent := trace.NewSampler(sched, "concurrent", 100*units.Millisecond,
			func() float64 { return float64(cfg.NLong + gen.Active()) })

		warmEnd := units.Epoch.Add(cfg.Warmup)
		sched.Run(warmEnd)
		busySnap := d.Bottleneck.BusyTime()
		measureEnd := warmEnd.Add(cfg.Measure)
		sched.Run(measureEnd)
		util := d.Bottleneck.Utilization(busySnap, warmEnd)
		gen.Stop()
		sched.Run(measureEnd.Add(30 * units.Second))
		afct, completed, _ := gen.AFCT(warmEnd, measureEnd)

		series := concurrent.Series().Window(cfg.Warmup.Seconds(), measureEnd.Sub(units.Epoch).Seconds())
		meanConc := 0.0
		for _, v := range series.Values {
			meanConc += v
		}
		if series.Len() > 0 {
			meanConc /= float64(series.Len())
		}

		effN := int(math.Max(1, meanConc))
		gauss := model.LongFlowGaussian{N: effN, BDP: bdp}
		return ProductionRow{
			Buffer:          buffer,
			SqrtRuleRatio:   float64(buffer) / (bdp / math.Sqrt(float64(effN))),
			Utilization:     util,
			ModelUtil:       gauss.Utilization(float64(buffer)),
			MeanConcurrent:  meanConc,
			AFCT:            afct,
			ShortsCompleted: completed,
		}
	}
}
