package experiment

import (
	"reflect"
	"testing"

	"bufsim/internal/audit"
	"bufsim/internal/runcache"
	"bufsim/internal/tcp"
	"bufsim/internal/units"
	"bufsim/internal/workload"
	"bufsim/internal/workload/profile"
)

// TestProfileStationaryMatchesShortFlow is the redesign's acceptance
// gate: routing the legacy stationary workload through the unified
// RunProfile back end must reproduce ShortFlowAFCT's numbers exactly —
// same seed, same schedule, same AFCT to the nanosecond. The profile
// runner's extra observers (the n(t) sampler, the warmup-boundary
// snapshot) must not perturb a single packet.
func TestProfileStationaryMatchesShortFlow(t *testing.T) {
	short := ShortFlowRunConfig{
		Seed: 5, Rate: 20 * units.Mbps, Load: 0.7,
		FlowLength: 14, BufferPackets: 50,
		Warmup: 4 * units.Second, Measure: 10 * units.Second,
	}
	afct, completed, censored := ShortFlowAFCT(short)

	short = short.withDefaults()
	res := RunProfile(ProfileRunConfig{
		Seed: short.Seed, Rate: short.Rate,
		MeanRTT: short.MeanRTT, SegmentSize: short.SegmentSize,
		BufferPackets: short.BufferPackets, Stations: short.Stations,
		Source: workload.PoissonSource{
			Load:  short.Load,
			Sizes: workload.FixedSize(short.FlowLength),
			TCP:   tcp.Config{SegmentSize: short.SegmentSize, MaxWindow: short.MaxWindow},
		},
		Warmup: short.Warmup, Measure: short.Measure,
	})

	if res.AFCT != afct || res.Completed != completed || res.Censored != censored {
		t.Fatalf("RunProfile (afct=%v completed=%d censored=%d) != ShortFlowAFCT (afct=%v completed=%d censored=%d)",
			res.AFCT, res.Completed, res.Censored, afct, completed, censored)
	}
	if res.Generated == 0 || res.Utilization <= 0 {
		t.Errorf("profile extras missing: generated=%d util=%v", res.Generated, res.Utilization)
	}

	// A constant profile at the load-equivalent arrival rate goes
	// through the thinning engine instead of the closed-form sampler
	// and must still land on the identical schedule.
	sizes := workload.FixedSize(short.FlowLength)
	lambda := workload.ArrivalRateForLoad(short.Load, short.Rate, short.SegmentSize, sizes)
	res2 := RunProfile(ProfileRunConfig{
		Seed: short.Seed, Rate: short.Rate,
		MeanRTT: short.MeanRTT, SegmentSize: short.SegmentSize,
		BufferPackets: short.BufferPackets, Stations: short.Stations,
		Source: profile.Source{
			Profile: profile.Profile{
				Name:    "stationary",
				Arrival: profile.Curve{{T: 0, V: lambda}, {T: 60 * units.Second, V: lambda}},
			},
			Sizes: sizes,
			TCP:   tcp.Config{SegmentSize: short.SegmentSize, MaxWindow: short.MaxWindow},
		},
		Warmup: short.Warmup, Measure: short.Measure,
	})
	if res2 != res {
		t.Fatalf("constant profile result %+v != Poisson source result %+v", res2, res)
	}
}

// quickFlashCrowd is a scaled-down surge for tests: short windows, a
// compressed profile, two buffer points.
func quickFlashCrowd(seed int64) FlashCrowdConfig {
	prof, err := profile.FlashCrowd.Profile().Compress(4)
	if err != nil {
		panic(err)
	}
	return FlashCrowdConfig{
		Seed:           seed,
		BottleneckRate: 20 * units.Mbps,
		Stations:       20,
		Profile:        prof,
		PeakFlows:      8,
		Buffers:        []int{6, 250},
		Warmup:         2 * units.Second,
		Drain:          20 * units.Second,
	}
}

func TestFlashCrowdSurgeVisible(t *testing.T) {
	rows := RunFlashCrowd(quickFlashCrowd(3))
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Completed == 0 {
			t.Errorf("buffer %d completed no flows", r.Buffer)
		}
		// The population spike (8 long flows at peak) must show in the
		// sampled n(t): the peak clearly exceeds the mean.
		if r.PeakActive < 8 {
			t.Errorf("buffer %d peak n(t) = %v, want >= the 8-flow population spike", r.Buffer, r.PeakActive)
		}
		if r.PeakActive <= r.MeanActive {
			t.Errorf("buffer %d: peak n(t) %v not above mean %v — no surge visible", r.Buffer, r.PeakActive, r.MeanActive)
		}
		if r.Utilization <= 0 || r.Utilization > 1 {
			t.Errorf("buffer %d utilization = %v", r.Buffer, r.Utilization)
		}
	}
	// The sweep's point: a small buffer rides out the surge worse than
	// a BDP-scale one.
	if rows[0].LossRate <= rows[1].LossRate {
		t.Errorf("loss did not fall with buffer: %v (%d pkts) vs %v (%d pkts)",
			rows[0].LossRate, rows[0].Buffer, rows[1].LossRate, rows[1].Buffer)
	}
	if rows[0].BufferBDP >= rows[1].BufferBDP {
		t.Errorf("BufferBDP not increasing: %v, %v", rows[0].BufferBDP, rows[1].BufferBDP)
	}
}

// TestFlashCrowdParallelismInvariance: every point owns its scheduler
// and RNG, so worker count must not change a bit of the table.
func TestFlashCrowdParallelismInvariance(t *testing.T) {
	a := quickFlashCrowd(7)
	a.Parallelism = 1
	b := quickFlashCrowd(7)
	b.Parallelism = 4
	ra, rb := RunFlashCrowd(a), RunFlashCrowd(b)
	if !reflect.DeepEqual(ra, rb) {
		t.Fatalf("parallelism changed results:\n1 worker: %+v\n4 workers: %+v", ra, rb)
	}
}

// TestFlashCrowdCachedAndAudited: the sweep memoizes per point (source
// included in the key), replays warm bit-identically, and runs clean
// under the conservation-law auditor.
func TestFlashCrowdCachedAndAudited(t *testing.T) {
	store, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickFlashCrowd(11)
	cfg.Cache = store
	cfg.Audit = audit.New()
	cold := RunFlashCrowd(cfg)
	if cfg.Audit.Count() != 0 {
		t.Fatalf("audit violations: %v", cfg.Audit.Violations())
	}
	if store.Stats().Puts == 0 {
		t.Fatal("sweep stored nothing")
	}

	warm := quickFlashCrowd(11)
	warm.Cache = store
	before := store.Stats()
	if got := RunFlashCrowd(warm); !reflect.DeepEqual(got, cold) {
		t.Fatalf("warm replay differs:\ncold: %+v\nwarm: %+v", cold, got)
	}
	if store.Stats().Hits == before.Hits {
		t.Error("warm sweep did not hit the cache")
	}
}
