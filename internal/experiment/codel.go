package experiment

import (
	"context"
	"math"

	"bufsim/internal/audit"
	"bufsim/internal/runcache"
	"bufsim/internal/units"
)

// CoDelConfig drives the CoDel extension: the 2012 answer to the
// buffer-sizing question is to manage *delay* instead of capacity. We
// compare three designs on one scenario:
//
//   - drop-tail sized by the paper's sqrt(n) rule,
//   - drop-tail at the full rule of thumb (the overbuffered status quo),
//   - CoDel with the rule-of-thumb's physical capacity but a 5 ms sojourn
//     target.
//
// If the paper's argument holds, the first and third should both deliver
// high utilization at low delay, while the second pays the delay cost.
type CoDelConfig struct {
	Seed int64

	N              int
	BottleneckRate units.BitRate
	RTTMin, RTTMax units.Duration
	SegmentSize    units.ByteSize

	Warmup, Measure units.Duration

	// Parallelism bounds how many designs simulate at once; 0 means the
	// machine's parallelism.
	Parallelism int

	// Audit, when non-nil, runs every design under the conservation-law
	// checker; the Auditor is shared across the sweep's workers (it is
	// concurrency-safe). See LongLivedConfig.Audit.
	Audit *audit.Auditor

	// Cache memoizes each design's run; Resume continues an interrupted
	// sweep's checkpoint; Ctx cancels between designs. See
	// LongLivedConfig for semantics.
	Cache  *runcache.Store
	Resume bool
	Ctx    context.Context
}

func (c CoDelConfig) withDefaults() CoDelConfig {
	if c.N == 0 {
		c.N = 200
	}
	if c.BottleneckRate == 0 {
		c.BottleneckRate = units.OC3
	}
	return c
}

// CoDelRow is one design's outcome.
type CoDelRow struct {
	Label         string
	BufferPackets int
	Utilization   float64
	QueueDelayP99 units.Duration
	LossRate      float64
}

// RunCoDel executes the comparison. Rows run in parallel.
func RunCoDel(cfg CoDelConfig) CoDelTable {
	cfg = cfg.withDefaults()
	base := LongLivedConfig{
		Seed:           cfg.Seed,
		N:              cfg.N,
		BottleneckRate: cfg.BottleneckRate,
		RTTMin:         cfg.RTTMin,
		RTTMax:         cfg.RTTMax,
		SegmentSize:    cfg.SegmentSize,
		Warmup:         cfg.Warmup,
		Measure:        cfg.Measure,
		Audit:          cfg.Audit,
		Cache:          cfg.Cache,
	}
	base = base.withDefaults()
	meanRTT := (base.RTTMin + base.RTTMax) / 2
	bdp := units.PacketsInFlight(base.BottleneckRate, meanRTT, base.SegmentSize)
	sqrtRule := SqrtRuleBuffer(float64(bdp), cfg.N)

	type design struct {
		label  string
		buffer int
		codel  bool
	}
	designs := []design{
		{"droptail sqrt(n)", sqrtRule, false},
		{"droptail RTTxC", int(math.Max(1, float64(bdp))), false},
		{"codel (RTTxC capacity)", int(math.Max(1, float64(bdp))), true},
	}
	rows := make([]CoDelRow, len(designs))
	runSweep(sweepSpec{
		name:        "codel",
		cfg:         cfg,
		cache:       cfg.Cache,
		resume:      cfg.Resume,
		ctx:         cfg.Ctx,
		parallelism: cfg.Parallelism,
	}, len(designs), func(i int) {
		run := base
		run.BufferPackets = designs[i].buffer
		run.UseCoDel = designs[i].codel
		r := RunLongLived(run)
		rows[i] = CoDelRow{
			Label:         designs[i].label,
			BufferPackets: designs[i].buffer,
			Utilization:   r.Utilization,
			QueueDelayP99: r.QueueDelayP99,
			LossRate:      r.LossRate,
		}
	})
	return rows
}
