package experiment

import (
	"testing"

	"bufsim/internal/units"
)

func TestRunMultiHopSqrtRuleHoldsPerLink(t *testing.T) {
	if testing.Short() {
		t.Skip("two-bottleneck simulation")
	}
	res := RunMultiHop(MultiHopConfig{
		Seed:      1,
		LinkRate:  20 * units.Mbps,
		NPerGroup: 40,
		Warmup:    10 * units.Second,
		Measure:   20 * units.Second,
	})
	if res.FlowsPerLink != 80 {
		t.Fatalf("FlowsPerLink = %d", res.FlowsPerLink)
	}
	// The extension's claim: per-link sqrt(n) sizing keeps both
	// bottlenecks near-full even though a third of the flows cross two
	// congestion points.
	for i, u := range res.Util {
		if u < 0.93 {
			t.Errorf("link %d utilization = %v, want >= 0.93", i, u)
		}
	}
	// Crossing flows are half of each link's population; they should get
	// a substantial (if slightly biased-down) share of hop 1.
	if res.CrossingShare < 0.25 || res.CrossingShare > 0.6 {
		t.Errorf("crossing share = %v, want ~0.4-0.5", res.CrossingShare)
	}
	for i, l := range res.LossRate {
		if l <= 0 {
			t.Errorf("link %d shows no loss despite saturation", i)
		}
	}
}

func TestRunMultiHopStarvedByTinyBuffers(t *testing.T) {
	if testing.Short() {
		t.Skip("two-bottleneck simulation")
	}
	small := RunMultiHop(MultiHopConfig{
		Seed: 1, LinkRate: 20 * units.Mbps, NPerGroup: 40,
		BufferFactor: 0.15,
		Warmup:       10 * units.Second, Measure: 15 * units.Second,
	})
	full := RunMultiHop(MultiHopConfig{
		Seed: 1, LinkRate: 20 * units.Mbps, NPerGroup: 40,
		BufferFactor: 2,
		Warmup:       10 * units.Second, Measure: 15 * units.Second,
	})
	if small.Util[0] >= full.Util[0] {
		t.Errorf("0.15x buffers (%v) should underperform 2x (%v)",
			small.Util[0], full.Util[0])
	}
}
