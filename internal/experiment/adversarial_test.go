package experiment

import (
	"reflect"
	"testing"

	"bufsim/internal/adversary"
	"bufsim/internal/audit"
	"bufsim/internal/probe"
	"bufsim/internal/runcache"
	"bufsim/internal/units"
)

// quickAdversarial is a fast grid covering every pattern at a small and
// a full-BDP buffer.
func quickAdversarial() AdversarialConfig {
	return AdversarialConfig{
		Seed:           11,
		N:              8,
		BottleneckRate: 20 * units.Mbps,
		RTT:            80 * units.Millisecond,
		BufferFactors:  []float64{0.1, 1.0},
		Hops:           2,
		Warmup:         2 * units.Second,
		Measure:        4 * units.Second,
	}
}

func TestRunAdversarialFailureModes(t *testing.T) {
	table := RunAdversarial(quickAdversarial())
	if len(table) != 3*2 {
		t.Fatalf("table has %d rows, want 6", len(table))
	}
	byPattern := map[adversary.Pattern][]AdversarialRow{}
	for _, r := range table {
		if r.Utilization < 0 || r.Utilization > 1.000001 {
			t.Errorf("%v@%.2fx: utilization %v out of range", r.Pattern, r.BufferFactor, r.Utilization)
		}
		if r.BufferPackets < 1 || r.PeakQueue > r.BufferPackets {
			t.Errorf("%v@%.2fx: peak queue %d exceeds buffer %d", r.Pattern, r.BufferFactor, r.PeakQueue, r.BufferPackets)
		}
		byPattern[r.Pattern] = append(byPattern[r.Pattern], r)
	}

	// Pulse: the synchronized bursts overload any buffer in the ladder
	// (the burst excess exceeds even a full BDP), and a bigger buffer
	// absorbs more of each burst.
	pulse := byPattern[adversary.PatternPulse]
	if pulse[0].LossRate <= pulse[1].LossRate {
		t.Errorf("pulse loss %.4f at 0.1x should exceed %.4f at 1.0x", pulse[0].LossRate, pulse[1].LossRate)
	}
	if pulse[1].LossRate == 0 {
		t.Errorf("pulse at a full BDP lost nothing; bursts should defeat the rule-of-thumb buffer")
	}

	// SyncAIMD: the cohort stays synchronized — the aggregate window
	// swings well above the desynchronized CLT prediction.
	for _, r := range byPattern[adversary.PatternSyncAIMD] {
		if r.SyncIndex < 1.2 {
			t.Errorf("aimdsync@%.2fx: sync index %.2f; cohort should stay synchronized", r.BufferFactor, r.SyncIndex)
		}
	}

	// The parking lot reports the worst link; with every link equally
	// loaded the through flows still moved traffic on all hops.
	for _, r := range byPattern[adversary.PatternParkingLot] {
		if r.SyncIndex != 0 {
			t.Errorf("parkinglot@%.2fx: unexpected sync index %v", r.BufferFactor, r.SyncIndex)
		}
		if r.Utilization == 0 {
			t.Errorf("parkinglot@%.2fx: zero utilization", r.BufferFactor)
		}
	}
}

func TestRunAdversarialParallelismInvariance(t *testing.T) {
	serial := quickAdversarial()
	serial.Parallelism = 1
	parallel := quickAdversarial()
	parallel.Parallelism = 4
	a, b := RunAdversarial(serial), RunAdversarial(parallel)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("worker count changed the table:\n%v\n%v", a, b)
	}
}

func TestRunAdversarialAuditedAndCached(t *testing.T) {
	cache, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickAdversarial()
	cfg.Audit = audit.New()
	cfg.Cache = cache
	audited := RunAdversarial(cfg)
	if err := cfg.Audit.Err(); err != nil {
		t.Fatalf("adversarial sweep under audit: %v", err)
	}

	// The audited pass warmed the cache; a plain run must replay it
	// bit-identically, and auditing must not have perturbed the rows.
	plain := quickAdversarial()
	plain.Cache = cache
	before := cache.Stats()
	cached := RunAdversarial(plain)
	if hits := cache.Stats().Hits - before.Hits; hits < int64(len(cached)) {
		t.Errorf("cached rerun hit %d times, want >= %d", hits, len(cached))
	}
	if !reflect.DeepEqual(audited, cached) {
		t.Errorf("audit or caching perturbed the table:\n%v\n%v", audited, cached)
	}
}

func TestRunProbeLadder(t *testing.T) {
	table := RunProbeLadder(ProbeLadderConfig{Seed: 3, Limits: []int{16, 64, 256}})
	if len(table) != 3*3 {
		t.Fatalf("table has %d rows, want 9", len(table))
	}
	for _, r := range table {
		if !r.Correct {
			t.Errorf("%v limit %d classified as %v", r.Discipline, r.Limit, r.Classified)
		}
		if r.ErrPct > 15 {
			t.Errorf("%v limit %d estimated %d (%.1f%% off, want <= 15%%)", r.Discipline, r.Limit, r.Estimated, r.ErrPct)
		}
		if r.Mode != probe.PacketLimited {
			t.Errorf("%v limit %d mode %v", r.Discipline, r.Limit, r.Mode)
		}
	}
}

func TestAdversarialDefaults(t *testing.T) {
	cfg := AdversarialConfig{}.withDefaults()
	if len(cfg.Patterns) != len(adversary.PatternNames()) {
		t.Errorf("default patterns = %v", cfg.Patterns)
	}
	if cfg.N == 0 || cfg.BottleneckRate == 0 || cfg.RTT == 0 || len(cfg.BufferFactors) == 0 {
		t.Errorf("defaults incomplete: %+v", cfg)
	}
	if cfg.PulsePeakFactor <= 1 {
		t.Errorf("default pulse peak factor %.1f must exceed the line rate", cfg.PulsePeakFactor)
	}
}
