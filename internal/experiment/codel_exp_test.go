package experiment

import (
	"testing"

	"bufsim/internal/units"
)

func TestRunCoDelComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("three simulation runs")
	}
	rows := RunCoDel(CoDelConfig{
		Seed:           1,
		N:              100,
		BottleneckRate: 40 * units.Mbps,
		Warmup:         10 * units.Second,
		Measure:        20 * units.Second,
	})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	sqrt, thumb, codel := rows[0], rows[1], rows[2]
	// The rule-of-thumb buffer pays its standing-queue tax: its P99
	// delay towers over both alternatives.
	if thumb.QueueDelayP99 < 2*sqrt.QueueDelayP99 {
		t.Errorf("rule-of-thumb P99 %v not well above sqrt(n)'s %v",
			thumb.QueueDelayP99, sqrt.QueueDelayP99)
	}
	if codel.QueueDelayP99 >= thumb.QueueDelayP99 {
		t.Errorf("CoDel P99 %v not below drop-tail-at-RTTxC %v",
			codel.QueueDelayP99, thumb.QueueDelayP99)
	}
	// All three keep the link productive.
	for _, r := range rows {
		if r.Utilization < 0.85 {
			t.Errorf("%s utilization = %v", r.Label, r.Utilization)
		}
	}
	// The headline: right-sized drop-tail needs no AQM to get both high
	// utilization and low delay in the many-flows regime.
	if sqrt.Utilization < codel.Utilization-0.02 {
		t.Errorf("sqrt(n) drop-tail util %v clearly below CoDel %v",
			sqrt.Utilization, codel.Utilization)
	}
	if sqrt.QueueDelayP99 > codel.QueueDelayP99 {
		t.Errorf("sqrt(n) P99 %v above CoDel %v", sqrt.QueueDelayP99, codel.QueueDelayP99)
	}
}

func TestCoDelAndREDMutuallyExclusive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CoDel+RED did not panic")
		}
	}()
	RunLongLived(LongLivedConfig{
		N: 2, BottleneckRate: units.Mbps, BufferPackets: 10,
		UseRED: true, UseCoDel: true,
		Warmup: units.Second, Measure: units.Second,
	})
}

func TestRunLongLivedReplicated(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated runs")
	}
	cfg := scaledLongLived(20, 60)
	cfg.Measure = 8 * units.Second
	res := RunLongLivedReplicated(cfg, 4)
	if res.Replicas != 4 {
		t.Fatalf("Replicas = %d", res.Replicas)
	}
	if res.MeanUtilization <= 0.5 || res.MeanUtilization > 1 {
		t.Errorf("MeanUtilization = %v", res.MeanUtilization)
	}
	if res.Min > res.MeanUtilization || res.Max < res.MeanUtilization {
		t.Errorf("min/max do not bracket mean: %+v", res)
	}
	if res.StdDev < 0 || res.StdDev > 0.2 {
		t.Errorf("StdDev = %v, implausible", res.StdDev)
	}
	defer func() {
		if recover() == nil {
			t.Error("k=0 did not panic")
		}
	}()
	RunLongLivedReplicated(cfg, 0)
}
