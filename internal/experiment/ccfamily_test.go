package experiment

import (
	"strings"
	"testing"

	"bufsim/internal/tcp"
	"bufsim/internal/units"
)

func scaledCCFamilyConfig() CCFamilyConfig {
	return CCFamilyConfig{
		Seed:           7,
		Ns:             []int{20, 80},
		Variants:       []tcp.Variant{tcp.Reno, tcp.Cubic, tcp.BBR},
		BottleneckRate: 20 * units.Mbps,
		Warmup:         5 * units.Second,
		Measure:        10 * units.Second,
	}
}

func TestRunCCFamilyAcrossFamilies(t *testing.T) {
	if testing.Short() {
		t.Skip("many simulation runs (bisection per grid point)")
	}
	cfg := scaledCCFamilyConfig()
	table := RunCCFamily(cfg)
	if len(table) != len(cfg.Variants)*len(cfg.Ns) {
		t.Fatalf("got %d points, want %d", len(table), len(cfg.Variants)*len(cfg.Ns))
	}
	byKey := map[tcp.Variant]map[int]CCFamilyPoint{}
	for i, p := range table {
		wantV := cfg.Variants[i/len(cfg.Ns)]
		wantN := cfg.Ns[i%len(cfg.Ns)]
		if p.Variant != wantV || p.N != wantN {
			t.Fatalf("point %d is (%v, %d), want (%v, %d)", i, p.Variant, p.N, wantV, wantN)
		}
		if p.SqrtRule <= 0 || p.BDPPackets <= 0 {
			t.Errorf("(%v, %d): non-positive rule/BDP: %+v", p.Variant, p.N, p)
		}
		if p.MinBuffer < 1 {
			t.Errorf("(%v, %d): MinBuffer = %d", p.Variant, p.N, p.MinBuffer)
		}
		if p.Ceiling <= 0.5 || p.Ceiling > 1.0001 {
			t.Errorf("(%v, %d): implausible ceiling %v", p.Variant, p.N, p.Ceiling)
		}
		if p.Target >= p.Ceiling || p.Target <= 0 {
			t.Errorf("(%v, %d): target %v not below ceiling %v", p.Variant, p.N, p.Target, p.Ceiling)
		}
		if p.UtilAtRule <= 0 || p.UtilAtRule > 1.0001 {
			t.Errorf("(%v, %d): UtilAtRule = %v", p.Variant, p.N, p.UtilAtRule)
		}
		if byKey[p.Variant] == nil {
			byKey[p.Variant] = map[int]CCFamilyPoint{}
		}
		byKey[p.Variant][p.N] = p
	}

	// The loss-based families must track the sqrt rule: more flows, less
	// buffer. BBR's requirement is rate-driven and must not explode with
	// the rule's denominator — the headline of the updated theory is
	// that the rule's n-dependence is a property of loss-based AIMD.
	for _, v := range []tcp.Variant{tcp.Reno, tcp.Cubic} {
		lo, hi := byKey[v][20], byKey[v][80]
		if hi.MinBuffer > lo.MinBuffer {
			t.Errorf("%v: min buffer grew with n (%d flows: %d, %d flows: %d)",
				v, lo.N, lo.MinBuffer, hi.N, hi.MinBuffer)
		}
	}
	// At the sqrt-rule buffer the loss-based families should be near
	// their ceiling; that is the 2004 result this repo reproduces.
	for _, v := range []tcp.Variant{tcp.Reno, tcp.Cubic} {
		for _, n := range []int{20, 80} {
			p := byKey[v][n]
			if p.UtilAtRule < 0.85*p.Ceiling {
				t.Errorf("%v n=%d: util at sqrt rule %v far below ceiling %v",
					v, n, p.UtilAtRule, p.Ceiling)
			}
		}
	}

	out := table.Table()
	for _, want := range []string{"Variant", "SqrtRule", "MinBuffer", "bbr", "cubic"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table() missing %q:\n%s", want, out)
		}
	}
}

func TestRunCCFamilyDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation runs")
	}
	cfg := scaledCCFamilyConfig()
	cfg.Ns = []int{20}
	cfg.Variants = []tcp.Variant{tcp.BBR}
	a := RunCCFamily(cfg)
	b := RunCCFamily(cfg)
	if len(a) != 1 || len(b) != 1 || a[0] != b[0] {
		t.Errorf("re-run diverged:\n%+v\n%+v", a, b)
	}
}

func TestCCFamilyDefaults(t *testing.T) {
	cfg := CCFamilyConfig{}.withDefaults()
	if len(cfg.Variants) != len(tcp.Variants()) {
		t.Errorf("default variants = %v, want all registered", cfg.Variants)
	}
	if cfg.Target <= 0 || cfg.Target >= 1 {
		t.Errorf("default target = %v", cfg.Target)
	}
	if len(cfg.Ns) == 0 || cfg.BottleneckRate == 0 {
		t.Errorf("defaults incomplete: %+v", cfg)
	}
}
