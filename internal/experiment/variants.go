package experiment

import (
	"bufsim/internal/audit"
	"bufsim/internal/runcache"
	"bufsim/internal/tcp"
	"bufsim/internal/units"
)

// VariantConfig drives the congestion-control ablation: does the sqrt(n)
// rule depend on the paper's choice of TCP Reno? The paper's analysis
// only assumes AIMD sawtooths, so Tahoe/NewReno/SACK should all track the
// rule — with SACK expected to help precisely where Reno's multi-loss
// fragility hurts (small n, small buffers).
type VariantConfig struct {
	Seed int64

	N              int
	BottleneckRate units.BitRate
	RTTMin, RTTMax units.Duration
	SegmentSize    units.ByteSize
	BufferFactor   float64 // multiple of RTTxC/sqrt(n)

	Variants []tcp.Variant

	Warmup, Measure units.Duration

	// Audit, when non-nil, runs every variant under the conservation-law
	// checker (see LongLivedConfig.Audit).
	Audit *audit.Auditor

	// Cache, when non-nil, memoizes the underlying runs (see
	// LongLivedConfig.Cache).
	Cache *runcache.Store
}

func (c VariantConfig) withDefaults() VariantConfig {
	if c.N == 0 {
		c.N = 100
	}
	if c.BottleneckRate == 0 {
		c.BottleneckRate = units.OC3
	}
	if c.BufferFactor == 0 {
		c.BufferFactor = 1
	}
	if len(c.Variants) == 0 {
		c.Variants = []tcp.Variant{tcp.Reno, tcp.NewReno, tcp.Sack, tcp.Tahoe}
	}
	return c
}

// VariantPoint is one congestion-control variant's outcome.
type VariantPoint struct {
	Variant     tcp.Variant
	Utilization float64
	LossRate    float64
	Timeouts    int64
	Retransmit  float64
}

// RunVariantAblation measures each variant on the same scenario.
func RunVariantAblation(cfg VariantConfig) VariantTable {
	cfg = cfg.withDefaults()
	ll := LongLivedConfig{
		Seed:           cfg.Seed,
		N:              cfg.N,
		BottleneckRate: cfg.BottleneckRate,
		RTTMin:         cfg.RTTMin,
		RTTMax:         cfg.RTTMax,
		SegmentSize:    cfg.SegmentSize,
		Warmup:         cfg.Warmup,
		Measure:        cfg.Measure,
		Audit:          cfg.Audit,
		Cache:          cfg.Cache,
	}
	ll = ll.withDefaults()
	meanRTT := (ll.RTTMin + ll.RTTMax) / 2
	bdp := float64(units.PacketsInFlight(ll.BottleneckRate, meanRTT, ll.SegmentSize))
	buffer := int(cfg.BufferFactor * float64(SqrtRuleBuffer(bdp, cfg.N)))
	if buffer < 1 {
		buffer = 1
	}
	ll.BufferPackets = buffer

	var out []VariantPoint
	for _, v := range cfg.Variants {
		run := ll
		run.Variant = v
		r := RunLongLived(run)
		out = append(out, VariantPoint{
			Variant:     v,
			Utilization: r.Utilization,
			LossRate:    r.LossRate,
			Timeouts:    r.Timeouts,
			Retransmit:  r.RetransmitFraction,
		})
	}
	return out
}
