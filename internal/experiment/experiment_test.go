package experiment

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"bufsim/internal/units"
	"bufsim/internal/workload"
)

// Scaled-down scenario shared by the long-lived tests: 20 Mb/s bottleneck,
// 60-140 ms RTTs (BDP = 250 packets at the 100 ms mean).
func scaledLongLived(n, buffer int) LongLivedConfig {
	return LongLivedConfig{
		Seed:           1,
		N:              n,
		BottleneckRate: 20 * units.Mbps,
		RTTMin:         60 * units.Millisecond,
		RTTMax:         140 * units.Millisecond,
		BufferPackets:  buffer,
		Warmup:         8 * units.Second,
		Measure:        15 * units.Second,
	}
}

func TestRunLongLivedSqrtRuleUtilization(t *testing.T) {
	// At small n the paper itself warns flows partially synchronize and
	// the 1x rule underperforms; 2x the rule should still deliver high
	// utilization in this scaled-down scenario.
	bdp := 250.0
	res := RunLongLived(scaledLongLived(30, 2*SqrtRuleBuffer(bdp, 30)))
	if res.Utilization < 0.95 {
		t.Errorf("utilization at 2x sqrt-rule buffer = %v, want >= 0.95", res.Utilization)
	}
	if res.LossRate <= 0 {
		t.Error("long-lived flows should saturate the link and drop packets")
	}
	if res.RetransmitFraction <= 0 || res.RetransmitFraction > 0.3 {
		t.Errorf("retransmit fraction = %v, want small but nonzero", res.RetransmitFraction)
	}
	// TCP over a shared drop-tail queue with heterogeneous RTTs is not
	// perfectly fair, but no flow should be starved either.
	if res.Fairness < 0.5 || res.Fairness > 1 {
		t.Errorf("Jain fairness = %v, want [0.5, 1]", res.Fairness)
	}
}

func TestRunLongLivedPaperScaleOC3(t *testing.T) {
	// The paper's regime: OC3, hundreds of flows, 1x RTTxC/sqrt(n).
	if testing.Short() {
		t.Skip("full-scale OC3 run")
	}
	res := RunLongLived(LongLivedConfig{
		Seed:           9,
		N:              300,
		BottleneckRate: units.OC3,
		RTTMin:         60 * units.Millisecond,
		RTTMax:         140 * units.Millisecond,
		BufferPackets:  SqrtRuleBuffer(2500, 300), // BDP ~2500 pkts at 100 ms mean RTT
		Warmup:         15 * units.Second,
		Measure:        30 * units.Second,
	})
	if res.Utilization < 0.97 {
		t.Errorf("OC3 n=300 1x-rule utilization = %v, want >= 0.97", res.Utilization)
	}
}

func TestRunLongLivedTinyBufferDegrades(t *testing.T) {
	full := RunLongLived(scaledLongLived(50, SqrtRuleBuffer(250, 50)))
	tiny := RunLongLived(scaledLongLived(50, 2))
	if tiny.Utilization >= full.Utilization {
		t.Errorf("2-packet buffer (%v) should underperform sqrt-rule buffer (%v)",
			tiny.Utilization, full.Utilization)
	}
}

func TestRunLongLivedDelayedAckStillMeetsRule(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run")
	}
	cfg := scaledLongLived(30, 2*SqrtRuleBuffer(250, 30))
	cfg.DelayedAck = true
	res := RunLongLived(cfg)
	if res.Utilization < 0.93 {
		t.Errorf("delayed-ACK utilization = %v, want >= 0.93", res.Utilization)
	}
}

func TestRunLongLivedREDRuns(t *testing.T) {
	cfg := scaledLongLived(50, 2*SqrtRuleBuffer(250, 50))
	cfg.UseRED = true
	res := RunLongLived(cfg)
	if res.Utilization < 0.85 {
		t.Errorf("RED utilization = %v, want >= 0.85", res.Utilization)
	}
	if res.MeanQueue != 0 {
		t.Error("MeanQueue should be 0 under RED (no drop-tail accounting)")
	}
}

func TestRunSingleFlowRegimes(t *testing.T) {
	base := SingleFlowConfig{
		BottleneckRate: 10 * units.Mbps,
		RTT:            100 * units.Millisecond,
		Warmup:         100 * units.Second,
		Measure:        150 * units.Second,
	}
	exact := base
	exact.BufferFactor = 1
	re := RunSingleFlow(exact)
	if re.BDPPackets != 125 || re.BufferPackets != 125 {
		t.Fatalf("BDP/Buffer = %d/%d, want 125/125", re.BDPPackets, re.BufferPackets)
	}
	if re.Utilization < 0.999 {
		t.Errorf("exact buffering utilization = %v, want ~1 (Fig. 3)", re.Utilization)
	}
	// Fig. 3's signature: the queue almost hits zero but the link stays
	// busy. The sampled minimum should be small relative to the buffer.
	if re.MinQueueSeen > float64(re.BufferPackets)/4 {
		t.Errorf("queue never drained: min occupancy %v", re.MinQueueSeen)
	}
	if re.Cwnd.Len() == 0 || re.Queue.Len() == 0 {
		t.Fatal("missing time series")
	}
	// Sawtooth: the window trace must oscillate between ~BDP and ~2*BDP.
	if re.Cwnd.Max()-re.Cwnd.Min() < float64(re.BDPPackets)/2 {
		t.Errorf("cwnd trace not a sawtooth: range [%v, %v]", re.Cwnd.Min(), re.Cwnd.Max())
	}

	under := base
	under.BufferFactor = 0.125
	ru := RunSingleFlow(under)
	if ru.Utilization > 0.9 {
		t.Errorf("underbuffered utilization = %v, want < 0.9 (Fig. 4)", ru.Utilization)
	}
	if ru.Utilization < 0.6 {
		t.Errorf("underbuffered utilization = %v, implausibly low", ru.Utilization)
	}

	over := base
	over.BufferFactor = 2
	ro := RunSingleFlow(over)
	if ro.Utilization < 0.999 {
		t.Errorf("overbuffered utilization = %v, want ~1 (Fig. 5)", ro.Utilization)
	}
	// Fig. 5's signature: the queue never empties (standing queue).
	if ro.MinQueueSeen < 1 {
		t.Errorf("overbuffered queue drained to %v, want > 0", ro.MinQueueSeen)
	}
	if !(ru.Utilization < re.Utilization && re.Utilization <= ro.Utilization+0.001) {
		t.Errorf("regime ordering: %v %v %v", ru.Utilization, re.Utilization, ro.Utilization)
	}
}

func TestRunWindowDistGaussian(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-flow distribution run")
	}
	res := RunWindowDist(WindowDistConfig{
		Seed:           2,
		N:              80,
		BottleneckRate: 20 * units.Mbps,
		RTTMin:         60 * units.Millisecond,
		RTTMax:         140 * units.Millisecond,
		BufferFactor:   1.5,
		Warmup:         10 * units.Second,
		Measure:        30 * units.Second,
	})
	if len(res.Samples) < 1000 {
		t.Fatalf("too few samples: %d", len(res.Samples))
	}
	if res.Mean <= 0 || res.StdDev <= 0 {
		t.Fatalf("degenerate fit: mean=%v sd=%v", res.Mean, res.StdDev)
	}
	// Fig. 6: approximately Gaussian. KS for autocorrelated samples won't
	// reach iid levels; require it beat an obviously non-normal shape.
	if res.KS > 0.15 {
		t.Errorf("KS = %v, want < 0.15 for a near-Gaussian aggregate", res.KS)
	}
	// The aggregate window should hover near BDP + B.
	bdp := 250.0
	if res.Mean < bdp/2 || res.Mean > 2*bdp {
		t.Errorf("aggregate mean = %v, want near BDP %v", res.Mean, bdp)
	}
}

func TestMinBufferForUtilizationFindsThreshold(t *testing.T) {
	if testing.Short() {
		t.Skip("bisection over simulations")
	}
	cfg := scaledLongLived(30, 0)
	cfg.Measure = 10 * units.Second
	b := MinBufferForUtilization(cfg, 0.97, 300)
	if b <= 1 || b >= 300 {
		t.Fatalf("MinBuffer = %d, want interior point", b)
	}
	// Meeting the target at b must imply (roughly) meeting it at 2b.
	u2 := MeasuredUtilization(cfg, 2*b)
	if u2 < 0.95 {
		t.Errorf("utilization at 2x min buffer = %v", u2)
	}
}

func TestRunMinBufferSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ladder of simulations")
	}
	res := RunMinBufferSweep(MinBufferConfig{
		Seed:           3,
		BottleneckRate: 20 * units.Mbps,
		RTTMin:         60 * units.Millisecond,
		RTTMax:         100 * units.Millisecond,
		Ns:             []int{20, 100},
		Targets:        []float64{0.98},
		LadderPoints:   7,
		Warmup:         8 * units.Second,
		Measure:        12 * units.Second,
	})
	if len(res.Points) != 2 {
		t.Fatalf("got %d points", len(res.Points))
	}
	p20, p100 := res.Points[0], res.Points[1]
	if p20.N != 20 || p100.N != 100 {
		t.Fatalf("points out of order: %+v", res.Points)
	}
	// Core claim: more flows need less buffer.
	if p100.MinBuffer >= p20.MinBuffer {
		t.Errorf("min buffer did not shrink with n: n=20 needs %d, n=100 needs %d",
			p20.MinBuffer, p100.MinBuffer)
	}
	// And the requirement should be within a small factor of the sqrt rule.
	for _, p := range res.Points {
		ratio := float64(p.MinBuffer) / float64(p.SqrtRule)
		if ratio > 4 || ratio < 0.1 {
			t.Errorf("n=%d: min buffer %d vs sqrt rule %d (ratio %.2f)",
				p.N, p.MinBuffer, p.SqrtRule, ratio)
		}
	}
	if len(res.Ladder) == 0 {
		t.Error("ladder samples missing")
	}
}

func TestRunShortFlowBufferRateIndependence(t *testing.T) {
	if testing.Short() {
		t.Skip("bisection over simulations")
	}
	points := RunShortFlowBuffer(ShortFlowBufferConfig{
		Seed:     4,
		Rates:    []units.BitRate{20 * units.Mbps, 60 * units.Mbps},
		Load:     0.8,
		FlowLens: []int64{14},
		Stations: 40,
		Warmup:   5 * units.Second,
		Measure:  15 * units.Second,
	})
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	// §4's headline: the buffer requirement does not scale with the line
	// rate. Tripling the rate should leave the min buffer within a small
	// factor (vs 3x if it scaled linearly like the BDP does).
	b0, b1 := float64(points[0].MinBuffer), float64(points[1].MinBuffer)
	if b1 > 2.5*b0+5 {
		t.Errorf("min buffer scaled with rate: %v -> %v", b0, b1)
	}
	for _, p := range points {
		if p.BaselineAFCT <= 0 {
			t.Fatalf("baseline AFCT missing: %+v", p)
		}
		if p.AchievedAFCT > units.Duration(float64(p.BaselineAFCT)*1.125)+units.Millisecond {
			t.Errorf("achieved AFCT %v exceeds budget vs baseline %v", p.AchievedAFCT, p.BaselineAFCT)
		}
		// The measured requirement should be in the ballpark of the
		// paper's model bound (same order of magnitude).
		if float64(p.MinBuffer) > 6*p.ModelBuffer+20 {
			t.Errorf("min buffer %d far above model %v", p.MinBuffer, p.ModelBuffer)
		}
	}
}

func TestRunAFCTComparisonSmallBuffersWin(t *testing.T) {
	if testing.Short() {
		t.Skip("two mixed-traffic simulations")
	}
	res := RunAFCTComparison(AFCTComparisonConfig{
		Seed:           5,
		NLong:          60,
		ShortLoad:      0.15,
		Sizes:          workload.GeometricSize(14),
		BottleneckRate: 20 * units.Mbps,
		RTTMin:         60 * units.Millisecond,
		RTTMax:         140 * units.Millisecond,
		Warmup:         10 * units.Second,
		Measure:        20 * units.Second,
	})
	if res.RuleThumb.Completed < 100 || res.SqrtRule.Completed < 100 {
		t.Fatalf("too few completed shorts: %+v", res)
	}
	// Fig. 9: small buffers shorten flow completion times...
	if res.SqrtRule.AFCT >= res.RuleThumb.AFCT {
		t.Errorf("AFCT with small buffer (%v) not better than rule-of-thumb (%v)",
			res.SqrtRule.AFCT, res.RuleThumb.AFCT)
	}
	// ...because queueing delay is lower.
	if res.SqrtRule.MeanQueue >= res.RuleThumb.MeanQueue {
		t.Errorf("mean queue with small buffer (%v) not below rule-of-thumb (%v)",
			res.SqrtRule.MeanQueue, res.RuleThumb.MeanQueue)
	}
	// While utilization stays high.
	if res.SqrtRule.Utilization < 0.9 {
		t.Errorf("small-buffer utilization = %v", res.SqrtRule.Utilization)
	}
}

func TestRunProductionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("four mixed-traffic simulations")
	}
	rows := RunProduction(ProductionConfig{
		Seed:    6,
		NLong:   30,
		Buffers: []int{8, 40, 300},
		Warmup:  10 * units.Second,
		Measure: 20 * units.Second,
	})
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Utilization should be non-decreasing in buffer size and near full
	// for the overbuffered row.
	if !(rows[0].Utilization <= rows[1].Utilization+0.01 && rows[1].Utilization <= rows[2].Utilization+0.01) {
		t.Errorf("utilization not increasing with buffer: %+v", rows)
	}
	if rows[2].Utilization < 0.95 {
		t.Errorf("well-buffered production utilization = %v", rows[2].Utilization)
	}
	if rows[0].MeanConcurrent <= 30 {
		t.Errorf("mean concurrent flows = %v, want > NLong", rows[0].MeanConcurrent)
	}
}

func TestRunSyncAblationDesynchronizesWithN(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-flow distribution runs")
	}
	points := RunSyncAblation(SyncConfig{
		Seed:           7,
		Ns:             []int{5, 120},
		BottleneckRate: 20 * units.Mbps,
		RTTMin:         60 * units.Millisecond,
		RTTMax:         140 * units.Millisecond,
		Warmup:         10 * units.Second,
		Measure:        25 * units.Second,
	})
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	// Few flows act like one big flow (high sync index); many flows
	// approach the CLT floor.
	if points[0].SyncIndex <= points[1].SyncIndex {
		t.Errorf("sync index did not fall with n: %v -> %v",
			points[0].SyncIndex, points[1].SyncIndex)
	}
}

func TestBufferLadder(t *testing.T) {
	l := bufferLadder(64, 8)
	if len(l) < 4 {
		t.Fatalf("ladder too short: %v", l)
	}
	for i := 1; i < len(l); i++ {
		if l[i] <= l[i-1] {
			t.Fatalf("ladder not strictly increasing: %v", l)
		}
	}
	if l[0] < 1 || l[0] > 16 {
		t.Errorf("ladder start %d, want around sqrtRule/8", l[0])
	}
	if l[len(l)-1] < 200 || l[len(l)-1] > 300 {
		t.Errorf("ladder end %d, want ~4x sqrt rule", l[len(l)-1])
	}
	// Degenerate inputs must not panic or produce empty ladders.
	if tiny := bufferLadder(1, 2); len(tiny) == 0 {
		t.Error("ladder for sqrtRule=1 empty")
	}
}

func TestSqrtRuleBufferFloor(t *testing.T) {
	if SqrtRuleBuffer(4, 100000) != 1 {
		t.Error("sqrt-rule buffer should floor at 1 packet")
	}
	defer func() {
		if recover() == nil {
			t.Error("SqrtRuleBuffer(n=0) did not panic")
		}
	}()
	SqrtRuleBuffer(100, 0)
}

func TestRenderers(t *testing.T) {
	// Every result renders through the uniform Result interface: Table()
	// must contain the key values, WriteJSON must produce valid JSON.
	cases := []struct {
		name string
		res  Result
		want string
	}{
		{"utilization", UtilizationTable{{N: 100, Factor: 1, Packets: 129, RAMMbit: 1.0, ModelUtil: 0.999, SimUtil: 0.993}}, "129"},
		{"minbuffer", MinBufferResult{BDPPackets: 1291, Points: []MinBufferPoint{{N: 100, Target: 0.98, MinBuffer: 120, SqrtRule: 129, Achieved: 0.985}}}, "1291"},
		{"shortflow", ShortFlowBufferTable{{Rate: 40 * units.Mbps, FlowLen: 14, MinBuffer: 30, ModelBuffer: 44.2, BaselineAFCT: 300 * units.Millisecond, AchievedAFCT: 330 * units.Millisecond}}, "40Mbps"},
		{"afct", AFCTComparisonResult{BDPPackets: 250, RuleThumb: AFCTOutcome{Label: "RTT*C", BufferPackets: 250, AFCT: 400 * units.Millisecond}, SqrtRule: AFCTOutcome{Label: "RTT*C/sqrt(n)", BufferPackets: 25, AFCT: 250 * units.Millisecond}}, "sqrt"},
		{"production", ProductionTable{{Buffer: 46, SqrtRuleRatio: 0.8, Utilization: 0.974, ModelUtil: 0.959, MeanConcurrent: 400}}, "46"},
		{"sync", SyncTable{{N: 10, SyncIndex: 2.5, KS: 0.1, Mean: 100, StdDev: 20}}, "SyncIndex"},
		{"pacing", PacingTable{{BufferPackets: 10, Factor: 0.25, UtilUnpaced: 0.8, UtilPaced: 0.95}}, "paced"},
		{"smoothing", SmoothingTable{TailAt: 20, Points: []SmoothingPoint{{AccessRatio: 10, TailProb: 0.1, ModelMG1: 0.2, ModelMD1: 0.01, MeanQueue: 4}}}, "M/D/1"},
		{"variants", VariantTable{{Utilization: 0.99, LossRate: 0.01}}, "Variant"},
		{"rttspread", RTTSpreadTable{{Spread: 40 * units.Millisecond, Utilization: 0.99, SyncIndex: 1.2}}, "SyncIndex"},
		{"codel", CoDelTable{{Label: "codel", BufferPackets: 100, Utilization: 0.99}}, "codel"},
		{"harpoon", HarpoonResult{CalibratedN: 40, SqrtRule: 20, Rows: []HarpoonRow{{Factor: 1, Buffer: 20, Utilization: 0.97}}}, "calibrated"},
		{"backbone", BackboneResult{OneSecondBuffer: 1000, SmallBuffer: 50, SqrtRule: 30}, "1s buffer"},
		{"multihop", MultiHopResult{BufferPackets: 20, FlowsPerLink: 80}, "hop 2"},
		{"ecn", ECNResult{BufferPackets: 60}, "ECN"},
		{"longlived", LongLivedResult{N: 100, BufferPackets: 129, Utilization: 0.993}, "129"},
		{"replicated", ReplicatedResult{Replicas: 5, MeanUtilization: 0.99}, "Replicas"},
		{"trace", TraceResult{Completed: 10, AFCT: 100 * units.Millisecond}, "AFCT"},
	}
	for _, tc := range cases {
		var sb strings.Builder
		if err := Render(&sb, tc.res); err != nil {
			t.Errorf("%s: Render: %v", tc.name, err)
			continue
		}
		if !strings.Contains(sb.String(), tc.want) {
			t.Errorf("%s table missing %q:\n%s", tc.name, tc.want, sb.String())
		}
		var jb strings.Builder
		if err := tc.res.WriteJSON(&jb); err != nil {
			t.Errorf("%s: WriteJSON: %v", tc.name, err)
			continue
		}
		if !json.Valid([]byte(jb.String())) {
			t.Errorf("%s: WriteJSON produced invalid JSON:\n%s", tc.name, jb.String())
		}
	}

	// Results carrying non-trivial payloads (histograms, series) render
	// from real runs.
	res := RunWindowDist(WindowDistConfig{
		Seed: 1, N: 4, BottleneckRate: 5 * units.Mbps,
		Warmup: 3 * units.Second, Measure: 5 * units.Second,
	})
	var sb strings.Builder
	if err := Render(&sb, res); err != nil {
		t.Fatalf("window dist render: %v", err)
	}
	if !strings.Contains(sb.String(), "aggregate window") {
		t.Errorf("window dist render:\n%s", sb.String())
	}
	var jb strings.Builder
	if err := res.WriteJSON(&jb); err != nil {
		t.Fatalf("window dist json: %v", err)
	}
	if !json.Valid([]byte(jb.String())) {
		t.Errorf("window dist JSON invalid:\n%s", jb.String())
	}
}

func TestMinBufferForUtilizationEdges(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("tiny search bound did not panic")
		}
	}()
	MinBufferForUtilization(scaledLongLived(5, 0), 0.9, 1)
}

func TestFitNormal(t *testing.T) {
	mean, sd := fitNormal([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 {
		t.Errorf("mean = %v", mean)
	}
	if math.Abs(sd-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("sd = %v", sd)
	}
}
