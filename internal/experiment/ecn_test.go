package experiment

import (
	"testing"

	"bufsim/internal/units"
)

func TestRunECNMarkingBeatsDropping(t *testing.T) {
	if testing.Short() {
		t.Skip("paired simulation runs")
	}
	res := RunECN(ECNConfig{
		Seed:           1,
		N:              100,
		BottleneckRate: 40 * units.Mbps,
		BufferFactor:   2,
		Warmup:         10 * units.Second,
		Measure:        20 * units.Second,
	})
	if res.Mark.Utilization < res.Drop.Utilization {
		t.Errorf("marking utilization %v below dropping %v",
			res.Mark.Utilization, res.Drop.Utilization)
	}
	if res.Mark.LossRate >= res.Drop.LossRate {
		t.Errorf("marking loss %v not below dropping %v",
			res.Mark.LossRate, res.Drop.LossRate)
	}
	if res.Mark.Timeouts >= res.Drop.Timeouts {
		t.Errorf("marking timeouts %d not below dropping %d",
			res.Mark.Timeouts, res.Drop.Timeouts)
	}
}

func TestECNRequiresRED(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ECN without RED did not panic")
		}
	}()
	RunLongLived(LongLivedConfig{
		N: 2, BottleneckRate: units.Mbps, BufferPackets: 10, ECN: true,
		Warmup: units.Second, Measure: units.Second,
	})
}
