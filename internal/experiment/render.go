package experiment

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"bufsim/internal/units"
)

// RenderUtilizationTable prints Fig. 10-style rows.
func RenderUtilizationTable(w io.Writer, rows []UtilizationRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Flows\tBuffer\tPkts\tRAM\tModel\tSim")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%.1fx\t%d\t%.1f Mbit\t%.1f%%\t%.1f%%\n",
			r.N, r.Factor, r.Packets, r.RAMMbit, 100*r.ModelUtil, 100*r.SimUtil)
	}
	tw.Flush()
}

// RenderMinBuffer prints Fig. 7-style rows.
func RenderMinBuffer(w io.Writer, res MinBufferResult) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "BDP = %d packets\n", res.BDPPackets)
	fmt.Fprintln(tw, "Flows\tTarget\tMinBuffer\tRTTxC/sqrt(n)\tAchieved")
	for _, p := range res.Points {
		fmt.Fprintf(tw, "%d\t%.1f%%\t%d\t%d\t%.2f%%\n",
			p.N, 100*p.Target, p.MinBuffer, p.SqrtRule, 100*p.Achieved)
	}
	tw.Flush()
}

// RenderShortFlowBuffer prints Fig. 8-style rows.
func RenderShortFlowBuffer(w io.Writer, points []ShortFlowBufferPoint) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Rate\tFlowLen\tMinBuffer\tModel(P=0.025)\tBaseAFCT\tAFCT@Min")
	for _, p := range points {
		fmt.Fprintf(tw, "%v\t%d\t%d\t%.1f\t%v\t%v\n",
			p.Rate, p.FlowLen, p.MinBuffer, p.ModelBuffer,
			roundMS(p.BaselineAFCT), roundMS(p.AchievedAFCT))
	}
	tw.Flush()
}

// RenderAFCTComparison prints Fig. 9-style rows.
func RenderAFCTComparison(w io.Writer, res AFCTComparisonResult) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "BDP = %d packets\n", res.BDPPackets)
	fmt.Fprintln(tw, "Buffer\tPkts\tAFCT\tUtil\tMeanQueue\tFlows")
	for _, o := range []AFCTOutcome{res.RuleThumb, res.SqrtRule} {
		fmt.Fprintf(tw, "%s\t%d\t%v\t%.1f%%\t%.0f\t%d\n",
			o.Label, o.BufferPackets, roundMS(o.AFCT), 100*o.Utilization, o.MeanQueue, o.Completed)
	}
	tw.Flush()
}

// RenderProduction prints Fig. 11-style rows.
func RenderProduction(w io.Writer, rows []ProductionRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Buffer\tRTTxC/sqrt(n)\tUtil(sim)\tUtil(model)\tConcurrent\tAFCT")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%.1fx\t%.2f%%\t%.2f%%\t%.0f\t%v\n",
			r.Buffer, r.SqrtRuleRatio, 100*r.Utilization, 100*r.ModelUtil,
			r.MeanConcurrent, roundMS(r.AFCT))
	}
	tw.Flush()
}

// RenderSync prints the synchronization-ablation rows.
func RenderSync(w io.Writer, points []SyncPoint) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Flows\tSyncIndex\tKS\tAggMean\tAggStdDev")
	for _, p := range points {
		fmt.Fprintf(tw, "%d\t%.2f\t%.4f\t%.0f\t%.1f\n", p.N, p.SyncIndex, p.KS, p.Mean, p.StdDev)
	}
	tw.Flush()
}

// RenderPacing prints the pacing-ablation rows.
func RenderPacing(w io.Writer, points []PacingPoint) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Buffer\tPkts\tUtil(unpaced)\tUtil(paced)")
	for _, p := range points {
		fmt.Fprintf(tw, "%.2fx\t%d\t%.2f%%\t%.2f%%\n",
			p.Factor, p.BufferPackets, 100*p.UtilUnpaced, 100*p.UtilPaced)
	}
	tw.Flush()
}

// RenderSmoothing prints the access-link smoothing rows.
func RenderSmoothing(w io.Writer, points []SmoothingPoint, tailAt int) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "P(Q >= %d):\n", tailAt)
	fmt.Fprintln(tw, "Access\tMeasured\tM/G/1 bound\tM/D/1 bound\tMeanQueue")
	for _, p := range points {
		fmt.Fprintf(tw, "%.2gx\t%.4f\t%.4f\t%.4f\t%.1f\n",
			p.AccessRatio, p.TailProb, p.ModelMG1, p.ModelMD1, p.MeanQueue)
	}
	tw.Flush()
}

// RenderVariants prints the congestion-control-ablation rows.
func RenderVariants(w io.Writer, points []VariantPoint) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Variant\tUtil\tLoss\tTimeouts\tRetransmits")
	for _, p := range points {
		fmt.Fprintf(tw, "%v\t%.2f%%\t%.2f%%\t%d\t%.2f%%\n",
			p.Variant, 100*p.Utilization, 100*p.LossRate, p.Timeouts, 100*p.Retransmit)
	}
	tw.Flush()
}

// RenderWindowDist prints the Fig. 6 histogram as ASCII.
func RenderWindowDist(w io.Writer, res WindowDistResult) {
	fmt.Fprintf(w, "n=%d buffer=%d pkts: aggregate window mean=%.1f stddev=%.1f KS=%.4f\n",
		res.N, res.BufferPackets, res.Mean, res.StdDev, res.KS)
	max := int64(0)
	for i := 0; i < res.Histogram.NumBins(); i++ {
		if _, c := res.Histogram.Bin(i); c > max {
			max = c
		}
	}
	if max == 0 {
		return
	}
	for i := 0; i < res.Histogram.NumBins(); i++ {
		center, count := res.Histogram.Bin(i)
		bar := int(40 * count / max)
		fmt.Fprintf(w, "%8.1f |%s\n", center, strings.Repeat("#", bar))
	}
}

func roundMS(d units.Duration) string {
	return fmt.Sprintf("%.1fms", d.Milliseconds())
}
