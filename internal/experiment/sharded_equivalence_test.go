package experiment

import (
	"fmt"
	"math/rand"
	"testing"

	"bufsim/internal/audit"
	"bufsim/internal/tcp"
	"bufsim/internal/units"
)

// shardSweep is the shard-count axis of the equivalence tests: unsharded,
// the minimum sharded cut, a mid count, and more shards than some
// scenarios have stations (exercising the clamp).
var shardSweep = []int{1, 2, 4, 8}

// TestShardedMatchesUnsharded is the sharded kernel's proof obligation:
// every pinned-digest scenario must reproduce its golden digest — the one
// recorded on the sequential kernel — bit for bit at every shard count.
// The digests cover every result field (throughputs, queue occupancies,
// AFCTs, full time series), so a single reordered packet anywhere in the
// run fails the test. Combined with TestGoldenDigests (shards = 0) this
// pins sharded == unsharded == pre-rewrite kernel.
func TestShardedMatchesUnsharded(t *testing.T) {
	counts := shardSweep
	if testing.Short() {
		counts = []int{2, 8}
	}
	for _, tc := range goldenDigestCases {
		for _, n := range counts {
			t.Run(fmt.Sprintf("%s/shards=%d", tc.name, n), func(t *testing.T) {
				got := resultDigest(t, tc.run(nil, n))
				if got != tc.want {
					t.Errorf("digest with %d shards = %s, want %s\n(the sharded kernel diverged from the sequential packet schedule)", n, got, tc.want)
				}
			})
		}
	}
}

// TestShardedMatchesUnshardedRandomized widens the equivalence check past
// the pinned scenarios: randomized long-lived configs (the family that
// shards fully, with every station on its own shard class) must produce
// identical digests sharded and unsharded. The configs are drawn from a
// fixed seed so failures reproduce.
func TestShardedMatchesUnshardedRandomized(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation runs")
	}
	rng := rand.New(rand.NewSource(20040814)) // the paper's publication month
	for i := 0; i < 4; i++ {
		cfg := LongLivedConfig{
			Seed:           rng.Int63n(1 << 20),
			N:              2 + rng.Intn(30),
			BottleneckRate: units.BitRate(5+rng.Intn(20)) * units.Mbps,
			BufferPackets:  5 + rng.Intn(60),
			Variant:        [...]tcp.Variant{0, 3, 4, 5}[rng.Intn(4)],
			DelayedAck:     rng.Intn(2) == 0,
			Paced:          rng.Intn(2) == 0,
			Warmup:         2 * units.Second,
			Measure:        4 * units.Second,
		}
		want := resultDigest(t, RunLongLived(cfg))
		for _, n := range []int{2, 4, 8} {
			sharded := cfg
			sharded.Shards = n
			t.Run(fmt.Sprintf("cfg%d/shards=%d", i, n), func(t *testing.T) {
				if got := resultDigest(t, RunLongLived(sharded)); got != want {
					t.Errorf("digest with %d shards = %s, want %s (config %+v)", n, got, want, cfg)
				}
			})
		}
	}
}

// TestShardedAuditZeroViolations runs sharded scenarios under the
// conservation-law auditor: sharding must not perturb a single invariant
// — per-shard clocks and the merge points stay monotone, queues conserve
// packets, TCP windows balance. A sequential control run establishes the
// baseline expectation of zero.
func TestShardedAuditZeroViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation runs")
	}
	for _, n := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			aud := audit.New()
			RunLongLived(LongLivedConfig{
				Seed: 7, N: 24, BottleneckRate: 20 * units.Mbps,
				BufferPackets: 40,
				Warmup:        4 * units.Second, Measure: 8 * units.Second,
				Audit:  aud,
				Shards: n,
			})
			if vs := aud.Violations(); len(vs) != 0 {
				t.Fatalf("audit reported %d violations under %d shards; first: %s", len(vs), n, vs[0])
			}
		})
	}
}
