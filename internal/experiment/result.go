package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"bufsim/internal/units"
)

// Result is the uniform reporting surface every experiment outcome
// implements: Table renders the rows the way the paper presents them,
// WriteJSON emits the raw values for machines. cmd/paperexp and the
// public bufsim API render every outcome through this one interface
// instead of per-type switches.
type Result interface {
	// Table returns the human-readable rendering (a tab-aligned table or
	// short report, trailing newline included).
	Table() string
	// WriteJSON writes the outcome as indented JSON.
	WriteJSON(w io.Writer) error
}

// Render writes res.Table() to w.
func Render(w io.Writer, res Result) error {
	_, err := io.WriteString(w, res.Table())
	return err
}

// writeJSON is the shared WriteJSON implementation. Output is
// deterministic: struct fields emit in declaration order and
// encoding/json sorts map keys.
func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// tabulate renders fn's output through a tabwriter configured the way
// every table in this package is aligned.
func tabulate(fn func(tw *tabwriter.Writer)) string {
	var sb strings.Builder
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fn(tw)
	tw.Flush()
	return sb.String()
}

func roundMS(d units.Duration) string {
	return fmt.Sprintf("%.1fms", d.Milliseconds())
}

// UtilizationTable is the Fig. 10 dataset (and its RED ablation).
type UtilizationTable []UtilizationRow

// Table implements Result.
func (t UtilizationTable) Table() string {
	return tabulate(func(tw *tabwriter.Writer) {
		fmt.Fprintln(tw, "Flows\tBuffer\tPkts\tRAM\tModel\tSim")
		for _, r := range t {
			fmt.Fprintf(tw, "%d\t%.1fx\t%d\t%.1f Mbit\t%.1f%%\t%.1f%%\n",
				r.N, r.Factor, r.Packets, r.RAMMbit, 100*r.ModelUtil, 100*r.SimUtil)
		}
	})
}

// WriteJSON implements Result.
func (t UtilizationTable) WriteJSON(w io.Writer) error { return writeJSON(w, t) }

// Table implements Result.
func (r MinBufferResult) Table() string {
	return tabulate(func(tw *tabwriter.Writer) {
		fmt.Fprintf(tw, "BDP = %d packets\n", r.BDPPackets)
		fmt.Fprintln(tw, "Flows\tTarget\tMinBuffer\tRTTxC/sqrt(n)\tAchieved")
		for _, p := range r.Points {
			fmt.Fprintf(tw, "%d\t%.1f%%\t%d\t%d\t%.2f%%\n",
				p.N, 100*p.Target, p.MinBuffer, p.SqrtRule, 100*p.Achieved)
		}
	})
}

// WriteJSON implements Result.
func (r MinBufferResult) WriteJSON(w io.Writer) error { return writeJSON(w, r) }

// ShortFlowBufferTable is the Fig. 8 dataset.
type ShortFlowBufferTable []ShortFlowBufferPoint

// Table implements Result.
func (t ShortFlowBufferTable) Table() string {
	return tabulate(func(tw *tabwriter.Writer) {
		fmt.Fprintln(tw, "Rate\tFlowLen\tMinBuffer\tModel(P=0.025)\tBaseAFCT\tAFCT@Min")
		for _, p := range t {
			fmt.Fprintf(tw, "%v\t%d\t%d\t%.1f\t%v\t%v\n",
				p.Rate, p.FlowLen, p.MinBuffer, p.ModelBuffer,
				roundMS(p.BaselineAFCT), roundMS(p.AchievedAFCT))
		}
	})
}

// WriteJSON implements Result.
func (t ShortFlowBufferTable) WriteJSON(w io.Writer) error { return writeJSON(w, t) }

// Table implements Result.
func (r AFCTComparisonResult) Table() string {
	return tabulate(func(tw *tabwriter.Writer) {
		fmt.Fprintf(tw, "BDP = %d packets\n", r.BDPPackets)
		fmt.Fprintln(tw, "Buffer\tPkts\tAFCT\tUtil\tMeanQueue\tFlows")
		for _, o := range []AFCTOutcome{r.RuleThumb, r.SqrtRule} {
			fmt.Fprintf(tw, "%s\t%d\t%v\t%.1f%%\t%.0f\t%d\n",
				o.Label, o.BufferPackets, roundMS(o.AFCT), 100*o.Utilization, o.MeanQueue, o.Completed)
		}
	})
}

// WriteJSON implements Result.
func (r AFCTComparisonResult) WriteJSON(w io.Writer) error { return writeJSON(w, r) }

// Table implements Result.
func (o AFCTOutcome) Table() string {
	return tabulate(func(tw *tabwriter.Writer) {
		fmt.Fprintln(tw, "Buffer\tPkts\tAFCT\tUtil\tMeanQueue\tFlows")
		fmt.Fprintf(tw, "%s\t%d\t%v\t%.1f%%\t%.0f\t%d\n",
			o.Label, o.BufferPackets, roundMS(o.AFCT), 100*o.Utilization, o.MeanQueue, o.Completed)
	})
}

// WriteJSON implements Result.
func (o AFCTOutcome) WriteJSON(w io.Writer) error { return writeJSON(w, o) }

// ProductionTable is the Fig. 11 dataset.
type ProductionTable []ProductionRow

// Table implements Result.
func (t ProductionTable) Table() string {
	return tabulate(func(tw *tabwriter.Writer) {
		fmt.Fprintln(tw, "Buffer\tRTTxC/sqrt(n)\tUtil(sim)\tUtil(model)\tConcurrent\tAFCT")
		for _, r := range t {
			fmt.Fprintf(tw, "%d\t%.1fx\t%.2f%%\t%.2f%%\t%.0f\t%v\n",
				r.Buffer, r.SqrtRuleRatio, 100*r.Utilization, 100*r.ModelUtil,
				r.MeanConcurrent, roundMS(r.AFCT))
		}
	})
}

// WriteJSON implements Result.
func (t ProductionTable) WriteJSON(w io.Writer) error { return writeJSON(w, t) }

// SyncTable is the synchronization-ablation dataset.
type SyncTable []SyncPoint

// Table implements Result.
func (t SyncTable) Table() string {
	return tabulate(func(tw *tabwriter.Writer) {
		fmt.Fprintln(tw, "Flows\tSyncIndex\tKS\tAggMean\tAggStdDev")
		for _, p := range t {
			fmt.Fprintf(tw, "%d\t%.2f\t%.4f\t%.0f\t%.1f\n", p.N, p.SyncIndex, p.KS, p.Mean, p.StdDev)
		}
	})
}

// WriteJSON implements Result.
func (t SyncTable) WriteJSON(w io.Writer) error { return writeJSON(w, t) }

// PacingTable is the pacing-ablation dataset.
type PacingTable []PacingPoint

// Table implements Result.
func (t PacingTable) Table() string {
	return tabulate(func(tw *tabwriter.Writer) {
		fmt.Fprintln(tw, "Buffer\tPkts\tUtil(unpaced)\tUtil(paced)")
		for _, p := range t {
			fmt.Fprintf(tw, "%.2fx\t%d\t%.2f%%\t%.2f%%\n",
				p.Factor, p.BufferPackets, 100*p.UtilUnpaced, 100*p.UtilPaced)
		}
	})
}

// WriteJSON implements Result.
func (t PacingTable) WriteJSON(w io.Writer) error { return writeJSON(w, t) }

// SmoothingTable is the access-link smoothing dataset; TailAt records the
// occupancy threshold the tail probabilities were measured against.
type SmoothingTable struct {
	TailAt int
	Points []SmoothingPoint
}

// Table implements Result.
func (t SmoothingTable) Table() string {
	return tabulate(func(tw *tabwriter.Writer) {
		fmt.Fprintf(tw, "P(Q >= %d):\n", t.TailAt)
		fmt.Fprintln(tw, "Access\tMeasured\tM/G/1 bound\tM/D/1 bound\tMeanQueue")
		for _, p := range t.Points {
			fmt.Fprintf(tw, "%.2gx\t%.4f\t%.4f\t%.4f\t%.1f\n",
				p.AccessRatio, p.TailProb, p.ModelMG1, p.ModelMD1, p.MeanQueue)
		}
	})
}

// WriteJSON implements Result.
func (t SmoothingTable) WriteJSON(w io.Writer) error { return writeJSON(w, t) }

// VariantTable is the congestion-control-ablation dataset.
type VariantTable []VariantPoint

// Table implements Result.
func (t VariantTable) Table() string {
	return tabulate(func(tw *tabwriter.Writer) {
		fmt.Fprintln(tw, "Variant\tUtil\tLoss\tTimeouts\tRetransmits")
		for _, p := range t {
			fmt.Fprintf(tw, "%v\t%.2f%%\t%.2f%%\t%d\t%.2f%%\n",
				p.Variant, 100*p.Utilization, 100*p.LossRate, p.Timeouts, 100*p.Retransmit)
		}
	})
}

// WriteJSON implements Result.
func (t VariantTable) WriteJSON(w io.Writer) error { return writeJSON(w, t) }

// RTTSpreadTable is the RTT-heterogeneity ablation dataset.
type RTTSpreadTable []RTTSpreadPoint

// Table implements Result.
func (t RTTSpreadTable) Table() string {
	return tabulate(func(tw *tabwriter.Writer) {
		fmt.Fprintln(tw, "RTTSpread\tUtil\tSyncIndex")
		for _, p := range t {
			fmt.Fprintf(tw, "%v\t%.2f%%\t%.2f\n", p.Spread, 100*p.Utilization, p.SyncIndex)
		}
	})
}

// WriteJSON implements Result.
func (t RTTSpreadTable) WriteJSON(w io.Writer) error { return writeJSON(w, t) }

// CoDelTable is the CoDel-vs-drop-tail comparison dataset.
type CoDelTable []CoDelRow

// Table implements Result.
func (t CoDelTable) Table() string {
	return tabulate(func(tw *tabwriter.Writer) {
		fmt.Fprintln(tw, "Design\tPkts\tUtil\tP99 delay\tLoss")
		for _, r := range t {
			fmt.Fprintf(tw, "%s\t%d\t%.2f%%\t%.1fms\t%.2f%%\n",
				r.Label, r.BufferPackets, 100*r.Utilization,
				r.QueueDelayP99.Milliseconds(), 100*r.LossRate)
		}
	})
}

// WriteJSON implements Result.
func (t CoDelTable) WriteJSON(w io.Writer) error { return writeJSON(w, t) }

// Table implements Result.
func (r HarpoonResult) Table() string {
	return tabulate(func(tw *tabwriter.Writer) {
		fmt.Fprintf(tw, "closed-loop sessions; calibrated concurrent flows n = %d, RTTxC/sqrt(n) = %d pkts\n",
			r.CalibratedN, r.SqrtRule)
		fmt.Fprintln(tw, "Buffer\tPkts\tUtil\tActiveFlows\tTransfers")
		for _, row := range r.Rows {
			fmt.Fprintf(tw, "%.1fx\t%d\t%.2f%%\t%.0f\t%d\n",
				row.Factor, row.Buffer, 100*row.Utilization, row.MeanActive, row.Transfers)
		}
	})
}

// WriteJSON implements Result.
func (r HarpoonResult) WriteJSON(w io.Writer) error { return writeJSON(w, r) }

// Table implements Result.
func (r BackboneResult) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "default 1s buffer: %d packets; running at %.1f%% of it = %d packets "+
		"(RTTxC/sqrt(n) = %d)\n",
		r.OneSecondBuffer, 100*float64(r.SmallBuffer)/float64(r.OneSecondBuffer),
		r.SmallBuffer, r.SqrtRule)
	fmt.Fprintf(&sb, "utilization %.2f%% (degradation %.2f%%), loss %.2f%%\n",
		100*r.Small.Utilization, 100*r.UtilDegradation, 100*r.Small.LossRate)
	fmt.Fprintf(&sb, "queueing delay: mean %v, P99 %v (vs up to 1s with the default buffer)\n",
		r.Small.QueueDelayMean, r.Small.QueueDelayP99)
	return sb.String()
}

// WriteJSON implements Result.
func (r BackboneResult) WriteJSON(w io.Writer) error { return writeJSON(w, r) }

// Table implements Result.
func (r MultiHopResult) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "two bottlenecks, %d flows per link, buffer %d pkts each (1x sqrt rule)\n",
		r.FlowsPerLink, r.BufferPackets)
	fmt.Fprintf(&sb, "hop 1: %.2f%% utilization, %.2f%% loss\n", 100*r.Util[0], 100*r.LossRate[0])
	fmt.Fprintf(&sb, "hop 2: %.2f%% utilization, %.2f%% loss\n", 100*r.Util[1], 100*r.LossRate[1])
	fmt.Fprintf(&sb, "two-bottleneck flows' share of hop 1: %.1f%% (fair share 50%%)\n",
		100*r.CrossingShare)
	return sb.String()
}

// WriteJSON implements Result.
func (r MultiHopResult) WriteJSON(w io.Writer) error { return writeJSON(w, r) }

// Table implements Result.
func (r ECNResult) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "RED buffer %d pkts, %d flows\n", r.BufferPackets, r.Drop.N)
	fmt.Fprintf(&sb, "RED drop: util %.2f%%, loss %.2f%%, timeouts %d\n",
		100*r.Drop.Utilization, 100*r.Drop.LossRate, r.Drop.Timeouts)
	fmt.Fprintf(&sb, "RED mark (ECN): util %.2f%%, loss %.2f%%, timeouts %d\n",
		100*r.Mark.Utilization, 100*r.Mark.LossRate, r.Mark.Timeouts)
	return sb.String()
}

// WriteJSON implements Result.
func (r ECNResult) WriteJSON(w io.Writer) error { return writeJSON(w, r) }

// Table implements Result.
func (r LongLivedResult) Table() string {
	return tabulate(func(tw *tabwriter.Writer) {
		fmt.Fprintln(tw, "Flows\tBuffer\tUtil\tLoss\tMeanQueue\tRetrans\tTimeouts\tQDelayMean\tQDelayP99\tFairness")
		fmt.Fprintf(tw, "%d\t%d\t%.2f%%\t%.2f%%\t%.1f\t%.2f%%\t%d\t%v\t%v\t%.3f\n",
			r.N, r.BufferPackets, 100*r.Utilization, 100*r.LossRate, r.MeanQueue,
			100*r.RetransmitFraction, r.Timeouts,
			roundMS(r.QueueDelayMean), roundMS(r.QueueDelayP99), r.Fairness)
	})
}

// WriteJSON implements Result.
func (r LongLivedResult) WriteJSON(w io.Writer) error { return writeJSON(w, r) }

// Table implements Result.
func (r ReplicatedResult) Table() string {
	return tabulate(func(tw *tabwriter.Writer) {
		fmt.Fprintln(tw, "Replicas\tMeanUtil\tStdDev\tMin\tMax")
		fmt.Fprintf(tw, "%d\t%.2f%%\t%.4f\t%.2f%%\t%.2f%%\n",
			r.Replicas, 100*r.MeanUtilization, r.StdDev, 100*r.Min, 100*r.Max)
	})
}

// WriteJSON implements Result.
func (r ReplicatedResult) WriteJSON(w io.Writer) error { return writeJSON(w, r) }

// Table implements Result.
func (r TraceResult) Table() string {
	return tabulate(func(tw *tabwriter.Writer) {
		fmt.Fprintln(tw, "Completed\tCensored\tAFCT\tUtil")
		fmt.Fprintf(tw, "%d\t%d\t%v\t%.2f%%\n",
			r.Completed, r.Censored, roundMS(r.AFCT), 100*r.Utilization)
	})
}

// WriteJSON implements Result.
func (r TraceResult) WriteJSON(w io.Writer) error { return writeJSON(w, r) }

// Table implements Result. The cwnd/queue time series are omitted — they
// are exported as CSV/SVG by cmd/paperexp instead.
func (r SingleFlowResult) Table() string {
	return tabulate(func(tw *tabwriter.Writer) {
		fmt.Fprintln(tw, "BDP\tBuffer\tUtil\tMeanQueue\tMinQueue")
		fmt.Fprintf(tw, "%d\t%d\t%.2f%%\t%.1f\t%.0f\n",
			r.BDPPackets, r.BufferPackets, 100*r.Utilization, r.MeanQueue, r.MinQueueSeen)
	})
}

// WriteJSON implements Result. The sampled series are summarized by their
// lengths rather than dumped.
func (r SingleFlowResult) WriteJSON(w io.Writer) error {
	return writeJSON(w, struct {
		BDPPackets    int
		BufferPackets int
		Utilization   float64
		MeanQueue     float64
		MinQueueSeen  float64
		CwndSamples   int
		QueueSamples  int
	}{r.BDPPackets, r.BufferPackets, r.Utilization, r.MeanQueue, r.MinQueueSeen,
		r.Cwnd.Len(), r.Queue.Len()})
}

// Table implements Result: the Fig. 6 histogram as ASCII.
func (r WindowDistResult) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "n=%d buffer=%d pkts: aggregate window mean=%.1f stddev=%.1f KS=%.4f\n",
		r.N, r.BufferPackets, r.Mean, r.StdDev, r.KS)
	max := int64(0)
	for i := 0; i < r.Histogram.NumBins(); i++ {
		if _, c := r.Histogram.Bin(i); c > max {
			max = c
		}
	}
	if max == 0 {
		return sb.String()
	}
	for i := 0; i < r.Histogram.NumBins(); i++ {
		center, count := r.Histogram.Bin(i)
		bar := int(40 * count / max)
		fmt.Fprintf(&sb, "%8.1f |%s\n", center, strings.Repeat("#", bar))
	}
	return sb.String()
}

// WriteJSON implements Result. The histogram is flattened to (center,
// count) pairs; raw samples are omitted.
func (r WindowDistResult) WriteJSON(w io.Writer) error {
	type bin struct {
		Center float64
		Count  int64
	}
	var bins []bin
	for i := 0; i < r.Histogram.NumBins(); i++ {
		center, count := r.Histogram.Bin(i)
		bins = append(bins, bin{center, count})
	}
	return writeJSON(w, struct {
		N             int
		BufferPackets int
		Mean          float64
		StdDev        float64
		KS            float64
		CLTSigmaRatio float64
		Bins          []bin
	}{r.N, r.BufferPackets, r.Mean, r.StdDev, r.KS, r.CLTSigmaRatio, bins})
}
