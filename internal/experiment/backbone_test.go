package experiment

import (
	"testing"

	"bufsim/internal/units"
)

func TestRunBackboneSmallBufferNoDegradation(t *testing.T) {
	if testing.Short() {
		t.Skip("backbone-scale simulation")
	}
	res := RunBackbone(BackboneConfig{
		Seed:           1,
		BottleneckRate: 600 * units.Mbps,
		N:              600,
		Warmup:         8 * units.Second,
		Measure:        15 * units.Second,
	})
	// Structure: 1s x 600 Mb/s = 75000 packets; 0.5% = 375.
	if res.OneSecondBuffer != 75000 || res.SmallBuffer != 375 {
		t.Fatalf("buffer sizing wrong: %+v", res)
	}
	// §5.3: "no measurable degradation" — at this scale we accept < 3%.
	if res.UtilDegradation > 0.03 {
		t.Errorf("utilization degradation = %.2f%%, want < 3%%", 100*res.UtilDegradation)
	}
	// The latency win is the point: the worst queueing delay must be the
	// small buffer's drain time (~5 ms), three orders below the default
	// one-second buffer.
	maxDelay := units.TransmissionTime(1000*units.ByteSize(res.SmallBuffer), 600*units.Mbps)
	if res.Small.QueueDelayP99 > maxDelay+units.Millisecond {
		t.Errorf("P99 queueing delay %v exceeds buffer drain time %v",
			res.Small.QueueDelayP99, maxDelay)
	}
	if res.Small.QueueDelayP99 <= 0 {
		t.Error("queueing delay not measured")
	}
}

func TestQueueDelayPercentilesTrackBuffer(t *testing.T) {
	if testing.Short() {
		t.Skip("paired simulation runs")
	}
	base := scaledLongLived(30, 0)
	small := base
	small.BufferPackets = 30
	big := base
	big.BufferPackets = 250
	rs, rb := RunLongLived(small), RunLongLived(big)
	if rs.QueueDelayP99 >= rb.QueueDelayP99 {
		t.Errorf("P99 delay did not grow with buffer: %v vs %v",
			rs.QueueDelayP99, rb.QueueDelayP99)
	}
	if rs.QueueDelayMean > rs.QueueDelayP99 {
		t.Errorf("mean delay %v above P99 %v", rs.QueueDelayMean, rs.QueueDelayP99)
	}
	// P99 is bounded by the buffer drain time.
	drain := units.TransmissionTime(1000*30, 20*units.Mbps)
	if rs.QueueDelayP99 > drain+units.Millisecond {
		t.Errorf("P99 %v exceeds drain time %v", rs.QueueDelayP99, drain)
	}
}
