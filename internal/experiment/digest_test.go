package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"testing"

	"bufsim/internal/runcache"
	"bufsim/internal/units"
	"bufsim/internal/workload"
	"bufsim/internal/workload/profile"
)

// resultDigest canonicalizes a result via JSON and hashes it. Every field
// that reaches the digest is either an integer count, a units quantity
// (int64 nanoseconds) or a float64 produced by a deterministic sequence of
// operations, so the digest is bit-stable across runs on one platform and
// across kernel implementations that preserve event ordering.
func resultDigest(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// goldenDigestCases is shared by TestGoldenDigests (cache nil — plain
// simulation) and TestGoldenDigestsCached (cold store, then warm replay):
// the pinned digests must come out identical on all three paths.
var goldenDigestCases = []struct {
	name string
	want string
	run  func(cache *runcache.Store, shards int) any
}{
	{
		name: "long_lived_reno",
		want: "3d4617a738c64df2e222ca3ca2333300a0ffebd9c2be8ebdcde13a475a8d6c98",
		run: func(cache *runcache.Store, shards int) any {
			return RunLongLived(LongLivedConfig{
				Seed: 7, N: 24, BottleneckRate: 20 * units.Mbps,
				BufferPackets: 40,
				Warmup:        4 * units.Second, Measure: 8 * units.Second,
				// These digests were recorded when MeanQueue's
				// integration started at t=0; keep that epoch.
				MeanQueueIncludesWarmup: true,
				Cache:                   cache,
				Shards:                  shards,
			})
		},
	},
	{
		name: "long_lived_sack_paced_delack",
		want: "b5a656317af17dfa1ac4b229cd99e10ea5939682f5aef0ead952a59d21b89d47",
		run: func(cache *runcache.Store, shards int) any {
			return RunLongLived(LongLivedConfig{
				Seed: 11, N: 16, BottleneckRate: 20 * units.Mbps,
				BufferPackets: 25, Variant: 3, /* Sack */
				Paced: true, DelayedAck: true,
				Warmup: 4 * units.Second, Measure: 8 * units.Second,
				MeanQueueIncludesWarmup: true,
				Cache:                   cache,
				Shards:                  shards,
			})
		},
	},
	{
		name: "long_lived_red_ecn",
		want: "add72eca42d9e202e691005e4425cd7e85da6dbbe0048ec004e420a7366c35d1",
		run: func(cache *runcache.Store, shards int) any {
			return RunLongLived(LongLivedConfig{
				Seed: 3, N: 20, BottleneckRate: 20 * units.Mbps,
				BufferPackets: 30, UseRED: true, ECN: true,
				Warmup: 4 * units.Second, Measure: 8 * units.Second,
				MeanQueueIncludesWarmup: true,
				Cache:                   cache,
				Shards:                  shards,
			})
		},
	},
	{
		name: "long_lived_cubic",
		want: "ab78bc44d4975a329be3f3ec6741da5db68ee9fab99884d6ac46f400277c002a",
		run: func(cache *runcache.Store, shards int) any {
			return RunLongLived(LongLivedConfig{
				Seed: 13, N: 24, BottleneckRate: 20 * units.Mbps,
				BufferPackets: 40, Variant: 4, /* Cubic */
				Warmup: 4 * units.Second, Measure: 8 * units.Second,
				Cache: cache, Shards: shards,
			})
		},
	},
	{
		name: "long_lived_bbr",
		want: "0297c3f652b500fdf658e2897ab901e0bd099c9f9495a931b795e393fc53c5fd",
		run: func(cache *runcache.Store, shards int) any {
			return RunLongLived(LongLivedConfig{
				Seed: 17, N: 16, BottleneckRate: 20 * units.Mbps,
				BufferPackets: 30, Variant: 5, /* BBR */
				DelayedAck: true,
				Warmup:     4 * units.Second, Measure: 8 * units.Second,
				Cache: cache, Shards: shards,
			})
		},
	},
	{
		name: "single_flow_sawtooth",
		want: "b944849af08fc27334a6d438a21a7c1c3a3888914de021470ff0720238a5d273",
		run: func(cache *runcache.Store, shards int) any {
			return RunSingleFlow(SingleFlowConfig{
				BottleneckRate: 10 * units.Mbps, BufferFactor: 1,
				Warmup: 30 * units.Second, Measure: 40 * units.Second,
				Cache: cache, Shards: shards,
			})
		},
	},
	{
		name: "short_flows",
		want: "5d4523c64431bd9c5764512cf63f90d15d96c3c95ac360b9ab1651a9c012d714",
		run: func(cache *runcache.Store, shards int) any {
			afct, completed, censored := ShortFlowAFCT(ShortFlowRunConfig{
				Seed: 5, Rate: 20 * units.Mbps, Load: 0.7,
				FlowLength: 14, BufferPackets: 50,
				Warmup: 4 * units.Second, Measure: 10 * units.Second,
				Cache: cache, Shards: shards,
			})
			return map[string]any{"afct": afct, "completed": completed, "censored": censored}
		},
	},
	{
		name: "mixed_traffic",
		want: "b3b8bf33498a7f8cd472b6ca0dc6b242c644084b8efb24c54fcb1fc8978fe95f",
		run: func(cache *runcache.Store, shards int) any {
			return RunMixed(MixedConfig{
				Seed: 9, NLong: 12, ShortLoad: 0.15,
				Sizes:          workload.GeometricSize(10),
				BottleneckRate: 20 * units.Mbps, BufferPackets: 35,
				Warmup: 5 * units.Second, Measure: 10 * units.Second,
				MeanQueueIncludesWarmup: true,
				Cache:                   cache,
				Shards:                  shards,
			})
		},
	},
	{
		name: "profile_flashcrowd",
		want: "fa7d5874c5551439e82a093a0928c15f5e464cf2d2bd12a30aaa92e7cf1581e7",
		run: func(cache *runcache.Store, shards int) any {
			prof, err := profile.FlashCrowd.Profile().Compress(4)
			if err != nil {
				panic(err)
			}
			return RunFlashCrowd(FlashCrowdConfig{
				Seed: 21, BottleneckRate: 20 * units.Mbps,
				Stations: 20, Profile: prof, PeakFlows: 8,
				Buffers: []int{25, 100},
				Warmup:  2 * units.Second, Drain: 20 * units.Second,
				Cache: cache, Shards: shards,
			})
		},
	},
	{
		name: "trace_replay",
		want: "7290a2b5fb47831db7e58c781fe5fffa64b33d509eb6b618a7329c14fd81c949",
		run: func(cache *runcache.Store, shards int) any {
			flows := make([]workload.FlowSpec, 0, 60)
			for i := 0; i < 60; i++ {
				flows = append(flows, workload.FlowSpec{
					Start: units.Duration(i) * 200 * units.Millisecond,
					Size:  int64(2 + i%37),
				})
			}
			return RunTrace(TraceConfig{
				Seed: 2, Flows: flows,
				BottleneckRate: 10 * units.Mbps, BufferPackets: 30,
				Drain: 20 * units.Second,
				Cache: cache, Shards: shards,
			})
		},
	},
}

// TestGoldenDigests pins the exact results of a scaled-down slice of the
// experiment suite. These digests were recorded with the pre-pooling
// container/heap kernel; the pooled 4-ary-heap kernel must reproduce them
// bit for bit — that is the determinism contract of the rewrite. If a
// deliberate behaviour change invalidates them, re-record by copying the
// digests the failing run prints.
func TestGoldenDigests(t *testing.T) {
	for _, tc := range goldenDigestCases {
		t.Run(tc.name, func(t *testing.T) {
			got := resultDigest(t, tc.run(nil, 0))
			if got != tc.want {
				t.Errorf("digest = %s, want %s\n(a digest change means the kernel no longer reproduces the pre-rewrite packet schedule)", got, tc.want)
			}
		})
	}
}

// TestGoldenDigestsCached re-runs the pinned cases against a cache: the
// cold pass (simulate + store) and the warm pass (replay from disk) must
// both reproduce the exact digests TestGoldenDigests pins without one —
// the caching layer is not allowed to perturb a single bit.
func TestGoldenDigestsCached(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation runs")
	}
	store, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range goldenDigestCases {
		t.Run(tc.name, func(t *testing.T) {
			before := store.Stats()
			if got := resultDigest(t, tc.run(store, 0)); got != tc.want {
				t.Errorf("cold cached digest = %s, want %s", got, tc.want)
			}
			if got := resultDigest(t, tc.run(store, 0)); got != tc.want {
				t.Errorf("warm cached digest = %s, want %s", got, tc.want)
			}
			after := store.Stats()
			if after.Hits == before.Hits {
				t.Errorf("second run did not hit the cache (hits %d -> %d)", before.Hits, after.Hits)
			}
			if after.Puts == before.Puts {
				t.Errorf("first run did not store its result (puts %d -> %d)", before.Puts, after.Puts)
			}
		})
	}
}
