package experiment

import (
	"math"

	"bufsim/internal/audit"
	"bufsim/internal/runcache"
	"bufsim/internal/units"
)

// sawtoothCoV is the coefficient of variation of a single idealized Reno
// sawtooth (uniform between Wmax/2 and Wmax): sigma/mean = (1/sqrt(12)) *
// (Wmax/2) / (3Wmax/4) = 1/sqrt(27).
const sawtoothCoV = 0.19245008972987526 // 1/sqrt(27)

// SyncConfig studies the §3 synchronization claim: with few flows the
// sawtooths march in lockstep and the aggregate window swings like one
// giant flow; above a few hundred flows they desynchronize and the
// aggregate converges to the CLT's sqrt(n)-narrow Gaussian.
type SyncConfig struct {
	Seed int64

	Ns              []int
	BottleneckRate  units.BitRate
	BottleneckDelay units.Duration
	RTTMin, RTTMax  units.Duration
	SegmentSize     units.ByteSize
	BufferFactor    float64 // multiple of RTTxC/sqrt(n)

	Warmup, Measure units.Duration

	// Audit, when non-nil, runs every point under the conservation-law
	// checker (see LongLivedConfig.Audit).
	Audit *audit.Auditor

	// Cache, when non-nil, memoizes the underlying runs (see
	// LongLivedConfig.Cache).
	Cache *runcache.Store
}

func (c SyncConfig) withDefaults() SyncConfig {
	if len(c.Ns) == 0 {
		c.Ns = []int{10, 50, 100, 250, 500}
	}
	if c.BottleneckRate == 0 {
		c.BottleneckRate = units.OC3
	}
	if c.BufferFactor == 0 {
		c.BufferFactor = 1.5
	}
	return c
}

// SyncPoint is one n's synchronization measurement.
type SyncPoint struct {
	N int
	// SyncIndex is the measured aggregate-window coefficient of
	// variation divided by the fully-desynchronized CLT prediction
	// (sawtoothCoV / sqrt(n)). 1 means independent flows; sqrt(n) means
	// perfect lockstep.
	SyncIndex float64
	// KS is the normality distance of the aggregate window.
	KS float64
	// StdDev and Mean describe the aggregate window process.
	StdDev, Mean float64
}

// RunSyncAblation measures the synchronization index across flow counts.
func RunSyncAblation(cfg SyncConfig) SyncTable {
	cfg = cfg.withDefaults()
	var out []SyncPoint
	for _, n := range cfg.Ns {
		r := RunWindowDist(WindowDistConfig{
			Seed:            cfg.Seed + int64(n),
			N:               n,
			BottleneckRate:  cfg.BottleneckRate,
			BottleneckDelay: cfg.BottleneckDelay,
			RTTMin:          cfg.RTTMin,
			RTTMax:          cfg.RTTMax,
			SegmentSize:     cfg.SegmentSize,
			BufferFactor:    cfg.BufferFactor,
			Warmup:          cfg.Warmup,
			Measure:         cfg.Measure,
			Audit:           cfg.Audit,
			Cache:           cfg.Cache,
		})
		cov := 0.0
		if r.Mean > 0 {
			cov = r.StdDev / r.Mean
		}
		cltCoV := sawtoothCoV / math.Sqrt(float64(n))
		out = append(out, SyncPoint{
			N:         n,
			SyncIndex: cov / cltCoV,
			KS:        r.KS,
			StdDev:    r.StdDev,
			Mean:      r.Mean,
		})
	}
	return out
}
