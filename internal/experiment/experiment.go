// Package experiment reproduces the paper's evaluation: every figure and
// table in §5 has a driver here that builds the scenario, runs it, and
// returns the same rows or series the paper reports. The drivers are what
// cmd/paperexp and the repository benchmarks call.
//
// Scaling: every config carries its own rates, flow counts and durations,
// so tests can run scaled-down instances while the benchmarks run the
// published parameters.
package experiment

import (
	"context"
	"fmt"
	"math"
	"time"

	"bufsim/internal/audit"
	"bufsim/internal/metrics"
	"bufsim/internal/packet"
	"bufsim/internal/queue"
	"bufsim/internal/runcache"
	"bufsim/internal/sim"
	"bufsim/internal/stats"
	"bufsim/internal/tcp"
	"bufsim/internal/topology"
	"bufsim/internal/units"
	"bufsim/internal/workload"
)

// LongLivedConfig describes one long-lived-flow utilization run: n
// persistent TCP flows over a dumbbell with a given bottleneck buffer.
type LongLivedConfig struct {
	Seed int64

	N               int
	BottleneckRate  units.BitRate
	BottleneckDelay units.Duration
	RTTMin, RTTMax  units.Duration
	SegmentSize     units.ByteSize
	MaxWindow       int // 0: effectively unbounded
	BufferPackets   int

	// UseRED switches the bottleneck to RED with conventional thresholds
	// scaled to BufferPackets (the §5.1 "other queueing disciplines"
	// ablation).
	UseRED bool
	// ECN (requires UseRED) makes RED mark instead of drop and the
	// senders ECN-capable: congestion feedback without loss.
	ECN bool
	// UseCoDel switches the bottleneck to CoDel (5 ms target) with
	// BufferPackets as the physical capacity — the delay-managed
	// alternative to sizing the buffer at all.
	UseCoDel bool

	Warmup  units.Duration // excluded from measurement
	Measure units.Duration // measurement window

	// Variant selects the congestion-control flavour (Reno default).
	Variant    tcp.Variant
	DelayedAck bool
	// Paced enables sender pacing (the TR's small-buffer remedy).
	Paced bool

	// Metrics, when non-nil, receives the run's telemetry (scheduler,
	// bottleneck queue and link, TCP aggregates). Telemetry only observes:
	// the packet trace is identical with Metrics nil or set.
	Metrics *metrics.Registry

	// Audit, when non-nil, runs the scenario under the conservation-law
	// checker (see internal/audit): kernel, queues, links and TCP
	// endpoints report invariant violations into it. Like Metrics, audit
	// only observes — results are bit-identical with Audit nil or set.
	Audit *audit.Auditor

	// MeanQueueIncludesWarmup reverts MeanQueue to the legacy behaviour of
	// averaging the bottleneck occupancy from t=0 instead of from the end
	// of the warmup window. Only the pinned-digest determinism tests set
	// it; new callers want the unbiased measurement-window default.
	MeanQueueIncludesWarmup bool

	// Parallelism bounds worker goroutines when this config drives a
	// multi-run driver (RunLongLivedReplicated); 0 means the machine's
	// parallelism. A single RunLongLived is always one goroutine.
	Parallelism int

	// Cache, when non-nil, memoizes the run's result in the
	// content-addressed run cache: a repeat run with the same semantic
	// config replays the stored result instead of re-simulating. The
	// cache observes only — results are bit-identical with Cache nil or
	// set. Runs with Metrics or Audit attached always simulate (the
	// hooks need a live run) but still warm the cache.
	Cache *runcache.Store

	// Resume, with Cache set, continues the sweep checkpoint left by an
	// interrupted replicated run instead of starting a fresh record.
	Resume bool

	// Ctx, when non-nil, cancels a replicated sweep between points
	// (in-flight points finish). A single RunLongLived ignores it.
	Ctx context.Context

	// Shards requests sharded (parallel) kernel execution with the given
	// number of event shards (see topology.Config.Shards). Sharding is an
	// observer: results are bit-identical at every shard count, so like
	// Metrics and Parallelism the field is excluded from the cache key.
	Shards int
}

func (c LongLivedConfig) withDefaults() LongLivedConfig {
	if c.SegmentSize == 0 {
		c.SegmentSize = units.DefaultSegment
	}
	if c.BottleneckDelay == 0 {
		c.BottleneckDelay = 5 * units.Millisecond
	}
	if c.RTTMin == 0 {
		c.RTTMin = 60 * units.Millisecond
	}
	if c.RTTMax == 0 {
		c.RTTMax = 100 * units.Millisecond
	}
	if c.Warmup == 0 {
		c.Warmup = 20 * units.Second
	}
	if c.Measure == 0 {
		c.Measure = 40 * units.Second
	}
	return c
}

// LongLivedResult is the outcome of one long-lived run.
type LongLivedResult struct {
	N             int
	BufferPackets int
	// Utilization is the bottleneck busy fraction over the measurement
	// window — the paper's primary metric.
	Utilization float64
	// LossRate is the bottleneck drop fraction over the window.
	LossRate float64
	// MeanQueue is the time-averaged bottleneck occupancy in packets
	// (drop-tail runs only; 0 under RED).
	MeanQueue float64
	// RetransmitFraction is retransmitted segments / segments sent over
	// the window, across all senders: the efficiency cost of small
	// buffers the §5.1.1 loss-rate discussion predicts.
	RetransmitFraction float64
	// Timeouts across all senders during the whole run.
	Timeouts int64
	// QueueDelayMean and QueueDelayP99 are the per-packet bottleneck
	// queueing delays over the window — the latency cost of buffering,
	// the paper's second argument against overbuffering (§1.1).
	QueueDelayMean units.Duration
	QueueDelayP99  units.Duration
	// Fairness is Jain's index over per-flow segments sent in the
	// window (1 = perfectly even shares).
	Fairness float64
}

// redQueueHook returns a topology.Config.NewQueue constructor building a
// RED bottleneck with conventional thresholds scaled to bufferPkts (and
// optional ECN marking), drawing its drop randomness from redRNG. Every
// scenario that honours UseRED goes through this one helper so RED means
// the same thing everywhere.
func redQueueHook(bufferPkts int, segment units.ByteSize, rate units.BitRate, redRNG *sim.RNG, ecn bool) func() queue.Queue {
	if bufferPkts <= 0 {
		panic("experiment: UseRED requires BufferPackets > 0 (RED thresholds scale with the physical buffer)")
	}
	meanPkt := units.TransmissionTime(segment, rate)
	return func() queue.Queue {
		redCfg := queue.DefaultRED(bufferPkts, meanPkt, redRNG.Float64)
		redCfg.MarkECN = ecn
		return queue.NewRED(redCfg)
	}
}

// RunLongLived executes one long-lived-flow scenario. With cfg.Cache
// set, a previously computed result for the same semantic config is
// replayed from the cache instead of re-simulated.
func RunLongLived(cfg LongLivedConfig) LongLivedResult {
	cfg = cfg.withDefaults()
	return memoRun(cfg.Cache, "long-lived", cfg, cfg.Metrics != nil || cfg.Audit != nil, func() LongLivedResult {
		return runLongLived(cfg)
	})
}

// sharedGeneratorShards caps the shard count for scenarios driven by a
// dynamic flow generator (short flows, sessions, traces, profiles). Those
// generators mutate shared bookkeeping — active counts, flow records —
// from completion callbacks that fire in station context, so every
// station must live on one shard. Two shards is exactly that placement:
// the bottleneck on shard 0, all stations (and hence the whole generator)
// on shard 1. Long-lived-only scenarios have no such coupling and shard
// fully.
func sharedGeneratorShards(n int) int {
	if n > 2 {
		return 2
	}
	return n
}

// runLongLived is the uncached body of RunLongLived; cfg has defaults
// applied.
func runLongLived(cfg LongLivedConfig) LongLivedResult {
	wallStart := time.Now()
	sched := sim.NewScheduler()
	rng := sim.NewRNG(cfg.Seed)

	topoCfg := topology.Config{
		Sched:           sched,
		RNG:             rng.Fork(),
		BottleneckRate:  cfg.BottleneckRate,
		BottleneckDelay: cfg.BottleneckDelay,
		Buffer:          queue.PacketLimit(cfg.BufferPackets),
		Stations:        cfg.N,
		RTTMin:          cfg.RTTMin,
		RTTMax:          cfg.RTTMax,
		Auditor:         cfg.Audit,
		Shards:          cfg.Shards,
	}
	if cfg.ECN && !cfg.UseRED {
		panic("experiment: ECN requires UseRED (a marking-capable queue)")
	}
	if cfg.UseCoDel && cfg.UseRED {
		panic("experiment: UseCoDel and UseRED are mutually exclusive")
	}
	if cfg.UseCoDel {
		topoCfg.NewQueue = func() queue.Queue {
			return queue.NewCoDel(queue.CoDelConfig{Limit: queue.PacketLimit(cfg.BufferPackets)})
		}
	}
	if cfg.UseRED {
		topoCfg.NewQueue = redQueueHook(cfg.BufferPackets, cfg.SegmentSize, cfg.BottleneckRate, rng.Fork(), cfg.ECN)
	}
	d := topology.NewDumbbell(topoCfg)
	instrumentDumbbell(cfg.Metrics, sched, d)

	spec := tcp.Config{
		SegmentSize: cfg.SegmentSize,
		MaxWindow:   cfg.MaxWindow,
		Variant:     cfg.Variant,
		DelayedAck:  cfg.DelayedAck,
		Paced:       cfg.Paced,
		ECN:         cfg.ECN,
	}
	// Stagger starts across half the warmup so slow-start bursts do not
	// synchronize artificially.
	workload.StartLongLived(d, cfg.N, spec, rng.Fork(), cfg.Warmup/2)

	warmEnd := units.Epoch.Add(cfg.Warmup)
	sched.Run(warmEnd)
	if d.DropTail != nil && !cfg.MeanQueueIncludesWarmup {
		d.DropTail.ResetOccupancy(warmEnd)
	}
	// Record per-packet queueing delays from here on. The reservoir is
	// bounded to keep long runs flat in memory; beyond it we keep a
	// running mean only (P99 over the first million delays is plenty).
	var delays []float64
	var delaySum units.Duration
	var delayN int64
	d.Bottleneck.OnDequeue = func(_ *packet.Packet, queued units.Duration) {
		delaySum += queued
		delayN++
		if len(delays) < 1<<20 {
			delays = append(delays, float64(queued))
		}
	}
	busySnap := d.Bottleneck.BusyTime()
	statsSnap := d.Bottleneck.Queue().Stats()
	type sendSnap struct{ sent, rtx int64 }
	senderSnaps := make([]sendSnap, len(d.Flows()))
	for i, f := range d.Flows() {
		st := f.Sender.Stats()
		senderSnaps[i] = sendSnap{st.SegmentsSent, st.Retransmits}
	}

	end := warmEnd.Add(cfg.Measure)
	sched.Run(end)

	qs := d.Bottleneck.Queue().Stats()
	offered := (qs.EnqueuedPackets - statsSnap.EnqueuedPackets) + (qs.DroppedPackets - statsSnap.DroppedPackets)
	loss := 0.0
	if offered > 0 {
		loss = float64(qs.DroppedPackets-statsSnap.DroppedPackets) / float64(offered)
	}
	res := LongLivedResult{
		N:             cfg.N,
		BufferPackets: cfg.BufferPackets,
		Utilization:   d.Bottleneck.Utilization(busySnap, warmEnd),
		LossRate:      loss,
	}
	if d.DropTail != nil {
		res.MeanQueue = d.DropTail.MeanOccupancy(end)
	}
	var sent, rtx int64
	perFlow := make([]float64, len(d.Flows()))
	for i, f := range d.Flows() {
		st := f.Sender.Stats()
		res.Timeouts += st.Timeouts
		flowSent := st.SegmentsSent - senderSnaps[i].sent
		perFlow[i] = float64(flowSent)
		sent += flowSent
		rtx += st.Retransmits - senderSnaps[i].rtx
	}
	if sent > 0 {
		res.RetransmitFraction = float64(rtx) / float64(sent)
	}
	res.Fairness = stats.JainIndex(perFlow)
	if delayN > 0 {
		res.QueueDelayMean = delaySum / units.Duration(delayN)
		res.QueueDelayP99 = units.Duration(stats.Percentile(delays, 99))
	}
	observeWallTime(cfg.Metrics, wallStart, sched)
	return res
}

// SqrtRuleBuffer returns the paper's buffer recommendation for a config:
// MeanRTT x C / sqrt(n), in packets, never below 1.
func SqrtRuleBuffer(bdpPackets float64, n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("experiment: n=%d", n))
	}
	b := int(math.Round(bdpPackets / math.Sqrt(float64(n))))
	if b < 1 {
		b = 1
	}
	return b
}

// MeasuredUtilization is a convenience wrapper used by search loops.
func MeasuredUtilization(cfg LongLivedConfig, bufferPkts int) float64 {
	cfg.BufferPackets = bufferPkts
	return RunLongLived(cfg).Utilization
}

// ReplicatedResult aggregates one scenario across independent seeds.
type ReplicatedResult struct {
	Replicas        int
	MeanUtilization float64
	StdDev          float64
	Min, Max        float64
}

// RunLongLivedReplicated runs the scenario under k different seeds
// (cfg.Seed, cfg.Seed+1, ...) and reports utilization statistics — the
// error bars the single-run drivers omit. Replicas run through the
// sweep orchestrator: in parallel, cached per seed, and checkpointed.
func RunLongLivedReplicated(cfg LongLivedConfig, k int) ReplicatedResult {
	if k <= 0 {
		panic(fmt.Sprintf("experiment: replicas = %d", k))
	}
	utils := make([]float64, k)
	runSweep(sweepSpec{
		name: "replicated",
		cfg: struct {
			Base LongLivedConfig
			K    int
		}{cfg, k},
		cache:       cfg.Cache,
		resume:      cfg.Resume,
		ctx:         cfg.Ctx,
		parallelism: cfg.Parallelism,
		metrics:     cfg.Metrics,
	}, k, func(i int) {
		run := cfg
		run.Seed = cfg.Seed + int64(i)
		run.Metrics = nil // per-replica telemetry would race; stats go to cfg.Metrics post-sweep
		utils[i] = RunLongLived(run).Utilization
	})
	var w stats.Welford
	for _, u := range utils {
		w.Add(u)
	}
	return ReplicatedResult{
		Replicas:        k,
		MeanUtilization: w.Mean(),
		StdDev:          w.StdDev(),
		Min:             w.Min(),
		Max:             w.Max(),
	}
}

// MinBufferForUtilization finds the smallest buffer (packets) achieving
// target utilization for the given long-lived scenario, by bisection on
// [1, hi]. Utilization is noisy, so the search treats the response as
// monotone and uses a single run per probe; callers choose Measure long
// enough for the noise floor they care about.
func MinBufferForUtilization(cfg LongLivedConfig, target float64, hi int) int {
	if hi < 2 {
		panic("experiment: search upper bound too small")
	}
	lo := 1
	if MeasuredUtilization(cfg, lo) >= target {
		return lo
	}
	if MeasuredUtilization(cfg, hi) < target {
		return hi // not achievable within bound; report the bound
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if MeasuredUtilization(cfg, mid) >= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// normalPDF is the standard normal density.
func normalPDF(z float64) float64 {
	return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
}

// fitNormal returns the sample mean and standard deviation.
func fitNormal(sample []float64) (mean, sd float64) {
	var w stats.Welford
	for _, v := range sample {
		w.Add(v)
	}
	return w.Mean(), w.StdDev()
}
