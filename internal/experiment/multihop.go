package experiment

import (
	"bufsim/internal/audit"
	"bufsim/internal/queue"
	"bufsim/internal/runcache"
	"bufsim/internal/sim"
	"bufsim/internal/tcp"
	"bufsim/internal/topology"
	"bufsim/internal/units"
)

// MultiHopConfig tests the paper's single-congestion-point assumption
// (§5.1): a two-hop parking lot where both links are bottlenecks, each
// buffered by the sqrt(n) rule for the flows crossing it. One third of
// the flows cross both links (and therefore see two congestion points —
// the case the paper assumes away); the rest load one hop each.
type MultiHopConfig struct {
	Seed int64

	LinkRate       units.BitRate
	NPerGroup      int // flows crossing both, hop 1 only, hop 2 only
	RTTMin, RTTMax units.Duration
	SegmentSize    units.ByteSize

	// BufferFactor scales each link's buffer relative to
	// RTTxC/sqrt(flows crossing that link).
	BufferFactor float64

	Warmup, Measure units.Duration

	// Audit, when non-nil, runs the chain under the conservation-law
	// checker (see LongLivedConfig.Audit).
	Audit *audit.Auditor

	// Cache, when non-nil, memoizes the result (see
	// LongLivedConfig.Cache).
	Cache *runcache.Store
}

func (c MultiHopConfig) withDefaults() MultiHopConfig {
	if c.LinkRate == 0 {
		c.LinkRate = 40 * units.Mbps
	}
	if c.NPerGroup == 0 {
		c.NPerGroup = 100
	}
	if c.RTTMin == 0 {
		c.RTTMin = 60 * units.Millisecond
	}
	if c.RTTMax == 0 {
		c.RTTMax = 140 * units.Millisecond
	}
	if c.SegmentSize == 0 {
		c.SegmentSize = units.DefaultSegment
	}
	if c.BufferFactor == 0 {
		c.BufferFactor = 1
	}
	if c.Warmup == 0 {
		c.Warmup = 20 * units.Second
	}
	if c.Measure == 0 {
		c.Measure = 40 * units.Second
	}
	return c
}

// MultiHopResult summarizes the two-bottleneck run.
type MultiHopResult struct {
	BufferPackets int // per link
	FlowsPerLink  int
	Util          [2]float64
	LossRate      [2]float64
	// CrossingShare is the crossing group's fraction of hop-1 delivered
	// segments; with perfect fairness it is 0.5 (they are half of each
	// link's flows). TCP's known multi-bottleneck bias pushes it lower.
	CrossingShare float64
}

// RunMultiHop executes the two-bottleneck scenario. With cfg.Cache set
// the result is memoized.
func RunMultiHop(cfg MultiHopConfig) MultiHopResult {
	cfg = cfg.withDefaults()
	return memoRun(cfg.Cache, "multihop", cfg, cfg.Audit != nil, func() MultiHopResult {
		return runMultiHop(cfg)
	})
}

// runMultiHop is the uncached body of RunMultiHop; cfg has defaults
// applied.
func runMultiHop(cfg MultiHopConfig) MultiHopResult {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(cfg.Seed)

	meanRTT := (cfg.RTTMin + cfg.RTTMax) / 2
	bdp := units.PacketsInFlight(cfg.LinkRate, meanRTT, cfg.SegmentSize)
	perLink := 2 * cfg.NPerGroup // crossing + local flows on each link
	buffer := int(cfg.BufferFactor * float64(SqrtRuleBuffer(float64(bdp), perLink)))
	if buffer < 1 {
		buffer = 1
	}

	p := topology.NewParkingLot(topology.ParkingLotConfig{
		Sched:   sched,
		Rates:   []units.BitRate{cfg.LinkRate, cfg.LinkRate},
		Delays:  []units.Duration{5 * units.Millisecond, 5 * units.Millisecond},
		Buffers: []queue.Limit{queue.PacketLimit(buffer), queue.PacketLimit(buffer)},
		Auditor: cfg.Audit,
	})

	rtt := func() units.Duration {
		return units.Duration(rng.Uniform(float64(cfg.RTTMin), float64(cfg.RTTMax)))
	}
	spec := tcp.Config{SegmentSize: cfg.SegmentSize}
	var crossing []*topology.PathFlow
	for i := 0; i < cfg.NPerGroup; i++ {
		for _, path := range [][2]int{{0, 2}, {0, 1}, {1, 2}} {
			f := p.AddFlow(path[0], path[1], rtt(), spec)
			if path == [2]int{0, 2} {
				crossing = append(crossing, f)
			}
			start := units.Epoch.Add(units.Duration(rng.Uniform(0, float64(cfg.Warmup/2))))
			sched.PostAt(start, f.Sender, tcp.OpStart, nil)
		}
	}

	warmEnd := units.Epoch.Add(cfg.Warmup)
	sched.Run(warmEnd)
	var busy [2]units.Duration
	var qs [2]queue.Stats
	for i := range p.Links {
		busy[i] = p.Links[i].BusyTime()
		qs[i] = p.Links[i].Queue().Stats()
	}
	crossSnap := make([]int64, len(crossing))
	for i, f := range crossing {
		crossSnap[i] = f.Sender.Stats().SegmentsSent
	}
	hop1Snap := p.Links[0].DeliveredPackets()

	sched.Run(warmEnd.Add(cfg.Measure))

	res := MultiHopResult{BufferPackets: buffer, FlowsPerLink: perLink}
	for i := range p.Links {
		res.Util[i] = p.Links[i].Utilization(busy[i], warmEnd)
		now := p.Links[i].Queue().Stats()
		offered := (now.EnqueuedPackets - qs[i].EnqueuedPackets) + (now.DroppedPackets - qs[i].DroppedPackets)
		if offered > 0 {
			res.LossRate[i] = float64(now.DroppedPackets-qs[i].DroppedPackets) / float64(offered)
		}
	}
	var crossSent int64
	for i, f := range crossing {
		crossSent += f.Sender.Stats().SegmentsSent - crossSnap[i]
	}
	if hop1 := p.Links[0].DeliveredPackets() - hop1Snap; hop1 > 0 {
		res.CrossingShare = float64(crossSent) / float64(hop1)
	}
	return res
}
