package experiment

import (
	"time"

	"bufsim/internal/audit"
	"bufsim/internal/metrics"
	"bufsim/internal/queue"
	"bufsim/internal/runcache"
	"bufsim/internal/sim"
	"bufsim/internal/tcp"
	"bufsim/internal/topology"
	"bufsim/internal/trace"
	"bufsim/internal/units"
)

// SingleFlowConfig reproduces the paper's Figs. 2–5: one long-lived TCP
// flow through a bottleneck whose buffer is a multiple of the
// bandwidth-delay product.
type SingleFlowConfig struct {
	// Seed feeds the randomized queue discipline when UseRED is set; a
	// plain drop-tail single-flow run is fully deterministic and ignores
	// it.
	Seed int64

	BottleneckRate units.BitRate
	RTT            units.Duration // two-way propagation (2*Tp)
	SegmentSize    units.ByteSize

	// BufferFactor sizes the buffer as BufferFactor x (RTT x C):
	// 1.0 is Fig. 3 (rule of thumb), <1 is Fig. 4 (underbuffered),
	// >1 is Fig. 5 (overbuffered).
	BufferFactor float64

	Warmup, Measure units.Duration
	SampleEvery     units.Duration

	// Variant, DelayedAck and Paced select the sender's congestion-control
	// behaviour (default: plain ACK-clocked Reno, the paper's setup).
	Variant    tcp.Variant
	DelayedAck bool
	Paced      bool
	// UseRED switches the bottleneck to Random Early Detection sized to
	// the same buffer — the sawtooth under early, randomized drops.
	UseRED bool

	// Metrics, when non-nil, receives the run's telemetry (see
	// LongLivedConfig.Metrics).
	Metrics *metrics.Registry

	// Audit, when non-nil, runs the scenario under the conservation-law
	// checker (see LongLivedConfig.Audit).
	Audit *audit.Auditor

	// Cache, when non-nil, memoizes the result, time series included
	// (see LongLivedConfig.Cache).
	Cache *runcache.Store

	// Shards requests sharded kernel execution (see
	// LongLivedConfig.Shards). With one station the effective count is at
	// most two (bottleneck shard + station shard).
	Shards int
}

func (c SingleFlowConfig) withDefaults() SingleFlowConfig {
	if c.BottleneckRate == 0 {
		c.BottleneckRate = 10 * units.Mbps
	}
	if c.RTT == 0 {
		c.RTT = 100 * units.Millisecond
	}
	if c.SegmentSize == 0 {
		c.SegmentSize = units.DefaultSegment
	}
	if c.BufferFactor == 0 {
		c.BufferFactor = 1
	}
	// A single flow's congestion-avoidance cycle is long (the window
	// climbs one segment per RTT from Wmax/2 back to Wmax), and the
	// initial slow-start overshoot collapses ssthresh far below the BDP,
	// so the first ~minute is transient. Defaults sit well past it.
	if c.Warmup == 0 {
		c.Warmup = 100 * units.Second
	}
	if c.Measure == 0 {
		c.Measure = 200 * units.Second
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 10 * units.Millisecond
	}
	return c
}

// SingleFlowResult carries the Fig. 2/3 time series plus summary metrics.
type SingleFlowResult struct {
	BDPPackets    int
	BufferPackets int
	Utilization   float64
	MeanQueue     float64 // packets, time-averaged over the measurement window
	MinQueueSeen  float64 // smallest sampled occupancy in the window
	Cwnd          *trace.Series
	Queue         *trace.Series
}

// RunSingleFlow executes the Fig. 2–5 scenario. With cfg.Cache set the
// result is memoized.
func RunSingleFlow(cfg SingleFlowConfig) SingleFlowResult {
	cfg = cfg.withDefaults()
	return memoRun(cfg.Cache, "single-flow", cfg, cfg.Metrics != nil || cfg.Audit != nil, func() SingleFlowResult {
		return runSingleFlow(cfg)
	})
}

// runSingleFlow is the uncached body of RunSingleFlow; cfg has defaults
// applied.
func runSingleFlow(cfg SingleFlowConfig) SingleFlowResult {
	wallStart := time.Now()
	sched := sim.NewScheduler()
	bdp := units.PacketsInFlight(cfg.BottleneckRate, cfg.RTT, cfg.SegmentSize)
	buffer := int(cfg.BufferFactor * float64(bdp))
	if buffer < 1 {
		buffer = 1
	}

	topoCfg := topology.Config{
		Sched:           sched,
		BottleneckRate:  cfg.BottleneckRate,
		BottleneckDelay: cfg.RTT / 4,
		Buffer:          queue.PacketLimit(buffer),
		Stations:        1,
		RTTMin:          cfg.RTT,
		RTTMax:          cfg.RTT,
		Auditor:         cfg.Audit,
		Shards:          cfg.Shards,
	}
	if cfg.UseRED {
		topoCfg.NewQueue = redQueueHook(buffer, cfg.SegmentSize, cfg.BottleneckRate, sim.NewRNG(cfg.Seed).Fork(), false)
	}
	d := topology.NewDumbbell(topoCfg)
	instrumentDumbbell(cfg.Metrics, sched, d)
	f := d.AddFlow(d.Station(0), tcp.Config{
		SegmentSize: cfg.SegmentSize,
		Variant:     cfg.Variant,
		DelayedAck:  cfg.DelayedAck,
		Paced:       cfg.Paced,
	})
	f.Sender.Start()

	cwnd := trace.NewSampler(sched, "cwnd_pkts", cfg.SampleEvery, f.Sender.Cwnd)
	qlen := trace.NewSampler(sched, "queue_pkts", cfg.SampleEvery,
		func() float64 { return float64(d.Bottleneck.Queue().Len()) })

	warmEnd := units.Epoch.Add(cfg.Warmup)
	sched.Run(warmEnd)
	busySnap := d.Bottleneck.BusyTime()
	end := warmEnd.Add(cfg.Measure)
	sched.Run(end)

	res := SingleFlowResult{
		BDPPackets:    bdp,
		BufferPackets: buffer,
		Utilization:   d.Bottleneck.Utilization(busySnap, warmEnd),
		Cwnd:          cwnd.Series().Window(cfg.Warmup.Seconds(), end.Sub(units.Epoch).Seconds()),
		Queue:         qlen.Series().Window(cfg.Warmup.Seconds(), end.Sub(units.Epoch).Seconds()),
	}
	res.MinQueueSeen = res.Queue.Min()
	for _, v := range res.Queue.Values {
		res.MeanQueue += v
	}
	if n := res.Queue.Len(); n > 0 {
		res.MeanQueue /= float64(n)
	}
	observeWallTime(cfg.Metrics, wallStart, sched)
	return res
}
