package experiment

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"bufsim/internal/units"
	"bufsim/internal/workload/profile"
)

// update rewrites the golden tables instead of comparing against them:
//
//	go test ./internal/experiment -run TestGoldenTables -update
//
// Re-record only for a deliberate behaviour change, and say why in the
// commit.
var update = flag.Bool("update", false, "rewrite testdata/golden files")

// goldenCases are scaled-down runs of the table-producing experiments,
// stored field by field under testdata/golden. Where TestGoldenDigests
// pins one opaque hash per result, these pin every value, so a
// regression names the exact field (and table row) that moved.
var goldenCases = []struct {
	name string
	run  func() any
}{
	{
		name: "fig2_single_flow",
		run: func() any {
			return RunSingleFlow(SingleFlowConfig{
				BottleneckRate: 10 * units.Mbps, BufferFactor: 1,
				Warmup: 30 * units.Second, Measure: 40 * units.Second,
				// Coarse sampling keeps the golden file small; the pinned
				// digest in digest_test.go covers the fine-grained series.
				SampleEvery: 200 * units.Millisecond,
			})
		},
	},
	{
		name: "fig8_short_flow_buffer",
		run: func() any {
			return RunShortFlowBuffer(ShortFlowBufferConfig{
				Seed:   1,
				Rates:  []units.BitRate{20 * units.Mbps},
				Warmup: 5 * units.Second, Measure: 15 * units.Second,
			})
		},
	},
	{
		name: "shortflow_afct",
		run: func() any {
			afct, completed, censored := ShortFlowAFCT(ShortFlowRunConfig{
				Seed: 5, Rate: 20 * units.Mbps, Load: 0.7,
				FlowLength: 14, BufferPackets: 50,
				Warmup: 4 * units.Second, Measure: 10 * units.Second,
			})
			return map[string]any{"afct": afct, "completed": completed, "censored": censored}
		},
	},
	{
		name: "flashcrowd_table",
		run: func() any {
			prof, err := profile.FlashCrowd.Profile().Compress(4)
			if err != nil {
				panic(err)
			}
			return RunFlashCrowd(FlashCrowdConfig{
				Seed: 21, BottleneckRate: 20 * units.Mbps,
				Stations: 20, Profile: prof, PeakFlows: 8,
				Buffers: []int{25, 100},
				Warmup:  2 * units.Second, Drain: 20 * units.Second,
			})
		},
	},
	{
		name: "codel_table",
		run: func() any {
			return RunCoDel(CoDelConfig{
				Seed: 1, N: 100, BottleneckRate: 40 * units.Mbps,
				Warmup: 10 * units.Second, Measure: 20 * units.Second,
			})
		},
	},
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".json")
}

// TestGoldenTables regenerates each scaled-down table and compares it
// field by field against its checked-in JSON.
func TestGoldenTables(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation runs")
	}
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := json.MarshalIndent(tc.run(), "", "  ")
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			got = append(got, '\n')
			path := goldenPath(tc.name)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (record with -update)", err)
			}
			var wantV, gotV any
			if err := json.Unmarshal(want, &wantV); err != nil {
				t.Fatalf("golden file: %v", err)
			}
			if err := json.Unmarshal(got, &gotV); err != nil {
				t.Fatalf("regenerated result: %v", err)
			}
			diffJSON(t, tc.name, wantV, gotV)
		})
	}
}

// diffJSON walks two decoded JSON values in parallel and reports every
// leaf that differs by its full path, so a golden failure reads as
// "codel_table[2].Utilization: golden 0.9487, got 0.9981" rather than a
// binary mismatch.
func diffJSON(t *testing.T, path string, want, got any) {
	t.Helper()
	switch w := want.(type) {
	case map[string]any:
		g, ok := got.(map[string]any)
		if !ok {
			t.Errorf("%s: golden has object, got %T", path, got)
			return
		}
		for k, wv := range w {
			gv, present := g[k]
			if !present {
				t.Errorf("%s.%s: field dropped from result (re-record with -update if deliberate)", path, k)
				continue
			}
			diffJSON(t, path+"."+k, wv, gv)
		}
		for k := range g {
			if _, present := w[k]; !present {
				t.Errorf("%s.%s: new field absent from golden file (re-record with -update)", path, k)
			}
		}
	case []any:
		g, ok := got.([]any)
		if !ok {
			t.Errorf("%s: golden has array, got %T", path, got)
			return
		}
		if len(w) != len(g) {
			t.Errorf("%s: golden has %d elements, got %d", path, len(w), len(g))
			return
		}
		for i := range w {
			diffJSON(t, fmt.Sprintf("%s[%d]", path, i), w[i], g[i])
		}
	default:
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: golden %v, got %v", path, want, got)
		}
	}
}
