package experiment

import (
	"testing"

	"bufsim/internal/units"
	"bufsim/internal/workload"
)

func TestRunHarpoonMatchesFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("five closed-loop simulations")
	}
	res := RunHarpoon(HarpoonConfig{
		Seed:           1,
		BottleneckRate: 40 * units.Mbps,
		Sessions:       500, // ~1.5x the link's capacity in offered demand
		Sizes:          workload.ParetoSize{Shape: 1.2, Min: 10, Max: 5000},
		MeanThink:      2 * units.Second,
		Warmup:         15 * units.Second,
		Measure:        25 * units.Second,
	})
	// Overload: the emergent concurrent-flow count is large.
	if res.CalibratedN < 100 {
		t.Fatalf("CalibratedN = %d, want an overloaded link", res.CalibratedN)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Fig. 10's shape under closed-loop traffic: high at 0.5x, ~full from
	// 1x up, monotone.
	for i, r := range res.Rows {
		if i > 0 && r.Utilization < res.Rows[i-1].Utilization-0.02 {
			t.Errorf("utilization not monotone: %+v", res.Rows)
		}
	}
	if res.Rows[0].Utilization < 0.9 {
		t.Errorf("0.5x row = %v, want >= 0.9", res.Rows[0].Utilization)
	}
	if res.Rows[1].Utilization < 0.97 {
		t.Errorf("1x row = %v, want >= 0.97", res.Rows[1].Utilization)
	}
	if res.Rows[2].Utilization < 0.99 {
		t.Errorf("2x row = %v, want ~1", res.Rows[2].Utilization)
	}
	// Every row keeps the session machine running.
	for _, r := range res.Rows {
		if r.Transfers < 500 {
			t.Errorf("row %.1fx completed only %d transfers", r.Factor, r.Transfers)
		}
	}
}
