package experiment

import (
	"context"
	"math"

	"bufsim/internal/audit"
	"bufsim/internal/runcache"
	"bufsim/internal/units"
)

// RTTSpreadConfig probes §3's desynchronization mechanism directly:
// "small variations in RTT or processing time are sufficient to prevent
// synchronization". We hold everything fixed (n flows, 1x sqrt-rule
// buffer) and sweep only the width of the RTT distribution, from
// perfectly homogeneous (a synchronization greenhouse) to the paper's
// heterogeneous regime, measuring utilization and the aggregate-window
// synchronization index.
type RTTSpreadConfig struct {
	Seed int64

	N              int
	BottleneckRate units.BitRate
	MeanRTT        units.Duration
	Spreads        []units.Duration // full widths of the RTT distribution
	SegmentSize    units.ByteSize
	BufferFactor   float64

	Warmup, Measure units.Duration

	// Parallelism bounds how many spreads simulate at once; 0 means the
	// machine's parallelism.
	Parallelism int

	// Audit, when non-nil, runs every spread under the conservation-law
	// checker; the Auditor is shared across the sweep's workers (it is
	// concurrency-safe). See LongLivedConfig.Audit.
	Audit *audit.Auditor

	// Cache memoizes each spread's two runs (window distribution and
	// long-lived); Resume continues an interrupted sweep's checkpoint;
	// Ctx cancels between spreads. See LongLivedConfig for semantics.
	Cache  *runcache.Store
	Resume bool
	Ctx    context.Context
}

func (c RTTSpreadConfig) withDefaults() RTTSpreadConfig {
	if c.N == 0 {
		c.N = 200
	}
	if c.BottleneckRate == 0 {
		c.BottleneckRate = units.OC3
	}
	if c.MeanRTT == 0 {
		c.MeanRTT = 100 * units.Millisecond
	}
	if len(c.Spreads) == 0 {
		c.Spreads = []units.Duration{
			0, 5 * units.Millisecond, 20 * units.Millisecond, 80 * units.Millisecond,
		}
	}
	if c.SegmentSize == 0 {
		c.SegmentSize = units.DefaultSegment
	}
	if c.BufferFactor == 0 {
		c.BufferFactor = 1
	}
	return c
}

// RTTSpreadPoint is one spread's outcome.
type RTTSpreadPoint struct {
	Spread      units.Duration
	Utilization float64
	// SyncIndex is the aggregate-window CoV over the independent-flows
	// CLT prediction (1 = desynchronized; see SyncPoint).
	SyncIndex float64
}

// RunRTTSpread executes the ablation. Points run in parallel.
func RunRTTSpread(cfg RTTSpreadConfig) RTTSpreadTable {
	cfg = cfg.withDefaults()
	bdp := float64(units.PacketsInFlight(cfg.BottleneckRate, cfg.MeanRTT, cfg.SegmentSize))
	buffer := int(math.Max(1, cfg.BufferFactor*float64(SqrtRuleBuffer(bdp, cfg.N))))

	out := make([]RTTSpreadPoint, len(cfg.Spreads))
	runSweep(sweepSpec{
		name:        "rtt-spread",
		cfg:         cfg,
		cache:       cfg.Cache,
		resume:      cfg.Resume,
		ctx:         cfg.Ctx,
		parallelism: cfg.Parallelism,
	}, len(cfg.Spreads), func(i int) {
		spread := cfg.Spreads[i]
		// RunWindowDist gives both the utilization inputs and the
		// aggregate-window moments; rebuild its scenario with this
		// spread. A zero spread means identical RTTs.
		wd := RunWindowDist(WindowDistConfig{
			Seed:            cfg.Seed + int64(i),
			N:               cfg.N,
			BottleneckRate:  cfg.BottleneckRate,
			BottleneckDelay: 10 * units.Millisecond,
			RTTMin:          cfg.MeanRTT - spread/2,
			RTTMax:          cfg.MeanRTT + spread/2,
			SegmentSize:     cfg.SegmentSize,
			BufferFactor:    cfg.BufferFactor,
			Warmup:          cfg.Warmup,
			Measure:         cfg.Measure,
			Audit:           cfg.Audit,
			Cache:           cfg.Cache,
		})
		cov := 0.0
		if wd.Mean > 0 {
			cov = wd.StdDev / wd.Mean
		}
		ll := RunLongLived(LongLivedConfig{
			Seed:           cfg.Seed + int64(i),
			N:              cfg.N,
			BottleneckRate: cfg.BottleneckRate,
			RTTMin:         cfg.MeanRTT - spread/2,
			RTTMax:         cfg.MeanRTT + spread/2,
			SegmentSize:    cfg.SegmentSize,
			BufferPackets:  buffer,
			Warmup:         cfg.Warmup,
			Measure:        cfg.Measure,
			Audit:          cfg.Audit,
			Cache:          cfg.Cache,
		})
		out[i] = RTTSpreadPoint{
			Spread:      spread,
			Utilization: ll.Utilization,
			SyncIndex:   cov / (sawtoothCoV / math.Sqrt(float64(cfg.N))),
		}
	})
	return out
}
