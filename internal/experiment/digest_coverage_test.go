package experiment

import (
	"context"
	"reflect"
	"testing"

	"bufsim/internal/audit"
	"bufsim/internal/metrics"
	"bufsim/internal/runcache"
	"bufsim/internal/workload"
)

// digestConfigs is every experiment configuration that feeds the run
// cache. A type added here is automatically swept field by field below;
// a new config that memoizes through memoRun/runSweep must be listed or
// TestDigestCoversEveryField cannot protect it.
var digestConfigs = []any{
	LongLivedConfig{},
	SingleFlowConfig{},
	WindowDistConfig{},
	ShortFlowRunConfig{},
	ShortFlowBufferConfig{},
	MixedConfig{},
	TraceConfig{},
	AFCTComparisonConfig{},
	UtilizationTableConfig{},
	ProductionConfig{},
	MinBufferConfig{},
	CoDelConfig{},
	RTTSpreadConfig{},
	SyncConfig{},
	ECNConfig{},
	VariantConfig{},
	BackboneConfig{},
	PacingConfig{},
	SmoothingConfig{},
	CCFamilyConfig{},
	ccFamilyPointConfig{},
	MultiHopConfig{},
	HarpoonConfig{},
	ProfileRunConfig{},
	FlashCrowdConfig{},
	AdversarialConfig{},
	adversarialPointConfig{},
	AdversaryScenario{},
	ProbeLadderConfig{},
}

// ignoredFieldNames mirrors digestIgnore: the observation-only field
// names excluded from the digest at any nesting depth.
var ignoredFieldNames = map[string]bool{
	"Metrics": true, "Audit": true, "Cache": true,
	"Resume": true, "Parallelism": true, "Ctx": true, "Shards": true,
}

// TestDigestCoversEveryField is the cache's completeness contract,
// checked by reflection so it cannot rot as configs grow fields:
//
//   - every semantic field must reach the digest (perturbing it changes
//     the cache key — otherwise the cache would serve stale results for
//     a config that means something different), and
//   - every observation/policy field (telemetry, audit, the cache handle
//     itself, worker counts, contexts) must NOT reach it — otherwise
//     turning observability on would needlessly re-simulate.
func TestDigestCoversEveryField(t *testing.T) {
	store, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Non-zero values for the observation-only fields digestIgnore names.
	observed := map[string]any{
		"Metrics":     metrics.New(),
		"Audit":       audit.New(),
		"Cache":       store,
		"Resume":      true,
		"Parallelism": 4,
		"Ctx":         context.Background(),
		"Shards":      3,
	}
	for _, cfg := range digestConfigs {
		typ := reflect.TypeOf(cfg)
		t.Run(typ.Name(), func(t *testing.T) {
			base := pointKey("completeness", cfg)
			for i := 0; i < typ.NumField(); i++ {
				f := typ.Field(i)
				if !f.IsExported() {
					continue
				}
				mutated := reflect.New(typ).Elem()
				mutated.Set(reflect.ValueOf(cfg))
				fv := mutated.Field(i)
				if ov, ok := observed[f.Name]; ok {
					fv.Set(reflect.ValueOf(ov).Convert(f.Type))
					if pointKey("completeness", mutated.Interface()) != base {
						t.Errorf("%s: observation-only field reaches the digest; attaching it would force a re-simulation", f.Name)
					}
					continue
				}
				setNonZero(t, f.Name, fv)
				if pointKey("completeness", mutated.Interface()) == base {
					t.Errorf("%s: semantic field does not reach the digest; the cache would serve stale results when it changes", f.Name)
				}
			}
		})
	}
}

// setNonZero writes a non-zero value of v's type, recursing through
// slices and structs. It fails the test on a kind it has no rule for,
// which is the signal to teach it (or digestIgnore) about a new field
// shape rather than silently skipping it.
func setNonZero(t *testing.T, name string, v reflect.Value) {
	t.Helper()
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(true)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 7)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(v.Uint() + 7)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(v.Float() + 0.775)
	case reflect.String:
		v.SetString(v.String() + "x")
	case reflect.Slice:
		elem := reflect.New(v.Type().Elem()).Elem()
		setNonZero(t, name, elem)
		v.Set(reflect.Append(reflect.MakeSlice(v.Type(), 0, 1), elem))
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			f := v.Type().Field(i)
			// Nested configs (a grid-point key embedding a scenario)
			// carry the same observation-only fields as top-level ones;
			// digestIgnore strips them at any depth, so skip them here.
			if !f.IsExported() || ignoredFieldNames[f.Name] {
				continue
			}
			setNonZero(t, name, v.Field(i))
		}
	case reflect.Interface:
		// The semantic interfaces in the configs are the flow-size
		// distribution and the workload source; anything else needs an
		// explicit rule here.
		for _, candidate := range []reflect.Value{
			reflect.ValueOf(workload.GeometricSize(5)),
			reflect.ValueOf(workload.PoissonSource{Load: 0.5, Sizes: workload.FixedSize(9)}),
		} {
			if candidate.Type().Implements(v.Type()) {
				v.Set(candidate)
				return
			}
		}
		t.Fatalf("%s: no perturbation rule for interface %v", name, v.Type())
	default:
		t.Fatalf("%s: no perturbation rule for kind %v", name, v.Kind())
	}
}
