package experiment

import (
	"time"

	"bufsim/internal/metrics"
	"bufsim/internal/queue"
	"bufsim/internal/sim"
	"bufsim/internal/tcp"
	"bufsim/internal/topology"
)

// instrumentDumbbell wires a run's telemetry: scheduler counters, the
// bottleneck queue and link, and TCP aggregates over every flow — both
// flows already wired and any added later (short-flow workloads create
// senders on the fly, so tracking hooks Dumbbell.OnAddFlow). Returns nil
// and does nothing when reg is nil.
//
// Everything registered here only observes; no event is scheduled and no
// RNG is consumed, so the packet trace is identical with reg nil or set.
func instrumentDumbbell(reg *metrics.Registry, sched *sim.Scheduler, d *topology.Dumbbell) *tcp.Telemetry {
	if reg == nil {
		return nil
	}
	sched.Instrument(reg)
	queue.Instrument(reg, "bottleneck", d.Bottleneck.Queue())
	d.Bottleneck.Instrument(reg, "bottleneck")

	tel := tcp.NewTelemetry(reg)
	for _, f := range d.Flows() {
		tel.Track(f.Sender)
	}
	prev := d.OnAddFlow
	d.OnAddFlow = func(f *topology.Flow) {
		tel.Track(f.Sender)
		if prev != nil {
			prev(f)
		}
	}
	return tel
}

// observeWallTime publishes the real-time cost of a finished run: total
// wall seconds and wall seconds per simulated second. Call after the last
// sched.Run with the time captured before the first. No-op on nil reg.
func observeWallTime(reg *metrics.Registry, start time.Time, sched *sim.Scheduler) {
	if reg == nil {
		return
	}
	wall := time.Since(start).Seconds()
	reg.Gauge("sim.wall_seconds").Set(wall)
	if s := sched.Now().Seconds(); s > 0 {
		reg.Gauge("sim.wall_seconds_per_sim_second").Set(wall / s)
	}
}
