package experiment

import (
	"bytes"
	"context"
	"encoding/json"
	"runtime"
	"sync"
	"time"

	"bufsim/internal/metrics"
	"bufsim/internal/runcache"
)

// cacheSalt versions every cache key. Runs are deterministic functions
// of (config, seed), so cached results stay valid until the simulation
// semantics change — and any change that can alter a result (kernel,
// queue, TCP, workload, experiment lowering) MUST bump this salt, which
// invalidates the whole cache at once. See DESIGN.md, "Run cache".
const cacheSalt = "bufsim-results-v1"

// digestIgnore lists the config fields that never change what a run
// computes: observers (Metrics, Audit), the cache plumbing itself
// (Cache, Resume), and execution policy (Parallelism, Ctx, Shards —
// sharded runs are bit-identical to sequential ones by the kernel's
// equivalence contract). Everything else in a config is semantic and
// part of the cache key — the reflection completeness test in
// digest_coverage_test.go enforces that split.
var digestIgnore = runcache.IgnoreFields("Metrics", "Audit", "Cache", "Resume", "Parallelism", "Ctx", "Shards")

// pointKey is the cache key for one computation of the given kind.
func pointKey(kind string, cfg any) string {
	return runcache.Key(cacheSalt, kind, cfg, digestIgnore)
}

// memoRun memoizes one deterministic computation in the cache. With a
// nil cache it just computes. force bypasses the lookup (used when
// telemetry or audit hooks are attached, which require actually running
// the simulation); the result is still stored, warming the cache.
//
// When verification sampling is on, a sampled hit is recomputed and
// compared byte-for-byte with the stored blob; a mismatch is recorded
// on the store and the freshly computed value wins.
func memoRun[T any](cache *runcache.Store, kind string, cfg any, force bool, compute func() T) T {
	if cache == nil {
		return compute()
	}
	key := pointKey(kind, cfg)
	if !force {
		if blob, ok := cache.Get(key); ok {
			var v T
			if err := json.Unmarshal(blob, &v); err == nil {
				if cache.ShouldVerify(key) {
					re := compute()
					reb, merr := json.Marshal(re)
					same := merr == nil && bytes.Equal(reb, blob)
					cache.RecordVerify(key, kind, same)
					if !same {
						return re
					}
				}
				return v
			}
		}
	}
	v := compute()
	// Best-effort: a marshal failure (NaN etc.) just leaves this entry
	// cold and the computed value is returned as usual.
	cache.Put(key, v)
	return v
}

// sweepSpec describes one fan-out to the orchestrator.
type sweepSpec struct {
	// name labels the sweep in checkpoints and stats.
	name string
	// cfg is the sweep-level config; its digest identifies the
	// checkpoint, so a resumed run with different parameters starts a
	// fresh record instead of trusting stale progress.
	cfg         any
	cache       *runcache.Store
	resume      bool
	ctx         context.Context
	parallelism int
	metrics     *metrics.Registry
}

// runSweep replaces bare parallelFor fan-out for the sweep drivers: it
// dispatches point(0..n-1) across a worker pool, checkpoints progress to
// the cache's sweep manifest after every completed point, honours
// context cancellation between points (in-flight points finish), and
// publishes per-point timing and cache hit-rate stats to the spec's
// metrics registry once the queue drains.
//
// Cancellation returns ctx.Err(); the points completed so far have
// written their slots (and their cache entries), so a rerun with resume
// replays them as hits and only computes the remainder. Like
// parallelFor, results are bit-identical regardless of worker count —
// the orchestrator only observes.
func runSweep(spec sweepSpec, n int, point func(i int)) error {
	ctx := spec.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	var man *runcache.SweepManifest
	if spec.cache != nil {
		man = spec.cache.Sweep(spec.name, pointKey("sweep:"+spec.name, spec.cfg), n, spec.resume)
	}
	resumedPoints := man.DoneCount()
	var before runcache.Stats
	if spec.cache != nil {
		before = spec.cache.Stats()
	}
	start := time.Now()
	durations := make([]time.Duration, n)

	workers := spec.parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				t0 := time.Now()
				point(i)
				durations[i] = time.Since(t0)
				man.MarkDone(i)
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()

	publishSweepStats(spec, n, resumedPoints, durations, start, before)
	if err := ctx.Err(); err != nil {
		return err
	}
	man.Finish()
	return nil
}

// publishSweepStats surfaces orchestrator observations through the
// existing metrics registry. It runs on one goroutine after the worker
// pool has drained (the Registry is not goroutine-safe).
func publishSweepStats(spec sweepSpec, n, resumed int, durations []time.Duration, start time.Time, before runcache.Stats) {
	reg := spec.metrics
	if reg == nil {
		return
	}
	var sum, max time.Duration
	completed := 0
	for _, d := range durations {
		if d > 0 {
			completed++
			sum += d
			if d > max {
				max = d
			}
		}
	}
	reg.Counter("sweep.points_total").Add(int64(n))
	reg.Counter("sweep.points_run").Add(int64(completed))
	reg.Counter("sweep.points_resumed").Add(int64(resumed))
	reg.Gauge("sweep.wall_seconds").Set(time.Since(start).Seconds())
	if completed > 0 {
		reg.Gauge("sweep.point_wall_seconds_mean").Set(sum.Seconds() / float64(completed))
		reg.Gauge("sweep.point_wall_seconds_max").SetMax(max.Seconds())
	}
	if spec.cache != nil {
		after := spec.cache.Stats()
		delta := runcache.Stats{Hits: after.Hits - before.Hits, Misses: after.Misses - before.Misses}
		reg.Counter("sweep.cache_hits").Add(delta.Hits)
		reg.Counter("sweep.cache_misses").Add(delta.Misses)
		reg.Gauge("sweep.cache_hit_rate").Set(delta.HitRate())
	}
}
