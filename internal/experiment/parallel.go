package experiment

import (
	"runtime"
	"sync"
)

// parallelFor runs fn(i) for i in [0, n) on up to workers goroutines and
// waits for all of them. workers <= 0 means the machine's parallelism
// (GOMAXPROCS). Each simulation owns its scheduler and RNG streams, so
// runs are isolated and results are bit-identical regardless of worker
// count or completion order; only wall-clock time changes. fn must write
// its result to its own index of a pre-sized slice (or otherwise avoid
// shared mutable state).
//
// The worker count comes from the sweep config's Parallelism field — there
// is deliberately no package-level knob, so concurrent sweeps with
// different settings cannot race on shared state.
func parallelFor(workers, n int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
