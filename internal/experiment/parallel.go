package experiment

import (
	"runtime"
	"sync"
)

// Concurrency bounds how many independent simulations the sweep drivers
// run at once. Each simulation owns its scheduler and RNG streams, so
// runs are isolated and results are bit-identical regardless of worker
// count or completion order; only wall-clock time changes. Defaults to
// the machine's parallelism.
var Concurrency = runtime.GOMAXPROCS(0)

// parallelFor runs fn(i) for i in [0, n) on up to Concurrency workers and
// waits for all of them. fn must write its result to its own index of a
// pre-sized slice (or otherwise avoid shared mutable state).
func parallelFor(n int, fn func(i int)) {
	workers := Concurrency
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
