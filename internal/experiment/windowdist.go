package experiment

import (
	"math"

	"bufsim/internal/audit"
	"bufsim/internal/queue"
	"bufsim/internal/runcache"
	"bufsim/internal/sim"
	"bufsim/internal/stats"
	"bufsim/internal/tcp"
	"bufsim/internal/topology"
	"bufsim/internal/units"
	"bufsim/internal/workload"
)

// WindowDistConfig reproduces Fig. 6: the distribution of the sum of the
// congestion windows of all flows, compared with a normal fit.
type WindowDistConfig struct {
	Seed int64

	N               int
	BottleneckRate  units.BitRate
	BottleneckDelay units.Duration
	RTTMin, RTTMax  units.Duration
	SegmentSize     units.ByteSize

	// BufferFactor sizes the buffer as a multiple of RTTxC/sqrt(n).
	BufferFactor float64

	Warmup, Measure units.Duration
	SampleEvery     units.Duration

	// Audit, when non-nil, runs the scenario under the conservation-law
	// checker (see LongLivedConfig.Audit).
	Audit *audit.Auditor

	// Cache, when non-nil, memoizes the result, samples and histogram
	// included (see LongLivedConfig.Cache).
	Cache *runcache.Store
}

func (c WindowDistConfig) withDefaults() WindowDistConfig {
	if c.BottleneckRate == 0 {
		c.BottleneckRate = units.OC3
	}
	if c.BottleneckDelay == 0 {
		c.BottleneckDelay = 10 * units.Millisecond
	}
	if c.RTTMin == 0 {
		c.RTTMin = 60 * units.Millisecond
	}
	if c.RTTMax == 0 {
		c.RTTMax = 140 * units.Millisecond
	}
	if c.SegmentSize == 0 {
		c.SegmentSize = units.DefaultSegment
	}
	if c.BufferFactor == 0 {
		c.BufferFactor = 1
	}
	if c.Warmup == 0 {
		c.Warmup = 20 * units.Second
	}
	if c.Measure == 0 {
		c.Measure = 60 * units.Second
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 10 * units.Millisecond
	}
	return c
}

// WindowDistResult summarizes the aggregate-window process.
type WindowDistResult struct {
	N             int
	BufferPackets int

	Samples []float64 // aggregate window, sampled
	Mean    float64
	StdDev  float64
	// KS is the Kolmogorov–Smirnov distance between the sample and the
	// fitted normal; small KS is the Fig. 6 claim.
	KS float64
	// CLTSigmaRatio compares the measured sigma against 1/sqrt(n)
	// scaling: sigma * sqrt(n) / mean. Roughly constant across n if the
	// central-limit scaling holds.
	CLTSigmaRatio float64
	// Histogram over the sampled range, for plotting.
	Histogram *stats.Histogram
}

// RunWindowDist executes the Fig. 6 scenario. With cfg.Cache set the
// result is memoized.
func RunWindowDist(cfg WindowDistConfig) WindowDistResult {
	cfg = cfg.withDefaults()
	return memoRun(cfg.Cache, "window-dist", cfg, cfg.Audit != nil, func() WindowDistResult {
		return runWindowDist(cfg)
	})
}

// windowSampler records the aggregate congestion window at a fixed
// period through the kernel's typed-event path (one actor, no closure
// per sample).
type windowSampler struct {
	sched   *sim.Scheduler
	d       *topology.Dumbbell
	every   units.Duration
	samples []float64
}

// OnEvent implements sim.Actor.
func (s *windowSampler) OnEvent(int32, any) {
	s.samples = append(s.samples, s.d.AggregateWindow())
	s.sched.PostAfter(s.every, s, 0, nil)
}

// runWindowDist is the uncached body of RunWindowDist; cfg has defaults
// applied.
func runWindowDist(cfg WindowDistConfig) WindowDistResult {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(cfg.Seed)

	meanRTT := (cfg.RTTMin + cfg.RTTMax) / 2
	bdp := float64(units.PacketsInFlight(cfg.BottleneckRate, meanRTT, cfg.SegmentSize))
	buffer := int(math.Max(1, cfg.BufferFactor*bdp/math.Sqrt(float64(cfg.N))))

	d := topology.NewDumbbell(topology.Config{
		Sched:           sched,
		RNG:             rng.Fork(),
		BottleneckRate:  cfg.BottleneckRate,
		BottleneckDelay: cfg.BottleneckDelay,
		Buffer:          queue.PacketLimit(buffer),
		Stations:        cfg.N,
		RTTMin:          cfg.RTTMin,
		RTTMax:          cfg.RTTMax,
		Auditor:         cfg.Audit,
	})
	workload.StartLongLived(d, cfg.N, tcp.Config{SegmentSize: cfg.SegmentSize}, rng.Fork(), cfg.Warmup/2)

	warmEnd := units.Epoch.Add(cfg.Warmup)
	sched.Run(warmEnd)

	sampler := &windowSampler{sched: sched, d: d, every: cfg.SampleEvery}
	sched.PostAfter(sampler.every, sampler, 0, nil)
	sched.Run(warmEnd.Add(cfg.Measure))
	samples := sampler.samples

	mean, sd := fitNormal(samples)
	lo, hi := mean-5*sd, mean+5*sd
	if sd == 0 {
		lo, hi = mean-1, mean+1
	}
	hist := stats.NewHistogram(lo, hi, 60)
	for _, v := range samples {
		hist.Add(v)
	}
	ratio := 0.0
	if mean > 0 {
		ratio = sd * math.Sqrt(float64(cfg.N)) / mean
	}
	return WindowDistResult{
		N:             cfg.N,
		BufferPackets: buffer,
		Samples:       samples,
		Mean:          mean,
		StdDev:        sd,
		KS:            stats.KSNormal(samples, mean, sd),
		CLTSigmaRatio: ratio,
		Histogram:     hist,
	}
}
