package experiment

import (
	"math"

	"bufsim/internal/audit"
	"bufsim/internal/queue"
	"bufsim/internal/runcache"
	"bufsim/internal/sim"
	"bufsim/internal/tcp"
	"bufsim/internal/topology"
	"bufsim/internal/trace"
	"bufsim/internal/units"
	"bufsim/internal/workload"
)

// HarpoonConfig recreates the paper's §5.2 lab methodology: traffic from a
// Harpoon-style closed-loop session generator (heavy-tailed files, think
// times) rather than permanently-backlogged senders. The experiment runs
// two phases: a calibration pass with ample buffers measures the
// equilibrium number of concurrent flows n̂, then the buffer is set to
// each factor × RTT×C/√n̂ and utilization measured — the Fig. 10 protocol
// under realistic load generation.
type HarpoonConfig struct {
	Seed int64

	BottleneckRate units.BitRate
	RTTMin, RTTMax units.Duration
	SegmentSize    units.ByteSize

	Sessions  int
	Sizes     workload.SizeDist
	MeanThink units.Duration

	Factors []float64

	Warmup, Measure units.Duration

	// Audit, when non-nil, runs both phases under the conservation-law
	// checker (see LongLivedConfig.Audit).
	Audit *audit.Auditor

	// Cache, when non-nil, memoizes each phase's run keyed on the
	// buffer limit, so calibration and per-factor points are shared
	// across runs that sweep different factor lists (see
	// LongLivedConfig.Cache).
	Cache *runcache.Store
}

func (c HarpoonConfig) withDefaults() HarpoonConfig {
	if c.BottleneckRate == 0 {
		c.BottleneckRate = units.OC3
	}
	if c.RTTMin == 0 {
		c.RTTMin = 60 * units.Millisecond
	}
	if c.RTTMax == 0 {
		c.RTTMax = 140 * units.Millisecond
	}
	if c.SegmentSize == 0 {
		c.SegmentSize = units.DefaultSegment
	}
	// The session population must offer more demand than the link
	// carries, or the experiment measures demand rather than buffering:
	// each session moves a ~117 kB mean file per (transfer + 2 s think)
	// cycle, so ~2000 sessions oversubscribe an OC3 comfortably.
	if c.Sessions == 0 {
		c.Sessions = 2000
	}
	if c.Sizes == nil {
		c.Sizes = workload.ParetoSize{Shape: 1.2, Min: 10, Max: 20000}
	}
	if c.MeanThink == 0 {
		c.MeanThink = 2 * units.Second
	}
	if len(c.Factors) == 0 {
		c.Factors = []float64{0.5, 1, 2, 3}
	}
	if c.Warmup == 0 {
		c.Warmup = 20 * units.Second
	}
	if c.Measure == 0 {
		c.Measure = 40 * units.Second
	}
	return c
}

// HarpoonRow is one buffer point.
type HarpoonRow struct {
	Factor      float64
	Buffer      int
	Utilization float64
	MeanActive  float64
	Transfers   int64
}

// HarpoonResult is the full dataset.
type HarpoonResult struct {
	// CalibratedN is the equilibrium concurrent-flow count measured with
	// ample buffers; the rows' buffers are factors of RTTxC/sqrt(this).
	CalibratedN int
	SqrtRule    int
	Rows        []HarpoonRow
}

// harpoonRun is the cacheable outcome of one session-workload run.
type harpoonRun struct {
	Util       float64
	MeanActive float64
	Transfers  int64
}

// runHarpoonOnce runs the session workload against one packet-buffer
// limit. With cfg.Cache set the run is memoized under a key of the config
// (Factors cleared — they only pick which buffers run) plus the buffer.
func runHarpoonOnce(cfg HarpoonConfig, buffer int) harpoonRun {
	cfgKey := cfg
	cfgKey.Factors = nil
	key := struct {
		Base   HarpoonConfig
		Buffer int
	}{cfgKey, buffer}
	return memoRun(cfg.Cache, "harpoon-run", key, cfg.Audit != nil, func() harpoonRun {
		return runHarpoonUncached(cfg, queue.PacketLimit(buffer))
	})
}

// runHarpoonUncached is the uncached body of runHarpoonOnce.
func runHarpoonUncached(cfg HarpoonConfig, limit queue.Limit) harpoonRun {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(cfg.Seed)
	stations := cfg.Sessions
	if stations > 200 {
		stations = 200 // sessions share stations round-robin
	}
	d := topology.NewDumbbell(topology.Config{
		Sched:           sched,
		RNG:             rng.Fork(),
		BottleneckRate:  cfg.BottleneckRate,
		BottleneckDelay: 10 * units.Millisecond,
		Buffer:          limit,
		Stations:        stations,
		RTTMin:          cfg.RTTMin,
		RTTMax:          cfg.RTTMax,
		Auditor:         cfg.Audit,
	})
	g := workload.NewSessions(workload.SessionConfig{
		Dumbbell:  d,
		RNG:       rng.Fork(),
		Sessions:  cfg.Sessions,
		Sizes:     cfg.Sizes,
		MeanThink: cfg.MeanThink,
		TCP:       tcp.Config{SegmentSize: cfg.SegmentSize, MaxWindow: 64},
	})
	g.Start()

	active := trace.NewSampler(sched, "active", 100*units.Millisecond,
		func() float64 { return float64(g.Active()) })

	warmEnd := units.Epoch.Add(cfg.Warmup)
	sched.Run(warmEnd)
	busy := d.Bottleneck.BusyTime()
	t0 := g.Transfers
	end := warmEnd.Add(cfg.Measure)
	sched.Run(end)

	series := active.Series().Window(cfg.Warmup.Seconds(), end.Sub(units.Epoch).Seconds())
	var meanActive float64
	for _, v := range series.Values {
		meanActive += v
	}
	if series.Len() > 0 {
		meanActive /= float64(series.Len())
	}
	return harpoonRun{
		Util:       d.Bottleneck.Utilization(busy, warmEnd),
		MeanActive: meanActive,
		Transfers:  g.Transfers - t0,
	}
}

// RunHarpoon executes the two-phase experiment.
func RunHarpoon(cfg HarpoonConfig) HarpoonResult {
	cfg = cfg.withDefaults()
	meanRTT := (cfg.RTTMin + cfg.RTTMax) / 2
	bdp := float64(units.PacketsInFlight(cfg.BottleneckRate, meanRTT, cfg.SegmentSize))

	// Phase 1: calibrate the concurrent-flow equilibrium with an ample
	// buffer (1x BDP, the rule-of-thumb).
	calib := runHarpoonOnce(cfg, int(bdp))
	n := int(math.Max(1, math.Round(calib.MeanActive)))

	res := HarpoonResult{
		CalibratedN: n,
		SqrtRule:    SqrtRuleBuffer(bdp, n),
	}
	for _, f := range cfg.Factors {
		buffer := int(math.Max(1, f*float64(res.SqrtRule)))
		run := runHarpoonOnce(cfg, buffer)
		res.Rows = append(res.Rows, HarpoonRow{
			Factor:      f,
			Buffer:      buffer,
			Utilization: run.Util,
			MeanActive:  run.MeanActive,
			Transfers:   run.Transfers,
		})
	}
	return res
}
