package experiment

import (
	"context"
	"fmt"
	"io"
	"math"
	"text/tabwriter"
	"time"

	"bufsim/internal/audit"
	"bufsim/internal/metrics"
	"bufsim/internal/queue"
	"bufsim/internal/runcache"
	"bufsim/internal/sim"
	"bufsim/internal/tcp"
	"bufsim/internal/topology"
	"bufsim/internal/trace"
	"bufsim/internal/units"
	"bufsim/internal/workload"
	"bufsim/internal/workload/profile"
)

// ProfileRunConfig is one run of an arbitrary workload.Source — a
// time-varying profile, a trace, sessions, or the legacy stationary
// Poisson source — over a single bottleneck. It is the unified back end
// the workload API redesign threads every traffic front end through:
// the topology and window parameters mirror ShortFlowRunConfig, so a
// stationary PoissonSource here reproduces ShortFlowAFCT exactly.
type ProfileRunConfig struct {
	Seed int64

	Rate          units.BitRate
	MeanRTT       units.Duration // station RTTs spread +-40% around this
	SegmentSize   units.ByteSize
	BufferPackets int // 0 = unlimited

	// Source is the workload; required. Sources are pure data, so the
	// run cache keys on the source's concrete type and fields.
	Source workload.Source

	Stations int
	// UseRED switches the bottleneck to RED sized to BufferPackets
	// (which must then be positive — RED thresholds need a capacity).
	UseRED bool

	Warmup, Measure units.Duration
	// Drain is how long after the measurement window flows may finish
	// before being counted censored (default 30s, as ShortFlowAFCT).
	Drain units.Duration

	// Metrics, Audit and Cache follow LongLivedConfig's semantics.
	Metrics *metrics.Registry
	Audit   *audit.Auditor
	Cache   *runcache.Store

	// Shards requests sharded kernel execution (see
	// AFCTComparisonConfig.Shards).
	Shards int
}

func (c ProfileRunConfig) withDefaults() ProfileRunConfig {
	if c.MeanRTT == 0 {
		c.MeanRTT = 100 * units.Millisecond
	}
	if c.SegmentSize == 0 {
		c.SegmentSize = units.DefaultSegment
	}
	if c.Stations == 0 {
		c.Stations = 50
	}
	if c.Warmup == 0 {
		c.Warmup = 10 * units.Second
	}
	if c.Measure == 0 {
		c.Measure = 40 * units.Second
	}
	if c.Drain == 0 {
		c.Drain = 30 * units.Second
	}
	return c
}

// ProfileRunResult is the cacheable outcome of one workload run: the
// bottleneck's view (utilization, loss, queue occupancy) plus the
// workload's (active-flow trajectory, flow completion times).
type ProfileRunResult struct {
	// Utilization is the bottleneck busy fraction over the measurement
	// window.
	Utilization float64
	// LossRate is dropped/offered at the bottleneck queue over the
	// measurement window.
	LossRate float64
	// MeanQueue and PeakQueue are the bottleneck queue occupancy over
	// the measurement window, in packets (drop-tail only; zero under
	// RED).
	MeanQueue float64
	PeakQueue int
	// MeanActive and PeakActive summarize the sampled n(t) — in-flight
	// short flows plus live long-lived flows — over the window.
	MeanActive float64
	PeakActive float64
	// Generated counts flows launched during the whole run; AFCT,
	// Completed and Censored cover flows that started in the window
	// (censored = still unfinished after the drain period).
	Generated int64
	AFCT      units.Duration
	Completed int
	Censored  int
}

// RunProfile runs one workload scenario. With cfg.Cache set the outcome
// is memoized under the config (source included).
func RunProfile(cfg ProfileRunConfig) ProfileRunResult {
	cfg = cfg.withDefaults()
	if cfg.Source == nil {
		panic("experiment: ProfileRunConfig requires a Source")
	}
	return memoRun(cfg.Cache, "profile", cfg, cfg.Metrics != nil || cfg.Audit != nil, func() ProfileRunResult {
		return runProfileUncached(cfg)
	})
}

// runProfileUncached is the uncached body of RunProfile; cfg has
// defaults applied. The build-up sequence (scheduler, RNG forks,
// topology, generator) matches runShortFlowAFCT step for step so a
// stationary source reproduces it draw for draw.
func runProfileUncached(cfg ProfileRunConfig) ProfileRunResult {
	wallStart := time.Now()
	sched := sim.NewScheduler()
	rng := sim.NewRNG(cfg.Seed)
	limit := queue.Unlimited()
	if cfg.BufferPackets > 0 {
		limit = queue.PacketLimit(cfg.BufferPackets)
	}
	topoCfg := topology.Config{
		Sched:           sched,
		RNG:             rng.Fork(),
		BottleneckRate:  cfg.Rate,
		BottleneckDelay: 10 * units.Millisecond,
		Buffer:          limit,
		Stations:        cfg.Stations,
		RTTMin:          cfg.MeanRTT * 6 / 10,
		RTTMax:          cfg.MeanRTT * 14 / 10,
		Auditor:         cfg.Audit,
		Shards:          sharedGeneratorShards(cfg.Shards),
	}
	if cfg.UseRED {
		topoCfg.NewQueue = redQueueHook(cfg.BufferPackets, cfg.SegmentSize, cfg.Rate, rng.Fork(), false)
	}
	d := topology.NewDumbbell(topoCfg)
	instrumentDumbbell(cfg.Metrics, sched, d)
	drv := cfg.Source.Bind(d, rng.Fork())
	drv.Start()

	active := trace.NewSampler(sched, "active", 100*units.Millisecond,
		func() float64 { return float64(drv.Active()) })

	warmEnd := units.Epoch.Add(cfg.Warmup)
	sched.Run(warmEnd)
	busySnap := d.Bottleneck.BusyTime()
	statsSnap := d.Bottleneck.Queue().Stats()
	if d.DropTail != nil {
		d.DropTail.ResetOccupancy(warmEnd)
	}

	measureEnd := warmEnd.Add(cfg.Measure)
	sched.Run(measureEnd)

	res := ProfileRunResult{
		Utilization: d.Bottleneck.Utilization(busySnap, warmEnd),
	}
	qs := d.Bottleneck.Queue().Stats()
	offered := (qs.EnqueuedPackets - statsSnap.EnqueuedPackets) + (qs.DroppedPackets - statsSnap.DroppedPackets)
	if offered > 0 {
		res.LossRate = float64(qs.DroppedPackets-statsSnap.DroppedPackets) / float64(offered)
	}
	if d.DropTail != nil {
		res.MeanQueue = d.DropTail.MeanOccupancy(measureEnd)
		res.PeakQueue = d.DropTail.MaxOccupancy()
	}
	series := active.Series().Window(cfg.Warmup.Seconds(), measureEnd.Sub(units.Epoch).Seconds())
	for _, v := range series.Values {
		res.MeanActive += v
		if v > res.PeakActive {
			res.PeakActive = v
		}
	}
	if series.Len() > 0 {
		res.MeanActive /= float64(series.Len())
	}

	drv.Stop()
	// Drain so flows that started in the window can complete.
	sched.Run(measureEnd.Add(cfg.Drain))
	observeWallTime(cfg.Metrics, wallStart, sched)
	res.Generated = drv.Generated()
	res.AFCT, res.Completed, res.Censored = workload.RecordAFCT(drv.Records(), warmEnd, measureEnd)
	return res
}

// FlashCrowdConfig sweeps buffer sizes against a traffic surge: a
// time-varying profile whose arrival rate and long-lived population
// spike together, the n(t) regime the 2004 rule's fixed n never
// modeled. For each buffer the sweep reports loss, utilization and
// queue occupancy through the surge.
type FlashCrowdConfig struct {
	Seed int64

	BottleneckRate units.BitRate
	MeanRTT        units.Duration
	SegmentSize    units.ByteSize
	Stations       int
	MaxWindow      int // short-flow receiver cap; paper cites 12-43

	// Profile is the workload shape; the zero value means the
	// flashcrowd preset. Curves are treated as shapes and rescaled so
	// the arrival peak offers PeakLoad and the population peak is
	// PeakFlows (see profile.Profile.ScaleTo).
	Profile profile.Profile
	// PeakLoad is the short-flow offered load at the arrival peak
	// (default 0.85; the quiet baseline is the preset's 10% of that).
	PeakLoad float64
	// PeakFlows is the long-lived population at the spike's peak
	// (default 20).
	PeakFlows int
	// FlowLength is the short-flow size in segments (default 14).
	FlowLength int64

	// Buffers lists the swept buffer sizes in packets; empty derives
	// {5%, 12.5%, 25%, 50%, 100%} of the bandwidth-delay product.
	Buffers []int

	// Variant selects the congestion control for every flow.
	Variant tcp.Variant

	Warmup, Measure, Drain units.Duration

	// Metrics, Audit, Cache, Resume, Parallelism and Ctx follow
	// LongLivedConfig's semantics; the sweep is checkpointed and
	// resumable like every other cached sweep.
	Metrics     *metrics.Registry
	Audit       *audit.Auditor
	Cache       *runcache.Store
	Resume      bool
	Parallelism int
	Ctx         context.Context

	// Shards requests sharded kernel execution for every swept point
	// (see AFCTComparisonConfig.Shards).
	Shards int
}

func (c FlashCrowdConfig) withDefaults() FlashCrowdConfig {
	if c.BottleneckRate == 0 {
		c.BottleneckRate = 50 * units.Mbps
	}
	if c.MeanRTT == 0 {
		c.MeanRTT = 100 * units.Millisecond
	}
	if c.SegmentSize == 0 {
		c.SegmentSize = units.DefaultSegment
	}
	if c.Stations == 0 {
		c.Stations = 50
	}
	if c.MaxWindow == 0 {
		c.MaxWindow = 32
	}
	if len(c.Profile.Arrival) == 0 && len(c.Profile.Population) == 0 {
		c.Profile = profile.FlashCrowd.Profile()
	}
	if c.PeakLoad == 0 {
		c.PeakLoad = 0.85
	}
	if c.PeakFlows == 0 {
		c.PeakFlows = 20
	}
	if c.FlowLength == 0 {
		c.FlowLength = 14
	}
	if len(c.Buffers) == 0 {
		bdp := float64(units.PacketsInFlight(c.BottleneckRate, c.MeanRTT, c.SegmentSize))
		for _, f := range []float64{0.05, 0.125, 0.25, 0.5, 1.0} {
			b := int(math.Max(1, math.Round(f*bdp)))
			if n := len(c.Buffers); n == 0 || c.Buffers[n-1] != b {
				c.Buffers = append(c.Buffers, b)
			}
		}
	}
	if c.Warmup == 0 {
		c.Warmup = 5 * units.Second
	}
	if c.Measure == 0 {
		c.Measure = c.Profile.Duration()
		if c.Measure == 0 {
			c.Measure = 60 * units.Second
		}
	}
	if c.Drain == 0 {
		c.Drain = 30 * units.Second
	}
	return c
}

// flashCrowdSource builds the swept workload: the config's profile
// rescaled to its load and population targets.
func flashCrowdSource(cfg FlashCrowdConfig) workload.Source {
	sizes := workload.FixedSize(cfg.FlowLength)
	peakRate := workload.ArrivalRateForLoad(cfg.PeakLoad, cfg.BottleneckRate, cfg.SegmentSize, sizes)
	return profile.Source{
		Profile: cfg.Profile.ScaleTo(peakRate, float64(cfg.PeakFlows)),
		Sizes:   sizes,
		TCP: tcp.Config{
			SegmentSize: cfg.SegmentSize,
			MaxWindow:   cfg.MaxWindow,
			Variant:     cfg.Variant,
		},
		LongTCP: tcp.Config{
			SegmentSize: cfg.SegmentSize,
			Variant:     cfg.Variant,
		},
	}
}

// FlashCrowdRow is one swept buffer's outcome.
type FlashCrowdRow struct {
	// Buffer is the bottleneck buffer in packets; BufferBDP the same as
	// a fraction of the bandwidth-delay product.
	Buffer    int
	BufferBDP float64

	Utilization float64
	LossRate    float64
	MeanQueue   float64
	PeakQueue   int
	MeanActive  float64
	PeakActive  float64
	AFCT        units.Duration
	Completed   int
	Censored    int
}

// FlashCrowdTable is the flashcrowd experiment's dataset: buffer size
// vs how the bottleneck rides out the surge.
type FlashCrowdTable []FlashCrowdRow

// Table implements Result.
func (t FlashCrowdTable) Table() string {
	return tabulate(func(tw *tabwriter.Writer) {
		fmt.Fprintln(tw, "Buffer\txBDP\tUtil\tLoss\tMeanQ\tPeakQ\tPeakN\tAFCT\tFlows\tCensored")
		for _, r := range t {
			fmt.Fprintf(tw, "%d\t%.3f\t%.1f%%\t%.2f%%\t%.1f\t%d\t%.0f\t%v\t%d\t%d\n",
				r.Buffer, r.BufferBDP, 100*r.Utilization, 100*r.LossRate,
				r.MeanQueue, r.PeakQueue, r.PeakActive, roundMS(r.AFCT), r.Completed, r.Censored)
		}
	})
}

// WriteJSON implements Result.
func (t FlashCrowdTable) WriteJSON(w io.Writer) error { return writeJSON(w, t) }

// RunFlashCrowd executes the flashcrowd experiment: one RunProfile per
// buffer size, fanned out through the checkpointed sweep runner, every
// point memoized (source included in the key) when a cache is set.
func RunFlashCrowd(cfg FlashCrowdConfig) FlashCrowdTable {
	cfg = cfg.withDefaults()
	src := flashCrowdSource(cfg)
	bdp := float64(units.PacketsInFlight(cfg.BottleneckRate, cfg.MeanRTT, cfg.SegmentSize))
	out := make(FlashCrowdTable, len(cfg.Buffers))
	runSweep(sweepSpec{
		name:        "flashcrowd",
		cfg:         cfg,
		cache:       cfg.Cache,
		resume:      cfg.Resume,
		ctx:         cfg.Ctx,
		parallelism: cfg.Parallelism,
		metrics:     cfg.Metrics,
	}, len(cfg.Buffers), func(k int) {
		buffer := cfg.Buffers[k]
		res := RunProfile(ProfileRunConfig{
			Seed:          cfg.Seed,
			Rate:          cfg.BottleneckRate,
			MeanRTT:       cfg.MeanRTT,
			SegmentSize:   cfg.SegmentSize,
			BufferPackets: buffer,
			Source:        src,
			Stations:      cfg.Stations,
			Warmup:        cfg.Warmup,
			Measure:       cfg.Measure,
			Drain:         cfg.Drain,
			Audit:         cfg.Audit,
			Cache:         cfg.Cache,
			Shards:        cfg.Shards,
		})
		out[k] = FlashCrowdRow{
			Buffer:      buffer,
			BufferBDP:   float64(buffer) / bdp,
			Utilization: res.Utilization,
			LossRate:    res.LossRate,
			MeanQueue:   res.MeanQueue,
			PeakQueue:   res.PeakQueue,
			MeanActive:  res.MeanActive,
			PeakActive:  res.PeakActive,
			AFCT:        res.AFCT,
			Completed:   res.Completed,
			Censored:    res.Censored,
		}
	})
	if cfg.Metrics != nil {
		// Telemetry pass: re-run each point with a child registry merged
		// under the point's label; the swept rows never see a registry,
		// so they are byte-identical with Metrics nil or set.
		for _, r := range out {
			if r.Buffer == 0 {
				continue // point never ran (cancelled sweep)
			}
			child := metrics.New()
			RunProfile(ProfileRunConfig{
				Seed:          cfg.Seed,
				Rate:          cfg.BottleneckRate,
				MeanRTT:       cfg.MeanRTT,
				SegmentSize:   cfg.SegmentSize,
				BufferPackets: r.Buffer,
				Source:        src,
				Stations:      cfg.Stations,
				Warmup:        cfg.Warmup,
				Measure:       cfg.Measure,
				Drain:         cfg.Drain,
				Metrics:       child,
				Cache:         cfg.Cache,
				Shards:        cfg.Shards,
			})
			cfg.Metrics.Merge(fmt.Sprintf("buffer=%d", r.Buffer), child)
		}
	}
	return out
}
