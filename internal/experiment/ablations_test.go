package experiment

import (
	"testing"

	"bufsim/internal/units"
)

func TestRunPacingAblationHelpsTinyBuffers(t *testing.T) {
	if testing.Short() {
		t.Skip("paired simulation runs")
	}
	points := RunPacingAblation(PacingConfig{
		Seed:           11,
		N:              20,
		BottleneckRate: 20 * units.Mbps,
		BufferFactors:  []float64{0.25, 1},
		Warmup:         10 * units.Second,
		Measure:        20 * units.Second,
	})
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	tiny := points[0]
	// The TR's claim: pacing recovers utilization lost to burstiness at
	// buffers far below the rule. Allow a little noise but require a
	// clear win at 0.25x.
	if tiny.UtilPaced <= tiny.UtilUnpaced+0.01 {
		t.Errorf("pacing did not help at 0.25x: unpaced=%v paced=%v",
			tiny.UtilUnpaced, tiny.UtilPaced)
	}
	for _, p := range points {
		if p.UtilPaced < 0.5 || p.UtilUnpaced < 0.5 {
			t.Errorf("implausible utilization: %+v", p)
		}
	}
}

func TestRunSmoothingSlowAccessReducesTail(t *testing.T) {
	if testing.Short() {
		t.Skip("paired simulation runs")
	}
	points := RunSmoothing(SmoothingConfig{
		Seed:           12,
		BottleneckRate: 20 * units.Mbps,
		Load:           0.75,
		FlowLen:        30,
		TailAt:         15,
		AccessRatios:   []float64{10, 0.25},
		Warmup:         8 * units.Second,
		Measure:        40 * units.Second,
	}).Points
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	fast, slow := points[0], points[1]
	if fast.AccessRatio != 10 || slow.AccessRatio != 0.25 {
		t.Fatalf("unexpected ratios: %+v", points)
	}
	// §4: slow access links smooth bursts, so the queue tail shrinks.
	if slow.TailProb >= fast.TailProb {
		t.Errorf("slow access did not reduce the tail: fast=%v slow=%v",
			fast.TailProb, slow.TailProb)
	}
	// The models bracket reality: M/D/1 is the smooth lower bound.
	if fast.ModelMG1 <= fast.ModelMD1 {
		t.Errorf("model ordering wrong: MG1=%v MD1=%v", fast.ModelMG1, fast.ModelMD1)
	}
	// And the measured tail for fast access should not wildly exceed the
	// M/G/1 bound (it is an upper bound on drop probability, but the
	// queue-tail comparison should be same order of magnitude).
	if fast.TailProb > 20*fast.ModelMG1+0.05 {
		t.Errorf("fast-access tail %v far above M/G/1 bound %v", fast.TailProb, fast.ModelMG1)
	}
}
