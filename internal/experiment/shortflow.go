package experiment

import (
	"context"
	"fmt"
	"math"
	"time"

	"bufsim/internal/audit"
	"bufsim/internal/metrics"
	"bufsim/internal/model"
	"bufsim/internal/queue"
	"bufsim/internal/runcache"
	"bufsim/internal/sim"
	"bufsim/internal/tcp"
	"bufsim/internal/topology"
	"bufsim/internal/units"
	"bufsim/internal/workload"
)

// ShortFlowBufferConfig reproduces Fig. 8: the minimum buffer that keeps
// the average flow completion time within AFCTFactor of the
// infinite-buffer AFCT, for short-flow-only traffic at a fixed load across
// several line rates. The paper's model curve is the M/G/1 bound at
// P(Q > B) = 0.025.
type ShortFlowBufferConfig struct {
	Seed int64

	Rates    []units.BitRate // paper: 40, 80, 200 Mb/s
	Load     float64         // paper: 0.8
	FlowLens []int64         // flow length(s) in segments

	MaxWindow      int // receiver cap; paper cites 12-43
	SegmentSize    units.ByteSize
	RTTMin, RTTMax units.Duration
	Stations       int

	// AFCTFactor is the degradation budget (paper: 1.125 = +12.5%).
	AFCTFactor float64
	// ModelDropProb is the model curve's P(Q > B) (paper: 0.025).
	ModelDropProb float64

	Warmup, Measure units.Duration

	// Metrics, when non-nil, receives per-point telemetry: after the
	// bisection settles each point is re-run at its MinBuffer with a child
	// registry, merged in under a "rate=...,len=..." prefix. The re-run is
	// separate from the searched runs, so the reported points are identical
	// with Metrics nil or set.
	Metrics *metrics.Registry

	// Parallelism bounds how many (rate, length) points simulate at once;
	// 0 means the machine's parallelism.
	Parallelism int

	// Audit, when non-nil, runs every probe under the conservation-law
	// checker; the Auditor is shared across the sweep's workers (it is
	// concurrency-safe). See LongLivedConfig.Audit.
	Audit *audit.Auditor

	// Cache memoizes every probe the bisection makes (baseline and each
	// bisection step), so a resumed or repeated sweep replays the search
	// from cache; Resume continues an interrupted sweep's checkpoint;
	// Ctx cancels between points. See LongLivedConfig for semantics.
	Cache  *runcache.Store
	Resume bool
	Ctx    context.Context
}

func (c ShortFlowBufferConfig) withDefaults() ShortFlowBufferConfig {
	if len(c.Rates) == 0 {
		c.Rates = []units.BitRate{40 * units.Mbps, 80 * units.Mbps, 200 * units.Mbps}
	}
	if c.Load == 0 {
		c.Load = 0.8
	}
	if len(c.FlowLens) == 0 {
		c.FlowLens = []int64{14}
	}
	if c.MaxWindow == 0 {
		c.MaxWindow = 43
	}
	if c.SegmentSize == 0 {
		c.SegmentSize = units.DefaultSegment
	}
	if c.RTTMin == 0 {
		c.RTTMin = 60 * units.Millisecond
	}
	if c.RTTMax == 0 {
		c.RTTMax = 140 * units.Millisecond
	}
	if c.Stations == 0 {
		c.Stations = 50
	}
	if c.AFCTFactor == 0 {
		c.AFCTFactor = 1.125
	}
	if c.ModelDropProb == 0 {
		c.ModelDropProb = 0.025
	}
	if c.Warmup == 0 {
		c.Warmup = 10 * units.Second
	}
	if c.Measure == 0 {
		c.Measure = 40 * units.Second
	}
	return c
}

// ShortFlowBufferPoint is one (rate, flow length) result.
type ShortFlowBufferPoint struct {
	Rate    units.BitRate
	FlowLen int64

	// BaselineAFCT is the infinite-buffer AFCT.
	BaselineAFCT units.Duration
	// MinBuffer is the smallest probed buffer with
	// AFCT <= AFCTFactor * BaselineAFCT.
	MinBuffer int
	// AchievedAFCT is the AFCT at MinBuffer.
	AchievedAFCT units.Duration
	// ModelBuffer is the paper's M/G/1 bound at ModelDropProb.
	ModelBuffer float64
}

// ShortFlowRunConfig is one short-flow-only scenario: Poisson arrivals of
// fixed-length slow-start flows at a given load over a single bottleneck.
type ShortFlowRunConfig struct {
	Seed int64

	Rate          units.BitRate
	MeanRTT       units.Duration // station RTTs spread +-40% around this
	SegmentSize   units.ByteSize
	BufferPackets int // 0 = unlimited (the infinite-buffer baseline)
	Load          float64
	FlowLength    int64
	MaxWindow     int
	Stations      int

	// Variant, DelayedAck and Paced select the senders' congestion-control
	// behaviour, as in LongLivedConfig.
	Variant    tcp.Variant
	DelayedAck bool
	Paced      bool
	// UseRED switches the bottleneck to RED sized to BufferPackets
	// (which must then be positive — RED thresholds need a capacity).
	UseRED bool

	Warmup, Measure units.Duration

	// Metrics, when non-nil, receives the run's telemetry (see
	// LongLivedConfig.Metrics).
	Metrics *metrics.Registry

	// Audit, when non-nil, runs the scenario under the conservation-law
	// checker (see LongLivedConfig.Audit).
	Audit *audit.Auditor

	// Cache, when non-nil, memoizes the run's (AFCT, completed,
	// censored) outcome (see LongLivedConfig.Cache).
	Cache *runcache.Store

	// Shards requests sharded kernel execution (see
	// AFCTComparisonConfig.Shards).
	Shards int
}

func (c ShortFlowRunConfig) withDefaults() ShortFlowRunConfig {
	if c.MeanRTT == 0 {
		c.MeanRTT = 100 * units.Millisecond
	}
	if c.SegmentSize == 0 {
		c.SegmentSize = units.DefaultSegment
	}
	if c.MaxWindow == 0 {
		c.MaxWindow = 43
	}
	if c.Stations == 0 {
		c.Stations = 50
	}
	if c.Warmup == 0 {
		c.Warmup = 10 * units.Second
	}
	if c.Measure == 0 {
		c.Measure = 40 * units.Second
	}
	return c
}

// shortFlowOutcome is the cacheable result of one short-flow run.
type shortFlowOutcome struct {
	AFCT      units.Duration
	Completed int
	Censored  int
}

// ShortFlowAFCT runs one short-flow scenario and returns the average flow
// completion time over the measurement window, the number of completed
// flows, and the number censored (started in the window, unfinished after
// the drain period). With cfg.Cache set the outcome is memoized.
func ShortFlowAFCT(cfg ShortFlowRunConfig) (units.Duration, int, int) {
	cfg = cfg.withDefaults()
	out := memoRun(cfg.Cache, "short-flow", cfg, cfg.Metrics != nil || cfg.Audit != nil, func() shortFlowOutcome {
		afct, completed, censored := runShortFlowAFCT(cfg)
		return shortFlowOutcome{AFCT: afct, Completed: completed, Censored: censored}
	})
	return out.AFCT, out.Completed, out.Censored
}

// runShortFlowAFCT is the uncached body of ShortFlowAFCT; cfg has
// defaults applied.
func runShortFlowAFCT(cfg ShortFlowRunConfig) (units.Duration, int, int) {
	wallStart := time.Now()
	sched := sim.NewScheduler()
	rng := sim.NewRNG(cfg.Seed)
	limit := queue.Unlimited()
	if cfg.BufferPackets > 0 {
		limit = queue.PacketLimit(cfg.BufferPackets)
	}
	topoCfg := topology.Config{
		Sched:           sched,
		RNG:             rng.Fork(),
		BottleneckRate:  cfg.Rate,
		BottleneckDelay: 10 * units.Millisecond,
		Buffer:          limit,
		Stations:        cfg.Stations,
		RTTMin:          cfg.MeanRTT * 6 / 10,
		RTTMax:          cfg.MeanRTT * 14 / 10,
		Auditor:         cfg.Audit,
		Shards:          sharedGeneratorShards(cfg.Shards),
	}
	if cfg.UseRED {
		topoCfg.NewQueue = redQueueHook(cfg.BufferPackets, cfg.SegmentSize, cfg.Rate, rng.Fork(), false)
	}
	d := topology.NewDumbbell(topoCfg)
	instrumentDumbbell(cfg.Metrics, sched, d)
	gen := workload.NewShortFlows(workload.ShortFlowConfig{
		Dumbbell: d,
		RNG:      rng.Fork(),
		Load:     cfg.Load,
		Sizes:    workload.FixedSize(cfg.FlowLength),
		TCP: tcp.Config{
			SegmentSize: cfg.SegmentSize,
			MaxWindow:   cfg.MaxWindow,
			Variant:     cfg.Variant,
			DelayedAck:  cfg.DelayedAck,
			Paced:       cfg.Paced,
		},
	})
	gen.Start()
	warmEnd := units.Epoch.Add(cfg.Warmup)
	measureEnd := warmEnd.Add(cfg.Measure)
	sched.Run(measureEnd)
	gen.Stop()
	// Drain so flows that started in the window can complete.
	sched.Run(measureEnd.Add(30 * units.Second))
	observeWallTime(cfg.Metrics, wallStart, sched)
	return gen.AFCT(warmEnd, measureEnd)
}

// shortFlowAFCT adapts the Fig. 8 sweep's parameters to ShortFlowAFCT.
func shortFlowAFCT(cfg ShortFlowBufferConfig, rate units.BitRate, flowLen int64, buffer queue.Limit, reg *metrics.Registry) (units.Duration, int) {
	run := ShortFlowRunConfig{
		Seed:        cfg.Seed,
		Rate:        rate,
		MeanRTT:     (cfg.RTTMin + cfg.RTTMax) / 2,
		SegmentSize: cfg.SegmentSize,
		Load:        cfg.Load,
		FlowLength:  flowLen,
		MaxWindow:   cfg.MaxWindow,
		Stations:    cfg.Stations,
		Warmup:      cfg.Warmup,
		Measure:     cfg.Measure,
		Metrics:     reg,
		Audit:       cfg.Audit,
		Cache:       cfg.Cache,
	}
	if buffer.Packets > 0 {
		run.BufferPackets = buffer.Packets
	}
	afct, _, censored := ShortFlowAFCT(run)
	return afct, censored
}

// RunShortFlowBuffer executes the Fig. 8 experiment. Points (rate x flow
// length) run in parallel; the bisection within a point is inherently
// sequential.
func RunShortFlowBuffer(cfg ShortFlowBufferConfig) ShortFlowBufferTable {
	cfg = cfg.withDefaults()
	type task struct {
		rate    units.BitRate
		flowLen int64
	}
	var tasks []task
	for _, rate := range cfg.Rates {
		for _, flowLen := range cfg.FlowLens {
			tasks = append(tasks, task{rate, flowLen})
		}
	}
	out := make([]ShortFlowBufferPoint, len(tasks))
	runSweep(sweepSpec{
		name:        "short-flow-buffer",
		cfg:         cfg,
		cache:       cfg.Cache,
		resume:      cfg.Resume,
		ctx:         cfg.Ctx,
		parallelism: cfg.Parallelism,
		metrics:     cfg.Metrics,
	}, len(tasks), func(k int) {
		rate, flowLen := tasks[k].rate, tasks[k].flowLen
		moments := model.MomentsForFlowLength(flowLen, 2, cfg.MaxWindow)
		modelBuf := moments.MinBuffer(cfg.Load, cfg.ModelDropProb)

		baseline, _ := shortFlowAFCT(cfg, rate, flowLen, queue.Unlimited(), nil)
		budget := units.Duration(float64(baseline) * cfg.AFCTFactor)

		// Bisect on the buffer size; AFCT decreases with buffer.
		hi := int(math.Max(modelBuf*4, 64))
		lo := 1
		afctAt := func(b int) units.Duration {
			a, _ := shortFlowAFCT(cfg, rate, flowLen, queue.PacketLimit(b), nil)
			return a
		}
		point := ShortFlowBufferPoint{
			Rate: rate, FlowLen: flowLen,
			BaselineAFCT: baseline, ModelBuffer: modelBuf,
		}
		if a := afctAt(lo); a <= budget {
			point.MinBuffer, point.AchievedAFCT = lo, a
			out[k] = point
			return
		}
		aHi := afctAt(hi)
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			if a := afctAt(mid); a <= budget {
				hi, aHi = mid, a
			} else {
				lo = mid
			}
		}
		point.MinBuffer, point.AchievedAFCT = hi, aHi
		out[k] = point
	})
	if cfg.Metrics != nil {
		// Telemetry pass: re-run every point at the buffer the search
		// settled on, into a child registry merged under the point's label.
		// Points stay byte-identical because the searched runs above never
		// see a registry.
		for _, p := range out {
			if p.MinBuffer == 0 {
				continue // point never ran (cancelled sweep)
			}
			child := metrics.New()
			shortFlowAFCT(cfg, p.Rate, p.FlowLen, queue.PacketLimit(p.MinBuffer), child)
			cfg.Metrics.Merge(fmt.Sprintf("rate=%s,len=%d", p.Rate, p.FlowLen), child)
		}
	}
	return out
}
