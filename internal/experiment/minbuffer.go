package experiment

import (
	"context"
	"math"
	"sort"

	"bufsim/internal/audit"
	"bufsim/internal/runcache"
	"bufsim/internal/units"
)

// MinBufferConfig reproduces Fig. 7: the minimum buffer required to reach
// a set of utilization targets, as a function of the number of long-lived
// flows, compared against the RTTxC/sqrt(n) rule.
type MinBufferConfig struct {
	Seed int64

	BottleneckRate  units.BitRate
	BottleneckDelay units.Duration
	RTTMin, RTTMax  units.Duration // paper: ~80 ms average
	SegmentSize     units.ByteSize

	Ns      []int     // flow counts to sweep
	Targets []float64 // utilization targets, e.g. 0.98, 0.995, 0.999

	// LadderPoints is how many buffer sizes are probed per n
	// (log-spaced between 1 packet and ~4x the sqrt rule).
	LadderPoints int

	Warmup, Measure units.Duration

	// Parallelism bounds how many ladder probes simulate at once; 0 means
	// the machine's parallelism.
	Parallelism int

	// Audit, when non-nil, runs every ladder probe under the
	// conservation-law checker; the Auditor is shared across the sweep's
	// workers (it is concurrency-safe). See LongLivedConfig.Audit.
	Audit *audit.Auditor

	// Cache memoizes each ladder probe; Resume continues an interrupted
	// sweep's checkpoint; Ctx cancels between probes. See
	// LongLivedConfig for semantics.
	Cache  *runcache.Store
	Resume bool
	Ctx    context.Context
}

func (c MinBufferConfig) withDefaults() MinBufferConfig {
	if c.BottleneckRate == 0 {
		c.BottleneckRate = units.OC3
	}
	if c.BottleneckDelay == 0 {
		c.BottleneckDelay = 10 * units.Millisecond
	}
	if c.RTTMin == 0 {
		c.RTTMin = 60 * units.Millisecond
	}
	if c.RTTMax == 0 {
		c.RTTMax = 100 * units.Millisecond
	}
	if c.SegmentSize == 0 {
		c.SegmentSize = units.DefaultSegment
	}
	if len(c.Ns) == 0 {
		c.Ns = []int{50, 100, 200, 300, 400, 500}
	}
	if len(c.Targets) == 0 {
		c.Targets = []float64{0.98, 0.995, 0.999}
	}
	if c.LadderPoints == 0 {
		c.LadderPoints = 10
	}
	if c.Warmup == 0 {
		c.Warmup = 20 * units.Second
	}
	if c.Measure == 0 {
		c.Measure = 40 * units.Second
	}
	return c
}

// MinBufferPoint is one (n, target) result.
type MinBufferPoint struct {
	N         int
	Target    float64
	MinBuffer int // packets; smallest ladder point meeting the target
	// SqrtRule is RTTxC/sqrt(n) in packets, the paper's model line.
	SqrtRule int
	// Achieved is the utilization measured at MinBuffer.
	Achieved float64
}

// LadderSample is one measured (buffer, utilization) probe, exposed so the
// whole curve can be reported.
type LadderSample struct {
	N           int
	Buffer      int
	Utilization float64
}

// MinBufferResult is the Fig. 7 dataset.
type MinBufferResult struct {
	Points []MinBufferPoint
	Ladder []LadderSample
	// BDPPackets is mean-RTT x C in packets.
	BDPPackets int
}

// RunMinBufferSweep executes the Fig. 7 sweep. For each n it measures
// utilization at a log-spaced ladder of buffer sizes (one simulation per
// rung) and reports, per target, the smallest rung that reached it.
func RunMinBufferSweep(cfg MinBufferConfig) MinBufferResult {
	cfg = cfg.withDefaults()
	meanRTT := (cfg.RTTMin + cfg.RTTMax) / 2
	bdp := units.PacketsInFlight(cfg.BottleneckRate, meanRTT, cfg.SegmentSize)

	var res MinBufferResult
	res.BDPPackets = bdp

	// Flatten every (n, ladder rung) probe into one work list so the
	// orchestrator sweeps, caches and checkpoints them uniformly.
	type probe struct {
		nIdx, rung int
		buffer     int
	}
	ladders := make([][]int, len(cfg.Ns))
	var probes []probe
	for ni, n := range cfg.Ns {
		ladders[ni] = bufferLadder(SqrtRuleBuffer(float64(bdp), n), cfg.LadderPoints)
		for i, b := range ladders[ni] {
			probes = append(probes, probe{nIdx: ni, rung: i, buffer: b})
		}
	}
	utils := make([][]float64, len(cfg.Ns))
	for ni := range utils {
		utils[ni] = make([]float64, len(ladders[ni]))
	}
	runSweep(sweepSpec{
		name:        "min-buffer",
		cfg:         cfg,
		cache:       cfg.Cache,
		resume:      cfg.Resume,
		ctx:         cfg.Ctx,
		parallelism: cfg.Parallelism,
	}, len(probes), func(k int) {
		p := probes[k]
		n := cfg.Ns[p.nIdx]
		r := RunLongLived(LongLivedConfig{
			Seed:            cfg.Seed + int64(n)*1000 + int64(p.rung),
			N:               n,
			BottleneckRate:  cfg.BottleneckRate,
			BottleneckDelay: cfg.BottleneckDelay,
			RTTMin:          cfg.RTTMin,
			RTTMax:          cfg.RTTMax,
			SegmentSize:     cfg.SegmentSize,
			BufferPackets:   p.buffer,
			Warmup:          cfg.Warmup,
			Measure:         cfg.Measure,
			Audit:           cfg.Audit,
			Cache:           cfg.Cache,
		})
		utils[p.nIdx][p.rung] = r.Utilization
	})
	for ni, n := range cfg.Ns {
		sqrtRule := SqrtRuleBuffer(float64(bdp), n)
		ladder := ladders[ni]
		nUtils := utils[ni]
		for i, b := range ladder {
			res.Ladder = append(res.Ladder, LadderSample{N: n, Buffer: b, Utilization: nUtils[i]})
		}
		for _, target := range cfg.Targets {
			point := MinBufferPoint{N: n, Target: target, SqrtRule: sqrtRule, MinBuffer: ladder[len(ladder)-1]}
			point.Achieved = nUtils[len(nUtils)-1]
			for i, u := range nUtils {
				if u >= target {
					point.MinBuffer = ladder[i]
					point.Achieved = u
					break
				}
			}
			res.Points = append(res.Points, point)
		}
	}
	return res
}

// bufferLadder returns log-spaced buffer sizes bracketing the sqrt rule:
// from ~sqrtRule/8 up to 4x sqrtRule, deduplicated and sorted.
func bufferLadder(sqrtRule, points int) []int {
	if points < 2 {
		points = 2
	}
	lo := math.Max(1, float64(sqrtRule)/8)
	hi := 4 * float64(sqrtRule)
	if hi < lo+1 {
		hi = lo + 1
	}
	seen := make(map[int]bool)
	var out []int
	for i := 0; i < points; i++ {
		f := float64(i) / float64(points-1)
		b := int(math.Round(lo * math.Pow(hi/lo, f)))
		if b < 1 {
			b = 1
		}
		if !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	sort.Ints(out)
	return out
}
