// Package audit is the conservation-law checking layer: a collector of
// invariant violations that the scheduler, queues, links and TCP endpoints
// report into when audit mode is on. The design goal is zero overhead when
// off — every instrumented component holds a nil *Auditor by default and
// guards its checks behind a single pointer test — and pure observation
// when on: auditing never schedules events, consumes randomness, or
// otherwise perturbs a run, so the same seed produces bit-identical
// results with audit on or off.
//
// The invariant catalogue lives in DESIGN.md; in brief, an Auditor
// receives flow-conservation violations from queues (accepted ==
// dequeued + dropped-after-enqueue + queued, in packets and bytes),
// busy-time and delivery-rate violations from links, clock-monotonicity
// violations from the event kernel, and window/sequence sanity violations
// from TCP senders and receivers.
package audit

import (
	"fmt"
	"strings"
	"sync"

	"bufsim/internal/units"
)

// Violation is one detected invariant failure, stamped with the simulated
// time at which it was observed.
type Violation struct {
	At        units.Time // simulated time of the observation
	Component string     // e.g. "queue:bottleneck", "link:r1->r2", "tcp:sender"
	Invariant string     // short invariant name, e.g. "packet-conservation"
	Detail    string     // human-readable specifics with the numbers involved
}

// String formats the violation with its simulated-time context.
func (v Violation) String() string {
	return fmt.Sprintf("t=%v %s: %s: %s", v.At, v.Component, v.Invariant, v.Detail)
}

// maxStored bounds how many violations an Auditor retains verbatim; the
// total count keeps incrementing past it. A broken invariant usually fires
// on every subsequent operation, so retaining the first few dozen is
// enough to diagnose while keeping a pathological run's memory bounded.
const maxStored = 64

// Auditor collects invariant violations. The zero value is not used
// directly: components hold a nil *Auditor when audit is off, and every
// reporting method is a safe no-op on nil. An Auditor is safe for
// concurrent use — replicated sweeps share one across goroutines — but
// the hot path of an audited run never takes the lock unless a violation
// actually fires.
type Auditor struct {
	mu          sync.Mutex
	onViolation func(Violation)
	stored      []Violation
	total       int64
}

// Option configures an Auditor.
type Option func(*Auditor)

// OnViolation installs a callback invoked (under the Auditor's lock, in
// reporting order) for every violation. Tests use it to fail fast;
// CLIs use it to log.
func OnViolation(fn func(Violation)) Option {
	return func(a *Auditor) { a.onViolation = fn }
}

// New returns an Auditor ready to be threaded through a simulation.
func New(opts ...Option) *Auditor {
	a := &Auditor{}
	for _, opt := range opts {
		opt(a)
	}
	return a
}

// Violationf records a violation. It is the single reporting entry point
// for instrumented components and is a no-op on a nil receiver, which is
// what makes audit-off free.
func (a *Auditor) Violationf(at units.Time, component, invariant, format string, args ...any) {
	if a == nil {
		return
	}
	v := Violation{At: at, Component: component, Invariant: invariant, Detail: fmt.Sprintf(format, args...)}
	a.mu.Lock()
	a.total++
	if len(a.stored) < maxStored {
		a.stored = append(a.stored, v)
	}
	fn := a.onViolation
	if fn != nil {
		// Invoke under the lock so callback output is ordered; callbacks
		// must not re-enter the Auditor.
		fn(v)
	}
	a.mu.Unlock()
}

// Count returns the total number of violations recorded, including any
// beyond the stored window. Safe on nil (returns 0).
func (a *Auditor) Count() int64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

// Violations returns a copy of the stored violations (at most the first
// maxStored recorded). Safe on nil (returns nil).
func (a *Auditor) Violations() []Violation {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Violation, len(a.stored))
	copy(out, a.stored)
	return out
}

// Err returns nil if no violations were recorded, else an error
// summarizing the first one and the total count.
func (a *Auditor) Err() error {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.total == 0 {
		return nil
	}
	return fmt.Errorf("audit: %d violation(s); first: %s", a.total, a.stored[0])
}

// String summarizes the Auditor's findings, one violation per line.
func (a *Auditor) String() string {
	if a == nil {
		return "audit: disabled"
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.total == 0 {
		return "audit: 0 violations"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "audit: %d violation(s)", a.total)
	if int64(len(a.stored)) < a.total {
		fmt.Fprintf(&b, " (showing first %d)", len(a.stored))
	}
	for _, v := range a.stored {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	return b.String()
}
