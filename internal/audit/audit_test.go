package audit

import (
	"strings"
	"sync"
	"testing"

	"bufsim/internal/units"
)

func TestNilAuditorIsInert(t *testing.T) {
	// The whole zero-overhead-off design rests on every method being a
	// safe no-op on a nil receiver.
	var a *Auditor
	a.Violationf(units.Time(5), "comp", "inv", "detail %d", 1)
	if a.Count() != 0 {
		t.Errorf("nil Count = %d", a.Count())
	}
	if a.Err() != nil {
		t.Errorf("nil Err = %v", a.Err())
	}
	if a.Violations() != nil {
		t.Errorf("nil Violations = %v", a.Violations())
	}
	if got := a.String(); got != "audit: disabled" {
		t.Errorf("nil String = %q", got)
	}
}

func TestEmptyAuditor(t *testing.T) {
	a := New()
	if a.Count() != 0 || a.Err() != nil || len(a.Violations()) != 0 {
		t.Errorf("fresh auditor not empty: count=%d err=%v", a.Count(), a.Err())
	}
	if got := a.String(); got != "audit: 0 violations" {
		t.Errorf("String = %q", got)
	}
}

func TestViolationRecording(t *testing.T) {
	a := New()
	a.Violationf(units.Time(units.Millisecond), "queue:core", "packet-conservation", "off by %d", 3)
	if a.Count() != 1 {
		t.Fatalf("Count = %d", a.Count())
	}
	v := a.Violations()[0]
	if v.Component != "queue:core" || v.Invariant != "packet-conservation" || v.Detail != "off by 3" {
		t.Errorf("violation = %+v", v)
	}
	s := v.String()
	for _, want := range []string{"1ms", "queue:core", "packet-conservation", "off by 3"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
	if err := a.Err(); err == nil || !strings.Contains(err.Error(), "1 violation") {
		t.Errorf("Err = %v", err)
	}
}

func TestStoredWindowBoundedTotalUnbounded(t *testing.T) {
	a := New()
	for i := 0; i < maxStored+40; i++ {
		a.Violationf(units.Time(i), "c", "inv", "n=%d", i)
	}
	if a.Count() != int64(maxStored+40) {
		t.Errorf("Count = %d, want %d", a.Count(), maxStored+40)
	}
	vs := a.Violations()
	if len(vs) != maxStored {
		t.Fatalf("stored %d, want cap %d", len(vs), maxStored)
	}
	// The stored window is the first violations, which localize the bug.
	if vs[0].Detail != "n=0" || vs[maxStored-1].Detail != "n=63" {
		t.Errorf("stored window = [%s ... %s]", vs[0].Detail, vs[maxStored-1].Detail)
	}
	if s := a.String(); !strings.Contains(s, "showing first 64") {
		t.Errorf("String does not note truncation: %q", s)
	}
}

func TestOnViolationCallback(t *testing.T) {
	var got []Violation
	a := New(OnViolation(func(v Violation) { got = append(got, v) }))
	a.Violationf(0, "link", "busy-bounded", "x")
	a.Violationf(1, "link", "busy-bounded", "y")
	if len(got) != 2 || got[0].Detail != "x" || got[1].Detail != "y" {
		t.Errorf("callback saw %v", got)
	}
}

func TestConcurrentReporting(t *testing.T) {
	// Sweep workers share one Auditor; hammer it from several goroutines
	// (the race detector turns any locking slip into a failure).
	a := New()
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for g := 0; g < workers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				a.Violationf(units.Time(i), "c", "inv", "g%d", g)
				_ = a.Count()
			}
		}()
	}
	wg.Wait()
	if a.Count() != workers*per {
		t.Errorf("Count = %d, want %d", a.Count(), workers*per)
	}
	if len(a.Violations()) != maxStored {
		t.Errorf("stored %d, want %d", len(a.Violations()), maxStored)
	}
}
