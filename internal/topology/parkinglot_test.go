package topology

import (
	"testing"

	"bufsim/internal/queue"
	"bufsim/internal/sim"
	"bufsim/internal/tcp"
	"bufsim/internal/units"
)

func twoHop(buffer int) (*sim.Scheduler, *ParkingLot) {
	s := sim.NewScheduler()
	p := NewParkingLot(ParkingLotConfig{
		Sched:   s,
		Rates:   []units.BitRate{10 * units.Mbps, 10 * units.Mbps},
		Delays:  []units.Duration{5 * units.Millisecond, 5 * units.Millisecond},
		Buffers: []queue.Limit{queue.PacketLimit(buffer), queue.PacketLimit(buffer)},
	})
	return s, p
}

func TestParkingLotSingleFlowEndToEnd(t *testing.T) {
	s, p := twoHop(200)
	f := p.AddFlow(0, 2, 100*units.Millisecond, tcp.Config{SegmentSize: 1000, TotalSegments: 50})
	f.Sender.Start()
	s.Run(units.Time(10 * units.Second))
	if !f.Sender.Finished() {
		t.Fatalf("flow did not cross the chain: %+v", f.Sender.Stats())
	}
	if f.Receiver.ReceivedSegments != 50 {
		t.Errorf("receiver got %d segments", f.Receiver.ReceivedSegments)
	}
	// RTT fidelity: ~100 ms propagation plus serialization on two core
	// hops.
	if srtt := f.Sender.SRTT(); srtt < 100*units.Millisecond || srtt > 110*units.Millisecond {
		t.Errorf("SRTT = %v, want ~101ms", srtt)
	}
}

func TestParkingLotPartialPath(t *testing.T) {
	// A flow on only the second hop must not touch the first link.
	s, p := twoHop(200)
	f := p.AddFlow(1, 2, 60*units.Millisecond, tcp.Config{SegmentSize: 1000, TotalSegments: 20})
	f.Sender.Start()
	s.Run(units.Time(5 * units.Second))
	if !f.Sender.Finished() {
		t.Fatal("partial-path flow did not finish")
	}
	if p.Links[0].DeliveredPackets() != 0 {
		t.Errorf("link 0 carried %d packets for a hop-2-only flow", p.Links[0].DeliveredPackets())
	}
	if p.Links[1].DeliveredPackets() == 0 {
		t.Error("link 1 carried nothing")
	}
}

func TestParkingLotBothLinksCongested(t *testing.T) {
	// Cross traffic on each hop plus flows crossing both: both links
	// saturate, and the cross flows still make progress (no starvation
	// of the double-bottleneck path).
	s, p := twoHop(40)
	rng := sim.NewRNG(1)
	var crossing []*PathFlow
	for i := 0; i < 8; i++ {
		rtt := units.Duration(rng.Uniform(float64(80*units.Millisecond), float64(140*units.Millisecond)))
		f := p.AddFlow(0, 2, rtt, tcp.Config{SegmentSize: 1000})
		crossing = append(crossing, f)
		f.Sender.Start()
		f1 := p.AddFlow(0, 1, rtt, tcp.Config{SegmentSize: 1000})
		f1.Sender.Start()
		f2 := p.AddFlow(1, 2, rtt, tcp.Config{SegmentSize: 1000})
		f2.Sender.Start()
	}
	warm := units.Time(8 * units.Second)
	s.Run(warm)
	busy0, busy1 := p.Links[0].BusyTime(), p.Links[1].BusyTime()
	s.Run(warm + units.Time(20*units.Second))
	u0 := p.Links[0].Utilization(busy0, warm)
	u1 := p.Links[1].Utilization(busy1, warm)
	if u0 < 0.9 || u1 < 0.9 {
		t.Errorf("links not saturated: %v %v", u0, u1)
	}
	for i, f := range crossing {
		if f.Sender.Stats().SegmentsSent < 100 {
			t.Errorf("crossing flow %d starved: %+v", i, f.Sender.Stats())
		}
	}
}

func TestParkingLotValidation(t *testing.T) {
	s := sim.NewScheduler()
	ok := ParkingLotConfig{
		Sched:   s,
		Rates:   []units.BitRate{units.Mbps},
		Delays:  []units.Duration{units.Millisecond},
		Buffers: []queue.Limit{queue.PacketLimit(10)},
	}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("nil sched", func() {
		c := ok
		c.Sched = nil
		NewParkingLot(c)
	})
	mustPanic("mismatched slices", func() {
		c := ok
		c.Delays = nil
		NewParkingLot(c)
	})
	mustPanic("zero rate", func() {
		c := ok
		c.Rates = []units.BitRate{0}
		NewParkingLot(c)
	})
	p := NewParkingLot(ok)
	mustPanic("bad path", func() { p.AddFlow(0, 2, 10*units.Millisecond, tcp.Config{}) })
	mustPanic("reverse path", func() { p.AddFlow(1, 1, 10*units.Millisecond, tcp.Config{}) })
	mustPanic("rtt too small", func() { p.AddFlow(0, 1, units.Millisecond, tcp.Config{}) })
}
