// Package topology builds the paper's evaluation network (Fig. 1,
// generalized): n sending stations on fast access links converge on router
// R1, whose output port to R2 is the bottleneck link under study; the
// receivers hang off R2. ACKs return over uncongested per-station reverse
// paths. All queueing of interest happens in the bottleneck's output
// queue, whose limit is the router buffer B the paper sizes.
//
// Stations are reusable attachment points: a long-lived-flow experiment
// puts one flow on each station, while the Poisson short-flow workloads
// multiplex many (sequential) flows over a fixed set of stations. Each
// station has its own two-way propagation delay, which is how the
// heterogeneous 25–300 ms RTTs that desynchronize flows (§3) enter the
// simulation.
package topology

import (
	"fmt"

	"bufsim/internal/audit"
	"bufsim/internal/link"
	"bufsim/internal/node"
	"bufsim/internal/packet"
	"bufsim/internal/queue"
	"bufsim/internal/sim"
	"bufsim/internal/tcp"
	"bufsim/internal/units"
)

// Config describes a dumbbell.
type Config struct {
	Sched *sim.Scheduler
	RNG   *sim.RNG // used only to draw station RTTs; may be nil when RTTMin == RTTMax

	// BottleneckRate is the capacity C of the link under study.
	BottleneckRate units.BitRate
	// BottleneckDelay is the bottleneck link's one-way propagation delay.
	// It must be at most RTTMin/2; the remainder of each station's RTT is
	// placed on the station's access and reverse paths.
	BottleneckDelay units.Duration

	// Buffer is the bottleneck queue limit (the B being sized). Ignored
	// if NewQueue is set.
	Buffer queue.Limit
	// NewQueue, if non-nil, constructs the bottleneck queue (e.g. RED).
	NewQueue func() queue.Queue

	// AccessRate is each station's access-link rate; 0 defaults to 10x
	// the bottleneck (the paper's "access links faster than the
	// bottleneck" worst case).
	AccessRate units.BitRate

	// Stations is the number of attachment points.
	Stations int

	// RTTMin and RTTMax bound the stations' two-way propagation delays
	// (2*Tp, excluding queueing). Station RTTs are drawn uniformly; with
	// RTTMin == RTTMax every station gets the same RTT.
	RTTMin, RTTMax units.Duration

	// Auditor, when non-nil, switches the whole topology into audit mode:
	// the scheduler, the bottleneck queue (wrapped in a conservation
	// checker), every link, and every flow's sender and receiver report
	// invariant violations into it. Auditing only observes — the same seed
	// produces identical results with or without it.
	Auditor *audit.Auditor

	// Shards requests parallel execution. The dumbbell is cut at its
	// natural topology boundary: shard 0 owns R1, the bottleneck link and
	// its queue; the stations (hosts, access and reverse links, TCP
	// endpoints) are spread round-robin over the remaining shards. The
	// scheduler then runs conservative parallel windows bounded by the
	// smallest cross-shard propagation delay (min over stations of
	// RTT/2 - BottleneckDelay, and BottleneckDelay itself). Results are
	// bit-identical to an unsharded run at every shard count — that is
	// the kernel's contract, enforced by the sharded digest harness.
	//
	// 0 or 1 disables sharding. The count is silently capped at
	// Stations+1 (one shard per station plus the bottleneck) and
	// sim.MaxShards, and sharding is silently disabled when the topology
	// has no positive lookahead (RTTMin/2 == BottleneckDelay would leave
	// a zero-delay cross-shard hop).
	Shards int

	// home, when non-nil, pins every component of this dumbbell onto one
	// shard of an externally sharded scheduler instead of sharding the
	// dumbbell internally (see Fabric). Mutually exclusive with Shards.
	home *int
}

func (c Config) validate() Config {
	if c.Sched == nil {
		panic("topology: Config.Sched is required")
	}
	if c.Stations <= 0 {
		panic("topology: Config.Stations must be positive")
	}
	if c.BottleneckRate <= 0 {
		panic("topology: Config.BottleneckRate must be positive")
	}
	if c.AccessRate == 0 {
		c.AccessRate = 10 * c.BottleneckRate
	}
	if c.RTTMin <= 0 || c.RTTMax < c.RTTMin {
		panic(fmt.Sprintf("topology: bad RTT range [%v, %v]", c.RTTMin, c.RTTMax))
	}
	if c.BottleneckDelay*2 > c.RTTMin {
		panic(fmt.Sprintf("topology: bottleneck delay %v exceeds RTTMin/2", c.BottleneckDelay))
	}
	if c.RTTMin != c.RTTMax && c.RNG == nil {
		panic("topology: Config.RNG required for randomized RTTs")
	}
	return c
}

// Station is one sender/receiver attachment point.
type Station struct {
	Index int
	// RTT is the station's two-way propagation delay (no queueing).
	RTT units.Duration

	senderHost   *node.Host
	receiverHost *node.Host
	access       *link.Link
	reverse      *link.Link
	sched        *sim.Scheduler
}

// Sched returns the scheduler view owning the station's components.
// Workload generators must schedule station-side work — flow starts,
// teardown timers, completion follow-ups — through it, so the event is
// classified to the station's shard and can fire inside a parallel
// window. On an unsharded dumbbell it is the base scheduler, so callers
// can use it unconditionally.
func (st *Station) Sched() *sim.Scheduler { return st.sched }

// Flow is a TCP connection wired across the dumbbell.
type Flow struct {
	ID       packet.FlowID
	Station  *Station
	Sender   *tcp.Sender
	Receiver *tcp.Receiver
}

// Dumbbell is the built topology.
type Dumbbell struct {
	cfg Config

	// R1 and R2 are the routers at either end of the bottleneck.
	R1, R2 *node.Router
	// Bottleneck is the link under study (R1 -> R2).
	Bottleneck *link.Link
	// DropTail is the bottleneck queue when the default discipline is in
	// use (nil if Config.NewQueue overrode it); it exposes occupancy
	// statistics.
	DropTail *queue.DropTail

	// OnAddFlow, if set, observes every flow as AddFlow wires it. Telemetry
	// uses it to track dynamically created short flows; it must only
	// observe, never schedule events.
	OnAddFlow func(*Flow)

	stations []*Station
	flows    []*Flow
	nextNode packet.NodeID
	nextFlow packet.FlowID

	// Sharding plan (see Config.Shards). shards is the effective count
	// (1 when sharding is off); view0 is the scheduler view owning the
	// bottleneck side; r1In is the shard-0 ingress the access links
	// deliver into; ingress maps each receiver host to the station-shard
	// ingress the bottleneck delivers into.
	sharded bool
	shards  int
	view0   *sim.Scheduler
	r1In    sim.Target
	ingress map[packet.NodeID]sim.Target

	// slabs holds one TCP state slab per scheduler view, so every
	// sender's hot state lives in the dense arrays of the shard that
	// owns it (see tcp.Slab). Unsharded, all flows share one slab.
	slabs map[*sim.Scheduler]*tcp.Slab
}

// ingressActor fires a cross-shard packet arrival inside the shard that
// owns the next hop: the far end of a link's wire in a sharded dumbbell.
// It is the merge point of the topology cut — the only way packet flow
// crosses shards — so all component state stays shard-owned.
type ingressActor struct{ next packet.Handler }

// OnEvent implements sim.Actor; the opcode is the link's opArrive.
func (in *ingressActor) OnEvent(_ int32, arg any) { in.next.Handle(arg.(*packet.Packet)) }

// NewDumbbell builds the topology.
func NewDumbbell(cfg Config) *Dumbbell {
	cfg = cfg.validate()
	d := &Dumbbell{cfg: cfg, nextNode: 1, nextFlow: 1, shards: 1}
	d.planShards()
	d.R1 = node.NewRouter(d.allocNode(), "R1")
	d.R2 = node.NewRouter(d.allocNode(), "R2")

	var q queue.Queue
	if cfg.NewQueue != nil {
		q = cfg.NewQueue()
	} else {
		dt := queue.NewDropTail(cfg.Buffer)
		d.DropTail = dt
		q = dt
	}
	if cfg.Auditor != nil {
		cfg.Sched.SetAuditor(cfg.Auditor)
		q = queue.NewAudited(q, cfg.Auditor, "bottleneck")
	}
	d.Bottleneck = link.New("bottleneck", d.view0, cfg.BottleneckRate, cfg.BottleneckDelay, q, d.R2)
	d.Bottleneck.SetAuditor(cfg.Auditor)
	if d.sharded {
		d.r1In = d.view0.TargetFor(&ingressActor{next: d.R1})
		d.ingress = make(map[packet.NodeID]sim.Target)
		d.Bottleneck.DeliverVia = func(p *packet.Packet) sim.Target { return d.ingress[p.Dst] }
	}

	for i := 0; i < cfg.Stations; i++ {
		d.stations = append(d.stations, d.buildStation(i))
	}
	return d
}

// planShards decides the effective shard layout (see Config.Shards) and
// enables the kernel's parallel-window engine when it applies. It draws
// no randomness, so a sharded and an unsharded build consume the
// config RNG identically.
func (d *Dumbbell) planShards() {
	cfg := d.cfg
	if cfg.home != nil {
		if cfg.Shards > 1 {
			panic("topology: Config.Shards and fabric placement are mutually exclusive")
		}
		d.view0 = cfg.Sched.ShardView(*cfg.home)
		return
	}
	d.view0 = cfg.Sched
	n := cfg.Shards
	if n > cfg.Stations+1 {
		n = cfg.Stations + 1
	}
	if n > sim.MaxShards {
		n = sim.MaxShards
	}
	if n < 2 || d.lookahead() <= 0 {
		return
	}
	cfg.Sched.EnableShards(n, d.lookahead())
	d.sharded = true
	d.shards = n
	d.view0 = cfg.Sched.ShardView(0)
}

// lookahead is the smallest cross-shard propagation delay: the access
// links' forward delay is at least RTTMin/2 - BottleneckDelay, and the
// bottleneck contributes its own delay on the return cut.
func (d *Dumbbell) lookahead() units.Duration {
	look := d.cfg.RTTMin/2 - d.cfg.BottleneckDelay
	if d.cfg.BottleneckDelay < look {
		look = d.cfg.BottleneckDelay
	}
	return look
}

// viewFor returns the scheduler view owning station i's components:
// stations round-robin over shards 1..shards-1 (shard 0 is the
// bottleneck's), or the base scheduler when sharding is off.
func (d *Dumbbell) viewFor(i int) *sim.Scheduler {
	if !d.sharded {
		return d.view0
	}
	return d.cfg.Sched.ShardView(1 + i%(d.shards-1))
}

// Shards reports the effective shard count (1 when sharding is off).
func (d *Dumbbell) Shards() int { return d.shards }

func (d *Dumbbell) allocNode() packet.NodeID {
	id := d.nextNode
	d.nextNode++
	return id
}

func (d *Dumbbell) buildStation(i int) *Station {
	cfg := d.cfg
	rtt := cfg.RTTMin
	if cfg.RTTMax > cfg.RTTMin {
		rtt = units.Duration(cfg.RNG.Uniform(float64(cfg.RTTMin), float64(cfg.RTTMax)))
	}
	st := &Station{Index: i, RTT: rtt, sched: d.viewFor(i)}
	st.senderHost = node.NewHost(d.allocNode(), fmt.Sprintf("s%d", i))
	st.receiverHost = node.NewHost(d.allocNode(), fmt.Sprintf("d%d", i))

	// The bottleneck contributes its one-way delay to the forward path;
	// the access link carries the rest of the forward propagation and the
	// reverse path mirrors the whole forward delay, so the loop totals
	// the station RTT.
	fwdDelay := units.Duration(rtt/2) - cfg.BottleneckDelay
	revDelay := units.Duration(rtt / 2)

	st.access = link.New(fmt.Sprintf("access%d", i), st.sched, cfg.AccessRate,
		fwdDelay, queue.NewDropTail(queue.Unlimited()), d.R1)
	st.reverse = link.New(fmt.Sprintf("reverse%d", i), st.sched, cfg.AccessRate,
		revDelay, queue.NewDropTail(queue.Unlimited()), st.senderHost)
	st.access.SetAuditor(cfg.Auditor)
	st.reverse.SetAuditor(cfg.Auditor)
	if d.sharded {
		// The station's two cross-shard wires: data packets leaving the
		// access link arrive at R1 in shard 0; packets leaving the
		// bottleneck for this station's receiver arrive at R2's routing
		// step in the station's shard. Both hops have delay >= the
		// lookahead by construction.
		st.access.DeliverVia = func(*packet.Packet) sim.Target { return d.r1In }
		d.ingress[st.receiverHost.ID()] = st.sched.TargetFor(&ingressActor{next: d.R2})
	}

	d.R1.AddRoute(st.receiverHost.ID(), d.Bottleneck)
	d.R2.AddRoute(st.receiverHost.ID(), st.receiverHost)
	return st
}

// Station returns attachment point i.
func (d *Dumbbell) Station(i int) *Station { return d.stations[i] }

// NumStations returns the number of attachment points.
func (d *Dumbbell) NumStations() int { return len(d.stations) }

// Flows returns all flows added so far.
func (d *Dumbbell) Flows() []*Flow { return d.flows }

// Config returns the configuration the dumbbell was built with.
func (d *Dumbbell) Config() Config { return d.cfg }

// AddFlow wires a new TCP connection across station st. The spec's Flow,
// Src and Dst fields are assigned by the topology; everything else
// (segment size, flow length, variant, windows) is taken from spec. The
// caller starts the sender (directly or via the scheduler).
func (d *Dumbbell) AddFlow(st *Station, spec tcp.Config) *Flow {
	spec.Flow = d.nextFlow
	d.nextFlow++
	spec.Src = st.senderHost.ID()
	spec.Dst = st.receiverHost.ID()

	snd := tcp.NewSenderSlab(d.slabFor(st.sched), spec, st.sched, st.access)
	rcv := tcp.NewReceiver(spec, st.sched, st.reverse)
	if d.cfg.Auditor != nil {
		snd.SetAuditor(d.cfg.Auditor)
		rcv.SetAuditor(d.cfg.Auditor)
	}
	st.senderHost.Attach(spec.Flow, snd)
	st.receiverHost.Attach(spec.Flow, rcv)

	f := &Flow{ID: spec.Flow, Station: st, Sender: snd, Receiver: rcv}
	d.flows = append(d.flows, f)
	if d.OnAddFlow != nil {
		d.OnAddFlow(f)
	}
	return f
}

// slabFor returns the TCP state slab owned by scheduler view (one per
// shard), creating it on first use. Dynamic workloads add flows either
// from the station shard itself or from barrier-synchronized generator
// events, so slab growth never races a parallel window on another
// shard — the ordering tcp.Slab requires.
func (d *Dumbbell) slabFor(view *sim.Scheduler) *tcp.Slab {
	if d.slabs == nil {
		d.slabs = make(map[*sim.Scheduler]*tcp.Slab)
	}
	sl, ok := d.slabs[view]
	if !ok {
		sl = tcp.NewSlab(16)
		d.slabs[view] = sl
	}
	return sl
}

// RawFlow is an allocation of addressing for a non-TCP flow (e.g. CBR/UDP
// traffic): the IDs to stamp on packets and the links to write them to.
// Bind agents with BindRawFlow once they are constructed.
type RawFlow struct {
	ID  packet.FlowID
	Src packet.NodeID // sender host
	Dst packet.NodeID // receiver host
	// Forward is where the sender writes data packets (the station's
	// access link toward the bottleneck).
	Forward packet.Handler
	// Reverse is where the receiver writes feedback toward the sender.
	Reverse packet.Handler

	station *Station
}

// NewRawFlow allocates flow addressing on station st for a caller-provided
// protocol (CBR, UDP-like, custom). TCP flows should use AddFlow instead.
func (d *Dumbbell) NewRawFlow(st *Station) *RawFlow {
	id := d.nextFlow
	d.nextFlow++
	return &RawFlow{
		ID:      id,
		Src:     st.senderHost.ID(),
		Dst:     st.receiverHost.ID(),
		Forward: st.access,
		Reverse: st.reverse,
		station: st,
	}
}

// BindRawFlow attaches the flow's agents: snd receives reverse-path
// packets at the sender host, rcv receives data at the receiver host.
// Either may be nil for one-way traffic.
func (d *Dumbbell) BindRawFlow(f *RawFlow, snd, rcv packet.Handler) {
	if snd != nil {
		f.station.senderHost.Attach(f.ID, snd)
	}
	if rcv != nil {
		f.station.receiverHost.Attach(f.ID, rcv)
	}
}

// RemoveFlow detaches a finished flow's agents so stations can be reused
// indefinitely. The flow stays in Flows() for accounting.
func (d *Dumbbell) RemoveFlow(f *Flow) {
	f.Station.senderHost.Detach(f.ID)
	f.Station.receiverHost.Detach(f.ID)
}

// MeanRTT returns the average station two-way propagation delay — the
// paper's RTT-bar in B = RTT x C / sqrt(n).
func (d *Dumbbell) MeanRTT() units.Duration {
	var sum units.Duration
	for _, st := range d.stations {
		sum += st.RTT
	}
	return sum / units.Duration(len(d.stations))
}

// BDPPackets returns the bandwidth-delay product MeanRTT x C in packets of
// the given segment size.
func (d *Dumbbell) BDPPackets(segment units.ByteSize) int {
	return units.PacketsInFlight(d.cfg.BottleneckRate, d.MeanRTT(), segment)
}

// AggregateWindow returns the instantaneous sum of all senders' congestion
// windows (the W = sum Wi process of Fig. 6).
func (d *Dumbbell) AggregateWindow() float64 {
	var sum float64
	for _, f := range d.flows {
		if !f.Sender.Finished() {
			sum += f.Sender.Cwnd()
		}
	}
	return sum
}

// AggregateOutstanding returns the total unacknowledged segments across
// flows (total data actually in flight).
func (d *Dumbbell) AggregateOutstanding() int64 {
	var sum int64
	for _, f := range d.flows {
		sum += f.Sender.Outstanding()
	}
	return sum
}
