package topology

import (
	"fmt"

	"bufsim/internal/audit"
	"bufsim/internal/link"
	"bufsim/internal/node"
	"bufsim/internal/packet"
	"bufsim/internal/queue"
	"bufsim/internal/sim"
	"bufsim/internal/tcp"
	"bufsim/internal/units"
)

// ParkingLotConfig describes a chain of routers R0 -> R1 -> ... -> Rk with
// a (potentially congested) link between each pair — the classic
// "parking lot" used to study flows that cross multiple bottlenecks. The
// paper's analysis assumes a single point of congestion ("if a single
// point of congestion is rare, then it is unlikely that a flow will
// encounter two or more congestion points", §5.1); this topology lets the
// experiments test how the sqrt(n) rule fares when that assumption is
// deliberately violated.
type ParkingLotConfig struct {
	Sched *sim.Scheduler
	RNG   *sim.RNG // may be nil if all flows use explicit RTTs

	// Rates, Delays and Buffers describe the k core links; the three
	// slices must have equal length >= 1.
	Rates   []units.BitRate
	Delays  []units.Duration
	Buffers []queue.Limit

	// AccessRate is the rate of every sender's access link; 0 defaults
	// to 10x the fastest core link.
	AccessRate units.BitRate

	// Auditor, when non-nil, switches the chain into audit mode: the
	// scheduler, every core queue (wrapped in a conservation checker),
	// every link, and every flow's endpoints report invariant violations
	// into it. See Config.Auditor.
	Auditor *audit.Auditor
}

func (c ParkingLotConfig) validate() ParkingLotConfig {
	if c.Sched == nil {
		panic("topology: ParkingLotConfig.Sched is required")
	}
	k := len(c.Rates)
	if k == 0 || len(c.Delays) != k || len(c.Buffers) != k {
		panic(fmt.Sprintf("topology: parking lot needs matching slices, got %d/%d/%d",
			len(c.Rates), len(c.Delays), len(c.Buffers)))
	}
	var max units.BitRate
	for i, r := range c.Rates {
		if r <= 0 {
			panic(fmt.Sprintf("topology: core link %d rate %v", i, r))
		}
		if r > max {
			max = r
		}
		if c.Delays[i] < 0 {
			panic(fmt.Sprintf("topology: core link %d negative delay", i))
		}
	}
	if c.AccessRate == 0 {
		c.AccessRate = 10 * max
	}
	return c
}

// ParkingLot is the built chain.
type ParkingLot struct {
	cfg ParkingLotConfig

	Routers []*node.Router
	// Links[i] carries R[i] -> R[i+1]; its queue limit is Buffers[i].
	Links     []*link.Link
	DropTails []*queue.DropTail

	flows    []*PathFlow
	nextNode packet.NodeID
	nextFlow packet.FlowID
}

// PathFlow is a TCP connection entering at router From and leaving at
// router To (crossing core links From..To-1).
type PathFlow struct {
	ID       packet.FlowID
	From, To int
	RTT      units.Duration
	Sender   *tcp.Sender
	Receiver *tcp.Receiver
}

// NewParkingLot builds the chain.
func NewParkingLot(cfg ParkingLotConfig) *ParkingLot {
	cfg = cfg.validate()
	p := &ParkingLot{cfg: cfg, nextNode: 1, nextFlow: 1}
	for i := 0; i <= len(cfg.Rates); i++ {
		p.Routers = append(p.Routers, node.NewRouter(p.alloc(), fmt.Sprintf("R%d", i)))
	}
	if cfg.Auditor != nil {
		cfg.Sched.SetAuditor(cfg.Auditor)
	}
	for i, rate := range cfg.Rates {
		dt := queue.NewDropTail(cfg.Buffers[i])
		p.DropTails = append(p.DropTails, dt)
		var q queue.Queue = dt
		if cfg.Auditor != nil {
			q = queue.NewAudited(q, cfg.Auditor, fmt.Sprintf("core%d", i))
		}
		l := link.New(fmt.Sprintf("core%d", i), cfg.Sched, rate, cfg.Delays[i], q, p.Routers[i+1])
		l.SetAuditor(cfg.Auditor)
		p.Links = append(p.Links, l)
	}
	return p
}

func (p *ParkingLot) alloc() packet.NodeID {
	id := p.nextNode
	p.nextNode++
	return id
}

// Flows returns all flows added so far.
func (p *ParkingLot) Flows() []*PathFlow { return p.flows }

// coreDelay sums the propagation delays of links from..to-1.
func (p *ParkingLot) coreDelay(from, to int) units.Duration {
	var d units.Duration
	for i := from; i < to; i++ {
		d += p.cfg.Delays[i]
	}
	return d
}

// AddFlow wires a TCP connection entering the chain at router `from` and
// exiting at router `to` (0 <= from < to <= len(links)), with the given
// two-way propagation RTT. The flow's forward path is its access link
// plus core links from..to-1; the remainder of the RTT rides the access
// and reverse links.
func (p *ParkingLot) AddFlow(from, to int, rtt units.Duration, spec tcp.Config) *PathFlow {
	if from < 0 || to <= from || to > len(p.Links) {
		panic(fmt.Sprintf("topology: bad path %d->%d in %d-link chain", from, to, len(p.Links)))
	}
	core := p.coreDelay(from, to)
	if rtt/2 < core {
		panic(fmt.Sprintf("topology: RTT %v too small for %v of core delay", rtt, core))
	}

	sndHost := node.NewHost(p.alloc(), fmt.Sprintf("s%d", p.nextFlow))
	rcvHost := node.NewHost(p.alloc(), fmt.Sprintf("d%d", p.nextFlow))

	access := link.New(fmt.Sprintf("acc%d", p.nextFlow), p.cfg.Sched, p.cfg.AccessRate,
		units.Duration(rtt/2)-core, queue.NewDropTail(queue.Unlimited()), p.Routers[from])
	reverse := link.New(fmt.Sprintf("rev%d", p.nextFlow), p.cfg.Sched, p.cfg.AccessRate,
		units.Duration(rtt/2), queue.NewDropTail(queue.Unlimited()), sndHost)
	access.SetAuditor(p.cfg.Auditor)
	reverse.SetAuditor(p.cfg.Auditor)

	// Route the receiver's address along the chain.
	for i := from; i < to; i++ {
		p.Routers[i].AddRoute(rcvHost.ID(), p.Links[i])
	}
	p.Routers[to].AddRoute(rcvHost.ID(), rcvHost)

	spec.Flow = p.nextFlow
	p.nextFlow++
	spec.Src = sndHost.ID()
	spec.Dst = rcvHost.ID()
	snd := tcp.NewSender(spec, p.cfg.Sched, access)
	rcv := tcp.NewReceiver(spec, p.cfg.Sched, reverse)
	if p.cfg.Auditor != nil {
		snd.SetAuditor(p.cfg.Auditor)
		rcv.SetAuditor(p.cfg.Auditor)
	}
	sndHost.Attach(spec.Flow, snd)
	rcvHost.Attach(spec.Flow, rcv)

	f := &PathFlow{ID: spec.Flow, From: from, To: to, RTT: rtt, Sender: snd, Receiver: rcv}
	p.flows = append(p.flows, f)
	return f
}
