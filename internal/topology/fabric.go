package topology

import (
	"fmt"
	"math"

	"bufsim/internal/sim"
	"bufsim/internal/units"
)

// FabricConfig describes a fabric: several independent dumbbells
// ("planes") sharing one scheduler, one plane per event shard. A fabric
// is how the simulator reaches million-flow scale — planes exchange no
// packets, so the kernel's conservative windows are unbounded (the
// lookahead is infinite) and the planes run embarrassingly parallel
// while keeping the sequential kernel's bit-exact schedule.
type FabricConfig struct {
	Sched *sim.Scheduler
	// RNG seeds the planes: each plane receives its own fork, in plane
	// order, so a fabric's plane k reproduces a standalone dumbbell
	// built from the same fork sequence. May be nil when the plane
	// template needs no randomness (RTTMin == RTTMax).
	RNG *sim.RNG

	// Planes is the number of dumbbells. Planes beyond sim.MaxShards
	// share shards round-robin; each plane still lives entirely on one
	// shard, which is all the isolation the kernel needs.
	Planes int

	// Plane is the per-plane template. Sched and RNG are overwritten per
	// plane; Shards must be zero — a plane is pinned to one shard and
	// cannot shard internally.
	Plane Config
}

// Fabric is a built set of planes. Drive workloads against each plane's
// Dumbbell and run the shared scheduler as usual.
type Fabric struct {
	planes []*Dumbbell
}

// NewFabric builds the planes and, with two or more of them, switches
// the scheduler into sharded execution with unbounded lookahead (the
// planes share no links, so no cross-shard event ever needs a horizon).
func NewFabric(cfg FabricConfig) *Fabric {
	if cfg.Sched == nil {
		panic("topology: FabricConfig.Sched is required")
	}
	if cfg.Planes <= 0 {
		panic(fmt.Sprintf("topology: FabricConfig.Planes = %d", cfg.Planes))
	}
	if cfg.Plane.Shards > 1 {
		panic("topology: fabric planes cannot shard internally (Plane.Shards must be 0)")
	}
	shards := cfg.Planes
	if shards > sim.MaxShards {
		shards = sim.MaxShards
	}
	if shards >= 2 {
		// Disjoint planes: no packet ever crosses a shard boundary, so
		// the conservative horizon is "forever". satAdd saturates, so the
		// windows simply run to the scheduler's until.
		cfg.Sched.EnableShards(shards, units.Duration(math.MaxInt64))
	}
	f := &Fabric{planes: make([]*Dumbbell, 0, cfg.Planes)}
	for k := 0; k < cfg.Planes; k++ {
		pc := cfg.Plane
		pc.Sched = cfg.Sched
		if cfg.RNG != nil {
			pc.RNG = cfg.RNG.Fork()
		}
		if shards >= 2 {
			home := k % shards
			pc.home = &home
		}
		f.planes = append(f.planes, NewDumbbell(pc))
	}
	return f
}

// Planes returns the number of planes.
func (f *Fabric) Planes() int { return len(f.planes) }

// Plane returns plane k's dumbbell.
func (f *Fabric) Plane(k int) *Dumbbell { return f.planes[k] }
