package topology

import (
	"testing"

	"bufsim/internal/queue"
	"bufsim/internal/sim"
	"bufsim/internal/tcp"
	"bufsim/internal/units"
)

// buildSingle returns a one-station dumbbell: 10 Mb/s bottleneck, 100 ms
// RTT, 1000-B segments (BDP = 125 packets), with the given buffer.
func buildSingle(bufferPkts int) (*sim.Scheduler, *Dumbbell) {
	s := sim.NewScheduler()
	d := NewDumbbell(Config{
		Sched:           s,
		BottleneckRate:  10 * units.Mbps,
		BottleneckDelay: 10 * units.Millisecond,
		Buffer:          queue.PacketLimit(bufferPkts),
		Stations:        1,
		RTTMin:          100 * units.Millisecond,
		RTTMax:          100 * units.Millisecond,
	})
	return s, d
}

// measureUtil runs a long-lived flow for warmup+window and returns the
// bottleneck utilization over the measurement window.
func measureUtil(t *testing.T, bufferPkts int) float64 {
	t.Helper()
	s, d := buildSingle(bufferPkts)
	f := d.AddFlow(d.Station(0), tcp.Config{SegmentSize: 1000})
	f.Sender.Start()
	warmup := units.Time(10 * units.Second)
	s.Run(warmup)
	busy := d.Bottleneck.BusyTime()
	s.Run(warmup + units.Time(20*units.Second))
	return d.Bottleneck.Utilization(busy, warmup)
}

func TestSingleFlowRuleOfThumbFullUtilization(t *testing.T) {
	// Fig. 3: B = RTT x C = 125 packets keeps the link busy.
	util := measureUtil(t, 125)
	if util < 0.97 {
		t.Errorf("utilization with B=BDP = %v, want >= 0.97", util)
	}
}

func TestSingleFlowUnderbufferedLosesThroughput(t *testing.T) {
	// Fig. 4: B = BDP/8 starves the link while the sender pauses.
	util := measureUtil(t, 125/8)
	if util > 0.93 {
		t.Errorf("utilization underbuffered = %v, want < 0.93", util)
	}
	if util < 0.5 {
		t.Errorf("utilization underbuffered = %v, implausibly low", util)
	}
}

func TestSingleFlowOverbufferedKeepsQueueStanding(t *testing.T) {
	// Fig. 5: B = 2 x BDP never drains; full utilization plus a standing
	// queue (extra delay).
	s, d := buildSingle(250)
	f := d.AddFlow(d.Station(0), tcp.Config{SegmentSize: 1000})
	f.Sender.Start()
	warmup := units.Time(10 * units.Second)
	s.Run(warmup)
	busy := d.Bottleneck.BusyTime()
	s.Run(warmup + units.Time(20*units.Second))
	util := d.Bottleneck.Utilization(busy, warmup)
	if util < 0.99 {
		t.Errorf("utilization overbuffered = %v, want ~1", util)
	}
	if occ := d.DropTail.MeanOccupancy(s.Now()); occ < 30 {
		t.Errorf("mean queue occupancy = %v packets, want a standing queue", occ)
	}
}

func TestOrderingOfTheThreeRegimes(t *testing.T) {
	// The paper's Figs. 3-5 in one assertion: under < exact <= over.
	under := measureUtil(t, 125/8)
	exact := measureUtil(t, 125)
	over := measureUtil(t, 375)
	if !(under < exact && exact <= over+0.005) {
		t.Errorf("regime ordering violated: under=%v exact=%v over=%v", under, exact, over)
	}
}

func TestShortFlowAcrossDumbbell(t *testing.T) {
	s, d := buildSingle(100)
	f := d.AddFlow(d.Station(0), tcp.Config{SegmentSize: 1000, TotalSegments: 30})
	var done units.Time = units.Never
	f.Receiver.OnComplete = func(now units.Time) { done = now }
	f.Sender.Start()
	s.Run(units.Time(10 * units.Second))
	if done == units.Never {
		t.Fatal("short flow did not complete")
	}
	// 30 segments, IW 2: bursts 2,4,8,16 over 4 RTT-ish of 100 ms.
	if done < units.Time(300*units.Millisecond) || done > units.Time(800*units.Millisecond) {
		t.Errorf("completion at %v, want ~400-500ms", done)
	}
	if f.Sender.Stats().Retransmits != 0 {
		t.Errorf("lossless short flow retransmitted: %+v", f.Sender.Stats())
	}
}

func TestStationRTTsSpanRange(t *testing.T) {
	s := sim.NewScheduler()
	d := NewDumbbell(Config{
		Sched:           s,
		RNG:             sim.NewRNG(1),
		BottleneckRate:  units.OC3,
		BottleneckDelay: 5 * units.Millisecond,
		Buffer:          queue.PacketLimit(100),
		Stations:        200,
		RTTMin:          25 * units.Millisecond,
		RTTMax:          300 * units.Millisecond,
	})
	var lo, hi units.Duration = units.Minute, 0
	for i := 0; i < d.NumStations(); i++ {
		rtt := d.Station(i).RTT
		if rtt < 25*units.Millisecond || rtt > 300*units.Millisecond {
			t.Fatalf("station %d RTT %v out of range", i, rtt)
		}
		if rtt < lo {
			lo = rtt
		}
		if rtt > hi {
			hi = rtt
		}
	}
	if hi-lo < 150*units.Millisecond {
		t.Errorf("station RTTs poorly spread: [%v, %v]", lo, hi)
	}
	mean := d.MeanRTT()
	if mean < 120*units.Millisecond || mean > 210*units.Millisecond {
		t.Errorf("MeanRTT = %v, want ~162ms", mean)
	}
}

func TestBDPPackets(t *testing.T) {
	s, d := buildSingle(100)
	_ = s
	// 10 Mb/s x 100 ms / 8 / 1000 B = 125 packets.
	if got := d.BDPPackets(1000); got != 125 {
		t.Errorf("BDPPackets = %d, want 125", got)
	}
}

func TestRTTFidelity(t *testing.T) {
	// The SRTT a lossless flow measures should match the station's
	// configured propagation RTT plus small serialization terms.
	s, d := buildSingle(1000)
	f := d.AddFlow(d.Station(0), tcp.Config{SegmentSize: 1000, TotalSegments: 4, MaxWindow: 1})
	f.Sender.Start()
	s.Run(units.Time(5 * units.Second))
	srtt := f.Sender.SRTT()
	// Propagation 100 ms + 1000 B at 100 Mb/s access (80 us) + 1000 B at
	// 10 Mb/s bottleneck (800 us) + ack serialization (negligible).
	if srtt < 100*units.Millisecond || srtt > 103*units.Millisecond {
		t.Errorf("SRTT = %v, want ~100.9ms", srtt)
	}
}

func TestAggregateWindowSumsSenders(t *testing.T) {
	s, d := buildSingle(100)
	f1 := d.AddFlow(d.Station(0), tcp.Config{SegmentSize: 1000})
	f2 := d.AddFlow(d.Station(0), tcp.Config{SegmentSize: 1000})
	_ = s
	want := f1.Sender.Cwnd() + f2.Sender.Cwnd()
	if got := d.AggregateWindow(); got != want {
		t.Errorf("AggregateWindow = %v, want %v", got, want)
	}
}

func TestManyFlowsShareBottleneckFairly(t *testing.T) {
	// 10 long flows with identical RTTs over a well-buffered bottleneck:
	// utilization ~1 and no flow starves.
	s := sim.NewScheduler()
	d := NewDumbbell(Config{
		Sched:           s,
		RNG:             sim.NewRNG(7),
		BottleneckRate:  10 * units.Mbps,
		BottleneckDelay: 10 * units.Millisecond,
		Buffer:          queue.PacketLimit(125),
		Stations:        10,
		RTTMin:          90 * units.Millisecond,
		RTTMax:          110 * units.Millisecond,
	})
	for i := 0; i < 10; i++ {
		f := d.AddFlow(d.Station(i), tcp.Config{SegmentSize: 1000})
		f.Sender.Start()
	}
	warmup := units.Time(10 * units.Second)
	s.Run(warmup)
	busy := d.Bottleneck.BusyTime()
	var sentAtWarmup []int64
	for _, f := range d.Flows() {
		sentAtWarmup = append(sentAtWarmup, f.Sender.Stats().SegmentsSent)
	}
	s.Run(warmup + units.Time(30*units.Second))
	if util := d.Bottleneck.Utilization(busy, warmup); util < 0.97 {
		t.Errorf("utilization = %v, want ~1", util)
	}
	for i, f := range d.Flows() {
		sent := f.Sender.Stats().SegmentsSent - sentAtWarmup[i]
		// Fair share is 125 pkt/s each (1250 pkt/s over 10 flows);
		// require everyone got at least a fifth of that.
		if sent < 30*125/5 {
			t.Errorf("flow %d sent only %d segments in 30s", i, sent)
		}
	}
}

func TestRemoveFlowAllowsReuse(t *testing.T) {
	s, d := buildSingle(100)
	f1 := d.AddFlow(d.Station(0), tcp.Config{SegmentSize: 1000, TotalSegments: 5})
	f1.Sender.Start()
	s.Run(units.Time(5 * units.Second))
	if !f1.Sender.Finished() {
		t.Fatal("first flow did not finish")
	}
	d.RemoveFlow(f1)
	f2 := d.AddFlow(d.Station(0), tcp.Config{SegmentSize: 1000, TotalSegments: 5})
	f2.Sender.Start()
	s.Run(units.Time(10 * units.Second))
	if !f2.Sender.Finished() {
		t.Fatal("second flow on reused station did not finish")
	}
}

func TestConfigValidation(t *testing.T) {
	base := func() Config {
		return Config{
			Sched:           sim.NewScheduler(),
			BottleneckRate:  units.Mbps,
			BottleneckDelay: units.Millisecond,
			Buffer:          queue.PacketLimit(10),
			Stations:        1,
			RTTMin:          10 * units.Millisecond,
			RTTMax:          10 * units.Millisecond,
		}
	}
	mustPanic := func(name string, mutate func(*Config)) {
		cfg := base()
		mutate(&cfg)
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		NewDumbbell(cfg)
	}
	mustPanic("nil sched", func(c *Config) { c.Sched = nil })
	mustPanic("zero stations", func(c *Config) { c.Stations = 0 })
	mustPanic("zero rate", func(c *Config) { c.BottleneckRate = 0 })
	mustPanic("bad rtt range", func(c *Config) { c.RTTMax = c.RTTMin / 2 })
	mustPanic("bottleneck delay too large", func(c *Config) { c.BottleneckDelay = 20 * units.Millisecond })
	mustPanic("random rtts without rng", func(c *Config) { c.RTTMax = 2 * c.RTTMin })
}

func TestCustomQueueDiscipline(t *testing.T) {
	s := sim.NewScheduler()
	rng := sim.NewRNG(3)
	d := NewDumbbell(Config{
		Sched:           s,
		BottleneckRate:  10 * units.Mbps,
		BottleneckDelay: 10 * units.Millisecond,
		NewQueue: func() queue.Queue {
			return queue.NewRED(queue.DefaultRED(125, 800*units.Microsecond, rng.Float64))
		},
		Stations: 1,
		RTTMin:   100 * units.Millisecond,
		RTTMax:   100 * units.Millisecond,
	})
	if d.DropTail != nil {
		t.Error("DropTail should be nil with a custom queue")
	}
	f := d.AddFlow(d.Station(0), tcp.Config{SegmentSize: 1000})
	f.Sender.Start()
	s.Run(units.Time(20 * units.Second))
	busy := d.Bottleneck.BusyTime()
	s.Run(units.Time(40 * units.Second))
	if util := d.Bottleneck.Utilization(busy, units.Time(20*units.Second)); util < 0.8 {
		t.Errorf("RED bottleneck utilization = %v, want reasonable throughput", util)
	}
}
