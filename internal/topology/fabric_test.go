package topology

import (
	"testing"

	"bufsim/internal/queue"
	"bufsim/internal/sim"
	"bufsim/internal/tcp"
	"bufsim/internal/units"
)

// fabricPlaneTemplate is the per-plane shape shared by the fabric test
// and its standalone control runs.
var fabricPlaneTemplate = Config{
	BottleneckRate:  10 * units.Mbps,
	BottleneckDelay: 10 * units.Millisecond,
	Buffer:          queue.PacketLimit(60),
	Stations:        6,
	RTTMin:          80 * units.Millisecond,
	RTTMax:          160 * units.Millisecond,
}

// startFabricFlows gives every station one long-lived flow and starts it.
func startFabricFlows(d *Dumbbell) []*Flow {
	flows := make([]*Flow, 0, d.NumStations())
	for i := 0; i < d.NumStations(); i++ {
		f := d.AddFlow(d.Station(i), tcp.Config{SegmentSize: 1000})
		f.Sender.Start()
		flows = append(flows, f)
	}
	return flows
}

// planeSignature summarizes a plane's end state precisely enough that a
// single reordered packet changes it.
type planeSignature struct {
	stats queue.Stats
	busy  units.Duration
	cwnds []float64
}

func signature(d *Dumbbell, flows []*Flow) planeSignature {
	sig := planeSignature{
		stats: d.Bottleneck.Queue().Stats(),
		busy:  d.Bottleneck.BusyTime(),
	}
	for _, f := range flows {
		sig.cwnds = append(sig.cwnds, f.Sender.Cwnd())
	}
	return sig
}

// TestFabricMatchesStandalonePlanes pins the fabric's determinism
// contract: plane k of an n-plane fabric must finish in exactly the
// state of a standalone dumbbell built from the same RNG fork and run
// on its own scheduler. The planes share one scheduler and run in
// parallel shards with unbounded lookahead; sharing must not leak a
// single event between them.
func TestFabricMatchesStandalonePlanes(t *testing.T) {
	const planes = 4
	const seed = 99
	horizon := units.Time(30 * units.Second)

	// Control: each plane standalone, consuming the fork sequence a
	// fabric would hand it.
	want := make([]planeSignature, planes)
	parent := sim.NewRNG(seed)
	for k := 0; k < planes; k++ {
		sched := sim.NewScheduler()
		pc := fabricPlaneTemplate
		pc.Sched = sched
		pc.RNG = parent.Fork()
		d := NewDumbbell(pc)
		flows := startFabricFlows(d)
		sched.Run(horizon)
		want[k] = signature(d, flows)
	}

	// The fabric: same planes, one scheduler, parallel shards.
	sched := sim.NewScheduler()
	f := NewFabric(FabricConfig{
		Sched:  sched,
		RNG:    sim.NewRNG(seed),
		Planes: planes,
		Plane:  fabricPlaneTemplate,
	})
	flows := make([][]*Flow, planes)
	for k := 0; k < planes; k++ {
		flows[k] = startFabricFlows(f.Plane(k))
	}
	sched.Run(horizon)

	for k := 0; k < planes; k++ {
		got := signature(f.Plane(k), flows[k])
		if got.stats != want[k].stats {
			t.Errorf("plane %d queue stats = %+v, want %+v", k, got.stats, want[k].stats)
		}
		if got.busy != want[k].busy {
			t.Errorf("plane %d busy time = %v, want %v", k, got.busy, want[k].busy)
		}
		for i := range got.cwnds {
			if got.cwnds[i] != want[k].cwnds[i] {
				t.Errorf("plane %d flow %d cwnd = %v, want %v", k, i, got.cwnds[i], want[k].cwnds[i])
			}
		}
	}
}

// TestFabricMorePlanesThanShards exercises the round-robin shard
// assignment when the plane count exceeds sim.MaxShards-style limits
// (scaled down: more planes than this fabric's shard cap would matter
// only at 64+, so this just checks >1 plane per shard works by reusing
// the equivalence machinery at a plane count that is not a divisor of
// anything special).
func TestFabricMorePlanesThanShards(t *testing.T) {
	sched := sim.NewScheduler()
	pc := fabricPlaneTemplate
	pc.Stations = 2
	f := NewFabric(FabricConfig{
		Sched:  sched,
		RNG:    sim.NewRNG(5),
		Planes: 3,
		Plane:  pc,
	})
	for k := 0; k < f.Planes(); k++ {
		startFabricFlows(f.Plane(k))
	}
	sched.Run(units.Time(5 * units.Second))
	for k := 0; k < f.Planes(); k++ {
		if util := f.Plane(k).Bottleneck.Utilization(0, units.Epoch); util <= 0 {
			t.Errorf("plane %d never carried traffic (utilization %v)", k, util)
		}
	}
}
