//go:build shardmutation

package topology

import "bufsim/internal/sim"

// seedCrossShardAlias is a deliberately seeded shard-ownership bug,
// compiled only under the shardmutation build tag: one ingress actor is
// scheduled through two different shard views, so both shards would
// dispatch into its state — exactly the aliasing the sharded
// equivalence proof forbids outside the PostToAt/PostToAfter frontier.
// Normal builds never see this file; the lint test suite loads it with
// the tag on and asserts the shardownership analyzer reports it.
func (d *Dumbbell) seedCrossShardAlias() (sim.Event, sim.Event) {
	home := d.cfg.Sched.ShardView(1)
	away := d.cfg.Sched.ShardView(0)
	in := &ingressActor{next: d.R2}
	e1 := home.PostAfter(d.lookahead(), in, 0, nil)
	e2 := away.PostAfter(d.lookahead(), in, 0, nil)
	return e1, e2
}
