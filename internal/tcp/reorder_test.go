package tcp

import (
	"testing"
	"testing/quick"

	"bufsim/internal/packet"
	"bufsim/internal/sim"
	"bufsim/internal/units"
)

// jitterPipe delivers packets after a random extra delay, producing
// genuine reordering (unlike loss, which TCP detects; reordering it must
// tolerate without collapsing).
type jitterPipe struct {
	sched  *sim.Scheduler
	base   units.Duration
	jitter units.Duration
	rng    *sim.RNG
	dst    packet.Handler
}

func (j *jitterPipe) Handle(p *packet.Packet) {
	d := j.base + units.Duration(j.rng.Uniform(0, float64(j.jitter)))
	j.sched.After(d, func() { j.dst.Handle(p) })
}

func newJitterConn(cfg Config, seed int64, jitter units.Duration) *conn {
	s := sim.NewScheduler()
	rng := sim.NewRNG(seed)
	fwd := &jitterPipe{sched: s, base: 10 * units.Millisecond, jitter: jitter, rng: rng.Fork()}
	rev := &pipe{sched: s, delay: 10 * units.Millisecond}
	snd := NewSender(cfg, s, fwd)
	rcv := NewReceiver(cfg, s, rev)
	fwd.dst = rcv
	rev.dst = snd
	return &conn{sched: s, snd: snd, rcv: rcv, rev: rev}
}

func TestRenoSurvivesReordering(t *testing.T) {
	// 2 ms of delivery jitter on a 20 ms RTT reorders adjacent segments
	// regularly. The flow must complete; spurious fast retransmits are
	// allowed (that is TCP's real behaviour under reordering) but the
	// stream must stay intact.
	c := newJitterConn(Config{Flow: 1, TotalSegments: 500}, 5, 2*units.Millisecond)
	c.snd.Start()
	c.sched.Run(units.Time(60 * units.Second))
	if !c.snd.Finished() {
		t.Fatalf("flow did not finish under reordering: %+v", c.snd.Stats())
	}
	if c.rcv.NextExpected() != 500 {
		t.Errorf("receiver at %d, want 500", c.rcv.NextExpected())
	}
}

func TestSackSurvivesReordering(t *testing.T) {
	c := newJitterConn(Config{Flow: 1, Variant: Sack, TotalSegments: 500}, 6, 2*units.Millisecond)
	c.snd.Start()
	c.sched.Run(units.Time(60 * units.Second))
	if !c.snd.Finished() {
		t.Fatalf("SACK flow did not finish under reordering: %+v", c.snd.Stats())
	}
	if c.rcv.NextExpected() != 500 {
		t.Errorf("receiver at %d, want 500", c.rcv.NextExpected())
	}
}

func TestSackBlocksProperties(t *testing.T) {
	// Property: blocks are disjoint, nonempty, within the ooo set, and
	// cover the freshest arrival when one exists in the set.
	f := func(raw []uint8, fresh uint8) bool {
		ooo := make(map[int64]bool)
		for _, v := range raw {
			ooo[int64(v)] = true
		}
		blocks := sackBlocks(ooo, int64(fresh), 3)
		if len(ooo) == 0 {
			return blocks == nil
		}
		if len(blocks) > 3 {
			return false
		}
		covered := make(map[int64]bool)
		for _, b := range blocks {
			if b[0] >= b[1] {
				return false
			}
			for s := b[0]; s < b[1]; s++ {
				if !ooo[s] || covered[s] {
					return false // outside the set or overlapping
				}
				covered[s] = true
			}
		}
		if ooo[int64(fresh)] && !covered[int64(fresh)] {
			return false // freshest arrival must be reported
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestScoreboardPipeNeverNegative(t *testing.T) {
	f := func(blocks []uint8, una8, nxt8 uint8) bool {
		sb := newScoreboard()
		una := int64(una8 % 64)
		nxt := una + int64(nxt8%64)
		var bs [][2]int64
		for _, b := range blocks {
			s := int64(b % 128)
			bs = append(bs, [2]int64{s, s + 3})
		}
		sb.update(bs, una)
		p := sb.pipe(una, nxt)
		return p >= 0 && p <= nxt-una
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
