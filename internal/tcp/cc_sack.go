package tcp

import (
	"math"

	"bufsim/internal/packet"
)

// sackCC: selective acknowledgements with RFC 6675-style pipe-driven
// recovery. The scoreboard (sack.go) tracks which segments the receiver
// holds; recovery transmits whenever the estimated pipe is below the
// window, lowest unrepaired hole first.
type sackCC struct {
	aimd
	sb *sackScoreboard
}

func newSackCC() *sackCC { return &sackCC{sb: newScoreboard()} }

// OnAckReceived folds the ACK's SACK blocks into the scoreboard before
// the ACK is dispatched.
func (c *sackCC) OnAckReceived(p *packet.Packet) {
	c.sb.update(p.Sack, c.ops.SndUna())
}

// LossIndicated triggers fast retransmit before three duplicate ACKs
// when the scoreboard already proves the head segment lost.
func (c *sackCC) LossIndicated() bool { return c.sb.lost(c.ops.SndUna()) }

func (c *sackCC) OnAck(ack, acked int64) bool {
	c.sb.advance(ack)
	if c.inRecovery && ack <= c.recover {
		// Partial ACK: the scoreboard knows the remaining holes; keep
		// the window at ssthresh and fill the pipe.
		c.ops.RestartRTO()
		c.fillPipe()
		return true
	}
	c.ackUpdate(acked)
	return false
}

func (c *sackCC) OnDupAck() { c.fillPipe() }

func (c *sackCC) OnLoss() {
	flight := float64(c.ops.Outstanding())
	c.sl.ssthresh[c.row] = math.Max(flight/2, 2)
	c.recover = c.ops.SndNxt() - 1
	c.inRecovery = true
	c.sl.cwnd[c.row] = c.sl.ssthresh[c.row]
	una := c.ops.SndUna()
	c.ops.Retransmit(una)
	c.sb.rtxed[una] = true
	c.ops.RestartRTO()
	c.fillPipe()
}

func (c *sackCC) OnTimeout() {
	c.aimd.OnTimeout()
	c.sb.reset() // go-back-N supersedes the scoreboard
}

// fillPipe fills the pipe during SACK recovery: lowest unrepaired hole
// first, then new data, never exceeding the window's worth of estimated
// in-flight segments.
func (c *sackCC) fillPipe() {
	for c.sb.pipe(c.ops.SndUna(), c.ops.SndNxt()) < c.ops.UsableWindow() {
		if hole := c.sb.nextHole(c.ops.SndUna(), c.ops.SndNxt()); hole >= 0 {
			c.ops.Retransmit(hole)
			c.sb.rtxed[hole] = true
			continue
		}
		if !c.ops.CanSendNew() {
			return
		}
		c.ops.SendNextNew()
	}
}
