package tcp

import (
	"bufsim/internal/packet"
	"bufsim/internal/units"
)

// SenderOps is the sender surface a CongestionControl steers. The
// *Sender implements it; controllers hold it from Init and use it to
// read connection state (sequence pointers, flight size, clock) and to
// drive transmissions. Controllers never touch packets or timers
// directly — retransmission timing, go-back-N, pacing dispatch and RTT
// estimation are sender mechanics shared by every variant.
type SenderOps interface {
	// Now is the current simulated time.
	Now() units.Time
	// SndUna is the lowest unacknowledged segment.
	SndUna() int64
	// SndNxt is the next never-before-sent segment.
	SndNxt() int64
	// Outstanding is the number of unacknowledged segments in flight.
	Outstanding() int64
	// SRTT is the smoothed RTT estimate (zero until the first sample).
	SRTT() units.Duration
	// UsableWindow is the controller's window clamped to the receiver's
	// advertised window and floored at one whole segment.
	UsableWindow() int64
	// CanSendNew reports whether the window and data supply allow a new
	// (never-before-sent) segment.
	CanSendNew() bool
	// SendNextNew unconditionally transmits the next new segment.
	// Callers implementing their own pipe accounting (SACK) check the
	// budget themselves; everyone else uses SendNew.
	SendNextNew()
	// SendNew transmits as many new segments as the window allows,
	// respecting pacing when enabled.
	SendNew()
	// Retransmit puts segment seq back on the wire.
	Retransmit(seq int64)
	// RestartRTO re-arms the retransmission timer from now.
	RestartRTO()
	// ResetDupAcks clears the sender's duplicate-ACK counter (done when
	// an ACK advances the window or a variant restarts its count).
	ResetDupAcks()
	// StateSlab is the sender's struct-of-arrays state store and the
	// row this flow owns in it. Controllers that keep their window in
	// the slab's cwnd/ssthresh columns (the classic family and CUBIC)
	// bind to it in Init; richer models (BBR) may ignore it.
	StateSlab() (*Slab, int32)
}

// CongestionControl is the pluggable congestion-control policy: it owns
// the window (or, for rate-driven controllers, the rate model and an
// inflight cap) and reacts to the sender's lifecycle hooks. The sender
// owns everything else — sequence state, RTT estimation, RTO and pacing
// timers, go-back-N retransmission — so a controller is pure policy.
//
// Hook order for one incoming ACK: OnAckReceived (every ACK, before
// dispatch), then OnECE if the ACK echoes a congestion mark, then
// exactly one of OnAck (the cumulative point advanced; preceded by
// OnRTTSample when the ACK yields a Karn-valid measurement) or the
// duplicate-ACK path. Duplicate ACKs while not in recovery count toward
// the sender's dupThresh; crossing it (or LossIndicated reporting an
// early signal, as SACK scoreboards do) invokes OnLoss. Duplicate ACKs
// during recovery invoke OnDupAck. OnTimeout fires on RTO expiry,
// before the sender's go-back-N rewind, so Outstanding still reflects
// the pre-timeout flight.
//
// Controllers must be deterministic: no wall clock, no randomness —
// simulated time is available through SenderOps.Now.
type CongestionControl interface {
	// Init binds the controller to its sender. cfg has defaults applied.
	Init(ops SenderOps, cfg Config)

	// Window is the congestion window in segments. Rate-driven
	// controllers return their inflight cap. Must stay >= 1.
	Window() float64
	// Ssthresh is the slow-start threshold in segments (a controller
	// without one returns its window ceiling).
	Ssthresh() float64
	// InSlowStart reports the exponential-growth (or startup) phase.
	InSlowStart() bool
	// Recovering reports loss recovery in progress.
	Recovering() bool

	// OnAckReceived observes every arriving ACK before dispatch (SACK
	// scoreboard bookkeeping lives here).
	OnAckReceived(p *packet.Packet)
	// OnAck reacts to the cumulative point advancing by acked segments
	// to ack. Returning true (handled) means the controller performed
	// its own recovery transmissions — partial-ACK repair — and the
	// sender skips its default restart-RTO-and-send tail for this ACK.
	OnAck(ack, acked int64) (handled bool)
	// OnDupAck reacts to a duplicate ACK while Recovering (classic
	// window inflation, SACK pipe fill). Loss detection itself is the
	// sender's duplicate-ACK count plus LossIndicated.
	OnDupAck()
	// LossIndicated reports a controller-specific loss signal that
	// should trigger OnLoss before dupThresh duplicate ACKs (the SACK
	// scoreboard's lost test); loss-naive controllers return false.
	LossIndicated() bool
	// OnLoss reacts to fast-retransmit-detected loss: cut the window,
	// retransmit the head of the window, enter recovery as the variant
	// prescribes. The sender has already counted the recovery episode.
	OnLoss()
	// OnTimeout reacts to an RTO: collapse or cap the window. Called
	// with pre-rewind Outstanding; the sender then rewinds to go-back-N
	// and retransmits the head itself.
	OnTimeout()
	// OnECE reacts to an echoed ECN congestion mark and reports whether
	// a reduction was applied (the sender counts applied reductions).
	OnECE() bool
	// OnRTTSample observes each Karn-valid RTT measurement, before the
	// OnAck hook for the same ACK.
	OnRTTSample(rtt units.Duration)

	// RateDriven reports that the controller paces from its own rate
	// model; the sender then paces even when Config.Paced is unset.
	RateDriven() bool
	// PaceInterval is the inter-send gap while pacing. Window-driven
	// controllers spread one window over srtt; rate-driven controllers
	// derive it from their model. Must be non-negative.
	PaceInterval(srtt units.Duration) units.Duration
}
