// Package tcp implements the TCP congestion-control dynamics the paper's
// theory is about: slow start, AIMD congestion avoidance, fast retransmit
// and fast recovery (Reno, with Tahoe, NewReno and SACK variants for
// ablation), CUBIC and a BBRv1-style rate-based controller for the
// updated buffer-sizing theory, retransmission timeouts with RFC
// 6298-style RTT estimation, cumulative ACKs and optional delayed ACKs.
//
// Congestion control is pluggable: the Sender owns connection mechanics
// (sequence state, RTT estimation, timers, go-back-N, pacing dispatch)
// and delegates policy to a CongestionControl selected by Config.Variant
// — see cc.go for the hook contract and variant.go for the registry.
//
// Windows and sequence numbers are counted in fixed-size segments, exactly
// as the paper presents them ("we will count window size in packets for
// simplicity of presentation"). A flow is either long-lived (infinite
// data, the §2–3 model) or carries a finite number of segments (the §4
// short-flow model, which never leaves slow start for small sizes).
package tcp

import (
	"fmt"
	"math"

	"bufsim/internal/audit"
	"bufsim/internal/packet"
	"bufsim/internal/sim"
	"bufsim/internal/units"
)

// Config parameterizes one flow's sender and receiver.
type Config struct {
	Flow packet.FlowID
	Src  packet.NodeID // sender host
	Dst  packet.NodeID // receiver host

	// SegmentSize is the wire size of a full data segment in bytes.
	SegmentSize units.ByteSize
	// AckSize is the wire size of a pure ACK.
	AckSize units.ByteSize

	// TotalSegments is the flow length; 0 or negative means long-lived
	// (infinite data).
	TotalSegments int64

	// MaxWindow caps the congestion window (the receiver's advertised
	// window). The paper's short-flow analysis leans on typical caps of
	// 12–43 packets; long-flow experiments set it large enough not to
	// bind.
	MaxWindow int

	// InitialCwnd is the slow-start initial window; the paper describes
	// flows that "first send out two packets".
	InitialCwnd int

	Variant Variant

	// DelayedAck enables acknowledgement of every second segment with a
	// 100 ms delayed-ACK timer, as most receivers do today.
	DelayedAck bool

	// Paced spreads new-data transmissions one inter-send interval
	// (SRTT / window) apart instead of bursting on each ACK. The paper's
	// technical report proposes pacing as the remedy when tiny buffers
	// meet few or window-limited flows; the pacing ablation experiments
	// use this switch. Rate-driven variants (BBR) pace regardless.
	// Retransmissions are never paced.
	Paced bool

	// ECN marks data packets ECN-capable and halves the window (at most
	// once per round trip) when the receiver echoes a congestion mark —
	// RFC 3168 simplified to per-packet ECE echo. Pair with a RED queue
	// configured with MarkECN.
	ECN bool

	// MinRTO / InitialRTO / MaxRTO bound the retransmission timer.
	MinRTO     units.Duration
	InitialRTO units.Duration
	MaxRTO     units.Duration
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.SegmentSize == 0 {
		c.SegmentSize = units.DefaultSegment
	}
	if c.AckSize == 0 {
		c.AckSize = 40 * units.Byte // TCP/IP header, no options
	}
	if c.MaxWindow == 0 {
		c.MaxWindow = 1 << 20 // effectively unbounded
	}
	if c.InitialCwnd == 0 {
		c.InitialCwnd = 2
	}
	if c.MinRTO == 0 {
		c.MinRTO = 200 * units.Millisecond
	}
	if c.InitialRTO == 0 {
		c.InitialRTO = units.Second
	}
	if c.MaxRTO == 0 {
		c.MaxRTO = 60 * units.Second
	}
	return c
}

// Stats accumulates per-flow counters.
type Stats struct {
	SegmentsSent    int64 // data segments put on the wire, incl. retransmissions
	Retransmits     int64
	Timeouts        int64
	FastRecoveries  int64
	AcksReceived    int64
	DupAcksReceived int64
	ECNReductions   int64

	Started   units.Time // first data segment transmission
	Completed units.Time // all data acked (sender view); units.Never if not done
}

// Sender is the TCP source. Create with NewSender and call Start. The
// sender implements the connection mechanics; congestion-control policy
// lives in its CongestionControl (see cc.go).
type Sender struct {
	cfg   Config
	sched *sim.Scheduler
	out   packet.Handler // the access link toward the network

	cc CongestionControl

	started  bool
	finished bool

	// The hot per-flow state — sequence pointers, duplicate-ACK count,
	// the RFC 6298 RTT estimator, send timestamps and the classic
	// controllers' window — lives in row `row` of the shared slab (see
	// slab.go): sndUna, sndNxt, dupAcks, srtt, rttvar, haveSRTT, rto,
	// backoff, rttSeq, rttSentAt, lastSend, cwnd, ssthresh.
	sl  *Slab
	row int32

	rtoTimer  sim.Event
	paceTimer sim.Event

	// aud, when non-nil, receives invariant violations (see SetAuditor in
	// audit.go); audUna is the auditor's high-water mark of sndUna, and
	// audMaxSeq one past the highest sequence ever transmitted (sndNxt
	// itself rewinds on timeout, so it cannot bound incoming ACKs).
	aud       *audit.Auditor
	audUna    int64
	audMaxSeq int64

	stats Stats

	// OnComplete fires once when the final segment is cumulatively
	// acknowledged (finite flows only).
	OnComplete func(now units.Time)
	// OnStateChange, if set, observes every congestion-window update;
	// the trace package uses it for the Fig. 2–6 window processes.
	OnStateChange func(now units.Time)
}

// Sender event opcodes (see sim.Actor). OpStart is exported so workload
// generators can schedule a deferred Sender.Start through the kernel's
// typed-event path — sched.PostAt(at, snd, tcp.OpStart, nil) — instead of
// capturing the sender in a closure.
const (
	opSenderRTO int32 = iota
	opSenderPace
	OpStart
)

// OnEvent implements sim.Actor: the sender's timers are typed kernel
// events, so arming one allocates nothing.
func (s *Sender) OnEvent(op int32, _ any) {
	switch op {
	case opSenderRTO:
		s.onTimeout()
	case opSenderPace:
		s.paceFire()
	case OpStart:
		s.Start()
	}
}

// NewSender returns a sender writing packets to out, with its state in
// a private single-row slab. Callers wiring many flows should allocate
// one Slab per shard and use NewSenderSlab so the per-flow state packs
// densely.
func NewSender(cfg Config, sched *sim.Scheduler, out packet.Handler) *Sender {
	return NewSenderSlab(NewSlab(1), cfg, sched, out)
}

// NewSenderSlab returns a sender writing packets to out, appending its
// per-flow state as a new row of sl. All senders sharing a slab must
// live on the same event shard (see Slab).
func NewSenderSlab(sl *Slab, cfg Config, sched *sim.Scheduler, out packet.Handler) *Sender {
	cfg = cfg.withDefaults()
	s := &Sender{
		cfg:   cfg,
		sched: sched,
		out:   out,
		sl:    sl,
		row:   sl.addRow(),
	}
	s.sl.rttSeq[s.row] = -1
	s.sl.rto[s.row] = cfg.InitialRTO
	s.stats.Completed = units.Never
	s.cc = cfg.Variant.newCongestionControl()
	s.cc.Init(s, cfg)
	return s
}

// StateSlab exposes the sender's slab and row (SenderOps); congestion
// controllers that keep their window in the slab's columns bind to it
// in Init.
func (s *Sender) StateSlab() (*Slab, int32) { return s.sl, s.row }

// Start begins transmission at the current simulated time.
func (s *Sender) Start() {
	if s.started {
		panic("tcp: sender started twice")
	}
	s.started = true
	s.stats.Started = s.sched.Now()
	s.trySend()
}

// CC returns the sender's congestion controller.
func (s *Sender) CC() CongestionControl { return s.cc }

// Cwnd returns the congestion window in segments (for rate-driven
// controllers, the inflight cap).
func (s *Sender) Cwnd() float64 { return s.cc.Window() }

// Ssthresh returns the slow-start threshold in segments.
func (s *Sender) Ssthresh() float64 { return s.cc.Ssthresh() }

// Outstanding returns the number of unacknowledged segments in flight.
func (s *Sender) Outstanding() int64 { return s.sl.sndNxt[s.row] - s.sl.sndUna[s.row] }

// InSlowStart reports whether the flow is in its exponential-growth
// phase (the paper's definition of a "short flow" is one that never
// leaves this state).
func (s *Sender) InSlowStart() bool { return s.cc.InSlowStart() }

// Finished reports whether all data has been acknowledged.
func (s *Sender) Finished() bool { return s.finished }

// Stats returns a copy of the flow counters.
func (s *Sender) Stats() Stats { return s.stats }

// Flow returns the flow ID.
func (s *Sender) Flow() packet.FlowID { return s.cfg.Flow }

// Now returns the current simulated time (SenderOps).
func (s *Sender) Now() units.Time { return s.sched.Now() }

// SndUna returns the lowest unacknowledged segment (SenderOps).
func (s *Sender) SndUna() int64 { return s.sl.sndUna[s.row] }

// SndNxt returns the next never-before-sent segment (SenderOps).
func (s *Sender) SndNxt() int64 { return s.sl.sndNxt[s.row] }

// ResetDupAcks clears the duplicate-ACK counter (SenderOps).
func (s *Sender) ResetDupAcks() { s.sl.dupAcks[s.row] = 0 }

// UsableWindow returns the current usable window in whole segments: the
// controller's window clamped to MaxWindow and floored at 1 (SenderOps).
func (s *Sender) UsableWindow() int64 {
	w := math.Min(s.cc.Window(), float64(s.cfg.MaxWindow))
	if w < 1 {
		w = 1
	}
	return int64(w)
}

// longLived reports whether the flow has infinite data.
func (s *Sender) longLived() bool { return s.cfg.TotalSegments <= 0 }

// CanSendNew reports whether the window and data supply allow a new
// (never-before-sent) segment (SenderOps).
func (s *Sender) CanSendNew() bool {
	return s.sl.sndNxt[s.row] < s.sl.sndUna[s.row]+s.UsableWindow() &&
		(s.longLived() || s.sl.sndNxt[s.row] < s.cfg.TotalSegments)
}

// SendNextNew unconditionally transmits the next new segment
// (SenderOps; SACK's pipe accounting budgets its own sends).
func (s *Sender) SendNextNew() {
	s.transmit(s.sl.sndNxt[s.row], false)
	s.sl.sndNxt[s.row]++
}

// SendNew transmits as many new segments as the window allows — either
// immediately (ACK-clocked bursts, classic TCP) or spread across pacing
// intervals when pacing is on (SenderOps).
func (s *Sender) SendNew() { s.trySend() }

// Retransmit puts segment seq back on the wire (SenderOps).
func (s *Sender) Retransmit(seq int64) { s.transmit(seq, true) }

// RestartRTO re-arms the retransmission timer (SenderOps).
func (s *Sender) RestartRTO() { s.restartRTO() }

// paced reports whether transmissions are spread out rather than
// ACK-clocked: explicitly via Config.Paced, or inherently for
// rate-driven controllers.
func (s *Sender) paced() bool { return s.cfg.Paced || s.cc.RateDriven() }

// trySend transmits as many new segments as the window allows.
func (s *Sender) trySend() {
	if s.finished {
		return
	}
	if s.paced() && s.sl.haveSRTT[s.row] {
		s.schedulePaced()
		return
	}
	for s.CanSendNew() {
		s.transmit(s.sl.sndNxt[s.row], false)
		s.sl.sndNxt[s.row]++
	}
}

// paceInterval is the controller's inter-send gap: SRTT spread over the
// window for cwnd-driven variants, the modelled rate for BBR.
func (s *Sender) paceInterval() units.Duration {
	return s.cc.PaceInterval(s.sl.srtt[s.row])
}

// schedulePaced arms the pacing timer for the next permitted send. The
// timer is left un-armed when the window is closed; the next ACK's
// trySend re-arms it.
func (s *Sender) schedulePaced() {
	if s.sched.Active(s.paceTimer) {
		return
	}
	if !s.CanSendNew() {
		return
	}
	now := s.sched.Now()
	next := s.sl.lastSend[s.row].Add(s.paceInterval())
	if next < now {
		next = now
	}
	s.paceTimer = s.sched.PostAt(next, s, opSenderPace, nil)
}

func (s *Sender) paceFire() {
	if s.finished || !s.CanSendNew() {
		return
	}
	s.transmit(s.sl.sndNxt[s.row], false)
	s.sl.sndNxt[s.row]++
	s.schedulePaced()
}

// transmit puts one segment on the wire.
func (s *Sender) transmit(seq int64, isRetransmit bool) {
	now := s.sched.Now()
	if s.aud != nil {
		s.auditSend(seq, isRetransmit, now)
	}
	p := &packet.Packet{
		Flow: s.cfg.Flow,
		Src:  s.cfg.Src,
		Dst:  s.cfg.Dst,
		Seq:  seq,
		Size: s.cfg.SegmentSize,
		Sent: now,

		Retransmitted: isRetransmit,
	}
	if s.cfg.ECN {
		p.Flags |= packet.FlagECT
	}
	s.stats.SegmentsSent++
	if isRetransmit {
		s.stats.Retransmits++
		// Karn: a retransmission invalidates any RTT timing that it
		// could contaminate.
		if s.sl.rttSeq[s.row] >= seq {
			s.sl.rttSeq[s.row] = -1
		}
	} else if s.sl.rttSeq[s.row] < 0 {
		s.sl.rttSeq[s.row] = seq
		s.sl.rttSentAt[s.row] = now
	}
	if !s.sched.Active(s.rtoTimer) {
		s.armRTO()
	}
	s.sl.lastSend[s.row] = now
	s.out.Handle(p)
}

func (s *Sender) armRTO() {
	d := s.sl.rto[s.row] << s.sl.backoff[s.row]
	if d > s.cfg.MaxRTO {
		d = s.cfg.MaxRTO
	}
	s.rtoTimer = s.sched.PostAfter(d, s, opSenderRTO, nil)
}

func (s *Sender) restartRTO() {
	s.sched.Cancel(s.rtoTimer)
	if s.sl.sndUna[s.row] < s.sl.sndNxt[s.row] {
		s.armRTO()
	}
}

// Handle implements packet.Handler: the sender receives ACKs.
func (s *Sender) Handle(p *packet.Packet) {
	if !p.IsAck() {
		panic(fmt.Sprintf("tcp: sender for flow %d received non-ACK %v", s.cfg.Flow, p))
	}
	if s.finished {
		return
	}
	s.stats.AcksReceived++
	if s.aud != nil {
		s.auditAck(p.Ack, s.sched.Now())
	}
	s.cc.OnAckReceived(p)
	if s.cfg.ECN && p.Flags&packet.FlagECE != 0 && s.cc.OnECE() {
		s.stats.ECNReductions++
	}
	switch {
	case p.Ack > s.sl.sndUna[s.row]:
		s.onNewAck(p.Ack)
	case p.Ack == s.sl.sndUna[s.row] && s.Outstanding() > 0:
		s.onDupAck()
	}
	if s.aud != nil {
		s.auditState(s.sched.Now())
	}
	if s.OnStateChange != nil {
		s.OnStateChange(s.sched.Now())
	}
}

func (s *Sender) onNewAck(ack int64) {
	now := s.sched.Now()
	acked := ack - s.sl.sndUna[s.row]
	s.sl.sndUna[s.row] = ack

	// RTT sample (Karn-safe: rttSeq is invalidated on retransmission).
	if s.sl.rttSeq[s.row] >= 0 && ack > s.sl.rttSeq[s.row] {
		m := now.Sub(s.sl.rttSentAt[s.row])
		s.sampleRTT(m)
		s.cc.OnRTTSample(m)
		s.sl.rttSeq[s.row] = -1
	}
	s.sl.backoff[s.row] = 0

	if s.cc.OnAck(ack, acked) {
		// The controller ran its own recovery transmissions
		// (partial-ACK repair); the default tail does not apply.
		return
	}

	if !s.longLived() && s.sl.sndUna[s.row] >= s.cfg.TotalSegments {
		s.complete(now)
		return
	}
	s.restartRTO()
	s.trySend()
}

func (s *Sender) onDupAck() {
	s.stats.DupAcksReceived++
	if s.cc.Recovering() {
		s.cc.OnDupAck()
		return
	}
	s.sl.dupAcks[s.row]++
	if s.sl.dupAcks[s.row] < dupThresh && !s.cc.LossIndicated() {
		return
	}
	// Fast retransmit: the controller cuts and repairs.
	s.stats.FastRecoveries++
	s.cc.OnLoss()
}

func (s *Sender) onTimeout() {
	if s.finished || s.sl.sndUna[s.row] >= s.sl.sndNxt[s.row] {
		return
	}
	s.stats.Timeouts++
	// The controller sees the pre-rewind flight.
	s.cc.OnTimeout()
	s.sl.dupAcks[s.row] = 0
	s.sl.rttSeq[s.row] = -1
	// Go-back-N: everything outstanding is presumed lost.
	s.sl.sndNxt[s.row] = s.sl.sndUna[s.row]
	if s.sl.backoff[s.row] < 16 {
		s.sl.backoff[s.row]++
	}
	// transmit arms the (backed-off) timer itself: the old timer has
	// fired, so no timer is pending at this point.
	s.transmit(s.sl.sndNxt[s.row], true)
	s.sl.sndNxt[s.row]++
	if s.aud != nil {
		s.auditState(s.sched.Now())
	}
	if s.OnStateChange != nil {
		s.OnStateChange(s.sched.Now())
	}
}

func (s *Sender) sampleRTT(m units.Duration) {
	if m <= 0 {
		m = units.Nanosecond
	}
	if !s.sl.haveSRTT[s.row] {
		s.sl.srtt[s.row] = m
		s.sl.rttvar[s.row] = m / 2
		s.sl.haveSRTT[s.row] = true
	} else {
		delta := s.sl.srtt[s.row] - m
		if delta < 0 {
			delta = -delta
		}
		s.sl.rttvar[s.row] = (3*s.sl.rttvar[s.row] + delta) / 4
		s.sl.srtt[s.row] = (7*s.sl.srtt[s.row] + m) / 8
	}
	s.sl.rto[s.row] = s.sl.srtt[s.row] + 4*s.sl.rttvar[s.row]
	if s.sl.rto[s.row] < s.cfg.MinRTO {
		s.sl.rto[s.row] = s.cfg.MinRTO
	}
	if s.sl.rto[s.row] > s.cfg.MaxRTO {
		s.sl.rto[s.row] = s.cfg.MaxRTO
	}
}

// SRTT returns the smoothed RTT estimate (zero until the first sample).
func (s *Sender) SRTT() units.Duration { return s.sl.srtt[s.row] }

// RTO returns the current retransmission timeout (before backoff).
func (s *Sender) RTO() units.Duration { return s.sl.rto[s.row] }

// Shutdown halts a long-lived sender mid-stream: pending timers are
// cancelled and the sender stops reacting to ACKs, as if the
// application closed the connection. Time-varying workloads use it to
// ramp the flow population down. The completion audit and OnComplete
// callback do not fire — the transfer did not finish, it was ended.
// Safe to call on an already-finished sender.
func (s *Sender) Shutdown(now units.Time) {
	if s.finished {
		return
	}
	s.finished = true
	s.stats.Completed = now
	s.sched.Cancel(s.rtoTimer)
	s.sched.Cancel(s.paceTimer)
}

func (s *Sender) complete(now units.Time) {
	s.finished = true
	s.stats.Completed = now
	if s.aud != nil {
		s.auditComplete(now)
	}
	s.sched.Cancel(s.rtoTimer)
	s.sched.Cancel(s.paceTimer)
	if s.OnComplete != nil {
		s.OnComplete(now)
	}
}
