package tcp

import (
	"fmt"
	"strings"
)

// Variant selects the congestion-control flavour. Each variant is an
// index into the package's variant registry, which supplies its name,
// parse aliases and CongestionControl constructor; adding a variant
// means adding one registry entry (see cc.go for the controller
// contract) — String, ParseVariant, the TextMarshaler pair and the
// "unknown variant" error message all derive from the registry and
// cannot drift.
type Variant int

// Supported congestion-control variants.
const (
	// Reno: fast retransmit + fast recovery, exit recovery on the first
	// new ACK. The paper's ns-2 experiments use Reno.
	Reno Variant = iota
	// Tahoe: fast retransmit but no fast recovery (window to 1).
	Tahoe
	// NewReno: Reno with partial-ACK retransmission during recovery.
	NewReno
	// Sack: selective acknowledgements with RFC 6675-style pipe-driven
	// recovery — multiple holes repaired per round trip.
	Sack
	// Cubic: RFC 8312-style cubic window growth (beta 0.7, C 0.4) with a
	// TCP-friendly region, on NewReno recovery mechanics. The dominant
	// loss-based variant the 2004 rule was never derived for.
	Cubic
	// BBR: a BBRv1-style model-based controller — windowed max-filtered
	// delivery rate and min-filtered RTT drive the pacing rate and an
	// inflight cap; loss does not shrink the window. Rate-driven, the
	// regime where Spang et al. show B = RTT·C/sqrt(n) stops applying.
	BBR

	numVariants = int(BBR) + 1
)

// variantInfo is one registry entry.
type variantInfo struct {
	name    string
	aliases []string
	newCC   func() CongestionControl
	// sack marks variants whose receivers generate SACK blocks.
	sack bool
}

// variantRegistry is indexed by Variant. The array length is pinned to
// numVariants, so adding a constant above without a registry entry (or
// vice versa) fails to compile; TestVariantRegistryExhaustive checks the
// entries themselves are populated.
var variantRegistry = [numVariants]variantInfo{
	Reno:    {name: "reno", newCC: func() CongestionControl { return new(renoCC) }},
	Tahoe:   {name: "tahoe", newCC: func() CongestionControl { return new(tahoeCC) }},
	NewReno: {name: "newreno", aliases: []string{"new-reno", "new_reno"}, newCC: func() CongestionControl { return new(newRenoCC) }},
	Sack:    {name: "sack", newCC: func() CongestionControl { return newSackCC() }, sack: true},
	Cubic:   {name: "cubic", newCC: func() CongestionControl { return new(cubicCC) }},
	BBR:     {name: "bbr", aliases: []string{"bbrv1", "bbr1"}, newCC: func() CongestionControl { return new(bbrCC) }},
}

// valid reports whether v indexes a registered variant.
func (v Variant) valid() bool { return v >= 0 && int(v) < numVariants }

func (v Variant) String() string {
	if !v.valid() {
		return fmt.Sprintf("variant(%d)", int(v))
	}
	return variantRegistry[v].name
}

// generatesSack reports whether receivers for this variant attach SACK
// blocks to their acknowledgements.
func (v Variant) generatesSack() bool { return v.valid() && variantRegistry[v].sack }

// newCongestionControl builds the variant's controller. Out-of-range
// values fall back to Reno, matching the historical behaviour of the
// pre-registry sender (whose variant switches all missed).
func (v Variant) newCongestionControl() CongestionControl {
	if !v.valid() {
		return new(renoCC)
	}
	return variantRegistry[v].newCC()
}

// VariantNames returns the canonical variant names in registry order
// (for CLI help text and error messages).
func VariantNames() []string {
	names := make([]string, numVariants)
	for i, info := range variantRegistry {
		names[i] = info.name
	}
	return names
}

// Variants returns all registered variants in registry order.
func Variants() []Variant {
	vs := make([]Variant, numVariants)
	for i := range vs {
		vs[i] = Variant(i)
	}
	return vs
}

// variantNameList renders "reno, tahoe, ... or bbr" for the parse error,
// regenerated from the registry so it cannot drift as variants are added.
func variantNameList() string {
	names := VariantNames()
	return strings.Join(names[:len(names)-1], ", ") + " or " + names[len(names)-1]
}

// ParseVariant parses a congestion-control name, case-insensitively,
// accepting each variant's canonical name or registered aliases (e.g.
// "new-reno" for newreno, "bbrv1" for bbr). The empty string parses as
// Reno, the zero value, so optional config fields round-trip.
func ParseVariant(s string) (Variant, error) {
	lower := strings.ToLower(s)
	if lower == "" {
		return Reno, nil
	}
	for i, info := range variantRegistry {
		if lower == info.name {
			return Variant(i), nil
		}
		for _, a := range info.aliases {
			if lower == a {
				return Variant(i), nil
			}
		}
	}
	return Reno, fmt.Errorf("tcp: unknown variant %q (want %s)", s, variantNameList())
}

// MarshalText implements encoding.TextMarshaler, so a Variant renders as
// its name in JSON scenario files rather than a bare integer.
func (v Variant) MarshalText() ([]byte, error) {
	if !v.valid() {
		return nil, fmt.Errorf("tcp: cannot marshal unknown variant %d", int(v))
	}
	return []byte(v.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler via ParseVariant.
func (v *Variant) UnmarshalText(text []byte) error {
	parsed, err := ParseVariant(string(text))
	if err != nil {
		return err
	}
	*v = parsed
	return nil
}
