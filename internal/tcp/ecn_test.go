package tcp

import (
	"testing"

	"bufsim/internal/packet"
	"bufsim/internal/units"
)

func TestECNSetsECTOnData(t *testing.T) {
	c := newConn(Config{Flow: 1, ECN: true, TotalSegments: 5})
	var sawECT, sawNonECT bool
	c.fwd.drop = func(p *packet.Packet) bool {
		if !p.IsAck() {
			if p.Flags&packet.FlagECT != 0 {
				sawECT = true
			} else {
				sawNonECT = true
			}
		}
		return false
	}
	c.snd.Start()
	c.sched.Run(units.Time(5 * units.Second))
	if !sawECT || sawNonECT {
		t.Errorf("ECT marking wrong: sawECT=%v sawNonECT=%v", sawECT, sawNonECT)
	}
}

func TestECNMarkHalvesWindowOnce(t *testing.T) {
	// CE-mark an entire window of packets in flight: the sender must
	// halve exactly once, not once per mark.
	c := newConn(Config{Flow: 1, ECN: true})
	marking := false
	c.fwd.drop = func(p *packet.Packet) bool {
		if !p.IsAck() && marking {
			p.Flags |= packet.FlagCE
		}
		return false
	}
	c.snd.Start()
	c.sched.Run(units.Time(400 * units.Millisecond)) // grow a bit
	before := c.snd.Cwnd()
	marking = true
	c.sched.Run(units.Time(430 * units.Millisecond)) // one RTT of marks
	marking = false
	c.sched.Run(units.Time(460 * units.Millisecond))
	st := c.snd.Stats()
	if st.ECNReductions != 1 {
		t.Errorf("ECNReductions = %d, want 1 (one per RTT)", st.ECNReductions)
	}
	after := c.snd.Cwnd()
	if after > before*0.7 || after < before*0.3 {
		t.Errorf("cwnd %v -> %v, want roughly halved", before, after)
	}
	if st.Retransmits != 0 {
		t.Errorf("ECN reduction retransmitted %d segments", st.Retransmits)
	}
}

func TestECNReceiverEchoes(t *testing.T) {
	c := newConn(Config{Flow: 1, ECN: true, TotalSegments: 50})
	markNext := true
	c.fwd.drop = func(p *packet.Packet) bool {
		if !p.IsAck() && markNext {
			p.Flags |= packet.FlagCE
			markNext = false
		}
		return false
	}
	var eceAcks int64
	c.rev.drop = func(p *packet.Packet) bool {
		if p.Flags&packet.FlagECE != 0 {
			eceAcks++
		}
		return false
	}
	c.snd.Start()
	c.sched.Run(units.Time(10 * units.Second))
	if eceAcks != 1 {
		t.Errorf("ECE echoed on %d ACKs, want exactly 1 (per-packet echo)", eceAcks)
	}
	if c.rcv.CEMarksSeen != 1 {
		t.Errorf("CEMarksSeen = %d", c.rcv.CEMarksSeen)
	}
	if !c.snd.Finished() {
		t.Error("flow did not finish")
	}
}

func TestNonECNSenderIgnoresECE(t *testing.T) {
	c := newConn(Config{Flow: 1, TotalSegments: 50}) // ECN off
	c.rev.drop = func(p *packet.Packet) bool {
		p.Flags |= packet.FlagECE // hostile marking
		return false
	}
	c.snd.Start()
	c.sched.Run(units.Time(10 * units.Second))
	if st := c.snd.Stats(); st.ECNReductions != 0 {
		t.Errorf("non-ECN sender reacted to ECE: %+v", st)
	}
	if !c.snd.Finished() {
		t.Error("flow did not finish")
	}
}
