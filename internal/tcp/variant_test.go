package tcp

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestParseVariant(t *testing.T) {
	cases := []struct {
		in   string
		want Variant
		ok   bool
	}{
		{"reno", Reno, true},
		{"Reno", Reno, true},
		{"", Reno, true},
		{"tahoe", Tahoe, true},
		{"newreno", NewReno, true},
		{"NewReno", NewReno, true},
		{"new-reno", NewReno, true},
		{"New_Reno", NewReno, true},
		{"sack", Sack, true},
		{"SACK", Sack, true},
		{"cubic", Cubic, true},
		{"CUBIC", Cubic, true},
		{"bbr", BBR, true},
		{"BBRv1", BBR, true},
		{"bbr1", BBR, true},
		{"vegas", Reno, false},
		{"reno ", Reno, false},
	}
	for _, c := range cases {
		got, err := ParseVariant(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseVariant(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseVariant(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestParseVariantErrorListsRegistry pins the contract that the
// "unknown variant" error is regenerated from the registry: every
// registered name must appear in it, so the message cannot drift as
// variants are added.
func TestParseVariantErrorListsRegistry(t *testing.T) {
	_, err := ParseVariant("nosuch")
	if err == nil {
		t.Fatal("ParseVariant(\"nosuch\") did not error")
	}
	for _, name := range VariantNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not mention registered variant %q", err, name)
		}
	}
}

func TestVariantStringRoundTrip(t *testing.T) {
	for _, v := range Variants() {
		got, err := ParseVariant(v.String())
		if err != nil || got != v {
			t.Errorf("round trip %v -> %q -> %v, %v", v, v.String(), got, err)
		}
	}
}

// TestVariantRegistryExhaustive verifies every registry entry is fully
// populated and unambiguous. The registry array's length is pinned to
// numVariants at compile time, so this plus the round-trip test makes
// String, ParseVariant and the TextMarshaler pair exhaustive over all
// variants by construction.
func TestVariantRegistryExhaustive(t *testing.T) {
	seen := map[string]Variant{}
	for _, v := range Variants() {
		info := variantRegistry[v]
		if info.name == "" {
			t.Fatalf("variant %d has no registry name", int(v))
		}
		if info.newCC == nil {
			t.Fatalf("variant %v has no controller constructor", v)
		}
		if cc := info.newCC(); cc == nil {
			t.Fatalf("variant %v constructor returned nil", v)
		}
		for _, name := range append([]string{info.name}, info.aliases...) {
			if name != strings.ToLower(name) {
				t.Errorf("variant %v name %q is not lowercase", v, name)
			}
			if prev, dup := seen[name]; dup {
				t.Errorf("name %q registered for both %v and %v", name, prev, v)
			}
			seen[name] = v
		}
		if _, err := v.MarshalText(); err != nil {
			t.Errorf("MarshalText(%v) errored: %v", v, err)
		}
	}
}

func TestVariantTextMarshalling(t *testing.T) {
	type wire struct {
		V Variant `json:"v"`
	}
	b, err := json.Marshal(wire{V: Sack})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"v":"sack"}` {
		t.Errorf("marshalled %s, want {\"v\":\"sack\"}", b)
	}
	b, err = json.Marshal(wire{V: BBR})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"v":"bbr"}` {
		t.Errorf("marshalled %s, want {\"v\":\"bbr\"}", b)
	}
	var back wire
	if err := json.Unmarshal([]byte(`{"v":"NewReno"}`), &back); err != nil {
		t.Fatal(err)
	}
	if back.V != NewReno {
		t.Errorf("unmarshalled %v, want NewReno", back.V)
	}
	if err := json.Unmarshal([]byte(`{"v":"cubic"}`), &back); err != nil {
		t.Fatal(err)
	}
	if back.V != Cubic {
		t.Errorf("unmarshalled %v, want Cubic", back.V)
	}
	if err := json.Unmarshal([]byte(`{"v":"vegas"}`), &back); err == nil {
		t.Error("unmarshalling an unknown variant did not error")
	}
	if _, err := Variant(99).MarshalText(); err == nil {
		t.Error("marshalling an unknown variant did not error")
	}
}
