package tcp

import (
	"encoding/json"
	"testing"
)

func TestParseVariant(t *testing.T) {
	cases := []struct {
		in   string
		want Variant
		ok   bool
	}{
		{"reno", Reno, true},
		{"Reno", Reno, true},
		{"", Reno, true},
		{"tahoe", Tahoe, true},
		{"newreno", NewReno, true},
		{"NewReno", NewReno, true},
		{"sack", Sack, true},
		{"SACK", Sack, true},
		{"cubic", Reno, false},
		{"reno ", Reno, false},
	}
	for _, c := range cases {
		got, err := ParseVariant(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseVariant(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseVariant(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVariantStringRoundTrip(t *testing.T) {
	for _, v := range []Variant{Reno, Tahoe, NewReno, Sack} {
		got, err := ParseVariant(v.String())
		if err != nil || got != v {
			t.Errorf("round trip %v -> %q -> %v, %v", v, v.String(), got, err)
		}
	}
}

func TestVariantTextMarshalling(t *testing.T) {
	type wire struct {
		V Variant `json:"v"`
	}
	b, err := json.Marshal(wire{V: Sack})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"v":"sack"}` {
		t.Errorf("marshalled %s, want {\"v\":\"sack\"}", b)
	}
	var back wire
	if err := json.Unmarshal([]byte(`{"v":"NewReno"}`), &back); err != nil {
		t.Fatal(err)
	}
	if back.V != NewReno {
		t.Errorf("unmarshalled %v, want NewReno", back.V)
	}
	if err := json.Unmarshal([]byte(`{"v":"bbr"}`), &back); err == nil {
		t.Error("unmarshalling an unknown variant did not error")
	}
	if _, err := Variant(99).MarshalText(); err == nil {
		t.Error("marshalling an unknown variant did not error")
	}
}
