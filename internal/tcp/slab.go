package tcp

import "bufsim/internal/units"

// Slab is a struct-of-arrays store for the hot per-flow connection
// state: one column per field, one row per sender. Senders created with
// NewSenderSlab share a slab, so a million flows keep their sequence
// pointers, RTT estimators and congestion windows in thirteen dense
// arrays instead of a million scattered heap objects — the difference
// between cache-line streaming and pointer chasing when the event
// kernel sweeps large flow populations.
//
// A slab is single-shard state: every sender in it must live on the
// same event shard (or on the sequential kernel). Rows are appended by
// NewSenderSlab and never freed — a finished flow's row simply goes
// cold, matching the topology's own append-only flow bookkeeping.
// Appending may reallocate the columns, so rows must not be added while
// another shard could be reading the slab; the topology only adds flows
// from the slab's own shard or from barrier-synchronized (exclusive)
// events, which provides that ordering.
//
// The classic congestion controllers store their window state in the
// cwnd and ssthresh columns (see aimd); the modern controllers (CUBIC,
// BBR) carry richer models and keep their own state.
type Slab struct {
	sndUna []int64 // lowest unacknowledged segment
	sndNxt []int64 // next never-before-sent segment
	rttSeq []int64 // segment being timed; -1 if none

	dupAcks []int32 // consecutive duplicate ACKs toward fast retransmit
	backoff []int32 // RTO exponential-backoff shift

	haveSRTT []bool

	srtt   []units.Duration
	rttvar []units.Duration
	rto    []units.Duration

	rttSentAt []units.Time
	lastSend  []units.Time

	cwnd     []float64 // classic controllers' congestion window
	ssthresh []float64 // classic controllers' slow-start threshold
}

// NewSlab returns an empty slab with room for capacity rows before the
// columns first reallocate.
func NewSlab(capacity int) *Slab {
	if capacity < 1 {
		capacity = 1
	}
	return &Slab{
		sndUna:    make([]int64, 0, capacity),
		sndNxt:    make([]int64, 0, capacity),
		rttSeq:    make([]int64, 0, capacity),
		dupAcks:   make([]int32, 0, capacity),
		backoff:   make([]int32, 0, capacity),
		haveSRTT:  make([]bool, 0, capacity),
		srtt:      make([]units.Duration, 0, capacity),
		rttvar:    make([]units.Duration, 0, capacity),
		rto:       make([]units.Duration, 0, capacity),
		rttSentAt: make([]units.Time, 0, capacity),
		lastSend:  make([]units.Time, 0, capacity),
		cwnd:      make([]float64, 0, capacity),
		ssthresh:  make([]float64, 0, capacity),
	}
}

// addRow appends one zeroed row to every column and returns its index.
func (sl *Slab) addRow() int32 {
	row := int32(len(sl.sndUna))
	sl.sndUna = append(sl.sndUna, 0)
	sl.sndNxt = append(sl.sndNxt, 0)
	sl.rttSeq = append(sl.rttSeq, 0)
	sl.dupAcks = append(sl.dupAcks, 0)
	sl.backoff = append(sl.backoff, 0)
	sl.haveSRTT = append(sl.haveSRTT, false)
	sl.srtt = append(sl.srtt, 0)
	sl.rttvar = append(sl.rttvar, 0)
	sl.rto = append(sl.rto, 0)
	sl.rttSentAt = append(sl.rttSentAt, 0)
	sl.lastSend = append(sl.lastSend, 0)
	sl.cwnd = append(sl.cwnd, 0)
	sl.ssthresh = append(sl.ssthresh, 0)
	return row
}

// Rows returns the number of senders the slab holds.
func (sl *Slab) Rows() int { return len(sl.sndUna) }
