package tcp

import (
	"fmt"

	"bufsim/internal/audit"
	"bufsim/internal/units"
)

// SetAuditor attaches an invariant checker to the sender: ACK bounds and
// cumulative-ACK monotonicity, window sanity (cwnd >= 1, new data never
// sent beyond the usable window), and completion accounting for finite
// flows. A nil auditor (the default) disables the checks.
func (s *Sender) SetAuditor(a *audit.Auditor) { s.aud = a }

// auditAck validates an incoming ACK before the sender acts on it: a
// cumulative ACK can never cover data that was never sent. The bound is
// the high-water mark of transmitted sequence numbers, not sndNxt — a
// timeout rewinds sndNxt to sndUna (go-back-N) while ACKs for the
// pre-rewind transmissions are still in flight.
func (s *Sender) auditAck(ack int64, now units.Time) {
	if ack > s.audMaxSeq {
		s.aud.Violationf(now, s.audName(), "ack-bounded",
			"ACK %d beyond highest transmitted segment %d", ack, s.audMaxSeq)
	}
	if ack < 0 {
		s.aud.Violationf(now, s.audName(), "ack-bounded", "negative ACK %d", ack)
	}
}

// auditState checks the sender's steady invariants after an ACK or
// timeout has been processed. The window invariants are phrased against
// the CongestionControl interface, so they hold for any controller:
// cwnd-driven variants must keep their window at one segment or more,
// and rate-driven variants must additionally produce a sane (non-
// negative) pacing interval whenever they are asked for one.
func (s *Sender) auditState(now units.Time) {
	if w := s.cc.Window(); w < 1 {
		s.aud.Violationf(now, s.audName(), "cwnd-floor", "cwnd %.3f < 1", w)
	}
	if s.cc.RateDriven() {
		if iv := s.cc.PaceInterval(s.sl.srtt[s.row]); iv < 0 {
			s.aud.Violationf(now, s.audName(), "pace-positive",
				"pacing interval %v < 0", iv)
		}
	}
	if s.sl.sndUna[s.row] < s.audUna {
		s.aud.Violationf(now, s.audName(), "cumack-monotone",
			"sndUna moved backwards: %d after %d", s.sl.sndUna[s.row], s.audUna)
	}
	s.audUna = s.sl.sndUna[s.row]
	// sndUna <= sndNxt does NOT hold here: after a timeout rewinds sndNxt
	// to sndUna (go-back-N), a late ACK for a pre-rewind transmission can
	// move sndUna past the rewound sndNxt. Both pointers are instead
	// bounded by the transmission high-water mark: nothing can be
	// acknowledged, and nothing can be "next", beyond what was ever sent.
	if s.sl.sndUna[s.row] > s.audMaxSeq {
		s.aud.Violationf(now, s.audName(), "seq-order",
			"sndUna %d beyond highest transmitted segment %d", s.sl.sndUna[s.row], s.audMaxSeq)
	}
	if s.sl.sndNxt[s.row] > s.audMaxSeq {
		s.aud.Violationf(now, s.audName(), "seq-order",
			"sndNxt %d beyond highest transmitted segment %d", s.sl.sndNxt[s.row], s.audMaxSeq)
	}
	if !s.longLived() && s.sl.sndNxt[s.row] > s.cfg.TotalSegments {
		s.aud.Violationf(now, s.audName(), "seq-bounded",
			"sndNxt %d beyond flow length %d", s.sl.sndNxt[s.row], s.cfg.TotalSegments)
	}
}

// auditSend observes every transmission: it maintains the high-water
// mark that bounds incoming ACKs, and checks that window-clocked sends
// respect the usable window — the enforceable form of "inflight <= cwnd"
// (after a window reduction, old outstanding data may exceed the
// shrunken window; explicit retransmissions of it must not be flagged).
func (s *Sender) auditSend(seq int64, isRetransmit bool, now units.Time) {
	if !isRetransmit && seq >= s.sl.sndUna[s.row]+s.UsableWindow() {
		s.aud.Violationf(now, s.audName(), "window-respected",
			"segment %d sent with sndUna %d and window %d", seq, s.sl.sndUna[s.row], s.UsableWindow())
	}
	if seq+1 > s.audMaxSeq {
		s.audMaxSeq = seq + 1
	}
}

// auditComplete checks the completion bookkeeping of a finite flow: the
// sender finishes exactly when every segment has been cumulatively
// acknowledged, which is what "every sent segment was eventually ACKed or
// retransmitted" reduces to under cumulative ACKs.
func (s *Sender) auditComplete(now units.Time) {
	if s.longLived() {
		return
	}
	if s.sl.sndUna[s.row] != s.cfg.TotalSegments {
		s.aud.Violationf(now, s.audName(), "completion",
			"completed with sndUna %d of %d segments acknowledged", s.sl.sndUna[s.row], s.cfg.TotalSegments)
	}
}

// audName is only evaluated when a violation actually fires (it appears
// solely inside Violationf call sites), so the formatting is cold.
func (s *Sender) audName() string { return fmt.Sprintf("tcp:sender:flow%d", s.cfg.Flow) }

// SetAuditor attaches an invariant checker to the receiver: cumulative
// reassembly-point monotonicity, out-of-order bookkeeping, and completion
// accounting for finite flows. A nil auditor disables the checks.
func (r *Receiver) SetAuditor(a *audit.Auditor) { r.aud = a }

// auditState checks the receiver's reassembly invariants after a segment
// has been processed.
func (r *Receiver) auditState(now units.Time) {
	comp := fmt.Sprintf("tcp:receiver:flow%d", r.cfg.Flow)
	if r.nextExpected < r.audNext {
		r.aud.Violationf(now, comp, "reassembly-monotone",
			"nextExpected moved backwards: %d after %d", r.nextExpected, r.audNext)
	}
	r.audNext = r.nextExpected
	if r.ooo[r.nextExpected] {
		r.aud.Violationf(now, comp, "reassembly-drain",
			"segment %d is buffered out-of-order but is the next expected", r.nextExpected)
	}
	if r.cfg.TotalSegments > 0 && r.nextExpected > r.cfg.TotalSegments {
		r.aud.Violationf(now, comp, "reassembly-bounded",
			"nextExpected %d beyond flow length %d", r.nextExpected, r.cfg.TotalSegments)
	}
	if r.finished && (r.ReceivedSegments != r.cfg.TotalSegments || len(r.ooo) != 0) {
		r.aud.Violationf(now, comp, "completion",
			"finished with %d of %d distinct segments and %d still out-of-order",
			r.ReceivedSegments, r.cfg.TotalSegments, len(r.ooo))
	}
}
