package tcp

import (
	"testing"

	"bufsim/internal/packet"
	"bufsim/internal/units"
)

func TestPacedFlowCompletes(t *testing.T) {
	c := newConn(Config{Flow: 1, TotalSegments: 300, Paced: true})
	c.snd.Start()
	c.sched.Run(units.Time(60 * units.Second))
	if !c.snd.Finished() {
		t.Fatalf("paced flow did not finish: %+v", c.snd.Stats())
	}
	if c.rcv.NextExpected() != 300 {
		t.Errorf("receiver at %d, want 300", c.rcv.NextExpected())
	}
}

func TestPacingSpreadsSends(t *testing.T) {
	// Record send times; once SRTT is established, gaps between new-data
	// sends should cluster around srtt/window rather than arriving in
	// back-to-back bursts.
	c := newConn(Config{Flow: 1, TotalSegments: 400, MaxWindow: 20, Paced: true})
	var sendTimes []units.Time
	inner := c.fwd.dst
	c.fwd.dst = packet.HandlerFunc(func(p *packet.Packet) { inner.Handle(p) })
	origDrop := c.fwd.drop
	c.fwd.drop = func(p *packet.Packet) bool {
		if !p.IsAck() {
			sendTimes = append(sendTimes, c.sched.Now())
		}
		if origDrop != nil {
			return origDrop(p)
		}
		return false
	}
	c.snd.Start()
	c.sched.Run(units.Time(30 * units.Second))
	if !c.snd.Finished() {
		t.Fatal("flow did not finish")
	}
	// Look at steady-state sends (skip the unpaced pre-SRTT prefix).
	// With MaxWindow 20 and 20 ms RTT, the paced gap is 1 ms.
	var zeroGaps, total int
	for i := len(sendTimes) / 2; i < len(sendTimes)-1; i++ {
		gap := sendTimes[i+1].Sub(sendTimes[i])
		if gap < 100*units.Microsecond {
			zeroGaps++
		}
		total++
	}
	if total == 0 {
		t.Fatal("no steady-state sends observed")
	}
	if frac := float64(zeroGaps) / float64(total); frac > 0.05 {
		t.Errorf("%.0f%% of paced sends were back-to-back, want ~0", 100*frac)
	}
}

func TestUnpacedBurstsExist(t *testing.T) {
	// Sanity check of the previous test's discriminator: without pacing,
	// back-to-back sends are common (slow-start sends 2 per ACK).
	c := newConn(Config{Flow: 1, TotalSegments: 400, MaxWindow: 20})
	var sendTimes []units.Time
	c.fwd.drop = func(p *packet.Packet) bool {
		if !p.IsAck() {
			sendTimes = append(sendTimes, c.sched.Now())
		}
		return false
	}
	c.snd.Start()
	c.sched.Run(units.Time(30 * units.Second))
	var zeroGaps int
	for i := 0; i < len(sendTimes)-1; i++ {
		if sendTimes[i+1].Sub(sendTimes[i]) < 100*units.Microsecond {
			zeroGaps++
		}
	}
	if zeroGaps == 0 {
		t.Error("unpaced sender produced no back-to-back sends")
	}
}

func TestPacedRecoversFromLoss(t *testing.T) {
	dropped := false
	c := newConn(Config{Flow: 1, TotalSegments: 500, Paced: true})
	c.fwd.drop = func(p *packet.Packet) bool {
		if !p.IsAck() && p.Seq == 100 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	c.snd.Start()
	c.sched.Run(units.Time(60 * units.Second))
	if !c.snd.Finished() {
		t.Fatalf("paced flow did not recover: %+v", c.snd.Stats())
	}
	st := c.snd.Stats()
	if st.Retransmits == 0 {
		t.Error("loss never retransmitted")
	}
	if st.Timeouts != 0 {
		t.Errorf("paced single loss caused %d timeouts", st.Timeouts)
	}
}

func TestPacedThroughputMatchesWindow(t *testing.T) {
	// Pacing must not throttle below W/RTT: a MaxWindow-20 flow on a
	// 20 ms RTT should move ~1000 segments/s.
	c := newConn(Config{Flow: 1, TotalSegments: 5000, MaxWindow: 20, Paced: true})
	c.snd.Start()
	c.sched.Run(units.Time(20 * units.Second))
	if !c.snd.Finished() {
		t.Errorf("paced flow too slow: %d/5000 acked after 20s (want ~5s)",
			c.snd.SndUna())
	}
}
